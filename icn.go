// Package icn is the public API of the reproduction of "Characterizing
// Mobile Service Demands at Indoor Cellular Networks" (IMC '23). It exposes
// the full analysis pipeline — synthetic nationwide dataset generation,
// RCA/RSCA feature transformation, Ward agglomerative clustering with
// Silhouette/Dunn model selection, a random-forest surrogate explained with
// TreeSHAP, environment association, the indoor/outdoor comparison, and
// temporal profiling — plus an experiment suite that regenerates every
// table and figure of the paper's evaluation.
//
// Quick start:
//
//	result, err := icn.Run(icn.Config{Seed: 1, Scale: 0.1})
//	if err != nil {
//		log.Fatal(err)
//	}
//	fmt.Println("clusters:", result.ClusterSizes())
//	fmt.Println("purity vs ground truth:", result.Purity())
//
// To regenerate the paper's artifacts:
//
//	suite, err := icn.NewSuite(icn.Config{Seed: 1, Scale: 0.1})
//	if err != nil {
//		log.Fatal(err)
//	}
//	for _, artifact := range suite.All() {
//		fmt.Println(artifact.Title)
//		fmt.Println(artifact.Text)
//	}
//
// The pipeline runs as a staged DAG on a shared worker pool; pass a
// context through RunContext to cancel a run, and read per-stage
// timings from result.Trace().
package icn

import (
	"context"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/synth"
)

// Config parameterizes a pipeline run. The zero value runs the paper's
// full scale (4,762 indoor antennas, 22,000 outdoor, k = 9, 100 trees).
type Config = analysis.Config

// Result is the full pipeline output: features, dendrogram, clusters,
// surrogate model, environment association and outdoor classification.
type Result = analysis.Result

// Suite regenerates the paper's tables and figures from a pipeline run.
type Suite = experiments.Suite

// Artifact is one regenerated table or figure with its shape checks.
type Artifact = experiments.Artifact

// Check is one paper-shape assertion attached to an artifact.
type Check = experiments.Check

// Dataset is a generated synthetic measurement campaign.
type Dataset = synth.Dataset

// DatasetConfig parameterizes standalone dataset generation.
type DatasetConfig = synth.Config

// Run executes the full pipeline on a freshly generated dataset.
func Run(cfg Config) (*Result, error) { return analysis.Run(cfg) }

// RunContext is Run with caller-controlled cancellation: when ctx is
// cancelled, in-flight stages stop at their next checkpoint and the run
// returns ctx's error.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	return analysis.RunContext(ctx, cfg)
}

// RunOnDataset executes the pipeline on an existing dataset, allowing the
// dataset to be shared across experiments.
func RunOnDataset(ds *Dataset, cfg Config) (*Result, error) { return analysis.RunOnDataset(ds, cfg) }

// RunOnDatasetContext is RunOnDataset with caller-controlled cancellation.
func RunOnDatasetContext(ctx context.Context, ds *Dataset, cfg Config) (*Result, error) {
	return analysis.RunOnDatasetContext(ctx, ds, cfg)
}

// NewSuite runs the pipeline and wraps it in the experiment suite.
func NewSuite(cfg Config) (*Suite, error) { return experiments.NewSuite(cfg) }

// GenerateDataset builds a synthetic nationwide measurement dataset
// without running the analysis.
func GenerateDataset(cfg DatasetConfig) *Dataset { return synth.Generate(cfg) }

// Profile is one cluster's demand profile: characterizing services,
// environment composition, and temporal signature.
type Profile = core.Profile

// ProfileOptions bounds profile construction.
type ProfileOptions = core.Options

// SlicePlan is an environment-aware network-slice recommendation derived
// from a cluster profile (the Section 7 roadmap of the paper).
type SlicePlan = core.SlicePlan

// BuildProfiles derives one Profile per discovered cluster.
func BuildProfiles(res *Result, opts ProfileOptions) []Profile {
	return core.BuildProfiles(res, opts)
}

// PlanSlices derives a network-slice plan per cluster profile.
func PlanSlices(profiles []Profile) []SlicePlan { return core.PlanSlices(profiles) }
