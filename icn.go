// Package icn is the public API of the reproduction of "Characterizing
// Mobile Service Demands at Indoor Cellular Networks" (IMC '23). It exposes
// the full analysis pipeline — synthetic nationwide dataset generation,
// RCA/RSCA feature transformation, Ward agglomerative clustering with
// Silhouette/Dunn model selection, a random-forest surrogate explained with
// TreeSHAP, environment association, the indoor/outdoor comparison, and
// temporal profiling — plus an experiment suite that regenerates every
// table and figure of the paper's evaluation, and the online serving path
// that classifies new antennas against a trained snapshot.
//
// # Stable API
//
// External callers use this package alone; nothing under repro/internal is
// part of the contract. The stable surface is:
//
//   - Pipeline: Run (context-first, functional options WithDataset and
//     WithPool), Config, Result, GenerateDataset, Dataset, DatasetConfig.
//   - Experiments: NewSuite, Suite, Artifact, Check.
//   - Profiles: BuildProfiles, PlanSlices, Profile, ProfileOptions,
//     SlicePlan.
//   - Observability: Trace and StageTrace (per-stage wall/queue/alloc
//     records, from Result.Trace), Pool and NewPool (bounded worker pool,
//     attach with WithPool).
//   - Serving: NewModelSnapshot, ModelSnapshot, NewServer, Server,
//     ServeConfig, ServeStats, ClassifyRequest, AntennaVector,
//     ClassifyResponse, AntennaVerdict, and the continuous-refresh
//     controller NewRefresher, Refresher, RefreshConfig, RefreshInfo.
//   - Forecasting & planning: ForecastSet (per-cluster and per-antenna
//     busy-hour forecasters trained by every pipeline run, from
//     Result.Forecasts), ForecastRequest, ForecastResponse, PlanRequest,
//     PlanResponse, PlanAction, PlanResult — the /v1/forecast and
//     /v1/plan capacity-planning surface (see examples/planning).
//   - Sharded serving: NewRouter, Router, ShardConfig, RouterStats,
//     RingStats, ReplicaStats, ShardSinkStats, and the placement ring
//     NewRing, Ring, DefaultVirtualNodes — nationwide-scale ingest
//     partitioned across shard sinks behind replicated serve instances.
//
// Run is the only pipeline entrypoint: context-first, with functional
// options. The pre-option wrappers (RunContext, RunOnDataset,
// RunOnDatasetContext) have been removed; spell them as Run(ctx, cfg),
// Run(ctx, cfg, WithDataset(ds)) respectively.
//
// # Quick start
//
//	result, err := icn.Run(context.Background(), icn.Config{Seed: 1, Scale: 0.1})
//	if err != nil {
//		log.Fatal(err)
//	}
//	fmt.Println("clusters:", result.ClusterSizes())
//	fmt.Println("purity vs ground truth:", result.Purity())
//
// Cancel a run through the context, bound its parallelism with
// WithPool(NewPool(n)), share one generated dataset across runs with
// WithDataset, and read per-stage timings from result.Trace().
//
// To regenerate the paper's artifacts:
//
//	suite, err := icn.NewSuite(icn.Config{Seed: 1, Scale: 0.1})
//	if err != nil {
//		log.Fatal(err)
//	}
//	for _, artifact := range suite.All() {
//		fmt.Println(artifact.Title)
//		fmt.Println(artifact.Text)
//	}
//
// To serve a trained model online (see also cmd/icnserve):
//
//	snap, err := icn.NewModelSnapshot(result)
//	if err != nil {
//		log.Fatal(err)
//	}
//	srv, err := icn.NewServer(snap, icn.ServeConfig{Addr: "127.0.0.1:9470"})
//	if err != nil {
//		log.Fatal(err)
//	}
//	if err := srv.Start(); err != nil {
//		log.Fatal(err)
//	}
//	defer srv.Shutdown(context.Background())
//
// To run the sharded nationwide tier — N ingest shards on a consistent-hash
// ring behind M replicated serve instances all publishing one model
// revision (see also cmd/icnbench -shards and examples/sharding):
//
//	router, err := icn.NewRouter(snap, result, icn.ShardConfig{Shards: 4, Replicas: 2})
//	if err != nil {
//		log.Fatal(err)
//	}
//	if err := router.Start(); err != nil {
//		log.Fatal(err)
//	}
//	defer router.Shutdown(context.Background())
package icn

import (
	"context"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/forecast"
	"repro/internal/obs"
	"repro/internal/pipe"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/synth"
)

// Config parameterizes a pipeline run. The zero value runs the paper's
// full scale (4,762 indoor antennas, 22,000 outdoor, k = 9, 100 trees).
type Config = analysis.Config

// Result is the full pipeline output: features, dendrogram, clusters,
// surrogate model, environment association and outdoor classification.
type Result = analysis.Result

// Suite regenerates the paper's tables and figures from a pipeline run.
type Suite = experiments.Suite

// Artifact is one regenerated table or figure with its shape checks.
type Artifact = experiments.Artifact

// Check is one paper-shape assertion attached to an artifact.
type Check = experiments.Check

// Dataset is a generated synthetic measurement campaign.
type Dataset = synth.Dataset

// DatasetConfig parameterizes standalone dataset generation.
type DatasetConfig = synth.Config

// Trace is the per-stage observability record of a pipeline run: wall
// time, queueing delay, allocation delta and goroutine count per stage.
// Obtain it from Result.Trace().
type Trace = obs.Trace

// StageTrace is one stage's execution record within a Trace.
type StageTrace = obs.StageTrace

// Pool is the bounded worker pool the pipeline's data-parallel kernels run
// on. Attach a custom pool to a run with WithPool.
type Pool = pipe.Pool

// NewPool builds a pool running at most capacity work items at once.
func NewPool(capacity int) *Pool { return pipe.NewPool(capacity) }

// Option customizes one Run call.
type Option func(*runOptions)

type runOptions struct {
	ds   *Dataset
	pool *Pool
}

// WithDataset runs the pipeline on an existing dataset instead of
// generating a fresh one, allowing the dataset to be shared across
// experiments.
func WithDataset(ds *Dataset) Option {
	return func(o *runOptions) { o.ds = ds }
}

// WithPool bounds the run's data-parallel stages (pairwise distances,
// forest training) to the given worker pool instead of the process-shared
// one — one knob for callers embedding the pipeline next to other load.
func WithPool(p *Pool) Option {
	return func(o *runOptions) { o.pool = p }
}

// Run executes the full pipeline. The context cancels in-flight stages at
// their next checkpoint; options select an existing dataset (WithDataset)
// or a caller-bounded worker pool (WithPool).
func Run(ctx context.Context, cfg Config, opts ...Option) (*Result, error) {
	var o runOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.pool != nil {
		ctx = pipe.WithPool(ctx, o.pool)
	}
	if o.ds != nil {
		return analysis.RunOnDatasetContext(ctx, o.ds, cfg)
	}
	return analysis.RunContext(ctx, cfg)
}

// NewSuite runs the pipeline and wraps it in the experiment suite.
func NewSuite(cfg Config) (*Suite, error) { return experiments.NewSuite(cfg) }

// GenerateDataset builds a synthetic nationwide measurement dataset
// without running the analysis.
func GenerateDataset(cfg DatasetConfig) *Dataset { return synth.Generate(cfg) }

// Profile is one cluster's demand profile: characterizing services,
// environment composition, and temporal signature.
type Profile = core.Profile

// ProfileOptions bounds profile construction.
type ProfileOptions = core.Options

// SlicePlan is an environment-aware network-slice recommendation derived
// from a cluster profile (the Section 7 roadmap of the paper).
type SlicePlan = core.SlicePlan

// BuildProfiles derives one Profile per discovered cluster.
func BuildProfiles(res *Result, opts ProfileOptions) []Profile {
	return core.BuildProfiles(res, opts)
}

// PlanSlices derives a network-slice plan per cluster profile.
func PlanSlices(profiles []Profile) []SlicePlan { return core.PlanSlices(profiles) }

// --- Serving ----------------------------------------------------------------

// ModelSnapshot is the frozen, servable output of a pipeline run: the
// Eq. 5 indoor-reference shares plus the trained surrogate forest.
type ModelSnapshot = serve.ModelSnapshot

// NewModelSnapshot freezes the servable state of a finished run.
func NewModelSnapshot(res *Result) (*ModelSnapshot, error) {
	return serve.NewModelSnapshot(res)
}

// ServeConfig parameterizes the online classification service.
type ServeConfig = serve.Config

// ServeStats is a point-in-time snapshot of a Server's activity.
type ServeStats = serve.Stats

// Server is the online antenna-classification HTTP service: batched probe
// ingest with bounded-queue backpressure, Eq. 5 + surrogate-forest
// classification with an LRU verdict cache, and observability endpoints.
type Server = serve.Server

// NewServer builds a serving instance around a model snapshot. Call Start
// to bind the listener and Shutdown for a drained stop.
func NewServer(snap *ModelSnapshot, cfg ServeConfig) (*Server, error) {
	return serve.New(snap, nil, cfg)
}

// ClassifyRequest is the POST /v1/classify body.
type ClassifyRequest = serve.ClassifyRequest

// AntennaVector is one antenna's raw per-service traffic totals.
type AntennaVector = serve.AntennaVector

// ClassifyResponse is the POST /v1/classify response.
type ClassifyResponse = serve.ClassifyResponse

// AntennaVerdict is one antenna's inferred demand cluster.
type AntennaVerdict = serve.AntennaVerdict

// Refresher closes the ingest → retrain → swap loop on a Server: it folds
// live aggregates over the training campaign, re-runs the warm pipeline on
// the antennas that changed (escalating to a full re-clustering past the
// drift threshold), and atomically publishes the retrained snapshot.
type Refresher = serve.Refresher

// RefreshConfig parameterizes a Refresher.
type RefreshConfig = serve.RefreshConfig

// RefreshInfo is the refresh telemetry served under /v1/model.
type RefreshInfo = serve.RefreshInfo

// NewRefresher wires a continuous-refresh controller to a server and the
// offline result its current snapshot was trained from. Call Start to run
// the tick loop and Stop for a drained halt.
func NewRefresher(srv *Server, base *Result, cfg RefreshConfig) (*Refresher, error) {
	return serve.NewRefresher(srv, base, cfg)
}

// --- Forecasting & capacity planning ----------------------------------------

// ForecastSet bundles the per-cluster and per-antenna Holt-Winters
// busy-hour forecasters trained alongside a pipeline run's model
// (Result.Forecasts); snapshots carry it to /v1/forecast and /v1/plan.
type ForecastSet = forecast.Set

// ForecastRequest is the POST /v1/forecast body: exactly one of Cluster
// or Antenna, plus an optional horizon in hours.
type ForecastRequest = serve.ForecastRequest

// ForecastResponse is one model's horizon prediction with busy-hour and
// peak-load metadata, echoing the served model revision.
type ForecastResponse = serve.ForecastResponse

// PlanRequest is the POST /v1/plan body: a what-if scenario (antenna
// additions, removals, reassignments, event-calendar shifts) scored
// against the served revision's forecasters.
type PlanRequest = serve.PlanRequest

// PlanResponse carries the scored scenario.
type PlanResponse = serve.PlanResponse

// PlanAction is one scenario edit; see the forecast.Op* constants mirrored
// as OpAddAntennas, OpRemoveAntennas, OpReassign, OpShiftEvents.
type PlanAction = forecast.Action

// PlanResult is the per-cluster and aggregate busy-hour scoring of a
// scenario.
type PlanResult = forecast.PlanResult

// Scenario edit operations accepted by PlanAction.Op.
const (
	OpAddAntennas    = forecast.OpAddAntennas
	OpRemoveAntennas = forecast.OpRemoveAntennas
	OpReassign       = forecast.OpReassign
	OpShiftEvents    = forecast.OpShiftEvents
)

// --- Sharded serving --------------------------------------------------------

// ShardConfig parameterizes the sharded ingest + replicated serving layer:
// shard and replica counts, ring seeding, queue depths, and the attached
// refresh controller.
type ShardConfig = shard.Config

// Router is the sharded front door: probe ingest partitioned across N
// shard sinks by consistent hash with all-or-nothing batch acks, classify
// traffic proxied round-robin over M replicas with failover, and every
// refreshed snapshot fanned out so all replicas serve one revision.
type Router = shard.Router

// RouterStats is the router's /v1/stats payload: acked-batch accounting,
// ring placement, per-shard queues, and per-replica revisions.
type RouterStats = shard.RouterStats

// RingStats summarizes ring placement state within RouterStats.
type RingStats = shard.RingStats

// ReplicaStats is one replica's routing and serving state.
type ReplicaStats = shard.ReplicaStats

// ShardSinkStats is one shard's queue depth and fold progress.
type ShardSinkStats = shard.SinkStats

// NewRouter builds the sharded layer around a trained snapshot. base is
// the offline result the snapshot came from; when non-nil a refresh
// controller is attached with cross-shard totals and snapshot fan-out
// wired in (pass nil to serve a static snapshot). Call Start to bind and
// Shutdown for a drained stop that folds every acked batch.
func NewRouter(snap *ModelSnapshot, base *Result, cfg ShardConfig) (*Router, error) {
	return shard.NewRouter(snap, base, cfg)
}

// Ring is the seeded consistent-hash ring placing antennas on shards.
type Ring = shard.Ring

// DefaultVirtualNodes is the ring's default per-shard virtual-node count.
const DefaultVirtualNodes = shard.DefaultVirtualNodes

// NewRing builds a placement ring over the given shard count.
// virtualNodes ≤ 0 selects DefaultVirtualNodes; the same (shards,
// virtualNodes, seed) triple always yields the same placement.
func NewRing(shards, virtualNodes int, seed uint64) (*Ring, error) {
	return shard.NewRing(shards, virtualNodes, seed)
}
