GO ?= go

.PHONY: build lint lint-fast test race bench bench-gate bench-baseline artifacts serve-smoke refresh-smoke forecast-smoke serve-bench chaos-smoke shard-smoke shard-bench fuzz-short

build:
	$(GO) build ./...

# Domain lint: icnvet machine-checks the pipeline's determinism,
# concurrency and error-handling contracts, including the cross-package
# dataflow analyzers (see DESIGN.md §13). Always a full, cache-free run —
# this is what CI gates on.
lint: build
	$(GO) run ./cmd/icnvet

# Incremental domain lint: packages whose content hash is unchanged replay
# findings and facts from .icnvet-cache instead of being re-type-checked,
# so the edit-test loop pays for the packages it touched (plus their
# importers), not the whole module.
lint-fast: build
	$(GO) run ./cmd/icnvet -incremental

test: lint-fast
	$(GO) test ./...

# Full suite under the race detector — the shared worker pool and the
# staged scheduler must stay race-free.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# Benchmark-regression gate: rerun the pipeline at the committed baseline's
# shape and fail when any stage (or the total) slows beyond the tolerance.
# Env knobs (BENCH_GATE_TOLERANCE, BENCH_GATE_RUNS, ...) are documented in
# scripts/bench_gate.sh.
bench-gate:
	./scripts/bench_gate.sh

# Refresh the committed gate baseline from a best-of-3 measurement on this
# machine (the printed verdict against the old baseline is informational —
# a refresh after an intentional slowdown is allowed to "fail" the gate).
# Run after intentional performance changes, commit the result.
bench-baseline:
	-$(GO) run ./cmd/icnbench -quiet -gateruns 3 -gate BENCH_baseline.json -benchjson BENCH_baseline.json

# Regenerate every table/figure and the machine-readable stage timings.
artifacts:
	$(GO) run ./cmd/icnbench -benchjson BENCH_pipeline.json

# End-to-end smoke of the online service: start icnserve at a tiny scale,
# ingest a probe batch, classify, scrape /metrics, stop it gracefully.
serve-smoke:
	./scripts/serve_smoke.sh

# End-to-end smoke of the continuous-refresh loop: ingest → background
# warm retrain → revision swap, observed and audited from the client side
# (see DESIGN.md §12).
refresh-smoke:
	./scripts/refresh_smoke.sh

# End-to-end smoke of the forecasting & planning surface: forecast/model
# revision consistency, cache-hit bit-identity, a planning round-trip, and
# a fresh forecast revision after a live ingest → refresh swap (see
# DESIGN.md §16).
forecast-smoke:
	./scripts/forecast_smoke.sh

# Sustained concurrent classify load against an in-process icnserve, plus
# the forecast leg (training-time row and a /v1/forecast load with a
# mid-run swap and per-revision bit-parity audit).
serve-bench:
	$(GO) run ./cmd/icnbench -serve -scale 0.1 -trees 25 -servejson BENCH_serve.json

# Seeded fault-injection soak: two identical-seed runs of icnbench -chaos
# against a live server + collector, asserting acked-batch survival,
# served/offline label parity across model swaps, graceful degradation,
# and a reproducible fault-plan digest (see DESIGN.md §10).
chaos-smoke:
	./scripts/chaos_smoke.sh

# End-to-end smoke of the sharded tier: two identical-seed runs of the
# icnbench -shards leg at a small scale, each killing one shard and one
# replica mid-soak; the runs must agree on the ring digest and the
# acked/folded record counts (see DESIGN.md §14).
shard-smoke:
	./scripts/shard_smoke.sh

# Full nationwide-scale sharded benchmark: scale 1.0 (4,762 indoor +
# 22,000 outdoor antennas), 2M probe sessions through 4 shards and 2
# replicas with mid-run kills. Refreshes the committed BENCH_shard.json
# gate baseline; run after intentional performance changes and commit.
shard-bench:
	$(GO) run ./cmd/icnbench -shards 4 -replicas 2 -shardjson BENCH_shard.json

# Every fuzz target for a short fixed slice each — the CI-sized sweep of
# the wire-format, CSV, and HTTP-body parsers.
FUZZTIME ?= 10s
fuzz-short:
	$(GO) test -run '^$$' -fuzz FuzzReaderNeverPanics -fuzztime $(FUZZTIME) ./internal/probe
	$(GO) test -run '^$$' -fuzz FuzzECGIDecode -fuzztime $(FUZZTIME) ./internal/probe
	$(GO) test -run '^$$' -fuzz FuzzWriterReaderRoundTrip -fuzztime $(FUZZTIME) ./internal/probe
	$(GO) test -run '^$$' -fuzz FuzzReadTraffic -fuzztime $(FUZZTIME) ./internal/dataio
	$(GO) test -run '^$$' -fuzz FuzzIngestBody -fuzztime $(FUZZTIME) ./internal/serve
	$(GO) test -run '^$$' -fuzz FuzzClassifyBody -fuzztime $(FUZZTIME) ./internal/serve
	$(GO) test -run '^$$' -fuzz FuzzForecastBody -fuzztime $(FUZZTIME) ./internal/serve
