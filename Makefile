GO ?= go

.PHONY: build lint test race bench artifacts

build:
	$(GO) build ./...

# Domain lint: icnvet machine-checks the pipeline's determinism,
# concurrency and error-handling contracts (see DESIGN.md).
lint: build
	$(GO) run ./cmd/icnvet

test: lint
	$(GO) test ./...

# Full suite under the race detector — the shared worker pool and the
# staged scheduler must stay race-free.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# Regenerate every table/figure and the machine-readable stage timings.
artifacts:
	$(GO) run ./cmd/icnbench -benchjson BENCH_pipeline.json
