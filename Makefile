GO ?= go

.PHONY: build lint test race bench artifacts serve-smoke serve-bench

build:
	$(GO) build ./...

# Domain lint: icnvet machine-checks the pipeline's determinism,
# concurrency and error-handling contracts (see DESIGN.md).
lint: build
	$(GO) run ./cmd/icnvet

test: lint
	$(GO) test ./...

# Full suite under the race detector — the shared worker pool and the
# staged scheduler must stay race-free.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# Regenerate every table/figure and the machine-readable stage timings.
artifacts:
	$(GO) run ./cmd/icnbench -benchjson BENCH_pipeline.json

# End-to-end smoke of the online service: start icnserve at a tiny scale,
# ingest a probe batch, classify, scrape /metrics, stop it gracefully.
serve-smoke:
	./scripts/serve_smoke.sh

# Sustained concurrent classify load against an in-process icnserve.
serve-bench:
	$(GO) run ./cmd/icnbench -serve -scale 0.1 -trees 25 -servejson BENCH_serve.json
