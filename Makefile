GO ?= go

.PHONY: build test race bench artifacts

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Full suite under the race detector — the shared worker pool and the
# staged scheduler must stay race-free.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# Regenerate every table/figure and the machine-readable stage timings.
artifacts:
	$(GO) run ./cmd/icnbench -benchjson BENCH_pipeline.json
