// Command icnserve runs the online antenna-classification service: it
// trains a model snapshot by running the offline pipeline on a synthetic
// campaign, then serves probe-batch ingest and Eq. 5 + surrogate-forest
// classification over HTTP until SIGINT/SIGTERM, draining in-flight ingest
// batches on the way out.
//
// Usage:
//
//	icnserve -addr 127.0.0.1:9470 [-seed N] [-scale F] [-trees N]
//	         [-queue N] [-workers N] [-timeout D] [-cache N]
//	         [-refresh-interval D] [-drift-threshold F]
//	icnserve -sample DIR [-seed N] [-scale F]   # write curl-able bodies, exit
//
// With -refresh-interval > 0 the service closes the ingest → retrain → swap
// loop: a background controller periodically folds the ingested aggregates
// over the training campaign, re-runs the warm pipeline on the antennas
// that changed (escalating to a full re-clustering past -drift-threshold),
// and atomically swaps in the retrained snapshot. /v1/model reports the
// refresh telemetry.
//
// With -sample the command does not serve: it writes DIR/ingest.bin (a
// probe wire-format batch) and DIR/classify.json (a classify request for
// the matching model), the bodies used by `make serve-smoke`.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/probe"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/services"
	"repro/internal/synth"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9470", "HTTP listen address")
	seed := flag.Uint64("seed", 1, "pipeline seed for the trained snapshot")
	scale := flag.Float64("scale", 0.1, "training-campaign scale (1 = paper's full population)")
	trees := flag.Int("trees", 50, "surrogate forest size")
	queue := flag.Int("queue", 64, "ingest queue depth in batches")
	workers := flag.Int("workers", 2, "ingest drain workers")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request deadline")
	cacheSize := flag.Int("cache", 4096, "classify LRU capacity (entries)")
	refreshEvery := flag.Duration("refresh-interval", 0, "continuous model refresh period (0 disables the refresh loop)")
	driftThreshold := flag.Float64("drift-threshold", analysis.DefaultDriftThreshold,
		"reassigned-antenna fraction past which a refresh re-runs the full clustering")
	sample := flag.String("sample", "", "write sample ingest/classify request bodies to this directory and exit")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "icnserve: training snapshot (seed=%d scale=%.2f trees=%d)...\n",
		*seed, *scale, *trees)
	res, err := analysis.Run(analysis.Config{Seed: *seed, Scale: *scale, ForestTrees: *trees})
	if err != nil {
		fatal(err)
	}
	snap, err := serve.NewModelSnapshot(res)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "icnserve: snapshot ready — %d services, k=%d, revision %d\n",
		snap.Services, snap.K, snap.Revision)

	if *sample != "" {
		if err := writeSamples(*sample, snap, *seed); err != nil {
			fatal(err)
		}
		return
	}

	srv, err := serve.New(snap, nil, serve.Config{
		Addr:           *addr,
		QueueDepth:     *queue,
		IngestWorkers:  *workers,
		RequestTimeout: *timeout,
		CacheSize:      *cacheSize,
	})
	if err != nil {
		fatal(err)
	}
	if err := srv.Start(); err != nil {
		fatal(err)
	}
	var refresher *serve.Refresher
	if *refreshEvery > 0 {
		refresher, err = serve.NewRefresher(srv, res, serve.RefreshConfig{
			Interval:       *refreshEvery,
			DriftThreshold: *driftThreshold,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "icnserve: "+format+"\n", args...)
			},
		})
		if err != nil {
			fatal(err)
		}
		refresher.Start()
		fmt.Fprintf(os.Stderr, "icnserve: refresh loop every %s (drift threshold %.3f)\n",
			*refreshEvery, *driftThreshold)
	}
	fmt.Printf("icnserve: serving on http://%s (SIGINT to stop)\n", srv.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	fmt.Fprintln(os.Stderr, "icnserve: shutting down, draining ingest queue...")
	if refresher != nil {
		refresher.Stop()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fatal(err)
	}
	st := srv.Stats()
	fmt.Printf("icnserve: stopped — %d batches / %d records ingested, %d vectors classified (%d cache hits)\n",
		st.IngestBatches, st.IngestRecords, st.ClassifiedVectors, st.CacheHits)
}

// writeSamples emits request bodies matched to the trained snapshot: a
// probe-stream ingest batch and a classify request over synthetic outdoor
// antennas.
func writeSamples(dir string, snap *serve.ModelSnapshot, seed uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	// Ingest: one day of sessions for a couple of antennas.
	ds := synth.Generate(synth.Config{Seed: seed, Scale: 0.02, OutdoorCount: 8})
	r := rng.New(seed + 1)
	var records []probe.Record
	for _, a := range ds.Indoor[:2] {
		perService := make([]float64, services.M)
		for j := 0; j < services.M; j++ {
			series := ds.HourlyService(a, j)
			for h := 0; h < 24; h++ {
				perService[j] = series[h]
				records = append(records, probe.GenerateSessions(uint32(h), uint32(a.ID), perService, r)...)
				perService[j] = 0
			}
		}
	}
	ingestPath := filepath.Join(dir, "ingest.bin")
	f, err := os.Create(ingestPath)
	if err != nil {
		return err
	}
	w := probe.NewWriter(f)
	for _, rec := range records {
		if err := w.Write(rec); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	// Classify: the synthetic outdoor population's raw traffic vectors.
	var req serve.ClassifyRequest
	for i := 0; i < ds.OutdoorTraffic.Rows() && i < 4; i++ {
		req.Antennas = append(req.Antennas, serve.AntennaVector{
			ID: uint32(i), Revision: 1, Traffic: ds.OutdoorTraffic.Row(i),
		})
	}
	data, err := json.MarshalIndent(req, "", "  ")
	if err != nil {
		return err
	}
	classifyPath := filepath.Join(dir, "classify.json")
	if err := os.WriteFile(classifyPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "icnserve: wrote %s (%d records) and %s (%d antennas)\n",
		ingestPath, len(records), classifyPath, len(req.Antennas))
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "icnserve: %v\n", err)
	os.Exit(1)
}
