// Command icnbench regenerates every table and figure of the paper's
// evaluation (Table 1, Figures 1-11) plus the ablation studies, printing
// each artifact with its paper-shape checks and writing text files when an
// output directory is given.
//
// Usage:
//
//	icnbench [-seed N] [-scale F] [-k N] [-trees N] [-out DIR] [-quiet]
//	         [-benchjson FILE]
//	icnbench -serve [-serveclients N] [-servereqs N] [-servebatch N]
//	         [-servejson FILE] [-forecast=false]
//	icnbench -shards N [-replicas M] [-shardclients N] [-shardbatches N]
//	         [-shardrecords N] [-shardjson FILE]
//
// With -serve the command instead benchmarks the online path: it stands up
// an in-process icnserve instance around a freshly trained snapshot,
// sustains a concurrent classify load over HTTP, drains the server
// gracefully, and writes throughput plus p50/p99 latency to -servejson
// (default BENCH_serve.json). Unless -forecast=false, it also times the
// forecast-set training and sustains a /v1/forecast load with a model swap
// landing mid-run, auditing every sampled response bit-for-bit against an
// offline refit of the echoed revision's series; the forecast_train,
// forecast_p50 and forecast_p99 rows gate alongside the classify rows.
//
// With -shards the command benchmarks the sharded nationwide tier: N
// ingest shards on a consistent-hash ring behind M replicated serve
// instances, a bulk probe-session load with one shard and one replica
// killed mid-flight, a cross-shard refresh fan-out, and a full-population
// classify audit. Unless -scale is given it runs at scale 1 — the paper's
// 4,762 indoor and 22,000 outdoor antennas — and the default load drives
// 2,000,000 probe sessions. Results land in -shardjson (default
// BENCH_shard.json).
//
// At -scale 1 the run uses the paper's full population (4,762 indoor and
// 22,000 outdoor antennas); this takes a few minutes and ~1 GiB of memory.
// The default scale 0.25 reproduces every shape in seconds. -benchjson
// writes a machine-readable record of the run (per-stage wall/wait times,
// allocation estimates, pool counters) for tracking the performance
// trajectory across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	seed := flag.Uint64("seed", 1, "generator seed (identical seeds reproduce identical runs)")
	scale := flag.Float64("scale", 0.25, "fraction of the paper's antenna population (1 = full scale)")
	k := flag.Int("k", 9, "number of flat clusters")
	trees := flag.Int("trees", 100, "surrogate random-forest size")
	outDir := flag.String("out", "", "directory to write per-artifact text files (optional)")
	mdPath := flag.String("md", "", "write a consolidated markdown report to this path (optional)")
	benchPath := flag.String("benchjson", "", "write a machine-readable stage-timing record to this path (optional)")
	quiet := flag.Bool("quiet", false, "print only the check summary")
	serveBench := flag.Bool("serve", false, "benchmark the online serving path instead of regenerating artifacts")
	serveClients := flag.Int("serveclients", 8, "concurrent classify clients (with -serve)")
	serveReqs := flag.Int("servereqs", 50, "requests per client (with -serve)")
	serveBatch := flag.Int("servebatch", 64, "antennas per classify request (with -serve)")
	serveJSON := flag.String("servejson", "BENCH_serve.json", "serving benchmark output path (with -serve)")
	serveForecast := flag.Bool("forecast", true, "run the forecast leg — train-time row plus a /v1/forecast load with a mid-run model swap and per-revision parity audit (with -serve)")
	chaos := flag.Bool("chaos", false, "run the seeded fault-injection soak against a live server instead of regenerating artifacts")
	chaosSchedules := flag.Int("chaosschedules", 3, "number of seeded fault schedules (with -chaos)")
	chaosSwaps := flag.Int("chaosswaps", 50, "refresh-driven snapshot swaps the swap-storm leg must complete with parity held (with -chaos; 0 disables the leg)")
	chaosShards := flag.Int("chaosshards", 3, "shards in the sharded chaos leg: kills a shard and a replica mid-soak with invariants held (with -chaos; 0 disables the leg)")
	chaosJSON := flag.String("chaosjson", "", "chaos soak record output path (with -chaos, optional)")
	shards := flag.Int("shards", 0, "benchmark the sharded tier with this many ingest shards instead of regenerating artifacts (0 = off; defaults -scale to 1)")
	replicas := flag.Int("replicas", 2, "serve replicas behind the shard router (with -shards)")
	shardClients := flag.Int("shardclients", 8, "concurrent ingest clients (with -shards)")
	shardBatches := flag.Int("shardbatches", 50, "probe batches per client (with -shards)")
	shardRecords := flag.Int("shardrecords", 5000, "probe records per batch (with -shards)")
	shardJSON := flag.String("shardjson", "BENCH_shard.json", "sharded benchmark output path (with -shards)")
	gatePath := flag.String("gate", "", "baseline stage-timing JSON: rerun the pipeline and fail on per-stage wall-time regressions")
	gateCompare := flag.String("gatecompare", "", "candidate stage-timing JSON to compare instead of rerunning (with -gate)")
	gateTolerance := flag.Float64("gatetolerance", 0.25, "fractional slowdown allowed per stage before the gate fails (with -gate)")
	gateFloor := flag.Float64("gatefloor", 120, "baseline milliseconds floor — stages faster than this are held to the floor's limit, absorbing scheduler noise (with -gate)")
	gateRuns := flag.Int("gateruns", 2, "pipeline reruns; the per-stage best wall time is gated (with -gate)")
	gateMax := flag.String("gatemax", "", "absolute per-stage wall-time ceilings as stage=ms pairs, e.g. temporal=300,selection=130 — a listed stage fails above its ceiling even inside the relative tolerance (with -gate)")
	gateExpect := flag.String("gateexpect", "", "comma-separated gate-row schema — the candidate must carry exactly these stage rows, each once; unknown or missing rows fail the gate (with -gate)")
	flag.Parse()

	// The sharded leg models the nationwide deployment: unless -scale was
	// given explicitly, -shards runs the paper's full population.
	if *shards > 0 {
		scaleSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "scale" {
				scaleSet = true
			}
		})
		if !scaleSet {
			*scale = 1.0
		}
	}

	cfg := analysis.Config{
		Seed:        *seed,
		Scale:       *scale,
		K:           *k,
		ForestTrees: *trees,
	}
	if *chaos {
		if err := runChaos(cfg, *chaosSchedules, *chaosSwaps, *chaosShards, *chaosJSON); err != nil {
			fmt.Fprintf(os.Stderr, "icnbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *shards > 0 {
		if err := runShardBench(cfg, *shards, *replicas, *shardClients, *shardBatches, *shardRecords, *shardJSON); err != nil {
			fmt.Fprintf(os.Stderr, "icnbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *gatePath != "" {
		maxMS, err := parseGateMax(*gateMax)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icnbench: %v\n", err)
			os.Exit(1)
		}
		if err := runGate(cfg, *gatePath, *gateCompare, *benchPath, *gateTolerance, *gateFloor, *gateRuns, maxMS, parseGateExpect(*gateExpect)); err != nil {
			fmt.Fprintf(os.Stderr, "icnbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *serveBench {
		if err := runServeBench(cfg, *serveClients, *serveReqs, *serveBatch, *serveJSON, *serveForecast); err != nil {
			fmt.Fprintf(os.Stderr, "icnbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Fprintf(os.Stderr, "icnbench: running pipeline (seed=%d scale=%.2f k=%d trees=%d)...\n",
		cfg.Seed, cfg.Scale, cfg.K, cfg.ForestTrees)
	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "icnbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "icnbench: pipeline done — %d indoor antennas, %d outdoor, purity %.3f, ARI %.3f, surrogate acc %.3f\n",
		len(suite.Res.Dataset.Indoor), len(suite.Res.Dataset.Outdoor),
		suite.Res.Purity(), suite.Res.AdjustedRandIndex(), suite.Res.SurrogateAccuracy)
	fmt.Fprintln(os.Stderr, suite.Res.Trace())

	if *benchPath != "" {
		if err := writeBenchJSON(*benchPath, cfg, suite); err != nil {
			fmt.Fprintf(os.Stderr, "icnbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "icnbench: wrote stage timings to %s\n", *benchPath)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "icnbench: %v\n", err)
			os.Exit(1)
		}
	}

	artifacts := suite.All()
	failed := 0
	for _, a := range artifacts {
		if !*quiet {
			fmt.Printf("==== %s: %s ====\n", a.ID, a.Title)
			fmt.Println(a.Text)
		}
		for _, c := range a.Checks {
			status := "PASS"
			if !c.Pass {
				status = "FAIL"
				failed++
			}
			fmt.Printf("  [%s] %s/%s: %s\n", status, a.ID, c.Name, c.Detail)
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, strings.ToLower(a.ID)+".txt")
			content := fmt.Sprintf("%s: %s\n\n%s", a.ID, a.Title, a.Text)
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "icnbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if *mdPath != "" {
		if err := writeMarkdown(*mdPath, cfg, suite, artifacts); err != nil {
			fmt.Fprintf(os.Stderr, "icnbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "icnbench: wrote markdown report to %s\n", *mdPath)
	}

	fmt.Printf("\nicnbench: %d artifacts, %d failed checks\n", len(artifacts), failed)
	if failed > 0 {
		os.Exit(1)
	}
}

// benchRecord is the schema of the -benchjson output: one self-contained
// snapshot of a pipeline run's configuration and per-stage costs.
type benchRecord struct {
	Seed     uint64           `json:"seed"`
	Scale    float64          `json:"scale"`
	K        int              `json:"k"`
	Trees    int              `json:"trees"`
	Indoor   int              `json:"indoor_antennas"`
	Outdoor  int              `json:"outdoor_antennas"`
	TotalMS  float64          `json:"total_ms"`
	Stages   []stageJSON      `json:"stages"`
	Counters map[string]int64 `json:"counters"`
}

type stageJSON struct {
	Name       string   `json:"name"`
	Deps       []string `json:"deps,omitempty"`
	WallMS     float64  `json:"wall_ms"`
	WaitedMS   float64  `json:"waited_ms"`
	AllocBytes uint64   `json:"alloc_bytes"`
	Goroutines int      `json:"goroutines"`
}

func buildBenchRecord(cfg analysis.Config, suite *experiments.Suite) benchRecord {
	tr := suite.Res.Trace()
	rec := benchRecord{
		Seed:     cfg.Seed,
		Scale:    cfg.Scale,
		K:        cfg.K,
		Trees:    cfg.ForestTrees,
		Indoor:   len(suite.Res.Dataset.Indoor),
		Outdoor:  len(suite.Res.Dataset.Outdoor),
		TotalMS:  float64(tr.Total().Microseconds()) / 1000,
		Counters: obs.Counters(),
	}
	for _, st := range tr.Stages() {
		rec.Stages = append(rec.Stages, stageJSON{
			Name:       st.Name,
			Deps:       st.Deps,
			WallMS:     float64(st.Wall.Microseconds()) / 1000,
			WaitedMS:   float64(st.Waited.Microseconds()) / 1000,
			AllocBytes: st.AllocBytes,
			Goroutines: st.Goroutines,
		})
	}
	return rec
}

func writeBenchJSON(path string, cfg analysis.Config, suite *experiments.Suite) error {
	data, err := json.MarshalIndent(buildBenchRecord(cfg, suite), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeMarkdown renders every artifact into a single markdown document
// with a check-summary table up front.
func writeMarkdown(path string, cfg analysis.Config, suite *experiments.Suite, artifacts []experiments.Artifact) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# ICN reproduction report\n\n")
	fmt.Fprintf(&b, "seed %d, scale %.2f, k %d, %d surrogate trees — %d indoor antennas, %d outdoor.\n\n",
		cfg.Seed, cfg.Scale, cfg.K, cfg.ForestTrees,
		len(suite.Res.Dataset.Indoor), len(suite.Res.Dataset.Outdoor))
	fmt.Fprintf(&b, "Validation vs hidden ground truth: purity %.3f, ARI %.3f, surrogate accuracy %.3f.\n\n",
		suite.Res.Purity(), suite.Res.AdjustedRandIndex(), suite.Res.SurrogateAccuracy)

	b.WriteString("## Check summary\n\n| artifact | check | status | detail |\n|---|---|---|---|\n")
	for _, a := range artifacts {
		for _, c := range a.Checks {
			status := "PASS"
			if !c.Pass {
				status = "**FAIL**"
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %s |\n", a.ID, c.Name, status, c.Detail)
		}
	}
	b.WriteString("\n")
	for _, a := range artifacts {
		fmt.Fprintf(&b, "## %s: %s\n\n```\n%s```\n\n", a.ID, a.Title, a.Text)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
