// Command icnbench regenerates every table and figure of the paper's
// evaluation (Table 1, Figures 1-11) plus the ablation studies, printing
// each artifact with its paper-shape checks and writing text files when an
// output directory is given.
//
// Usage:
//
//	icnbench [-seed N] [-scale F] [-k N] [-trees N] [-out DIR] [-quiet]
//
// At -scale 1 the run uses the paper's full population (4,762 indoor and
// 22,000 outdoor antennas); this takes a few minutes and ~1 GiB of memory.
// The default scale 0.25 reproduces every shape in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 1, "generator seed (identical seeds reproduce identical runs)")
	scale := flag.Float64("scale", 0.25, "fraction of the paper's antenna population (1 = full scale)")
	k := flag.Int("k", 9, "number of flat clusters")
	trees := flag.Int("trees", 100, "surrogate random-forest size")
	outDir := flag.String("out", "", "directory to write per-artifact text files (optional)")
	mdPath := flag.String("md", "", "write a consolidated markdown report to this path (optional)")
	quiet := flag.Bool("quiet", false, "print only the check summary")
	flag.Parse()

	cfg := analysis.Config{
		Seed:        *seed,
		Scale:       *scale,
		K:           *k,
		ForestTrees: *trees,
	}
	fmt.Fprintf(os.Stderr, "icnbench: running pipeline (seed=%d scale=%.2f k=%d trees=%d)...\n",
		cfg.Seed, cfg.Scale, cfg.K, cfg.ForestTrees)
	suite := experiments.NewSuite(cfg)
	fmt.Fprintf(os.Stderr, "icnbench: pipeline done — %d indoor antennas, %d outdoor, purity %.3f, ARI %.3f, surrogate acc %.3f\n",
		len(suite.Res.Dataset.Indoor), len(suite.Res.Dataset.Outdoor),
		suite.Res.Purity(), suite.Res.AdjustedRandIndex(), suite.Res.SurrogateAccuracy)

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "icnbench: %v\n", err)
			os.Exit(1)
		}
	}

	artifacts := suite.All()
	failed := 0
	for _, a := range artifacts {
		if !*quiet {
			fmt.Printf("==== %s: %s ====\n", a.ID, a.Title)
			fmt.Println(a.Text)
		}
		for _, c := range a.Checks {
			status := "PASS"
			if !c.Pass {
				status = "FAIL"
				failed++
			}
			fmt.Printf("  [%s] %s/%s: %s\n", status, a.ID, c.Name, c.Detail)
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, strings.ToLower(a.ID)+".txt")
			content := fmt.Sprintf("%s: %s\n\n%s", a.ID, a.Title, a.Text)
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "icnbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if *mdPath != "" {
		if err := writeMarkdown(*mdPath, cfg, suite, artifacts); err != nil {
			fmt.Fprintf(os.Stderr, "icnbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "icnbench: wrote markdown report to %s\n", *mdPath)
	}

	fmt.Printf("\nicnbench: %d artifacts, %d failed checks\n", len(artifacts), failed)
	if failed > 0 {
		os.Exit(1)
	}
}

// writeMarkdown renders every artifact into a single markdown document
// with a check-summary table up front.
func writeMarkdown(path string, cfg analysis.Config, suite *experiments.Suite, artifacts []experiments.Artifact) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# ICN reproduction report\n\n")
	fmt.Fprintf(&b, "seed %d, scale %.2f, k %d, %d surrogate trees — %d indoor antennas, %d outdoor.\n\n",
		cfg.Seed, cfg.Scale, cfg.K, cfg.ForestTrees,
		len(suite.Res.Dataset.Indoor), len(suite.Res.Dataset.Outdoor))
	fmt.Fprintf(&b, "Validation vs hidden ground truth: purity %.3f, ARI %.3f, surrogate accuracy %.3f.\n\n",
		suite.Res.Purity(), suite.Res.AdjustedRandIndex(), suite.Res.SurrogateAccuracy)

	b.WriteString("## Check summary\n\n| artifact | check | status | detail |\n|---|---|---|---|\n")
	for _, a := range artifacts {
		for _, c := range a.Checks {
			status := "PASS"
			if !c.Pass {
				status = "**FAIL**"
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %s |\n", a.ID, c.Name, status, c.Detail)
		}
	}
	b.WriteString("\n")
	for _, a := range artifacts {
		fmt.Fprintf(&b, "## %s: %s\n\n```\n%s```\n\n", a.ID, a.Title, a.Text)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
