package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/pipe"
	"repro/internal/probe"
	"repro/internal/serve"
	"repro/internal/services"
)

// serveBenchRecord is the BENCH_serve.json schema: one snapshot of the
// serving path's sustained throughput and latency under concurrent load,
// plus one warm refresh cycle. TotalMS and Stages mirror the benchRecord
// shape so `icnbench -gate BENCH_serve.json -gatecompare <fresh>` ratchets
// the serving latencies exactly like the pipeline stages.
type serveBenchRecord struct {
	Seed          uint64  `json:"seed"`
	Scale         float64 `json:"scale"`
	Trees         int     `json:"trees"`
	Clients       int     `json:"clients"`
	RequestsPerC  int     `json:"requests_per_client"`
	BatchAntennas int     `json:"batch_antennas"`
	ModelRevision uint64  `json:"model_revision"`

	TotalRequests int     `json:"total_requests"`
	FailedReqs    int     `json:"failed_requests"`
	WallMS        float64 `json:"wall_ms"`
	RequestsPerS  float64 `json:"requests_per_s"`
	VectorsPerS   float64 `json:"vectors_per_s"`
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
	MaxMS         float64 `json:"max_ms"`

	IngestRecords int64 `json:"ingest_records"`
	CacheHits     int64 `json:"cache_hits"`

	// Gate-comparable rows: classify_p50, classify_p99, refresh_warm.
	TotalMS float64     `json:"total_ms"`
	Stages  []stageJSON `json:"stages"`
}

// runServeBench stands up an in-process icnserve instance around a freshly
// trained snapshot and sustains a concurrent classify load against it over
// real HTTP, then writes the latency/throughput record and drains the
// server gracefully.
func runServeBench(cfg analysis.Config, clients, requests, batch int, outPath string) error {
	fmt.Fprintf(os.Stderr, "icnbench: training snapshot (seed=%d scale=%.2f trees=%d)...\n",
		cfg.Seed, cfg.Scale, cfg.ForestTrees)
	res, err := analysis.Run(cfg)
	if err != nil {
		return err
	}
	snap, err := serve.NewModelSnapshot(res)
	if err != nil {
		return err
	}
	srv, err := serve.New(snap, nil, serve.Config{QueueDepth: 256})
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	url := "http://" + srv.Addr().String()

	// The load uses the synthetic outdoor population's raw vectors — the
	// exact Section 5.3 workload — cycling through the rows per request.
	outdoor := res.Dataset.OutdoorTraffic
	if batch > outdoor.Rows() {
		batch = outdoor.Rows()
	}
	bodies := make([][]byte, clients)
	for c := range bodies {
		var req serve.ClassifyRequest
		for i := 0; i < batch; i++ {
			row := (c*batch + i) % outdoor.Rows()
			req.Antennas = append(req.Antennas, serve.AntennaVector{
				ID: uint32(row), Traffic: outdoor.Row(row),
			})
		}
		bodies[c], err = json.Marshal(req)
		if err != nil {
			return err
		}
	}

	fmt.Fprintf(os.Stderr, "icnbench: serve load — %d clients × %d requests × %d antennas against %s\n",
		clients, requests, batch, url)
	latencies := make([][]float64, clients)
	failures := make([]int, clients)
	start := time.Now()
	var loaders pipe.Tasks
	for c := 0; c < clients; c++ {
		c := c
		loaders.Go(func() {
			client := &http.Client{Timeout: 30 * time.Second}
			lat := make([]float64, 0, requests)
			for r := 0; r < requests; r++ {
				t0 := time.Now()
				resp, err := client.Post(url+"/v1/classify", "application/json", bytes.NewReader(bodies[c]))
				if err != nil {
					failures[c]++
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures[c]++
					continue
				}
				lat = append(lat, float64(time.Since(t0).Microseconds())/1000)
			}
			latencies[c] = lat
		})
	}
	loaders.Wait()
	wall := time.Since(start)

	var all []float64
	failed := 0
	for c := range latencies {
		all = append(all, latencies[c]...)
		failed += failures[c]
	}
	if len(all) == 0 {
		return fmt.Errorf("icnbench: every serve-bench request failed")
	}
	sort.Float64s(all)
	quantile := func(q float64) float64 {
		i := int(q * float64(len(all)-1))
		return all[i]
	}

	// Refresh leg: fold a deterministic ingest batch over the training
	// campaign and time one warm refresh cycle — the latency an operator
	// pays per background model update.
	ref, err := serve.NewRefresher(srv, res, serve.RefreshConfig{Interval: time.Hour})
	if err != nil {
		return err
	}
	nIndoor := res.Dataset.Traffic.Rows()
	recs := make([]probe.Record, 0, 500)
	for i := 0; i < 500; i++ {
		recs = append(recs, probe.Record{
			Hour: uint32(i % 24), AntennaID: uint32(i % nIndoor),
			Protocol: probe.TCP, ServerPort: 443,
			ServerName: probe.DomainOf(i % services.M),
			DownBytes:  2 << 20, UpBytes: 1 << 18,
		})
	}
	srv.Sink().AddBatch(recs)
	rctx, rcancel := context.WithTimeout(context.Background(), 2*time.Minute)
	rout, err := ref.RefreshOnce(rctx)
	rcancel()
	if err != nil {
		return fmt.Errorf("icnbench: serve refresh leg: %w", err)
	}
	if !rout.Swapped {
		return fmt.Errorf("icnbench: serve refresh leg published no new revision (drift %.4f)", rout.Stats.Drift)
	}
	refreshMS := float64(rout.Duration.Microseconds()) / 1000
	fmt.Fprintf(os.Stderr, "icnbench: warm refresh published revision %016x in %.1fms (reassigned %d, escalated %v)\n",
		rout.Revision, refreshMS, rout.Stats.Reassigned, rout.Stats.Escalated)

	st := srv.Stats()
	rec := serveBenchRecord{
		Seed: cfg.Seed, Scale: cfg.Scale, Trees: cfg.ForestTrees,
		Clients: clients, RequestsPerC: requests, BatchAntennas: batch,
		ModelRevision: snap.Revision,
		TotalRequests: len(all),
		FailedReqs:    failed,
		WallMS:        float64(wall.Microseconds()) / 1000,
		RequestsPerS:  float64(len(all)) / wall.Seconds(),
		VectorsPerS:   float64(len(all)*batch) / wall.Seconds(),
		P50MS:         quantile(0.50),
		P99MS:         quantile(0.99),
		MaxMS:         all[len(all)-1],
		IngestRecords: st.IngestRecords,
		CacheHits:     st.CacheHits,
	}
	rec.TotalMS = rec.WallMS + refreshMS
	rec.Stages = []stageJSON{
		{Name: "classify_p50", WallMS: rec.P50MS},
		{Name: "classify_p99", WallMS: rec.P99MS},
		{Name: "refresh_warm", WallMS: refreshMS},
	}

	shutdownStart := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("icnbench: serve shutdown: %w", err)
	}
	fmt.Fprintf(os.Stderr, "icnbench: serve drained in %v — %.0f req/s, %.0f vectors/s, p50 %.2fms p99 %.2fms (%d failed)\n",
		time.Since(shutdownStart).Round(time.Millisecond),
		rec.RequestsPerS, rec.VectorsPerS, rec.P50MS, rec.P99MS, failed)

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "icnbench: wrote serving benchmark to %s\n", outPath)
	return nil
}
