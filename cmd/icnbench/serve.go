package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/forecast"
	"repro/internal/pipe"
	"repro/internal/probe"
	"repro/internal/serve"
	"repro/internal/services"
)

// serveBenchRecord is the BENCH_serve.json schema: one snapshot of the
// serving path's sustained throughput and latency under concurrent load,
// plus one warm refresh cycle. TotalMS and Stages mirror the benchRecord
// shape so `icnbench -gate BENCH_serve.json -gatecompare <fresh>` ratchets
// the serving latencies exactly like the pipeline stages.
type serveBenchRecord struct {
	Seed          uint64  `json:"seed"`
	Scale         float64 `json:"scale"`
	Trees         int     `json:"trees"`
	Clients       int     `json:"clients"`
	RequestsPerC  int     `json:"requests_per_client"`
	BatchAntennas int     `json:"batch_antennas"`
	ModelRevision uint64  `json:"model_revision"`

	TotalRequests int     `json:"total_requests"`
	FailedReqs    int     `json:"failed_requests"`
	WallMS        float64 `json:"wall_ms"`
	RequestsPerS  float64 `json:"requests_per_s"`
	VectorsPerS   float64 `json:"vectors_per_s"`
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
	MaxMS         float64 `json:"max_ms"`

	IngestRecords int64 `json:"ingest_records"`
	CacheHits     int64 `json:"cache_hits"`

	// Forecast leg (omitted with -forecast=false).
	ForecastRequests int     `json:"forecast_requests,omitempty"`
	ForecastAudited  int     `json:"forecast_audited,omitempty"`
	ForecastTrainMS  float64 `json:"forecast_train_ms,omitempty"`

	// Gate-comparable rows: classify_p50, classify_p99, refresh_warm, and
	// with the forecast leg forecast_train, forecast_p50, forecast_p99.
	TotalMS float64     `json:"total_ms"`
	Stages  []stageJSON `json:"stages"`
}

// runServeBench stands up an in-process icnserve instance around a freshly
// trained snapshot and sustains a concurrent classify load against it over
// real HTTP — plus, with forecastLeg, a forecast load with a mid-run model
// swap and per-revision parity audit — then writes the latency/throughput
// record and drains the server gracefully.
func runServeBench(cfg analysis.Config, clients, requests, batch int, outPath string, forecastLeg bool) error {
	fmt.Fprintf(os.Stderr, "icnbench: training snapshot (seed=%d scale=%.2f trees=%d)...\n",
		cfg.Seed, cfg.Scale, cfg.ForestTrees)
	res, err := analysis.Run(cfg)
	if err != nil {
		return err
	}
	snap, err := serve.NewModelSnapshot(res)
	if err != nil {
		return err
	}
	srv, err := serve.New(snap, nil, serve.Config{QueueDepth: 256})
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	url := "http://" + srv.Addr().String()

	// The load uses the synthetic outdoor population's raw vectors — the
	// exact Section 5.3 workload — cycling through the rows per request.
	outdoor := res.Dataset.OutdoorTraffic
	if batch > outdoor.Rows() {
		batch = outdoor.Rows()
	}
	bodies := make([][]byte, clients)
	for c := range bodies {
		var req serve.ClassifyRequest
		for i := 0; i < batch; i++ {
			row := (c*batch + i) % outdoor.Rows()
			req.Antennas = append(req.Antennas, serve.AntennaVector{
				ID: uint32(row), Traffic: outdoor.Row(row),
			})
		}
		bodies[c], err = json.Marshal(req)
		if err != nil {
			return err
		}
	}

	fmt.Fprintf(os.Stderr, "icnbench: serve load — %d clients × %d requests × %d antennas against %s\n",
		clients, requests, batch, url)
	latencies := make([][]float64, clients)
	failures := make([]int, clients)
	start := time.Now()
	var loaders pipe.Tasks
	for c := 0; c < clients; c++ {
		c := c
		loaders.Go(func() {
			client := &http.Client{Timeout: 30 * time.Second}
			lat := make([]float64, 0, requests)
			for r := 0; r < requests; r++ {
				t0 := time.Now()
				resp, err := client.Post(url+"/v1/classify", "application/json", bytes.NewReader(bodies[c]))
				if err != nil {
					failures[c]++
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures[c]++
					continue
				}
				lat = append(lat, float64(time.Since(t0).Microseconds())/1000)
			}
			latencies[c] = lat
		})
	}
	loaders.Wait()
	wall := time.Since(start)

	var all []float64
	failed := 0
	for c := range latencies {
		all = append(all, latencies[c]...)
		failed += failures[c]
	}
	if len(all) == 0 {
		return fmt.Errorf("icnbench: every serve-bench request failed")
	}
	sort.Float64s(all)
	quantile := func(q float64) float64 {
		i := int(q * float64(len(all)-1))
		return all[i]
	}

	// Refresh leg: fold a deterministic ingest batch over the training
	// campaign and time one warm refresh cycle — the latency an operator
	// pays per background model update.
	ref, err := serve.NewRefresher(srv, res, serve.RefreshConfig{Interval: time.Hour})
	if err != nil {
		return err
	}
	nIndoor := res.Dataset.Traffic.Rows()
	recs := make([]probe.Record, 0, 500)
	for i := 0; i < 500; i++ {
		recs = append(recs, probe.Record{
			Hour: uint32(i % 24), AntennaID: uint32(i % nIndoor),
			Protocol: probe.TCP, ServerPort: 443,
			ServerName: probe.DomainOf(i % services.M),
			DownBytes:  2 << 20, UpBytes: 1 << 18,
		})
	}
	srv.Sink().AddBatch(recs)
	rctx, rcancel := context.WithTimeout(context.Background(), 2*time.Minute)
	rout, err := ref.RefreshOnce(rctx)
	rcancel()
	if err != nil {
		return fmt.Errorf("icnbench: serve refresh leg: %w", err)
	}
	if !rout.Swapped {
		return fmt.Errorf("icnbench: serve refresh leg published no new revision (drift %.4f)", rout.Stats.Drift)
	}
	refreshMS := float64(rout.Duration.Microseconds()) / 1000
	fmt.Fprintf(os.Stderr, "icnbench: warm refresh published revision %016x in %.1fms (reassigned %d, escalated %v)\n",
		rout.Revision, refreshMS, rout.Stats.Reassigned, rout.Stats.Escalated)

	st := srv.Stats()
	rec := serveBenchRecord{
		Seed: cfg.Seed, Scale: cfg.Scale, Trees: cfg.ForestTrees,
		Clients: clients, RequestsPerC: requests, BatchAntennas: batch,
		ModelRevision: snap.Revision,
		TotalRequests: len(all),
		FailedReqs:    failed,
		WallMS:        float64(wall.Microseconds()) / 1000,
		RequestsPerS:  float64(len(all)) / wall.Seconds(),
		VectorsPerS:   float64(len(all)*batch) / wall.Seconds(),
		P50MS:         quantile(0.50),
		P99MS:         quantile(0.99),
		MaxMS:         all[len(all)-1],
		IngestRecords: st.IngestRecords,
		CacheHits:     st.CacheHits,
	}
	rec.TotalMS = rec.WallMS + refreshMS
	rec.Stages = []stageJSON{
		{Name: "classify_p50", WallMS: rec.P50MS},
		{Name: "classify_p99", WallMS: rec.P99MS},
		{Name: "refresh_warm", WallMS: refreshMS},
	}

	if forecastLeg {
		fc, err := runForecastLeg(srv, ref, res, url, clients, requests)
		if err != nil {
			return fmt.Errorf("icnbench: forecast leg: %w", err)
		}
		rec.ForecastRequests = fc.requests
		rec.ForecastAudited = fc.audited
		rec.ForecastTrainMS = fc.trainMS
		rec.TotalMS += fc.trainMS + fc.wallMS
		rec.Stages = append(rec.Stages,
			stageJSON{Name: "forecast_train", WallMS: fc.trainMS},
			stageJSON{Name: "forecast_p50", WallMS: fc.p50MS},
			stageJSON{Name: "forecast_p99", WallMS: fc.p99MS},
		)
	}

	shutdownStart := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("icnbench: serve shutdown: %w", err)
	}
	fmt.Fprintf(os.Stderr, "icnbench: serve drained in %v — %.0f req/s, %.0f vectors/s, p50 %.2fms p99 %.2fms (%d failed)\n",
		time.Since(shutdownStart).Round(time.Millisecond),
		rec.RequestsPerS, rec.VectorsPerS, rec.P50MS, rec.P99MS, failed)

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "icnbench: wrote serving benchmark to %s\n", outPath)
	return nil
}

// forecastLegResult carries the forecast leg's gate-row inputs.
type forecastLegResult struct {
	requests int
	audited  int
	trainMS  float64
	wallMS   float64
	p50MS    float64
	p99MS    float64
}

// fcObs is one sampled /v1/forecast response held for the parity audit.
type fcObs struct {
	rev      uint64
	cluster  int
	horizon  int
	forecast []float64
}

// runForecastLeg times the forecast-set training, then sustains a
// concurrent /v1/forecast load with one warm refresh swapping the model
// mid-run, and audits sampled responses bit-for-bit against an offline
// refit of the echoed revision's hourly series (Refresher.ResultFor +
// Result.RefitForecasts) — the chaos-style parity contract: a served
// forecast is exactly what forecast.Fit produces on that revision's data,
// across a snapshot swap.
func runForecastLeg(srv *serve.Server, ref *serve.Refresher, res *analysis.Result, url string, clients, requests int) (forecastLegResult, error) {
	var out forecastLegResult

	// Train-time row: refit the forecast set offline from the base
	// revision's series. The refit must reproduce the pipeline's published
	// set bit-for-bit — the digest check makes the row meaningful (it
	// times the exact computation the serve path's models came from).
	trainStart := time.Now()
	refit, err := res.RefitForecasts(context.Background())
	if err != nil {
		return out, err
	}
	out.trainMS = float64(time.Since(trainStart).Microseconds()) / 1000
	if res.Forecasts == nil || refit.Digest() != res.Forecasts.Digest() {
		return out, fmt.Errorf("offline refit diverged from the published forecast set")
	}
	fmt.Fprintf(os.Stderr, "icnbench: forecast training refit %d clusters in %.1fms (digest parity ok)\n",
		refit.K(), out.trainMS)

	horizons := []int{24, 48, 168}
	var done atomic.Int64
	latencies := make([][]float64, clients)
	samples := make([][]fcObs, clients)
	failures := make([]int, clients)
	query := func(client *http.Client, cluster, horizon int) (fcObs, float64, error) {
		body, err := json.Marshal(serve.ForecastRequest{Cluster: &cluster, Horizon: horizon})
		if err != nil {
			return fcObs{}, 0, err
		}
		t0 := time.Now()
		resp, err := client.Post(url+"/v1/forecast", "application/json", bytes.NewReader(body))
		if err != nil {
			return fcObs{}, 0, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			_, _ = io.Copy(io.Discard, resp.Body)
			return fcObs{}, 0, fmt.Errorf("status %d", resp.StatusCode)
		}
		var fr serve.ForecastResponse
		if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
			return fcObs{}, 0, err
		}
		lat := float64(time.Since(t0).Microseconds()) / 1000
		return fcObs{rev: fr.ModelRevision, cluster: fr.Cluster, horizon: fr.Horizon, forecast: fr.Forecast}, lat, nil
	}

	fmt.Fprintf(os.Stderr, "icnbench: forecast load — %d clients × %d requests with a mid-run swap\n",
		clients, requests)
	loadStart := time.Now()
	var loaders pipe.Tasks
	for c := 0; c < clients; c++ {
		c := c
		loaders.Go(func() {
			client := &http.Client{Timeout: 30 * time.Second}
			for r := 0; r < requests; r++ {
				obs, lat, err := query(client, (c+r)%res.K, horizons[r%len(horizons)])
				done.Add(1)
				if err != nil {
					failures[c]++
					continue
				}
				latencies[c] = append(latencies[c], lat)
				// Every 4th response is retained for the audit.
				if r%4 == 0 {
					samples[c] = append(samples[c], obs)
				}
			}
		})
	}

	// Land a model swap mid-run: wait for a third of the load to complete,
	// fold a fresh ingest batch and run one warm refresh. Requests issued
	// after the swap echo (and must match) the new revision.
	total := int64(clients * requests)
	for done.Load() < total/3 {
		time.Sleep(time.Millisecond)
	}
	nIndoor := res.Dataset.Traffic.Rows()
	recs := make([]probe.Record, 0, 400)
	for i := 0; i < 400; i++ {
		recs = append(recs, probe.Record{
			Hour: uint32((i + 7) % 24), AntennaID: uint32((i * 3) % nIndoor),
			Protocol: probe.TCP, ServerPort: 443,
			ServerName: probe.DomainOf((i + 2) % services.M),
			DownBytes:  5 << 20, UpBytes: 1 << 18,
		})
	}
	srv.Sink().AddBatch(recs)
	rctx, rcancel := context.WithTimeout(context.Background(), 2*time.Minute)
	rout, err := ref.RefreshOnce(rctx)
	rcancel()
	if err != nil {
		return out, fmt.Errorf("mid-run refresh: %w", err)
	}
	if !rout.Swapped {
		return out, fmt.Errorf("mid-run refresh published no new revision")
	}
	loaders.Wait()
	out.wallMS = float64(time.Since(loadStart).Microseconds()) / 1000

	// A slow swap can finish after fast clients drain; a handful of
	// post-swap queries guarantees the audit covers the new revision.
	tail := &http.Client{Timeout: 30 * time.Second}
	for c := 0; c < res.K; c++ {
		obs, _, err := query(tail, c, horizons[c%len(horizons)])
		if err != nil {
			return out, fmt.Errorf("post-swap query: %w", err)
		}
		samples[0] = append(samples[0], obs)
	}

	var all []float64
	failed := 0
	for c := range latencies {
		all = append(all, latencies[c]...)
		failed += failures[c]
	}
	if len(all) == 0 {
		return out, fmt.Errorf("every forecast request failed")
	}
	sort.Float64s(all)
	out.requests = len(all)
	out.p50MS = all[int(0.50*float64(len(all)-1))]
	out.p99MS = all[int(0.99*float64(len(all)-1))]

	// Parity audit: refit each observed revision's forecast set from its
	// offline result and require bit-equality with every sampled response.
	refits := map[uint64]*forecast.Set{}
	setFor := func(rev uint64) (*forecast.Set, error) {
		if set, ok := refits[rev]; ok {
			return set, nil
		}
		offline, ok := ref.ResultFor(rev)
		if !ok {
			return nil, fmt.Errorf("served revision %016x not resolvable to an offline result", rev)
		}
		set, err := offline.RefitForecasts(context.Background())
		if err != nil {
			return nil, err
		}
		refits[rev] = set
		return set, nil
	}
	for c := range samples {
		for _, obs := range samples[c] {
			set, err := setFor(obs.rev)
			if err != nil {
				return out, err
			}
			cm := set.Cluster(obs.cluster)
			if cm == nil {
				return out, fmt.Errorf("revision %016x refit has no cluster %d", obs.rev, obs.cluster)
			}
			want := cm.Model.Forecast(obs.horizon)
			if len(want) != len(obs.forecast) {
				return out, fmt.Errorf("cluster %d: served %d hours, refit %d", obs.cluster, len(obs.forecast), len(want))
			}
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(obs.forecast[i]) {
					return out, fmt.Errorf("revision %016x cluster %d hour %d: served %v, offline refit %v",
						obs.rev, obs.cluster, i, obs.forecast[i], want[i])
				}
			}
			out.audited++
		}
	}
	if len(refits) < 2 {
		return out, fmt.Errorf("audit saw %d revision(s), want the pre- and post-swap pair", len(refits))
	}
	fmt.Fprintf(os.Stderr, "icnbench: forecast parity audit — %d responses bit-exact across %d revisions (%d failed requests), p50 %.2fms p99 %.2fms\n",
		out.audited, len(refits), failed, out.p50MS, out.p99MS)
	return out, nil
}
