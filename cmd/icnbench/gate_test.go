package main

import "testing"

func gateFixture() (benchRecord, benchRecord) {
	base := benchRecord{
		TotalMS: 700,
		Stages: []stageJSON{
			{Name: "rsca", WallMS: 1.4},
			{Name: "forest", WallMS: 500},
			{Name: "outdoor", WallMS: 60},
		},
	}
	cand := benchRecord{
		TotalMS: 690,
		Stages: []stageJSON{
			{Name: "rsca", WallMS: 2.1},
			{Name: "forest", WallMS: 480},
			{Name: "outdoor", WallMS: 58},
		},
	}
	return base, cand
}

func findRow(t *testing.T, rows []gateRow, name string) gateRow {
	t.Helper()
	for _, r := range rows {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("no gate row %q", name)
	return gateRow{}
}

func TestCompareBenchAllWithinTolerance(t *testing.T) {
	base, cand := gateFixture()
	rows, regressed := compareBench(base, cand, 0.25, 25)
	if regressed != 0 {
		t.Fatalf("regressed = %d, want 0: %+v", regressed, rows)
	}
	// 4 rows: three stages + TOTAL.
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	if r := findRow(t, rows, "TOTAL"); r.Status != gateOK {
		t.Fatalf("TOTAL status %s", r.Status)
	}
}

func TestCompareBenchDetectsInflatedStage(t *testing.T) {
	base, cand := gateFixture()
	// Inflate one stage beyond max(base, floor)*(1+tol) = 500*1.25 = 625.
	for i := range cand.Stages {
		if cand.Stages[i].Name == "forest" {
			cand.Stages[i].WallMS = 700
		}
	}
	rows, regressed := compareBench(base, cand, 0.25, 25)
	if regressed != 1 {
		t.Fatalf("regressed = %d, want 1", regressed)
	}
	r := findRow(t, rows, "forest")
	if r.Status != gateRegress {
		t.Fatalf("forest status %s, want %s", r.Status, gateRegress)
	}
	if r.LimitMS != 625 {
		t.Fatalf("forest limit %.1f, want 625", r.LimitMS)
	}
}

func TestCompareBenchFloorAbsorbsTinyStageNoise(t *testing.T) {
	base, cand := gateFixture()
	// rsca triples from 1.4ms to 4.2ms — far beyond +25% but far below the
	// 25ms floor's limit of 31.25ms, so the gate must not fire.
	for i := range cand.Stages {
		if cand.Stages[i].Name == "rsca" {
			cand.Stages[i].WallMS = 4.2
		}
	}
	_, regressed := compareBench(base, cand, 0.25, 25)
	if regressed != 0 {
		t.Fatalf("regressed = %d, want 0 (floor must absorb sub-floor noise)", regressed)
	}
}

func TestCompareBenchMissingStageFails(t *testing.T) {
	base, cand := gateFixture()
	cand.Stages = cand.Stages[:2] // drop outdoor
	rows, regressed := compareBench(base, cand, 0.25, 25)
	if regressed != 1 {
		t.Fatalf("regressed = %d, want 1", regressed)
	}
	if r := findRow(t, rows, "outdoor"); r.Status != gateMissing {
		t.Fatalf("outdoor status %s, want %s", r.Status, gateMissing)
	}
}

func TestCompareBenchNewStageInformational(t *testing.T) {
	base, cand := gateFixture()
	cand.Stages = append(cand.Stages, stageJSON{Name: "embedding", WallMS: 90})
	rows, regressed := compareBench(base, cand, 0.25, 25)
	if regressed != 0 {
		t.Fatalf("regressed = %d, want 0 (new stages are informational)", regressed)
	}
	if r := findRow(t, rows, "embedding"); r.Status != gateNew {
		t.Fatalf("embedding status %s, want %s", r.Status, gateNew)
	}
}

func TestCompareBenchTotalRegression(t *testing.T) {
	base, cand := gateFixture()
	cand.TotalMS = 1000 // beyond 700*1.25 = 875
	rows, regressed := compareBench(base, cand, 0.25, 25)
	if regressed != 1 {
		t.Fatalf("regressed = %d, want 1", regressed)
	}
	if r := findRow(t, rows, "TOTAL"); r.Status != gateRegress {
		t.Fatalf("TOTAL status %s, want %s", r.Status, gateRegress)
	}
}
