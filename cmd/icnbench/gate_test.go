package main

import (
	"strings"
	"testing"
)

func gateFixture() (benchRecord, benchRecord) {
	base := benchRecord{
		TotalMS: 700,
		Stages: []stageJSON{
			{Name: "rsca", WallMS: 1.4},
			{Name: "forest", WallMS: 500},
			{Name: "outdoor", WallMS: 60},
		},
	}
	cand := benchRecord{
		TotalMS: 690,
		Stages: []stageJSON{
			{Name: "rsca", WallMS: 2.1},
			{Name: "forest", WallMS: 480},
			{Name: "outdoor", WallMS: 58},
		},
	}
	return base, cand
}

func findRow(t *testing.T, rows []gateRow, name string) gateRow {
	t.Helper()
	for _, r := range rows {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("no gate row %q", name)
	return gateRow{}
}

func TestCompareBenchAllWithinTolerance(t *testing.T) {
	base, cand := gateFixture()
	rows, regressed := compareBench(base, cand, 0.25, 25, nil)
	if regressed != 0 {
		t.Fatalf("regressed = %d, want 0: %+v", regressed, rows)
	}
	// 4 rows: three stages + TOTAL.
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	if r := findRow(t, rows, "TOTAL"); r.Status != gateOK {
		t.Fatalf("TOTAL status %s", r.Status)
	}
}

func TestCompareBenchDetectsInflatedStage(t *testing.T) {
	base, cand := gateFixture()
	// Inflate one stage beyond max(base, floor)*(1+tol) = 500*1.25 = 625.
	for i := range cand.Stages {
		if cand.Stages[i].Name == "forest" {
			cand.Stages[i].WallMS = 700
		}
	}
	rows, regressed := compareBench(base, cand, 0.25, 25, nil)
	if regressed != 1 {
		t.Fatalf("regressed = %d, want 1", regressed)
	}
	r := findRow(t, rows, "forest")
	if r.Status != gateRegress {
		t.Fatalf("forest status %s, want %s", r.Status, gateRegress)
	}
	if r.LimitMS != 625 {
		t.Fatalf("forest limit %.1f, want 625", r.LimitMS)
	}
}

func TestCompareBenchFloorAbsorbsTinyStageNoise(t *testing.T) {
	base, cand := gateFixture()
	// rsca triples from 1.4ms to 4.2ms — far beyond +25% but far below the
	// 25ms floor's limit of 31.25ms, so the gate must not fire.
	for i := range cand.Stages {
		if cand.Stages[i].Name == "rsca" {
			cand.Stages[i].WallMS = 4.2
		}
	}
	_, regressed := compareBench(base, cand, 0.25, 25, nil)
	if regressed != 0 {
		t.Fatalf("regressed = %d, want 0 (floor must absorb sub-floor noise)", regressed)
	}
}

func TestCompareBenchMissingStageFails(t *testing.T) {
	base, cand := gateFixture()
	cand.Stages = cand.Stages[:2] // drop outdoor
	rows, regressed := compareBench(base, cand, 0.25, 25, nil)
	if regressed != 1 {
		t.Fatalf("regressed = %d, want 1", regressed)
	}
	if r := findRow(t, rows, "outdoor"); r.Status != gateMissing {
		t.Fatalf("outdoor status %s, want %s", r.Status, gateMissing)
	}
}

func TestCompareBenchNewStageInformational(t *testing.T) {
	base, cand := gateFixture()
	cand.Stages = append(cand.Stages, stageJSON{Name: "embedding", WallMS: 90})
	rows, regressed := compareBench(base, cand, 0.25, 25, nil)
	if regressed != 0 {
		t.Fatalf("regressed = %d, want 0 (new stages are informational)", regressed)
	}
	if r := findRow(t, rows, "embedding"); r.Status != gateNew {
		t.Fatalf("embedding status %s, want %s", r.Status, gateNew)
	}
}

func TestCompareBenchTotalRegression(t *testing.T) {
	base, cand := gateFixture()
	cand.TotalMS = 1000 // beyond 700*1.25 = 875
	rows, regressed := compareBench(base, cand, 0.25, 25, nil)
	if regressed != 1 {
		t.Fatalf("regressed = %d, want 1", regressed)
	}
	if r := findRow(t, rows, "TOTAL"); r.Status != gateRegress {
		t.Fatalf("TOTAL status %s, want %s", r.Status, gateRegress)
	}
}

func TestCompareBenchAbsoluteCeiling(t *testing.T) {
	base, cand := gateFixture()
	// forest at 480ms is inside the relative limit (500×1.25 = 625) but
	// above a 450ms absolute ceiling.
	rows, regressed := compareBench(base, cand, 0.25, 25, map[string]float64{"forest": 450})
	if regressed != 1 {
		t.Fatalf("regressed = %d, want 1: %+v", regressed, rows)
	}
	r := findRow(t, rows, "forest")
	if r.Status != gateRegress || r.LimitMS != 450 {
		t.Fatalf("forest row %+v, want REGRESSION with limit 450", r)
	}
}

func TestCompareBenchCeilingAboveLimitIsInert(t *testing.T) {
	base, cand := gateFixture()
	// A ceiling looser than the relative limit changes nothing.
	rows, regressed := compareBench(base, cand, 0.25, 25, map[string]float64{"forest": 10000, "outdoor": 80})
	if regressed != 0 {
		t.Fatalf("regressed = %d, want 0: %+v", regressed, rows)
	}
	if r := findRow(t, rows, "forest"); r.LimitMS != 625 {
		t.Fatalf("forest limit %v, want relative 625", r.LimitMS)
	}
	// outdoor's relative limit max(60, 25)×1.25 = 75 is already tighter
	// than the 80ms ceiling, so the relative limit stands.
	if r := findRow(t, rows, "outdoor"); r.LimitMS != 75 {
		t.Fatalf("outdoor limit %v, want relative 75", r.LimitMS)
	}
}

// serveGateFixture mirrors the BENCH_serve.json row set the serve leg
// emits with the forecast leg on.
func serveGateFixture() benchRecord {
	return benchRecord{
		TotalMS: 900,
		Stages: []stageJSON{
			{Name: "classify_p50", WallMS: 15},
			{Name: "classify_p99", WallMS: 32},
			{Name: "refresh_warm", WallMS: 40},
			{Name: "forecast_train", WallMS: 18},
			{Name: "forecast_p50", WallMS: 0.8},
			{Name: "forecast_p99", WallMS: 30},
		},
	}
}

var serveExpectRows = []string{
	"classify_p50", "classify_p99", "refresh_warm",
	"forecast_train", "forecast_p50", "forecast_p99",
}

func TestValidateGateRowsAcceptsExactSchema(t *testing.T) {
	if err := validateGateRows(serveGateFixture(), serveExpectRows); err != nil {
		t.Fatal(err)
	}
	// An empty schema disables validation entirely.
	if err := validateGateRows(benchRecord{Stages: []stageJSON{{Name: "whatever"}}}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateGateRowsRejectsMissingForecastRow(t *testing.T) {
	rec := serveGateFixture()
	kept := rec.Stages[:0]
	for _, st := range rec.Stages {
		if st.Name != "forecast_p99" {
			kept = append(kept, st)
		}
	}
	rec.Stages = kept
	err := validateGateRows(rec, serveExpectRows)
	if err == nil || !strings.Contains(err.Error(), "forecast_p99") {
		t.Fatalf("dropped forecast_p99 not rejected: %v", err)
	}
}

func TestValidateGateRowsRejectsUnknownRow(t *testing.T) {
	rec := serveGateFixture()
	rec.Stages = append(rec.Stages, stageJSON{Name: "forecast_p75", WallMS: 5})
	err := validateGateRows(rec, serveExpectRows)
	if err == nil || !strings.Contains(err.Error(), "forecast_p75") {
		t.Fatalf("unknown row not rejected: %v", err)
	}
}

func TestValidateGateRowsRejectsDuplicateRow(t *testing.T) {
	rec := serveGateFixture()
	rec.Stages = append(rec.Stages, stageJSON{Name: "forecast_train", WallMS: 19})
	err := validateGateRows(rec, serveExpectRows)
	if err == nil || !strings.Contains(err.Error(), "forecast_train") {
		t.Fatalf("duplicate row not rejected: %v", err)
	}
}

func TestForecastRowsGateLikeStages(t *testing.T) {
	base := serveGateFixture()
	cand := serveGateFixture()
	// forecast_train regressing beyond max(base, floor)×(1+tol) =
	// 25×1.25 = 31.25ms fails the gate like any pipeline stage.
	for i := range cand.Stages {
		if cand.Stages[i].Name == "forecast_train" {
			cand.Stages[i].WallMS = 40
		}
	}
	rows, regressed := compareBench(base, cand, 0.25, 25, nil)
	if regressed != 1 {
		t.Fatalf("regressed = %d, want 1: %+v", regressed, rows)
	}
	if r := findRow(t, rows, "forecast_train"); r.Status != gateRegress {
		t.Fatalf("forecast_train status %s, want %s", r.Status, gateRegress)
	}
	// Sub-floor forecast p50 noise is absorbed like any tiny stage.
	cand = serveGateFixture()
	for i := range cand.Stages {
		if cand.Stages[i].Name == "forecast_p50" {
			cand.Stages[i].WallMS = 3
		}
	}
	if _, regressed := compareBench(base, cand, 0.25, 25, nil); regressed != 0 {
		t.Fatalf("sub-floor forecast_p50 noise fired the gate")
	}
}

func TestParseGateExpect(t *testing.T) {
	got := parseGateExpect(" classify_p50, forecast_p99 ,")
	if len(got) != 2 || got[0] != "classify_p50" || got[1] != "forecast_p99" {
		t.Fatalf("parsed %v", got)
	}
	if got := parseGateExpect(""); got != nil {
		t.Fatalf("empty spec parsed to %v", got)
	}
}

func TestParseGateMax(t *testing.T) {
	got, err := parseGateMax("temporal=300, selection=130")
	if err != nil {
		t.Fatal(err)
	}
	if got["temporal"] != 300 || got["selection"] != 130 || len(got) != 2 {
		t.Fatalf("parsed %v", got)
	}
	if got, err := parseGateMax(""); err != nil || got != nil {
		t.Fatalf("empty spec: %v, %v", got, err)
	}
	for _, bad := range []string{"temporal", "temporal=", "temporal=-5", "temporal=abc"} {
		if _, err := parseGateMax(bad); err == nil {
			t.Fatalf("spec %q did not error", bad)
		}
	}
}
