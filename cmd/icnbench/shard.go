package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/pipe"
	"repro/internal/probe"
	"repro/internal/serve"
	"repro/internal/services"
	"repro/internal/shard"
)

// shardBenchRecord is the BENCH_shard.json schema: one snapshot of the
// sharded nationwide tier under bulk ingest with a shard and a replica
// killed mid-run, plus proxied classify latency and one cross-shard
// refresh. TotalMS and Stages mirror benchRecord so the gate ratchets the
// sharded rows exactly like the pipeline stages.
type shardBenchRecord struct {
	Seed     uint64  `json:"seed"`
	Scale    float64 `json:"scale"`
	Trees    int     `json:"trees"`
	Shards   int     `json:"shards"`
	Replicas int     `json:"replicas"`
	Clients  int     `json:"clients"`
	Batches  int     `json:"batches_per_client"`
	PerBatch int     `json:"records_per_batch"`

	RingDigest    string `json:"ring_digest"`
	AckedBatches  int64  `json:"acked_batches"`
	AckedRecords  int64  `json:"acked_records"`
	Rejected429   int64  `json:"rejected_429"`
	FoldedRecords int    `json:"folded_records"`

	IngestWallMS   float64 `json:"ingest_wall_ms"`
	RecordsPerS    float64 `json:"records_per_s"`
	ClassifyReqs   int     `json:"classify_requests"`
	ClassifyP50MS  float64 `json:"classify_p50_ms"`
	ClassifyP99MS  float64 `json:"classify_p99_ms"`
	RefreshMS      float64 `json:"refresh_ms"`
	FanoutMS       float64 `json:"fanout_ms"`
	RefreshedRev   uint64  `json:"refreshed_revision"`
	ParityAntennas int     `json:"parity_antennas"`

	TotalMS float64     `json:"total_ms"`
	Stages  []stageJSON `json:"stages"`
}

// runShardBench stands up the full sharded tier — N ingest shards on a
// consistent-hash ring behind M serve replicas — around a freshly trained
// snapshot, drives a bulk probe-session load through the router with
// concurrent clients while killing one shard and one replica mid-flight,
// then audits the two distributed invariants:
//
//  1. acked-batch durability: after the drain, the shard sinks hold
//     exactly the records acked with 202 — kills included;
//  2. served↔offline parity per echoed revision: every proxied classify
//     answer matches the offline OutdoorLabels of the revision it echoes,
//     before and after a cross-shard refresh fans a new revision out.
func runShardBench(cfg analysis.Config, shards, replicas, clients, batches, perBatch int, outPath string) error {
	if replicas <= 0 {
		replicas = 2
	}
	if clients <= 0 {
		clients = 8
	}
	if batches <= 0 {
		batches = 50
	}
	if perBatch <= 0 {
		perBatch = 5000
	}
	fmt.Fprintf(os.Stderr, "icnbench: training snapshot (seed=%d scale=%.2f trees=%d)...\n",
		cfg.Seed, cfg.Scale, cfg.ForestTrees)
	res, err := analysis.Run(cfg)
	if err != nil {
		return err
	}
	snap, err := serve.NewModelSnapshot(res)
	if err != nil {
		return err
	}
	rt, err := shard.NewRouter(snap, res, shard.Config{
		Shards: shards, Replicas: replicas,
		RingSeed: cfg.Seed, QueueDepth: 256,
	})
	if err != nil {
		return err
	}
	if err := rt.Start(); err != nil {
		return err
	}
	url := rt.URL()
	rec := shardBenchRecord{
		Seed: cfg.Seed, Scale: cfg.Scale, Trees: cfg.ForestTrees,
		Shards: shards, Replicas: replicas,
		Clients: clients, Batches: batches, PerBatch: perBatch,
		RingDigest: fmt.Sprintf("%016x", rt.Ring().Digest()),
	}

	// Ingest leg: clients × batches × perBatch synthetic probe sessions
	// spread over the full indoor population, each batch partitioned across
	// the ring and acked all-or-nothing. One shard dies at ~1/3 of the
	// acked volume and one replica at ~1/2; 429s back off and retry against
	// the updated ring, so every session eventually lands.
	nIndoor := res.Dataset.Traffic.Rows()
	total := clients * batches * perBatch
	fmt.Fprintf(os.Stderr, "icnbench: shard load — %d clients × %d batches × %d records (%d sessions) against %s (%d shards, %d replicas)\n",
		clients, batches, perBatch, total, url, shards, replicas)

	var (
		ackedBatches atomic.Int64
		rejected     atomic.Int64
		killOnce     sync.Once
		replOnce     sync.Once
		loadErrs     []error
		errMu        sync.Mutex
		loaders      pipe.Tasks
	)
	fail := func(err error) {
		errMu.Lock()
		loadErrs = append(loadErrs, err)
		errMu.Unlock()
	}
	killAt := int64(clients*batches) / 3
	replicaAt := int64(clients*batches) / 2
	ingestStart := time.Now()
	for c := 0; c < clients; c++ {
		c := c
		loaders.Go(func() {
			client := &http.Client{Timeout: 60 * time.Second}
			for b := 0; b < batches; b++ {
				var stream bytes.Buffer
				pw := probe.NewWriter(&stream)
				base := (c*batches + b) * perBatch
				for j := 0; j < perBatch; j++ {
					rec := probe.Record{
						Hour: uint32(j % 24), AntennaID: uint32((base + j) % nIndoor),
						Protocol: probe.TCP, ServerPort: 443,
						ServerName: probe.DomainOf((base + j) % services.M),
						DownBytes:  2 << 20, UpBytes: 1 << 17,
					}
					if err := pw.Write(rec); err != nil {
						fail(err)
						return
					}
				}
				if err := pw.Flush(); err != nil {
					fail(err)
					return
				}
				landed := false
				for attempt := 0; attempt < 200; attempt++ {
					resp, err := client.Post(url+"/v1/ingest", "application/octet-stream", bytes.NewReader(stream.Bytes()))
					if err != nil {
						fail(fmt.Errorf("shard ingest client %d: %w", c, err))
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusAccepted {
						landed = true
						break
					}
					if resp.StatusCode == http.StatusTooManyRequests {
						rejected.Add(1)
						time.Sleep(5 * time.Millisecond)
						continue
					}
					fail(fmt.Errorf("shard ingest client %d: unexpected status %d", c, resp.StatusCode))
					return
				}
				if !landed {
					fail(fmt.Errorf("shard ingest client %d: batch %d never acked", c, b))
					return
				}
				n := ackedBatches.Add(1)
				if shards > 1 && n == killAt {
					killOnce.Do(func() {
						if err := rt.KillShard(shards - 1); err != nil {
							fail(fmt.Errorf("shard kill: %w", err))
							return
						}
						fmt.Fprintf(os.Stderr, "icnbench: killed shard %d at %d/%d acked batches (ring %d/%d alive)\n",
							shards-1, n, clients*batches, rt.Ring().Alive(), rt.Ring().Shards())
					})
				}
				if replicas > 1 && n == replicaAt {
					replOnce.Do(func() {
						kctx, kcancel := context.WithTimeout(context.Background(), 30*time.Second)
						defer kcancel()
						if err := rt.KillReplica(kctx, replicas-1); err != nil {
							fail(fmt.Errorf("replica kill: %w", err))
							return
						}
						fmt.Fprintf(os.Stderr, "icnbench: killed replica %d at %d/%d acked batches\n",
							replicas-1, n, clients*batches)
					})
				}
			}
		})
	}
	loaders.Wait()
	rec.IngestWallMS = float64(time.Since(ingestStart).Microseconds()) / 1000
	if len(loadErrs) > 0 {
		return fmt.Errorf("icnbench: shard ingest leg: %w", loadErrs[0])
	}
	rec.RecordsPerS = float64(total) / (rec.IngestWallMS / 1000)

	// Let the queues fold so the refresh sees every acked record.
	foldCtx, foldCancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer foldCancel()
	for rt.Sinks().PendingRecords() != 0 {
		if foldCtx.Err() != nil {
			return fmt.Errorf("icnbench: shard queues never drained (%d records pending)", rt.Sinks().PendingRecords())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Refresh leg: one fold → retrain → swap → fan-out cycle over the
	// merged cross-shard totals. Every live replica must serve the new
	// revision when RefreshOnce returns — that is the fan-out protocol.
	rctx, rcancel := context.WithTimeout(context.Background(), 10*time.Minute)
	rout, err := rt.RefreshOnce(rctx)
	rcancel()
	if err != nil {
		return fmt.Errorf("icnbench: shard refresh leg: %w", err)
	}
	if !rout.Swapped {
		return fmt.Errorf("icnbench: shard refresh published no new revision (drift %.4f)", rout.Stats.Drift)
	}
	rec.RefreshMS = float64(rout.Duration.Microseconds()) / 1000
	rec.RefreshedRev = rout.Revision
	// Dead replicas keep their last snapshot; every live one must have
	// converged on the published revision by the time RefreshOnce returned.
	st := rt.Stats()
	for i, rs := range st.Replicas {
		if rs.Alive && rs.Revision != rout.Revision {
			return fmt.Errorf("icnbench: replica %d serves revision %016x, refresh published %016x — fan-out broken",
				i, rs.Revision, rout.Revision)
		}
	}
	rec.FanoutMS = st.LastFanoutMS
	fmt.Fprintf(os.Stderr, "icnbench: refresh published revision %016x in %.1fms (fan-out %.2fms)\n",
		rout.Revision, rec.RefreshMS, rec.FanoutMS)

	// Classify leg: the full outdoor population through the proxy in
	// ≤ 4096-antenna batches, several rounds for a latency distribution.
	// Every response is audited against the offline labels of whichever
	// revision it echoes (base or refreshed) — the served↔offline parity
	// invariant, sustained across replica failover.
	outdoor := res.Dataset.OutdoorTraffic
	const maxBatch = 4096
	var bodies [][]byte
	var starts []int
	for at := 0; at < outdoor.Rows(); at += maxBatch {
		end := at + maxBatch
		if end > outdoor.Rows() {
			end = outdoor.Rows()
		}
		var req serve.ClassifyRequest
		for i := at; i < end; i++ {
			req.Antennas = append(req.Antennas, serve.AntennaVector{
				ID: uint32(i), Traffic: outdoor.Row(i),
			})
		}
		body, err := json.Marshal(req)
		if err != nil {
			return err
		}
		bodies = append(bodies, body)
		starts = append(starts, at)
	}
	const rounds = 3
	var latencies []float64
	client := &http.Client{Timeout: 120 * time.Second}
	parity := 0
	for round := 0; round < rounds; round++ {
		for bi, body := range bodies {
			t0 := time.Now()
			resp, err := client.Post(url+"/v1/classify", "application/json", bytes.NewReader(body))
			if err != nil {
				return fmt.Errorf("icnbench: shard classify: %w", err)
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("icnbench: shard classify: status %d: %s", resp.StatusCode, data)
			}
			latencies = append(latencies, float64(time.Since(t0).Microseconds())/1000)
			var cr serve.ClassifyResponse
			if err := json.Unmarshal(data, &cr); err != nil {
				return fmt.Errorf("icnbench: shard classify: %w", err)
			}
			offline, ok := rt.ResultFor(cr.ModelRevision)
			if !ok {
				return fmt.Errorf("icnbench: shard classify echoes unregistered revision %016x", cr.ModelRevision)
			}
			for i, v := range cr.Results {
				want := offline.OutdoorLabels[starts[bi]+i]
				if v.Cluster != want {
					return fmt.Errorf("icnbench: parity broken — antenna %d served cluster %d under revision %016x, offline labels say %d",
						v.ID, v.Cluster, cr.ModelRevision, want)
				}
				parity++
			}
		}
	}
	sort.Float64s(latencies)
	quantile := func(q float64) float64 { return latencies[int(q*float64(len(latencies)-1))] }
	rec.ClassifyReqs = len(latencies)
	rec.ClassifyP50MS = quantile(0.50)
	rec.ClassifyP99MS = quantile(0.99)
	rec.ParityAntennas = parity

	// Drained stop, then the acked-batch audit: folded == acked exactly —
	// the killed shard's drained aggregate included.
	sdCtx, sdCancel := context.WithTimeout(context.Background(), time.Minute)
	defer sdCancel()
	if err := rt.Shutdown(sdCtx); err != nil {
		return fmt.Errorf("icnbench: shard shutdown: %w", err)
	}
	st = rt.Stats()
	rec.AckedBatches = st.AckedBatches
	rec.AckedRecords = st.AckedRecords
	rec.Rejected429 = st.RejectedBatches
	rec.FoldedRecords = st.FoldedRecords
	if st.AckedRecords != int64(total) {
		return fmt.Errorf("icnbench: acked %d records, drove %d", st.AckedRecords, total)
	}
	if int64(st.FoldedRecords) != st.AckedRecords {
		return fmt.Errorf("icnbench: acked-batch loss — folded %d records, acked %d", st.FoldedRecords, st.AckedRecords)
	}

	rec.TotalMS = rec.IngestWallMS + rec.RefreshMS
	rec.Stages = []stageJSON{
		{Name: "shard_ingest", WallMS: rec.IngestWallMS},
		{Name: "shard_classify_p50", WallMS: rec.ClassifyP50MS},
		{Name: "shard_classify_p99", WallMS: rec.ClassifyP99MS},
		{Name: "shard_refresh", WallMS: rec.RefreshMS},
	}
	fmt.Fprintf(os.Stderr, "icnbench: shard PASS — %d sessions acked+folded (%d 429s), %.0f records/s, classify p50 %.1fms p99 %.1fms, parity on %d antenna verdicts\n",
		total, rec.Rejected429, rec.RecordsPerS, rec.ClassifyP50MS, rec.ClassifyP99MS, parity)

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "icnbench: wrote shard benchmark to %s\n", outPath)
	return nil
}
