package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/collect"
	"repro/internal/fault"
	"repro/internal/pipe"
	"repro/internal/probe"
	"repro/internal/serve"
	"repro/internal/services"
	"repro/internal/shard"
	"repro/internal/synth"
)

// The chaos soak stands up a live icnserve instance plus a TCP collector,
// runs N seeded fault schedules against them (injected dial refusals,
// mid-stream resets, ingest/fold/classify latency, queue pressure, and
// racing model swaps), and asserts three contracts per schedule:
//
//  1. Every 202-acked ingest batch survives a graceful shutdown — the
//     aggregate holds exactly acked×batch records.
//  2. Served clusters stay bit-identical to the offline pipeline's
//     Result.OutdoorLabels for whichever model revision the response
//     echoes, even while swaps race in-flight requests.
//  3. The process degrades (429/503, exporter retries) rather than losing
//     data or deadlocking — every leg and the final drain finish inside a
//     hard deadline.
//
// The fault decision streams are pure functions of the printed seed
// (fault.Digest over the same rules reproduces them without a server), so
// a failing schedule is rerun exactly with the reproduce line the driver
// prints. Which request consumes the n-th decision remains
// scheduling-dependent; the digest pins the plan, not the interleaving.

// chaosRules is the fixed fault schedule shape shared by every run; only
// the seed varies between schedules.
func chaosRules() map[fault.Site]fault.Rule {
	ms := time.Millisecond
	return map[fault.Site]fault.Rule{
		fault.Dial:      {ErrProb: 0.45},
		fault.ConnWrite: {ErrProb: 0.02, DelayProb: 0.10, Delay: ms},
		fault.ConnRead:  {DelayProb: 0.10, Delay: ms},
		fault.Ingest:    {DelayProb: 0.30, Delay: 2 * ms},
		fault.Fold:      {DelayProb: 0.60, Delay: 2 * ms},
		fault.ShardFold: {DelayProb: 0.40, Delay: 2 * ms},
		fault.Classify:  {DelayProb: 0.25, Delay: ms},
	}
}

// scheduleSeed derives the i-th schedule's injector seed from the base
// seed (splitmix64 finalizer, so adjacent schedules decorrelate).
func scheduleSeed(base uint64, i int) uint64 {
	x := base + 0x9E3779B97F4A7C15*uint64(i+1)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// chaosScheduleRecord is one schedule's outcome in the -chaosjson output.
type chaosScheduleRecord struct {
	Seed            string `json:"seed"`
	Digest          string `json:"digest"`
	AckedBatches    int    `json:"acked_batches"`
	RejectedBatches int    `json:"rejected_batches"`
	FoldedRecords   int    `json:"folded_records"`
	ClassifyOK      int    `json:"classify_ok"`
	ClassifyShed    int    `json:"classify_shed"`
	Swaps           int    `json:"swaps"`
	ExportBatches   int    `json:"export_batches"`
	ExportRetries   int    `json:"export_retries"`
	InjectedErrs    int    `json:"injected_errs"`
	InjectedDelays  int    `json:"injected_delays"`
}

// swapStormRecord is the refresh swap-storm leg's outcome in the
// -chaosjson output.
type swapStormRecord struct {
	Seed           string `json:"seed"`
	Swaps          int    `json:"swaps"`
	Refreshes      int    `json:"refreshes"`
	Escalations    int    `json:"escalations"`
	ClassifyOK     int    `json:"classify_ok"`
	ClassifyShed   int    `json:"classify_shed"`
	RevisionsSeen  int    `json:"revisions_seen"`
	InjectedErrs   int    `json:"injected_errs"`
	InjectedDelays int    `json:"injected_delays"`
}

// shardStormRecord is the sharded chaos leg's outcome in the -chaosjson
// output: the soak kills one shard and one replica mid-flight and holds
// the acked-batch and per-revision parity invariants throughout.
type shardStormRecord struct {
	Seed           string `json:"seed"`
	Shards         int    `json:"shards"`
	Replicas       int    `json:"replicas"`
	RingDigest     string `json:"ring_digest"`
	AckedBatches   int    `json:"acked_batches"`
	RejectedBatch  int    `json:"rejected_batches"`
	FoldedRecords  int    `json:"folded_records"`
	ClassifyOK     int    `json:"classify_ok"`
	ClassifyShed   int    `json:"classify_shed"`
	Failovers      int64  `json:"failovers"`
	Swaps          int    `json:"swaps"`
	RevisionsSeen  int    `json:"revisions_seen"`
	InjectedErrs   int    `json:"injected_errs"`
	InjectedDelays int    `json:"injected_delays"`
}

// chaosRecord is the -chaosjson schema.
type chaosRecord struct {
	Seed       uint64                `json:"seed"`
	Scale      float64               `json:"scale"`
	Trees      int                   `json:"trees"`
	PlanDigest string                `json:"plan_digest"`
	RevisionA  uint64                `json:"revision_a"`
	RevisionB  uint64                `json:"revision_b"`
	Schedules  []chaosScheduleRecord `json:"schedules"`
	SwapStorm  *swapStormRecord      `json:"swap_storm,omitempty"`
	ShardStorm *shardStormRecord     `json:"shard_storm,omitempty"`
}

// runChaos trains two model snapshots (a "retrain" pair over the same
// synthetic population) and soaks them under schedules seeded fault plans,
// then runs the refresher swap storm: swaps consecutive refresh-driven
// snapshot publishes raced against classify load under the same fault
// rules, each response audited against the offline result of whichever
// revision it echoes.
func runChaos(cfg analysis.Config, schedules, swaps, chaosShards int, outPath string) error {
	if schedules <= 0 {
		schedules = 3
	}
	rules := chaosRules()
	plan := uint64(0xcbf29ce484222325)
	for i := 0; i < schedules; i++ {
		d := fault.Digest(scheduleSeed(cfg.Seed, i), rules, 512)
		plan = (plan ^ d) * 0x100000001b3
	}
	fmt.Printf("icnbench: chaos plan digest %#016x (seed=%d schedules=%d)\n", plan, cfg.Seed, schedules)

	fmt.Fprintf(os.Stderr, "icnbench: training snapshot pair (seed=%d scale=%.2f trees=%d/%d)...\n",
		cfg.Seed, cfg.Scale, cfg.ForestTrees, cfg.ForestTrees+2)
	synthCfg := synth.Config{Seed: cfg.Seed, Scale: cfg.Scale, OutdoorCount: 120}
	resA, err := analysis.RunOnDataset(synth.Generate(synthCfg), cfg)
	if err != nil {
		return err
	}
	cfgB := cfg
	cfgB.ForestTrees = cfg.ForestTrees + 2
	resB, err := analysis.RunOnDataset(synth.Generate(synthCfg), cfgB)
	if err != nil {
		return err
	}
	snapA, err := serve.NewModelSnapshot(resA)
	if err != nil {
		return err
	}
	snapB, err := serve.NewModelSnapshot(resB)
	if err != nil {
		return err
	}
	if snapA.Revision == snapB.Revision {
		return fmt.Errorf("icnbench: chaos needs two distinct model revisions, both fingerprint to %#x", snapA.Revision)
	}
	// Offline ground truth per revision: invariant 2 checks every classify
	// response against the labels of the model revision it echoes.
	labels := map[uint64][]int{
		snapA.Revision: resA.OutdoorLabels,
		snapB.Revision: resB.OutdoorLabels,
	}

	rec := chaosRecord{
		Seed: cfg.Seed, Scale: cfg.Scale, Trees: cfg.ForestTrees,
		PlanDigest: fmt.Sprintf("%#016x", plan),
		RevisionA:  snapA.Revision, RevisionB: snapB.Revision,
	}
	reproduce := fmt.Sprintf("go run ./cmd/icnbench -chaos -seed %d -chaosschedules %d -chaosswaps %d -chaosshards %d -scale %g -trees %d",
		cfg.Seed, schedules, swaps, chaosShards, cfg.Scale, cfg.ForestTrees)
	for i := 0; i < schedules; i++ {
		si := scheduleSeed(cfg.Seed, i)
		sr, err := runChaosSchedule(si, rules, snapA, snapB, resA, labels)
		if err != nil {
			fmt.Printf("icnbench: chaos schedule %d FAILED (seed %#016x): %v\n", i, si, err)
			fmt.Printf("icnbench: reproduce with: %s\n", reproduce)
			return fmt.Errorf("icnbench: chaos schedule %d: %w", i, err)
		}
		sr.Digest = fmt.Sprintf("%#016x", fault.Digest(si, rules, 512))
		fmt.Printf("icnbench: chaos schedule %d OK — seed %#016x acked=%d rejected=%d folded=%d classify_ok=%d shed=%d swaps=%d exports=%d retries=%d faults(err=%d delay=%d)\n",
			i, si, sr.AckedBatches, sr.RejectedBatches, sr.FoldedRecords,
			sr.ClassifyOK, sr.ClassifyShed, sr.Swaps, sr.ExportBatches, sr.ExportRetries,
			sr.InjectedErrs, sr.InjectedDelays)
		rec.Schedules = append(rec.Schedules, sr)
	}

	if swaps > 0 {
		stormSeed := scheduleSeed(cfg.Seed, schedules)
		ss, err := runSwapStorm(stormSeed, rules, resA, swaps)
		if err != nil {
			fmt.Printf("icnbench: chaos swap storm FAILED (seed %#016x): %v\n", stormSeed, err)
			fmt.Printf("icnbench: reproduce with: %s\n", reproduce)
			return fmt.Errorf("icnbench: chaos swap storm: %w", err)
		}
		fmt.Printf("icnbench: chaos swap storm OK — seed %#016x swaps=%d refreshes=%d escalations=%d classify_ok=%d shed=%d revisions_seen=%d faults(err=%d delay=%d)\n",
			stormSeed, ss.Swaps, ss.Refreshes, ss.Escalations, ss.ClassifyOK, ss.ClassifyShed,
			ss.RevisionsSeen, ss.InjectedErrs, ss.InjectedDelays)
		rec.SwapStorm = &ss
	}

	if chaosShards > 0 {
		shardSeed := scheduleSeed(cfg.Seed, schedules+1)
		sh, err := runShardStorm(shardSeed, rules, resA, chaosShards)
		if err != nil {
			fmt.Printf("icnbench: chaos shard storm FAILED (seed %#016x): %v\n", shardSeed, err)
			fmt.Printf("icnbench: reproduce with: %s\n", reproduce)
			return fmt.Errorf("icnbench: chaos shard storm: %w", err)
		}
		fmt.Printf("icnbench: chaos shard storm OK — seed %#016x ring=%s acked=%d rejected=%d folded=%d classify_ok=%d shed=%d failovers=%d swaps=%d revisions=%d faults(err=%d delay=%d)\n",
			shardSeed, sh.RingDigest, sh.AckedBatches, sh.RejectedBatch, sh.FoldedRecords,
			sh.ClassifyOK, sh.ClassifyShed, sh.Failovers, sh.Swaps, sh.RevisionsSeen,
			sh.InjectedErrs, sh.InjectedDelays)
		rec.ShardStorm = &sh
	}
	fmt.Printf("icnbench: chaos PASS — %d schedules, all invariants held; reproduce with: %s\n", schedules, reproduce)

	if outPath != "" {
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "icnbench: wrote chaos record to %s\n", outPath)
	}
	return nil
}

// chaosExportRecords builds one exporter batch tagged with the batch index
// so partial deliveries from retried attempts stay distinguishable.
func chaosExportRecords(batch, n int) []probe.Record {
	recs := make([]probe.Record, n)
	for i := range recs {
		recs[i] = probe.Record{
			Hour: uint32(i % 24), AntennaID: uint32(batch), Protocol: probe.TCP,
			ServerPort: 443, ServerName: "chaos.example",
			DownBytes: 1 << 20, UpBytes: 1 << 16,
		}
	}
	return recs
}

// runChaosSchedule executes one seeded fault schedule and checks the three
// soak invariants. All legs share one injector, so the schedule exercises
// cross-seam interleavings while each seam's decision stream stays a pure
// function of the seed.
func runChaosSchedule(seed uint64, rules map[fault.Site]fault.Rule,
	snapA, snapB *serve.ModelSnapshot, res *analysis.Result, labels map[uint64][]int,
) (chaosScheduleRecord, error) {
	var out chaosScheduleRecord
	out.Seed = fmt.Sprintf("%#016x", seed)
	// Invariant 3's outer bound: nothing below may hang past this.
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	inj := fault.New(seed, rules)
	srv, err := serve.New(snapA, nil, serve.Config{QueueDepth: 16, IngestWorkers: 2, Faults: inj})
	if err != nil {
		return out, err
	}
	if err := srv.Start(); err != nil {
		return out, err
	}
	url := "http://" + srv.Addr().String()

	col, err := collect.ListenContext(ctx, "127.0.0.1:0")
	if err != nil {
		_ = srv.Shutdown(ctx)
		return out, err
	}
	colCtx, colCancel := context.WithCancel(ctx)
	defer colCancel()
	var colTasks pipe.Tasks
	defer colTasks.Wait()
	colTasks.Go(func() { _ = col.Serve(colCtx) })

	const (
		ingestBatches, ingestPerBatch = 40, 25
		classifyClients, classifyReqs = 3, 12
		classifyBatch                 = 32
		swapCount                     = 8
		exportBatches, exportPerBatch = 10, 30
		exportAttempts                = 12
	)
	var ingestStream bytes.Buffer
	pw := probe.NewWriter(&ingestStream)
	for _, r := range chaosExportRecords(0, ingestPerBatch) {
		if err := pw.Write(r); err != nil {
			return out, err
		}
	}
	if err := pw.Flush(); err != nil {
		return out, err
	}

	outdoor := res.Dataset.OutdoorTraffic
	nVec := classifyBatch
	if nVec > outdoor.Rows() {
		nVec = outdoor.Rows()
	}
	var classifyBody []byte
	{
		var req serve.ClassifyRequest
		for i := 0; i < nVec; i++ {
			req.Antennas = append(req.Antennas, serve.AntennaVector{
				ID: uint32(i), Traffic: outdoor.Row(i),
			})
		}
		classifyBody, err = json.Marshal(req)
		if err != nil {
			return out, err
		}
	}

	var (
		mu      sync.Mutex
		legErrs []error
		legs    pipe.Tasks
	)
	fail := func(err error) {
		mu.Lock()
		legErrs = append(legErrs, err)
		mu.Unlock()
	}

	// Leg 1: ingest pressure. 202s are a durability promise; 429/503 is
	// sanctioned degradation under the injected fold delays.
	acked := 0
	legs.Go(func() {
		client := &http.Client{Timeout: 30 * time.Second}
		for b := 0; b < ingestBatches; b++ {
			resp, err := client.Post(url+"/v1/ingest", "application/octet-stream", bytes.NewReader(ingestStream.Bytes()))
			if err != nil {
				fail(fmt.Errorf("ingest leg: %w", err))
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
				acked++
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				out.RejectedBatches++
			default:
				fail(fmt.Errorf("ingest leg: unexpected status %d", resp.StatusCode))
				return
			}
		}
	})

	// Leg 2: classify parity under racing swaps (invariant 2). Every 200
	// must match the offline labels of the revision the response echoes.
	classifyOK := make([]int, classifyClients)
	classifyShed := make([]int, classifyClients)
	for c := 0; c < classifyClients; c++ {
		c := c
		legs.Go(func() {
			client := &http.Client{Timeout: 30 * time.Second}
			for r := 0; r < classifyReqs; r++ {
				resp, err := client.Post(url+"/v1/classify", "application/json", bytes.NewReader(classifyBody))
				if err != nil {
					fail(fmt.Errorf("classify leg %d: %w", c, err))
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusServiceUnavailable {
					classifyShed[c]++
					continue
				}
				if resp.StatusCode != http.StatusOK {
					fail(fmt.Errorf("classify leg %d: status %d: %s", c, resp.StatusCode, body))
					return
				}
				var cr serve.ClassifyResponse
				if err := json.Unmarshal(body, &cr); err != nil {
					fail(fmt.Errorf("classify leg %d: %w", c, err))
					return
				}
				want, ok := labels[cr.ModelRevision]
				if !ok {
					fail(fmt.Errorf("classify leg %d: response echoes unknown model revision %d", c, cr.ModelRevision))
					return
				}
				for i, v := range cr.Results {
					if v.Cluster != want[i] {
						fail(fmt.Errorf("classify leg %d: antenna %d served cluster %d under revision %d, offline labels say %d",
							c, v.ID, v.Cluster, cr.ModelRevision, want[i]))
						return
					}
				}
				classifyOK[c]++
			}
		})
	}

	// Leg 3: model swaps racing the classify load; each swap purges the
	// verdict LRU (the PR's stale-cache fix).
	legs.Go(func() {
		for sw := 0; sw < swapCount; sw++ {
			next := snapB
			if sw%2 == 1 {
				next = snapA
			}
			if err := srv.SwapSnapshot(next); err != nil {
				fail(fmt.Errorf("swap leg: %w", err))
				return
			}
			out.Swaps++
			time.Sleep(5 * time.Millisecond)
		}
	})

	// Leg 4: exporter durability through the faulted dialer. Dial refusals
	// back off and retry inside Export; a mid-stream reset fails the whole
	// attempt and the batch is re-sent — at-least-once, never lost.
	exportRetries := 0
	legs.Go(func() {
		for b := 0; b < exportBatches; b++ {
			recs := chaosExportRecords(b, exportPerBatch)
			delivered := false
			for attempt := 0; attempt < exportAttempts; attempt++ {
				err := collect.Export(ctx, col.Addr().String(), recs,
					collect.WithDialRetry(6, time.Millisecond),
					collect.WithRetrySeed(seed+uint64(b)),
					collect.WithDialContext(inj.Dialer(nil)))
				if err == nil {
					delivered = true
					break
				}
				exportRetries++
				if ctx.Err() != nil {
					fail(fmt.Errorf("export leg: %w", ctx.Err()))
					return
				}
			}
			if !delivered {
				fail(fmt.Errorf("export leg: batch %d lost after %d attempts", b, exportAttempts))
				return
			}
			out.ExportBatches++
		}
	})

	legs.Wait()
	for c := range classifyOK {
		out.ClassifyOK += classifyOK[c]
		out.ClassifyShed += classifyShed[c]
	}
	out.AckedBatches = acked
	out.ExportRetries = exportRetries

	// Fault counters must be visible on /metrics while the server is live.
	if resp, err := http.Get(url + "/metrics"); err == nil {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(body), "icn_fault_serve_fold_delays") {
			fail(fmt.Errorf("metrics: no icn_fault_serve_fold_delays counter exported"))
		}
	} else {
		fail(fmt.Errorf("metrics: %w", err))
	}

	// Invariant 3: the drain itself is bounded.
	sdCtx, sdCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer sdCancel()
	if err := srv.Shutdown(sdCtx); err != nil {
		fail(fmt.Errorf("shutdown under fault (possible deadlock): %w", err))
	}
	colCancel()
	colTasks.Wait()

	// Invariant 1: exactly the acked ingest records, no more, no fewer.
	out.FoldedRecords = srv.Sink().Snapshot().Records
	if want := acked * ingestPerBatch; out.FoldedRecords != want {
		fail(fmt.Errorf("acked-batch loss: aggregate holds %d records, want %d (%d acked × %d)",
			out.FoldedRecords, want, acked, ingestPerBatch))
	}
	// Exporter at-least-once: every delivered batch is fully present.
	if got, want := col.Sink().Snapshot().Records, out.ExportBatches*exportPerBatch; got < want {
		fail(fmt.Errorf("export loss: collector holds %d records, want >= %d", got, want))
	}
	for _, c := range inj.Stats() {
		out.InjectedErrs += int(c.Errs)
		out.InjectedDelays += int(c.Delays)
	}
	if len(legErrs) > 0 {
		return out, legErrs[0]
	}
	return out, nil
}

// runSwapStorm closes the ingest → refresh → swap loop under fire: a
// Refresher drives at least `swaps` consecutive snapshot publishes — each
// seeded by fresh aggregates landing through the faulted fold path — while
// classify clients hammer the server throughout. Every 200 must match the
// offline OutdoorLabels of the exact revision the response echoes
// (resolved through the refresher's revision registry), so the
// served↔offline consistency invariant is audited across the entire swap
// history, not just a retrain pair.
func runSwapStorm(seed uint64, rules map[fault.Site]fault.Rule, base *analysis.Result, swaps int) (swapStormRecord, error) {
	var out swapStormRecord
	out.Seed = fmt.Sprintf("%#016x", seed)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	inj := fault.New(seed, rules)
	snap, err := serve.NewModelSnapshot(base)
	if err != nil {
		return out, err
	}
	srv, err := serve.New(snap, nil, serve.Config{QueueDepth: 64, IngestWorkers: 2, Faults: inj})
	if err != nil {
		return out, err
	}
	if err := srv.Start(); err != nil {
		return out, err
	}
	url := "http://" + srv.Addr().String()

	// Interval: time.Hour — the storm paces refreshes by swap count, not
	// wall time, so RefreshOnce is driven manually. History must outlast
	// the storm: a response may echo any revision ever published.
	ref, err := serve.NewRefresher(srv, base, serve.RefreshConfig{
		Interval: time.Hour,
		History:  swaps + 16,
	})
	if err != nil {
		sdCtx, sdCancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer sdCancel()
		_ = srv.Shutdown(sdCtx)
		return out, err
	}

	outdoor := base.Dataset.OutdoorTraffic
	nVec := 32
	if nVec > outdoor.Rows() {
		nVec = outdoor.Rows()
	}
	var creq serve.ClassifyRequest
	for i := 0; i < nVec; i++ {
		creq.Antennas = append(creq.Antennas, serve.AntennaVector{
			ID: uint32(i), Traffic: outdoor.Row(i),
		})
	}
	classifyBody, err := json.Marshal(creq)
	if err != nil {
		return out, err
	}

	var (
		mu           sync.Mutex
		legErrs      []error
		revSeen      = map[uint64]bool{}
		classifyOK   int
		classifyShed int
	)
	fail := func(err error) {
		mu.Lock()
		legErrs = append(legErrs, err)
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(legErrs) > 0
	}

	// Classify clients run for the storm's whole lifetime so every swap
	// races in-flight requests.
	stopClients := make(chan struct{})
	var clients pipe.Tasks
	const classifyClients = 3
	for c := 0; c < classifyClients; c++ {
		c := c
		clients.Go(func() {
			client := &http.Client{Timeout: 30 * time.Second}
			for {
				select {
				case <-stopClients:
					return
				default:
				}
				resp, err := client.Post(url+"/v1/classify", "application/json", bytes.NewReader(classifyBody))
				if err != nil {
					fail(fmt.Errorf("swap-storm classify %d: %w", c, err))
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusServiceUnavailable {
					mu.Lock()
					classifyShed++
					mu.Unlock()
					continue
				}
				if resp.StatusCode != http.StatusOK {
					fail(fmt.Errorf("swap-storm classify %d: status %d: %s", c, resp.StatusCode, body))
					return
				}
				var cr serve.ClassifyResponse
				if err := json.Unmarshal(body, &cr); err != nil {
					fail(fmt.Errorf("swap-storm classify %d: %w", c, err))
					return
				}
				offline, ok := ref.ResultFor(cr.ModelRevision)
				if !ok {
					fail(fmt.Errorf("swap-storm classify %d: response echoes revision %d with no registered offline result", c, cr.ModelRevision))
					return
				}
				for _, v := range cr.Results {
					if v.Cluster != offline.OutdoorLabels[v.ID] {
						fail(fmt.Errorf("swap-storm classify %d: antenna %d served cluster %d under revision %d, offline labels say %d",
							c, v.ID, v.Cluster, cr.ModelRevision, offline.OutdoorLabels[v.ID]))
						return
					}
				}
				mu.Lock()
				classifyOK++
				revSeen[cr.ModelRevision] = true
				mu.Unlock()
			}
		})
	}

	// Storm loop: ingest a fresh batch over HTTP (through the faulted fold
	// path), wait for it to clear the queue, refresh, count the swap.
	// Rotating antennas and growing volumes keep every fold perturbing the
	// Eq. 5 shares, so each refresh mints a fresh fingerprint; periodic
	// wide bursts push reassignment toward the escalation path.
	nIndoor := base.Dataset.Traffic.Rows()
	ingestClient := &http.Client{Timeout: 30 * time.Second}
	const perBatch = 25
	ackedRecords := 0
	maxIters := 3*swaps + 10
	for iter := 0; out.Swaps < swaps && !failed(); iter++ {
		if iter >= maxIters {
			fail(fmt.Errorf("swap-storm: only %d/%d swaps after %d refresh attempts", out.Swaps, swaps, iter))
			break
		}
		if ctx.Err() != nil {
			fail(fmt.Errorf("swap-storm: %w", ctx.Err()))
			break
		}
		var stream bytes.Buffer
		pw := probe.NewWriter(&stream)
		spread := 1
		if iter%7 == 6 {
			spread = 17 // burst across distant antennas
		}
		writeErr := error(nil)
		for j := 0; j < perBatch; j++ {
			// Real catalog domains: the storm needs the fold to land in the
			// classified traffic matrix, or the refresh has nothing to do.
			rec := probe.Record{
				Hour: uint32(j % 24), AntennaID: uint32((iter*13 + j*spread) % nIndoor),
				Protocol: probe.TCP, ServerPort: 443,
				ServerName: probe.DomainOf((iter + j) % services.M),
				DownBytes:  (1 + uint64(iter%5)) << 20, UpBytes: 1 << 16,
			}
			if err := pw.Write(rec); err != nil {
				writeErr = err
				break
			}
		}
		if writeErr == nil {
			writeErr = pw.Flush()
		}
		if writeErr != nil {
			fail(fmt.Errorf("swap-storm ingest %d: %w", iter, writeErr))
			break
		}

		// 429/503 under queue pressure is sanctioned degradation: back off
		// and re-send until the batch is acked.
		landed := false
		for attempt := 0; attempt < 100 && ctx.Err() == nil; attempt++ {
			resp, err := ingestClient.Post(url+"/v1/ingest", "application/octet-stream", bytes.NewReader(stream.Bytes()))
			if err != nil {
				fail(fmt.Errorf("swap-storm ingest %d: %w", iter, err))
				break
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusAccepted {
				landed = true
				ackedRecords += perBatch
				break
			}
			if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
				time.Sleep(2 * time.Millisecond)
				continue
			}
			fail(fmt.Errorf("swap-storm ingest %d: unexpected status %d", iter, resp.StatusCode))
			break
		}
		if !landed {
			if !failed() {
				fail(fmt.Errorf("swap-storm ingest %d: batch never acked", iter))
			}
			break
		}
		// The ack is a durability promise, not a visibility one: wait for
		// the batch to clear the faulted fold path so the refresh sees it.
		for srv.Sink().Snapshot().Records < ackedRecords && ctx.Err() == nil {
			time.Sleep(time.Millisecond)
		}

		rctx, rcancel := context.WithTimeout(ctx, 2*time.Minute)
		ro, err := ref.RefreshOnce(rctx)
		rcancel()
		if err != nil {
			fail(fmt.Errorf("swap-storm refresh %d: %w", iter, err))
			break
		}
		out.Refreshes++
		if ro.Stats.Escalated {
			out.Escalations++
		}
		if ro.Swapped {
			out.Swaps++
		}
	}

	close(stopClients)
	clients.Wait()

	// The drain itself stays bounded even with the storm's history behind
	// it.
	sdCtx, sdCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer sdCancel()
	if err := srv.Shutdown(sdCtx); err != nil {
		fail(fmt.Errorf("swap-storm shutdown (possible deadlock): %w", err))
	}

	mu.Lock()
	out.ClassifyOK = classifyOK
	out.ClassifyShed = classifyShed
	out.RevisionsSeen = len(revSeen)
	mu.Unlock()
	for _, c := range inj.Stats() {
		out.InjectedErrs += int(c.Errs)
		out.InjectedDelays += int(c.Delays)
	}
	if out.Swaps < swaps {
		if len(legErrs) > 0 {
			return out, legErrs[0]
		}
		return out, fmt.Errorf("swap-storm: %d swaps, want >= %d", out.Swaps, swaps)
	}
	if len(legErrs) > 0 {
		return out, legErrs[0]
	}
	return out, nil
}

// runShardStorm soaks the sharded tier under the same seeded fault rules:
// concurrent ingest and classify load through the router while one shard
// and one replica are killed mid-flight and a refresh fans a new revision
// out to the survivors. Invariants: every 202-acked batch is folded into
// some shard sink by the drain (kills included), every classify 200
// matches the offline labels of the revision it echoes, and nothing hangs
// past the hard deadline.
func runShardStorm(seed uint64, rules map[fault.Site]fault.Rule, base *analysis.Result, shards int) (shardStormRecord, error) {
	var out shardStormRecord
	out.Seed = fmt.Sprintf("%#016x", seed)
	out.Shards = shards
	out.Replicas = 2
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	inj := fault.New(seed, rules)
	snap, err := serve.NewModelSnapshot(base)
	if err != nil {
		return out, err
	}
	rt, err := shard.NewRouter(snap, base, shard.Config{
		Shards: shards, Replicas: 2,
		RingSeed: seed, QueueDepth: 8, Faults: inj,
	})
	if err != nil {
		return out, err
	}
	if err := rt.Start(); err != nil {
		return out, err
	}
	url := rt.URL()
	out.RingDigest = fmt.Sprintf("%016x", rt.Ring().Digest())

	var (
		mu      sync.Mutex
		legErrs []error
		revSeen = map[uint64]bool{}
	)
	fail := func(err error) {
		mu.Lock()
		legErrs = append(legErrs, err)
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(legErrs) > 0
	}

	// Classify clients run for the storm's whole lifetime so the shard and
	// replica kills race in-flight proxied requests. 503 is sanctioned
	// shedding (injected latency past the deadline, or a replica dying
	// under the proxy); a 200 must be parity-perfect for its revision.
	outdoor := base.Dataset.OutdoorTraffic
	nVec := 32
	if nVec > outdoor.Rows() {
		nVec = outdoor.Rows()
	}
	var creq serve.ClassifyRequest
	for i := 0; i < nVec; i++ {
		creq.Antennas = append(creq.Antennas, serve.AntennaVector{
			ID: uint32(i), Traffic: outdoor.Row(i),
		})
	}
	classifyBody, err := json.Marshal(creq)
	if err != nil {
		return out, err
	}
	stopClients := make(chan struct{})
	var clients pipe.Tasks
	classifyOK := 0
	classifyShed := 0
	for c := 0; c < 2; c++ {
		c := c
		clients.Go(func() {
			client := &http.Client{Timeout: 30 * time.Second}
			for {
				select {
				case <-stopClients:
					return
				default:
				}
				resp, err := client.Post(url+"/v1/classify", "application/json", bytes.NewReader(classifyBody))
				if err != nil {
					fail(fmt.Errorf("shard-storm classify %d: %w", c, err))
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusServiceUnavailable {
					mu.Lock()
					classifyShed++
					mu.Unlock()
					continue
				}
				if resp.StatusCode != http.StatusOK {
					fail(fmt.Errorf("shard-storm classify %d: status %d: %s", c, resp.StatusCode, body))
					return
				}
				var cr serve.ClassifyResponse
				if err := json.Unmarshal(body, &cr); err != nil {
					fail(fmt.Errorf("shard-storm classify %d: %w", c, err))
					return
				}
				offline, ok := rt.ResultFor(cr.ModelRevision)
				if !ok {
					fail(fmt.Errorf("shard-storm classify %d: response echoes unregistered revision %016x", c, cr.ModelRevision))
					return
				}
				for _, v := range cr.Results {
					if v.Cluster != offline.OutdoorLabels[v.ID] {
						fail(fmt.Errorf("shard-storm classify %d: antenna %d served cluster %d under revision %016x, offline labels say %d",
							c, v.ID, v.Cluster, cr.ModelRevision, offline.OutdoorLabels[v.ID]))
						return
					}
				}
				mu.Lock()
				classifyOK++
				revSeen[cr.ModelRevision] = true
				mu.Unlock()
			}
		})
	}

	// Ingest through the router with retry-on-429 (each retry re-partitions
	// against the updated ring, which is how acked batches survive the
	// shard kill).
	nIndoor := base.Dataset.Traffic.Rows()
	ingestClient := &http.Client{Timeout: 30 * time.Second}
	const perBatch = 25
	ackedRecords := 0
	ingest := func(iter int) bool {
		var stream bytes.Buffer
		pw := probe.NewWriter(&stream)
		for j := 0; j < perBatch; j++ {
			rec := probe.Record{
				Hour: uint32(j % 24), AntennaID: uint32((iter*19 + j) % nIndoor),
				Protocol: probe.TCP, ServerPort: 443,
				ServerName: probe.DomainOf((iter + j) % services.M),
				DownBytes:  (1 + uint64(iter%4)) << 20, UpBytes: 1 << 16,
			}
			if err := pw.Write(rec); err != nil {
				fail(fmt.Errorf("shard-storm ingest %d: %w", iter, err))
				return false
			}
		}
		if err := pw.Flush(); err != nil {
			fail(fmt.Errorf("shard-storm ingest %d: %w", iter, err))
			return false
		}
		for attempt := 0; attempt < 200 && ctx.Err() == nil; attempt++ {
			resp, err := ingestClient.Post(url+"/v1/ingest", "application/octet-stream", bytes.NewReader(stream.Bytes()))
			if err != nil {
				fail(fmt.Errorf("shard-storm ingest %d: %w", iter, err))
				return false
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
				out.AckedBatches++
				ackedRecords += perBatch
				return true
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				out.RejectedBatch++
				time.Sleep(2 * time.Millisecond)
			default:
				fail(fmt.Errorf("shard-storm ingest %d: unexpected status %d", iter, resp.StatusCode))
				return false
			}
		}
		fail(fmt.Errorf("shard-storm ingest %d: batch never acked", iter))
		return false
	}

	const batchesPerPhase = 15
	for iter := 0; iter < batchesPerPhase && !failed(); iter++ {
		if !ingest(iter) {
			break
		}
	}
	// Mid-soak kills: one shard (its queue drains every acked batch before
	// the kill returns) and one replica (proxied classifies fail over).
	if !failed() && shards > 1 {
		if err := rt.KillShard(shards - 1); err != nil {
			fail(fmt.Errorf("shard-storm kill shard: %w", err))
		}
	}
	if !failed() {
		kctx, kcancel := context.WithTimeout(ctx, 30*time.Second)
		if err := rt.KillReplica(kctx, 1); err != nil {
			fail(fmt.Errorf("shard-storm kill replica: %w", err))
		}
		kcancel()
	}
	for iter := batchesPerPhase; iter < 2*batchesPerPhase && !failed(); iter++ {
		if !ingest(iter) {
			break
		}
	}

	// Refresh under fire: fold the merged cross-shard totals and publish at
	// least one new revision through the fan-out (replica 0 is the only
	// survivor here, but the protocol — register, swap, fan out — is the
	// same one the classify leg audits per echoed revision).
	for iter := 0; out.Swaps < 1 && !failed(); iter++ {
		if iter >= 8 {
			fail(fmt.Errorf("shard-storm: no swap after %d refresh attempts", iter))
			break
		}
		if !ingest(2*batchesPerPhase + iter) {
			break
		}
		for rt.Sinks().PendingRecords() != 0 && ctx.Err() == nil {
			time.Sleep(time.Millisecond)
		}
		rctx, rcancel := context.WithTimeout(ctx, 2*time.Minute)
		ro, err := rt.RefreshOnce(rctx)
		rcancel()
		if err != nil {
			fail(fmt.Errorf("shard-storm refresh %d: %w", iter, err))
			break
		}
		if ro.Swapped {
			out.Swaps++
		}
	}

	close(stopClients)
	clients.Wait()

	// Bounded drain, then the acked-batch audit across every shard sink —
	// the killed shard's drained aggregate included.
	sdCtx, sdCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer sdCancel()
	if err := rt.Shutdown(sdCtx); err != nil {
		fail(fmt.Errorf("shard-storm shutdown (possible deadlock): %w", err))
	}
	st := rt.Stats()
	out.FoldedRecords = st.FoldedRecords
	out.Failovers = st.ClassifyFailovers
	if out.FoldedRecords != ackedRecords {
		fail(fmt.Errorf("shard-storm acked-batch loss: sinks hold %d records, want %d (%d acked × %d)",
			out.FoldedRecords, ackedRecords, out.AckedBatches, perBatch))
	}
	mu.Lock()
	out.ClassifyOK = classifyOK
	out.ClassifyShed = classifyShed
	out.RevisionsSeen = len(revSeen)
	mu.Unlock()
	for _, c := range inj.Stats() {
		out.InjectedErrs += int(c.Errs)
		out.InjectedDelays += int(c.Delays)
	}
	if len(legErrs) > 0 {
		return out, legErrs[0]
	}
	return out, nil
}
