package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/experiments"
)

// The benchmark-regression gate (-gate) reruns the pipeline at the
// baseline's shape and fails when any stage — or the total — slows down
// beyond a tolerance. Two levers keep it honest on noisy shared runners:
// the candidate takes the per-stage best over -gateruns reruns (scheduler
// preemption inflates single samples), and stages whose baseline wall is
// under -gatefloor milliseconds are held to the floor's limit instead of
// their own — short stages overlapping a long stage's tail on a loaded
// (or single-core) runner see contention-dominated walls, so a 0.2 ms
// stage doubling is noise, not regression.

// gateStatus classifies one table row of the gate report.
type gateStatus string

const (
	gateOK      gateStatus = "ok"
	gateRegress gateStatus = "REGRESSION"
	gateMissing gateStatus = "MISSING"
	gateNew     gateStatus = "new"
)

// gateRow is one line of the per-stage comparison table.
type gateRow struct {
	Name    string
	BaseMS  float64
	CandMS  float64
	LimitMS float64
	Status  gateStatus
}

// parseGateMax parses a -gatemax spec — comma-separated stage=ms pairs,
// e.g. "temporal=300,selection=130" — into absolute per-stage wall-time
// ceilings.
func parseGateMax(spec string) (map[string]float64, error) {
	if spec == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, ms, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("gatemax: %q is not stage=ms", pair)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(ms), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("gatemax: %q has no positive millisecond value", pair)
		}
		out[strings.TrimSpace(name)] = v
	}
	return out, nil
}

// parseGateExpect parses a -gateexpect spec — comma-separated stage names
// — into the exact row schema the candidate record must carry.
func parseGateExpect(spec string) []string {
	if spec == "" {
		return nil
	}
	var out []string
	for _, name := range strings.Split(spec, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

// validateGateRows checks a record against an expected row schema: every
// expected stage must be present exactly once, and no unknown stage may
// appear. It makes the gate's row set itself part of the contract — a leg
// that silently stops emitting forecast_p99, or starts emitting a row
// nothing ratchets, fails CI instead of drifting.
func validateGateRows(rec benchRecord, expected []string) error {
	if len(expected) == 0 {
		return nil
	}
	want := make(map[string]bool, len(expected))
	for _, name := range expected {
		want[name] = true
	}
	count := make(map[string]int, len(rec.Stages))
	for _, st := range rec.Stages {
		count[st.Name]++
		if !want[st.Name] {
			return fmt.Errorf("gate rows: unknown stage %q (expected: %s)", st.Name, strings.Join(expected, ","))
		}
	}
	for _, name := range expected {
		switch count[name] {
		case 0:
			return fmt.Errorf("gate rows: missing stage %q (expected: %s)", name, strings.Join(expected, ","))
		case 1:
		default:
			return fmt.Errorf("gate rows: stage %q appears %d times", name, count[name])
		}
	}
	return nil
}

// runGate loads the baseline record, measures (or loads, with comparePath)
// a candidate record, prints the per-stage table and returns an error when
// any baseline stage regressed beyond the tolerance, exceeded its
// absolute maxMS ceiling, or disappeared. A non-empty expect list also
// pins the candidate's exact row schema (see validateGateRows).
func runGate(cfg analysis.Config, baselinePath, comparePath, benchPath string, tolerance, floorMS float64, runs int, maxMS map[string]float64, expect []string) error {
	base, err := readBenchRecord(baselinePath)
	if err != nil {
		return fmt.Errorf("bench gate: baseline: %w", err)
	}
	var cand benchRecord
	if comparePath != "" {
		if cand, err = readBenchRecord(comparePath); err != nil {
			return fmt.Errorf("bench gate: candidate: %w", err)
		}
		fmt.Fprintf(os.Stderr, "icnbench: gating %s against %s\n", comparePath, baselinePath)
	} else {
		if cand, err = measureBest(cfg, runs, benchPath); err != nil {
			return err
		}
	}

	if err := validateGateRows(cand, expect); err != nil {
		return fmt.Errorf("bench gate: candidate schema: %w", err)
	}

	rows, regressed := compareBench(base, cand, tolerance, floorMS, maxMS)
	fmt.Printf("bench gate: tolerance +%.0f%%, floor %.0fms (limit = max(baseline, floor) × %.2f)\n",
		tolerance*100, floorMS, 1+tolerance)
	if len(maxMS) > 0 {
		var caps []string
		for _, r := range rows {
			if m, ok := maxMS[r.Name]; ok {
				caps = append(caps, fmt.Sprintf("%s≤%.0fms", r.Name, m))
			}
		}
		fmt.Printf("bench gate: absolute ceilings: %s\n", strings.Join(caps, ", "))
	}
	fmt.Printf("%-14s %12s %12s %12s   %s\n", "stage", "baseline", "current", "limit", "status")
	for _, r := range rows {
		cur := fmt.Sprintf("%.1fms", r.CandMS)
		if r.Status == gateMissing {
			cur = "-"
		}
		fmt.Printf("%-14s %11.1fms %12s %11.1fms   %s\n", r.Name, r.BaseMS, cur, r.LimitMS, r.Status)
	}
	if regressed > 0 {
		return fmt.Errorf("bench gate: %d stage(s) regressed beyond the +%.0f%% tolerance", regressed, tolerance*100)
	}
	fmt.Println("bench gate: ok")
	return nil
}

// measureBest runs the pipeline `runs` times and keeps the per-stage (and
// total) minimum wall time — single runs on a loaded machine overstate
// stage walls, and a genuine regression slows every rerun. When benchPath
// is set, the combined record is also written there.
func measureBest(cfg analysis.Config, runs int, benchPath string) (benchRecord, error) {
	if runs < 1 {
		runs = 1
	}
	var best benchRecord
	for n := 0; n < runs; n++ {
		fmt.Fprintf(os.Stderr, "icnbench: gate run %d/%d (seed=%d scale=%.2f trees=%d)...\n",
			n+1, runs, cfg.Seed, cfg.Scale, cfg.ForestTrees)
		suite, err := experiments.NewSuite(cfg)
		if err != nil {
			return benchRecord{}, fmt.Errorf("bench gate: pipeline: %w", err)
		}
		rec := buildBenchRecord(cfg, suite)
		if n == 0 {
			best = rec
			continue
		}
		if rec.TotalMS < best.TotalMS {
			best.TotalMS = rec.TotalMS
		}
		for i := range best.Stages {
			for _, st := range rec.Stages {
				if st.Name == best.Stages[i].Name && st.WallMS < best.Stages[i].WallMS {
					best.Stages[i].WallMS = st.WallMS
					best.Stages[i].WaitedMS = st.WaitedMS
				}
			}
		}
	}
	if benchPath != "" {
		data, err := json.MarshalIndent(best, "", "  ")
		if err != nil {
			return benchRecord{}, err
		}
		if err := os.WriteFile(benchPath, append(data, '\n'), 0o644); err != nil {
			return benchRecord{}, err
		}
		fmt.Fprintf(os.Stderr, "icnbench: wrote gated stage timings to %s\n", benchPath)
	}
	return best, nil
}

// compareBench builds the per-stage gate table: every baseline stage in
// baseline order, a TOTAL row, then candidate-only stages (informational).
// A stage regresses when its candidate wall exceeds
// max(baseline, floor) × (1 + tolerance); a baseline stage missing from
// the candidate also counts as a regression (a silently dropped stage must
// not pass the gate). maxMS imposes absolute per-stage ceilings on top:
// a listed stage's limit is clamped to its ceiling, so a slow creep that
// stays inside the relative tolerance still fails once it crosses the
// budgeted wall (the tentpole stages commit to temporal ≤ 300 ms and
// selection ≤ 130 ms at the baseline shape).
func compareBench(base, cand benchRecord, tolerance, floorMS float64, maxMS map[string]float64) (rows []gateRow, regressed int) {
	candWall := make(map[string]float64, len(cand.Stages))
	for _, st := range cand.Stages {
		candWall[st.Name] = st.WallMS
	}
	limit := func(name string, baseMS float64) float64 {
		b := baseMS
		if b < floorMS {
			b = floorMS
		}
		l := b * (1 + tolerance)
		if m, ok := maxMS[name]; ok && m < l {
			l = m
		}
		return l
	}
	seen := make(map[string]bool, len(base.Stages))
	for _, st := range base.Stages {
		seen[st.Name] = true
		row := gateRow{Name: st.Name, BaseMS: st.WallMS, LimitMS: limit(st.Name, st.WallMS)}
		if w, ok := candWall[st.Name]; !ok {
			row.Status = gateMissing
			regressed++
		} else {
			row.CandMS = w
			if w > row.LimitMS {
				row.Status = gateRegress
				regressed++
			} else {
				row.Status = gateOK
			}
		}
		rows = append(rows, row)
	}
	total := gateRow{Name: "TOTAL", BaseMS: base.TotalMS, CandMS: cand.TotalMS, LimitMS: limit("TOTAL", base.TotalMS)}
	if total.CandMS > total.LimitMS {
		total.Status = gateRegress
		regressed++
	} else {
		total.Status = gateOK
	}
	rows = append(rows, total)
	for _, st := range cand.Stages {
		if !seen[st.Name] {
			rows = append(rows, gateRow{Name: st.Name, CandMS: st.WallMS, LimitMS: limit(st.Name, 0), Status: gateNew})
		}
	}
	return rows, regressed
}

func readBenchRecord(path string) (benchRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return benchRecord{}, err
	}
	var rec benchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return benchRecord{}, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}
