// Command icnprofile runs the pipeline and prints the per-cluster demand
// profiles and the Section 7 slice plans — the operational output an MNO
// planner would consume: which services characterize each cluster, which
// environments it serves, when it peaks, and how to slice and cache for it.
//
// Usage:
//
//	icnprofile [-seed N] [-scale F] [-top N] [-trace]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/envmodel"
)

func main() {
	seed := flag.Uint64("seed", 1, "generator seed")
	scale := flag.Float64("scale", 0.15, "fraction of the paper's antenna population")
	top := flag.Int("top", 8, "characterizing services per cluster")
	trace := flag.Bool("trace", false, "print the per-stage pipeline trace")
	flag.Parse()

	res, err := analysis.Run(analysis.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		fmt.Fprintf(os.Stderr, "icnprofile: %v\n", err)
		os.Exit(1)
	}
	profiles := core.BuildProfiles(res, core.Options{TopServices: *top})
	plans := core.PlanSlices(profiles)

	fmt.Printf("pipeline: %d antennas, %d clusters, purity %.3f, Cramér's V %.3f\n\n",
		len(res.Labels), res.K, res.Purity(), res.Contingency.CramersV())
	if *trace {
		fmt.Println("stage trace:")
		fmt.Println(res.Trace())
	}

	for i, p := range profiles {
		fmt.Printf("=== cluster %d (%s group, %d antennas) ===\n", p.Cluster, p.Group, p.Size)
		var envs []string
		for j, e := range p.Environments {
			if j == 3 || e.Share < 0.05 {
				break
			}
			envs = append(envs, fmt.Sprintf("%s %.0f%%", e.Env, e.Share*100))
		}
		fmt.Printf("environments : %s\n", strings.Join(envs, ", "))
		fmt.Printf("temporal     : peak %02d:00, weekend ratio %.2f, strike dip %.2f\n",
			p.PeakHour, p.WeekendRatio, p.StrikeDip)
		var over, under []string
		for _, s := range p.TopServices {
			if s.OverUtilized {
				over = append(over, s.Name)
			} else {
				under = append(under, s.Name)
			}
		}
		if len(over) > 0 {
			fmt.Printf("over-used    : %s\n", strings.Join(over, ", "))
		}
		if len(under) > 0 {
			fmt.Printf("under-used   : %s\n", strings.Join(under, ", "))
		}
		plan := plans[i]
		fmt.Printf("slice plan   : %s, provision %02d:00-%02d:00, weekend %.0f%%",
			plan.SliceName, plan.PeakWindow[0], plan.PeakWindow[1], plan.WeekendScaling*100)
		if plan.EventDriven {
			fmt.Print(", burst-on-event")
		}
		fmt.Println()
		if len(plan.CacheServices) > 0 {
			fmt.Printf("edge caching : %s\n", strings.Join(plan.CacheServices, ", "))
		}
		fmt.Println()
	}

	// Group summary, mirroring the paper's Fig. 3 organization.
	fmt.Println("dendrogram groups:")
	for _, g := range []envmodel.Group{envmodel.GroupOrange, envmodel.GroupGreen, envmodel.GroupRed} {
		var members []string
		for _, p := range profiles {
			if p.Group == g {
				members = append(members, fmt.Sprintf("%d", p.Cluster))
			}
		}
		fmt.Printf("  %-6s clusters %s\n", g, strings.Join(members, ", "))
	}
}
