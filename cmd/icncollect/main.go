// Command icncollect runs the measurement collection service: a TCP server
// accepting probe record streams and aggregating per-hour, per-antenna,
// per-service traffic — the central platform of the paper's Section 3
// measurement architecture. With -replay it instead acts as a probe,
// generating one day of sessions for a synthetic deployment and exporting
// them to a collector.
//
// Usage:
//
//	icncollect -listen 127.0.0.1:9400                   # server
//	icncollect -replay 127.0.0.1:9400 [-antennas N]     # probe client
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/collect"
	"repro/internal/pipe"
	"repro/internal/probe"
	"repro/internal/rng"
	"repro/internal/services"
	"repro/internal/synth"
)

func main() {
	listen := flag.String("listen", "", "address to serve a collector on")
	replay := flag.String("replay", "", "collector address to replay synthetic probe traffic to")
	antennas := flag.Int("antennas", 5, "antennas to replay (with -replay)")
	seed := flag.Uint64("seed", 1, "synthetic dataset seed (with -replay)")
	interval := flag.Duration("report", 2*time.Second, "stats reporting interval (with -listen)")
	flag.Parse()

	switch {
	case *listen != "" && *replay == "":
		runCollector(*listen, *interval)
	case *replay != "" && *listen == "":
		runReplay(*replay, *antennas, *seed)
	default:
		fmt.Fprintln(os.Stderr, "usage: icncollect -listen ADDR | -replay ADDR")
		os.Exit(2)
	}
}

func runCollector(addr string, interval time.Duration) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	c, err := collect.ListenContext(ctx, addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("icncollect: listening on %s (SIGINT to stop)\n", c.Addr())

	// The reporter rides on pipe.Tasks like every other goroutine in the
	// module, so it is tracked and drained before the process exits.
	var reporter pipe.Tasks
	reporter.Go(func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		var last collect.Stats
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				st := c.Snapshot()
				if st != last {
					fmt.Printf("icncollect: conns=%d records=%d malformed=%d unclassified=%.2fMB\n",
						st.Connections, st.Records, st.MalformedStreams, st.UnclassifiedMB)
					last = st
				}
			}
		}
	})

	err = c.Serve(ctx)
	stop()
	reporter.Wait()
	st := c.Snapshot()
	fmt.Printf("icncollect: stopped (%v) — %d connections, %d records aggregated\n",
		err, st.Connections, st.Records)
}

func runReplay(addr string, antennas int, seed uint64) {
	ds := synth.Generate(synth.Config{Seed: seed, Scale: 0.02, OutdoorCount: 1})
	if antennas > len(ds.Indoor) {
		antennas = len(ds.Indoor)
	}
	r := rng.New(seed + 1)
	var records []probe.Record
	for _, a := range ds.Indoor[:antennas] {
		perService := make([]float64, services.M)
		for j := 0; j < services.M; j++ {
			series := ds.HourlyService(a, j)
			for h := 0; h < 24; h++ {
				perService[j] = series[h]
				records = append(records, probe.GenerateSessions(uint32(h), uint32(a.ID), perService, r)...)
				perService[j] = 0
			}
		}
	}
	fmt.Printf("icncollect: exporting %d session records from %d antennas to %s\n",
		len(records), antennas, addr)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := collect.Export(ctx, addr, records); err != nil {
		fatal(err)
	}
	fmt.Println("icncollect: export complete")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "icncollect: %v\n", err)
	os.Exit(1)
}
