// Command icngen emits a synthetic nationwide ICN measurement dataset as
// CSV: an antenna inventory and the per-antenna per-service traffic
// matrix, in the shape of the "processed service consumption data" the
// paper releases. With -sessions it additionally replays a day of traffic
// through the probe pipeline (session records → binary stream →
// classification → hourly aggregation) and writes the hourly CSV.
//
// Usage:
//
//	icngen [-seed N] [-scale F] [-out DIR] [-sessions]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dataio"
	"repro/internal/probe"
	"repro/internal/rng"
	"repro/internal/services"
	"repro/internal/synth"
)

func main() {
	seed := flag.Uint64("seed", 1, "generator seed")
	scale := flag.Float64("scale", 0.25, "fraction of the paper's antenna population")
	outDir := flag.String("out", "icn-dataset", "output directory")
	sessions := flag.Bool("sessions", false, "also replay one day through the probe pipeline")
	flag.Parse()

	ds := synth.Generate(synth.Config{Seed: *seed, Scale: *scale})
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	if err := writeAntennas(filepath.Join(*outDir, "antennas.csv"), ds); err != nil {
		fatal(err)
	}
	if err := writeTraffic(filepath.Join(*outDir, "traffic.csv"), ds); err != nil {
		fatal(err)
	}
	fmt.Printf("icngen: wrote %d indoor antennas, %d services to %s\n",
		len(ds.Indoor), services.M, *outDir)

	if *sessions {
		path := filepath.Join(*outDir, "hourly_day0.csv")
		n, err := replayDay(path, ds)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("icngen: replayed %d probe sessions into %s\n", n, path)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "icngen: %v\n", err)
	os.Exit(1)
}

func writeAntennas(path string, ds *synth.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "antenna_id,name,environment,city,paris,site,lat,lon")
	for _, a := range ds.Indoor {
		fmt.Fprintf(w, "%d,%s,%s,%s,%v,%d,%.5f,%.5f\n",
			a.ID, a.Name, a.Env, a.City, a.Paris, a.Site, a.Location.Lat, a.Location.Lon)
	}
	return w.Flush()
}

func writeTraffic(path string, ds *synth.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	ids := make([]string, len(ds.Indoor))
	for i, a := range ds.Indoor {
		ids[i] = fmt.Sprintf("%d", a.ID)
	}
	return dataio.WriteTraffic(f, &dataio.TrafficTable{
		AntennaIDs: ids,
		Services:   services.Names(),
		Traffic:    ds.Traffic,
	})
}

// replayDay pushes the first day of the first few antennas through the
// probe pipeline and writes the aggregated hourly traffic.
func replayDay(path string, ds *synth.Dataset) (int, error) {
	r := rng.New(99)
	agg := probe.NewAggregator(probe.NewClassifier())
	limit := 10
	if len(ds.Indoor) < limit {
		limit = len(ds.Indoor)
	}
	for _, a := range ds.Indoor[:limit] {
		perService := make([][]float64, 24)
		for h := range perService {
			perService[h] = make([]float64, services.M)
		}
		for j := 0; j < services.M; j++ {
			series := ds.HourlyService(a, j)
			for h := 0; h < 24; h++ {
				perService[h][j] = series[h]
			}
		}
		for h := 0; h < 24; h++ {
			for _, rec := range probe.GenerateSessions(uint32(h), uint32(a.ID), perService[h], r) {
				agg.Add(rec)
			}
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "antenna_id,hour,service,mb")
	for _, a := range ds.Indoor[:limit] {
		for h := uint32(0); h < 24; h++ {
			for j := 0; j < services.M; j++ {
				mb := agg.HourlyMB(uint32(a.ID), j, h)
				if mb > 0 {
					fmt.Fprintf(w, "%d,%d,%q,%.4f\n", a.ID, h, services.Get(j).Name, mb)
				}
			}
		}
	}
	return agg.Sessions, w.Flush()
}
