// Command icncluster clusters an arbitrary antenna × service traffic CSV
// (as produced by icngen, or any matrix with an antenna_id column followed
// by per-service traffic columns): it computes RSCA features, runs Ward
// agglomerative clustering, reports the Silhouette/Dunn sweep, and prints
// cluster assignments and per-cluster service signatures.
//
// Usage:
//
//	icncluster [-k N] [-kmax N] [-top N] traffic.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cluster"
	"repro/internal/dataio"
	"repro/internal/rca"
	"repro/internal/report"
	"repro/internal/stats"
)

func main() {
	k := flag.Int("k", 9, "number of flat clusters")
	kmax := flag.Int("kmax", 14, "upper bound of the model-selection sweep")
	top := flag.Int("top", 5, "signature services printed per cluster")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: icncluster [-k N] [-kmax N] traffic.csv")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	table, err := dataio.ReadTraffic(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %d antennas × %d services\n", table.Traffic.Rows(), table.Traffic.Cols())

	features := rca.RSCA(table.Traffic)
	if err := rca.Validate(features); err != nil {
		fatal(err)
	}
	linkage := cluster.Ward(features)
	dists := cluster.PairwiseDistances(features)

	sweepMax := *kmax
	if sweepMax > table.Traffic.Rows() {
		sweepMax = table.Traffic.Rows()
	}
	sweep, err := cluster.SweepK(linkage, dists, 2, sweepMax)
	if err != nil {
		fatal(err)
	}
	tb := report.NewTable("model selection", "k", "silhouette", "dunn")
	for _, p := range sweep {
		tb.AddRow(p.K, p.Silhouette, p.Dunn)
	}
	fmt.Println(tb.String())

	kk := *k
	if kk > table.Traffic.Rows() {
		kk = table.Traffic.Rows()
	}
	labels, err := linkage.Cut(kk)
	if err != nil {
		fatal(err)
	}
	sizes := make([]int, kk)
	for _, l := range labels {
		sizes[l]++
	}
	for c := 0; c < kk; c++ {
		var members []int
		for i, l := range labels {
			if l == c {
				members = append(members, i)
			}
		}
		mean := features.MeanRows(members)
		rank := stats.RankDescending(mean)
		var over []string
		for _, j := range rank {
			if len(over) == *top || mean[j] <= 0 {
				break
			}
			over = append(over, table.Services[j])
		}
		fmt.Printf("cluster %d: %d antennas; over-utilized: %s\n",
			c, sizes[c], strings.Join(over, ", "))
	}

	fmt.Println("\nassignments (antenna_id,cluster):")
	w := bufio.NewWriter(os.Stdout)
	for i, l := range labels {
		fmt.Fprintf(w, "%s,%d\n", table.AntennaIDs[i], l)
	}
	w.Flush()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "icncluster: %v\n", err)
	os.Exit(1)
}
