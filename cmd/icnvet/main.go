// Command icnvet is the module's domain linter: it loads every package and
// enforces the pipeline's determinism, concurrency and error-handling
// contracts with the internal/lint analyzer suite — including the
// cross-package dataflow analyzers (snapfreeze, ctxguard, lockatomic,
// metricreg) that consume facts exported in dependency order.
//
// Usage:
//
//	icnvet [-C dir] [-json] [-analyzers poolgo,errwrap] [-list]
//	       [-incremental] [-time] [-allows] [-facts-debug]
//
// -incremental keys each package's analysis on a content hash (stored
// under <module>/.icnvet-cache) so unchanged packages replay instantly;
// -allows prints the suppression-debt report (every //lint:allow with its
// reason and whether it fired); -facts-debug dumps the cross-package fact
// store; -time breaks the run down by phase and analyzer.
//
// Exit status: 0 when the module is clean, 1 when findings were reported,
// 2 when the module could not be loaded. Individual findings are
// suppressed in source with "//lint:allow <analyzer> <reason>".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "module root to analyze (directory containing go.mod)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	names := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	incremental := flag.Bool("incremental", false, "use the content-hash cache under <module>/.icnvet-cache")
	timing := flag.Bool("time", false, "print the per-phase and per-analyzer timing breakdown")
	allows := flag.Bool("allows", false, "print the suppression-debt report instead of findings")
	factsDebug := flag.Bool("facts-debug", false, "dump the cross-package fact store")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers
	if *names != "" {
		var err error
		analyzers, err = lint.ByName(*names)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icnvet: %v\n", err)
			os.Exit(2)
		}
	}

	res, err := lint.RunModule(lint.Options{Dir: *dir, Analyzers: analyzers, Cache: *incremental})
	if err != nil {
		fmt.Fprintf(os.Stderr, "icnvet: %v\n", err)
		os.Exit(2)
	}
	findings := res.Findings

	if *factsDebug {
		fmt.Print(res.Facts.DebugString())
	}
	if *timing {
		printTiming(res.Timing)
	}
	if *allows {
		printAllows(res, *jsonOut)
		return
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "icnvet: encode: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "icnvet: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// printTiming renders the phase breakdown, one row per phase (load is the
// type-checking row the incremental cache exists to eliminate) and one per
// analyzer.
func printTiming(t lint.Timing) {
	w := tabwriter.NewWriter(os.Stderr, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "phase\tscan\t%v\n", t.Scan.Round(timeUnit(t.Scan)))
	fmt.Fprintf(w, "phase\tload\t%v\t(%d/%d packages cached)\n", t.Load.Round(timeUnit(t.Load)), t.Cached, t.Packages)
	fmt.Fprintf(w, "phase\tanalyze\t%v\n", t.Analyze.Round(timeUnit(t.Analyze)))
	fmt.Fprintf(w, "phase\tfinish\t%v\n", t.Finish.Round(timeUnit(t.Finish)))
	for _, a := range t.Analyzers {
		fmt.Fprintf(w, "analyzer\t%s\t%v\n", a.Name, a.Total.Round(timeUnit(a.Total)))
	}
	w.Flush()
}

// timeUnit picks a readable rounding granularity.
func timeUnit(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return 10 * time.Millisecond
	case d >= time.Millisecond:
		return 100 * time.Microsecond
	default:
		return time.Microsecond
	}
}

// printAllows renders the suppression-debt report: every //lint:allow in
// the module with its target analyzer, justification, and whether it
// actually suppressed a finding this run.
func printAllows(res *lint.Result, jsonOut bool) {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		allows := res.Allows
		if allows == nil {
			allows = []lint.AllowRecord{}
		}
		if err := enc.Encode(allows); err != nil {
			fmt.Fprintf(os.Stderr, "icnvet: encode: %v\n", err)
			os.Exit(2)
		}
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	used := 0
	for _, a := range res.Allows {
		state := "STALE"
		if a.Used {
			state = "used"
			used++
		}
		fmt.Fprintf(w, "%s:%d\t%s\t%s\t%s\n", a.Pos.Filename, a.Pos.Line, a.Analyzer, state, a.Reason)
	}
	w.Flush()
	fmt.Fprintf(os.Stderr, "icnvet: %d suppression(s), %d in use\n", len(res.Allows), used)
}
