// Command icnvet is the module's domain linter: it loads every package and
// enforces the pipeline's determinism, concurrency and error-handling
// contracts with the internal/lint analyzer suite.
//
// Usage:
//
//	icnvet [-C dir] [-json] [-analyzers poolgo,errwrap] [-list]
//
// Exit status: 0 when the module is clean, 1 when findings were reported,
// 2 when the module could not be loaded. Individual findings are
// suppressed in source with "//lint:allow <analyzer> <reason>".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "module root to analyze (directory containing go.mod)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	names := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers
	if *names != "" {
		var err error
		analyzers, err = lint.ByName(*names)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icnvet: %v\n", err)
			os.Exit(2)
		}
	}

	findings, err := lint.Run(*dir, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "icnvet: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "icnvet: encode: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "icnvet: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}
