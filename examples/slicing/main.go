// Slicing: the Section 7 roadmap of the paper, operationalized. The paper
// argues that "ICN resource orchestration should not target overall
// capacity, as in outdoor environments, but must take into account the
// most important application usage per indoor environment", proposing "a
// distinct network slicing dimension for indoor network resource planning".
//
// This example runs the pipeline, builds the per-cluster demand profiles,
// and derives a slice plan per cluster: the slice type, the services worth
// caching at the edge, the daily peak provisioning window, and the weekend
// capacity scaling.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	icn "repro"
)

func main() {
	result, err := icn.Run(context.Background(), icn.Config{
		Seed:        11,
		Scale:       0.1,
		ForestTrees: 50,
	})
	if err != nil {
		log.Fatal(err)
	}
	profiles := icn.BuildProfiles(result, icn.ProfileOptions{TopServices: 8})
	plans := icn.PlanSlices(profiles)

	fmt.Println("environment-aware slice plan (one slice per demand cluster)")
	fmt.Println(strings.Repeat("-", 72))
	for i, plan := range plans {
		p := profiles[i]
		fmt.Printf("cluster %d → slice %q\n", plan.Cluster, plan.SliceName)
		fmt.Printf("  serves       : %s (%.0f%% of cluster), %d antennas total\n",
			p.DominantEnv().Env, p.DominantEnv().Share*100, p.Size)
		fmt.Printf("  peak window  : %02d:00-%02d:00\n", plan.PeakWindow[0], plan.PeakWindow[1])
		fmt.Printf("  weekend scale: %.0f%% of weekday capacity\n", plan.WeekendScaling*100)
		if plan.EventDriven {
			fmt.Println("  provisioning : burst-on-event (venue idle between events)")
		} else {
			fmt.Println("  provisioning : static diurnal")
		}
		if len(plan.CacheServices) > 0 {
			fmt.Printf("  edge caching : %s\n", strings.Join(plan.CacheServices, ", "))
		}
		fmt.Println()
	}

	// Sanity summary: commuter slices must exist, and the enterprise
	// slice must be weekend-scaled down.
	var commuter, enterprise int
	for _, plan := range plans {
		switch plan.SliceName {
		case "commuter-transit":
			commuter++
		case "enterprise":
			enterprise++
			fmt.Printf("enterprise slice weekend scaling: %.2f (expected « 1)\n", plan.WeekendScaling)
		}
	}
	fmt.Printf("slice mix: %d commuter, %d enterprise, %d total\n", commuter, enterprise, len(plans))
}
