// Sharding: run the nationwide serving tier on a small deployment — train
// a model, put a consistent-hash ring of ingest shards and two serve
// replicas behind one router, push probe batches through it, kill a shard
// mid-flight, refresh, and show that every acked record survived and both
// replicas serve the same refreshed revision.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"

	icn "repro"
	"repro/internal/probe"
)

func main() {
	ctx := context.Background()

	// Train the offline model the replicas will serve.
	result, err := icn.Run(ctx, icn.Config{Seed: 1, Scale: 0.05, ForestTrees: 15})
	if err != nil {
		log.Fatal(err)
	}
	snap, err := icn.NewModelSnapshot(result)
	if err != nil {
		log.Fatal(err)
	}

	// Three ingest shards on a seeded ring, two replicas. Passing the
	// result wires up the refresh controller: merged cross-shard totals in,
	// fan-out of each retrained snapshot to every replica out.
	router, err := icn.NewRouter(snap, result, icn.ShardConfig{
		Shards: 3, Replicas: 2, RingSeed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := router.Start(); err != nil {
		log.Fatal(err)
	}
	defer router.Shutdown(ctx)

	fmt.Printf("router on %s, ring digest %016x\n", router.Addr(), router.Ring().Digest())

	// Push probe batches through the router; each batch is partitioned by
	// antenna across the shards and acked all-or-nothing.
	indoor := result.Dataset.Traffic.Rows()
	for b := 0; b < 8; b++ {
		var buf bytes.Buffer
		w := probe.NewWriter(&buf)
		for i := 0; i < 200; i++ {
			rec := probe.Record{
				Hour: uint32(i % 24), AntennaID: uint32((b*200 + i) % indoor),
				Protocol: probe.TCP, ServerPort: 443,
				ServerName: probe.DomainOf(i % 7),
				DownBytes:  8 << 20, UpBytes: 1 << 18,
			}
			if err := w.Write(rec); err != nil {
				log.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		resp, err := http.Post(router.URL()+"/v1/ingest", "application/octet-stream", &buf)
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
	}

	// Kill one shard mid-life: its queue drains every acked batch into its
	// sink before the kill returns, and the ring reroutes its antennas.
	if err := router.KillShard(1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("killed shard 1: ring now %d/%d alive\n", router.Ring().Alive(), router.Ring().Shards())

	// One refresh cycle: fold the merged cross-shard totals, retrain, swap
	// on the primary, fan out to the other replica.
	out, err := router.RefreshOnce(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refresh: swapped=%v revision=%016x\n", out.Swapped, out.Revision)

	// Every acked record is folded; both replicas serve the same revision.
	var stats icn.RouterStats
	resp, err := http.Get(router.URL() + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("acked %d records, folded %d, pending %d\n",
		stats.AckedRecords, stats.FoldedRecords, stats.PendingRecords)
	for i, rep := range stats.Replicas {
		fmt.Printf("replica %d (%s): alive=%v revision=%016x\n", i, rep.Addr, rep.Alive, rep.Revision)
	}
}
