// Outdoorcompare: the Section 5.3 experiment as a standalone program. For
// every indoor antenna it finds the outdoor macro cells within a 1 km
// radius (the paper's neighbourhood), computes their RCA against the
// *indoor* reference (Eq. 5), classifies them with the surrogate forest,
// and contrasts the indoor and outdoor cluster distributions — showing
// that the demand diversity intrinsic to indoor deployments is absent
// just outside the buildings.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	icn "repro"
	"repro/internal/geo"
)

func main() {
	result, err := icn.Run(context.Background(), icn.Config{
		Seed:         5,
		Scale:        0.1,
		OutdoorCount: 1500,
		ForestTrees:  50,
	})
	if err != nil {
		log.Fatal(err)
	}
	ds := result.Dataset

	// 1 km neighbourhoods: how many outdoor macro cells sit within reach
	// of each indoor antenna?
	outdoorIdx := geo.NewIndex(ds.OutdoorLocations(), 1000)
	withNeighbour, totalNeighbours := 0, 0
	for _, a := range ds.Indoor {
		n := len(outdoorIdx.Within(a.Location, 1000))
		if n > 0 {
			withNeighbour++
		}
		totalNeighbours += n
	}
	fmt.Printf("indoor antennas with ≥1 outdoor neighbour within 1 km: %d/%d (mean %.1f neighbours)\n",
		withNeighbour, len(ds.Indoor), float64(totalNeighbours)/float64(len(ds.Indoor)))

	// Cluster distributions, indoor vs outdoor.
	indoorShare := make([]float64, result.K)
	for _, l := range result.Labels {
		indoorShare[l]++
	}
	for i := range indoorShare {
		indoorShare[i] /= float64(len(result.Labels))
	}

	fmt.Println("\ncluster     indoor   outdoor")
	for c := 0; c < result.K; c++ {
		fmt.Printf("cluster %d   %5.1f%%   %5.1f%%\n",
			c, indoorShare[c]*100, result.OutdoorShare[c]*100)
	}

	// Diversity as normalized Shannon entropy of the two distributions.
	fmt.Printf("\ndemand diversity (normalized entropy): indoor %.2f, outdoor %.2f\n",
		entropy(indoorShare), entropy(result.OutdoorShare))
	fmt.Printf("outdoor antennas in the general-use cluster 1: %.0f%% (paper: ~70%%)\n",
		result.OutdoorShare[1]*100)
}

// entropy returns the Shannon entropy of the distribution normalized by
// its maximum (log k), in [0, 1].
func entropy(p []float64) float64 {
	nonZero := 0
	for _, v := range p {
		if v > 0 {
			nonZero++
		}
	}
	if nonZero <= 1 {
		return 0
	}
	var h float64
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h / math.Log(float64(len(p)))
}
