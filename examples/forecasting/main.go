// Forecasting: the proactive-management roadmap of Sections 6-7. The paper
// shows each cluster has a distinctive temporal demand pattern and argues
// this "paves the way for the proactive management of ICN traffic by
// mobile network operators". This example fits a Holt-Winters model with
// hour-of-week seasonality to each cluster's median hourly demand, holds
// out the final three days, and compares against the seasonal-naive
// baseline — per cluster, because a single network-wide forecast would mix
// commute peaks with office hours and event bursts.
package main

import (
	"context"
	"fmt"
	"log"

	icn "repro"
	"repro/internal/envmodel"
	"repro/internal/forecast"
	"repro/internal/rng"
)

func main() {
	result, err := icn.Run(context.Background(), icn.Config{
		Seed:        21,
		Scale:       0.1,
		ForestTrees: 40,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The synthetic generator's weekly envelope is deterministic, so we
	// overlay the multiplicative hour-level jitter a production network
	// exhibits (~18% lognormal); without it, repeating last week would be
	// a perfect forecast and the comparison would be vacuous.
	noise := rng.New(99)
	jitter := func(series []float64) []float64 {
		out := make([]float64, len(series))
		for i, v := range series {
			out[i] = v * noise.LogNormal(0, 0.18)
		}
		return out
	}

	const holdout = 72 // three days
	fmt.Println("per-cluster demand forecasting (Holt-Winters, hour-of-week season)")
	fmt.Println("cluster  group   SMAPE(HW)  SMAPE(naive)  peak-hour-hit")
	var hwBetter int
	for c := 0; c < result.K; c++ {
		series := jitter(result.ClusterHourlySeries(c, 30))
		// Traffic volumes are multiplicative: fit in log space so the
		// model smooths relative (not absolute) variation.
		hw, err := forecast.BacktestLog(series, holdout, forecast.Config{Alpha: 0.15, Beta: 0.02, Gamma: 0.1})
		if err != nil {
			fmt.Printf("cluster %d: %v\n", c, err)
			continue
		}
		naive, err := forecast.BacktestNaive(series, holdout, forecast.SeasonLength)
		if err != nil {
			fmt.Printf("cluster %d: %v\n", c, err)
			continue
		}
		marker := ""
		if hw.SMAPE <= naive.SMAPE {
			hwBetter++
			marker = "  <- HW wins"
		}
		fmt.Printf("   %d     %-7s   %6.3f      %6.3f       %-5v%s\n",
			c, envmodel.GroupOf(c), hw.SMAPE, naive.SMAPE, hw.PeakHourHit, marker)
	}
	fmt.Printf("\nHolt-Winters beats the seasonal-naive baseline on %d/%d clusters\n", hwBetter, result.K)
	fmt.Println("note: the green (event-venue) clusters resist seasonal forecasting —")
	fmt.Println("their traffic is sporadic and event-driven (Section 6), so proactive")
	fmt.Println("management there needs the event calendar (see examples/eventdetection),")
	fmt.Println("not a seasonal model.")

	// Operational view: next-morning capacity for the commuter cluster.
	series := result.ClusterHourlySeries(0, 30)
	m, err := forecast.Fit(series, forecast.Config{})
	if err != nil {
		panic(err)
	}
	next := m.Forecast(24)
	fmt.Println("\nnext-day hourly forecast for the Paris commuter cluster (MB, median antenna):")
	for h, v := range next {
		bar := int(v / maxOf(next) * 40)
		fmt.Printf("  %02d:00 %8.1f %s\n", h, v, repeat('#', bar))
	}
}

func maxOf(xs []float64) float64 {
	m := 1e-9
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func repeat(c byte, n int) string {
	if n < 0 {
		n = 0
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
