// Eventdetection: the Section 6 temporal analysis as an operational tool.
// The paper observes that stadium and expo clusters show "sporadic,
// non-canonical bursts of data usage" tied to events (an NBA game at Accor
// Arena, the Sirha fair at Eurexpo Lyon). This example scans the hourly
// traffic of event-driven venues, detects bursts with a robust
// median/MAD detector, and checks them against the generator's hidden
// event calendar — the kind of monitoring an MNO would run for proactive
// capacity management.
package main

import (
	"fmt"
	"sort"

	icn "repro"
	"repro/internal/envmodel"
)

func main() {
	ds := icn.GenerateDataset(icn.DatasetConfig{Seed: 9, Scale: 0.15, OutdoorCount: 10})

	var truePositives, falseNegatives, falsePositives, venues int
	for _, a := range ds.Indoor {
		if a.Env != envmodel.Stadium && a.Env != envmodel.Expo {
			continue
		}
		if len(a.Events()) == 0 {
			continue
		}
		venues++
		series := ds.HourlyTotals(a)
		detected := detectBurstDays(series, 6.0)

		actual := map[int]bool{}
		for _, ev := range a.Events() {
			for d := ev.FirstDay; d <= ev.LastDay; d++ {
				actual[d] = true
			}
		}
		for d := range actual {
			if detected[d] {
				truePositives++
			} else {
				falseNegatives++
			}
		}
		for d := range detected {
			if !actual[d] {
				falsePositives++
			}
		}
		if venues == 1 {
			fmt.Printf("example venue %s (%s):\n", a.Name, a.Env)
			var days []int
			for d := range detected {
				days = append(days, d)
			}
			sort.Ints(days)
			for _, d := range days {
				marker := "UNEXPECTED"
				if actual[d] {
					marker = "matches scheduled event"
				}
				fmt.Printf("  burst on %s — %s\n", ds.Cal.DateString(d), marker)
			}
		}
	}

	precision := float64(truePositives) / float64(truePositives+falsePositives)
	recall := float64(truePositives) / float64(truePositives+falseNegatives)
	fmt.Printf("\nscanned %d event venues\n", venues)
	fmt.Printf("event-day detection: precision %.2f, recall %.2f (%d TP / %d FP / %d FN)\n",
		precision, recall, truePositives, falsePositives, falseNegatives)
}

// detectBurstDays flags days whose peak hourly traffic exceeds the venue's
// median day-peak by more than threshold × MAD.
func detectBurstDays(series []float64, threshold float64) map[int]bool {
	days := len(series) / 24
	peaks := make([]float64, days)
	for d := 0; d < days; d++ {
		for h := 0; h < 24; h++ {
			if v := series[d*24+h]; v > peaks[d] {
				peaks[d] = v
			}
		}
	}
	med := median(peaks)
	devs := make([]float64, days)
	for d, p := range peaks {
		devs[d] = abs(p - med)
	}
	mad := median(devs)
	if mad == 0 {
		mad = med * 0.1
	}
	out := map[int]bool{}
	for d, p := range peaks {
		if p > med+threshold*mad {
			out[d] = true
		}
	}
	return out
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
