// Quickstart: run the full pipeline of the paper on a small synthetic
// deployment and print what it discovers — the clusters, their purity
// against the generator's hidden ground truth, the environment
// association, and one profile per cluster.
package main

import (
	"context"
	"fmt"
	"log"

	icn "repro"
)

func main() {
	// A 10% deployment keeps the run to a couple of seconds. Scale: 1
	// reproduces the paper's full population (4,762 indoor antennas).
	result, err := icn.Run(context.Background(), icn.Config{
		Seed:        1,
		Scale:       0.1,
		ForestTrees: 50,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("indoor antennas: %d across %d sites\n",
		len(result.Dataset.Indoor), result.Dataset.Sites)
	fmt.Printf("clusters (k=%d): sizes %v\n", result.K, result.ClusterSizes())
	fmt.Printf("purity vs hidden archetypes: %.3f (ARI %.3f)\n",
		result.Purity(), result.AdjustedRandIndex())
	fmt.Printf("surrogate forest accuracy: %.3f\n", result.SurrogateAccuracy)
	fmt.Printf("cluster/environment association (Cramér's V): %.3f\n",
		result.Contingency.CramersV())
	fmt.Printf("outdoor antennas in the general-use cluster: %.0f%%\n",
		result.OutdoorShare[1]*100)

	fmt.Println("\nper-cluster profiles:")
	for _, p := range icn.BuildProfiles(result, icn.ProfileOptions{TopServices: 5}) {
		fmt.Println("  " + p.String())
	}
}
