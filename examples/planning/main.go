// Planning: the capacity-planning surface on icnserve. Train a model
// (every pipeline run now fits per-cluster busy-hour forecasters alongside
// the forest), stand up the server, query /v1/forecast for each cluster's
// predicted busy hour, then score two what-if scenarios through /v1/plan:
// densifying the heaviest cluster, and shifting a venue cluster's event
// calendar. The point of the exercise is the paper's Sections 6-7 argument
// made operational: demand-cluster structure plus hour-of-week seasonality
// is enough to answer "where do the new antennas go" before deploying them.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"

	icn "repro"
)

func post[T any](url string, body any) (T, error) {
	var out T
	data, err := json.Marshal(body)
	if err != nil {
		return out, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

func main() {
	ctx := context.Background()

	result, err := icn.Run(ctx, icn.Config{Seed: 5, Scale: 0.05, ForestTrees: 15})
	if err != nil {
		log.Fatal(err)
	}
	snap, err := icn.NewModelSnapshot(result)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := icn.NewServer(snap, icn.ServeConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer srv.Shutdown(ctx)
	base := "http://" + srv.Addr().String()

	// One busy-hour forecast per cluster. The served values are exactly the
	// snapshot's fitted models — re-fitting the same revision offline
	// reproduces them bit-for-bit, which is what the bench parity leg checks.
	fmt.Printf("model revision %016x, %d clusters\n\n", snap.Revision, result.K)
	fmt.Println("cluster  members  busy-hour  peak-MB")
	heaviest, heaviestPeak := 0, 0.0
	for c := 0; c < result.K; c++ {
		cc := c
		fc, err := post[icn.ForecastResponse](base+"/v1/forecast", icn.ForecastRequest{Cluster: &cc, Horizon: 168})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7d  %7d  %4dh(%s)  %7.0f\n",
			fc.Cluster, fc.Members, fc.BusyHour%24, [...]string{"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"}[fc.BusyHour/24], fc.PeakMB)
		if load := fc.PeakMB * float64(fc.Members); load > heaviestPeak {
			heaviest, heaviestPeak = c, load
		}
	}

	// Scenario 1: densify the heaviest cluster by 10% and pull two antennas
	// over from the lightest-loaded one.
	grow := max(1, snap.Forecasts.Cluster(heaviest).Members/10)
	plan, err := post[icn.PlanResponse](base+"/v1/plan", icn.PlanRequest{
		Horizon: 168,
		Actions: []icn.PlanAction{
			{Op: icn.OpAddAntennas, Cluster: heaviest, Count: grow},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscenario 1: +%d antennas in cluster %d\n", grow, heaviest)
	for _, cp := range plan.Plan.Clusters {
		if cp.Cluster == heaviest {
			fmt.Printf("  cluster %d: %d -> %d antennas, busy-hour load %.0f -> %.0f MB (%+.0f)\n",
				cp.Cluster, cp.AntennasBefore, cp.AntennasAfter, cp.BaselineMB, cp.PlannedMB, cp.DeltaMB)
		}
	}
	fmt.Printf("  network busy-hour total %.0f -> %.0f MB\n",
		plan.Plan.TotalBaselineMB, plan.Plan.TotalPlannedMB)

	// Scenario 2: shift cluster 0's event calendar six hours later (a venue
	// rescheduling its programming) and see the busy hour move with it.
	shift, err := post[icn.PlanResponse](base+"/v1/plan", icn.PlanRequest{
		Horizon: 168,
		Actions: []icn.PlanAction{{Op: icn.OpShiftEvents, Cluster: 0, Hours: 6}},
	})
	if err != nil {
		log.Fatal(err)
	}
	before := plan.Plan.Clusters[0].BusyHour
	after := shift.Plan.Clusters[0].BusyHour
	fmt.Printf("\nscenario 2: shift cluster 0 events +6h: busy hour %dh -> %dh\n", before%168, after%168)
}
