package icn

// This file is the benchmark harness of deliverable (d): one testing.B
// benchmark per table and figure of the paper's evaluation (T1, F1..F11)
// plus the ablation benches called out in DESIGN.md (A1..A3). Each bench
// regenerates its artifact from a shared pipeline run and asserts the
// paper-shape checks hold. Benches run at a reduced scale so the suite
// completes quickly; cmd/icnbench reproduces the same artifacts at full
// paper scale.

import (
	"context"
	"sync"
	"testing"
)

var (
	benchOnce  sync.Once
	benchSuite *Suite
)

func sharedSuite() *Suite {
	benchOnce.Do(func() {
		s, err := NewSuite(Config{
			Seed:         7,
			Scale:        0.12,
			OutdoorCount: 600,
			ForestTrees:  40,
		})
		if err != nil {
			panic(err)
		}
		s.TemporalAntennasPerCluster = 20
		benchSuite = s
	})
	return benchSuite
}

func benchArtifact(b *testing.B, gen func(*Suite) Artifact) {
	s := sharedSuite()
	b.ResetTimer()
	var art Artifact
	for i := 0; i < b.N; i++ {
		art = gen(s)
	}
	b.StopTimer()
	for _, c := range art.Checks {
		if !c.Pass {
			b.Fatalf("%s check %q failed: %s", art.ID, c.Name, c.Detail)
		}
	}
}

func BenchmarkTable1EnvironmentInventory(b *testing.B) {
	benchArtifact(b, func(s *Suite) Artifact { return s.Table1() })
}

func BenchmarkFigure1Transforms(b *testing.B) {
	benchArtifact(b, func(s *Suite) Artifact { return s.Figure1() })
}

func BenchmarkFigure2ClusterSelection(b *testing.B) {
	benchArtifact(b, func(s *Suite) Artifact { return s.Figure2() })
}

func BenchmarkFigure3Dendrogram(b *testing.B) {
	benchArtifact(b, func(s *Suite) Artifact { return s.Figure3() })
}

func BenchmarkFigure4RSCAHeatmap(b *testing.B) {
	benchArtifact(b, func(s *Suite) Artifact { return s.Figure4() })
}

func BenchmarkFigure5SHAP(b *testing.B) {
	benchArtifact(b, func(s *Suite) Artifact { return s.Figure5() })
}

func BenchmarkFigure6Sankey(b *testing.B) {
	benchArtifact(b, func(s *Suite) Artifact { return s.Figure6() })
}

func BenchmarkFigure7ClusterComposition(b *testing.B) {
	benchArtifact(b, func(s *Suite) Artifact { return s.Figure7() })
}

func BenchmarkFigure8EnvDistribution(b *testing.B) {
	benchArtifact(b, func(s *Suite) Artifact { return s.Figure8() })
}

func BenchmarkFigure9OutdoorClassification(b *testing.B) {
	benchArtifact(b, func(s *Suite) Artifact { return s.Figure9() })
}

func BenchmarkFigure10ClusterTemporal(b *testing.B) {
	benchArtifact(b, func(s *Suite) Artifact { return s.Figure10() })
}

func BenchmarkFigure11ServiceTemporal(b *testing.B) {
	benchArtifact(b, func(s *Suite) Artifact { return s.Figure11() })
}

func BenchmarkAblationFeatureTransform(b *testing.B) {
	benchArtifact(b, func(s *Suite) Artifact { return s.AblationFeatureTransform() })
}

func BenchmarkAblationWardVsKMeans(b *testing.B) {
	benchArtifact(b, func(s *Suite) Artifact { return s.AblationWardVsKMeans() })
}

func BenchmarkAblationTreeVsKernelSHAP(b *testing.B) {
	benchArtifact(b, func(s *Suite) Artifact { return s.AblationTreeVsKernelSHAP() })
}

func BenchmarkAblationLinkages(b *testing.B) {
	benchArtifact(b, func(s *Suite) Artifact { return s.AblationLinkages() })
}

func BenchmarkAblationStability(b *testing.B) {
	benchArtifact(b, func(s *Suite) Artifact { return s.AblationStability() })
}

// BenchmarkFullPipeline measures an end-to-end run (generation through
// outdoor classification) at bench scale. The staged engine also warms
// the per-cluster temporal-profile cache inside Run — work the figure
// generators previously paid on first use — so this benchmark now
// covers temporal profiling too and is not comparable to pre-engine
// numbers; Figure10/Figure11 benches correspondingly hit a warm cache.
func BenchmarkFullPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), Config{Seed: 7, Scale: 0.05, OutdoorCount: 200, ForestTrees: 20}); err != nil {
			b.Fatal(err)
		}
	}
}
