package icn

import (
	"context"
	"strings"
	"testing"
)

// The facade tests exercise the public API end to end at a small scale;
// detailed behavioural tests live with the internal packages.

func TestRunEndToEnd(t *testing.T) {
	res, err := Run(context.Background(), Config{Seed: 3, Scale: 0.05, OutdoorCount: 150, ForestTrees: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 9 {
		t.Fatalf("K = %d", res.K)
	}
	if len(res.Labels) != len(res.Dataset.Indoor) {
		t.Fatal("label count mismatch")
	}
	if res.Purity() < 0.7 {
		t.Fatalf("purity %.2f at small scale", res.Purity())
	}
	if res.SurrogateAccuracy < 0.9 {
		t.Fatalf("surrogate accuracy %.2f", res.SurrogateAccuracy)
	}
}

func TestRunOnSharedDataset(t *testing.T) {
	ds := GenerateDataset(DatasetConfig{Seed: 5, Scale: 0.05, OutdoorCount: 100})
	a, err := Run(context.Background(), Config{Seed: 5, Scale: 0.05, ForestTrees: 15}, WithDataset(ds))
	if err != nil {
		t.Fatal(err)
	}
	// Re-running on the same shared dataset must be deterministic.
	b, err := Run(context.Background(), Config{Seed: 5, Scale: 0.05, ForestTrees: 15}, WithDataset(ds))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("pipeline on same dataset should be deterministic")
		}
	}
}

func TestRunWithPool(t *testing.T) {
	pool := NewPool(2)
	res, err := Run(context.Background(), Config{Seed: 5, Scale: 0.05, OutdoorCount: 100, ForestTrees: 15},
		WithPool(pool))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(context.Background(), Config{Seed: 5, Scale: 0.05, OutdoorCount: 100, ForestTrees: 15})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Labels {
		if res.Labels[i] != ref.Labels[i] {
			t.Fatal("custom pool must not change results")
		}
	}
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Config{Seed: 3, Scale: 0.05, ForestTrees: 10}); err == nil {
		t.Fatal("cancelled run should fail")
	}
}

func TestSuiteArtifacts(t *testing.T) {
	s := sharedSuite()
	arts := s.All()
	if len(arts) != 17 {
		t.Fatalf("%d artifacts", len(arts))
	}
	for _, a := range arts {
		if strings.TrimSpace(a.Text) == "" {
			t.Fatalf("%s has empty text", a.ID)
		}
		for _, c := range a.Checks {
			if !c.Pass {
				t.Errorf("%s check %q failed: %s", a.ID, c.Name, c.Detail)
			}
		}
	}
}
