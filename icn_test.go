package icn

import (
	"strings"
	"testing"
)

// The facade tests exercise the public API end to end at a small scale;
// detailed behavioural tests live with the internal packages.

func TestRunEndToEnd(t *testing.T) {
	res, err := Run(Config{Seed: 3, Scale: 0.05, OutdoorCount: 150, ForestTrees: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 9 {
		t.Fatalf("K = %d", res.K)
	}
	if len(res.Labels) != len(res.Dataset.Indoor) {
		t.Fatal("label count mismatch")
	}
	if res.Purity() < 0.7 {
		t.Fatalf("purity %.2f at small scale", res.Purity())
	}
	if res.SurrogateAccuracy < 0.9 {
		t.Fatalf("surrogate accuracy %.2f", res.SurrogateAccuracy)
	}
}

func TestRunOnSharedDataset(t *testing.T) {
	ds := GenerateDataset(DatasetConfig{Seed: 5, Scale: 0.05, OutdoorCount: 100})
	a, err := RunOnDataset(ds, Config{Seed: 5, Scale: 0.05, ForestTrees: 15})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOnDataset(ds, Config{Seed: 5, Scale: 0.05, ForestTrees: 15})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("pipeline on same dataset should be deterministic")
		}
	}
}

func TestSuiteArtifacts(t *testing.T) {
	s := sharedSuite()
	arts := s.All()
	if len(arts) != 17 {
		t.Fatalf("%d artifacts", len(arts))
	}
	for _, a := range arts {
		if strings.TrimSpace(a.Text) == "" {
			t.Fatalf("%s has empty text", a.ID)
		}
		for _, c := range a.Checks {
			if !c.Pass {
				t.Errorf("%s check %q failed: %s", a.ID, c.Name, c.Detail)
			}
		}
	}
}
