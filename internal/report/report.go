// Package report renders the reproduction's tables and figures as plain
// text and CSV: aligned tables (Table 1), ASCII heatmaps (Figs. 4, 10,
// 11), histogram sparklines (Fig. 1), dendrogram outlines (Fig. 3), and
// Sankey-style flow listings (Fig. 6).
package report

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		var rule []string
		for i := 0; i < cols; i++ {
			rule = append(rule, strings.Repeat("-", widths[i]))
		}
		writeRow(rule)
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with quoted cells.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// shades maps intensity in [0,1] to a glyph, dark-to-light semantics: the
// heavier the glyph the larger the value.
var shades = []byte(" .:-=+*#%@")

// Shade returns the glyph for an intensity in [0,1].
func Shade(v float64) byte {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	idx := int(v * float64(len(shades)-1))
	return shades[idx]
}

// DivergingShade maps [-1,1] to glyphs with distinct under/over alphabets,
// used for RSCA heatmaps: lowercase letters for negative (under-use),
// uppercase for positive (over-use), '·' near zero.
func DivergingShade(v float64) byte {
	switch {
	case v > 0.6:
		return 'X'
	case v > 0.3:
		return 'x'
	case v > 0.1:
		return '+'
	case v >= -0.1:
		return '.'
	case v >= -0.3:
		return '-'
	case v >= -0.6:
		return 'o'
	default:
		return 'O'
	}
}

// Heatmap renders a matrix of values as ASCII art with row labels. When
// diverging is true values are expected in [-1,1] (RSCA); otherwise rows
// are normalized to their own maximum, matching the paper's "normalized
// median traffic" presentation.
func Heatmap(title string, rowLabels []string, values [][]float64, diverging bool) string {
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	labelWidth := 0
	for _, l := range rowLabels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	for r, row := range values {
		label := ""
		if r < len(rowLabels) {
			label = rowLabels[r]
		}
		fmt.Fprintf(&b, "%-*s |", labelWidth, label)
		if diverging {
			for _, v := range row {
				b.WriteByte(DivergingShade(v))
			}
		} else {
			maxV := 0.0
			for _, v := range row {
				if v > maxV {
					maxV = v
				}
			}
			for _, v := range row {
				if maxV > 0 {
					b.WriteByte(Shade(v / maxV))
				} else {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// Histogram renders bin densities as a vertical-bar sparkline with an
// axis legend.
func Histogram(title string, density []float64, lo, hi float64) string {
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	maxD := 0.0
	for _, d := range density {
		if d > maxD {
			maxD = d
		}
	}
	b.WriteByte('[')
	for _, d := range density {
		if maxD > 0 {
			b.WriteByte(Shade(d / maxD))
		} else {
			b.WriteByte(' ')
		}
	}
	b.WriteByte(']')
	fmt.Fprintf(&b, "  range [%.3g, %.3g]\n", lo, hi)
	return b.String()
}

// Flow is one cluster → environment stream of the Fig. 6 Sankey diagram.
type Flow struct {
	From  string
	To    string
	Count int
}

// Sankey renders flows as a sorted text listing with proportional bars.
func Sankey(title string, flows []Flow) string {
	sorted := make([]Flow, len(flows))
	copy(sorted, flows)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Count > sorted[j].Count })
	maxCount := 1
	for _, f := range sorted {
		if f.Count > maxCount {
			maxCount = f.Count
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for _, f := range sorted {
		if f.Count == 0 {
			continue
		}
		barLen := f.Count * 40 / maxCount
		if barLen == 0 {
			barLen = 1
		}
		fmt.Fprintf(&b, "%-22s -> %-20s %5d %s\n", f.From, f.To, f.Count, strings.Repeat("#", barLen))
	}
	return b.String()
}

// Bar renders a labeled horizontal bar chart of non-negative values.
func Bar(title string, labels []string, values []float64) string {
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	maxV := 0.0
	labelWidth := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if i < len(labels) && len(labels[i]) > labelWidth {
			labelWidth = len(labels[i])
		}
	}
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		barLen := 0
		if maxV > 0 {
			barLen = int(v / maxV * 40)
		}
		fmt.Fprintf(&b, "%-*s %8.4g %s\n", labelWidth, label, v, strings.Repeat("#", barLen))
	}
	return b.String()
}

// Dendrogram renders a compressed outline of the top merges of a linkage:
// the last `levels` merges with their heights, which is what Fig. 3's
// upper structure shows.
type DendrogramNode struct {
	Label  string
	Height float64
	Leaves int
}

// DendrogramOutline renders top merge nodes from root downwards.
func DendrogramOutline(title string, nodes []DendrogramNode) string {
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for i, n := range nodes {
		fmt.Fprintf(&b, "%s- %s (height %.3f, %d antennas)\n",
			strings.Repeat("  ", i), n.Label, n.Height, n.Leaves)
	}
	return b.String()
}
