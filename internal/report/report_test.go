package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Counts", "Env", "N")
	tb.AddRow("Metro", 1794)
	tb.AddRow("Trains", 434)
	out := tb.String()
	if !strings.Contains(out, "Counts") || !strings.Contains(out, "Metro") {
		t.Fatalf("table output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + rule + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	// Columns aligned: "Metro" and "Trains" rows start at column 0.
	if !strings.HasPrefix(lines[3], "Metro") || !strings.HasPrefix(lines[4], "Trains") {
		t.Fatalf("row alignment:\n%s", out)
	}
}

func TestTableFloatsCompact(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(0.123456789)
	if !strings.Contains(tb.String(), "0.1235") {
		t.Fatalf("float formatting: %s", tb.String())
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`with "quote"`, "with, comma")
	csv := tb.CSV()
	if !strings.Contains(csv, `"with ""quote"""`) {
		t.Fatalf("quote escaping: %s", csv)
	}
	if !strings.Contains(csv, `"with, comma"`) {
		t.Fatalf("comma quoting: %s", csv)
	}
}

func TestShadeBounds(t *testing.T) {
	if Shade(-5) != ' ' {
		t.Fatal("negative should clamp to lightest")
	}
	if Shade(5) != '@' {
		t.Fatal("large should clamp to heaviest")
	}
	if Shade(0) == Shade(1) {
		t.Fatal("extremes should differ")
	}
}

func TestDivergingShade(t *testing.T) {
	if DivergingShade(0.9) != 'X' || DivergingShade(-0.9) != 'O' {
		t.Fatal("extreme glyphs")
	}
	if DivergingShade(0) != '.' {
		t.Fatal("neutral glyph")
	}
	// Monotone ladder on the positive side.
	if DivergingShade(0.2) == DivergingShade(0.5) {
		t.Fatal("positive shades should differ")
	}
}

func TestHeatmap(t *testing.T) {
	out := Heatmap("H", []string{"r0", "r1"}, [][]float64{{0, 1, 2}, {3, 0, 0}}, false)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("heatmap lines: %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "r0") {
		t.Fatalf("row label missing:\n%s", out)
	}
	// Row-max normalization: the 2 in row 0 renders as the heaviest glyph.
	if !strings.Contains(lines[1], "@") {
		t.Fatalf("row max should be darkest:\n%s", out)
	}
}

func TestHeatmapDiverging(t *testing.T) {
	out := Heatmap("", []string{"r"}, [][]float64{{-0.9, 0, 0.9}}, true)
	if !strings.Contains(out, "O") || !strings.Contains(out, "X") {
		t.Fatalf("diverging glyphs missing: %s", out)
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram("h", []float64{0.1, 0.8, 0.1}, -1, 1)
	if !strings.Contains(out, "range [-1, 1]") {
		t.Fatalf("legend missing: %s", out)
	}
	if !strings.Contains(out, "@") {
		t.Fatalf("peak glyph missing: %s", out)
	}
}

func TestSankeySorted(t *testing.T) {
	out := Sankey("flows", []Flow{
		{"c1", "metro", 5},
		{"c0", "metro", 50},
		{"c2", "hotel", 0},
	})
	// Largest flow first; zero flows dropped.
	first := strings.Index(out, "c0")
	second := strings.Index(out, "c1")
	if first < 0 || second < 0 || first > second {
		t.Fatalf("flow ordering:\n%s", out)
	}
	if strings.Contains(out, "c2") {
		t.Fatalf("zero flow should be dropped:\n%s", out)
	}
}

func TestBar(t *testing.T) {
	out := Bar("b", []string{"x", "y"}, []float64{1, 2})
	if !strings.Contains(out, "x") || !strings.Contains(out, "####") {
		t.Fatalf("bar chart:\n%s", out)
	}
}

func TestDendrogramOutline(t *testing.T) {
	out := DendrogramOutline("d", []DendrogramNode{
		{Label: "root", Height: 10, Leaves: 100},
		{Label: "orange", Height: 5, Leaves: 40},
	})
	if !strings.Contains(out, "root") || !strings.Contains(out, "orange") {
		t.Fatalf("outline:\n%s", out)
	}
	// Indentation increases with depth.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Index(lines[2], "-") <= strings.Index(lines[1], "-") {
		t.Fatalf("indentation:\n%s", out)
	}
}
