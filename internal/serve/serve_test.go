package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/fault"
	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/probe"
	"repro/internal/rca"
	"repro/internal/synth"
)

// --- fixtures ---------------------------------------------------------------

// tinySnapshot builds a minimal servable model without running the full
// pipeline: 8 antennas × 3 services, two well-separated demand profiles.
func tinySnapshot(t testing.TB) *ModelSnapshot {
	t.Helper()
	rows := [][]float64{
		{100, 5, 5}, {90, 10, 4}, {110, 2, 8}, {95, 7, 3},
		{5, 100, 5}, {8, 95, 2}, {4, 110, 9}, {6, 90, 7},
	}
	traffic, err := mat.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := rca.NewOutdoorReference(traffic)
	if err != nil {
		t.Fatal(err)
	}
	labels := []int{0, 0, 0, 0, 1, 1, 1, 1}
	f := forest.Train(rca.RSCA(traffic), labels, 2, forest.Config{Trees: 7, Seed: 3})
	m := &ModelSnapshot{Ref: ref, Forest: f, K: 2, Services: 3}
	m.Revision = m.fingerprint()
	return m
}

func startServer(t *testing.T, snap *ModelSnapshot, cfg Config) *Server {
	t.Helper()
	s, err := New(snap, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

func baseURL(s *Server) string { return "http://" + s.Addr().String() }

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func probeStream(t testing.TB, recs []probe.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := probe.NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func ingestRecords(n int) []probe.Record {
	recs := make([]probe.Record, n)
	for i := range recs {
		recs[i] = probe.Record{
			Hour: uint32(i % 24), AntennaID: uint32(i % 4), Protocol: probe.TCP,
			ServerPort: 443, ServerName: "netflix.example",
			DownBytes: 2 << 20, UpBytes: 1 << 18,
		}
	}
	return recs
}

// --- golden parity with the offline pipeline --------------------------------

var (
	goldenOnce sync.Once
	goldenRes  *analysis.Result
	goldenErr  error
)

func goldenResult(t *testing.T) *analysis.Result {
	t.Helper()
	goldenOnce.Do(func() {
		ds := synth.Generate(synth.Config{Seed: 11, Scale: 0.05, OutdoorCount: 120})
		goldenRes, goldenErr = analysis.RunOnDataset(ds, analysis.Config{
			Seed: 11, Scale: 0.05, ForestTrees: 15,
		})
	})
	if goldenErr != nil {
		t.Fatal(goldenErr)
	}
	return goldenRes
}

// TestClassifyMatchesOfflinePredictAll is the golden serving test: the
// HTTP classify path over the outdoor population must reproduce, byte for
// byte, the offline Section 5.3 classification (forest.PredictAll over the
// Eq. 5 features — i.e. Result.OutdoorLabels).
func TestClassifyMatchesOfflinePredictAll(t *testing.T) {
	res := goldenResult(t)
	snap, err := NewModelSnapshot(res)
	if err != nil {
		t.Fatal(err)
	}
	s := startServer(t, snap, Config{})

	outdoor := res.Dataset.OutdoorTraffic
	var req ClassifyRequest
	for i := 0; i < outdoor.Rows(); i++ {
		req.Antennas = append(req.Antennas, AntennaVector{
			ID: uint32(i), Traffic: outdoor.Row(i),
		})
	}
	resp, body := postJSON(t, baseURL(s)+"/v1/classify", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify: %d %s", resp.StatusCode, body)
	}
	var cr ClassifyResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.ModelRevision != snap.Revision {
		t.Fatalf("model revision %d, want %d", cr.ModelRevision, snap.Revision)
	}
	if len(cr.Results) != len(res.OutdoorLabels) {
		t.Fatalf("%d results for %d outdoor antennas", len(cr.Results), len(res.OutdoorLabels))
	}
	for i, v := range cr.Results {
		if v.Cluster != res.OutdoorLabels[i] {
			t.Fatalf("antenna %d: served cluster %d, offline PredictAll %d",
				i, v.Cluster, res.OutdoorLabels[i])
		}
	}
}

// --- ingest + shutdown drain -------------------------------------------------

// TestShutdownDrainsAckedBatches is the zero-acked-record-loss contract:
// every batch acked with 202 must be present in the aggregate after a
// graceful Shutdown, even when the queue is still deep at shutdown time.
func TestShutdownDrainsAckedBatches(t *testing.T) {
	// Slow the drain (via the fault layer) so Shutdown races real queued work.
	slowFolds := fault.New(1, map[fault.Site]fault.Rule{
		fault.Fold: {DelayProb: 1, Delay: 2 * time.Millisecond},
	})
	s, err := New(tinySnapshot(t), nil, Config{QueueDepth: 256, IngestWorkers: 1, Faults: slowFolds})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}

	const batches, perBatch = 40, 25
	stream := probeStream(t, ingestRecords(perBatch))
	acked := 0
	for b := 0; b < batches; b++ {
		resp, err := http.Post(baseURL(s)+"/v1/ingest", "application/octet-stream", bytes.NewReader(stream))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			acked++
		case http.StatusTooManyRequests:
			// Backpressure is allowed; only acked batches must survive.
		default:
			t.Fatalf("ingest: unexpected status %d", resp.StatusCode)
		}
	}
	if acked == 0 {
		t.Fatal("no batch was acked")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got, want := s.Sink().Snapshot().Records, acked*perBatch; got != want {
		t.Fatalf("aggregate holds %d records after drain, want %d (acked batches × %d)", got, want, perBatch)
	}
}

// TestIngestBackpressure fills the bounded queue and expects explicit 429
// with a Retry-After hint instead of blocking or dropping silently.
func TestIngestBackpressure(t *testing.T) {
	slowFolds := fault.New(1, map[fault.Site]fault.Rule{
		fault.Fold: {DelayProb: 1, Delay: 200 * time.Millisecond},
	})
	s, err := New(tinySnapshot(t), nil, Config{QueueDepth: 1, IngestWorkers: 1, Faults: slowFolds})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})

	stream := probeStream(t, ingestRecords(5))
	saw429 := false
	var retryAfter string
	for i := 0; i < 10 && !saw429; i++ {
		resp, err := http.Post(baseURL(s)+"/v1/ingest", "application/octet-stream", bytes.NewReader(stream))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			saw429 = true
			retryAfter = resp.Header.Get("Retry-After")
		}
	}
	if !saw429 {
		t.Fatal("full queue never answered 429")
	}
	if retryAfter == "" {
		t.Fatal("429 without Retry-After hint")
	}
}

// TestIngestMalformedStream checks framing errors are isolated: a 400, a
// malformed counter bump, and nothing folded into the aggregate.
func TestIngestMalformedStream(t *testing.T) {
	s := startServer(t, tinySnapshot(t), Config{})
	resp, err := http.Post(baseURL(s)+"/v1/ingest", "application/octet-stream",
		bytes.NewReader([]byte("not a probe stream at all")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed ingest: status %d, want 400", resp.StatusCode)
	}
	st := s.Stats()
	if st.IngestMalformed != 1 {
		t.Fatalf("malformed counter = %d", st.IngestMalformed)
	}
	if st.Aggregate.Records != 0 {
		t.Fatalf("%d records aggregated from a malformed stream", st.Aggregate.Records)
	}
}

// --- classify cache, limits, deadline ----------------------------------------

func TestClassifyRevisionCache(t *testing.T) {
	s := startServer(t, tinySnapshot(t), Config{})
	vec := AntennaVector{ID: 42, Revision: 7, Traffic: []float64{100, 5, 5}}

	_, body := postJSON(t, baseURL(s)+"/v1/classify", ClassifyRequest{Antennas: []AntennaVector{vec}})
	var first ClassifyResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.CacheHits != 0 || first.Results[0].Cached {
		t.Fatalf("first call should miss: %+v", first)
	}

	_, body = postJSON(t, baseURL(s)+"/v1/classify", ClassifyRequest{Antennas: []AntennaVector{vec}})
	var second ClassifyResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if second.CacheHits != 1 || !second.Results[0].Cached {
		t.Fatalf("second call should hit the LRU: %+v", second)
	}
	if second.Results[0].Cluster != first.Results[0].Cluster {
		t.Fatal("cached cluster differs from computed cluster")
	}

	// A bumped revision is a different key: miss again.
	vec.Revision = 8
	_, body = postJSON(t, baseURL(s)+"/v1/classify", ClassifyRequest{Antennas: []AntennaVector{vec}})
	var third ClassifyResponse
	if err := json.Unmarshal(body, &third); err != nil {
		t.Fatal(err)
	}
	if third.CacheHits != 0 {
		t.Fatal("new revision must not hit the old entry")
	}
}

func TestClassifyLRUEviction(t *testing.T) {
	snap := tinySnapshot(t)
	s, err := New(snap, nil, Config{CacheSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint32(1); id <= 3; id++ {
		s.cache.put(cacheKey{id, 1, snap.Revision}, int(id))
	}
	if s.cache.len() != 2 {
		t.Fatalf("cache holds %d entries, want capacity 2", s.cache.len())
	}
	if _, ok := s.cache.get(cacheKey{1, 1, snap.Revision}); ok {
		t.Fatal("oldest entry should have been evicted")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = s.Shutdown(ctx)
}

// retrainedSnapshot is tinySnapshot after a "retrain": same shape, a
// different forest, and therefore a different revision.
func retrainedSnapshot(t testing.TB) *ModelSnapshot {
	t.Helper()
	rows := [][]float64{
		{100, 5, 5}, {90, 10, 4}, {110, 2, 8}, {95, 7, 3},
		{5, 100, 5}, {8, 95, 2}, {4, 110, 9}, {6, 90, 7},
	}
	traffic, err := mat.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := rca.NewOutdoorReference(traffic)
	if err != nil {
		t.Fatal(err)
	}
	labels := []int{0, 0, 0, 0, 1, 1, 1, 1}
	f := forest.Train(rca.RSCA(traffic), labels, 2, forest.Config{Trees: 9, Seed: 5})
	m := &ModelSnapshot{Ref: ref, Forest: f, K: 2, Services: 3}
	m.Revision = m.fingerprint()
	return m
}

// TestSwapSnapshotPurgesVerdictLRU pins the swap contract: after
// SwapSnapshot, a previously cached (antenna, revision) verdict must not
// be served — the LRU is purged, the re-classify runs under the new model,
// and the response echoes the new revision.
func TestSwapSnapshotPurgesVerdictLRU(t *testing.T) {
	snapA, snapB := tinySnapshot(t), retrainedSnapshot(t)
	if snapA.Revision == snapB.Revision {
		t.Fatal("fixture snapshots share a revision; the swap test needs distinct models")
	}
	s := startServer(t, snapA, Config{})
	vec := AntennaVector{ID: 42, Revision: 7, Traffic: []float64{100, 5, 5}}
	req := ClassifyRequest{Antennas: []AntennaVector{vec}}

	postJSON(t, baseURL(s)+"/v1/classify", req) // warm the LRU
	_, body := postJSON(t, baseURL(s)+"/v1/classify", req)
	var warm ClassifyResponse
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != 1 {
		t.Fatalf("warm-up did not cache: %+v", warm)
	}

	if err := s.SwapSnapshot(snapB); err != nil {
		t.Fatal(err)
	}
	if n := s.cache.len(); n != 0 {
		t.Fatalf("LRU holds %d entries after swap, want 0", n)
	}
	_, body = postJSON(t, baseURL(s)+"/v1/classify", req)
	var after ClassifyResponse
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatal(err)
	}
	if after.CacheHits != 0 || after.Results[0].Cached {
		t.Fatalf("swap served a stale verdict from the previous snapshot: %+v", after)
	}
	if after.ModelRevision != snapB.Revision {
		t.Fatalf("post-swap revision %d, want %d", after.ModelRevision, snapB.Revision)
	}
	if s.Snapshot().Revision != snapB.Revision {
		t.Fatal("Snapshot() still returns the old model")
	}
	if err := s.SwapSnapshot(nil); err == nil {
		t.Fatal("nil swap must be rejected")
	}
}

// TestShutdownDrainsUnderFault is the drain-under-fault contract: with the
// fault layer injecting slow folds, ingest latency, and real queue
// pressure (small queue), a graceful shutdown must still fold every
// acked batch — zero acked-record loss, bounded wall-clock.
func TestShutdownDrainsUnderFault(t *testing.T) {
	inj := fault.New(1234, map[fault.Site]fault.Rule{
		fault.Fold:   {DelayProb: 0.8, Delay: 3 * time.Millisecond},
		fault.Ingest: {DelayProb: 0.3, Delay: time.Millisecond},
	})
	s, err := New(tinySnapshot(t), nil, Config{QueueDepth: 4, IngestWorkers: 1, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}

	const batches, perBatch = 60, 20
	stream := probeStream(t, ingestRecords(perBatch))
	acked, rejected := 0, 0
	for b := 0; b < batches; b++ {
		resp, err := http.Post(baseURL(s)+"/v1/ingest", "application/octet-stream", bytes.NewReader(stream))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			acked++
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			rejected++ // degradation is allowed; loss is not
		default:
			t.Fatalf("ingest: unexpected status %d", resp.StatusCode)
		}
	}
	if acked == 0 {
		t.Fatal("no batch was acked under fault load")
	}
	if rejected == 0 {
		t.Log("fault schedule produced no backpressure this run (still asserting zero loss)")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown under fault: %v", err)
	}
	if got, want := s.Sink().Snapshot().Records, acked*perBatch; got != want {
		t.Fatalf("aggregate holds %d records after faulted drain, want %d (%d acked batches × %d)",
			got, want, acked, perBatch)
	}
}

func TestClassifyRejectsBadVectors(t *testing.T) {
	s := startServer(t, tinySnapshot(t), Config{})
	resp, body := postJSON(t, baseURL(s)+"/v1/classify", ClassifyRequest{
		Antennas: []AntennaVector{{ID: 1, Traffic: []float64{1, 2}}}, // wrong length
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-length vector: status %d (%s)", resp.StatusCode, body)
	}
	resp, _ = postJSON(t, baseURL(s)+"/v1/classify", ClassifyRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty request: status %d", resp.StatusCode)
	}
}

func TestClassifyBatchCap(t *testing.T) {
	s := startServer(t, tinySnapshot(t), Config{MaxClassifyAntennas: 2})
	var req ClassifyRequest
	for i := 0; i < 3; i++ {
		req.Antennas = append(req.Antennas, AntennaVector{ID: uint32(i), Traffic: []float64{1, 2, 3}})
	}
	resp, _ := postJSON(t, baseURL(s)+"/v1/classify", req)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-cap batch: status %d, want 413", resp.StatusCode)
	}
}

func TestClassifyDeadline(t *testing.T) {
	s := startServer(t, tinySnapshot(t), Config{RequestTimeout: time.Nanosecond})
	resp, body := postJSON(t, baseURL(s)+"/v1/classify", ClassifyRequest{
		Antennas: []AntennaVector{{ID: 1, Traffic: []float64{1, 2, 3}}},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline: status %d (%s), want 503", resp.StatusCode, body)
	}
}

// --- observability endpoints -------------------------------------------------

func TestStatsHealthzMetricsModel(t *testing.T) {
	s := startServer(t, tinySnapshot(t), Config{})

	// Generate some traffic first.
	stream := probeStream(t, ingestRecords(10))
	resp, err := http.Post(baseURL(s)+"/v1/ingest", "application/octet-stream", bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	postJSON(t, baseURL(s)+"/v1/classify", ClassifyRequest{
		Antennas: []AntennaVector{{ID: 1, Traffic: []float64{100, 5, 5}}},
	})

	get := func(path string) (int, string) {
		r, err := http.Get(baseURL(s) + path)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		return r.StatusCode, string(b)
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %s", code, body)
	}
	code, body := get("/v1/stats")
	if code != 200 {
		t.Fatalf("stats: %d", code)
	}
	var st Stats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.IngestBatches < 1 || st.ClassifyRequests < 1 {
		t.Fatalf("stats did not count activity: %+v", st)
	}
	code, body = get("/metrics")
	if code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		"icn_serve_ingest_records",
		"icn_serve_classify_latency_ms_bucket",
		"icn_serve_classify_latency_ms_count",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	code, body = get("/v1/model")
	if code != 200 || !strings.Contains(body, fmt.Sprintf("%d", s.Snapshot().Revision)) {
		t.Fatalf("model: %d %s", code, body)
	}
}

// TestIngestThenTrafficMatrix closes the loop: ingested sessions appear in
// the sink's traffic matrix exactly as the TCP collector would aggregate
// them.
func TestIngestThenTrafficMatrix(t *testing.T) {
	s := startServer(t, tinySnapshot(t), Config{})
	stream := probeStream(t, ingestRecords(24))
	resp, err := http.Post(baseURL(s)+"/v1/ingest", "application/octet-stream", bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	tm := s.Sink().TrafficMatrix(4, 73)
	var total float64
	for i := 0; i < tm.Rows(); i++ {
		for _, v := range tm.Row(i) {
			total += v
		}
	}
	want := 24 * float64(2<<20+1<<18) / 1e6
	if diff := total - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("matrix total %.6f MB, want %.6f", total, want)
	}
}
