// Package serve is the online half of the reproduction: a long-running
// HTTP service that wraps a pipeline-trained model snapshot (the Eq. 5
// indoor-reference shares plus the Section 5.1.2 surrogate forest) and
// turns the offline two-months-in/nine-clusters-out pipeline into a live
// classification path for new antennas — the Section 6 use of the
// surrogate, operationalized.
//
// Endpoints:
//
//	POST /v1/ingest    probe-record batches (probe wire format) folded
//	                   through the collect.Sink aggregator, with a bounded
//	                   queue and explicit 429 backpressure
//	POST /v1/classify  antenna traffic vectors → Eq. 5 RSCA → forest
//	                   cluster, batched on the shared worker pool with an
//	                   LRU verdict cache keyed by (antenna, revision)
//	POST /v1/forecast  cluster- or antenna-conditioned busy-hour horizon
//	                   queries against the snapshot's Holt-Winters models,
//	                   with an LRU keyed by (model, horizon, revision)
//	POST /v1/plan      what-if capacity scenarios (add/remove/reassign
//	                   antennas, shift an event calendar) scored by
//	                   predicted busy-hour load
//	GET  /v1/stats     JSON serving statistics
//	GET  /v1/model     model snapshot metadata (vector length, k, revision)
//	GET  /healthz      liveness
//	GET  /metrics      Prometheus text: obs counters + latency histograms
//
// Production behaviors: per-request context deadlines, bounded ingest queue
// with Retry-After hints, and graceful shutdown that stops intake, drains
// queued batches into the aggregate, and only then returns — an acked
// (202) record is never lost.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/collect"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/pipe"
	"repro/internal/probe"
)

// Config parameterizes a Server. The zero value serves on an ephemeral
// localhost port with production-shaped defaults.
type Config struct {
	// Addr is the listen address (default "127.0.0.1:0").
	Addr string
	// QueueDepth bounds the ingest queue in batches; a full queue answers
	// 429 with a Retry-After hint (default 64).
	QueueDepth int
	// IngestWorkers is the number of goroutines folding queued batches
	// into the aggregate (default 2).
	IngestWorkers int
	// RequestTimeout is the per-request context deadline (default 5s).
	RequestTimeout time.Duration
	// CacheSize bounds the classify LRU in entries; 0 selects the default
	// 4096, negative disables caching.
	CacheSize int
	// ForecastCacheSize bounds the forecast LRU in entries; 0 selects the
	// default 1024, negative disables caching.
	ForecastCacheSize int
	// MaxBodyBytes bounds request bodies (default 32 MiB).
	MaxBodyBytes int64
	// MaxIngestRecords caps records per ingest batch (default 262144).
	MaxIngestRecords int
	// MaxClassifyAntennas caps vectors per classify call (default 4096).
	MaxClassifyAntennas int
	// RetryAfter is the backpressure hint on 429 responses (default 1s).
	RetryAfter time.Duration
	// Pool overrides the worker pool classify batches fan out on
	// (default: the process-shared pool).
	Pool *pipe.Pool
	// Faults optionally wires the deterministic fault-injection layer
	// (internal/fault) into the serving seams: ingest latency before the
	// ack, slow drain folds, and classify latency spikes. nil injects
	// nothing; production configs leave it nil.
	Faults *fault.Injector
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.IngestWorkers <= 0 {
		c.IngestWorkers = 2
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.ForecastCacheSize == 0 {
		c.ForecastCacheSize = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxIngestRecords <= 0 {
		c.MaxIngestRecords = 262144
	}
	if c.MaxClassifyAntennas <= 0 {
		c.MaxClassifyAntennas = 4096
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Stats is a point-in-time snapshot of one server's activity.
type Stats struct {
	// ModelRevision identifies the served snapshot.
	ModelRevision uint64 `json:"model_revision"`
	// Ingest side.
	IngestBatches   int64 `json:"ingest_batches"`
	IngestRecords   int64 `json:"ingest_records"`
	IngestRejected  int64 `json:"ingest_rejected"`
	IngestMalformed int64 `json:"ingest_malformed"`
	QueueDepth      int   `json:"queue_depth"`
	QueueCapacity   int   `json:"queue_capacity"`
	// Classify side.
	ClassifyRequests  int64 `json:"classify_requests"`
	ClassifiedVectors int64 `json:"classified_vectors"`
	CacheHits         int64 `json:"cache_hits"`
	CacheMisses       int64 `json:"cache_misses"`
	CacheEntries      int   `json:"cache_entries"`
	// Forecast side.
	ForecastRequests     int64 `json:"forecast_requests"`
	ForecastCacheHits    int64 `json:"forecast_cache_hits"`
	ForecastCacheMisses  int64 `json:"forecast_cache_misses"`
	ForecastCacheEntries int   `json:"forecast_cache_entries"`
	PlanRequests         int64 `json:"plan_requests"`
	// Aggregate holds the sink's collector-compatible statistics.
	Aggregate collect.Stats `json:"aggregate"`
}

// Server is the online classification service.
type Server struct {
	cfg     Config
	snap    atomic.Pointer[ModelSnapshot]
	sink    *collect.Sink
	pool    *pipe.Pool
	cache   *lruCache
	fcCache *forecastCache

	queue chan []probe.Record
	tasks pipe.Tasks

	// refresh points at the attached refresh controller, if any; /v1/model
	// reports its telemetry.
	refresh atomic.Pointer[Refresher]

	mux     *http.ServeMux
	httpSrv *http.Server
	ln      net.Listener

	startOnce sync.Once
	stopOnce  sync.Once
	draining  atomic.Bool

	ingestBatches   atomic.Int64
	ingestRecords   atomic.Int64
	ingestRejected  atomic.Int64
	ingestMalformed atomic.Int64
	classifyReqs    atomic.Int64
	classifiedVecs  atomic.Int64
	cacheHits       atomic.Int64
	cacheMisses     atomic.Int64

	forecastReqs        atomic.Int64
	forecastCacheHits   atomic.Int64
	forecastCacheMisses atomic.Int64
	planReqs            atomic.Int64
}

// New builds a server around a model snapshot. The sink may be shared with
// a TCP Collector; pass nil for a private aggregate.
func New(snap *ModelSnapshot, sink *collect.Sink, cfg Config) (*Server, error) {
	if snap == nil {
		return nil, errors.New("serve: nil model snapshot")
	}
	cfg = cfg.withDefaults()
	if sink == nil {
		sink = collect.NewSink()
	}
	pool := cfg.Pool
	if pool == nil {
		pool = pipe.Shared()
	}
	s := &Server{
		cfg:     cfg,
		sink:    sink,
		pool:    pool,
		cache:   newLRUCache(cfg.CacheSize),
		fcCache: newForecastCache(cfg.ForecastCacheSize),
		queue:   make(chan []probe.Record, cfg.QueueDepth),
	}
	s.snap.Store(snap)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/ingest", s.withDeadline(s.handleIngest))
	s.mux.HandleFunc("/v1/classify", s.withDeadline(s.handleClassify))
	s.mux.HandleFunc("/v1/forecast", s.withDeadline(s.handleForecast))
	s.mux.HandleFunc("/v1/plan", s.withDeadline(s.handlePlan))
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/model", s.handleModel)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.httpSrv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}

	// The drain workers start with the server's lifetime, not with Start:
	// a handler exercised directly (tests, fuzzing) still gets its batches
	// folded.
	for w := 0; w < cfg.IngestWorkers; w++ {
		s.tasks.Go(s.drainQueue)
	}
	return s, nil
}

// Handler exposes the route table (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Sink returns the aggregate records are folded into.
func (s *Server) Sink() *collect.Sink { return s.sink }

// Snapshot returns the currently served model snapshot.
func (s *Server) Snapshot() *ModelSnapshot { return s.snap.Load() }

// SwapSnapshot atomically replaces the served model — the online half of a
// retrain — and purges the verdict and forecast LRUs so nothing computed
// by the previous snapshot lingers until it ages out. In-flight requests
// finish against whichever snapshot they loaded at entry; because cache
// keys also carry the model revision, a racing handler that inserts an
// entry after the purge still cannot have it served under the new model.
func (s *Server) SwapSnapshot(next *ModelSnapshot) error {
	if next == nil {
		return errors.New("serve: nil model snapshot")
	}
	s.snap.Store(next)
	s.cache.purge()
	s.fcCache.purge()
	obs.Add("serve.model.swaps", 1)
	return nil
}

// Start binds the listen address and begins serving on a tracked
// goroutine. It returns once the listener is bound; use Addr for the bound
// address and Shutdown to stop.
func (s *Server) Start() error {
	var err error
	s.startOnce.Do(func() {
		s.ln, err = net.Listen("tcp", s.cfg.Addr)
		if err != nil {
			err = fmt.Errorf("serve: listen %s: %w", s.cfg.Addr, err)
			return
		}
		s.tasks.Go(func() {
			// ErrServerClosed is the expected Shutdown outcome.
			_ = s.httpSrv.Serve(s.ln)
		})
	})
	return err
}

// Addr returns the bound listen address (nil before Start).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown gracefully stops the server: it stops accepting requests, waits
// for in-flight handlers (bounded by ctx), then drains every queued ingest
// batch into the aggregate before returning. Records acked with 202 are
// therefore never lost across a graceful stop.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.stopOnce.Do(func() {
		if s.ln != nil {
			err = s.httpSrv.Shutdown(ctx)
		}
		// No handler can be running now (Shutdown waits for them), so the
		// queue can close; workers exit after folding what remains.
		s.draining.Store(true)
		close(s.queue)
		s.tasks.Wait()
	})
	return err
}

// drainQueue folds queued ingest batches until the queue closes. Injected
// fold delays (the fault layer's slow-consumer regime) throttle the drain,
// building real queue pressure upstream; acked batches are still always
// folded before the worker exits.
func (s *Server) drainQueue() {
	//lint:allow ctxguard draining to queue close is the shutdown contract: acked batches must fold before the worker exits, and Shutdown closes the queue
	for batch := range s.queue {
		_ = s.cfg.Faults.Wait(context.Background(), fault.Fold)
		s.sink.AddBatch(batch)
		obs.Add("serve.ingest.folded", int64(len(batch)))
	}
}

// withDeadline wraps a handler with the per-request context deadline and
// the server's worker pool.
func (s *Server) withDeadline(h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		ctx = pipe.WithPool(ctx, s.pool)
		h(w, r.WithContext(ctx))
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the connection owns delivery; nothing to do on error
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// handleIngest accepts one probe-wire-format batch, acks it with 202 once
// it is safely queued, and answers 429 with Retry-After when the bounded
// queue is full.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	startAt := time.Now()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a probe stream")
		return
	}
	s.sink.NoteConnection()
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	reader := probe.NewReader(body)
	var batch []probe.Record
	for {
		rec, err := reader.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				writeError(w, http.StatusRequestEntityTooLarge,
					"body exceeds %d bytes", tooLarge.Limit)
				return
			}
			s.ingestMalformed.Add(1)
			s.sink.NoteMalformed()
			obs.Add("serve.ingest.malformed", 1)
			writeError(w, http.StatusBadRequest, "malformed probe stream: %v", err)
			return
		}
		batch = append(batch, rec)
		if len(batch) > s.cfg.MaxIngestRecords {
			writeError(w, http.StatusRequestEntityTooLarge,
				"batch exceeds %d records", s.cfg.MaxIngestRecords)
			return
		}
	}
	if len(batch) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	// Injected ingest latency lands before the ack: a spike can time the
	// request out (503) but can never lose an acked batch.
	if err := s.cfg.Faults.Wait(r.Context(), fault.Ingest); err != nil {
		writeError(w, http.StatusServiceUnavailable, "deadline exceeded: %v", err)
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	select {
	case s.queue <- batch:
		s.ingestBatches.Add(1)
		s.ingestRecords.Add(int64(len(batch)))
		obs.Add("serve.ingest.batches", 1)
		obs.Add("serve.ingest.records", int64(len(batch)))
		obs.ObserveMS("serve.ingest.latency.ms", msSince(startAt))
		writeJSON(w, http.StatusAccepted, map[string]int{"accepted": len(batch)})
	default:
		s.ingestRejected.Add(1)
		obs.Add("serve.ingest.rejected", 1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
		writeError(w, http.StatusTooManyRequests, "ingest queue full, retry later")
	}
}

// ClassifyRequest is the /v1/classify body: one traffic vector per
// antenna, with an optional caller-managed revision enabling the verdict
// cache.
type ClassifyRequest struct {
	Antennas []AntennaVector `json:"antennas"`
}

// AntennaVector is one antenna's raw per-service traffic totals.
type AntennaVector struct {
	// ID identifies the antenna across requests.
	ID uint32 `json:"id"`
	// Revision versions the traffic vector; repeats of (id, revision > 0)
	// are served from the LRU without re-running the model.
	Revision uint64 `json:"revision,omitempty"`
	// Traffic holds the per-service MB totals (length = model services).
	Traffic []float64 `json:"traffic"`
}

// ClassifyResponse mirrors the request order.
type ClassifyResponse struct {
	ModelRevision uint64           `json:"model_revision"`
	Results       []AntennaVerdict `json:"results"`
	CacheHits     int              `json:"cache_hits"`
}

// AntennaVerdict is one antenna's inferred demand cluster.
type AntennaVerdict struct {
	ID      uint32 `json:"id"`
	Cluster int    `json:"cluster"`
	Cached  bool   `json:"cached,omitempty"`
}

// handleClassify transforms the submitted traffic vectors with the Eq. 5
// indoor reference and classifies them with the surrogate forest, serving
// revision-cached antennas from the LRU.
func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	startAt := time.Now()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a classify request")
		return
	}
	var req ClassifyRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Antennas) == 0 {
		writeError(w, http.StatusBadRequest, "no antennas in request")
		return
	}
	if len(req.Antennas) > s.cfg.MaxClassifyAntennas {
		writeError(w, http.StatusRequestEntityTooLarge,
			"%d antennas exceeds the %d per-request cap", len(req.Antennas), s.cfg.MaxClassifyAntennas)
		return
	}
	s.classifyReqs.Add(1)
	obs.Add("serve.classify.requests", 1)

	// Load the snapshot once: every read below (revision echo, cache keys,
	// classification) must see the same model even if a swap lands
	// mid-request.
	snap := s.snap.Load()
	if err := s.cfg.Faults.Wait(r.Context(), fault.Classify); err != nil {
		writeError(w, http.StatusServiceUnavailable, "deadline exceeded: %v", err)
		return
	}

	resp := ClassifyResponse{
		ModelRevision: snap.Revision,
		Results:       make([]AntennaVerdict, len(req.Antennas)),
	}
	var missIdx []int
	var missRows [][]float64
	for i, a := range req.Antennas {
		resp.Results[i].ID = a.ID
		if a.Revision > 0 {
			if cluster, ok := s.cache.get(cacheKey{a.ID, a.Revision, snap.Revision}); ok {
				resp.Results[i].Cluster = cluster
				resp.Results[i].Cached = true
				resp.CacheHits++
				continue
			}
		}
		missIdx = append(missIdx, i)
		missRows = append(missRows, a.Traffic)
	}
	s.cacheHits.Add(int64(resp.CacheHits))
	s.cacheMisses.Add(int64(len(missIdx)))
	obs.Add("serve.classify.cache.hits", int64(resp.CacheHits))
	obs.Add("serve.classify.cache.misses", int64(len(missIdx)))

	if len(missIdx) > 0 {
		clusters, err := snap.Classify(r.Context(), missRows)
		if err != nil {
			if r.Context().Err() != nil {
				writeError(w, http.StatusServiceUnavailable, "deadline exceeded: %v", r.Context().Err())
				return
			}
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		for mi, i := range missIdx {
			a := req.Antennas[i]
			resp.Results[i].Cluster = clusters[mi]
			if a.Revision > 0 {
				s.cache.put(cacheKey{a.ID, a.Revision, snap.Revision}, clusters[mi])
			}
		}
	}
	s.classifiedVecs.Add(int64(len(req.Antennas)))
	obs.Add("serve.classify.antennas", int64(len(req.Antennas)))
	obs.ObserveMS("serve.classify.latency.ms", msSince(startAt))
	writeJSON(w, http.StatusOK, resp)
}

// handleStats reports the server's activity snapshot.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// Stats snapshots the serving statistics backing /v1/stats.
func (s *Server) Stats() Stats {
	return Stats{
		ModelRevision:     s.snap.Load().Revision,
		IngestBatches:     s.ingestBatches.Load(),
		IngestRecords:     s.ingestRecords.Load(),
		IngestRejected:    s.ingestRejected.Load(),
		IngestMalformed:   s.ingestMalformed.Load(),
		QueueDepth:        len(s.queue),
		QueueCapacity:     cap(s.queue),
		ClassifyRequests:  s.classifyReqs.Load(),
		ClassifiedVectors: s.classifiedVecs.Load(),
		CacheHits:         s.cacheHits.Load(),
		CacheMisses:       s.cacheMisses.Load(),
		CacheEntries:      s.cache.len(),

		ForecastRequests:     s.forecastReqs.Load(),
		ForecastCacheHits:    s.forecastCacheHits.Load(),
		ForecastCacheMisses:  s.forecastCacheMisses.Load(),
		ForecastCacheEntries: s.fcCache.len(),
		PlanRequests:         s.planReqs.Load(),

		Aggregate: s.sink.Snapshot(),
	}
}

// handleModel reports snapshot metadata so clients can size vectors, plus
// the refresh controller's telemetry when one is attached.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	payload := map[string]any{
		"services":          snap.Services,
		"k":                 snap.K,
		"trees":             len(snap.Forest.Trees),
		"revision":          snap.Revision,
		"forecast_clusters": snap.Forecasts.K(),
	}
	if ref := s.refresh.Load(); ref != nil {
		payload["refresh"] = ref.Info()
	}
	writeJSON(w, http.StatusOK, payload)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics renders the obs counters and latency histograms in the
// Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write([]byte(obs.MetricsText()))
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t).Microseconds()) / 1000
}

func retryAfterSeconds(d time.Duration) int {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
