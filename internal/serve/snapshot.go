package serve

import (
	"context"
	"fmt"
	"math"

	"repro/internal/analysis"
	"repro/internal/forecast"
	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/rca"
)

// ModelSnapshot is the frozen, servable output of one offline pipeline
// run: the Eq. 5 indoor-reference service shares and the trained surrogate
// forest. It is immutable after construction, so handlers read it without
// locks; swapping in a retrained model is building a new snapshot.
type ModelSnapshot struct {
	// Ref holds the indoor-side denominators of Eq. 5 (per-service shares
	// of total indoor traffic), the reference new antennas are compared
	// against.
	Ref *rca.OutdoorReference
	// Forest is the Section 5.1.2 surrogate classifier.
	Forest *forest.Forest
	// K is the number of demand clusters the forest predicts.
	K int
	// Services is the expected traffic-vector length (the catalog size M).
	Services int
	// Forecasts bundles the per-cluster and per-antenna busy-hour
	// forecasters trained alongside this snapshot's model (nil when the
	// producing pipeline predates the forecast stage); /v1/forecast and
	// /v1/plan read it.
	Forecasts *forecast.Set
	// Revision fingerprints the snapshot (reference shares + model shape +
	// forecast-set digest); classify and forecast responses echo it so
	// clients can detect model swaps.
	Revision uint64
}

// NewModelSnapshot freezes the servable state of a finished pipeline run.
func NewModelSnapshot(res *analysis.Result) (*ModelSnapshot, error) {
	if res == nil || res.Surrogate == nil || res.Dataset == nil || res.Dataset.Traffic == nil {
		return nil, fmt.Errorf("serve: result has no trained surrogate")
	}
	ref, err := rca.NewOutdoorReference(res.Dataset.Traffic)
	if err != nil {
		return nil, fmt.Errorf("serve: indoor reference: %w", err)
	}
	m := &ModelSnapshot{
		Ref:       ref,
		Forest:    res.Surrogate,
		K:         res.K,
		Services:  res.Dataset.Traffic.Cols(),
		Forecasts: res.Forecasts,
	}
	m.Revision = m.fingerprint()
	return m, nil
}

// fingerprint hashes the reference shares and the full forest structure
// (FNV-1a over float bits and node topology), so equal revisions attest
// bit-equal served behavior — the invariant the refresh controller's
// skip-on-unchanged-revision and the chaos swap-storm parity leg rely on —
// and any retrain that changes a single split yields a fresh revision.
func (m *ModelSnapshot) fingerprint() uint64 {
	var h uint64 = 0xcbf29ce484222325
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 0x100000001b3
		}
	}
	for _, s := range m.Ref.ServiceShare {
		mix(math.Float64bits(s))
	}
	mix(uint64(m.K))
	mix(uint64(m.Services))
	mix(uint64(len(m.Forest.Trees)))
	for _, t := range m.Forest.Trees {
		mix(uint64(len(t.Nodes)))
		for i := range t.Nodes {
			n := &t.Nodes[i]
			mix(uint64(int64(n.Feature)))
			mix(math.Float64bits(n.Threshold))
			mix(uint64(int64(n.Left)))
			mix(uint64(int64(n.Right)))
			for _, p := range n.Probs {
				mix(math.Float64bits(p))
			}
		}
	}
	// Forecast models are served under the same revision, so a retrain
	// that only moves the forecasters (e.g. traffic folded into an
	// unchanged partition) still mints a fresh revision. Snapshots without
	// a forecast set hash exactly as before.
	if m.Forecasts != nil {
		mix(m.Forecasts.Digest())
	}
	return h
}

// Classify transforms raw per-service traffic vectors with the Eq. 5
// indoor-reference RSCA and predicts one cluster per row. Rows fan out over
// the pool carried by ctx (pipe.FromContext). Every vector must have
// exactly Services entries.
func (m *ModelSnapshot) Classify(ctx context.Context, rows [][]float64) ([]int, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	for i, r := range rows {
		if len(r) != m.Services {
			return nil, fmt.Errorf("serve: antenna %d has %d services, model expects %d", i, len(r), m.Services)
		}
	}
	t, err := mat.FromRows(rows)
	if err != nil {
		return nil, fmt.Errorf("serve: traffic vectors: %w", err)
	}
	features, err := m.Ref.RSCAOutdoor(t)
	if err != nil {
		return nil, fmt.Errorf("serve: Eq. 5 transform: %w", err)
	}
	// Batch prediction over the pool carried by ctx — the same
	// forest.PredictAllContext path the offline outdoor stage uses.
	return m.Forest.PredictAllContext(ctx, features)
}
