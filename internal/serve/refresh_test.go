package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/fault"
)

// TestWarmRefreshRevisionParity is the serve side of the drift-0 parity
// fixture: a warm refresh over bit-identical traffic must fingerprint to
// the *same* revision as the cold run — the revision is a commitment to
// served behavior, so bit-identical models must be indistinguishable.
func TestWarmRefreshRevisionParity(t *testing.T) {
	cold := goldenResult(t)
	coldSnap, err := NewModelSnapshot(cold)
	if err != nil {
		t.Fatal(err)
	}
	warm, st, err := analysis.WarmRefresh(cold, cold.Dataset.Traffic.Clone(), nil, analysis.WarmConfig{
		DriftThreshold: analysis.DefaultDriftThreshold,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Drift != 0 || st.Escalated {
		t.Fatalf("unexpected movement on identical data: %+v", st)
	}
	warmSnap, err := NewModelSnapshot(warm)
	if err != nil {
		t.Fatal(err)
	}
	if warmSnap.Revision != coldSnap.Revision {
		t.Fatalf("drift-0 warm refresh changed the revision: %016x vs %016x",
			warmSnap.Revision, coldSnap.Revision)
	}
}

// TestRefresherSkipsWhenClean: with no aggregates folded since the last
// refresh, the controller must not retrain or swap.
func TestRefresherSkipsWhenClean(t *testing.T) {
	res := goldenResult(t)
	snap, err := NewModelSnapshot(res)
	if err != nil {
		t.Fatal(err)
	}
	s := startServer(t, snap, Config{})
	ref, err := NewRefresher(s, res, RefreshConfig{Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Stop()

	out, err := ref.RefreshOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Skipped || out.Swapped {
		t.Fatalf("clean refresh should skip: %+v", out)
	}
	if out.Revision != snap.Revision {
		t.Fatalf("revision moved without data: %016x vs %016x", out.Revision, snap.Revision)
	}
	info := ref.Info()
	if info.Skipped != 1 || info.Runs != 0 || info.Swaps != 0 {
		t.Fatalf("telemetry %+v", info)
	}
	if _, ok := ref.ResultFor(snap.Revision); !ok {
		t.Fatal("base revision must be registered for parity audits")
	}
}

// TestRefresherAdvancesRevisionAndServesParity drives the full loop:
// ingest over HTTP → refresh → swap, then audits a served response against
// the refreshed revision's offline result.
func TestRefresherAdvancesRevisionAndServesParity(t *testing.T) {
	res := goldenResult(t)
	snap, err := NewModelSnapshot(res)
	if err != nil {
		t.Fatal(err)
	}
	s := startServer(t, snap, Config{})
	ref, err := NewRefresher(s, res, RefreshConfig{Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Stop()

	// Land aggregates on a handful of antennas and wait for the drain
	// workers to fold them.
	stream := probeStream(t, ingestRecords(200))
	resp, err := http.Post(baseURL(s)+"/v1/ingest", "application/octet-stream", bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Sink().Snapshot().Records == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ingested records never folded")
		}
		time.Sleep(5 * time.Millisecond)
	}

	out, err := ref.RefreshOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Skipped || !out.Swapped {
		t.Fatalf("refresh over new aggregates must swap: %+v", out)
	}
	if out.Revision == snap.Revision {
		t.Fatal("revision did not advance")
	}
	if s.Snapshot().Revision != out.Revision {
		t.Fatal("server still serves the old snapshot")
	}

	// The served verdicts must match the refreshed revision's offline
	// outdoor classification, row for row.
	offline, ok := ref.ResultFor(out.Revision)
	if !ok {
		t.Fatalf("refreshed revision %016x not registered", out.Revision)
	}
	outdoor := offline.Dataset.OutdoorTraffic
	var req ClassifyRequest
	for i := 0; i < outdoor.Rows(); i++ {
		req.Antennas = append(req.Antennas, AntennaVector{ID: uint32(i), Traffic: outdoor.Row(i)})
	}
	hresp, body := postJSON(t, baseURL(s)+"/v1/classify", req)
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("classify: %d %s", hresp.StatusCode, body)
	}
	var cr ClassifyResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.ModelRevision != out.Revision {
		t.Fatalf("served revision %016x, want refreshed %016x", cr.ModelRevision, out.Revision)
	}
	for i, v := range cr.Results {
		if v.Cluster != offline.OutdoorLabels[i] {
			t.Fatalf("antenna %d: served %d, offline %d", i, v.Cluster, offline.OutdoorLabels[i])
		}
	}

	// A second refresh with no new aggregates converges (skip, no swap).
	out2, err := ref.RefreshOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !out2.Skipped || out2.Revision != out.Revision {
		t.Fatalf("idle refresh must hold the revision: %+v", out2)
	}

	// /v1/model reports the refresh telemetry.
	mresp, err := http.Get(baseURL(s) + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	var model struct {
		Revision uint64      `json:"revision"`
		Refresh  RefreshInfo `json:"refresh"`
	}
	if err := json.Unmarshal(mbody, &model); err != nil {
		t.Fatal(err)
	}
	if model.Revision != out.Revision || model.Refresh.Runs != 1 || model.Refresh.Swaps != 1 {
		t.Fatalf("/v1/model refresh telemetry: %s", mbody)
	}
}

// TestRefresherTickLoop exercises the background loop end to end: a short
// interval must pick up folded aggregates and swap without manual calls.
func TestRefresherTickLoop(t *testing.T) {
	res := goldenResult(t)
	snap, err := NewModelSnapshot(res)
	if err != nil {
		t.Fatal(err)
	}
	s := startServer(t, snap, Config{})
	ref, err := NewRefresher(s, res, RefreshConfig{Interval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ref.Start()
	defer ref.Stop()

	s.Sink().AddBatch(ingestRecords(500))
	deadline := time.Now().Add(20 * time.Second)
	for s.Snapshot().Revision == snap.Revision {
		if time.Now().After(deadline) {
			t.Fatal("tick loop never swapped the snapshot")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if info := ref.Info(); info.Swaps < 1 {
		t.Fatalf("telemetry after tick swap: %+v", info)
	}
}

// TestDrainDuringSwap is the drain-during-swap contract: a graceful
// shutdown racing a refresh-driven SwapSnapshot must neither drop acked
// batches nor serve a verdict inconsistent with the revision a response
// echoes — every successful response resolves, through the refresher's
// registry, to offline verdicts that match bit for bit.
func TestDrainDuringSwap(t *testing.T) {
	res := goldenResult(t)
	snap, err := NewModelSnapshot(res)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(99, map[fault.Site]fault.Rule{
		fault.Fold:     {DelayProb: 0.9, Delay: 2 * time.Millisecond},
		fault.Classify: {DelayProb: 0.3, Delay: time.Millisecond},
	})
	s, err := New(snap, nil, Config{QueueDepth: 256, IngestWorkers: 1, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	ref, err := NewRefresher(s, res, RefreshConfig{Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Stop()

	// Ack a pile of batches through the slow-folding queue.
	const batches, perBatch = 30, 40
	stream := probeStream(t, ingestRecords(perBatch))
	acked := 0
	for b := 0; b < batches; b++ {
		resp, err := http.Post(baseURL(s)+"/v1/ingest", "application/octet-stream", bytes.NewReader(stream))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			acked++
		case http.StatusTooManyRequests:
			// Backpressure is allowed.
		default:
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
	}
	if acked == 0 {
		t.Fatal("no batch acked")
	}
	// Wait until some records folded so the refresh genuinely retrains.
	deadline := time.Now().Add(10 * time.Second)
	for s.Sink().Snapshot().Records == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no records folded")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Classify clients observe (revision, verdict) pairs while the swap
	// and the shutdown race below.
	outdoor := res.Dataset.OutdoorTraffic
	var req ClassifyRequest
	rows := 8
	if outdoor.Rows() < rows {
		rows = outdoor.Rows()
	}
	for i := 0; i < rows; i++ {
		req.Antennas = append(req.Antennas, AntennaVector{ID: uint32(i), Traffic: outdoor.Row(i)})
	}
	reqBody, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	type observed struct {
		rev      uint64
		clusters []int
	}
	var (
		obsMu    sync.Mutex
		observes []observed
		wg       sync.WaitGroup
	)
	stopClients := make(chan struct{})
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopClients:
					return
				default:
				}
				resp, err := http.Post(baseURL(s)+"/v1/classify", "application/json", bytes.NewReader(reqBody))
				if err != nil {
					return // server is gone; shutdown won the race
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					continue // 503 under fault/drain is allowed; wrong data is not
				}
				var cr ClassifyResponse
				if err := json.Unmarshal(body, &cr); err != nil {
					continue
				}
				o := observed{rev: cr.ModelRevision}
				for _, v := range cr.Results {
					o.clusters = append(o.clusters, v.Cluster)
				}
				obsMu.Lock()
				observes = append(observes, o)
				obsMu.Unlock()
			}
		}()
	}

	// Race: the refresh (ending in SwapSnapshot) against graceful shutdown.
	refreshDone := make(chan error, 1)
	go func() {
		_, err := ref.RefreshOnce(context.Background())
		refreshDone <- err
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown during swap: %v", err)
	}
	close(stopClients)
	wg.Wait()
	if err := <-refreshDone; err != nil {
		t.Fatalf("refresh during shutdown: %v", err)
	}

	// Invariant 1: zero acked-record loss across the drain.
	if got, want := s.Sink().Snapshot().Records, acked*perBatch; got != want {
		t.Fatalf("aggregate holds %d records, want %d (%d acked × %d)", got, want, acked, perBatch)
	}
	// Invariant 2: every successful response is bit-consistent with the
	// offline result of the revision it echoes — no verdict from an
	// outgoing revision under the incoming revision's banner or vice versa.
	if len(observes) == 0 {
		t.Log("no classify response completed during the race (still asserting drain)")
	}
	for _, o := range observes {
		offline, ok := ref.ResultFor(o.rev)
		if !ok {
			t.Fatalf("response echoed unregistered revision %016x", o.rev)
		}
		for i, c := range o.clusters {
			if c != offline.OutdoorLabels[i] {
				t.Fatalf("revision %016x: served cluster %d for antenna %d, offline %d",
					o.rev, c, i, offline.OutdoorLabels[i])
			}
		}
	}
}
