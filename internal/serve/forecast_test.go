package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"

	"repro/internal/forecast"
)

// --- fixtures ---------------------------------------------------------------

// tinySeries builds a deterministic positive hour-of-week series with a
// diurnal ramp and a mild trend, long enough for Holt-Winters init.
func tinySeries(weeks int, offset float64) []float64 {
	out := make([]float64, weeks*forecast.SeasonLength)
	for i := range out {
		out[i] = 100 + offset + 10*float64(i%24) + 0.01*float64(i)
	}
	return out
}

// tinyForecastSet fits a two-cluster forecast set with one sampled antenna
// per cluster (indoor indices 3 and 9), matching tinySnapshot's two demand
// profiles in spirit.
func tinyForecastSet(t testing.TB) *forecast.Set {
	t.Helper()
	s0 := tinySeries(2, 0)
	s1 := tinySeries(2, 40)
	set, err := forecast.FitSet([]forecast.ClusterSeries{
		{Cluster: 0, Members: 4, Series: s0,
			Antennas: []forecast.AntennaSeries{{Antenna: 3, Series: s0}}},
		{Cluster: 1, Members: 4, Series: s1,
			Antennas: []forecast.AntennaSeries{{Antenna: 9, Series: s1}}},
	}, forecast.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// forecastSnapshot is tinySnapshot with forecast models attached and the
// revision re-fingerprinted over them.
func forecastSnapshot(t testing.TB) *ModelSnapshot {
	t.Helper()
	m := tinySnapshot(t)
	m.Forecasts = tinyForecastSet(t)
	m.Revision = m.fingerprint()
	return m
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// --- /v1/forecast -----------------------------------------------------------

// TestForecastMatchesModelBitExact asserts the served forecast is exactly
// Model.Forecast on the snapshot's fitted state — the parity contract the
// bench audit and offline refits rely on.
func TestForecastMatchesModelBitExact(t *testing.T) {
	snap := forecastSnapshot(t)
	s := startServer(t, snap, Config{})

	cl := 1
	resp, body := postJSON(t, baseURL(s)+"/v1/forecast", ForecastRequest{Cluster: &cl, Horizon: 48})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster forecast: %d %s", resp.StatusCode, body)
	}
	var got ForecastResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.ModelRevision != snap.Revision {
		t.Fatalf("revision %d, want %d", got.ModelRevision, snap.Revision)
	}
	cm := snap.Forecasts.Cluster(1)
	if got.Cluster != 1 || got.Members != cm.Members || got.BusyHour != cm.BusyHour {
		t.Fatalf("metadata %+v does not match cluster model %+v", got, cm)
	}
	if math.Float64bits(got.PeakMB) != math.Float64bits(cm.PeakMB) {
		t.Fatalf("peak %v, want %v", got.PeakMB, cm.PeakMB)
	}
	if !sameFloats(got.Forecast, cm.Model.Forecast(48)) {
		t.Fatal("served cluster forecast is not bit-equal to Model.Forecast")
	}

	ant := 9
	resp, body = postJSON(t, baseURL(s)+"/v1/forecast", ForecastRequest{Antenna: &ant})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("antenna forecast: %d %s", resp.StatusCode, body)
	}
	got = ForecastResponse{}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	am := snap.Forecasts.Antenna(9)
	if got.Antenna == nil || *got.Antenna != 9 || got.Cluster != am.Cluster {
		t.Fatalf("antenna response %+v, want antenna 9 in cluster %d", got, am.Cluster)
	}
	if got.Horizon != defaultForecastHorizon || len(got.Forecast) != defaultForecastHorizon {
		t.Fatalf("horizon defaulting: got %d with %d values", got.Horizon, len(got.Forecast))
	}
	if !sameFloats(got.Forecast, am.Model.Forecast(defaultForecastHorizon)) {
		t.Fatal("served antenna forecast is not bit-equal to Model.Forecast")
	}
}

// TestForecastRevisionCache asserts repeat queries hit the LRU with
// identical values and that stats expose the traffic.
func TestForecastRevisionCache(t *testing.T) {
	s := startServer(t, forecastSnapshot(t), Config{})
	cl := 0

	var first, second ForecastResponse
	resp, body := postJSON(t, baseURL(s)+"/v1/forecast", ForecastRequest{Cluster: &cl, Horizon: 24})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first query: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first query must be a miss")
	}
	resp, body = postJSON(t, baseURL(s)+"/v1/forecast", ForecastRequest{Cluster: &cl, Horizon: 24})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second query: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second identical query must be served from the LRU")
	}
	if !sameFloats(first.Forecast, second.Forecast) || first.ModelRevision != second.ModelRevision {
		t.Fatal("cached response diverged from the computed one")
	}

	// A different horizon is a different key, not a hit.
	resp, body = postJSON(t, baseURL(s)+"/v1/forecast", ForecastRequest{Cluster: &cl, Horizon: 25})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("third query: %d %s", resp.StatusCode, body)
	}
	var third ForecastResponse
	if err := json.Unmarshal(body, &third); err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Fatal("different horizon must miss the cache")
	}

	st := s.Stats()
	if st.ForecastRequests != 3 || st.ForecastCacheHits != 1 || st.ForecastCacheMisses != 2 {
		t.Fatalf("stats req/hit/miss = %d/%d/%d, want 3/1/2",
			st.ForecastRequests, st.ForecastCacheHits, st.ForecastCacheMisses)
	}
	if st.ForecastCacheEntries != 2 {
		t.Fatalf("cache entries %d, want 2", st.ForecastCacheEntries)
	}
}

// TestSwapSnapshotPurgesForecastLRU asserts a model swap empties the
// forecast cache and subsequent answers carry the new revision.
func TestSwapSnapshotPurgesForecastLRU(t *testing.T) {
	snap := forecastSnapshot(t)
	s := startServer(t, snap, Config{})
	cl := 0

	_, _ = postJSON(t, baseURL(s)+"/v1/forecast", ForecastRequest{Cluster: &cl})
	if got := s.Stats().ForecastCacheEntries; got != 1 {
		t.Fatalf("primed cache has %d entries, want 1", got)
	}

	// Swap in a snapshot whose forecast set was fit on shifted series, so
	// the revision and the predictions both move.
	next := tinySnapshot(t)
	shifted := tinySeries(2, 7)
	set, err := forecast.FitSet([]forecast.ClusterSeries{
		{Cluster: 0, Members: 4, Series: shifted},
		{Cluster: 1, Members: 4, Series: tinySeries(2, 55)},
	}, forecast.Config{})
	if err != nil {
		t.Fatal(err)
	}
	next.Forecasts = set
	next.Revision = next.fingerprint()
	if next.Revision == snap.Revision {
		t.Fatal("fixture error: swapped snapshot kept the old revision")
	}
	if err := s.SwapSnapshot(next); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().ForecastCacheEntries; got != 0 {
		t.Fatalf("swap left %d cached forecasts, want 0", got)
	}

	resp, body := postJSON(t, baseURL(s)+"/v1/forecast", ForecastRequest{Cluster: &cl})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-swap query: %d %s", resp.StatusCode, body)
	}
	var got ForecastResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Cached {
		t.Fatal("post-swap query must recompute, not replay the old revision")
	}
	if got.ModelRevision != next.Revision {
		t.Fatalf("post-swap revision %d, want %d", got.ModelRevision, next.Revision)
	}
	if !sameFloats(got.Forecast, set.Cluster(0).Model.Forecast(defaultForecastHorizon)) {
		t.Fatal("post-swap forecast is not the new model's prediction")
	}
}

// TestForecastValidation walks the documented error statuses.
func TestForecastValidation(t *testing.T) {
	s := startServer(t, forecastSnapshot(t), Config{})
	url := baseURL(s) + "/v1/forecast"
	cl, ant := 0, 3

	if resp, err := http.Get(url); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: %d, want 405", resp.StatusCode)
	}
	if resp, err := http.Post(url, "application/json", strings.NewReader(`{`)); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, url, ForecastRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("no selector: %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, url, ForecastRequest{Cluster: &cl, Antenna: &ant}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("both selectors: %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, url, ForecastRequest{Cluster: &cl, Horizon: maxForecastHorizon + 1}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("horizon over cap: %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, url, ForecastRequest{Cluster: &cl, Horizon: -1}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative horizon: %d, want 400", resp.StatusCode)
	}
	bad := 99
	if resp, _ := postJSON(t, url, ForecastRequest{Cluster: &bad}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range cluster: %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, url, ForecastRequest{Antenna: &bad}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unsampled antenna: %d, want 404", resp.StatusCode)
	}
}

// TestForecastWithoutModels asserts pre-forecast snapshots answer 503 on
// both endpoints instead of crashing.
func TestForecastWithoutModels(t *testing.T) {
	s := startServer(t, tinySnapshot(t), Config{})
	cl := 0
	resp, body := postJSON(t, baseURL(s)+"/v1/forecast", ForecastRequest{Cluster: &cl})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("forecast without models: %d %s, want 503", resp.StatusCode, body)
	}
	resp, body = postJSON(t, baseURL(s)+"/v1/plan", PlanRequest{})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("plan without models: %d %s, want 503", resp.StatusCode, body)
	}
}

// --- /v1/plan ---------------------------------------------------------------

// TestPlanRoundTrip scores a scenario over HTTP and checks the population
// edits and aggregate accounting against the forecast package directly.
func TestPlanRoundTrip(t *testing.T) {
	snap := forecastSnapshot(t)
	s := startServer(t, snap, Config{})

	req := PlanRequest{
		Horizon: 48,
		Actions: []forecast.Action{
			{Op: forecast.OpAddAntennas, Cluster: 0, Count: 4},
			{Op: forecast.OpReassign, Cluster: 1, ToCluster: 0, Count: 2},
		},
	}
	resp, body := postJSON(t, baseURL(s)+"/v1/plan", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: %d %s", resp.StatusCode, body)
	}
	var got PlanResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.ModelRevision != snap.Revision || got.Plan == nil {
		t.Fatalf("plan response %+v", got)
	}
	if got.Plan.Clusters[0].AntennasAfter != 10 || got.Plan.Clusters[1].AntennasAfter != 2 {
		t.Fatalf("populations after edits: %d/%d, want 10/2",
			got.Plan.Clusters[0].AntennasAfter, got.Plan.Clusters[1].AntennasAfter)
	}
	want, err := snap.Forecasts.Plan(req.Actions, req.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.Plan.TotalPlannedMB) != math.Float64bits(want.TotalPlannedMB) ||
		math.Float64bits(got.Plan.TotalBaselineMB) != math.Float64bits(want.TotalBaselineMB) {
		t.Fatalf("served plan totals %v/%v diverge from offline %v/%v",
			got.Plan.TotalBaselineMB, got.Plan.TotalPlannedMB,
			want.TotalBaselineMB, want.TotalPlannedMB)
	}
	if st := s.Stats(); st.PlanRequests != 1 {
		t.Fatalf("plan requests %d, want 1", st.PlanRequests)
	}
}

// TestPlanValidationOverHTTP asserts scenario errors surface as 400 with
// the forecast package's message.
func TestPlanValidationOverHTTP(t *testing.T) {
	s := startServer(t, forecastSnapshot(t), Config{})
	url := baseURL(s) + "/v1/plan"

	if resp, err := http.Get(url); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: %d, want 405", resp.StatusCode)
	}
	resp, body := postJSON(t, url, PlanRequest{Actions: []forecast.Action{{Op: "teleport", Cluster: 0}}})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "teleport") {
		t.Fatalf("unknown op: %d %s, want 400 naming the op", resp.StatusCode, body)
	}
	resp, body = postJSON(t, url, PlanRequest{Horizon: maxForecastHorizon + 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("horizon over cap: %d %s, want 400", resp.StatusCode, body)
	}
	resp, body = postJSON(t, url,
		PlanRequest{Actions: []forecast.Action{{Op: forecast.OpRemoveAntennas, Cluster: 0, Count: 99}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-removal: %d %s, want 400", resp.StatusCode, body)
	}
}
