package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/pipe"
	"repro/internal/rca"
)

// RefreshConfig parameterizes the continuous-refresh controller.
type RefreshConfig struct {
	// Interval is the tick period between refresh attempts (default 30s).
	Interval time.Duration
	// DriftThreshold is the reassigned-antenna fraction past which a warm
	// refresh escalates to a full re-linkage (default
	// analysis.DefaultDriftThreshold).
	DriftThreshold float64
	// History bounds the revision → offline-result registry consulted by
	// parity checks and post-swap audits (default 64 revisions).
	History int
	// Timeout bounds one refresh run (default 2m).
	Timeout time.Duration
	// Logf, when set, receives one line per completed refresh attempt.
	Logf func(format string, args ...any)
	// Totals overrides the aggregate-totals source folded on every refresh
	// (default: the attached server's sink). The sharded router points this
	// at the merged cross-shard traffic matrix so a refresh sees every
	// shard's ingest, not just the primary's.
	Totals func(rows, cols int) *mat.Dense
	// OnSwap, when set, runs synchronously after RefreshOnce publishes a
	// new snapshot to the attached server — the snapshot-distribution seam
	// the sharded router uses to fan the same revision out to its replicas.
	// Both arguments are shared with the serving path and must not be
	// mutated.
	OnSwap func(snap *ModelSnapshot, res *analysis.Result)
}

func (c RefreshConfig) withDefaults() RefreshConfig {
	if c.Interval <= 0 {
		c.Interval = 30 * time.Second
	}
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = analysis.DefaultDriftThreshold
	}
	if c.History <= 0 {
		c.History = 64
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Minute
	}
	return c
}

// RefreshInfo is the point-in-time refresh telemetry served under
// /v1/model.
type RefreshInfo struct {
	Runs           int64   `json:"runs"`
	Swaps          int64   `json:"swaps"`
	Skipped        int64   `json:"skipped"`
	Escalations    int64   `json:"escalations"`
	Errors         int64   `json:"errors"`
	LastDrift      float64 `json:"last_drift"`
	LastReassigned int     `json:"last_reassigned"`
	LastDurationMS float64 `json:"last_duration_ms"`
	LastRevision   uint64  `json:"last_revision"`
}

// RefreshOutcome reports one RefreshOnce call.
type RefreshOutcome struct {
	// Revision is the snapshot revision current after the call.
	Revision uint64
	// Swapped is true when a new snapshot was published; Skipped is true
	// when no aggregates landed since the last refresh and the pipeline
	// was not run at all.
	Swapped bool
	Skipped bool
	// Stats carries the warm pipeline's drift accounting.
	Stats analysis.RefreshStats
	Duration time.Duration
}

// Refresher closes the ingest → retrain → swap loop: on every tick it folds
// the collector sink's aggregate totals over the training campaign's
// traffic matrix (rca.Accumulator), runs the warm pipeline on the rows that
// changed (analysis.WarmRefreshContext, escalating past the drift
// threshold), and publishes the retrained model through SwapSnapshot. All
// work happens off the request path on the server's worker pool; the only
// goroutine is the tick loop, spawned via pipe.Tasks per the poolgo
// contract. Every published revision's offline result is retained in a
// bounded registry (ResultFor) — registered before the swap — so any
// served response echoing a revision can be audited against the exact
// offline result that produced it.
type Refresher struct {
	srv  *Server
	cfg  RefreshConfig
	base *analysis.Result
	acc  *rca.Accumulator
	// lastGood re-arms the accumulator's dirty tracking after a failed
	// refresh, so the aggregates that run saw are retried next tick.
	lastGood *mat.Dense

	// refreshMu serializes refresh runs (tick loop + manual RefreshOnce).
	refreshMu sync.Mutex

	// mu guards the revision registry and telemetry.
	mu      sync.Mutex
	cur     *analysis.Result
	history map[uint64]*analysis.Result
	order   []uint64
	info    RefreshInfo

	tasks     pipe.Tasks
	stop      chan struct{}
	startOnce sync.Once
	stopOnce  sync.Once
}

// NewRefresher wires a refresh controller to a server and the offline
// result its current snapshot was built from. The base result's revision is
// registered immediately, so parity audits can resolve responses served
// before the first refresh.
func NewRefresher(srv *Server, base *analysis.Result, cfg RefreshConfig) (*Refresher, error) {
	if srv == nil {
		return nil, fmt.Errorf("serve: refresher needs a server")
	}
	if base == nil || base.Surrogate == nil || base.Dataset == nil || base.Dataset.Traffic == nil {
		return nil, fmt.Errorf("serve: refresher needs a completed pipeline result")
	}
	cfg = cfg.withDefaults()
	acc, err := rca.NewAccumulator(base.Dataset.Traffic)
	if err != nil {
		return nil, fmt.Errorf("serve: refresher: %w", err)
	}
	snap, err := NewModelSnapshot(base)
	if err != nil {
		return nil, fmt.Errorf("serve: refresher: %w", err)
	}
	r := &Refresher{
		srv:      srv,
		cfg:      cfg,
		base:     base,
		acc:      acc,
		lastGood: mat.NewDense(base.Dataset.Traffic.Rows(), base.Dataset.Traffic.Cols()),
		cur:      base,
		history:  map[uint64]*analysis.Result{},
		stop:     make(chan struct{}),
	}
	r.register(snap.Revision, base)
	r.mu.Lock()
	r.info.LastRevision = snap.Revision
	r.mu.Unlock()
	srv.refresh.Store(r)
	return r, nil
}

// register retains a revision's offline result, evicting the oldest entry
// past the history bound. Callers must not hold r.mu.
func (r *Refresher) register(revision uint64, res *analysis.Result) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.history[revision]; !ok {
		r.order = append(r.order, revision)
		for len(r.order) > r.cfg.History {
			delete(r.history, r.order[0])
			r.order = r.order[1:]
		}
	}
	r.history[revision] = res
}

// ResultFor returns the offline pipeline result that produced the given
// snapshot revision, if it is still within the history bound.
func (r *Refresher) ResultFor(revision uint64) (*analysis.Result, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	res, ok := r.history[revision]
	return res, ok
}

// Info snapshots the refresh telemetry.
func (r *Refresher) Info() RefreshInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.info
}

// Start launches the tick loop. Safe to call once; Stop tears it down.
func (r *Refresher) Start() {
	r.startOnce.Do(func() {
		r.tasks.Go(r.loop)
	})
}

// Stop halts the tick loop and waits for an in-flight refresh to finish.
// The server keeps serving whatever snapshot is current.
func (r *Refresher) Stop() {
	r.stopOnce.Do(func() {
		close(r.stop)
	})
	r.tasks.Wait()
}

func (r *Refresher) loop() {
	ticker := time.NewTicker(r.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.Timeout)
			out, err := r.RefreshOnce(ctx)
			cancel()
			if r.cfg.Logf == nil {
				continue
			}
			switch {
			case err != nil:
				r.cfg.Logf("refresh failed: %v", err)
			case out.Skipped:
				// Quiet: nothing landed since the last refresh.
			case out.Swapped:
				r.cfg.Logf("refresh swapped in revision %016x (drift %.4f, reassigned %d, escalated %v) in %s",
					out.Revision, out.Stats.Drift, out.Stats.Reassigned, out.Stats.Escalated, out.Duration.Round(time.Millisecond))
			default:
				r.cfg.Logf("refresh converged on revision %016x (drift %.4f)", out.Revision, out.Stats.Drift)
			}
		}
	}
}

// RefreshOnce runs a single fold → warm retrain → swap cycle. It is safe
// to call concurrently with the tick loop (runs serialize) and returns the
// outcome of this attempt. A refresh whose retrained snapshot fingerprints
// to the currently served revision publishes nothing.
func (r *Refresher) RefreshOnce(ctx context.Context) (RefreshOutcome, error) {
	r.refreshMu.Lock()
	defer r.refreshMu.Unlock()
	start := time.Now()
	var out RefreshOutcome
	out.Revision = r.srv.Snapshot().Revision

	var totals *mat.Dense
	if r.cfg.Totals != nil {
		totals = r.cfg.Totals(r.acc.Rows(), r.acc.Cols())
	} else {
		totals = r.srv.Sink().TrafficMatrix(r.acc.Rows(), r.acc.Cols())
	}
	if totals == nil {
		return out, r.fail(fmt.Errorf("serve: refresh totals source returned nil"))
	}
	if err := r.acc.SetTotals(totals); err != nil {
		return out, r.fail(err)
	}
	traffic, dirty := r.acc.Materialize()
	if len(dirty) == 0 {
		r.mu.Lock()
		r.info.Skipped++
		r.mu.Unlock()
		obs.Add("serve.refresh.skipped", 1)
		out.Skipped = true
		out.Duration = time.Since(start)
		return out, nil
	}

	r.mu.Lock()
	prev := r.cur
	r.mu.Unlock()
	ctx = pipe.WithPool(ctx, r.srv.pool)
	wres, st, err := analysis.WarmRefreshContext(ctx, prev, traffic, dirty,
		analysis.WarmConfig{DriftThreshold: r.cfg.DriftThreshold})
	out.Stats = st
	if err != nil {
		r.rearm()
		return out, r.fail(err)
	}
	snap, err := NewModelSnapshot(wres)
	if err != nil {
		r.rearm()
		return out, r.fail(err)
	}

	// Register the revision's offline result *before* publishing the
	// snapshot: a response served the instant after the swap must already
	// be resolvable through ResultFor.
	r.register(snap.Revision, wres)
	swapped := snap.Revision != r.srv.Snapshot().Revision
	if swapped {
		if err := r.srv.SwapSnapshot(snap); err != nil {
			return out, r.fail(err)
		}
		if r.cfg.OnSwap != nil {
			r.cfg.OnSwap(snap, wres)
		}
	}
	for i := 0; i < totals.Rows(); i++ {
		copy(r.lastGood.Row(i), totals.Row(i))
	}

	out.Revision = snap.Revision
	out.Swapped = swapped
	out.Duration = time.Since(start)

	r.mu.Lock()
	r.cur = wres
	r.info.Runs++
	if swapped {
		r.info.Swaps++
	}
	if st.Escalated {
		r.info.Escalations++
	}
	r.info.LastDrift = st.Drift
	r.info.LastReassigned = st.Reassigned
	r.info.LastDurationMS = msSince(start)
	r.info.LastRevision = snap.Revision
	r.mu.Unlock()

	obs.Add("serve.refresh.runs", 1)
	obs.Add("serve.refresh.reassigned", int64(st.Reassigned))
	if st.Escalated {
		obs.Add("serve.refresh.escalations", 1)
	}
	obs.ObserveMS("serve.refresh.latency.ms", msSince(start))
	return out, nil
}

// fail counts a refresh error in telemetry and passes it through.
func (r *Refresher) fail(err error) error {
	r.mu.Lock()
	r.info.Errors++
	r.mu.Unlock()
	obs.Add("serve.refresh.errors", 1)
	return err
}

// rearm rewinds the accumulator's dirty tracking to the last successful
// refresh, so aggregates seen by a failed run are retried next tick
// instead of being silently marked applied.
func (r *Refresher) rearm() {
	if err := r.acc.SetTotals(r.lastGood); err != nil {
		return
	}
	r.acc.Materialize()
}
