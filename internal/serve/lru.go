package serve

import (
	"container/list"
	"sync"
)

// cacheKey identifies one classified antenna state: callers bump the
// revision whenever the antenna's traffic vector changes, and the key also
// pins the model revision the verdict was computed under, so a verdict
// from a superseded snapshot can never be served after a swap — even if a
// racing handler inserts it after the swap's purge.
type cacheKey struct {
	antenna  uint32
	revision uint64
	// model is the ModelSnapshot.Revision the verdict was computed with.
	model uint64
}

// lruCache is a fixed-capacity LRU of classify verdicts, safe for
// concurrent handlers. A capacity ≤ 0 disables caching entirely.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *lruEntry
	byKey map[cacheKey]*list.Element
}

type lruEntry struct {
	key     cacheKey
	cluster int
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[cacheKey]*list.Element),
	}
}

// get returns the cached cluster for key and marks it most-recently used.
func (c *lruCache) get(key cacheKey) (int, bool) {
	if c.cap <= 0 {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return 0, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).cluster, true
}

// put inserts or refreshes key, evicting the least-recently used entry
// beyond capacity.
func (c *lruCache) put(key cacheKey, cluster int) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*lruEntry).cluster = cluster
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&lruEntry{key: key, cluster: cluster})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*lruEntry).key)
	}
}

// len reports the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// purge drops every entry — called on model-snapshot swap so verdicts from
// the previous model free their capacity immediately instead of aging out.
func (c *lruCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	clear(c.byKey)
}
