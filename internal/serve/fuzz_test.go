package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/probe"
)

var (
	fuzzSrvOnce sync.Once
	fuzzSrv     *Server
)

// fuzzServer builds one shared server whose handler the fuzzer drives
// directly (no network); its drain workers run for the process lifetime.
// The snapshot carries forecast models so /v1/forecast fuzzing reaches the
// real lookup paths instead of the 503 guard.
func fuzzServer(f *testing.F) *Server {
	f.Helper()
	fuzzSrvOnce.Do(func() {
		snap := forecastSnapshot(f)
		var err error
		fuzzSrv, err = New(snap, nil, Config{QueueDepth: 1024})
		if err != nil {
			f.Fatal(err)
		}
	})
	return fuzzSrv
}

// FuzzIngestBody feeds arbitrary bytes to POST /v1/ingest alongside the
// probe package's own reader fuzz: the handler must always answer one of
// the documented statuses and never panic, hang, or poison the aggregate
// with partial batches.
func FuzzIngestBody(f *testing.F) {
	s := fuzzServer(f)

	var buf bytes.Buffer
	w := probe.NewWriter(&buf)
	_ = w.Write(probe.Record{Hour: 1, AntennaID: 2, Protocol: probe.TCP, ServerPort: 443, ServerName: "netflix.example", DownBytes: 10, UpBytes: 1})
	_ = w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add([]byte{})
	f.Add([]byte{0x49, 0x43, 0x4e, 0x50, 0x00, 0x01})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Add(append(append([]byte{}, valid...), valid[6:]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(data))
		rr := httptest.NewRecorder()
		s.Handler().ServeHTTP(rr, req)
		switch rr.Code {
		case http.StatusAccepted, http.StatusBadRequest,
			http.StatusRequestEntityTooLarge, http.StatusTooManyRequests:
		default:
			t.Fatalf("ingest answered %d for %d fuzz bytes", rr.Code, len(data))
		}
	})
}

// FuzzClassifyBody feeds arbitrary JSON to POST /v1/classify; malformed
// bodies and wrong-shape vectors must come back 4xx, never crash the
// model.
func FuzzClassifyBody(f *testing.F) {
	s := fuzzServer(f)
	f.Add([]byte(`{"antennas":[{"id":1,"traffic":[1,2,3]}]}`))
	f.Add([]byte(`{"antennas":[{"id":1,"revision":9,"traffic":[1e308,-1,0]}]}`))
	f.Add([]byte(`{"antennas":[]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"antennas":[{"traffic":[]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/classify", bytes.NewReader(data))
		rr := httptest.NewRecorder()
		s.Handler().ServeHTTP(rr, req)
		if rr.Code >= 500 && rr.Code != http.StatusServiceUnavailable {
			t.Fatalf("classify answered %d for %q", rr.Code, data)
		}
	})
}

// FuzzForecastBody feeds arbitrary JSON to POST /v1/forecast; malformed
// bodies, double selectors, and out-of-range horizons must come back 4xx,
// never crash the model set or poison the LRU.
func FuzzForecastBody(f *testing.F) {
	s := fuzzServer(f)
	f.Add([]byte(`{"cluster":0}`))
	f.Add([]byte(`{"cluster":1,"horizon":168}`))
	f.Add([]byte(`{"antenna":3,"horizon":1}`))
	f.Add([]byte(`{"antenna":-1}`))
	f.Add([]byte(`{"cluster":0,"antenna":3}`))
	f.Add([]byte(`{"cluster":2147483647,"horizon":-5}`))
	f.Add([]byte(`{"horizon":1e9}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/forecast", bytes.NewReader(data))
		rr := httptest.NewRecorder()
		s.Handler().ServeHTTP(rr, req)
		if rr.Code >= 500 && rr.Code != http.StatusServiceUnavailable {
			t.Fatalf("forecast answered %d for %q", rr.Code, data)
		}
	})
}
