package serve

import (
	"container/list"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"repro/internal/forecast"
	"repro/internal/obs"
)

// maxForecastHorizon caps /v1/forecast and /v1/plan horizons at two
// hour-of-week seasons — beyond that Holt-Winters extrapolation is pure
// trend and the response payload stops earning its bytes.
const maxForecastHorizon = 2 * forecast.SeasonLength

// defaultForecastHorizon is the horizon served when the request omits it.
const defaultForecastHorizon = 24

// ForecastRequest is the /v1/forecast body: exactly one of Cluster or
// Antenna selects the model; Horizon defaults to 24 hours.
type ForecastRequest struct {
	// Cluster selects a cluster's busy-hour forecaster (median member
	// load per hour).
	Cluster *int `json:"cluster,omitempty"`
	// Antenna selects one sampled antenna's forecaster by indoor index.
	Antenna *int `json:"antenna,omitempty"`
	// Horizon is the number of hours to predict (default 24, max 336).
	Horizon int `json:"horizon,omitempty"`
}

// ForecastResponse carries one model's horizon prediction. Forecast[t] is
// the predicted load t+1 hours after the end of the training series;
// BusyHour/PeakMB locate the peak of the next full season.
type ForecastResponse struct {
	ModelRevision uint64 `json:"model_revision"`
	Cluster       int    `json:"cluster"`
	Antenna       *int   `json:"antenna,omitempty"`
	Horizon       int    `json:"horizon"`
	// Members is the cluster population behind a cluster query (0 for
	// antenna queries).
	Members  int       `json:"members,omitempty"`
	BusyHour int       `json:"busy_hour"`
	PeakMB   float64   `json:"peak_mb"`
	Forecast []float64 `json:"forecast"`
	Cached   bool      `json:"cached,omitempty"`
}

// forecastKey identifies one cached forecast: the queried model (cluster
// or sampled antenna), the horizon, and the snapshot revision the
// prediction was computed under — so a swap can never serve a stale
// forecast even if a racing handler inserts after the purge.
type forecastKey struct {
	antenna bool
	id      int
	horizon int
	model   uint64
}

// forecastCache is a fixed-capacity LRU of forecast responses, safe for
// concurrent handlers. Cached responses are immutable (handlers copy the
// struct and only flip the Cached flag; the Forecast slice is shared
// read-only). A capacity ≤ 0 disables caching.
type forecastCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *forecastEntry
	byKey map[forecastKey]*list.Element
}

type forecastEntry struct {
	key  forecastKey
	resp ForecastResponse
}

func newForecastCache(capacity int) *forecastCache {
	return &forecastCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[forecastKey]*list.Element),
	}
}

func (c *forecastCache) get(key forecastKey) (ForecastResponse, bool) {
	if c.cap <= 0 {
		return ForecastResponse{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return ForecastResponse{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*forecastEntry).resp, true
}

func (c *forecastCache) put(key forecastKey, resp ForecastResponse) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*forecastEntry).resp = resp
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&forecastEntry{key: key, resp: resp})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*forecastEntry).key)
	}
}

func (c *forecastCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

func (c *forecastCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	clear(c.byKey)
}

// handleForecast serves cluster- or antenna-conditioned horizon queries
// from the snapshot's forecast set, with an LRU keyed by (model, horizon,
// snapshot revision). The served values are exactly Model.Forecast on the
// revision's fitted state, so offline refits of the same revision's
// result reproduce them bit-for-bit.
func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	startAt := time.Now()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a forecast request")
		return
	}
	var req ForecastRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	s.forecastReqs.Add(1)
	obs.Add("serve.forecast.requests", 1)

	// Load the snapshot once: revision echo, cache key and model reads
	// must agree even if a swap lands mid-request.
	snap := s.snap.Load()
	set := snap.Forecasts
	if set == nil {
		writeError(w, http.StatusServiceUnavailable, "served snapshot carries no forecast models")
		return
	}
	horizon := req.Horizon
	if horizon == 0 {
		horizon = defaultForecastHorizon
	}
	if horizon < 1 || horizon > maxForecastHorizon {
		writeError(w, http.StatusBadRequest, "horizon %d outside [1, %d]", horizon, maxForecastHorizon)
		return
	}
	if (req.Cluster == nil) == (req.Antenna == nil) {
		writeError(w, http.StatusBadRequest, "exactly one of cluster or antenna must be set")
		return
	}

	var key forecastKey
	if req.Cluster != nil {
		key = forecastKey{id: *req.Cluster, horizon: horizon, model: snap.Revision}
	} else {
		key = forecastKey{antenna: true, id: *req.Antenna, horizon: horizon, model: snap.Revision}
	}
	if resp, ok := s.fcCache.get(key); ok {
		resp.Cached = true
		s.forecastCacheHits.Add(1)
		obs.Add("serve.forecast.cache.hits", 1)
		obs.ObserveMS("serve.forecast.latency.ms", msSince(startAt))
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.forecastCacheMisses.Add(1)
	obs.Add("serve.forecast.cache.misses", 1)

	resp := ForecastResponse{ModelRevision: snap.Revision, Horizon: horizon}
	if req.Cluster != nil {
		cm := set.Cluster(*req.Cluster)
		if cm == nil {
			writeError(w, http.StatusBadRequest, "cluster %d outside [0, %d)", *req.Cluster, set.K())
			return
		}
		resp.Cluster = cm.Cluster
		resp.Members = cm.Members
		resp.BusyHour = cm.BusyHour
		resp.PeakMB = cm.PeakMB
		resp.Forecast = cm.Model.Forecast(horizon)
	} else {
		am := set.Antenna(*req.Antenna)
		if am == nil {
			writeError(w, http.StatusNotFound, "antenna %d was not sampled by the forecast stage", *req.Antenna)
			return
		}
		id := am.Antenna
		resp.Antenna = &id
		resp.Cluster = am.Cluster
		resp.BusyHour = am.BusyHour
		resp.PeakMB = am.PeakMB
		resp.Forecast = am.Model.Forecast(horizon)
	}
	s.fcCache.put(key, resp)
	obs.ObserveMS("serve.forecast.latency.ms", msSince(startAt))
	writeJSON(w, http.StatusOK, resp)
}

// PlanRequest is the /v1/plan body: a what-if scenario scored against the
// served revision's forecast models.
type PlanRequest struct {
	// Horizon is the scoring window in hours (default 24, max 336).
	Horizon int `json:"horizon,omitempty"`
	// Actions edit the scenario before scoring (see forecast.Action).
	Actions []forecast.Action `json:"actions"`
}

// PlanResponse carries the scored scenario.
type PlanResponse struct {
	ModelRevision uint64               `json:"model_revision"`
	Plan          *forecast.PlanResult `json:"plan"`
}

// handlePlan scores a capacity-planning scenario against the served
// snapshot's forecast set. Scenarios are arbitrary action lists, so plan
// responses are computed fresh per request (no cache); the underlying
// per-cluster forecasts they aggregate are the same models /v1/forecast
// serves under this revision.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	startAt := time.Now()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a plan request")
		return
	}
	var req PlanRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	s.planReqs.Add(1)
	obs.Add("serve.plan.requests", 1)

	snap := s.snap.Load()
	set := snap.Forecasts
	if set == nil {
		writeError(w, http.StatusServiceUnavailable, "served snapshot carries no forecast models")
		return
	}
	horizon := req.Horizon
	if horizon == 0 {
		horizon = defaultForecastHorizon
	}
	if horizon < 1 || horizon > maxForecastHorizon {
		writeError(w, http.StatusBadRequest, "horizon %d outside [1, %d]", horizon, maxForecastHorizon)
		return
	}
	plan, err := set.Plan(req.Actions, horizon)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	obs.ObserveMS("serve.plan.latency.ms", msSince(startAt))
	writeJSON(w, http.StatusOK, PlanResponse{ModelRevision: snap.Revision, Plan: plan})
}
