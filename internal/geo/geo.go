// Package geo provides the light-weight geographic primitives needed by the
// reproduction: WGS-84 points, haversine distances, and a uniform-grid
// spatial index used to find the outdoor antennas "within a 1 km radius" of
// each indoor antenna (Section 5.3 of the paper).
package geo

import "math"

// EarthRadiusMeters is the mean Earth radius used by the haversine formula.
const EarthRadiusMeters = 6_371_000.0

// Point is a WGS-84 coordinate in degrees.
type Point struct {
	Lat, Lon float64
}

// DistanceMeters returns the great-circle (haversine) distance between two
// points in meters.
func DistanceMeters(a, b Point) float64 {
	const deg2rad = math.Pi / 180
	lat1, lat2 := a.Lat*deg2rad, b.Lat*deg2rad
	dLat := (b.Lat - a.Lat) * deg2rad
	dLon := (b.Lon - a.Lon) * deg2rad
	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(h)))
}

// Index is a uniform-grid spatial index over a set of points supporting
// radius queries. Build once with NewIndex, then query repeatedly.
type Index struct {
	cellDeg float64
	cells   map[[2]int][]int
	points  []Point
}

// NewIndex builds an index over points using grid cells of approximately
// cellMeters on a side (converted at mid-French latitude, which is accurate
// to a few percent across metropolitan France — more than enough for a
// 1 km neighbourhood query).
func NewIndex(points []Point, cellMeters float64) *Index {
	if cellMeters <= 0 {
		//lint:allow nopanic cell size is a compiled-in configuration constant
		panic("geo: non-positive cell size")
	}
	// 1 degree of latitude ≈ 111.32 km.
	cellDeg := cellMeters / 111_320.0
	idx := &Index{
		cellDeg: cellDeg,
		cells:   make(map[[2]int][]int),
		points:  points,
	}
	for i, p := range points {
		key := idx.cellOf(p)
		idx.cells[key] = append(idx.cells[key], i)
	}
	return idx
}

func (idx *Index) cellOf(p Point) [2]int {
	return [2]int{
		int(math.Floor(p.Lat / idx.cellDeg)),
		int(math.Floor(p.Lon / idx.cellDeg)),
	}
}

// Within returns the indices of all indexed points within radiusMeters of
// the center, in ascending index order.
func (idx *Index) Within(center Point, radiusMeters float64) []int {
	if radiusMeters < 0 {
		return nil
	}
	// Longitude degrees shrink with cos(lat); inflate the search ring
	// accordingly so no candidate cell is missed.
	latCells := int(math.Ceil(radiusMeters/111_320.0/idx.cellDeg)) + 1
	cosLat := math.Cos(center.Lat * math.Pi / 180)
	if cosLat < 0.1 {
		cosLat = 0.1
	}
	lonCells := int(math.Ceil(radiusMeters/(111_320.0*cosLat)/idx.cellDeg)) + 1

	centerCell := idx.cellOf(center)
	var out []int
	for dLat := -latCells; dLat <= latCells; dLat++ {
		for dLon := -lonCells; dLon <= lonCells; dLon++ {
			key := [2]int{centerCell[0] + dLat, centerCell[1] + dLon}
			for _, i := range idx.cells[key] {
				if DistanceMeters(center, idx.points[i]) <= radiusMeters {
					out = append(out, i)
				}
			}
		}
	}
	// Cells iterate in deterministic dLat/dLon order but indices within a
	// cell were appended in input order; sort for a stable contract.
	insertionSort(out)
	return out
}

func insertionSort(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Len returns the number of indexed points.
func (idx *Index) Len() int { return len(idx.points) }
