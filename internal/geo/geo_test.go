package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// Paris city hall and the Eiffel tower are roughly 4.4 km apart.
var (
	hotelDeVille = Point{Lat: 48.8566, Lon: 2.3522}
	eiffel       = Point{Lat: 48.8584, Lon: 2.2945}
)

func TestDistanceKnownPair(t *testing.T) {
	d := DistanceMeters(hotelDeVille, eiffel)
	if d < 4000 || d > 4600 {
		t.Fatalf("Paris landmark distance %v m, expected ~4.2-4.3 km", d)
	}
}

func TestDistanceZero(t *testing.T) {
	if DistanceMeters(eiffel, eiffel) != 0 {
		t.Fatal("distance to self should be 0")
	}
}

func TestDistanceSymmetry(t *testing.T) {
	a := Point{48.1, 2.9}
	b := Point{43.5, 5.2}
	if math.Abs(DistanceMeters(a, b)-DistanceMeters(b, a)) > 1e-9 {
		t.Fatal("distance must be symmetric")
	}
}

func TestDistanceOneDegreeLatitude(t *testing.T) {
	a := Point{45, 3}
	b := Point{46, 3}
	d := DistanceMeters(a, b)
	if math.Abs(d-111_195) > 500 {
		t.Fatalf("1 degree latitude = %v m, want ~111.2 km", d)
	}
}

func TestIndexWithinRadius(t *testing.T) {
	points := []Point{
		{48.8566, 2.3522}, // center
		{48.8600, 2.3522}, // ~378 m north
		{48.8566, 2.3700}, // ~1.3 km east
		{48.9500, 2.3522}, // ~10 km north
		{43.2965, 5.3698}, // Marseille
	}
	idx := NewIndex(points, 500)
	got := idx.Within(points[0], 1000)
	want := []int{0, 1}
	if len(got) != len(want) {
		t.Fatalf("Within(1km) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Within(1km) = %v, want %v", got, want)
		}
	}
}

func TestIndexLargerRadius(t *testing.T) {
	points := []Point{
		{48.8566, 2.3522},
		{48.8600, 2.3522},
		{48.8566, 2.3700},
		{48.9500, 2.3522},
	}
	idx := NewIndex(points, 500)
	got := idx.Within(points[0], 2000)
	if len(got) != 3 {
		t.Fatalf("Within(2km) = %v, want 3 points", got)
	}
}

func TestIndexNegativeRadius(t *testing.T) {
	idx := NewIndex([]Point{{48, 2}}, 500)
	if got := idx.Within(Point{48, 2}, -1); got != nil {
		t.Fatalf("negative radius should return nil, got %v", got)
	}
}

func TestIndexEmpty(t *testing.T) {
	idx := NewIndex(nil, 500)
	if idx.Len() != 0 {
		t.Fatal("empty index length")
	}
	if got := idx.Within(Point{48, 2}, 1000); len(got) != 0 {
		t.Fatalf("empty index query returned %v", got)
	}
}

func TestIndexCellSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewIndex(nil, 0)
}

// Property: the grid index returns exactly the same set as a brute-force
// scan, for random point clouds around France.
func TestIndexMatchesBruteForceProperty(t *testing.T) {
	f := func(seeds []uint16, centerSel uint8) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 60 {
			seeds = seeds[:60]
		}
		points := make([]Point, len(seeds))
		for i, s := range seeds {
			points[i] = Point{
				Lat: 47 + float64(s%1000)/250.0, // 47..51
				Lon: 1 + float64(s/1000)/16.0,   // 1..5
			}
		}
		center := points[int(centerSel)%len(points)]
		const radius = 25_000
		idx := NewIndex(points, 5000)
		got := idx.Within(center, radius)
		var want []int
		for i, p := range points {
			if DistanceMeters(center, p) <= radius {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWithin1km(b *testing.B) {
	points := make([]Point, 20000)
	for i := range points {
		points[i] = Point{
			Lat: 43 + float64(i%500)/60.0,
			Lon: 0 + float64(i/500)/12.0,
		}
	}
	idx := NewIndex(points, 1000)
	center := Point{Lat: 46, Lon: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = idx.Within(center, 1000)
	}
}
