package lint

import (
	"go/ast"
)

// PoolOnlyGoroutines enforces the pipeline's fan-out contract: every
// goroutine in library code is spawned by internal/pipe (the bounded
// worker pool and the Tasks tracker), never by a raw go statement. Raw go
// statements hide concurrency from the scheduler's observability, escape
// the pool's backpressure, and — because they are not awaited anywhere —
// are the classic source of leaked goroutines on error paths.
//
// go statements are permitted inside internal/pipe itself (that is the
// spawn point the contract funnels through) and in cmd/ main packages,
// which own their process lifecycle. Everything else must route work
// through pipe.Pool.ForEach / pipe.Tasks.Go or carry a //lint:allow with a
// reason.
var PoolOnlyGoroutines = &Analyzer{
	Name: "poolgo",
	Doc:  "goroutines must be spawned through internal/pipe, not raw go statements",
	Run:  runPoolOnlyGoroutines,
}

func runPoolOnlyGoroutines(pass *Pass) {
	if pass.PkgPath == pass.ModulePath+"/internal/pipe" || underModule(pass.PkgPath, pass.ModulePath, "cmd") {
		return
	}
	inspectAll(pass, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			pass.Reportf(g.Pos(), "raw go statement outside internal/pipe; use pipe.Pool.ForEach or pipe.Tasks.Go")
		}
		return true
	})
}
