package lint

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/pipe"
)

// Package is one package of the module under analysis.
type Package struct {
	// PkgPath is the import path ("repro/internal/mat"; the module path
	// itself for the root package).
	PkgPath string
	// Dir is the absolute directory holding the sources.
	Dir string
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Types is the checked package object. It is nil until the package is
	// type-checked: the incremental runner only checks packages whose
	// analysis cannot be replayed from cache (and their dependencies).
	Types *types.Package
	// Info is the type-checker's expression/object table for Files.
	Info *types.Info
	// TypeErrors collects type-checker diagnostics. Analysis proceeds on
	// the partial information, mirroring go vet's tolerance.
	TypeErrors []error
	// SrcHash is a hex sha256 over the package's file names and contents,
	// the package-local part of the incremental cache key.
	SrcHash string

	imports []string // module-internal imports, for topo ordering
	level   int      // 1 + max dependency level; packages of equal level check in parallel
}

// Imports returns the package's module-internal imports.
func (p *Package) Imports() []string { return p.imports }

// Module is a loaded Go module: every package discovered, parsed and
// hashed, in dependency order, with type-checking available for all
// packages (LoadModule) or on demand for a subset (the incremental
// runner).
type Module struct {
	// Dir is the absolute module root (where go.mod lives).
	Dir string
	// Path is the module path declared in go.mod.
	Path string
	// Fset resolves positions for every parsed file.
	Fset *token.FileSet
	// Pkgs lists the packages in topological (dependencies-first) order.
	Pkgs []*Package

	byPath map[string]*Package
	std    types.Importer
}

// PackageByPath returns the loaded package with the given import path.
func (m *Module) PackageByPath(path string) *Package { return m.byPath[path] }

// skipDirs are directory names never descended into during discovery.
// testdata holds lint fixtures that intentionally violate the contracts.
var skipDirs = map[string]bool{
	"testdata":  true,
	"vendor":    true,
	".git":      true,
	".github":   true,
	"artifacts": true,
}

// LoadModule discovers, parses and type-checks every package under the
// module rooted at dir, using only the standard library: module-internal
// imports resolve against the packages being checked, and everything else
// (the standard library) is type-checked from $GOROOT source via the
// go/importer "source" compiler, so no export data or external tooling is
// needed. Independent packages type-check in parallel on the shared
// internal/pipe pool.
func LoadModule(dir string) (*Module, error) {
	mod, err := scanModule(dir)
	if err != nil {
		return nil, err
	}
	mod.CheckPackages(nil, pipe.Shared())
	return mod, nil
}

// scanModule is the cheap phase of a load: discover package directories,
// parse sources, hash contents, and topo-sort — everything the incremental
// runner needs to decide which packages must be re-analyzed, without
// paying for any type-checking.
func scanModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: resolve module dir: %w", err)
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	mod := &Module{Dir: abs, Path: modPath, Fset: token.NewFileSet(), byPath: map[string]*Package{}}

	// Discover package directories.
	var pkgDirs []string
	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != abs && (skipDirs[name] || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				pkgDirs = append(pkgDirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: walk module: %w", err)
	}
	sort.Strings(pkgDirs)

	// Parse every package and collect its module-internal imports.
	for _, pdir := range pkgDirs {
		rel, err := filepath.Rel(abs, pdir)
		if err != nil {
			return nil, fmt.Errorf("lint: relativize %s: %w", pdir, err)
		}
		pkgPath := modPath
		if rel != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := parsePackage(mod.Fset, pdir, pkgPath, modPath)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no buildable files
		}
		mod.byPath[pkgPath] = pkg
	}

	// Topologically sort by module-internal imports so dependencies are
	// checked before their importers, and assign parallelism levels: a
	// package's level is one past its deepest module-internal dependency,
	// so packages of equal level are independent and check concurrently.
	order, err := topoSort(mod.byPath)
	if err != nil {
		return nil, err
	}
	for _, pkg := range order {
		pkg.level = 1
		for _, dep := range pkg.imports {
			if d := mod.byPath[dep]; d != nil && d.level >= pkg.level {
				pkg.level = d.level + 1
			}
		}
		mod.Pkgs = append(mod.Pkgs, pkg)
	}

	// The go/importer source importer is not safe for concurrent use;
	// serialize it so packages can type-check in parallel around it.
	mod.std = &lockedImporter{std: importer.ForCompiler(mod.Fset, "source", nil)}
	return mod, nil
}

// CheckPackages type-checks the packages whose import paths are in need
// (nil means every package), in dependency waves: packages of equal
// topological level are independent and run in parallel on pool. The
// caller is responsible for need being closed under module-internal
// dependencies — importing an unchecked internal package is an error
// recorded in TypeErrors. Already-checked packages are skipped, so the
// call is idempotent.
func (m *Module) CheckPackages(need map[string]bool, pool *pipe.Pool) {
	if pool == nil {
		pool = pipe.Shared()
	}
	waves := map[int][]*Package{}
	maxLevel := 0
	for _, pkg := range m.Pkgs {
		if pkg.Types != nil || (need != nil && !need[pkg.PkgPath]) {
			continue
		}
		waves[pkg.level] = append(waves[pkg.level], pkg)
		if pkg.level > maxLevel {
			maxLevel = pkg.level
		}
	}
	for level := 1; level <= maxLevel; level++ {
		wave := waves[level]
		if len(wave) == 0 {
			continue
		}
		// The wave barrier makes dependency *types.Package and fact reads
		// race-free: everything a wave imports was completed by an earlier
		// wave. Background context: a lint run is not cancellable mid-wave.
		_ = pool.ForEach(context.Background(), len(wave), func(i int) {
			checkPackage(m, wave[i], m.std)
		})
	}
}

// AddPackage registers an externally checked package (a test fixture
// compiled by CheckPackageDir) under its synthetic import path, so other
// fixture packages can import it and cross-package facts flow to it.
func (m *Module) AddPackage(pkg *Package) { m.byPath[pkg.PkgPath] = pkg }

// CheckPackageDir parses and type-checks the sources in dir as though the
// package had the import path pkgPath, resolving module-internal imports
// against the already-loaded module. The package is not added to the
// module (use AddPackage for fixtures that other fixtures import). The
// fixture tests use this to compile testdata packages — which the
// discovery walk deliberately skips — under synthetic paths like
// "repro/internal/fixture", so the path-sensitive analyzers see them as
// library or command packages at will.
func (m *Module) CheckPackageDir(dir, pkgPath string) (*Package, error) {
	pkg, err := parsePackage(m.Fset, dir, pkgPath, m.Path)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	checkPackage(m, pkg, m.std)
	return pkg, nil
}

// parsePackage parses the non-test .go files of one directory and hashes
// their contents into Package.SrcHash. Files whose package clause does not
// match the directory majority (e.g. a stray main) are grouped by the
// first file's package name; directories with no parseable files yield
// nil.
func parsePackage(fset *token.FileSet, dir, pkgPath, modPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: read %s: %w", dir, err)
	}
	pkg := &Package{PkgPath: pkgPath, Dir: dir}
	seen := map[string]bool{}
	hash := sha256.New()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, fmt.Errorf("lint: read %s: %w", full, err)
		}
		sum := sha256.Sum256(src)
		fmt.Fprintf(hash, "%s %x\n", name, sum)
		f, err := parser.ParseFile(fset, full, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", full, err)
		}
		pkg.Files = append(pkg.Files, f)
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if (path == modPath || strings.HasPrefix(path, modPath+"/")) && !seen[path] {
				seen[path] = true
				pkg.imports = append(pkg.imports, path)
			}
		}
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	sort.Strings(pkg.imports)
	pkg.SrcHash = hex.EncodeToString(hash.Sum(nil))
	return pkg, nil
}

// topoSort orders packages dependencies-first; a module-internal import
// cycle is an error (the Go compiler would reject it too).
func topoSort(pkgs map[string]*Package) ([]*Package, error) {
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var order []*Package
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = visiting
		pkg := pkgs[path]
		if pkg != nil {
			for _, dep := range pkg.imports {
				if _, ok := pkgs[dep]; !ok {
					continue // resolved by the driver as a hard error later
				}
				if err := visit(dep); err != nil {
					return err
				}
			}
			order = append(order, pkg)
		}
		state[path] = done
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// lockedImporter serializes access to the go/importer source importer,
// which is not safe for concurrent use; the per-package type checks
// running in parallel around it are.
type lockedImporter struct {
	mu  sync.Mutex
	std types.Importer
}

func (li *lockedImporter) Import(path string) (*types.Package, error) {
	li.mu.Lock()
	defer li.mu.Unlock()
	return li.std.Import(path)
}

// moduleImporter resolves module-internal imports from the already-checked
// packages and defers everything else to the source importer.
type moduleImporter struct {
	mod *Module
	std types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := mi.mod.byPath[path]; ok {
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: %s imported before it was checked", path)
		}
		return pkg.Types, nil
	}
	return mi.std.Import(path)
}

// checkPackage runs go/types over one parsed package, tolerating type
// errors the way go vet does: diagnostics are collected and analysis
// proceeds on the partial Info.
func checkPackage(mod *Module, pkg *Package, std types.Importer) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: &moduleImporter{mod: mod, std: std},
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(pkg.PkgPath, mod.Fset, pkg.Files, info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: read go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			path := strings.TrimSpace(rest)
			path = strings.Trim(path, `"`)
			if path != "" {
				return path, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module path in %s", gomod)
}
