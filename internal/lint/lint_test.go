package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The whole real module is loaded once and shared: srcimporter makes the
// load the expensive part (~2s), and every test here only reads from it.
var (
	moduleOnce sync.Once
	moduleVal  *Module
	moduleErr  error
)

func loadTestModule(t *testing.T) *Module {
	t.Helper()
	moduleOnce.Do(func() {
		moduleVal, moduleErr = LoadModule(filepath.Join("..", ".."))
	})
	if moduleErr != nil {
		t.Fatalf("LoadModule: %v", moduleErr)
	}
	return moduleVal
}

// baseline is the real module analyzed once with the full v2 pipeline:
// per-package analysis into a shared fact store, finish passes over the
// merged facts, and the stale-suppression scan. TestModuleIsClean asserts
// its findings are empty, and the fixture tests clone its fact store so
// cross-package fixtures see the real serve/obs facts.
type baseline struct {
	store    *FactStore
	findings []Finding
}

var (
	baselineOnce sync.Once
	baselineVal  *baseline
)

func moduleBaseline(t *testing.T) *baseline {
	t.Helper()
	mod := loadTestModule(t)
	baselineOnce.Do(func() {
		store := NewFactStore()
		allows := allowIndex{}
		var all []Finding
		for _, pkg := range mod.Pkgs {
			fs, a := RunPackage(mod, pkg, Analyzers, store)
			all = append(all, fs...)
			allows.merge(a)
		}
		ran := map[string]bool{}
		for _, a := range Analyzers {
			ran[a.Name] = true
		}
		for _, a := range Analyzers {
			if a.Finish != nil {
				a.Finish(&FinishPass{Analyzer: a, ModulePath: mod.Path, facts: store, allows: allows, findings: &all})
			}
		}
		staleAllowFindings(allows, ran, &all)
		SortFindings(all)
		baselineVal = &baseline{store: store, findings: all}
	})
	return baselineVal
}

// checkFixture compiles the fixture directory under the synthetic import
// path and runs the analyzer suite package-locally (no finish passes, no
// stale scan), failing on any type error: a fixture that does not compile
// proves nothing.
func checkFixture(t *testing.T, name, pkgPath string) ([]Finding, *Package) {
	t.Helper()
	mod := loadTestModule(t)
	dir := filepath.Join("testdata", "src", name)
	pkg, err := mod.CheckPackageDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("CheckPackageDir(%s): %v", dir, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s: type error: %v", name, terr)
	}
	findings, _ := RunPackage(mod, pkg, Analyzers, NewFactStore())
	return findings, pkg
}

// fixturePipeline runs a fixture through the full v2 pipeline: dependency
// fixtures are compiled, registered and analyzed first so their facts
// exist, then the fixture itself is analyzed against a clone of the real
// module's fact store, the finish passes and stale scan run, and the
// findings are filtered down to the fixture's own files (the finish
// passes see module-wide facts but the module itself is clean).
func fixturePipeline(t *testing.T, name, pkgPath string, deps [][2]string) ([]Finding, *Package) {
	t.Helper()
	mod := loadTestModule(t)
	store := moduleBaseline(t).store.Clone()
	for _, dep := range deps {
		depDir := filepath.Join("testdata", "src", dep[0])
		depPkg, err := mod.CheckPackageDir(depDir, dep[1])
		if err != nil {
			t.Fatalf("CheckPackageDir(%s): %v", depDir, err)
		}
		for _, terr := range depPkg.TypeErrors {
			t.Errorf("dep fixture %s: type error: %v", dep[0], terr)
		}
		mod.AddPackage(depPkg)
		RunPackage(mod, depPkg, Analyzers, store)
	}
	dir := filepath.Join("testdata", "src", name)
	pkg, err := mod.CheckPackageDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("CheckPackageDir(%s): %v", dir, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s: type error: %v", name, terr)
	}
	findings, allows := RunPackage(mod, pkg, Analyzers, store)
	for _, a := range Analyzers {
		if a.Finish != nil {
			a.Finish(&FinishPass{Analyzer: a, ModulePath: mod.Path, facts: store, allows: allows, findings: &findings})
		}
	}
	ran := map[string]bool{}
	for _, a := range Analyzers {
		ran[a.Name] = true
	}
	staleAllowFindings(allows, ran, &findings)
	prefix := dir + string(os.PathSeparator)
	var kept []Finding
	for _, f := range findings {
		if strings.HasPrefix(f.Pos.Filename, prefix) {
			kept = append(kept, f)
		}
	}
	SortFindings(kept)
	return kept, pkg
}

// wantMarkers extracts the fixture's "// want <analyzer>..." comments as a
// line → expected-analyzers map.
func wantMarkers(mod *Module, pkg *Package) map[int][]string {
	wants := map[int][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				line := mod.Fset.Position(c.Pos()).Line
				wants[line] = append(wants[line], strings.Fields(rest)...)
			}
		}
	}
	return wants
}

// matchWants compares actual findings against the fixture's markers, in
// both directions: every marker must fire, and nothing else may.
func matchWants(t *testing.T, mod *Module, pkg *Package, findings []Finding) {
	t.Helper()
	wants := wantMarkers(mod, pkg)
	got := map[int][]string{}
	for _, f := range findings {
		got[f.Pos.Line] = append(got[f.Pos.Line], f.Analyzer)
	}
	for line, analyzers := range wants {
		sort.Strings(analyzers)
		g := append([]string(nil), got[line]...)
		sort.Strings(g)
		if fmt.Sprint(analyzers) != fmt.Sprint(g) {
			t.Errorf("line %d: want findings %v, got %v", line, analyzers, g)
		}
	}
	for line, analyzers := range got {
		if _, ok := wants[line]; !ok {
			t.Errorf("line %d: unexpected findings %v", line, analyzers)
		}
	}
}

// Each per-package analyzer's fixture is checked under an internal/ path
// so the path-sensitive rules treat it as library code; the markers pin
// both the positive cases and (by absence) the negative ones.
func TestFixtures(t *testing.T) {
	for _, name := range []string{"poolgo", "refreshgo", "rngdet", "nopanic", "errwrap", "floateq"} {
		t.Run(name, func(t *testing.T) {
			mod := loadTestModule(t)
			findings, pkg := checkFixture(t, name, mod.Path+"/internal/"+name+"fixture")
			matchWants(t, mod, pkg, findings)
		})
	}
}

// The cross-package dataflow fixtures run through the full pipeline:
// facts from the real serve/obs packages (and, for ctxguard, a dependency
// fixture analyzed first) flow into the fixture's analysis, and the
// finish passes join module-wide facts. The ctxguard fixture sits under a
// synthetic internal/serve/ path so the trio rules apply to it.
func TestDataflowFixtures(t *testing.T) {
	cases := []struct {
		name string
		path string // appended to the module path
		deps [][2]string
	}{
		{"snapfreeze", "/internal/snapfreezefixture", nil},
		{"ctxguard", "/internal/serve/ctxguardfixture", [][2]string{{"ctxguarddep", "/internal/ctxguarddepfixture"}}},
		{"ctxguardanalysis", "/internal/analysis/ctxguardanalysisfixture", nil},
		{"lockatomic", "/internal/lockatomicfixture", nil},
		{"metricreg", "/internal/metricregfixture", nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mod := loadTestModule(t)
			deps := make([][2]string, len(c.deps))
			for i, d := range c.deps {
				deps[i] = [2]string{d[0], mod.Path + d[1]}
			}
			findings, pkg := fixturePipeline(t, c.name, mod.Path+c.path, deps)
			matchWants(t, mod, pkg, findings)
		})
	}
}

// A suppression that fires is used; one with nothing beneath it is stale;
// one naming a nonexistent analyzer is a typo. The latter two surface as
// findings of the pseudo-analyzer "lint". Want markers cannot live inside
// allow comments, so this test asserts the findings directly.
func TestStaleAllow(t *testing.T) {
	mod := loadTestModule(t)
	findings, pkg := fixturePipeline(t, "allowstale", mod.Path+"/internal/allowstalefixture", nil)
	lineOf := func(substr string) int {
		t.Helper()
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if strings.Contains(c.Text, substr) {
						return mod.Fset.Position(c.Pos()).Line
					}
				}
			}
		}
		t.Fatalf("fixture comment %q not found", substr)
		return 0
	}
	want := []struct {
		line    int
		message string
	}{
		{lineOf("nothing here panics"), "stale suppression"},
		{lineOf("no analyzer has this name"), "unknown analyzer"},
	}
	if len(findings) != len(want) {
		t.Fatalf("want %d lint findings, got %d:\n%v", len(want), len(findings), findings)
	}
	sort.Slice(want, func(i, j int) bool { return want[i].line < want[j].line })
	for i, w := range want {
		f := findings[i]
		if f.Analyzer != "lint" || f.Pos.Line != w.line || !strings.Contains(f.Message, w.message) {
			t.Errorf("finding %d = %s, want lint %q at line %d", i, f, w.message, w.line)
		}
	}
}

// The poolgo and nopanic contracts do not apply to cmd/ main packages:
// the same fixtures checked under a cmd/ path must come back clean.
func TestCmdPackagesAreExempt(t *testing.T) {
	mod := loadTestModule(t)
	for _, name := range []string{"poolgo", "nopanic"} {
		findings, _ := checkFixture(t, name, mod.Path+"/cmd/"+name+"fixture")
		for _, f := range findings {
			t.Errorf("fixture %s under cmd/: unexpected finding: %s", name, f)
		}
	}
}

// A //lint:allow without a reason must not suppress anything and is itself
// reported by the pseudo-analyzer "lint".
func TestMalformedAnnotation(t *testing.T) {
	mod := loadTestModule(t)
	findings, _ := checkFixture(t, "allowbad", mod.Path+"/internal/allowbadfixture")
	var analyzers []string
	for _, f := range findings {
		analyzers = append(analyzers, f.Analyzer)
	}
	sort.Strings(analyzers)
	if fmt.Sprint(analyzers) != fmt.Sprint([]string{"lint", "nopanic"}) {
		t.Fatalf("want [lint nopanic] findings, got %v:\n%v", analyzers, findings)
	}
}

// The module's own source must lint clean with the full v2 suite — facts,
// finish passes and stale-suppression scan included. This is the
// tree-wide contract check that cmd/icnvet enforces in CI, run here so
// `go test` alone catches a regression.
func TestModuleIsClean(t *testing.T) {
	mod := loadTestModule(t)
	for _, pkg := range mod.Pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.PkgPath, terr)
		}
	}
	for _, f := range moduleBaseline(t).findings {
		t.Errorf("module not lint-clean: %s", f)
	}
}

func TestModuleLoadShape(t *testing.T) {
	mod := loadTestModule(t)
	if mod.Path != "repro" {
		t.Fatalf("module path = %q, want repro", mod.Path)
	}
	for _, path := range []string{"repro/internal/pipe", "repro/internal/rng", "repro/internal/mat", "repro/cmd/icnvet"} {
		if mod.PackageByPath(path) == nil {
			t.Errorf("package %s not loaded", path)
		}
	}
	// Dependencies-first ordering: pipe must be checked before analysis,
	// which imports it.
	idx := map[string]int{}
	for i, pkg := range mod.Pkgs {
		idx[pkg.PkgPath] = i
	}
	if idx["repro/internal/pipe"] > idx["repro/internal/analysis"] {
		t.Errorf("pipe checked after analysis: topo order broken")
	}
	// Levels respect dependencies: every module-internal import sits on a
	// strictly lower level, which is what makes the parallel waves safe.
	for _, pkg := range mod.Pkgs {
		for _, dep := range pkg.Imports() {
			if d := mod.PackageByPath(dep); d != nil && d.level >= pkg.level {
				t.Errorf("%s (level %d) imports %s (level %d): wave ordering broken", pkg.PkgPath, pkg.level, dep, d.level)
			}
		}
	}
}

// The incremental cache must replay findings and facts bit-identically,
// and invalidate exactly the packages whose content hash changed (plus
// their importers). A tiny throwaway module keeps the test fast: its
// packages import nothing, so no stdlib type-checking happens.
func TestIncrementalCache(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		full := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tiny\n\ngo 1.22\n")
	write("internal/a/a.go", `package a

func Spawn(f func()) {
	go f()
}
`)
	write("internal/b/b.go", `package b

import "tiny/internal/a"

func Use() {
	a.Spawn(func() {})
	//lint:allow rngdet deliberately stale suppression for the cache test
	_ = 1
}
`)
	opts := Options{Dir: dir, Cache: true, CacheDir: filepath.Join(dir, "cache")}

	run := func(label string, wantCached int) *Result {
		t.Helper()
		res, err := RunModule(opts)
		if err != nil {
			t.Fatalf("%s: RunModule: %v", label, err)
		}
		if res.Timing.Cached != wantCached {
			t.Errorf("%s: %d/%d packages cached, want %d", label, res.Timing.Cached, res.Timing.Packages, wantCached)
		}
		var analyzers []string
		for _, f := range res.Findings {
			analyzers = append(analyzers, f.Analyzer)
		}
		sort.Strings(analyzers)
		// One raw go statement, one stale suppression.
		if fmt.Sprint(analyzers) != fmt.Sprint([]string{"lint", "poolgo"}) {
			t.Errorf("%s: want [lint poolgo] findings, got %v:\n%v", label, analyzers, res.Findings)
		}
		return res
	}

	cold := run("cold", 0)
	warm := run("warm", 2)
	if !reflect.DeepEqual(cold.Findings, warm.Findings) {
		t.Errorf("cached replay diverged:\ncold: %v\nwarm: %v", cold.Findings, warm.Findings)
	}
	if !reflect.DeepEqual(cold.Allows, warm.Allows) {
		t.Errorf("cached allow records diverged:\ncold: %v\nwarm: %v", cold.Allows, warm.Allows)
	}

	// Touching b invalidates only b: a replays from cache.
	write("internal/b/b.go", `package b

import "tiny/internal/a"

func Use() {
	a.Spawn(func() {})
	//lint:allow rngdet deliberately stale suppression for the cache test
	_ = 2
}
`)
	touched := run("touched", 1)
	if !reflect.DeepEqual(cold.Findings, touched.Findings) {
		t.Errorf("partial rebuild diverged:\ncold: %v\ntouched: %v", cold.Findings, touched.Findings)
	}
}

func TestByName(t *testing.T) {
	got, err := ByName("nopanic, errwrap")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "nopanic" || got[1].Name != "errwrap" {
		t.Fatalf("ByName returned %v", got)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
	if _, err := ByName("nopanic,nopanic"); err == nil {
		t.Fatal("ByName accepted a duplicate analyzer, which would double-report")
	}
}

func TestCountWrapVerbs(t *testing.T) {
	cases := []struct {
		format string
		want   int
	}{
		{"plain", 0},
		{"%w", 1},
		{"%v and %w", 1},
		{"%w then %w", 2},
		{"100%% %w", 1},
		{"%%w", 0},
		{"%+w", 1},
		{"%[1]w", 1},
	}
	for _, c := range cases {
		if got := countWrapVerbs(c.format); got != c.want {
			t.Errorf("countWrapVerbs(%q) = %d, want %d", c.format, got, c.want)
		}
	}
}

func TestAllowAdjacency(t *testing.T) {
	rec := &AllowRecord{Pos: token.Position{Filename: "f.go", Line: 10}, Analyzer: "nopanic", Reason: "test"}
	ai := allowIndex{
		allowKey{"f.go", 10, "nopanic"}: rec,
	}
	for _, c := range []struct {
		line int
		want bool
	}{
		{10, true},  // same line
		{11, true},  // line below the annotation
		{12, false}, // two lines down: not covered
		{9, false},  // line above: not covered
	} {
		pos := token.Position{Filename: "f.go", Line: c.line}
		if got := ai.allowed("nopanic", pos); got != c.want {
			t.Errorf("allowed(line %d) = %v, want %v", c.line, got, c.want)
		}
	}
	if !rec.Used {
		t.Error("suppressing a finding did not mark the record used")
	}
	if ai.allowed("errwrap", token.Position{Filename: "f.go", Line: 10}) {
		t.Error("annotation for nopanic suppressed errwrap")
	}
}
