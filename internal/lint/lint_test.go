package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The whole real module is loaded once and shared: srcimporter makes the
// load the expensive part (~2s), and every test here only reads from it.
var (
	moduleOnce sync.Once
	moduleVal  *Module
	moduleErr  error
)

func loadTestModule(t *testing.T) *Module {
	t.Helper()
	moduleOnce.Do(func() {
		moduleVal, moduleErr = LoadModule(filepath.Join("..", ".."))
	})
	if moduleErr != nil {
		t.Fatalf("LoadModule: %v", moduleErr)
	}
	return moduleVal
}

// checkFixture compiles the fixture directory under the synthetic import
// path and runs the full analyzer suite, failing on any type error: a
// fixture that does not compile proves nothing.
func checkFixture(t *testing.T, name, pkgPath string) ([]Finding, *Package) {
	t.Helper()
	mod := loadTestModule(t)
	dir := filepath.Join("testdata", "src", name)
	pkg, err := mod.CheckPackageDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("CheckPackageDir(%s): %v", dir, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s: type error: %v", name, terr)
	}
	return RunPackage(mod, pkg, Analyzers), pkg
}

// wantMarkers extracts the fixture's "// want <analyzer>..." comments as a
// line → expected-analyzers map.
func wantMarkers(mod *Module, pkg *Package) map[int][]string {
	wants := map[int][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				line := mod.Fset.Position(c.Pos()).Line
				wants[line] = append(wants[line], strings.Fields(rest)...)
			}
		}
	}
	return wants
}

// matchWants compares actual findings against the fixture's markers, in
// both directions: every marker must fire, and nothing else may.
func matchWants(t *testing.T, mod *Module, pkg *Package, findings []Finding) {
	t.Helper()
	wants := wantMarkers(mod, pkg)
	got := map[int][]string{}
	for _, f := range findings {
		got[f.Pos.Line] = append(got[f.Pos.Line], f.Analyzer)
	}
	for line, analyzers := range wants {
		sort.Strings(analyzers)
		g := append([]string(nil), got[line]...)
		sort.Strings(g)
		if fmt.Sprint(analyzers) != fmt.Sprint(g) {
			t.Errorf("line %d: want findings %v, got %v", line, analyzers, g)
		}
	}
	for line, analyzers := range got {
		if _, ok := wants[line]; !ok {
			t.Errorf("line %d: unexpected findings %v", line, analyzers)
		}
	}
}

// Each analyzer's fixture is checked under an internal/ path so the
// path-sensitive rules treat it as library code; the markers pin both the
// positive cases and (by absence) the negative ones.
func TestFixtures(t *testing.T) {
	for _, name := range []string{"poolgo", "refreshgo", "rngdet", "nopanic", "errwrap", "floateq"} {
		t.Run(name, func(t *testing.T) {
			mod := loadTestModule(t)
			findings, pkg := checkFixture(t, name, mod.Path+"/internal/"+name+"fixture")
			matchWants(t, mod, pkg, findings)
		})
	}
}

// The poolgo and nopanic contracts do not apply to cmd/ main packages:
// the same fixtures checked under a cmd/ path must come back clean.
func TestCmdPackagesAreExempt(t *testing.T) {
	mod := loadTestModule(t)
	for _, name := range []string{"poolgo", "nopanic"} {
		findings, _ := checkFixture(t, name, mod.Path+"/cmd/"+name+"fixture")
		for _, f := range findings {
			t.Errorf("fixture %s under cmd/: unexpected finding: %s", name, f)
		}
	}
}

// A //lint:allow without a reason must not suppress anything and is itself
// reported by the pseudo-analyzer "lint".
func TestMalformedAnnotation(t *testing.T) {
	mod := loadTestModule(t)
	findings, _ := checkFixture(t, "allowbad", mod.Path+"/internal/allowbadfixture")
	var analyzers []string
	for _, f := range findings {
		analyzers = append(analyzers, f.Analyzer)
	}
	sort.Strings(analyzers)
	if fmt.Sprint(analyzers) != fmt.Sprint([]string{"lint", "nopanic"}) {
		t.Fatalf("want [lint nopanic] findings, got %v:\n%v", analyzers, findings)
	}
}

// The module's own source must lint clean with the full suite — this is
// the tree-wide contract check that cmd/icnvet enforces in CI, run here so
// `go test` alone catches a regression.
func TestModuleIsClean(t *testing.T) {
	mod := loadTestModule(t)
	for _, pkg := range mod.Pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.PkgPath, terr)
		}
	}
	var all []Finding
	for _, pkg := range mod.Pkgs {
		all = append(all, RunPackage(mod, pkg, Analyzers)...)
	}
	SortFindings(all)
	for _, f := range all {
		t.Errorf("module not lint-clean: %s", f)
	}
}

func TestModuleLoadShape(t *testing.T) {
	mod := loadTestModule(t)
	if mod.Path != "repro" {
		t.Fatalf("module path = %q, want repro", mod.Path)
	}
	for _, path := range []string{"repro/internal/pipe", "repro/internal/rng", "repro/internal/mat", "repro/cmd/icnvet"} {
		if mod.PackageByPath(path) == nil {
			t.Errorf("package %s not loaded", path)
		}
	}
	// Dependencies-first ordering: pipe must be checked before analysis,
	// which imports it.
	idx := map[string]int{}
	for i, pkg := range mod.Pkgs {
		idx[pkg.PkgPath] = i
	}
	if idx["repro/internal/pipe"] > idx["repro/internal/analysis"] {
		t.Errorf("pipe checked after analysis: topo order broken")
	}
}

func TestByName(t *testing.T) {
	got, err := ByName("nopanic, errwrap")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "nopanic" || got[1].Name != "errwrap" {
		t.Fatalf("ByName returned %v", got)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}

func TestCountWrapVerbs(t *testing.T) {
	cases := []struct {
		format string
		want   int
	}{
		{"plain", 0},
		{"%w", 1},
		{"%v and %w", 1},
		{"%w then %w", 2},
		{"100%% %w", 1},
		{"%%w", 0},
		{"%+w", 1},
		{"%[1]w", 1},
	}
	for _, c := range cases {
		if got := countWrapVerbs(c.format); got != c.want {
			t.Errorf("countWrapVerbs(%q) = %d, want %d", c.format, got, c.want)
		}
	}
}

func TestAllowAdjacency(t *testing.T) {
	ai := allowIndex{
		allowKey{"f.go", 10, "nopanic"}: true,
	}
	for _, c := range []struct {
		line int
		want bool
	}{
		{10, true},  // same line
		{11, true},  // line below the annotation
		{12, false}, // two lines down: not covered
		{9, false},  // line above: not covered
	} {
		pos := token.Position{Filename: "f.go", Line: c.line}
		if got := ai.allowed("nopanic", pos); got != c.want {
			t.Errorf("allowed(line %d) = %v, want %v", c.line, got, c.want)
		}
	}
	if ai.allowed("errwrap", token.Position{Filename: "f.go", Line: 10}) {
		t.Error("annotation for nopanic suppressed errwrap")
	}
}
