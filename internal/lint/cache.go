package lint

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// This file implements the incremental analysis cache: one gob file per
// package, keyed by a content hash chaining the suite version, the Go
// toolchain, the analyzer set, the package's own sources and — recursively
// — every module-internal dependency's key. A repeat run over an unchanged
// module replays every package's findings, facts and suppression records
// without type-checking or analyzing anything; editing one package
// invalidates exactly that package and its transitive importers. Cache
// I/O is strictly best-effort: unreadable, stale or undecodable entries
// are misses and write failures are ignored, so a broken cache can slow a
// run down but never change its verdict.

// cacheVersion invalidates every entry when engine semantics change.
const cacheVersion = "icnvet-cache-v1"

// cacheEntry is the serialized analysis result of one package.
type cacheEntry struct {
	// Key is the content-hash key the entry was written under; a mismatch
	// on read means the entry is stale.
	Key string
	// Findings are the package's surviving findings (local analysis only;
	// finish-pass and stale-suppression findings are recomputed each run).
	Findings []Finding
	// Facts are the facts the package's analyzers exported.
	Facts []factRecord
	// Allows are the package's suppression records with the local-phase
	// used state, replayed so module-global stale-suppression accounting
	// sees cached packages too.
	Allows []AllowRecord
}

// registerFactTypes makes every analyzer's fact types known to gob so
// cacheEntry.Facts round-trips. Idempotent per concrete type.
func registerFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		for _, ft := range a.FactTypes {
			gob.Register(ft)
		}
	}
}

// analyzerSignature folds the analyzer set into the cache key: adding,
// removing or renaming an analyzer invalidates everything.
func analyzerSignature(analyzers []*Analyzer) string {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	return strings.Join(names, ",")
}

// computeCacheKeys derives the per-package cache keys, chaining through
// module-internal dependencies so a change anywhere in a package's
// transitive dependency closure changes its key.
func computeCacheKeys(mod *Module, analyzers []*Analyzer) map[string]string {
	sig := analyzerSignature(analyzers)
	keys := map[string]string{}
	var key func(pkg *Package) string
	key = func(pkg *Package) string {
		if k, ok := keys[pkg.PkgPath]; ok {
			return k
		}
		h := sha256.New()
		// pkg.Dir is in the key because cached findings carry absolute
		// positions: relocating the module must invalidate them.
		fmt.Fprintf(h, "%s\n%s\n%s\n%s\n%s\n%s\n", cacheVersion, runtime.Version(), sig, pkg.PkgPath, pkg.Dir, pkg.SrcHash)
		for _, dep := range pkg.imports {
			if d := mod.byPath[dep]; d != nil {
				fmt.Fprintf(h, "%s %s\n", dep, key(d))
			}
		}
		k := hex.EncodeToString(h.Sum(nil))
		keys[pkg.PkgPath] = k
		return k
	}
	for _, pkg := range mod.Pkgs {
		key(pkg)
	}
	return keys
}

// cacheFile maps a package path to its entry file inside the cache dir.
func cacheFile(cacheDir, pkgPath string) string {
	return filepath.Join(cacheDir, strings.ReplaceAll(pkgPath, "/", "__")+".gob")
}

// readCacheEntry loads a package's entry if present and still keyed to
// the current content hash; any failure is a miss.
func readCacheEntry(cacheDir, pkgPath, wantKey string) (*cacheEntry, bool) {
	f, err := os.Open(cacheFile(cacheDir, pkgPath))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	var e cacheEntry
	if err := gob.NewDecoder(f).Decode(&e); err != nil || e.Key != wantKey {
		return nil, false
	}
	return &e, true
}

// writeCacheEntry persists a package's entry, atomically via a temp file
// rename. Failures are deliberately swallowed: the cache is an
// accelerator, never a correctness dependency.
func writeCacheEntry(cacheDir, pkgPath string, e *cacheEntry) {
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return
	}
	dst := cacheFile(cacheDir, pkgPath)
	tmp, err := os.CreateTemp(cacheDir, filepath.Base(dst)+".tmp*")
	if err != nil {
		return
	}
	encErr := gob.NewEncoder(tmp).Encode(e)
	closeErr := tmp.Close()
	if encErr != nil || closeErr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
	}
}
