package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ctxguard enforces cancellable blocking in the serving path: inside
// internal/serve, internal/collect, internal/pipe, internal/shard and
// internal/analysis, every operation
// that can block forever — channel sends/receives outside a select, range
// over a channel, a select with neither a default nor a cancellation
// case, time.Sleep, context-less dials — is a finding; the sanctioned
// forms are selects carrying a struct{}-channel receive (ctx.Done(), stop
// and done channels) or a default, and ctx-taking APIs (DialContext).
// Cross-package: every module function containing an unguarded blocking
// op without accepting a context exports a blocking fact, and calls from
// the guarded trio into such functions are findings too — so the
// serve loop cannot launder an uncancellable sleep through a helper
// package.

// ctxBlockingFact marks a module function that blocks without accepting a
// context; Op describes the first blocking operation found.
type ctxBlockingFact struct {
	Op string
}

// CtxGuard is the ctxguard analyzer.
var CtxGuard = &Analyzer{
	Name:      "ctxguard",
	Doc:       "blocking operations in internal/serve, internal/collect, internal/pipe, internal/shard and internal/analysis must be select-guarded with a cancellation case or use ctx-taking APIs",
	Run:       runCtxGuard,
	FactTypes: []any{ctxBlockingFact{}},
}

// ctxGuardedPkgs are the module subtrees the local rules apply to.
var ctxGuardedPkgs = []string{"internal/serve", "internal/collect", "internal/pipe", "internal/shard", "internal/analysis"}

func inCtxGuardedPkg(pkgPath, module string) bool {
	for _, sub := range ctxGuardedPkgs {
		if underModule(pkgPath, module, sub) {
			return true
		}
	}
	return false
}

// blockingOp is one potentially forever-blocking operation in a function.
type blockingOp struct {
	pos token.Pos
	msg string
}

func runCtxGuard(pass *Pass) {
	if pass.Pkg == nil || pass.Info == nil {
		return
	}
	inScope := inCtxGuardedPkg(pass.PkgPath, pass.ModulePath)

	type fnInfo struct {
		fn      *types.Func
		ops     []blockingOp       // direct unguarded blocking ops
		callees []*types.Func      // module-internal callees, for propagation
		callPos map[*types.Func]token.Pos
		hasCtx  bool
	}
	var fns []*fnInfo

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			info := &fnInfo{fn: obj, callPos: map[*types.Func]token.Pos{}}
			info.hasCtx = funcTakesContext(obj)
			collectBlockingOps(pass, fd.Body, info.hasCtx, &info.ops)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pass, call)
				if callee == nil || callee.Pkg() == nil {
					return true
				}
				path := callee.Pkg().Path()
				if path != pass.ModulePath && !strings.HasPrefix(path, pass.ModulePath+"/") {
					return true
				}
				if _, seen := info.callPos[callee]; !seen {
					info.callees = append(info.callees, callee)
					info.callPos[callee] = call.Pos()
				}
				return true
			})
			fns = append(fns, info)
		}
	}

	// blockingFactFor resolves a callee's fact: intra-package from the
	// summaries being built, cross-package from the store.
	local := map[*types.Func]*ctxBlockingFact{}
	blockingFactFor := func(callee *types.Func) *ctxBlockingFact {
		if f, ok := local[callee]; ok {
			return f
		}
		var f ctxBlockingFact
		if pass.ImportObjectFact(callee, &f) {
			return &f
		}
		return nil
	}

	// Seed the summaries with direct ops, then propagate through
	// context-less intra-package calls to a bounded fixpoint.
	for _, info := range fns {
		if info.fn != nil && !info.hasCtx && len(info.ops) > 0 {
			local[info.fn] = &ctxBlockingFact{Op: info.ops[0].msg}
		}
	}
	for iter := 0; iter < 4; iter++ {
		changed := false
		for _, info := range fns {
			if info.fn == nil || info.hasCtx || local[info.fn] != nil {
				continue
			}
			for _, callee := range info.callees {
				if funcTakesContext(callee) {
					continue
				}
				if f := blockingFactFor(callee); f != nil {
					local[info.fn] = &ctxBlockingFact{Op: fmt.Sprintf("call to %s (%s)", callee.FullName(), f.Op)}
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	for fn, f := range local {
		pass.ExportObjectFact(fn, *f)
	}

	if !inScope {
		return
	}
	// Local findings: direct ops, plus calls that leave the guarded trio
	// into a blocking context-less function (in-trio callees report their
	// own ops, so those calls are not doubled).
	for _, info := range fns {
		for _, op := range info.ops {
			pass.Reportf(op.pos, "%s", op.msg)
		}
		for _, callee := range info.callees {
			if funcTakesContext(callee) || inCtxGuardedPkg(callee.Pkg().Path(), pass.ModulePath) {
				continue
			}
			if f := blockingFactFor(callee); f != nil {
				pass.Reportf(info.callPos[callee],
					"calls %s, which blocks without accepting a context (%s); plumb a ctx through or guard the call", callee.FullName(), f.Op)
			}
		}
	}
}

// funcTakesContext reports whether any parameter is context.Context.
func funcTakesContext(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if namedType(sig.Params().At(i).Type(), "context", "Context") {
			return true
		}
	}
	return false
}

// collectBlockingOps gathers the unguarded blocking operations in body.
// hasCtx softens nothing locally — a sleep in a ctx-taking function still
// ignores the ctx — it only matters for the exported fact.
func collectBlockingOps(pass *Pass, body *ast.BlockStmt, hasCtx bool, out *[]blockingOp) {
	// Comm operations of select statements are judged by the select rule,
	// not the bare-send/receive rules.
	selectComm := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			comm, ok := clause.(*ast.CommClause)
			if !ok || comm.Comm == nil {
				continue
			}
			selectComm[comm.Comm] = true
			switch s := comm.Comm.(type) {
			case *ast.ExprStmt:
				selectComm[ast.Unparen(s.X)] = true
			case *ast.AssignStmt:
				if len(s.Rhs) == 1 {
					selectComm[ast.Unparen(s.Rhs[0])] = true
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SelectStmt:
			if !selectHasEscape(pass, s) {
				*out = append(*out, blockingOp{s.Pos(), "select has neither a default nor a cancellation case (a struct{}-channel receive like ctx.Done()); it can block forever"})
			}
		case *ast.SendStmt:
			if !selectComm[s] {
				*out = append(*out, blockingOp{s.Pos(), "channel send outside a select; wrap it in a select with ctx.Done() or a default case"})
			}
		case *ast.UnaryExpr:
			if s.Op == token.ARROW && !selectComm[s] && !isRecvOnlyStructChan(pass, s.X) {
				*out = append(*out, blockingOp{s.Pos(), "channel receive outside a select; wrap it in a select with ctx.Done() or a default case"})
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(s.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					*out = append(*out, blockingOp{s.Pos(), "range over a channel blocks until the channel closes; drain it with a select on ctx.Done()"})
				}
			}
		case *ast.CallExpr:
			if msg := blockingCallMsg(pass, s); msg != "" {
				*out = append(*out, blockingOp{s.Pos(), msg})
			}
		}
		return true
	})
}

// selectHasEscape reports whether the select has a default case or a
// cancellation-style receive: a case receiving from a struct{}-element
// channel (ctx.Done(), stop/done channels).
func selectHasEscape(pass *Pass, sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		comm, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		if comm.Comm == nil {
			return true // default case
		}
		var recv ast.Expr
		switch s := comm.Comm.(type) {
		case *ast.ExprStmt:
			recv = s.X
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				recv = s.Rhs[0]
			}
		}
		ue, ok := ast.Unparen(recv).(*ast.UnaryExpr)
		if !ok || ue.Op != token.ARROW {
			continue
		}
		if isStructChan(pass.TypeOf(ue.X)) {
			return true
		}
	}
	return false
}

// isStructChan reports whether t is a channel of empty struct elements.
func isStructChan(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// isRecvOnlyStructChan reports whether e is a receive-only struct{}
// channel — blocking on one (ctx.Done() itself) is the cancellation wait,
// not a hang.
func isRecvOnlyStructChan(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok || ch.Dir() != types.RecvOnly {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// blockingCallMsg classifies context-less std blocking calls.
func blockingCallMsg(pass *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep blocks without cancellation; select on ctx.Done() and a timer instead"
		}
	case "net":
		if strings.HasPrefix(fn.Name(), "Dial") && !strings.HasSuffix(fn.Name(), "Context") {
			return fmt.Sprintf("net %s dials without a context; use (*net.Dialer).DialContext", fn.Name())
		}
	}
	return ""
}
