package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// snapfreeze is write-after-publish detection for the closed-loop serving
// path: once a *serve.ModelSnapshot or *analysis.Result escapes into
// shared memory — stored through an atomic.Pointer (SwapSnapshot),
// registered into a receiver map or field (Refresher.register), or
// obtained back out of such shared memory (ResultFor, snap.Load()) — any
// subsequent write to it, directly or through a callee known to mutate
// its argument, is a finding. The paper's bit-consistency guarantee rests
// on published snapshots being frozen; go test -race only catches the
// schedules it happens to run, this catches the code shape.
//
// The analysis is an escape summary per function, exported as an object
// fact and propagated bottom-up: Publishes lists parameter indices
// (receiver = 0, then parameters) the function stores into shared memory,
// Mutates lists indices it writes through, ReturnsPublished marks
// functions returning pointers into shared memory. Within a function a
// linear, position-ordered approximation tracks which locals alias
// published memory and reports writes after the publish point.

// snapEscapeFact is the per-function escape summary.
type snapEscapeFact struct {
	// Publishes are parameter indices stored into shared memory.
	Publishes []int
	// Mutates are parameter indices written through.
	Mutates []int
	// ReturnsPublished marks a result aliasing shared memory.
	ReturnsPublished bool
}

// SnapshotFreeze is the snapfreeze analyzer.
var SnapshotFreeze = &Analyzer{
	Name:      "snapfreeze",
	Doc:       "published model snapshots and analysis results are frozen: no writes after they escape via SwapSnapshot/register/ResultFor",
	Run:       runSnapFreeze,
	FactTypes: []any{snapEscapeFact{}},
}

// trackedPtr reports whether t is a pointer to one of the frozen types.
func trackedPtr(t types.Type, module string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return namedType(ptr.Elem(), module+"/internal/serve", "ModelSnapshot") ||
		namedType(ptr.Elem(), module+"/internal/analysis", "Result")
}

// snapFuncInfo carries one function declaration through the analysis.
type snapFuncInfo struct {
	decl   *ast.FuncDecl
	fn     *types.Func
	params map[*types.Var]int // receiver and parameters, receiver at 0
}

func runSnapFreeze(pass *Pass) {
	if pass.Pkg == nil || pass.Info == nil {
		return
	}
	var fns []*snapFuncInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			info := &snapFuncInfo{decl: fd, fn: fn, params: map[*types.Var]int{}}
			sig := fn.Type().(*types.Signature)
			idx := 0
			if sig.Recv() != nil {
				info.params[sig.Recv()] = idx
				idx++
			}
			for i := 0; i < sig.Params().Len(); i++ {
				info.params[sig.Params().At(i)] = idx
				idx++
			}
			fns = append(fns, info)
		}
	}

	// Bottom-up summaries: seed from each body, then iterate so
	// intra-package call chains converge (cross-package facts are already
	// final thanks to dependency-wave ordering).
	summaries := map[*types.Func]*snapEscapeFact{}
	factFor := func(fn *types.Func) *snapEscapeFact {
		if f, ok := summaries[fn]; ok {
			return f
		}
		var f snapEscapeFact
		if pass.ImportObjectFact(fn, &f) {
			return &f
		}
		return nil
	}
	for iter := 0; iter < 4; iter++ {
		changed := false
		for _, info := range fns {
			next := summarizeSnapFunc(pass, info, factFor)
			if prev := summaries[info.fn]; prev == nil || !sameSnapFact(prev, next) {
				summaries[info.fn] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for fn, f := range summaries {
		if len(f.Publishes) > 0 || len(f.Mutates) > 0 || f.ReturnsPublished {
			pass.ExportObjectFact(fn, *f)
		}
	}

	for _, info := range fns {
		reportSnapViolations(pass, info, factFor)
	}
}

func sameSnapFact(a, b *snapEscapeFact) bool {
	if len(a.Publishes) != len(b.Publishes) || len(a.Mutates) != len(b.Mutates) || a.ReturnsPublished != b.ReturnsPublished {
		return false
	}
	for i := range a.Publishes {
		if a.Publishes[i] != b.Publishes[i] {
			return false
		}
	}
	for i := range a.Mutates {
		if a.Mutates[i] != b.Mutates[i] {
			return false
		}
	}
	return true
}

// rootIdent unwraps a selector/index chain to its base identifier, or nil
// for expressions not rooted in a plain variable.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isChain reports whether e is a selector or index chain (not a bare
// identifier): the shapes that reach memory beyond the variable itself.
func isChain(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	}
	return false
}

// varOf resolves an identifier to its variable object.
func varOf(pass *Pass, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pass.Info.Uses[id].(*types.Var)
	if v == nil {
		v, _ = pass.Info.Defs[id].(*types.Var)
	}
	return v
}

// isSharedRoot reports whether the chain e is rooted in memory visible
// beyond this call frame: a receiver/parameter or a package-level
// variable.
func isSharedRoot(pass *Pass, info *snapFuncInfo, e ast.Expr) bool {
	id := rootIdent(e)
	if id == nil {
		return false
	}
	v := varOf(pass, id)
	if v == nil {
		return false
	}
	if _, isParam := info.params[v]; isParam {
		return true
	}
	return v.Parent() == pass.Pkg.Scope()
}

// atomicCall matches calls to sync/atomic functions/methods by name.
func atomicCall(pass *Pass, call *ast.CallExpr, name string) bool {
	fn := calleeFunc(pass, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && fn.Name() == name
}

// calleeArg maps a callee's summary index (receiver = 0 when present) to
// the caller-side expression, or nil when out of range.
func calleeArg(call *ast.CallExpr, callee *types.Func, idx int) ast.Expr {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if sig.Recv() != nil {
		if idx == 0 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return sel.X
			}
			return nil
		}
		idx--
	}
	if idx < 0 || idx >= len(call.Args) || sig.Variadic() && idx >= sig.Params().Len()-1 {
		return nil
	}
	return call.Args[idx]
}

// summarizeSnapFunc computes one function's escape summary.
func summarizeSnapFunc(pass *Pass, info *snapFuncInfo, factFor func(*types.Func) *snapEscapeFact) *snapEscapeFact {
	pubs := map[int]bool{}
	muts := map[int]bool{}
	retPub := false

	trackedParam := func(e ast.Expr) (int, bool) {
		v := varOf(pass, e)
		if v == nil || !trackedPtr(v.Type(), pass.ModulePath) {
			return 0, false
		}
		idx, ok := info.params[v]
		return idx, ok
	}

	// lastAssign resolves locals for return-position analysis: the most
	// recent syntactic assignment to each local variable.
	lastAssign := map[*types.Var]ast.Expr{}
	ast.Inspect(info.decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, l := range as.Lhs {
			v := varOf(pass, l)
			if v == nil {
				continue
			}
			if rhs := rhsFor(as, i); rhs != nil {
				lastAssign[v] = rhs
			}
		}
		return true
	})

	var derivesPublished func(e ast.Expr, depth int) bool
	derivesPublished = func(e ast.Expr, depth int) bool {
		if depth <= 0 {
			return false
		}
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			if atomicCall(pass, x, "Load") {
				return true
			}
			if callee := calleeFunc(pass, x); callee != nil {
				if f := factFor(callee); f != nil && f.ReturnsPublished {
					return true
				}
			}
		case *ast.SelectorExpr, *ast.IndexExpr:
			return isSharedRoot(pass, info, e)
		case *ast.Ident:
			if v := varOf(pass, x); v != nil {
				if _, isParam := info.params[v]; isParam {
					return false // a parameter is the caller's concern
				}
				if rhs := lastAssign[v]; rhs != nil {
					return derivesPublished(rhs, depth-1)
				}
			}
		}
		return false
	}

	ast.Inspect(info.decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, l := range s.Lhs {
				r := rhsFor(s, i)
				// Storing a tracked parameter into shared memory.
				if r != nil {
					if idx, ok := trackedParam(r); ok && isChain(l) && isSharedRoot(pass, info, l) {
						pubs[idx] = true
					}
				}
				// Writing through a tracked parameter.
				if isChain(l) {
					if idx, ok := trackedParamRoot(pass, info, l); ok {
						muts[idx] = true
					}
				}
			}
		case *ast.IncDecStmt:
			if isChain(s.X) {
				if idx, ok := trackedParamRoot(pass, info, s.X); ok {
					muts[idx] = true
				}
			}
		case *ast.CallExpr:
			if atomicCall(pass, s, "Store") && len(s.Args) > 0 {
				if idx, ok := trackedParam(s.Args[0]); ok {
					pubs[idx] = true
				}
			}
			if callee := calleeFunc(pass, s); callee != nil {
				if f := factFor(callee); f != nil {
					for _, ci := range f.Publishes {
						if idx, ok := trackedParam(calleeArg(s, callee, ci)); ok {
							pubs[idx] = true
						}
					}
					for _, ci := range f.Mutates {
						if idx, ok := trackedParam(calleeArg(s, callee, ci)); ok {
							muts[idx] = true
						}
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if t := pass.TypeOf(res); trackedPtr(t, pass.ModulePath) && derivesPublished(res, 4) {
					retPub = true
				}
			}
		}
		return true
	})

	return &snapEscapeFact{Publishes: sortedKeys(pubs), Mutates: sortedKeys(muts), ReturnsPublished: retPub}
}

// rhsFor pairs an assignment's i-th left-hand side with its right-hand
// expression, handling the tuple forms: a multi-value call or comma-ok
// (map read, channel receive, type assertion) assigns its single RHS to
// every left-hand side.
func rhsFor(as *ast.AssignStmt, i int) ast.Expr {
	if len(as.Lhs) == len(as.Rhs) {
		return as.Rhs[i]
	}
	if len(as.Rhs) == 1 {
		return as.Rhs[0]
	}
	return nil
}

// trackedParamRoot resolves a chain's root to a tracked parameter index.
func trackedParamRoot(pass *Pass, info *snapFuncInfo, e ast.Expr) (int, bool) {
	id := rootIdent(e)
	if id == nil {
		return 0, false
	}
	v := varOf(pass, id)
	if v == nil || !trackedPtr(v.Type(), pass.ModulePath) {
		return 0, false
	}
	idx, ok := info.params[v]
	return idx, ok
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// reportSnapViolations runs the position-ordered write-after-publish scan
// over one function body.
func reportSnapViolations(pass *Pass, info *snapFuncInfo, factFor func(*types.Func) *snapEscapeFact) {
	// published maps each tracked variable (parameter or local) to the
	// position it was published at and a description of how.
	type pubEvent struct {
		pos token.Pos
		how string
	}
	published := map[*types.Var]pubEvent{}

	trackedVar := func(e ast.Expr) *types.Var {
		v := varOf(pass, e)
		if v == nil || !trackedPtr(v.Type(), pass.ModulePath) {
			return nil
		}
		return v
	}
	publish := func(v *types.Var, pos token.Pos, how string) bool {
		if prev, ok := published[v]; ok && prev.pos <= pos {
			return false
		}
		published[v] = pubEvent{pos, how}
		return true
	}

	// Publish-event collection iterates to propagate aliases of published
	// variables (v2 := v1 after v1 escaped).
	for iter := 0; iter < 4; iter++ {
		changed := false
		ast.Inspect(info.decl.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for i, l := range s.Lhs {
					r := rhsFor(s, i)
					if r == nil {
						continue
					}
					// Shared-memory store publishes the stored variable.
					if v := trackedVar(r); v != nil && isChain(l) && isSharedRoot(pass, info, l) {
						if publish(v, s.Pos(), "stored into shared memory") {
							changed = true
						}
					}
					// Aliasing a published variable, a published return, or
					// a read out of a shared registry map.
					if lv := trackedVar(l); lv != nil {
						if rv := trackedVar(r); rv != nil {
							if ev, ok := published[rv]; ok && publish(lv, s.Pos(), ev.how) {
								changed = true
							}
						}
						if idx, ok := ast.Unparen(r).(*ast.IndexExpr); ok && isSharedRoot(pass, info, idx) {
							if publish(lv, s.Pos(), "read out of a shared registry") {
								changed = true
							}
						}
						if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
							if atomicCall(pass, call, "Load") {
								if publish(lv, s.Pos(), "loaded from an atomic pointer") {
									changed = true
								}
							} else if callee := calleeFunc(pass, call); callee != nil {
								if f := factFor(callee); f != nil && f.ReturnsPublished {
									if publish(lv, s.Pos(), "returned by "+callee.Name()+", which aliases shared memory") {
										changed = true
									}
								}
							}
						}
					}
				}
			case *ast.CallExpr:
				if atomicCall(pass, s, "Store") && len(s.Args) > 0 {
					if v := trackedVar(s.Args[0]); v != nil {
						if publish(v, s.Pos(), "published via atomic store") {
							changed = true
						}
					}
				}
				if callee := calleeFunc(pass, s); callee != nil {
					if f := factFor(callee); f != nil {
						for _, ci := range f.Publishes {
							if v := trackedVar(calleeArg(s, callee, ci)); v != nil {
								if publish(v, s.Pos(), "published via "+callee.Name()) {
									changed = true
								}
							}
						}
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	if len(published) == 0 {
		return
	}

	// Report pass: writes through a published variable after its publish
	// point, and calls handing a published variable to a known mutator.
	report := func(pos token.Pos, v *types.Var, via string) {
		ev := published[v]
		pass.Reportf(pos, "write to %s after it was %s at line %d%s; published snapshots are frozen — build a new one instead",
			v.Name(), ev.how, pass.Fset.Position(ev.pos).Line, via)
	}
	ast.Inspect(info.decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, l := range s.Lhs {
				if !isChain(l) {
					continue
				}
				id := rootIdent(l)
				if id == nil {
					continue
				}
				v := varOf(pass, id)
				if v == nil {
					continue
				}
				if ev, ok := published[v]; ok && trackedPtr(v.Type(), pass.ModulePath) && s.Pos() > ev.pos {
					report(s.Pos(), v, "")
				}
			}
		case *ast.IncDecStmt:
			if id := rootIdent(s.X); id != nil && isChain(s.X) {
				if v := varOf(pass, id); v != nil {
					if ev, ok := published[v]; ok && trackedPtr(v.Type(), pass.ModulePath) && s.Pos() > ev.pos {
						report(s.Pos(), v, "")
					}
				}
			}
		case *ast.CallExpr:
			callee := calleeFunc(pass, s)
			if callee == nil {
				return true
			}
			f := factFor(callee)
			if f == nil || len(f.Mutates) == 0 {
				return true
			}
			for _, ci := range f.Mutates {
				arg := calleeArg(s, callee, ci)
				v := trackedVar(arg)
				if v == nil {
					continue
				}
				if ev, ok := published[v]; ok && s.Pos() > ev.pos {
					report(s.Pos(), v, " (via "+callee.FullName()+", which mutates its argument)")
				}
			}
		}
		return true
	})
}
