package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatDeterminism enforces the golden-parity contract on floating point:
//
//  1. No == or != between float operands. Computed floats differ in their
//     low bits across refactors (fused operations, reassociation), so
//     exact equality silently flips behaviour. Comparing against the exact
//     constant 0 is exempt — a zero test on IEEE floats is well defined
//     and the codebase uses it as a mass/degeneracy guard.
//  2. No float accumulation inside a range over a map. Map iteration
//     order is randomized per run, float addition is not associative, so
//     the sum's low bits depend on the order — enough to flip a golden
//     byte comparison. Accumulate integers, or iterate sorted keys.
var FloatDeterminism = &Analyzer{
	Name: "floateq",
	Doc:  "no float ==/!=, no float accumulation over map iteration",
	Run:  runFloatDeterminism,
}

func runFloatDeterminism(pass *Pass) {
	inspectAll(pass, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			checkFloatCompare(pass, n)
		case *ast.RangeStmt:
			checkMapRangeAccum(pass, n)
		}
		return true
	})
}

func checkFloatCompare(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if !isFloat(pass.TypeOf(be.X)) && !isFloat(pass.TypeOf(be.Y)) {
		return
	}
	// Exact-zero guards are deterministic and idiomatic; constant-only
	// comparisons are folded at compile time.
	if isZeroConst(pass, be.X) || isZeroConst(pass, be.Y) {
		return
	}
	pass.Reportf(be.OpPos, "float %s comparison; use an epsilon or annotate why exact equality is intended", be.Op)
}

// isZeroConst reports whether the expression is a compile-time constant
// exactly equal to zero.
func isZeroConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.Kind() != constant.Unknown && constant.Sign(tv.Value) == 0
}

// checkMapRangeAccum flags compound float assignments (+=, -=, *=, /=) to
// variables declared outside a range-over-map body: their result depends
// on the randomized iteration order.
func checkMapRangeAccum(pass *Pass, rs *ast.RangeStmt) {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		for _, lhs := range as.Lhs {
			if !isFloat(pass.TypeOf(lhs)) {
				continue
			}
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				// Indexed/field targets keyed by loop state are fine;
				// only whole-loop accumulators are order-sensitive.
				continue
			}
			obj := pass.Info.Uses[id]
			if obj == nil || obj.Pos() >= rs.Pos() {
				continue // declared inside the loop: reset every iteration
			}
			pass.Reportf(as.Pos(), "float accumulation over map iteration order is nondeterministic; accumulate integers or sort the keys first")
		}
		return true
	})
}
