package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockatomic enforces access-discipline consistency on the fields of
// module-defined structs: a field touched through sync/atomic anywhere
// must be touched through sync/atomic everywhere (one plain load next to
// atomic increments is a data race go test -race may never schedule), and
// a field whose every write is performed under a receiver mutex must hold
// that mutex on reads too. Each package exports a field-level access
// summary fact (kind, held mutexes, position); the finish pass merges the
// summaries module-wide, so a field locked in one package and read bare
// in another is still caught. Methods named *Locked are trusted to be
// called with the receiver's locks held.

// lockAccess is one field access observed somewhere in the module.
type lockAccess struct {
	// Field is the qualified field identity: "pkgpath.Struct.field".
	Field string
	// Kind is "read", "write" or "atomic".
	Kind string
	// Mutexes are the "Struct.mutexField" names held at the access; the
	// sentinel "*" (a *Locked method) satisfies any guard.
	Mutexes []string
	// Pos locates the access.
	Pos token.Position
}

// lockAccessFact is the per-package access summary.
type lockAccessFact struct {
	Accesses []lockAccess
}

// LockAtomic is the lockatomic analyzer.
var LockAtomic = &Analyzer{
	Name:      "lockatomic",
	Doc:       "a field accessed atomically anywhere must be atomic everywhere, and mutex-guarded writes imply mutex-guarded reads",
	Run:       runLockAtomic,
	FactTypes: []any{lockAccessFact{}},
	Finish:    finishLockAtomic,
}

func runLockAtomic(pass *Pass) {
	if pass.Pkg == nil || pass.Info == nil {
		return
	}
	var fact lockAccessFact
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			star := strings.HasSuffix(fd.Name.Name, "Locked")
			collectFieldAccesses(pass, fd.Body, star, &fact.Accesses)
		}
	}
	if len(fact.Accesses) > 0 {
		pass.ExportPackageFact(fact)
	}
}

// mutexEvent is one Lock/Unlock call inside a function body, for the
// linear held-set sweep.
type mutexEvent struct {
	pos  token.Pos
	name string
	lock bool
}

// collectFieldAccesses gathers every direct field access x.f (x an
// identifier of pointer-to-module-struct type) in body, classified as
// atomic / read / write, with the mutexes held at its position.
func collectFieldAccesses(pass *Pass, body *ast.BlockStmt, lockedHelper bool, out *[]lockAccess) {
	type rawAccess struct {
		pos   token.Pos
		field string
		kind  string
	}
	var accesses []rawAccess
	var events []mutexEvent

	// atomicArgs marks &x.f expressions passed to sync/atomic functions.
	atomicArgs := map[ast.Expr]bool{}
	// writes marks selector expressions that are assignment targets.
	writes := map[ast.Expr]bool{}
	// deferred unlocks hold until function exit; drop their events.
	deferred := map[ast.Node]bool{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, l := range s.Lhs {
				writes[ast.Unparen(l)] = true
			}
		case *ast.IncDecStmt:
			writes[ast.Unparen(s.X)] = true
		case *ast.DeferStmt:
			deferred[s.Call] = true
		case *ast.CallExpr:
			fn := calleeFunc(pass, s)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == "sync/atomic" {
				for _, arg := range s.Args {
					if ue, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && ue.Op == token.AND {
						atomicArgs[ast.Unparen(ue.X)] = true
					}
				}
			}
			if fn.Pkg().Path() == "sync" && !deferred[s] {
				switch fn.Name() {
				case "Lock", "RLock", "Unlock", "RUnlock":
					if name := mutexChainName(pass, s); name != "" {
						events = append(events, mutexEvent{s.Pos(), name, strings.HasSuffix(fn.Name(), "Lock") && !strings.Contains(fn.Name(), "Un")})
					}
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		field := fieldIdentity(pass, sel)
		if field == "" {
			return true
		}
		kind := "read"
		switch {
		case atomicArgs[sel]:
			kind = "atomic"
		case writes[sel]:
			kind = "write"
		}
		accesses = append(accesses, rawAccess{sel.Pos(), field, kind})
		return true
	})

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	heldAt := func(pos token.Pos) []string {
		if lockedHelper {
			return []string{"*"}
		}
		held := map[string]bool{}
		for _, e := range events {
			if e.pos >= pos {
				break
			}
			held[e.name] = e.lock
		}
		var names []string
		for name, on := range held {
			if on {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		return names
	}
	for _, a := range accesses {
		*out = append(*out, lockAccess{
			Field:   a.field,
			Kind:    a.kind,
			Mutexes: heldAt(a.pos),
			Pos:     pass.Fset.Position(a.pos),
		})
	}
}

// fieldIdentity resolves sel to "pkgpath.Struct.field" when sel is a
// direct field selection x.f with x an identifier of pointer-to-named
// module struct type. Fields whose own type comes from sync or
// sync/atomic (mutexes, atomic.Pointer, WaitGroup, sync.Map) are skipped:
// their access discipline is the type's own API. Value roots are skipped
// too — a copy is private memory.
func fieldIdentity(pass *Pass, sel *ast.SelectorExpr) string {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, isVar := pass.Info.Uses[id].(*types.Var); !isVar {
		return ""
	}
	selection := pass.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal || len(selection.Index()) != 1 {
		return ""
	}
	ptr, ok := pass.TypeOf(id).(*types.Pointer)
	if !ok {
		return ""
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	pkgPath := obj.Pkg().Path()
	if pkgPath != pass.ModulePath && !strings.HasPrefix(pkgPath, pass.ModulePath+"/") {
		return ""
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return ""
	}
	fieldVar, ok := selection.Obj().(*types.Var)
	if !ok || syncOwnedType(fieldVar.Type()) {
		return ""
	}
	return pkgPath + "." + obj.Name() + "." + fieldVar.Name()
}

// syncOwnedType reports whether t (or its element) is defined in sync or
// sync/atomic.
func syncOwnedType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == "sync" || p == "sync/atomic"
}

// mutexChainName names the mutex behind an x.mu.Lock()-style call as
// "Struct.mu", so accesses guarded by the same struct's mutex correlate
// across functions (instances approximate to their type).
func mutexChainName(pass *Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := ast.Unparen(inner.X).(*ast.Ident)
	if !ok {
		return ""
	}
	t := pass.TypeOf(id)
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil {
		return ""
	}
	return named.Obj().Name() + "." + inner.Sel.Name
}

func finishLockAtomic(fp *FinishPass) {
	byField := map[string][]lockAccess{}
	fp.EachPackageFact(func(pkgPath string, f any) {
		fact, ok := f.(lockAccessFact)
		if !ok {
			return
		}
		for _, a := range fact.Accesses {
			byField[a.Field] = append(byField[a.Field], a)
		}
	})
	fields := make([]string, 0, len(byField))
	for f := range byField {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	for _, field := range fields {
		accs := byField[field]
		sort.Slice(accs, func(i, j int) bool {
			a, b := accs[i].Pos, accs[j].Pos
			if a.Filename != b.Filename {
				return a.Filename < b.Filename
			}
			return a.Line < b.Line
		})
		hasAtomic := false
		for _, a := range accs {
			if a.Kind == "atomic" {
				hasAtomic = true
				break
			}
		}
		if hasAtomic {
			// Atomic-everywhere: any plain access races the atomic ones.
			for _, a := range accs {
				if a.Kind != "atomic" {
					fp.Reportf(a.Pos, "field %s is accessed atomically elsewhere; this plain %s races them — use sync/atomic here too", field, a.Kind)
				}
			}
			continue
		}
		// Mutex discipline: if every write holds a common mutex, reads
		// must hold it as well.
		guards := mutexGuards(accs)
		if len(guards) == 0 {
			continue
		}
		for _, a := range accs {
			if a.Kind != "read" {
				continue
			}
			if !holdsAny(a.Mutexes, guards) {
				fp.Reportf(a.Pos, "field %s is always written under %s but this read does not hold it", field, strings.Join(guards, "/"))
			}
		}
	}
}

// mutexGuards returns the mutexes held by every write access (the
// inferred guard set), or nil when there are no writes or no common
// mutex. Writes in *Locked helpers (the "*" sentinel) satisfy any
// candidate set.
func mutexGuards(accs []lockAccess) []string {
	var guards []string
	sawWrite := false
	first := true
	for _, a := range accs {
		if a.Kind != "write" {
			continue
		}
		sawWrite = true
		if holdsAny(a.Mutexes, []string{"*"}) {
			continue
		}
		if first {
			guards = append([]string(nil), a.Mutexes...)
			first = false
			continue
		}
		var kept []string
		for _, g := range guards {
			for _, m := range a.Mutexes {
				if g == m {
					kept = append(kept, g)
					break
				}
			}
		}
		guards = kept
		if len(guards) == 0 {
			return nil
		}
	}
	if !sawWrite || first {
		return nil
	}
	return guards
}

// holdsAny reports whether held contains "*" or any of want.
func holdsAny(held, want []string) bool {
	for _, h := range held {
		if h == "*" {
			return true
		}
		for _, w := range want {
			if h == w {
				return true
			}
		}
	}
	return false
}
