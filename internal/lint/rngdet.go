package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// RNGDiscipline enforces the reproducibility contract on randomness: all
// pseudo-randomness flows from internal/rng sources with explicit seeds,
// and data-parallel loops consume pre-split per-index streams.
//
// Three rules:
//
//  1. math/rand and math/rand/v2 are banned outside internal/rng. Their
//     global generators are process-wide mutable state seeded differently
//     across runs, which breaks byte-identical golden outputs.
//  2. rng constructors must not be seeded from the clock: passing a
//     time.Now()-derived value into internal/rng makes every run unique.
//  3. Inside a function literal handed to pipe.Pool.ForEach, calling a
//     method on an rng.Source captured from the enclosing scope is a data
//     race on the generator state and makes results depend on goroutine
//     scheduling. Split one child Source per index before the loop
//     (Source.Split) and index into the slice instead.
var RNGDiscipline = &Analyzer{
	Name: "rngdet",
	Doc:  "randomness must come from explicitly seeded, pre-split internal/rng sources",
	Run:  runRNGDiscipline,
}

func runRNGDiscipline(pass *Pass) {
	rngPath := pass.ModulePath + "/internal/rng"
	if pass.PkgPath == rngPath {
		return
	}

	// Rule 1: no math/rand imports.
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s outside internal/rng; use rng.New with an explicit seed", path)
			}
		}
	}

	inspectAll(pass, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Rule 2: rng constructors seeded from the clock.
		if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == rngPath {
			for _, arg := range call.Args {
				if tc := findTimeCall(pass, arg); tc != nil {
					pass.Reportf(tc.Pos(), "time-seeded %s breaks reproducibility; thread an explicit seed", fn.Name())
				}
			}
		}
		// Rule 3: shared Source inside a pool fan-out body.
		if lit := forEachBody(pass, call); lit != nil {
			checkSharedSource(pass, lit)
		}
		return true
	})
}

// findTimeCall returns a call to time.Now (or time.Since etc.) nested in
// the expression, or nil.
func findTimeCall(pass *Pass, e ast.Expr) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
			found = call
			return false
		}
		return true
	})
	return found
}

// forEachBody returns the function-literal work body of a
// pipe.Pool.ForEach call, or nil when call is something else.
func forEachBody(pass *Pass, call *ast.CallExpr) *ast.FuncLit {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Name() != "ForEach" {
		return nil
	}
	if !strings.HasPrefix(funcFullName(fn), "(*"+pass.ModulePath+"/internal/pipe.Pool)") {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	lit, _ := call.Args[len(call.Args)-1].(*ast.FuncLit)
	return lit
}

// checkSharedSource reports method calls on rng.Source identifiers whose
// declaration lies outside the literal — i.e. a generator shared across
// all work items.
func checkSharedSource(pass *Pass, lit *ast.FuncLit) {
	rngPath := pass.ModulePath + "/internal/rng"
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || !namedType(obj.Type(), rngPath, "Source") {
			return true
		}
		if declaredOutside(obj.Pos(), lit) {
			pass.Reportf(call.Pos(), "rng.Source %q is shared across pool work items; pre-split one Source per index with Split", id.Name)
		}
		return true
	})
}

// declaredOutside reports whether a declaration position falls outside the
// literal's source range.
func declaredOutside(pos token.Pos, lit *ast.FuncLit) bool {
	return pos < lit.Pos() || pos > lit.End()
}
