// Package lint is a zero-dependency domain lint engine for this module: an
// analyzer framework on the standard library's go/ast and go/types that
// machine-checks the contracts the staged pipeline's and the closed-loop
// serving path's correctness rest on — goroutines only through
// internal/pipe, deterministic pre-split RNG, no panics in library
// packages, %w error wrapping, float comparisons / accumulation patterns
// that keep golden outputs byte-identical, immutability of published model
// snapshots, context-guarded blocking in the serving path, consistent
// atomic/mutex field access, and a closed metric catalog.
//
// The v2 engine is a cross-package dataflow framework: packages are
// analyzed in dependency order and analyzers export typed facts (escape
// summaries, field-access summaries, metric catalogs) that downstream
// packages import, with per-package analysis parallelized on the shared
// internal/pipe pool and a content-hash-keyed cache making repeat runs
// incremental (see runner.go, facts.go, cache.go).
//
// The cmd/icnvet driver loads every package in the module and runs the
// Analyzers suite over it. Individual findings can be suppressed with an
// annotation on the offending line or the line directly above it:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory: an annotation without one does not suppress
// anything and is itself reported. An annotation whose analyzer never
// fires on its target line is also reported (a stale suppression), so
// escape hatches cannot outlive the code they excused.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation located in the analyzed source.
type Finding struct {
	// Analyzer is the name of the rule that fired.
	Analyzer string `json:"analyzer"`
	// Pos locates the violation (file, line, column).
	Pos token.Position `json:"pos"`
	// Message explains the violation and the expected fix.
	Message string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one domain rule. Run inspects the package behind the Pass
// and reports violations through Pass.Reportf; analyzers participating in
// cross-package dataflow additionally export facts for downstream
// packages and may register a Finish hook for module-global verdicts.
type Analyzer struct {
	// Name is the rule identifier used in findings and annotations.
	Name string
	// Doc is a one-line description of the enforced contract.
	Doc string
	// Run executes the rule over one package.
	Run func(*Pass)
	// FactTypes lists zero values of every fact type Run exports, so the
	// incremental cache can round-trip them through encoding/gob.
	FactTypes []any
	// Finish, when set, runs once after every package has been analyzed,
	// over the module-wide fact store — the place for verdicts that only
	// exist globally (a metric registered nowhere, a field locked in one
	// package and read bare in another).
	Finish func(*FinishPass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the rule being run.
	Analyzer *Analyzer
	// Fset resolves token positions for every file in the module.
	Fset *token.FileSet
	// Files are the package's parsed sources (tests excluded).
	Files []*ast.File
	// PkgPath is the package import path (e.g. "repro/internal/mat").
	PkgPath string
	// ModulePath is the module path from go.mod (e.g. "repro").
	ModulePath string
	// Pkg is the type-checked package object.
	Pkg *types.Package
	// Info holds the type-checker's expression and object tables.
	Info *types.Info

	facts    *FactStore
	allows   allowIndex
	findings *[]Finding
}

// Reportf records a finding at pos unless an annotation suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allows.allowed(p.Analyzer.Name, position) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-tolerant shortcut for the type of an expression.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// AllowRecord is one //lint:allow annotation, tracked so the engine can
// report suppression debt (icnvet -allows) and stale escape hatches.
type AllowRecord struct {
	// Pos locates the annotation comment.
	Pos token.Position `json:"pos"`
	// Analyzer is the rule the annotation suppresses.
	Analyzer string `json:"analyzer"`
	// Reason is the mandatory justification text.
	Reason string `json:"reason"`
	// Used reports whether the annotation suppressed at least one finding
	// this run; a well-formed, unused annotation is a stale suppression.
	Used bool `json:"used"`
}

// allowKey identifies an annotation target: one analyzer on one source line.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowIndex maps annotated lines to suppressions. An annotation
// suppresses findings on its own line and on the line immediately below
// it, so both end-of-line and preceding-line comments work. Suppressing a
// finding marks the record used.
type allowIndex map[allowKey]*AllowRecord

func (ai allowIndex) allowed(analyzer string, pos token.Position) bool {
	if ai == nil {
		return false
	}
	for _, line := range [...]int{pos.Line, pos.Line - 1} {
		if rec := ai[allowKey{pos.Filename, line, analyzer}]; rec != nil {
			rec.Used = true
			return true
		}
	}
	return false
}

// merge folds other's entries into ai (used to build the module-wide
// index the Finish passes report through).
func (ai allowIndex) merge(other allowIndex) {
	for k, rec := range other {
		ai[k] = rec
	}
}

// records returns the index's annotations sorted by position.
func (ai allowIndex) records() []*AllowRecord {
	out := make([]*AllowRecord, 0, len(ai))
	for _, rec := range ai {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out
}

// allowDirective is the comment prefix of the suppression mechanism.
const allowDirective = "//lint:allow"

// indexAllows scans the files' comments for //lint:allow directives.
// Malformed directives (missing analyzer or missing reason) are reported
// as findings of the pseudo-analyzer "lint" so they cannot silently rot.
func indexAllows(fset *token.FileSet, files []*ast.File, findings *[]Finding) allowIndex {
	idx := allowIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowDirective)
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					*findings = append(*findings, Finding{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed annotation: want //lint:allow <analyzer> <reason>",
					})
					continue
				}
				idx[allowKey{pos.Filename, pos.Line, fields[0]}] = &AllowRecord{
					Pos:      pos,
					Analyzer: fields[0],
					Reason:   strings.Join(fields[1:], " "),
				}
			}
		}
	}
	return idx
}

// staleAllowFindings reports every well-formed annotation that suppressed
// nothing, provided its analyzer was part of the run (an allow for a
// deselected analyzer is not judged) — plus annotations naming analyzers
// that do not exist at all, which are typos that would otherwise suppress
// nothing forever. The stale finding itself respects the allow index, so
// a deliberate tombstone can be annotated with //lint:allow lint <reason>.
func staleAllowFindings(allows allowIndex, ran map[string]bool, findings *[]Finding) {
	for _, rec := range allows.records() {
		if rec.Used {
			continue
		}
		known := ran[rec.Analyzer] || rec.Analyzer == "lint"
		if !known {
			if _, exists := analyzerNames[rec.Analyzer]; exists {
				continue // analyzer deselected this run; not judged
			}
			if allows.allowed("lint", rec.Pos) {
				continue
			}
			*findings = append(*findings, Finding{
				Analyzer: "lint",
				Pos:      rec.Pos,
				Message:  fmt.Sprintf("annotation names unknown analyzer %q; it suppresses nothing", rec.Analyzer),
			})
			continue
		}
		if allows.allowed("lint", rec.Pos) {
			continue
		}
		*findings = append(*findings, Finding{
			Analyzer: "lint",
			Pos:      rec.Pos,
			Message:  fmt.Sprintf("stale suppression: %s does not fire here; remove the //lint:allow", rec.Analyzer),
		})
	}
}

// Analyzers is the full v2 suite icnvet runs by default.
var Analyzers = []*Analyzer{
	PoolOnlyGoroutines,
	RNGDiscipline,
	PanicFreeLibrary,
	ErrWrap,
	FloatDeterminism,
	SnapshotFreeze,
	CtxGuard,
	LockAtomic,
	MetricRegistry,
}

// analyzerNames indexes the registered suite for unknown-name detection.
var analyzerNames = func() map[string]*Analyzer {
	m := map[string]*Analyzer{}
	for _, a := range Analyzers {
		m[a.Name] = a
	}
	return m
}()

// ByName returns the analyzers matching the comma-separated names list.
// Unknown and duplicate entries are errors: an analyzer listed twice
// would run twice and double-report every one of its findings.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	seen := map[string]bool{}
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if seen[name] {
			return nil, fmt.Errorf("lint: analyzer %q listed twice; it would double-report its findings", name)
		}
		seen[name] = true
		a, ok := analyzerNames[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunPackage executes the given analyzers over one loaded package,
// exporting facts into and importing dependency facts from store (nil
// runs without cross-package dataflow), and returns the surviving
// (non-suppressed) findings plus the package's allow index for the
// caller's stale-suppression accounting.
func RunPackage(mod *Module, pkg *Package, analyzers []*Analyzer, store *FactStore) ([]Finding, allowIndex) {
	return analyzePackage(mod, pkg, analyzers, store, nil)
}

// Run loads the module rooted at dir and executes the analyzers over
// every package, including Finish passes and stale-suppression findings.
// Findings come back sorted by file, line, column and analyzer so output
// is stable across runs.
func Run(dir string, analyzers []*Analyzer) ([]Finding, error) {
	res, err := RunModule(Options{Dir: dir, Analyzers: analyzers})
	if err != nil {
		return nil, err
	}
	return res.Findings, nil
}

// SortFindings orders findings by position then analyzer name.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
