// Package lint is a zero-dependency domain lint engine for this module: an
// analyzer framework on the standard library's go/ast and go/types that
// machine-checks the contracts the staged pipeline's correctness rests on —
// goroutines only through internal/pipe, deterministic pre-split RNG, no
// panics in library packages, %w error wrapping, and float comparisons /
// accumulation patterns that keep golden outputs byte-identical.
//
// The cmd/icnvet driver loads every package in the module and runs the
// Analyzers suite over it. Individual findings can be suppressed with an
// annotation on the offending line or the line directly above it:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory: an annotation without one does not suppress
// anything and is itself reported, so every escape hatch in the tree
// documents why it exists.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation located in the analyzed source.
type Finding struct {
	// Analyzer is the name of the rule that fired.
	Analyzer string `json:"analyzer"`
	// Pos locates the violation (file, line, column).
	Pos token.Position `json:"pos"`
	// Message explains the violation and the expected fix.
	Message string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one domain rule. Run inspects the package behind the Pass and
// reports violations through Pass.Reportf.
type Analyzer struct {
	// Name is the rule identifier used in findings and annotations.
	Name string
	// Doc is a one-line description of the enforced contract.
	Doc string
	// Run executes the rule over one package.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the rule being run.
	Analyzer *Analyzer
	// Fset resolves token positions for every file in the module.
	Fset *token.FileSet
	// Files are the package's parsed sources (tests excluded).
	Files []*ast.File
	// PkgPath is the package import path (e.g. "repro/internal/mat").
	PkgPath string
	// ModulePath is the module path from go.mod (e.g. "repro").
	ModulePath string
	// Pkg is the type-checked package object.
	Pkg *types.Package
	// Info holds the type-checker's expression and object tables.
	Info *types.Info

	allows   allowIndex
	findings *[]Finding
}

// Reportf records a finding at pos unless an annotation suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allows.allowed(p.Analyzer.Name, position) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-tolerant shortcut for the type of an expression.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// allowKey identifies an annotation target: one analyzer on one source line.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowIndex maps annotated lines to suppressions. An annotation suppresses
// findings on its own line and on the line immediately below it, so both
// end-of-line and preceding-line comments work.
type allowIndex map[allowKey]bool

func (ai allowIndex) allowed(analyzer string, pos token.Position) bool {
	if ai == nil {
		return false
	}
	return ai[allowKey{pos.Filename, pos.Line, analyzer}] ||
		ai[allowKey{pos.Filename, pos.Line - 1, analyzer}]
}

// allowDirective is the comment prefix of the suppression mechanism.
const allowDirective = "//lint:allow"

// indexAllows scans the files' comments for //lint:allow directives.
// Malformed directives (missing analyzer or missing reason) are reported as
// findings of the pseudo-analyzer "lint" so they cannot silently rot.
func indexAllows(fset *token.FileSet, files []*ast.File, findings *[]Finding) allowIndex {
	idx := allowIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowDirective)
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					*findings = append(*findings, Finding{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed annotation: want //lint:allow <analyzer> <reason>",
					})
					continue
				}
				idx[allowKey{pos.Filename, pos.Line, fields[0]}] = true
			}
		}
	}
	return idx
}

// Analyzers is the full suite icnvet runs by default.
var Analyzers = []*Analyzer{
	PoolOnlyGoroutines,
	RNGDiscipline,
	PanicFreeLibrary,
	ErrWrap,
	FloatDeterminism,
}

// ByName returns the analyzers matching the comma-separated names list, or
// an error naming the first unknown entry.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range Analyzers {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
	}
	return out, nil
}

// RunPackage executes the given analyzers over one loaded package and
// returns the surviving (non-suppressed) findings.
func RunPackage(mod *Module, pkg *Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	allows := indexAllows(mod.Fset, pkg.Files, &findings)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       mod.Fset,
			Files:      pkg.Files,
			PkgPath:    pkg.PkgPath,
			ModulePath: mod.Path,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			allows:     allows,
			findings:   &findings,
		}
		a.Run(pass)
	}
	return findings
}

// Run loads the module rooted at dir and executes the analyzers over every
// package. Findings come back sorted by file, line, column and analyzer so
// output is stable across runs.
func Run(dir string, analyzers []*Analyzer) ([]Finding, error) {
	mod, err := LoadModule(dir)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range mod.Pkgs {
		findings = append(findings, RunPackage(mod, pkg, analyzers)...)
	}
	SortFindings(findings)
	return findings, nil
}

// SortFindings orders findings by position then analyzer name.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
