package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"sync"
)

// This file implements the cross-package facts mechanism: analyzers
// running on a package may export typed facts about its objects (functions
// today; any package-scope object in principle) or about the package
// itself. Because the engine analyzes packages in dependency order, a
// downstream package can import the facts its dependencies exported —
// escape summaries, field-access summaries, metric catalogs — which is
// what turns the per-package AST linter into a module-wide dataflow
// engine. The design mirrors golang.org/x/tools/go/analysis facts, on the
// standard library only.
//
// Facts are keyed by (analyzer, package path, object key) where the
// object key is stable across loads and across the incremental cache:
// functions use types.Func.FullName ("(*repro/internal/serve.Server).
// SwapSnapshot"), other package-scope objects use "pkgpath.Name", and a
// package fact uses the empty object key. Fact values are plain structs;
// analyzers that participate in the incremental cache register them
// through Analyzer.FactTypes so they round-trip through gob.

// factKey addresses one fact in the store.
type factKey struct {
	analyzer string
	pkgPath  string
	obj      string // "" for package facts
}

// FactStore holds every fact exported during one module run. It is safe
// for concurrent use: packages in the same dependency wave are analyzed in
// parallel and export concurrently, while reads only target completed
// dependency waves.
type FactStore struct {
	mu sync.Mutex
	m  map[factKey]any
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: map[factKey]any{}}
}

// Clone copies the store. The fixture test harness snapshots the real
// module's facts before mixing in a fixture package's.
func (s *FactStore) Clone() *FactStore {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := &FactStore{m: make(map[factKey]any, len(s.m))}
	for k, v := range s.m {
		c.m[k] = v
	}
	return c
}

func (s *FactStore) set(k factKey, fact any) {
	s.mu.Lock()
	s.m[k] = fact
	s.mu.Unlock()
}

// get copies the stored fact into the struct pointed to by ptr and
// reports whether the fact existed.
func (s *FactStore) get(k factKey, ptr any) bool {
	s.mu.Lock()
	v, ok := s.m[k]
	s.mu.Unlock()
	if !ok {
		return false
	}
	rv := reflect.ValueOf(ptr)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return false
	}
	sv := reflect.ValueOf(v)
	if sv.Type() != rv.Elem().Type() {
		return false
	}
	rv.Elem().Set(sv)
	return true
}

// factRecord is the serializable form of one fact, used by the
// incremental cache and the -facts-debug dump.
type factRecord struct {
	Analyzer string
	PkgPath  string
	Obj      string
	Fact     any
}

// records returns every fact, optionally restricted to one package,
// sorted for deterministic output.
func (s *FactStore) records(pkgPath string) []factRecord {
	s.mu.Lock()
	out := make([]factRecord, 0, len(s.m))
	for k, v := range s.m {
		if pkgPath != "" && k.pkgPath != pkgPath {
			continue
		}
		out = append(out, factRecord{Analyzer: k.analyzer, PkgPath: k.pkgPath, Obj: k.obj, Fact: v})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.PkgPath != b.PkgPath {
			return a.PkgPath < b.PkgPath
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Obj < b.Obj
	})
	return out
}

// install re-seats cached fact records into the store.
func (s *FactStore) install(recs []factRecord) {
	s.mu.Lock()
	for _, r := range recs {
		s.m[factKey{r.Analyzer, r.PkgPath, r.Obj}] = r.Fact
	}
	s.mu.Unlock()
}

// DebugString renders the store for icnvet -facts-debug: one line per
// fact, grouped by package, with the fact's %+v rendering.
func (s *FactStore) DebugString() string {
	var b []byte
	for _, r := range s.records("") {
		obj := r.Obj
		if obj == "" {
			obj = "(package)"
		}
		b = fmt.Appendf(b, "%s\t%s\t%s\t%+v\n", r.PkgPath, r.Analyzer, obj, r.Fact)
	}
	return string(b)
}

// objFactKey derives the stable object key facts are addressed by.
// Functions and methods use their fully qualified FullName; any other
// package-scope object uses "pkgpath.Name". Objects without a package
// (builtins, universe scope) are not addressable and yield "".
func objFactKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		return fn.FullName()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// ExportObjectFact publishes fact about obj, an object of the package
// under analysis, for downstream packages (and the analyzer's Finish
// pass) to import.
func (p *Pass) ExportObjectFact(obj types.Object, fact any) {
	key := objFactKey(obj)
	if key == "" || p.facts == nil {
		return
	}
	p.facts.set(factKey{p.Analyzer.Name, obj.Pkg().Path(), key}, fact)
}

// ImportObjectFact copies the fact previously exported about obj into
// *ptr, reporting whether one existed. The object may belong to any
// already-analyzed package, including the current one.
func (p *Pass) ImportObjectFact(obj types.Object, ptr any) bool {
	key := objFactKey(obj)
	if key == "" || p.facts == nil {
		return false
	}
	return p.facts.get(factKey{p.Analyzer.Name, obj.Pkg().Path(), key}, ptr)
}

// ExportPackageFact publishes fact about the package under analysis.
func (p *Pass) ExportPackageFact(fact any) {
	if p.facts == nil {
		return
	}
	p.facts.set(factKey{p.Analyzer.Name, p.PkgPath, ""}, fact)
}

// ImportPackageFact copies the fact exported about pkgPath into *ptr.
func (p *Pass) ImportPackageFact(pkgPath string, ptr any) bool {
	if p.facts == nil {
		return false
	}
	return p.facts.get(factKey{p.Analyzer.Name, pkgPath, ""}, ptr)
}

// FinishPass is the view an analyzer's Finish hook gets after every
// package has been analyzed: the module-wide fact store plus a reporter
// that honors //lint:allow annotations anywhere in the module.
type FinishPass struct {
	// Analyzer is the rule being finished.
	Analyzer *Analyzer
	// ModulePath is the module path from go.mod.
	ModulePath string

	facts    *FactStore
	allows   allowIndex
	findings *[]Finding
}

// EachPackageFact invokes fn for every package fact this analyzer
// exported, in deterministic package-path order.
func (fp *FinishPass) EachPackageFact(fn func(pkgPath string, fact any)) {
	for _, r := range fp.facts.records("") {
		if r.Analyzer == fp.Analyzer.Name && r.Obj == "" {
			fn(r.PkgPath, r.Fact)
		}
	}
}

// EachObjectFact invokes fn for every object fact this analyzer exported,
// in deterministic order.
func (fp *FinishPass) EachObjectFact(fn func(pkgPath, obj string, fact any)) {
	for _, r := range fp.facts.records("") {
		if r.Analyzer == fp.Analyzer.Name && r.Obj != "" {
			fn(r.PkgPath, r.Obj, r.Fact)
		}
	}
}

// Reportf records a module-level finding at an already-resolved position
// unless an annotation in the owning file suppresses it.
func (fp *FinishPass) Reportf(pos token.Position, format string, args ...any) {
	if fp.allows.allowed(fp.Analyzer.Name, pos) {
		return
	}
	*fp.findings = append(*fp.findings, Finding{
		Analyzer: fp.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}
