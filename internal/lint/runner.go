package lint

import (
	"context"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pipe"
)

// Options configures a module-wide analysis run.
type Options struct {
	// Dir is the module root (where go.mod lives).
	Dir string
	// Analyzers is the rule set to run; nil means the full Analyzers suite.
	Analyzers []*Analyzer
	// Cache enables the incremental cache: packages whose content-hash key
	// matches a stored entry replay their findings and facts without being
	// type-checked or analyzed.
	Cache bool
	// CacheDir overrides the cache location (default <Dir>/.icnvet-cache).
	CacheDir string
	// Pool runs per-package type-checking and analysis; nil uses the
	// process-shared internal/pipe pool.
	Pool *pipe.Pool
}

// AnalyzerTime is one row of the per-analyzer timing breakdown.
type AnalyzerTime struct {
	// Name is the analyzer.
	Name string
	// Total is CPU time summed across packages (parallel work overlaps, so
	// rows can sum to more than the analyze wall time).
	Total time.Duration
}

// Timing breaks a run down by phase for the icnvet -time report.
type Timing struct {
	// Scan is discovery, parsing and content hashing.
	Scan time.Duration
	// Load is type-checking (zero when every package was cached).
	Load time.Duration
	// Analyze is the per-package analyzer phase wall time.
	Analyze time.Duration
	// Finish is the module-global finish passes plus stale-allow scan.
	Finish time.Duration
	// Packages is the number of packages in the module.
	Packages int
	// Cached is how many of them replayed from the incremental cache.
	Cached int
	// Analyzers holds the per-analyzer breakdown, in suite order.
	Analyzers []AnalyzerTime
}

// Result is the outcome of a module-wide analysis run.
type Result struct {
	// Findings are the surviving findings, sorted by position.
	Findings []Finding
	// Allows is every //lint:allow in the module with its used state — the
	// suppression-debt report behind icnvet -allows.
	Allows []AllowRecord
	// Facts is the module-wide fact store (icnvet -facts-debug).
	Facts *FactStore
	// Timing is the phase breakdown.
	Timing Timing
}

// RunModule executes analyzers over every package of the module rooted at
// opts.Dir: scan, (incremental) type-check, per-package analysis in
// parallel dependency waves with facts flowing downstream, then the
// module-global finish passes and stale-suppression scan.
func RunModule(opts Options) (*Result, error) {
	analyzers := opts.Analyzers
	if len(analyzers) == 0 {
		analyzers = Analyzers
	}
	pool := opts.Pool
	if pool == nil {
		pool = pipe.Shared()
	}

	res := &Result{Facts: NewFactStore()}
	start := time.Now()
	mod, err := scanModule(opts.Dir)
	if err != nil {
		return nil, err
	}
	res.Timing.Scan = time.Since(start)
	res.Timing.Packages = len(mod.Pkgs)

	// Decide which packages must re-analyze and which replay from cache.
	cacheDir := opts.CacheDir
	var keys map[string]string
	cached := map[string]*cacheEntry{}
	if opts.Cache {
		if cacheDir == "" {
			cacheDir = filepath.Join(mod.Dir, ".icnvet-cache")
		}
		registerFactTypes(analyzers)
		keys = computeCacheKeys(mod, analyzers)
		for _, pkg := range mod.Pkgs {
			if e, ok := readCacheEntry(cacheDir, pkg.PkgPath, keys[pkg.PkgPath]); ok {
				cached[pkg.PkgPath] = e
			}
		}
	}
	res.Timing.Cached = len(cached)

	// Type-check the stale packages plus their transitive module-internal
	// dependencies (whose *types.Package objects the stale checks import);
	// fully cached runs skip type-checking entirely.
	var need map[string]bool
	if opts.Cache {
		need = map[string]bool{}
		var add func(pkgPath string)
		add = func(pkgPath string) {
			if need[pkgPath] {
				return
			}
			need[pkgPath] = true
			if pkg := mod.byPath[pkgPath]; pkg != nil {
				for _, dep := range pkg.imports {
					add(dep)
				}
			}
		}
		for _, pkg := range mod.Pkgs {
			if cached[pkg.PkgPath] == nil {
				add(pkg.PkgPath)
			}
		}
	}
	loadStart := time.Now()
	mod.CheckPackages(need, pool)
	res.Timing.Load = time.Since(loadStart)

	// Analyze in dependency waves: packages of equal topological level are
	// independent and run in parallel; the wave barrier guarantees every
	// fact a package imports was exported (or replayed) by an earlier wave.
	perAnalyzer := make([]int64, len(analyzers))
	globalAllows := allowIndex{}
	var findings []Finding
	var mu sync.Mutex
	waves := map[int][]*Package{}
	maxLevel := 0
	for _, pkg := range mod.Pkgs {
		waves[pkg.level] = append(waves[pkg.level], pkg)
		if pkg.level > maxLevel {
			maxLevel = pkg.level
		}
	}
	analyzeStart := time.Now()
	for level := 1; level <= maxLevel; level++ {
		wave := waves[level]
		if len(wave) == 0 {
			continue
		}
		_ = pool.ForEach(context.Background(), len(wave), func(i int) {
			pkg := wave[i]
			if e := cached[pkg.PkgPath]; e != nil {
				res.Facts.install(e.Facts)
				allows := allowIndex{}
				for _, rec := range e.Allows {
					r := rec
					allows[allowKey{r.Pos.Filename, r.Pos.Line, r.Analyzer}] = &r
				}
				mu.Lock()
				findings = append(findings, e.Findings...)
				globalAllows.merge(allows)
				mu.Unlock()
				return
			}
			pkgFindings, allows := analyzePackage(mod, pkg, analyzers, res.Facts, perAnalyzer)
			if opts.Cache {
				// Snapshot before the global phases mutate the used bits:
				// a cached replay re-runs those phases fresh, so the entry
				// must hold only local-phase state.
				entry := &cacheEntry{
					Key:      keys[pkg.PkgPath],
					Findings: pkgFindings,
					Facts:    res.Facts.records(pkg.PkgPath),
					Allows:   make([]AllowRecord, 0, len(allows)),
				}
				for _, rec := range allows.records() {
					entry.Allows = append(entry.Allows, *rec)
				}
				writeCacheEntry(cacheDir, pkg.PkgPath, entry)
			}
			mu.Lock()
			findings = append(findings, pkgFindings...)
			globalAllows.merge(allows)
			mu.Unlock()
		})
	}
	res.Timing.Analyze = time.Since(analyzeStart)

	// Module-global phase: finish passes see the full fact store and report
	// through the merged allow index; then unused suppressions become
	// findings themselves.
	finishStart := time.Now()
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for i, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		fStart := time.Now()
		a.Finish(&FinishPass{
			Analyzer:   a,
			ModulePath: mod.Path,
			facts:      res.Facts,
			allows:     globalAllows,
			findings:   &findings,
		})
		perAnalyzer[i] += int64(time.Since(fStart))
	}
	staleAllowFindings(globalAllows, ran, &findings)
	res.Timing.Finish = time.Since(finishStart)

	for i, a := range analyzers {
		res.Timing.Analyzers = append(res.Timing.Analyzers, AnalyzerTime{Name: a.Name, Total: time.Duration(perAnalyzer[i])})
	}
	for _, rec := range globalAllows.records() {
		res.Allows = append(res.Allows, *rec)
	}
	SortFindings(findings)
	res.Findings = findings
	return res, nil
}

// analyzePackage runs the analyzers over one package, accumulating
// per-analyzer nanoseconds into perAnalyzer when non-nil.
func analyzePackage(mod *Module, pkg *Package, analyzers []*Analyzer, store *FactStore, perAnalyzer []int64) ([]Finding, allowIndex) {
	var findings []Finding
	allows := indexAllows(mod.Fset, pkg.Files, &findings)
	for i, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       mod.Fset,
			Files:      pkg.Files,
			PkgPath:    pkg.PkgPath,
			ModulePath: mod.Path,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			facts:      store,
			allows:     allows,
			findings:   &findings,
		}
		start := time.Now()
		a.Run(pass)
		if perAnalyzer != nil {
			atomic.AddInt64(&perAnalyzer[i], int64(time.Since(start)))
		}
	}
	return findings, allows
}
