package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// ErrWrap enforces the error-chain contract: when fmt.Errorf is given an
// error argument, the format must wrap it with %w. Formatting an error
// with %v or %s flattens it to text, so errors.Is and errors.As stop
// working across stage boundaries — sentinel checks like
// errors.Is(err, collect.ErrNoRecords) silently never match once a
// careless wrap sits in between.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf with an error argument must use %w",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) {
	inspectAll(pass, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if funcFullName(calleeFunc(pass, call)) != "fmt.Errorf" || len(call.Args) < 2 {
			return true
		}
		lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
		if !ok {
			return true // dynamic format string: nothing to prove
		}
		format, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		wraps := countWrapVerbs(format)
		errArgs := 0
		for _, arg := range call.Args[1:] {
			if implementsError(pass.TypeOf(arg)) {
				errArgs++
			}
		}
		if errArgs > wraps {
			pass.Reportf(call.Pos(), "fmt.Errorf formats an error without %%w; errors.Is/As cannot see through it")
		}
		return true
	})
}

// countWrapVerbs counts %w verbs, skipping literal %% escapes.
func countWrapVerbs(format string) int {
	count := 0
	for i := 0; i+1 < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		if format[i+1] == '%' {
			i++ // skip the escape entirely
			continue
		}
		// Scan past flags/width to the verb.
		j := i + 1
		for j < len(format) && strings.ContainsRune("+-# 0123456789.[]*", rune(format[j])) {
			j++
		}
		if j < len(format) && format[j] == 'w' {
			count++
		}
		i = j
	}
	return count
}
