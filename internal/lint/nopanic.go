package lint

import (
	"go/ast"
)

// PanicFreeLibrary enforces the error-propagation contract: library
// packages (internal/*) surface failures as returned errors flowing
// through the pipeline's StageError machinery, not as panics. A panic in
// a stage body tears down the whole process instead of cancelling the run
// cleanly, and it cannot be inspected with errors.Is/As across stage
// boundaries.
//
// Panics that check compiled-in invariants (impossible-by-construction
// states, programmer errors caught at development time) are permitted
// when annotated with //lint:allow nopanic <reason>; the annotation forces
// the "why is this not a returned error" justification into the source.
var PanicFreeLibrary = &Analyzer{
	Name: "nopanic",
	Doc:  "internal/* packages must return errors instead of panicking",
	Run:  runPanicFreeLibrary,
}

func runPanicFreeLibrary(pass *Pass) {
	if !underModule(pass.PkgPath, pass.ModulePath, "internal") {
		return
	}
	inspectAll(pass, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || !isBuiltin(pass, id, "panic") {
			return true
		}
		pass.Reportf(call.Pos(), "panic in library package; return an error (it flows through pipe.StageError) or annotate the invariant")
		return true
	})
}
