// Package snapfreezefixture exercises the snapfreeze analyzer in both
// directions: writes after a snapshot or result escapes (SwapSnapshot,
// a registry store, ResultFor, an atomic load) fire, while construction
// writes before publishing and read-only access stay quiet.
package snapfreezefixture

import (
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/serve"
)

// afterSwap mutates a snapshot that escaped through SwapSnapshot: the
// escape summary exported by the serve package marks the parameter
// published.
func afterSwap(s *serve.Server, snap *serve.ModelSnapshot) {
	_ = s.SwapSnapshot(snap)
	snap.K = 3 // want snapfreeze
}

// afterAtomicStore publishes directly through an atomic pointer.
func afterAtomicStore(slot *atomic.Pointer[serve.ModelSnapshot], snap *serve.ModelSnapshot) {
	slot.Store(snap)
	snap.Services = 9 // want snapfreeze
}

// registry mirrors the refresher's revision history: storing a result
// into the receiver map publishes it (an intra-package escape summary).
type registry struct {
	history map[uint64]*analysis.Result
}

func (r *registry) add(rev uint64, res *analysis.Result) {
	r.history[rev] = res
}

func afterRegister(r *registry, res *analysis.Result) {
	r.add(7, res)
	res.K = 0 // want snapfreeze
}

// afterResultFor mutates a result aliased out of the refresher's shared
// history (ReturnsPublished fact on ResultFor).
func afterResultFor(r *serve.Refresher) {
	res, ok := r.ResultFor(1)
	if ok {
		res.K = 5 // want snapfreeze
	}
}

// scale is a known mutator of its argument (Mutates fact).
func scale(res *analysis.Result) {
	res.K = 1
}

// mutateViaHelper hands a published result to a mutator.
func mutateViaHelper(r *serve.Refresher) {
	res, _ := r.ResultFor(2)
	scale(res) // want snapfreeze
}

// construct writes during construction, before any escape: quiet.
func construct() *serve.ModelSnapshot {
	snap := &serve.ModelSnapshot{}
	snap.K = 4
	snap.Services = 12
	return snap
}

// publishFresh finishes all writes before the snapshot escapes: quiet.
func publishFresh(s *serve.Server) {
	snap := &serve.ModelSnapshot{}
	snap.K = 2
	_ = s.SwapSnapshot(snap)
}

// readPublished only reads through the published alias: quiet.
func readPublished(r *serve.Refresher) int {
	res, ok := r.ResultFor(3)
	if !ok {
		return 0
	}
	return res.K
}

// freshFromPublished builds a replacement instead of mutating: quiet.
func freshFromPublished(s *serve.Server, r *serve.Refresher) {
	res, ok := r.ResultFor(4)
	if !ok {
		return
	}
	next, err := serve.NewModelSnapshot(res)
	if err != nil {
		return
	}
	_ = s.SwapSnapshot(next)
}
