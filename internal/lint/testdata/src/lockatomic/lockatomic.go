// Package lockatomicfixture exercises the lockatomic analyzer both ways:
// a field incremented through sync/atomic must never see a plain access,
// and a field whose every write holds the receiver mutex must hold it on
// reads too. *Locked helpers are trusted, fields with no consistent
// discipline are left alone, and sync-owned fields (the mutex itself)
// are never tracked.
package lockatomicfixture

import (
	"sync"
	"sync/atomic"
)

type counterBox struct {
	mu    sync.Mutex
	hits  int64
	total int64
	mixed int64
	cold  int64
}

// bump establishes the atomic discipline on hits.
func (b *counterBox) bump() {
	atomic.AddInt64(&b.hits, 1)
}

// read races bump: plain load of an atomically-written field.
func (b *counterBox) read() int64 {
	return b.hits // want lockatomic
}

// resetHits races bump from the write side.
func (b *counterBox) resetHits() {
	b.hits = 0 // want lockatomic
}

// addTotal establishes the mutex discipline on total: every write holds
// counterBox.mu.
func (b *counterBox) addTotal(n int64) {
	b.mu.Lock()
	b.total += n
	b.mu.Unlock()
}

// totalGuarded reads under the same mutex: quiet (the deferred Unlock
// does not end the critical section early).
func (b *counterBox) totalGuarded() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// totalRacy reads the mutex-guarded field bare.
func (b *counterBox) totalRacy() int64 {
	return b.total // want lockatomic
}

// totalLocked is trusted by naming convention to run with the receiver's
// locks held: quiet.
func (b *counterBox) totalLocked() int64 {
	return b.total
}

// setMixed and setMixedFast write mixed both with and without the mutex,
// so no guard is inferred and readMixed stays quiet — the discipline is
// inconsistent, not violated.
func (b *counterBox) setMixed(n int64) {
	b.mu.Lock()
	b.mixed = n
	b.mu.Unlock()
}

func (b *counterBox) setMixedFast(n int64) {
	b.mixed = n
}

func (b *counterBox) readMixed() int64 {
	return b.mixed
}

// cold has no atomic accesses and no guarded writes: plain everywhere is
// fine.
func (b *counterBox) coldWrite(n int64) {
	b.cold = n
}

func (b *counterBox) coldRead() int64 {
	return b.cold
}
