// Package ctxguardanalysisfixture pins the ctxguard scope extension to
// internal/analysis. The test checks it under a synthetic
// internal/analysis/... import path, so the guarded-subtree rules apply:
// bare channel operations, sleeps and uncancellable selects fire, while
// the memoization idiom the analysis package actually uses — a
// single-flight wait select on a struct{} done channel with a
// cancellation case — stays quiet.
package ctxguardanalysisfixture

import (
	"context"
	"time"
)

type entry struct {
	done  chan struct{}
	value float64
	err   error
}

func backoff() {
	time.Sleep(10 * time.Millisecond) // want ctxguard
}

func publish(ch chan []float64, profile []float64) {
	ch <- profile // want ctxguard
}

func collect(ch chan float64) (sum float64) {
	for v := range ch { // want ctxguard
		sum += v
	}
	return sum
}

func firstOf(a, b chan float64) float64 {
	select { // want ctxguard
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// --- quiet forms ---

// waitSingleFlight is the temporal-cache wait path: block on the
// computing caller's done channel or on the waiter's own context.
func waitSingleFlight(ctx context.Context, e *entry) (float64, error) {
	select {
	case <-e.done:
		return e.value, e.err
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

func tryPublish(ch chan []float64, profile []float64) bool {
	select {
	case ch <- profile:
		return true
	default:
		return false
	}
}

func waitCancelled(ctx context.Context) {
	<-ctx.Done()
}
