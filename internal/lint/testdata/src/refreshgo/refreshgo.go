// Package refreshgo is a lint fixture shaped like the serve refresh
// controller: a background tick loop spawned with a raw go statement must
// be flagged by poolgo, while the compliant spelling — the same loop
// launched through pipe.Tasks, as internal/serve.Refresher does — must
// come back clean.
package refreshgo

import (
	"time"

	"repro/internal/pipe"
)

type badRefresher struct {
	stop chan struct{}
}

// Start spawns the tick loop with a raw go statement: library code must
// not own goroutine lifecycles outside pipe.
func (r *badRefresher) Start() {
	go r.loop() // want poolgo
}

func (r *badRefresher) loop() {
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
		}
	}
}

type goodRefresher struct {
	tasks pipe.Tasks
	stop  chan struct{}
}

// Start launches the tick loop through pipe.Tasks — the tracked spawn
// path the poolgo contract sanctions.
func (r *goodRefresher) Start() {
	r.tasks.Go(r.loop)
}

// Stop halts the loop and waits for it, proving the tracked handle is
// also the join point.
func (r *goodRefresher) Stop() {
	close(r.stop)
	r.tasks.Wait()
}

func (r *goodRefresher) loop() {
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
		}
	}
}
