// Package allowbad is a lint fixture: a //lint:allow annotation without a
// reason. It must not suppress the panic below it, and the annotation
// itself must be reported by the pseudo-analyzer "lint".
package allowbad

func explode() {
	//lint:allow nopanic
	panic("still flagged")
}
