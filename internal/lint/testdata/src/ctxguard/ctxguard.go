// Package ctxguardfixture exercises the ctxguard analyzer both ways. The
// test checks it under a synthetic internal/serve/... import path, so the
// trio rules apply: bare channel operations, uncancellable selects,
// sleeps, context-less dials and calls into blocking helper packages all
// fire; select-guarded operations, ctx-taking APIs and struct{}-channel
// waits stay quiet.
package ctxguardfixture

import (
	"context"
	"net"
	"time"

	dep "repro/internal/ctxguarddepfixture"
)

func sleeper() {
	time.Sleep(time.Second) // want ctxguard
}

func dialer() (net.Conn, error) {
	return net.Dial("tcp", "127.0.0.1:0") // want ctxguard
}

func bareSend(ch chan int) {
	ch <- 1 // want ctxguard
}

func bareRecv(ch chan int) int {
	return <-ch // want ctxguard
}

func drain(ch chan int) (sum int) {
	for v := range ch { // want ctxguard
		sum += v
	}
	return sum
}

func blockySelect(a, b chan int) int {
	select { // want ctxguard
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func launder() {
	dep.Block() // want ctxguard
}

// --- quiet forms ---

func guardedSend(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	case <-ctx.Done():
	}
}

func guardedRecv(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

func trySend(ch chan int) {
	select {
	case ch <- 1:
	default:
	}
}

func waitDone(ctx context.Context) {
	<-ctx.Done()
}

func stopLoop(stop chan struct{}, ch chan int) (sum int) {
	for {
		select {
		case <-stop:
			return sum
		case v := <-ch:
			sum += v
		}
	}
}

func dialCtx(ctx context.Context) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", "127.0.0.1:0")
}

func launderCtx(ctx context.Context) {
	dep.BlockCtx(ctx)
}
