// Package ctxguarddepfixture is a helper-package fixture for ctxguard:
// it lives OUTSIDE the guarded trio, so its own blocking operations are
// not findings, but Block exports a ctxBlockingFact that makes calls to
// it from the trio fire. BlockCtx accepts a context and exports nothing.
package ctxguarddepfixture

import (
	"context"
	"time"
)

// Block sleeps with no way to cancel; callers inside the guarded trio
// must not launder their waits through it.
func Block() {
	time.Sleep(time.Millisecond)
}

// BlockCtx waits cancellably: it takes a context, so no blocking fact is
// exported and trio callers may use it freely.
func BlockCtx(ctx context.Context) {
	t := time.NewTimer(time.Millisecond)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
