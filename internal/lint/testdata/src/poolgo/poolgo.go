// Package poolgo is a lint fixture: raw go statements that the poolgo
// analyzer must flag when the package is checked under an internal/ path,
// and must not flag when checked under cmd/ or when annotated.
package poolgo

func spawn(fns []func()) {
	for _, fn := range fns {
		go fn() // want poolgo
	}
	done := make(chan struct{})
	//lint:allow poolgo fixture exercising the annotation escape hatch
	go close(done)
	<-done
}
