// Package errwrap is a lint fixture: fmt.Errorf calls that flatten error
// arguments with %v or %s (flagged) against compliant %w wraps, literal %%
// escapes, and non-error arguments.
package errwrap

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

func wraps(err error) error {
	bad := fmt.Errorf("stage failed: %v", err) // want errwrap
	_ = bad
	alsoBad := fmt.Errorf("stage %d: %w then %s", 3, err, errSentinel) // want errwrap
	_ = alsoBad
	good := fmt.Errorf("stage failed: %w", err)
	_ = good
	both := fmt.Errorf("stage %d: %w then %w", 3, err, errSentinel)
	return both
}

func nonError(pct int) error {
	return fmt.Errorf("loaded %d%% of shard", pct)
}
