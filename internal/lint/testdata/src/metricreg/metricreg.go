// Package metricregfixture exercises the metricreg analyzer both ways:
// emitting a name absent from the obs catalog fires, emitting a counter
// through a histogram API fires, composing a name at runtime fires
// locally, and catalog-registered names emitted through the right API
// stay quiet.
package metricregfixture

import "repro/internal/obs"

// registered emits catalog names through their registered kinds: quiet.
func registered() {
	obs.Add("serve.ingest.batches", 1)
	obs.ObserveMS("serve.classify.latency.ms", 1.5)
}

// unregistered emits a name the obs catalog does not know.
func unregistered() {
	obs.Add("bogus.metric", 1) // want metricreg
}

// kindMismatch emits a registered counter through the histogram API.
func kindMismatch() {
	obs.ObserveMS("serve.ingest.batches", 2.0) // want metricreg
}

// dynamicName composes the metric name at runtime, so the registry check
// cannot see it.
func dynamicName(site string) {
	obs.Add("fault."+site+".errs", 1) // want metricreg
}
