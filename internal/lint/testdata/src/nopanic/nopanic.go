// Package nopanic is a lint fixture: a bare panic that the nopanic
// analyzer must flag under an internal/ path, an annotated invariant it
// must pass, and an error return that is always fine.
package nopanic

import "errors"

var errNegative = errors.New("negative input")

func validate(n int) error {
	if n < 0 {
		panic("negative input") // want nopanic
	}
	if n > 1<<20 {
		//lint:allow nopanic fixture invariant with a documented reason
		panic("implausible size")
	}
	if n == 0 {
		return errNegative
	}
	return nil
}

// mustValidate is the Must-variant idiom: an annotated panic wrapping the
// error-returning twin for callers whose input is proven valid.
func mustValidate(n int) {
	if err := validate(n); err != nil {
		//lint:allow nopanic Must variant over the error-returning twin
		panic(err)
	}
}

// mustValidateBare is the same idiom without the annotation; the
// analyzer must still flag it.
func mustValidateBare(n int) {
	if err := validate(n); err != nil {
		panic(err) // want nopanic
	}
}
