// Package rngdet is a lint fixture: a banned math/rand import, a
// time-seeded rng constructor, and a pool fan-out body that reads a shared
// rng.Source — against the compliant pre-split pattern.
package rngdet

import (
	"context"
	"math/rand" // want rngdet
	"time"

	"repro/internal/pipe"
	"repro/internal/rng"
)

func badSeed() *rng.Source {
	_ = rand.Int()
	return rng.New(uint64(time.Now().UnixNano())) // want rngdet
}

func goodSeed(seed uint64) *rng.Source {
	return rng.New(seed)
}

func shared(p *pipe.Pool, src *rng.Source, out []float64) error {
	return p.ForEach(context.Background(), len(out), func(i int) {
		out[i] = src.Float64() // want rngdet
	})
}

func preSplit(p *pipe.Pool, src *rng.Source, out []float64) error {
	streams := make([]*rng.Source, len(out))
	for i := range streams {
		streams[i] = src.Split()
	}
	return p.ForEach(context.Background(), len(out), func(i int) {
		out[i] = streams[i].Float64()
	})
}
