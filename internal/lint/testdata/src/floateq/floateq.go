// Package floateq is a lint fixture: exact float comparisons (flagged
// unless against the constant zero or annotated) and float accumulation
// over map iteration order (flagged unless the keys are sorted first).
package floateq

import "sort"

func compare(a, b float64) int {
	if a == b { // want floateq
		return 0
	}
	if a != b { // want floateq
		return 1
	}
	if a == 0 {
		return 2 // exact-zero guard is exempt
	}
	//lint:allow floateq fixture annotated exact comparison
	if a == b {
		return 3
	}
	return 4
}

func accumulate(m map[string]float64) (float64, int) {
	var sum float64
	for _, v := range m {
		sum += v // want floateq
	}
	count := 0
	for range m {
		count += 1 // integer accumulation is order-independent
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sorted float64
	for _, k := range keys {
		sorted += m[k] // slice iteration: deterministic order
	}
	return sum + sorted, count
}
