// Package allowstalefixture exercises the suppression-debt pseudo
// analyzer: a //lint:allow that suppresses a real finding is "used", one
// with nothing to suppress is reported stale, and one naming an analyzer
// that does not exist is reported as such. TestStaleAllow asserts the
// findings directly — want markers cannot live inside allow comments.
package allowstalefixture

// helper carries a suppression that actually fires: the annotation is
// used, so no stale finding is produced for it.
func helper() {
	//lint:allow nopanic fixture: suppression that a real finding consumes
	panic("boom")
}

// clean carries a suppression with nothing beneath it: stale.
func clean() int {
	//lint:allow nopanic fixture: nothing here panics
	return 1
}

// unknown names an analyzer that does not exist.
func unknown() int {
	//lint:allow nosuchanalyzer fixture: no analyzer has this name
	return 2
}
