package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file holds the helpers shared by the analyzer implementations:
// resolving callees to fully-qualified names, classifying types, and
// walking enclosing scopes.

// calleeFunc resolves the function or method a call expression invokes,
// or nil for builtins, conversions and indirect calls through variables.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.Uses[id].(*types.Func)
	return fn
}

// funcFullName returns a stable "pkgpath.Func" or "(recv).Method" name.
func funcFullName(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	return fn.FullName()
}

// isBuiltin reports whether the identifier resolves to the named builtin.
func isBuiltin(pass *Pass, id *ast.Ident, name string) bool {
	if id == nil || id.Name != name {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isFloat reports whether t's underlying type is float32 or float64.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// namedType reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func namedType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return types.Implements(t, errorType) ||
		types.Implements(types.NewPointer(t), errorType)
}

// underModule reports whether pkgPath sits under module/<sub>/ (or equals
// module/<sub>).
func underModule(pkgPath, module, sub string) bool {
	prefix := module + "/" + sub
	return pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/")
}

// inspectAll walks every file of the pass with fn.
func inspectAll(pass *Pass, fn func(ast.Node) bool) {
	for _, f := range pass.Files {
		ast.Inspect(f, fn)
	}
}
