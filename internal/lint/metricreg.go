package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"sort"
)

// metricreg closes the metric namespace: every metric name the module
// emits through internal/obs must be registered in the obs.Catalog
// exactly once with the matching kind, and every non-dynamic catalog
// entry must be emitted from at least one call site. The obs package
// exports its catalog as a package fact, every other package exports the
// metric uses it observed, and the finish pass joins the two — so an
// unregistered series, a dead registration, a duplicate entry or a
// counter observed as a histogram is a lint failure, not a dashboard
// surprise.

// metricCatalogEntry is one obs.Catalog row as seen by the analyzer.
type metricCatalogEntry struct {
	Name    string
	Kind    string // "counter" | "histogram"
	Dynamic bool
	Pos     token.Position
}

// metricCatalogFact is the package fact the obs package exports.
type metricCatalogFact struct {
	Entries []metricCatalogEntry
}

// metricUse is one obs.Add / obs.ObserveMS / obs.GetHistogram call site
// with a constant metric name.
type metricUse struct {
	Name string
	Kind string
	Pos  token.Position
}

// metricUseFact is the package fact every non-obs package exports.
type metricUseFact struct {
	Uses []metricUse
}

// MetricRegistry is the metricreg analyzer.
var MetricRegistry = &Analyzer{
	Name:      "metricreg",
	Doc:       "every emitted metric name is registered in the obs catalog exactly once, with the right kind, and every registered metric is emitted",
	Run:       runMetricReg,
	FactTypes: []any{metricCatalogFact{}, metricUseFact{}},
	Finish:    finishMetricReg,
}

// obsPkgPath returns the metrics package path for the module under
// analysis.
func obsPkgPath(modulePath string) string { return modulePath + "/internal/obs" }

// metricEmitters maps the obs entry points to the metric kind they imply.
var metricEmitters = map[string]string{
	"Add":          "counter",
	"ObserveMS":    "histogram",
	"GetHistogram": "histogram",
}

func runMetricReg(pass *Pass) {
	if pass.PkgPath == obsPkgPath(pass.ModulePath) {
		// The catalog's own package registers; its internals forward name
		// parameters (Add, metricName, the init seeding loop), so its call
		// sites are exempt from the constant-name rule.
		exportMetricCatalog(pass)
		return
	}
	var fact metricUseFact
	inspectAll(pass, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPkgPath(pass.ModulePath) {
			return true
		}
		kind, ok := metricEmitters[fn.Name()]
		if !ok || len(call.Args) == 0 {
			return true
		}
		name, isConst := constStringArg(pass, call.Args[0])
		if !isConst {
			pass.Reportf(call.Args[0].Pos(),
				"metric name passed to obs.%s is not a string constant; dynamic names bypass the catalog (register every composed name and annotate the site)", fn.Name())
			return true
		}
		fact.Uses = append(fact.Uses, metricUse{Name: name, Kind: kind, Pos: pass.Fset.Position(call.Args[0].Pos())})
		return true
	})
	if len(fact.Uses) > 0 {
		pass.ExportPackageFact(fact)
	}
}

// constStringArg resolves arg to a compile-time string constant.
func constStringArg(pass *Pass, arg ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// exportMetricCatalog parses the obs package's Catalog composite literal
// into a package fact.
func exportMetricCatalog(pass *Pass) {
	var fact metricCatalogFact
	inspectAll(pass, func(n ast.Node) bool {
		spec, ok := n.(*ast.ValueSpec)
		if !ok {
			return true
		}
		for i, name := range spec.Names {
			if name.Name != "Catalog" || i >= len(spec.Values) {
				continue
			}
			lit, ok := spec.Values[i].(*ast.CompositeLit)
			if !ok {
				continue
			}
			for _, elt := range lit.Elts {
				entry, ok := parseCatalogEntry(pass, elt)
				if ok {
					fact.Entries = append(fact.Entries, entry)
				}
			}
		}
		return true
	})
	if len(fact.Entries) > 0 {
		pass.ExportPackageFact(fact)
	}
}

// parseCatalogEntry reads one MetricDef composite literal.
func parseCatalogEntry(pass *Pass, elt ast.Expr) (metricCatalogEntry, bool) {
	lit, ok := elt.(*ast.CompositeLit)
	if !ok {
		return metricCatalogEntry{}, false
	}
	entry := metricCatalogEntry{Pos: pass.Fset.Position(elt.Pos())}
	for _, field := range lit.Elts {
		kv, ok := field.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Name":
			if s, ok := constStringArg(pass, kv.Value); ok {
				entry.Name = s
			}
		case "Kind":
			if id, ok := ast.Unparen(kv.Value).(*ast.Ident); ok {
				switch id.Name {
				case "KindCounter":
					entry.Kind = "counter"
				case "KindHistogram":
					entry.Kind = "histogram"
				}
			}
		case "Dynamic":
			if id, ok := ast.Unparen(kv.Value).(*ast.Ident); ok && id.Name == "true" {
				entry.Dynamic = true
			}
		}
	}
	return entry, entry.Name != ""
}

func finishMetricReg(fp *FinishPass) {
	var catalog metricCatalogFact
	if !fp.packageFact(obsPkgPath(fp.ModulePath), &catalog) {
		// No catalog package in the analyzed set (e.g. a fixture-only run):
		// nothing to join against.
		return
	}
	byName := map[string]*metricCatalogEntry{}
	for i := range catalog.Entries {
		e := &catalog.Entries[i]
		if prev, dup := byName[e.Name]; dup {
			fp.Reportf(e.Pos, "metric %q is registered twice in the obs catalog (first at %s:%d)", e.Name, prev.Pos.Filename, prev.Pos.Line)
			continue
		}
		byName[e.Name] = e
	}
	used := map[string]bool{}
	fp.EachPackageFact(func(pkgPath string, f any) {
		uses, ok := f.(metricUseFact)
		if !ok {
			return
		}
		for _, u := range uses.Uses {
			entry, registered := byName[u.Name]
			if !registered {
				fp.Reportf(u.Pos, "metric %q is not registered in the obs catalog; add a MetricDef so /metrics cannot grow unregistered series", u.Name)
				continue
			}
			if entry.Kind != u.Kind {
				fp.Reportf(u.Pos, "metric %q is registered as a %s but emitted as a %s", u.Name, entry.Kind, u.Kind)
			}
			used[u.Name] = true
		}
	})
	// Dead registrations: a non-dynamic entry no call site emits.
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		e := byName[n]
		if !e.Dynamic && !used[n] {
			fp.Reportf(e.Pos, "metric %q is registered but never emitted; delete the entry or mark it Dynamic with an annotated composition site", n)
		}
	}
}

// packageFact copies the fact this analyzer exported about pkgPath into
// *ptr (FinishPass-side import).
func (fp *FinishPass) packageFact(pkgPath string, ptr any) bool {
	return fp.facts.get(factKey{fp.Analyzer.Name, pkgPath, ""}, ptr)
}
