package experiments

import (
	"repro/internal/analysis"
	"repro/internal/mat"
	"repro/internal/rca"
)

// matDense aliases the dense matrix type for the ablation helpers.
type matDense = mat.Dense

// rcaOf returns the RCA feature matrix of a traffic matrix.
func rcaOf(t *mat.Dense) *mat.Dense { return rca.RCA(t) }

// normOf returns the globally max-normalized traffic matrix.
func normOf(t *mat.Dense) *mat.Dense { return rca.NormalizeByGlobalMax(t) }

// analysisARI proxies the adjusted Rand index.
func analysisARI(a, b []int) float64 { return analysis.ARI(a, b) }

// backgroundSample picks n deterministic RSCA rows as the KernelSHAP
// background distribution.
func backgroundSample(res *analysis.Result, n int) *mat.Dense {
	rows := res.RSCA.Rows()
	if n > rows {
		n = rows
	}
	bg := mat.NewDense(n, res.RSCA.Cols())
	for i := 0; i < n; i++ {
		copy(bg.Row(i), res.RSCA.Row(i*rows/n))
	}
	return bg
}
