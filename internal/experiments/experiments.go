// Package experiments regenerates every table and figure of the paper's
// evaluation from a pipeline run, as text artifacts with machine-checkable
// shape assertions. Artifact IDs match the per-experiment index of
// DESIGN.md (T1, F1..F11) plus the ablation studies (A1..A3).
package experiments

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/envmodel"
	"repro/internal/rca"
	"repro/internal/report"
	"repro/internal/services"
	"repro/internal/shap"
	"repro/internal/stats"
)

// Check is one paper-shape assertion evaluated against the measured run.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// Artifact is a regenerated table or figure.
type Artifact struct {
	// ID is the experiment id (T1, F1..F11, A1..A3).
	ID string
	// Title describes the paper artifact.
	Title string
	// Text is the rendered table/heatmap/figure.
	Text string
	// Checks holds the shape assertions recorded into EXPERIMENTS.md.
	Checks []Check
}

// Passed reports whether every check of the artifact holds.
func (a Artifact) Passed() bool {
	for _, c := range a.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Suite regenerates all artifacts from one pipeline result.
type Suite struct {
	Res *analysis.Result
	// TemporalAntennasPerCluster bounds the Fig. 10/11 median sample.
	TemporalAntennasPerCluster int

	shapCache map[int]shap.ClassSummary
}

// NewSuite runs the pipeline with the given configuration and wraps it.
func NewSuite(cfg analysis.Config) (*Suite, error) {
	res, err := analysis.Run(cfg)
	if err != nil {
		return nil, err
	}
	return &Suite{Res: res, TemporalAntennasPerCluster: 40}, nil
}

// failedArtifact renders an artifact whose generation failed: the error
// becomes a failing check so EXPERIMENTS.md records the breakage instead
// of the process dying mid-report.
func failedArtifact(id, title string, err error) Artifact {
	return Artifact{
		ID:    id,
		Title: title,
		Text:  fmt.Sprintf("generation failed: %v\n", err),
		Checks: []Check{
			check("generated", false, "%v", err),
		},
	}
}

func check(name string, pass bool, format string, args ...interface{}) Check {
	return Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)}
}

// Table1 regenerates the indoor environment inventory.
func (s *Suite) Table1() Artifact {
	counts := map[envmodel.EnvType]int{}
	for _, a := range s.Res.Dataset.Indoor {
		counts[a.Env]++
	}
	tb := report.NewTable("Table 1: indoor environment types", "Environment", "N_env (measured)", "N_env (paper)")
	total := 0
	for _, e := range envmodel.AllEnvTypes() {
		tb.AddRow(e.String(), counts[e], e.AntennaCount())
		total += counts[e]
	}
	tb.AddRow("TOTAL", total, envmodel.TotalIndoorAntennas)

	// Exact equality intended: Scale is a configuration constant, not a
	// computed value, and 1.0 is its full-scale sentinel.
	//lint:allow floateq configured sentinel value, never computed
	fullScale := s.Res.Config.Scale == 1
	proportional := true
	for _, e := range envmodel.AllEnvTypes() {
		want := float64(e.AntennaCount()) * s.Res.Config.Scale
		if float64(counts[e]) < want*0.5-3 || float64(counts[e]) > want*1.5+3 {
			proportional = false
		}
	}
	checks := []Check{
		check("env-counts-proportional", proportional,
			"every environment within 50%% of scaled Table 1 count (scale %.2f)", s.Res.Config.Scale),
	}
	if fullScale {
		checks = append(checks, check("full-scale-exact", total == envmodel.TotalIndoorAntennas,
			"total %d vs paper 4762", total))
	}
	return Artifact{ID: "T1", Title: "Table 1 — indoor environment inventory", Text: tb.String(), Checks: checks}
}

// Figure1 regenerates the normalized-traffic / RCA / RSCA histograms and
// their skewness comparison.
func (s *Suite) Figure1() Artifact {
	t := s.Res.Dataset.Traffic
	norm := rca.NormalizeByGlobalMax(t)
	rcaM := rca.RCA(t)
	rscaM := rca.RSCAFromRCA(rcaM)

	// Pool the per-antenna feature values of a deterministic antenna
	// sample, as the paper does "for some antennas".
	sample := 200
	if t.Rows() < sample {
		sample = t.Rows()
	}
	var normVals, rcaVals, rscaVals []float64
	var maxRCA float64
	for i := 0; i < sample; i++ {
		idx := i * t.Rows() / sample
		normVals = append(normVals, norm.Row(idx)...)
		rcaVals = append(rcaVals, rcaM.Row(idx)...)
		rscaVals = append(rscaVals, rscaM.Row(idx)...)
		for _, v := range rcaM.Row(idx) {
			if v > maxRCA {
				maxRCA = v
			}
		}
	}
	const figure1Title = "Fig. 1 — normalized traffic vs RCA vs RSCA histograms"
	hNorm, errNorm := stats.NewHistogram(normVals, 40, 0, 1)
	hRCA, errRCA := stats.NewHistogram(rcaVals, 40, 0, 5)
	hRSCA, errRSCA := stats.NewHistogram(rscaVals, 40, -1, 1)
	if err := errors.Join(errNorm, errRCA, errRSCA); err != nil {
		return failedArtifact("F1", figure1Title, err)
	}

	var b strings.Builder
	b.WriteString(report.Histogram("Normalized traffic (by global max)", hNorm.Density(), 0, 1))
	b.WriteString(report.Histogram("RCA (clipped view to 5)", hRCA.Density(), 0, 5))
	b.WriteString(report.Histogram("RSCA", hRSCA.Density(), -1, 1))
	fmt.Fprintf(&b, "max RCA observed: %.2f\n", maxRCA)
	fmt.Fprintf(&b, "skewness: normalized=%.2f  RCA=%.2f  RSCA=%.2f\n",
		stats.Skewness(normVals), stats.Skewness(rcaVals), stats.Skewness(rscaVals))

	// Paper shapes: normalized traffic spikes at 0; RCA right-skewed with
	// a heavy tail beyond 5; RSCA balanced within [-1, 1].
	normSpike := hNorm.ModeBin() == 0 && hNorm.Density()[0] > 0.8
	rcaSkew := stats.Skewness(rcaVals) > 1
	rscaBalanced := absF(stats.Skewness(rscaVals)) < 1
	inBounds := rca.Validate(rscaM) == nil
	return Artifact{
		ID:    "F1",
		Title: figure1Title,
		Text:  b.String(),
		Checks: []Check{
			check("normalized-spike-at-zero", normSpike, "mode bin %d density %.2f", hNorm.ModeBin(), hNorm.Density()[0]),
			check("rca-right-skewed", rcaSkew, "RCA skewness %.2f (tail max %.1f)", stats.Skewness(rcaVals), maxRCA),
			check("rsca-balanced", rscaBalanced, "RSCA skewness %.2f", stats.Skewness(rscaVals)),
			check("rsca-bounded", inBounds, "all RSCA within [-1,1]"),
		},
	}
}

// Figure2 regenerates the Silhouette/Dunn versus k model-selection sweep.
func (s *Suite) Figure2() Artifact {
	tb := report.NewTable("Fig. 2: cluster-count selection", "k", "Silhouette", "Dunn", "Davies-Bouldin")
	var s9, sBest float64
	sBest = -2
	for _, p := range s.Res.Selection {
		db := cluster.DaviesBouldin(s.Res.RSCA, s.Res.Linkage.CutK(p.K))
		tb.AddRow(p.K, p.Silhouette, p.Dunn, db)
		if p.K == 9 {
			s9 = p.Silhouette
		}
		if p.Silhouette > sBest {
			sBest = p.Silhouette
		}
	}
	var b strings.Builder
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "knee candidates (steepest drops): %v\n", s.Res.Knees)

	knee9 := false
	for _, k := range s.Res.Knees {
		if k == 9 || k == 6 {
			knee9 = true
		}
	}
	return Artifact{
		ID:    "F2",
		Title: "Fig. 2 — Silhouette score and Dunn index vs k",
		Text:  b.String(),
		Checks: []Check{
			check("k9-competitive", s9 > 0 && s9 >= 0.5*sBest, "silhouette(9)=%.3f best=%.3f", s9, sBest),
			check("knee-at-6-or-9", knee9, "knees %v include 6 or 9", s.Res.Knees),
		},
	}
}

// Figure3 regenerates the dendrogram structure: thresholds for k=6 and
// k=9, and the three-group organization.
func (s *Suite) Figure3() Artifact {
	l := s.Res.Linkage
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3: dendrogram of %d antennas (%d merges)\n", l.N, len(l.Merges))
	fmt.Fprintf(&b, "cut threshold for k=6: %.3f\n", l.Threshold(6))
	fmt.Fprintf(&b, "cut threshold for k=9: %.3f\n", l.Threshold(9))

	// Group composition at k=3 versus the paper's orange/green/red split
	// of the k=9 clusters.
	three := l.CutK(3)
	nine := s.Res.Labels
	groupOf := make(map[int]map[envmodel.Group]int)
	for i, g3 := range three {
		if groupOf[g3] == nil {
			groupOf[g3] = map[envmodel.Group]int{}
		}
		groupOf[g3][envmodel.GroupOf(nine[i])]++
	}
	pure := 0
	total := 0
	for g3, counts := range groupOf {
		best, sum := 0, 0
		for _, c := range counts {
			if c > best {
				best = c
			}
			sum += c
		}
		fmt.Fprintf(&b, "k=3 branch %d: %v\n", g3, counts)
		pure += best
		total += sum
	}
	branchPurity := float64(pure) / float64(total)
	fmt.Fprintf(&b, "three-branch / paper-group agreement: %.3f\n", branchPurity)

	// Dendrogram fidelity: cophenetic correlation between the hierarchy
	// and the pipeline's shared RSCA distance matrix.
	coph := cluster.CopheneticCorrelation(l, s.Res.Distances())
	fmt.Fprintf(&b, "cophenetic correlation: %.3f\n", coph)

	tb := report.NewTable("clusters at k=9", "cluster", "group", "antennas")
	for c, size := range s.Res.ClusterSizes() {
		tb.AddRow(c, envmodel.GroupOf(c).String(), size)
	}
	b.WriteString(tb.String())

	// Outline of the top merges (the upper structure Fig. 3 shows).
	var outline []report.DendrogramNode
	for i := 0; i < 5 && i < len(l.Merges); i++ {
		m := l.Merges[len(l.Merges)-1-i]
		outline = append(outline, report.DendrogramNode{
			Label:  fmt.Sprintf("merge %d", len(l.Merges)-1-i),
			Height: m.Height,
			Leaves: m.Size,
		})
	}
	b.WriteString(report.DendrogramOutline("top merges (root first):", outline))

	// Section 4.2.2: cutting at k = 6 "corresponds to consolidating the
	// clusters of the orange group into a single cluster ... and merging
	// clusters 6 and 8". Verify both consolidations happen.
	six := l.CutK(6)
	sixOf := func(paperCluster int) map[int]int {
		out := map[int]int{}
		for i, p9 := range nine {
			if p9 == paperCluster {
				out[six[i]]++
			}
		}
		return out
	}
	majoritySix := func(paperCluster int) int {
		best, bestC := -1, -1
		for s6, c := range sixOf(paperCluster) {
			if c > bestC {
				bestC = c
				best = s6
			}
		}
		return best
	}
	orangeConsolidated := majoritySix(0) == majoritySix(4) && majoritySix(4) == majoritySix(7)
	stadiumsMerged := majoritySix(6) == majoritySix(8)
	fmt.Fprintf(&b, "k=6 consolidation: orange {0,4,7} merged=%v, stadium {6,8} merged=%v\n",
		orangeConsolidated, stadiumsMerged)

	return Artifact{
		ID:    "F3",
		Title: "Fig. 3 — dendrogram, 3 groups × 3 subclusters",
		Text:  b.String(),
		Checks: []Check{
			check("monotone-heights", l.HeightsMonotone(), "sorted linkage heights are monotone"),
			check("threshold-order", l.Threshold(6) > l.Threshold(9), "k=6 cut above k=9 cut"),
			check("three-branch-groups", branchPurity > 0.8,
				"k=3 branches align with orange/green/red at %.2f", branchPurity),
			check("k6-consolidation", orangeConsolidated || stadiumsMerged,
				"orange merged=%v stadiums merged=%v (paper: both)", orangeConsolidated, stadiumsMerged),
			check("cophenetic-fidelity", coph > 0.5,
				"cophenetic correlation %.3f", coph),
		},
	}
}

// Figure4 regenerates the RSCA heatmap by cluster.
func (s *Suite) Figure4() Artifact {
	mean := s.Res.MeanRSCAByCluster()
	labels := make([]string, len(mean))
	for c := range labels {
		labels[c] = fmt.Sprintf("cluster %d (%s)", c, envmodel.GroupOf(c))
	}
	text := report.Heatmap("Fig. 4: mean RSCA per service (columns = 73 services)", labels, mean, true)

	spotify := services.MustID("Spotify")
	teams := services.MustID("Microsoft Teams")
	snapchat := services.MustID("Snapchat")
	play := services.MustID("Google Play Store")
	checks := []Check{
		check("orange-over-music",
			mean[0][spotify] > 0.1 && mean[4][spotify] > 0.1 && mean[7][spotify] > 0.1,
			"Spotify RSCA c0=%.2f c4=%.2f c7=%.2f", mean[0][spotify], mean[4][spotify], mean[7][spotify]),
		check("work-over-teams", mean[3][teams] > 0.1 && mean[3][spotify] < 0,
			"cluster 3 Teams=%.2f Spotify=%.2f", mean[3][teams], mean[3][spotify]),
		check("stadium-over-snapchat", mean[6][snapchat] > 0.05 && mean[8][snapchat] > 0.05,
			"Snapchat c6=%.2f c8=%.2f", mean[6][snapchat], mean[8][snapchat]),
		check("commercial-over-playstore", mean[2][play] > 0.1, "Play Store c2=%.2f", mean[2][play]),
	}
	return Artifact{ID: "F4", Title: "Fig. 4 — RSCA heatmap by cluster", Text: text, Checks: checks}
}

// Figure5 regenerates the per-cluster SHAP beeswarm summaries.
func (s *Suite) Figure5() Artifact {
	var b strings.Builder
	names := services.Names()
	type expectation struct {
		cluster int
		service string
		over    bool
		maxRank int
	}
	expectations := []expectation{
		{0, "Spotify", true, 20},
		{4, "Spotify", true, 20},
		{7, "Spotify", true, 20},
		{7, "Mappy", false, 25},
		{3, "Microsoft Teams", true, 10},
		{3, "LinkedIn", true, 15},
		{6, "Snapchat", true, 15},
		// Cluster 8 is the smallest cluster (~1% of antennas); at reduced
		// scale its SHAP sample is a handful of antennas, so the rank
		// bound is looser than the full-scale behaviour (rank ≤ 3).
		{8, "Snapchat", true, 25},
		{2, "Google Play Store", true, 15},
		{1, "Netflix", true, 25},
	}
	var checks []Check
	summaries := make(map[int]bool)
	for _, e := range expectations {
		sum := s.clusterSummary(e.cluster)
		if !summaries[e.cluster] {
			summaries[e.cluster] = true
			fmt.Fprintf(&b, "cluster %d (%s group) — top services by mean |SHAP|:\n",
				e.cluster, envmodel.GroupOf(e.cluster))
			for i, im := range sum.Importances {
				if i >= 10 {
					break
				}
				dir := "under"
				if im.ValueCorrelation > 0 {
					dir = "over"
				}
				fmt.Fprintf(&b, "  %2d. %-24s mean|phi|=%.4f  %s-utilized\n",
					i+1, names[im.Feature], im.MeanAbs, dir)
			}
		}
		id := services.MustID(e.service)
		rank := sum.Rank(id)
		over, found := sum.OverUtilized(id)
		pass := found && rank >= 0 && rank <= e.maxRank && over == e.over
		dir := "over"
		if !e.over {
			dir = "under"
		}
		checks = append(checks, check(
			fmt.Sprintf("c%d-%s-%s", e.cluster, strings.ReplaceAll(strings.ToLower(e.service), " ", "-"), dir),
			pass, "rank=%d over=%v (want %s within top %d)", rank, over, dir, e.maxRank))
	}
	return Artifact{ID: "F5", Title: "Fig. 5 — SHAP beeswarm summaries per cluster", Text: b.String(), Checks: checks}
}

// clusterSummary caches ExplainCluster results across Figure5 checks.
func (s *Suite) clusterSummary(c int) shap.ClassSummary {
	if s.shapCache == nil {
		s.shapCache = map[int]shap.ClassSummary{}
	}
	if sum, ok := s.shapCache[c]; ok {
		return sum
	}
	sum := s.Res.ExplainCluster(c, 25)
	s.shapCache[c] = sum
	return sum
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
