package experiments

import (
	"strings"
	"testing"

	"repro/internal/analysis"
)

// suite is built once; the pipeline is deterministic and the suite caches
// SHAP summaries across figures.
var suiteCache *Suite

func testSuite(t *testing.T) *Suite {
	t.Helper()
	if suiteCache == nil {
		s, err := NewSuite(analysis.Config{
			Seed:         42,
			Scale:        0.12,
			OutdoorCount: 600,
			ForestTrees:  40,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.TemporalAntennasPerCluster = 20
		suiteCache = s
	}
	return suiteCache
}

func requireArtifact(t *testing.T, a Artifact) {
	t.Helper()
	if a.ID == "" || a.Title == "" {
		t.Fatal("artifact missing metadata")
	}
	if strings.TrimSpace(a.Text) == "" {
		t.Fatalf("%s: empty text", a.ID)
	}
	if len(a.Checks) == 0 {
		t.Fatalf("%s: no checks", a.ID)
	}
	for _, c := range a.Checks {
		if !c.Pass {
			t.Errorf("%s check %q failed: %s", a.ID, c.Name, c.Detail)
		}
	}
}

func TestTable1(t *testing.T)   { requireArtifact(t, testSuite(t).Table1()) }
func TestFigure1(t *testing.T)  { requireArtifact(t, testSuite(t).Figure1()) }
func TestFigure2(t *testing.T)  { requireArtifact(t, testSuite(t).Figure2()) }
func TestFigure3(t *testing.T)  { requireArtifact(t, testSuite(t).Figure3()) }
func TestFigure4(t *testing.T)  { requireArtifact(t, testSuite(t).Figure4()) }
func TestFigure5(t *testing.T)  { requireArtifact(t, testSuite(t).Figure5()) }
func TestFigure6(t *testing.T)  { requireArtifact(t, testSuite(t).Figure6()) }
func TestFigure7(t *testing.T)  { requireArtifact(t, testSuite(t).Figure7()) }
func TestFigure8(t *testing.T)  { requireArtifact(t, testSuite(t).Figure8()) }
func TestFigure9(t *testing.T)  { requireArtifact(t, testSuite(t).Figure9()) }
func TestFigure10(t *testing.T) { requireArtifact(t, testSuite(t).Figure10()) }
func TestFigure11(t *testing.T) { requireArtifact(t, testSuite(t).Figure11()) }

func TestAblationFeatureTransform(t *testing.T) {
	requireArtifact(t, testSuite(t).AblationFeatureTransform())
}

func TestAblationWardVsKMeans(t *testing.T) {
	requireArtifact(t, testSuite(t).AblationWardVsKMeans())
}

func TestAblationTreeVsKernelSHAP(t *testing.T) {
	requireArtifact(t, testSuite(t).AblationTreeVsKernelSHAP())
}

func TestAblationLinkages(t *testing.T) {
	requireArtifact(t, testSuite(t).AblationLinkages())
}

func TestAblationStability(t *testing.T) {
	requireArtifact(t, testSuite(t).AblationStability())
}

func TestAllArtifactsUniqueIDs(t *testing.T) {
	arts := testSuite(t).All()
	if len(arts) != 17 {
		t.Fatalf("%d artifacts, want 17", len(arts))
	}
	seen := map[string]bool{}
	for _, a := range arts {
		if seen[a.ID] {
			t.Fatalf("duplicate artifact id %s", a.ID)
		}
		seen[a.ID] = true
	}
}

func TestArtifactPassed(t *testing.T) {
	good := Artifact{Checks: []Check{{Pass: true}}}
	bad := Artifact{Checks: []Check{{Pass: true}, {Pass: false}}}
	if !good.Passed() || bad.Passed() {
		t.Fatal("Passed logic")
	}
}
