package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/envmodel"
	"repro/internal/mat"
	"repro/internal/report"
	"repro/internal/services"
	"repro/internal/shap"
)

// Figure6 regenerates the Sankey diagram of cluster → environment flows.
func (s *Suite) Figure6() Artifact {
	flows := s.Res.SankeyFlows()
	text := report.Sankey("Fig. 6: cluster → environment flows", flows)
	var total int
	for _, f := range flows {
		total += f.Count
	}
	v := s.Res.Contingency.CramersV()
	text += fmt.Sprintf("Cramér's V (cluster ↔ environment): %.3f\n", v)
	return Artifact{
		ID:    "F6",
		Title: "Fig. 6 — Sankey: clusters flow into environment types",
		Text:  text,
		Checks: []Check{
			check("flows-cover-all", total == len(s.Res.Labels), "%d of %d antennas in flows", total, len(s.Res.Labels)),
			check("strong-association", v > 0.5, "Cramér's V %.3f", v),
		},
	}
}

// Figure7 regenerates the environment composition per cluster (row
// shares), organized by dendrogram group.
func (s *Suite) Figure7() Artifact {
	rows := s.Res.Contingency.RowShares()
	var b strings.Builder
	for _, group := range []envmodel.Group{envmodel.GroupOrange, envmodel.GroupGreen, envmodel.GroupRed} {
		fmt.Fprintf(&b, "--- %s group ---\n", group)
		for c := 0; c < s.Res.K; c++ {
			if envmodel.GroupOf(c) != group {
				continue
			}
			b.WriteString(report.Bar(
				fmt.Sprintf("cluster %d environment composition", c),
				s.Res.Contingency.ColLabels, rows[c]))
		}
	}
	transit0 := rows[0][int(envmodel.Metro)] + rows[0][int(envmodel.Train)]
	transit4 := rows[4][int(envmodel.Metro)] + rows[4][int(envmodel.Train)]
	transit7 := rows[7][int(envmodel.Metro)] + rows[7][int(envmodel.Train)]
	work3 := rows[3][int(envmodel.Workspace)]
	stad68 := rows[6][int(envmodel.Stadium)]
	if rows[8][int(envmodel.Stadium)] < stad68 {
		stad68 = rows[8][int(envmodel.Stadium)]
	}
	// Section 5.2.2 geography: Paris share per cluster.
	parisShare := s.Res.ParisShareByCluster()
	tb := report.NewTable("Paris share per cluster (Section 5.2.2)", "cluster", "paris share")
	for c, share := range parisShare {
		tb.AddRow(c, share)
	}
	b.WriteString(tb.String())

	return Artifact{
		ID:    "F7",
		Title: "Fig. 7 — types of indoor environments per cluster",
		Text:  b.String(),
		Checks: []Check{
			check("orange-solely-transit", transit0 > 0.9 && transit4 > 0.9 && transit7 > 0.9,
				"transit shares c0=%.2f c4=%.2f c7=%.2f", transit0, transit4, transit7),
			check("c3-mostly-workspaces", work3 > 0.55, "cluster 3 workspace share %.2f (paper >0.7)", work3),
			check("c6-c8-mostly-stadiums", stad68 > 0.5,
				"min stadium share across clusters 6/8 = %.2f (paper >0.75)", stad68),
			check("c0-c4-parisian", parisShare[0] > 0.75 && parisShare[4] > 0.75,
				"Paris shares c0=%.2f c4=%.2f (paper >0.92)", parisShare[0], parisShare[4]),
			check("c7-non-capital", parisShare[7] < 0.1,
				"cluster 7 Paris share %.2f (paper: solely non-capital metros)", parisShare[7]),
			check("c2-outside-paris", parisShare[2] < 0.4,
				"cluster 2 Paris share %.2f (paper ~0.08; our hotel/public-building geography is less provincial)", parisShare[2]),
			check("c3-parisian", parisShare[3] > 0.5,
				"cluster 3 Paris share %.2f (paper ~0.70)", parisShare[3]),
		},
	}
}

// Figure8 regenerates the cluster distribution per environment type
// (column shares).
func (s *Suite) Figure8() Artifact {
	cols := s.Res.Contingency.ColShares()
	var b strings.Builder
	clusterLabels := s.Res.Contingency.RowLabels
	for j, env := range s.Res.Contingency.ColLabels {
		vals := make([]float64, s.Res.K)
		for c := 0; c < s.Res.K; c++ {
			vals[c] = cols[c][j]
		}
		b.WriteString(report.Bar(fmt.Sprintf("%s cluster distribution", env), clusterLabels, vals))
	}
	airports1 := cols[1][int(envmodel.Airport)]
	tunnels1 := cols[1][int(envmodel.Tunnel)]
	hospitals2 := cols[2][int(envmodel.Hospital)]
	commercial2 := cols[2][int(envmodel.Commercial)]
	expo3 := cols[3][int(envmodel.Expo)]
	// Environment-level shares converge slowly with the number of sites;
	// below ~half scale a single large site shifts them by several points.
	commercialFloor := 0.35
	if s.Res.Config.Scale < 0.5 {
		commercialFloor = 0.25
	}
	checks := []Check{
		check("airports-in-c1", airports1 > 0.7, "cluster 1 holds %.2f of airports", airports1),
		check("tunnels-in-c1", tunnels1 > 0.7, "cluster 1 holds %.2f of tunnels", tunnels1),
		check("hospitals-in-c2", hospitals2 > 0.45, "cluster 2 holds %.2f of hospitals (paper: almost all)", hospitals2),
		check("commercial-half-in-c2", commercial2 > commercialFloor, "cluster 2 holds %.2f of commercial centers (paper ~0.5)", commercial2),
	}
	// Expo centers come in a handful of large sites; below ~40 expo
	// antennas the archetype draw of 2-3 sites dominates the share, so
	// the check only runs when the sample is meaningful.
	expoAntennas := 0
	for _, a := range s.Res.Dataset.Indoor {
		if a.Env == envmodel.Expo {
			expoAntennas++
		}
	}
	if expoAntennas >= 40 {
		checks = append(checks, check("expo-half-in-c3", expo3 > 0.35,
			"cluster 3 holds %.2f of expo centers (paper >0.5)", expo3))
	}
	return Artifact{
		ID:     "F8",
		Title:  "Fig. 8 — cluster distributions per indoor environment type",
		Text:   b.String(),
		Checks: checks,
	}
}

// Figure9 regenerates the outdoor-antenna cluster distribution.
func (s *Suite) Figure9() Artifact {
	labels := make([]string, s.Res.K)
	for c := range labels {
		labels[c] = fmt.Sprintf("cluster %d", c)
	}
	text := report.Bar(
		fmt.Sprintf("Fig. 9: inferred clusters of %d outdoor antennas", len(s.Res.OutdoorLabels)),
		labels, s.Res.OutdoorShare)
	share1 := s.Res.OutdoorShare[1]
	specialized := 0.0
	for _, c := range []int{0, 4, 7, 6, 8, 3} {
		specialized += s.Res.OutdoorShare[c]
	}
	// Section 5.3's proximity claim: indoor antennas disagree with their
	// 1 km outdoor neighbourhood despite the physical closeness.
	prox := s.Res.Proximity(1000)
	text += fmt.Sprintf("proximity contrast (1 km): %d indoor antennas with neighbours (mean %.1f), %.0f%% disagree with their neighbourhood's cluster\n",
		prox.IndoorWithNeighbours, prox.MeanNeighbours, prox.DisagreeFraction*100)
	checks := []Check{
		check("c1-dominates-outdoor", share1 > 0.5, "cluster 1 share %.2f (paper ~0.7)", share1),
		check("specialized-absent-outdoor", specialized < 0.15,
			"transit/stadium/workspace clusters hold %.2f of outdoor antennas", specialized),
	}
	if prox.IndoorWithNeighbours > 20 {
		checks = append(checks, check("proximity-disagreement", prox.DisagreeFraction > 0.5,
			"%.0f%% of indoor antennas differ from their 1 km outdoor neighbourhood", prox.DisagreeFraction*100))
	}
	return Artifact{
		ID:     "F9",
		Title:  "Fig. 9 — outdoor antennas collapse into the general-use cluster",
		Text:   text,
		Checks: checks,
	}
}

// Figure10 regenerates the per-cluster temporal heatmaps.
func (s *Suite) Figure10() Artifact {
	profiles := s.Res.ClusterTemporalProfiles(s.TemporalAntennasPerCluster)
	var b strings.Builder
	cal := s.Res.Dataset.Cal
	for _, p := range profiles {
		rows := p.DayRows()
		labels := make([]string, len(rows))
		for d := range labels {
			day := p.FirstDay + d
			suffix := ""
			if cal.IsWeekend(day) {
				suffix = " (we)"
			}
			if day == cal.StrikeDay() {
				suffix = " (strike)"
			}
			labels[d] = cal.DateString(day) + suffix
		}
		b.WriteString(report.Heatmap(
			fmt.Sprintf("cluster %d (%s) — normalized median hourly traffic", p.Cluster, envmodel.GroupOf(p.Cluster)),
			labels, rows, false))
		b.WriteByte('\n')
	}
	p0, p3, p2, p7 := profiles[0], profiles[3], profiles[2], profiles[7]
	commutePeak := p0.PeakHour()
	officeWeekend := p3.WeekendWeekdayRatio(s.Res)
	retailWeekend := p2.WeekendWeekdayRatio(s.Res)
	strike0 := p0.StrikeDip(s.Res)
	strike7 := p7.StrikeDip(s.Res)
	return Artifact{
		ID:    "F10",
		Title: "Fig. 10 — per-cluster normalized median traffic heatmaps",
		Text:  b.String(),
		Checks: []Check{
			check("commute-peaks", commutePeak >= 7 && commutePeak <= 19, "cluster 0 peak hour %d", commutePeak),
			check("office-weekend-idle", officeWeekend < 0.4, "cluster 3 weekend/weekday ratio %.2f", officeWeekend),
			check("retail-weekend-active", retailWeekend > 0.5, "cluster 2 weekend/weekday ratio %.2f", retailWeekend),
			check("strike-trough-paris", strike0 < 0.5, "cluster 0 strike-day ratio %.2f", strike0),
			check("strike-milder-regional", strike7 > strike0, "cluster 7 %.2f vs cluster 0 %.2f", strike7, strike0),
		},
	}
}

// Figure11 regenerates the per-service temporal heatmaps for the services
// the paper selects per group.
func (s *Suite) Figure11() Artifact {
	cal := s.Res.Dataset.Cal
	var b strings.Builder
	var checks []Check

	render := func(service string, clusters []int) map[int]interface{ PeakHour() int } {
		id := services.MustID(service)
		profiles := s.Res.ServiceTemporalProfiles(id, s.TemporalAntennasPerCluster)
		out := map[int]interface{ PeakHour() int }{}
		for _, c := range clusters {
			p := profiles[c]
			rows := p.DayRows()
			labels := make([]string, len(rows))
			for d := range labels {
				labels[d] = cal.DateString(p.FirstDay + d)
			}
			b.WriteString(report.Heatmap(
				fmt.Sprintf("%s — cluster %d (%s)", service, c, envmodel.GroupOf(c)),
				labels, rows, false))
			out[c] = p
		}
		return out
	}

	// Orange group: Spotify peaks at commute hours.
	spotify := render("Spotify", []int{0, 4, 7})
	for _, c := range []int{0, 4, 7} {
		h := spotify[c].PeakHour()
		checks = append(checks, check(fmt.Sprintf("spotify-c%d-commute", c),
			(h >= 7 && h <= 10) || (h >= 17 && h <= 20), "peak hour %d", h))
	}
	// Red group: Teams in office hours at cluster 3; Netflix evening in
	// clusters 1/2.
	teams := render("Microsoft Teams", []int{1, 2, 3})
	h3 := teams[3].PeakHour()
	checks = append(checks, check("teams-c3-office", h3 >= 9 && h3 <= 18, "peak hour %d", h3))
	netflix := render("Netflix", []int{1, 2, 3})
	for _, c := range []int{1, 2} {
		h := netflix[c].PeakHour()
		checks = append(checks, check(fmt.Sprintf("netflix-c%d-evening", c),
			h >= 18 && h <= 23, "peak hour %d", h))
	}
	// Green group: Snapchat bursts with events; Waze lags the venue peak.
	render("Snapchat", []int{5, 6, 8})
	waze := render("Waze", []int{6, 8})
	snap := s.Res.ServiceTemporalProfiles(services.MustID("Snapchat"), s.TemporalAntennasPerCluster)
	for _, c := range []int{6} {
		hw := waze[c].PeakHour()
		hs := snap[c].PeakHour()
		lag := (hw - hs + 24) % 24
		checks = append(checks, check(fmt.Sprintf("waze-lags-snapchat-c%d", c),
			lag >= 1 && lag <= 4, "Waze peak %d vs Snapchat peak %d (lag %d)", hw, hs, lag))
	}
	return Artifact{
		ID:     "F11",
		Title:  "Fig. 11 — per-service normalized median traffic heatmaps",
		Text:   b.String(),
		Checks: checks,
	}
}

// AblationFeatureTransform compares clustering quality on RSCA vs RCA vs
// max-normalized features (the Section 4.1 design rationale).
func (s *Suite) AblationFeatureTransform() Artifact {
	t := s.Res.Dataset.Traffic
	truth := make([]int, len(s.Res.Dataset.Indoor))
	for i, a := range s.Res.Dataset.Indoor {
		truth[i] = a.Archetype
	}
	// Alternative feature sets compute squared distances once and share
	// them between Ward (which consumes them) and Silhouette (which wants
	// the Euclidean copy) — the same sharing the pipeline does for RSCA.
	evaluate := func(features *matDense) (float64, float64) {
		d2 := mat.PairwiseSqDist(features)
		d := cluster.PairwiseDistancesFromSq(d2)
		labels := cluster.WardFromSqDistances(d2).CutK(s.Res.K)
		return cluster.MustSilhouette(d, labels), analysisARI(labels, truth)
	}
	// The RSCA column reuses the pipeline's own linkage and distances.
	rscaLabels := s.Res.Linkage.CutK(s.Res.K)
	rscaSil := cluster.MustSilhouette(s.Res.Distances(), rscaLabels)
	rscaARI := analysisARI(rscaLabels, truth)
	rcaSil, rcaARI := evaluate(rcaOf(t))
	normSil, normARI := evaluate(normOf(t))

	tb := report.NewTable("Ablation: clustering features", "features", "silhouette", "ARI vs ground truth")
	tb.AddRow("RSCA (paper)", rscaSil, rscaARI)
	tb.AddRow("RCA", rcaSil, rcaARI)
	tb.AddRow("normalized traffic", normSil, normARI)
	return Artifact{
		ID:    "A1",
		Title: "Ablation — RSCA vs RCA vs normalized traffic as features",
		Text:  tb.String(),
		Checks: []Check{
			check("rsca-beats-normalized", rscaARI > normARI,
				"ARI rsca=%.3f norm=%.3f", rscaARI, normARI),
			check("rsca-at-least-rca", rscaARI >= rcaARI-0.05,
				"ARI rsca=%.3f rca=%.3f", rscaARI, rcaARI),
		},
	}
}

// AblationWardVsKMeans compares Ward with flat k-means at k=9.
func (s *Suite) AblationWardVsKMeans() Artifact {
	truth := make([]int, len(s.Res.Dataset.Indoor))
	for i, a := range s.Res.Dataset.Indoor {
		truth[i] = a.Archetype
	}
	const ablationTitle = "Ablation — Ward agglomerative vs k-means"
	km, err := cluster.KMeans(s.Res.RSCA, s.Res.K, s.Res.Config.Seed+7, 100)
	if err != nil {
		return failedArtifact("A2", ablationTitle, err)
	}
	wardARI := analysisARI(s.Res.Labels, truth)
	kmARI := analysisARI(km.Labels, truth)
	d := s.Res.Distances()
	wardSil := cluster.MustSilhouette(d, s.Res.Labels)
	kmSil := cluster.MustSilhouette(d, km.Labels)

	tb := report.NewTable("Ablation: clustering strategy at k=9", "algorithm", "silhouette", "ARI vs ground truth")
	tb.AddRow("Ward agglomerative (paper)", wardSil, wardARI)
	tb.AddRow("k-means++", kmSil, kmARI)
	return Artifact{
		ID:    "A2",
		Title: ablationTitle,
		Text:  tb.String(),
		Checks: []Check{
			check("ward-competitive", wardARI >= kmARI-0.1,
				"ARI ward=%.3f kmeans=%.3f", wardARI, kmARI),
		},
	}
}

// AblationLinkages compares the paper's Ward criterion with complete,
// average and single linkage at k = 9.
func (s *Suite) AblationLinkages() Artifact {
	truth := make([]int, len(s.Res.Dataset.Indoor))
	for i, a := range s.Res.Dataset.Indoor {
		truth[i] = a.Archetype
	}
	tb := report.NewTable("Ablation: linkage criterion at k=9", "linkage", "ARI vs ground truth")
	wardARI := analysisARI(s.Res.Labels, truth)
	tb.AddRow("ward (paper)", wardARI)
	aris := map[cluster.Method]float64{}
	for _, m := range []cluster.Method{cluster.MethodComplete, cluster.MethodAverage, cluster.MethodSingle} {
		l := cluster.Agglomerative(s.Res.RSCA, m)
		aris[m] = analysisARI(l.CutK(s.Res.K), truth)
		tb.AddRow(m.String(), aris[m])
	}
	return Artifact{
		ID:    "A4",
		Title: "Ablation — Ward vs complete/average/single linkage",
		Text:  tb.String(),
		Checks: []Check{
			check("ward-beats-single", wardARI > aris[cluster.MethodSingle],
				"ward %.3f vs single %.3f (single chains on this feature space)", wardARI, aris[cluster.MethodSingle]),
			check("ward-competitive-with-all", wardARI >= aris[cluster.MethodComplete]-0.05 && wardARI >= aris[cluster.MethodAverage]-0.05,
				"ward %.3f, complete %.3f, average %.3f", wardARI, aris[cluster.MethodComplete], aris[cluster.MethodAverage]),
		},
	}
}

// AblationTreeVsKernelSHAP compares TreeSHAP and KernelSHAP on a sample of
// antennas, in fidelity and in agreement of top features.
func (s *Suite) AblationTreeVsKernelSHAP() Artifact {
	res := s.Res
	bg := backgroundSample(res, 12)
	sample := 6
	var maxDiff float64
	agreeTop := 0
	for i := 0; i < sample; i++ {
		idx := i * len(res.Labels) / sample
		row := res.RSCA.Row(idx)
		class := res.Labels[idx]
		tree := shap.ForestSHAP(res.Surrogate, row, class, res.RSCA.Cols())
		kern := shap.KernelSHAPForest(res.Surrogate, row, class, bg, shap.KernelConfig{Samples: 1500, Seed: 11})
		if d := shap.MaxAbsDiff(tree.Phi, kern.Phi); d > maxDiff {
			maxDiff = d
		}
		// The two methods target different expectations (path-dependent
		// vs marginal), so compare ranked sets: KernelSHAP's top feature
		// should appear within TreeSHAP's top five.
		if rankOfFeature(tree.Phi, argmaxAbs(kern.Phi)) < 5 {
			agreeTop++
		}
	}
	tb := report.NewTable("Ablation: TreeSHAP vs KernelSHAP", "metric", "value")
	tb.AddRow("samples compared", sample)
	tb.AddRow("max |phi_tree - phi_kernel|", maxDiff)
	tb.AddRow("kernel-top-in-tree-top5", fmt.Sprintf("%d/%d", agreeTop, sample))
	return Artifact{
		ID:    "A3",
		Title: "Ablation — TreeSHAP vs KernelSHAP fidelity",
		Text:  tb.String(),
		Checks: []Check{
			check("top-feature-agreement", agreeTop >= sample/2,
				"kernel top feature within TreeSHAP top-5 on %d/%d samples", agreeTop, sample),
		},
	}
}

// rankOfFeature returns the 0-based rank of a feature when sorting |phi|
// descending.
func rankOfFeature(phi []float64, feature int) int {
	rank := 0
	target := absF(phi[feature])
	for i, p := range phi {
		if i != feature && absF(p) > target {
			rank++
		}
	}
	return rank
}

func argmaxAbs(xs []float64) int {
	best, bestV := -1, -1.0
	for i, x := range xs {
		if absF(x) > bestV {
			bestV = absF(x)
			best = i
		}
	}
	return best
}

// AblationStability reclusters random antenna subsamples and measures how
// consistently the full-population clusters reappear — a robustness check
// the paper's single-snapshot analysis implies but cannot run.
func (s *Suite) AblationStability() Artifact {
	rep := s.Res.Stability(5, 0.7, s.Res.Config.Seed+13)
	tb := report.NewTable("Ablation: clustering stability under 70% subsampling",
		"metric", "value")
	tb.AddRow("rounds", rep.Rounds)
	tb.AddRow("mean ARI vs full run", rep.MeanARI)
	tb.AddRow("min ARI vs full run", rep.MinARI)
	return Artifact{
		ID:    "A5",
		Title: "Ablation — clustering stability under antenna subsampling",
		Text:  tb.String(),
		Checks: []Check{
			check("stable-clustering", rep.MeanARI > 0.7,
				"mean subsample ARI %.3f (min %.3f)", rep.MeanARI, rep.MinARI),
		},
	}
}

// All regenerates every artifact in paper order.
func (s *Suite) All() []Artifact {
	return []Artifact{
		s.Table1(),
		s.Figure1(),
		s.Figure2(),
		s.Figure3(),
		s.Figure4(),
		s.Figure5(),
		s.Figure6(),
		s.Figure7(),
		s.Figure8(),
		s.Figure9(),
		s.Figure10(),
		s.Figure11(),
		s.AblationFeatureTransform(),
		s.AblationWardVsKMeans(),
		s.AblationTreeVsKernelSHAP(),
		s.AblationLinkages(),
		s.AblationStability(),
	}
}
