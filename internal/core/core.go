// Package core distills a pipeline run into the paper's primary
// contribution: per-cluster indoor service-demand profiles — which mobile
// services characterize each cluster (via SHAP), which environments it
// serves, and how its demand moves over time — and the Section 7 roadmap
// operationalized: environment-aware slice planning and content-caching
// recommendations derived from those profiles ("the indoor slices will be
// tuned based on the characterizing applications for that specific indoor
// environment").
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/envmodel"
	"repro/internal/services"
)

// ServiceTrend is one characterizing service of a cluster.
type ServiceTrend struct {
	// Service is the feature index into the services catalog.
	Service int
	// Name is the service display name.
	Name string
	// Importance is the mean |SHAP| value of the service for the cluster.
	Importance float64
	// OverUtilized is true when cluster membership is driven by high RSCA
	// (over-utilization) of the service, false for under-utilization.
	OverUtilized bool
}

// EnvShare is one environment's share of a cluster's antennas.
type EnvShare struct {
	Env   envmodel.EnvType
	Share float64
}

// Profile is the demand profile of one discovered cluster.
type Profile struct {
	// Cluster is the paper-aligned cluster id (0-8).
	Cluster int
	// Group is the dendrogram branch (orange/green/red).
	Group envmodel.Group
	// Size is the number of antennas in the cluster.
	Size int
	// Environments lists environment shares, descending.
	Environments []EnvShare
	// TopServices lists the characterizing services, by importance.
	TopServices []ServiceTrend
	// PeakHour is the hour-of-day of maximum median demand.
	PeakHour int
	// WeekendRatio is mean weekend traffic over mean weekday traffic.
	WeekendRatio float64
	// StrikeDip is strike-day traffic relative to the prior week.
	StrikeDip float64
}

// Options bounds profile construction.
type Options struct {
	// TopServices bounds the characterizing-service list (default 10).
	TopServices int
	// TemporalAntennas bounds the per-cluster temporal sample (default 30).
	TemporalAntennas int
}

func (o Options) withDefaults() Options {
	if o.TopServices <= 0 {
		o.TopServices = 10
	}
	if o.TemporalAntennas <= 0 {
		o.TemporalAntennas = 30
	}
	return o
}

// BuildProfiles derives one Profile per cluster from a pipeline result.
func BuildProfiles(res *analysis.Result, opts Options) []Profile {
	opts = opts.withDefaults()
	names := services.Names()
	rowShares := res.Contingency.RowShares()
	temporal := res.ClusterTemporalProfiles(opts.TemporalAntennas)
	sizes := res.ClusterSizes()

	profiles := make([]Profile, res.K)
	for c := 0; c < res.K; c++ {
		p := Profile{
			Cluster:      c,
			Group:        envmodel.GroupOf(c),
			Size:         sizes[c],
			PeakHour:     temporal[c].PeakHour(),
			WeekendRatio: temporal[c].WeekendWeekdayRatio(res),
			StrikeDip:    temporal[c].StrikeDip(res),
		}
		for j, share := range rowShares[c] {
			if share > 0 {
				p.Environments = append(p.Environments, EnvShare{envmodel.EnvType(j), share})
			}
		}
		sort.SliceStable(p.Environments, func(a, b int) bool {
			return p.Environments[a].Share > p.Environments[b].Share
		})
		summary := res.ExplainCluster(c, opts.TopServices)
		for _, im := range summary.Importances {
			p.TopServices = append(p.TopServices, ServiceTrend{
				Service:      im.Feature,
				Name:         names[im.Feature],
				Importance:   im.MeanAbs,
				OverUtilized: im.ValueCorrelation > 0,
			})
		}
		profiles[c] = p
	}
	return profiles
}

// DominantEnv returns the profile's leading environment.
func (p Profile) DominantEnv() EnvShare {
	if len(p.Environments) == 0 {
		return EnvShare{}
	}
	return p.Environments[0]
}

// OverUtilizedServices returns the over-utilized characterizing services.
func (p Profile) OverUtilizedServices() []ServiceTrend {
	var out []ServiceTrend
	for _, s := range p.TopServices {
		if s.OverUtilized {
			out = append(out, s)
		}
	}
	return out
}

// String renders a one-paragraph profile summary.
func (p Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster %d (%s, %d antennas): dominant env %s (%.0f%%), peak hour %02d:00, weekend ratio %.2f",
		p.Cluster, p.Group, p.Size, p.DominantEnv().Env, p.DominantEnv().Share*100, p.PeakHour, p.WeekendRatio)
	if over := p.OverUtilizedServices(); len(over) > 0 {
		names := make([]string, 0, 3)
		for i, s := range over {
			if i == 3 {
				break
			}
			names = append(names, s.Name)
		}
		fmt.Fprintf(&b, "; characterizing apps: %s", strings.Join(names, ", "))
	}
	return b.String()
}

// SlicePlan is an environment-aware network-slice recommendation for one
// cluster, the Section 7 use case ("adaptive power transmission control or
// content caching according to the insights provided by our analysis").
type SlicePlan struct {
	// Cluster the plan applies to.
	Cluster int
	// SliceName is a human-readable slice label.
	SliceName string
	// CacheServices are the over-utilized services worth caching at the
	// network edge for this cluster.
	CacheServices []string
	// PeakWindow is the [start, end) hour-of-day window that capacity
	// provisioning must cover.
	PeakWindow [2]int
	// WeekendScaling is the suggested weekend capacity relative to
	// weekday capacity.
	WeekendScaling float64
	// EventDriven marks venues needing burst capacity on demand instead
	// of static provisioning.
	EventDriven bool
}

// PlanSlices derives a slice plan per cluster profile.
func PlanSlices(profiles []Profile) []SlicePlan {
	plans := make([]SlicePlan, 0, len(profiles))
	for _, p := range profiles {
		plan := SlicePlan{
			Cluster:        p.Cluster,
			SliceName:      sliceName(p),
			PeakWindow:     peakWindow(p.PeakHour),
			WeekendScaling: clamp(p.WeekendRatio, 0.05, 1.5),
			EventDriven:    p.Group == envmodel.GroupGreen,
		}
		for i, s := range p.OverUtilizedServices() {
			if i == 5 {
				break
			}
			plan.CacheServices = append(plan.CacheServices, s.Name)
		}
		plans = append(plans, plan)
	}
	return plans
}

func sliceName(p Profile) string {
	env := p.DominantEnv().Env
	switch {
	case p.Group == envmodel.GroupOrange:
		return "commuter-transit"
	case p.Group == envmodel.GroupGreen && env == envmodel.Stadium:
		return "event-venue"
	case p.Group == envmodel.GroupGreen:
		return "low-intensity-venue"
	case env == envmodel.Workspace:
		return "enterprise"
	case env == envmodel.Commercial || env == envmodel.Hotel || env == envmodel.Hospital:
		return "commercial-hospitality"
	default:
		return "general-embb"
	}
}

// peakWindow widens the peak hour into a provisioning window.
func peakWindow(peak int) [2]int {
	start := peak - 2
	if start < 0 {
		start = 0
	}
	end := peak + 3
	if end > 24 {
		end = 24
	}
	return [2]int{start, end}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
