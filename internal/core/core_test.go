package core

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/envmodel"
)

var resultCache *analysis.Result

func testResult(t *testing.T) *analysis.Result {
	t.Helper()
	if resultCache == nil {
		res, err := analysis.Run(analysis.Config{
			Seed:         42,
			Scale:        0.1,
			OutdoorCount: 200,
			ForestTrees:  30,
		})
		if err != nil {
			t.Fatal(err)
		}
		resultCache = res
	}
	return resultCache
}

func TestBuildProfilesComplete(t *testing.T) {
	res := testResult(t)
	profiles := BuildProfiles(res, Options{})
	if len(profiles) != res.K {
		t.Fatalf("%d profiles for %d clusters", len(profiles), res.K)
	}
	sizes := res.ClusterSizes()
	for c, p := range profiles {
		if p.Cluster != c {
			t.Fatalf("profile %d has cluster %d", c, p.Cluster)
		}
		if p.Size != sizes[c] {
			t.Fatalf("profile %d size %d want %d", c, p.Size, sizes[c])
		}
		if p.Group != envmodel.GroupOf(c) {
			t.Fatalf("profile %d group mismatch", c)
		}
		if len(p.TopServices) == 0 || len(p.TopServices) > 10 {
			t.Fatalf("profile %d has %d top services", c, len(p.TopServices))
		}
		if len(p.Environments) == 0 {
			t.Fatalf("profile %d has no environments", c)
		}
		// Environments sorted descending and sum to ~1.
		var sum float64
		for i, e := range p.Environments {
			sum += e.Share
			if i > 0 && e.Share > p.Environments[i-1].Share {
				t.Fatalf("profile %d environments unsorted", c)
			}
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("profile %d env shares sum %v", c, sum)
		}
		if p.PeakHour < 0 || p.PeakHour > 23 {
			t.Fatalf("profile %d peak hour %d", c, p.PeakHour)
		}
	}
}

func TestProfilesMatchPaperNarrative(t *testing.T) {
	res := testResult(t)
	profiles := BuildProfiles(res, Options{})
	// Orange clusters: transit-dominated.
	for _, c := range []int{0, 4, 7} {
		env := profiles[c].DominantEnv().Env
		if env != envmodel.Metro && env != envmodel.Train {
			t.Fatalf("cluster %d dominant env %v, want transit", c, env)
		}
	}
	// Cluster 3: workspaces, weekend-idle.
	if profiles[3].DominantEnv().Env != envmodel.Workspace {
		t.Fatalf("cluster 3 dominant env %v", profiles[3].DominantEnv().Env)
	}
	if profiles[3].WeekendRatio > 0.5 {
		t.Fatalf("cluster 3 weekend ratio %.2f", profiles[3].WeekendRatio)
	}
	// Orange strike dip deeper than cluster 2's.
	if profiles[0].StrikeDip >= profiles[2].StrikeDip {
		t.Fatalf("strike dips: commuter %.2f vs retail %.2f",
			profiles[0].StrikeDip, profiles[2].StrikeDip)
	}
	// Over-utilized services present for the workspace cluster.
	over := profiles[3].OverUtilizedServices()
	if len(over) == 0 {
		t.Fatal("cluster 3 has no over-utilized services")
	}
	foundBusiness := false
	for _, s := range over {
		if s.Name == "Microsoft Teams" || s.Name == "LinkedIn" || s.Name == "Outlook" {
			foundBusiness = true
		}
	}
	if !foundBusiness {
		t.Fatalf("cluster 3 over-utilized services %v lack business apps", over)
	}
}

func TestProfileString(t *testing.T) {
	res := testResult(t)
	profiles := BuildProfiles(res, Options{TopServices: 5})
	s := profiles[3].String()
	if !strings.Contains(s, "cluster 3") || !strings.Contains(s, "antennas") {
		t.Fatalf("profile string: %s", s)
	}
}

func TestPlanSlices(t *testing.T) {
	res := testResult(t)
	profiles := BuildProfiles(res, Options{})
	plans := PlanSlices(profiles)
	if len(plans) != len(profiles) {
		t.Fatal("plan count")
	}
	byCluster := map[int]SlicePlan{}
	for _, p := range plans {
		byCluster[p.Cluster] = p
		if p.PeakWindow[0] < 0 || p.PeakWindow[1] > 24 || p.PeakWindow[0] >= p.PeakWindow[1] {
			t.Fatalf("cluster %d peak window %v", p.Cluster, p.PeakWindow)
		}
		if p.WeekendScaling < 0.05 || p.WeekendScaling > 1.5 {
			t.Fatalf("cluster %d weekend scaling %v", p.Cluster, p.WeekendScaling)
		}
	}
	// Commuter slices for the orange group.
	for _, c := range []int{0, 4, 7} {
		if byCluster[c].SliceName != "commuter-transit" {
			t.Fatalf("cluster %d slice %q", c, byCluster[c].SliceName)
		}
	}
	// Enterprise slice for workspaces; event-driven for the green group.
	if byCluster[3].SliceName != "enterprise" {
		t.Fatalf("cluster 3 slice %q", byCluster[3].SliceName)
	}
	for _, c := range []int{5, 6, 8} {
		if !byCluster[c].EventDriven {
			t.Fatalf("cluster %d should be event-driven", c)
		}
	}
	// Cache recommendations exist and are bounded.
	for _, p := range plans {
		if len(p.CacheServices) > 5 {
			t.Fatalf("cluster %d has %d cache services", p.Cluster, len(p.CacheServices))
		}
	}
}

func TestPeakWindowBounds(t *testing.T) {
	if w := peakWindow(0); w[0] != 0 || w[1] != 3 {
		t.Fatalf("peakWindow(0) = %v", w)
	}
	if w := peakWindow(23); w[0] != 21 || w[1] != 24 {
		t.Fatalf("peakWindow(23) = %v", w)
	}
	if w := peakWindow(12); w[0] != 10 || w[1] != 15 {
		t.Fatalf("peakWindow(12) = %v", w)
	}
}

func TestClamp(t *testing.T) {
	if clamp(-1, 0, 1) != 0 || clamp(2, 0, 1) != 1 || clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("clamp")
	}
}
