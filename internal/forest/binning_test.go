package forest

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

func TestBinFeaturesExactSmallColumn(t *testing.T) {
	x := mat.MustFromRows([][]float64{{3}, {1}, {2}, {1}, {3}})
	b := BinFeatures(x)
	fb := b.Feature(0)
	if !fb.Exact {
		t.Fatal("3 distinct values must bin exactly")
	}
	if b.NumBins(0) != 3 {
		t.Fatalf("bins = %d, want 3 (one per distinct value)", b.NumBins(0))
	}
	for k, want := range []float64{1, 2, 3} {
		if fb.Lo[k] != want || fb.Hi[k] != want {
			t.Fatalf("bin %d range [%v,%v], want the single value %v", k, fb.Lo[k], fb.Hi[k], want)
		}
	}
	wantCodes := []uint8{2, 0, 1, 0, 2}
	if !reflect.DeepEqual(b.Codes().Col(0), wantCodes) {
		t.Fatalf("codes %v, want %v", b.Codes().Col(0), wantCodes)
	}
}

func TestBinFeaturesConstantColumn(t *testing.T) {
	x := mat.MustFromRows([][]float64{{7, 1}, {7, 2}, {7, 3}})
	b := BinFeatures(x)
	if b.NumBins(0) != 1 || !b.Feature(0).Exact {
		t.Fatalf("constant column binned into %d bins", b.NumBins(0))
	}
	for _, c := range b.Codes().Col(0) {
		if c != 0 {
			t.Fatal("constant column must code every row 0")
		}
	}
	// A tree over a constant-only matrix cannot split.
	xc := mat.MustFromRows([][]float64{{5}, {5}, {5}, {5}})
	tree := BuildTree(xc, []int{0, 1, 0, 1}, nil, 2, TreeConfig{}, rng.New(1))
	if tree.LeafCount() != 1 {
		t.Fatal("constant features should yield a single mixed leaf")
	}
}

func TestBinFeaturesAllIdenticalRows(t *testing.T) {
	rows := make([][]float64, 10)
	for i := range rows {
		rows[i] = []float64{1.5, -2, 0}
	}
	x := mat.MustFromRows(rows)
	b := BinFeatures(x)
	for j := 0; j < x.Cols(); j++ {
		if b.NumBins(j) != 1 {
			t.Fatalf("column %d of identical rows binned into %d bins", j, b.NumBins(j))
		}
	}
}

func TestBinFeaturesQuantileMode(t *testing.T) {
	// 1000 distinct values force quantile binning.
	n := 1000
	r := rng.New(9)
	x := mat.NewDense(n, 1)
	for i := 0; i < n; i++ {
		x.Set(i, 0, r.Normal())
	}
	b := BinFeatures(x)
	fb := b.Feature(0)
	nb := b.NumBins(0)
	if fb.Exact {
		t.Fatal("1000 distinct values cannot be exact")
	}
	if nb > MaxBins || nb < MaxBins/2 {
		t.Fatalf("quantile binning produced %d bins", nb)
	}
	// Bins must be ordered, non-overlapping and internally consistent.
	for k := 0; k < nb; k++ {
		if fb.Lo[k] > fb.Hi[k] {
			t.Fatalf("bin %d has Lo %v > Hi %v", k, fb.Lo[k], fb.Hi[k])
		}
		if k > 0 && fb.Hi[k-1] >= fb.Lo[k] {
			t.Fatalf("bins %d and %d overlap: Hi %v >= Lo %v", k-1, k, fb.Hi[k-1], fb.Lo[k])
		}
	}
	// Every row's code must place its value inside the bin's range, and
	// every bin must be populated.
	seen := make([]int, nb)
	for i := 0; i < n; i++ {
		c := int(b.Codes().At(i, 0))
		v := x.At(i, 0)
		if v < fb.Lo[c] || v > fb.Hi[c] {
			t.Fatalf("row %d value %v coded into bin %d [%v,%v]", i, v, c, fb.Lo[c], fb.Hi[c])
		}
		seen[c]++
	}
	for k, s := range seen {
		if s == 0 {
			t.Fatalf("bin %d is empty", k)
		}
	}
}

// TestBinnedTreeMatchesExactSort is the core parity property of the
// histogram refactor: on any dataset whose columns have ≤ MaxBins distinct
// values, the binned and the sort-based searches must grow bit-identical
// trees — same features, same float64 thresholds, same leaves, same RNG
// consumption.
func TestBinnedTreeMatchesExactSort(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		x, y := labeledBlobs(3, 40, 6, 0.9, seed) // 120 rows < 256
		for _, cfg := range []TreeConfig{
			{},
			{MaxDepth: 4},
			{MinLeaf: 5},
			{Features: 2},
			{MaxDepth: 6, MinLeaf: 3, Features: 3},
		} {
			exactCfg := cfg
			exactCfg.ExactSort = true
			exact := BuildTree(x, y, nil, 3, exactCfg, rng.New(seed*31))
			binned := BuildTree(x, y, nil, 3, cfg, rng.New(seed*31))
			if !reflect.DeepEqual(exact.Nodes, binned.Nodes) {
				t.Fatalf("seed %d cfg %+v: binned tree diverges from exact-sort tree", seed, cfg)
			}
		}
	}
}

// TestBinnedForestMatchesExactSort extends the parity property across
// bootstrap sampling: whole forests (trees, OOB accuracy) must agree when
// columns stay in the exact regime.
func TestBinnedForestMatchesExactSort(t *testing.T) {
	x, y := labeledBlobs(4, 30, 8, 0.8, 3) // 120 rows < 256
	exact := Train(x, y, 4, Config{Trees: 20, MaxDepth: 10, Seed: 7, ExactSort: true})
	binned := Train(x, y, 4, Config{Trees: 20, MaxDepth: 10, Seed: 7})
	if !reflect.DeepEqual(exact.Trees, binned.Trees) {
		t.Fatal("binned forest diverges from exact-sort forest")
	}
	if !reflect.DeepEqual(exact.OOBAccuracy, binned.OOBAccuracy) {
		t.Fatalf("OOB accuracy diverges: %v vs %v", exact.OOBAccuracy, binned.OOBAccuracy)
	}
}

// TestTreeMinLeafTieBreakAtBinBoundary pins the MinLeaf behaviour at a bin
// boundary: the split search proposes the Gini-best boundary without
// regard to MinLeaf, and the grower rejects it post-partition — exactly
// like the exact path — leaving a mixed leaf.
func TestTreeMinLeafTieBreakAtBinBoundary(t *testing.T) {
	x := mat.MustFromRows([][]float64{{1}, {1}, {1}, {2}})
	y := []int{0, 0, 1, 1}
	cfg := TreeConfig{MinLeaf: 2}
	binned := BuildTree(x, y, nil, 2, cfg, rng.New(1))
	if binned.LeafCount() != 1 {
		t.Fatalf("best boundary leaves 1 sample right of the cut; MinLeaf=2 must reject it, got %d leaves", binned.LeafCount())
	}
	exactCfg := cfg
	exactCfg.ExactSort = true
	exact := BuildTree(x, y, nil, 2, exactCfg, rng.New(1))
	if !reflect.DeepEqual(exact.Nodes, binned.Nodes) {
		t.Fatal("MinLeaf rejection diverges between binned and exact paths")
	}

	// Balanced values at the same boundary satisfy MinLeaf: both paths
	// must now split at the midpoint 1.5.
	x2 := mat.MustFromRows([][]float64{{1}, {1}, {2}, {2}})
	y2 := []int{0, 0, 1, 1}
	b2 := BuildTree(x2, y2, nil, 2, cfg, rng.New(1))
	e2 := BuildTree(x2, y2, nil, 2, exactCfg, rng.New(1))
	if b2.LeafCount() != 2 || b2.Nodes[0].Threshold != 1.5 {
		t.Fatalf("balanced boundary should split at 1.5, got %+v", b2.Nodes[0])
	}
	if !reflect.DeepEqual(e2.Nodes, b2.Nodes) {
		t.Fatal("accepted boundary split diverges between binned and exact paths")
	}
}

// TestQuantileForestStillLearns covers the >256-distinct-value regime the
// parity guarantee excludes: quantile-binned forests must still fit a
// separable problem.
func TestQuantileForestStillLearns(t *testing.T) {
	x, y := labeledBlobs(3, 120, 6, 0.6, 21) // 360 rows > 256 distinct
	b := BinFeatures(x)
	exactCols := 0
	for j := 0; j < x.Cols(); j++ {
		if b.Feature(j).Exact {
			exactCols++
		}
	}
	if exactCols != 0 {
		t.Fatalf("%d of %d columns unexpectedly exact at 360 rows", exactCols, x.Cols())
	}
	f := Train(x, y, 3, Config{Trees: 30, Seed: 5})
	if acc := f.Accuracy(x, y); acc < 0.95 {
		t.Fatalf("quantile-binned forest training accuracy %v", acc)
	}
	if math.IsNaN(f.OOBAccuracy) || f.OOBAccuracy < 0.85 {
		t.Fatalf("quantile-binned forest OOB accuracy %v", f.OOBAccuracy)
	}
}

// TestBuildTreeDoesNotMutateCallerIdx guards the scratch-arena refactor:
// the binned path partitions indices in place, but only inside its own
// arena — the caller's slice must come back untouched.
func TestBuildTreeDoesNotMutateCallerIdx(t *testing.T) {
	x, y := labeledBlobs(2, 30, 4, 0.7, 13)
	idx := make([]int, x.Rows())
	for i := range idx {
		idx[i] = i
	}
	want := make([]int, len(idx))
	copy(want, idx)
	BuildTree(x, y, idx, 2, TreeConfig{}, rng.New(2))
	if !reflect.DeepEqual(idx, want) {
		t.Fatal("BuildTree mutated the caller's index slice")
	}
}
