package forest

import (
	"repro/internal/mat"
	"repro/internal/rng"
)

// PermutationImportance computes global feature importance by measuring
// the accuracy drop when a feature's column is shuffled — the classic
// model-agnostic baseline the SHAP literature compares against. It returns
// one non-negative score per feature (negative drops are clamped to zero).
// repeats shuffles each column several times and averages, reducing
// variance; seed makes the shuffles reproducible.
func (f *Forest) PermutationImportance(x *mat.Dense, y []int, repeats int, seed uint64) []float64 {
	if repeats <= 0 {
		repeats = 3
	}
	baseline := f.Accuracy(x, y)
	r := rng.New(seed)
	n := x.Rows()
	importance := make([]float64, x.Cols())

	shuffled := x.Clone()
	perm := make([]int, n)
	column := make([]float64, n)
	for j := 0; j < x.Cols(); j++ {
		var drop float64
		for rep := 0; rep < repeats; rep++ {
			for i := 0; i < n; i++ {
				column[i] = x.At(i, j)
				perm[i] = i
			}
			r.Shuffle(n, func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
			for i := 0; i < n; i++ {
				shuffled.Set(i, j, column[perm[i]])
			}
			drop += baseline - f.Accuracy(shuffled, y)
		}
		// Restore the column before moving on.
		for i := 0; i < n; i++ {
			shuffled.Set(i, j, column[i])
		}
		avg := drop / float64(repeats)
		if avg < 0 {
			avg = 0
		}
		importance[j] = avg
	}
	return importance
}
