package forest

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/rng"
)

// labeledBlobs builds a simple separable classification problem.
func labeledBlobs(classes, perClass, dims int, noise float64, seed uint64) (*mat.Dense, []int) {
	r := rng.New(seed)
	n := classes * perClass
	x := mat.NewDense(n, dims)
	y := make([]int, n)
	for c := 0; c < classes; c++ {
		for i := 0; i < perClass; i++ {
			idx := c*perClass + i
			y[idx] = c
			row := x.Row(idx)
			for d := range row {
				center := 0.0
				if d%classes == c {
					center = 3
				}
				row[d] = center + r.Normal()*noise
			}
		}
	}
	return x, y
}

func TestTreeFitsTrainingData(t *testing.T) {
	x, y := labeledBlobs(3, 30, 6, 0.4, 1)
	tree := BuildTree(x, y, nil, 3, TreeConfig{}, rng.New(2))
	correct := 0
	for i := 0; i < x.Rows(); i++ {
		if tree.Predict(x.Row(i)) == y[i] {
			correct++
		}
	}
	if correct != x.Rows() {
		t.Fatalf("unbounded tree should fit training data, got %d/%d", correct, x.Rows())
	}
}

func TestTreeDepthLimit(t *testing.T) {
	x, y := labeledBlobs(3, 30, 6, 0.8, 3)
	tree := BuildTree(x, y, nil, 3, TreeConfig{MaxDepth: 2}, rng.New(4))
	if d := tree.Depth(); d > 2 {
		t.Fatalf("depth %d exceeds limit", d)
	}
}

func TestTreeMinLeaf(t *testing.T) {
	x, y := labeledBlobs(2, 25, 4, 0.8, 5)
	tree := BuildTree(x, y, nil, 2, TreeConfig{MinLeaf: 10}, rng.New(6))
	for _, n := range tree.Nodes {
		if n.Feature < 0 && n.Samples < 10 {
			t.Fatalf("leaf with %d samples under MinLeaf", n.Samples)
		}
	}
}

func TestTreeProbsSumToOne(t *testing.T) {
	x, y := labeledBlobs(3, 20, 4, 1.2, 7)
	tree := BuildTree(x, y, nil, 3, TreeConfig{MaxDepth: 3}, rng.New(8))
	for i := 0; i < x.Rows(); i++ {
		probs := tree.PredictProbs(x.Row(i))
		var sum float64
		for _, p := range probs {
			if p < 0 {
				t.Fatal("negative probability")
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probs sum to %v", sum)
		}
	}
}

func TestTreePureLeafConstantLabels(t *testing.T) {
	x := mat.MustFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	y := []int{1, 1, 1}
	tree := BuildTree(x, y, nil, 2, TreeConfig{}, rng.New(1))
	if tree.LeafCount() != 1 || tree.Depth() != 0 {
		t.Fatal("constant labels should give a single leaf")
	}
	if tree.Predict([]float64{0, 0}) != 1 {
		t.Fatal("constant tree prediction")
	}
}

func TestTreeIdenticalFeatures(t *testing.T) {
	// No split possible when all feature vectors are identical.
	x := mat.MustFromRows([][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}})
	y := []int{0, 1, 0, 1}
	tree := BuildTree(x, y, nil, 2, TreeConfig{}, rng.New(1))
	if tree.LeafCount() != 1 {
		t.Fatal("identical features should yield a single mixed leaf")
	}
	probs := tree.PredictProbs([]float64{1, 1})
	if math.Abs(probs[0]-0.5) > 1e-9 {
		t.Fatalf("mixed leaf probs = %v", probs)
	}
}

func TestForestAccuracy(t *testing.T) {
	x, y := labeledBlobs(4, 40, 8, 0.7, 11)
	f := Train(x, y, 4, Config{Trees: 30, Seed: 1})
	if acc := f.Accuracy(x, y); acc < 0.97 {
		t.Fatalf("training accuracy %v", acc)
	}
	if math.IsNaN(f.OOBAccuracy) || f.OOBAccuracy < 0.9 {
		t.Fatalf("OOB accuracy %v", f.OOBAccuracy)
	}
}

func TestForestGeneralizes(t *testing.T) {
	xTrain, yTrain := labeledBlobs(3, 50, 6, 0.6, 13)
	xTest, yTest := labeledBlobs(3, 30, 6, 0.6, 14)
	f := Train(xTrain, yTrain, 3, Config{Trees: 40, Seed: 2})
	if acc := f.Accuracy(xTest, yTest); acc < 0.9 {
		t.Fatalf("test accuracy %v", acc)
	}
}

func TestForestDeterministic(t *testing.T) {
	x, y := labeledBlobs(3, 20, 5, 0.8, 17)
	a := Train(x, y, 3, Config{Trees: 10, Seed: 5})
	b := Train(x, y, 3, Config{Trees: 10, Seed: 5})
	for i := 0; i < x.Rows(); i++ {
		pa := a.PredictProbs(x.Row(i))
		pb := b.PredictProbs(x.Row(i))
		for c := range pa {
			if pa[c] != pb[c] {
				t.Fatal("same seed should give identical forests")
			}
		}
	}
}

func TestForestSeedsDiffer(t *testing.T) {
	x, y := labeledBlobs(3, 20, 5, 1.5, 19)
	a := Train(x, y, 3, Config{Trees: 5, Seed: 1})
	b := Train(x, y, 3, Config{Trees: 5, Seed: 2})
	diff := false
	for i := 0; i < x.Rows() && !diff; i++ {
		pa := a.PredictProbs(x.Row(i))
		pb := b.PredictProbs(x.Row(i))
		for c := range pa {
			if pa[c] != pb[c] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical forests on noisy data")
	}
}

func TestForestProbsSumToOne(t *testing.T) {
	x, y := labeledBlobs(3, 20, 5, 1.0, 23)
	f := Train(x, y, 3, Config{Trees: 15, Seed: 3})
	for i := 0; i < x.Rows(); i++ {
		probs := f.PredictProbs(x.Row(i))
		var sum float64
		for _, p := range probs {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("forest probs sum %v", sum)
		}
	}
}

func TestForestPredictAll(t *testing.T) {
	x, y := labeledBlobs(2, 25, 4, 0.5, 29)
	f := Train(x, y, 2, Config{Trees: 10, Seed: 4})
	preds := f.PredictAll(x)
	if len(preds) != x.Rows() {
		t.Fatal("PredictAll length")
	}
	for i, p := range preds {
		if p != f.Predict(x.Row(i)) {
			t.Fatal("PredictAll disagrees with Predict")
		}
	}
}

func TestTrainPanicsOnBadLabels(t *testing.T) {
	x := mat.MustFromRows([][]float64{{1}, {2}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Train(x, []int{0, 5}, 2, Config{Trees: 1})
}

func TestTrainPanicsOnLengthMismatch(t *testing.T) {
	x := mat.MustFromRows([][]float64{{1}, {2}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Train(x, []int{0}, 1, Config{Trees: 1})
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults(73)
	if c.Trees != 100 {
		t.Fatalf("default trees %d, paper uses 100", c.Trees)
	}
	if c.Features != 9 { // round(sqrt(73)) = 9
		t.Fatalf("default features %d, want 9", c.Features)
	}
}

// Property: tree predictions always return a valid class for random data.
func TestTreeValidClassProperty(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN%30) + 5
		r := rng.New(seed)
		x := mat.NewDense(n, 4)
		y := make([]int, n)
		for i := 0; i < n; i++ {
			y[i] = r.Intn(3)
			for j := 0; j < 4; j++ {
				x.Set(i, j, r.Normal())
			}
		}
		tree := BuildTree(x, y, nil, 3, TreeConfig{}, rng.New(seed+1))
		for i := 0; i < n; i++ {
			c := tree.Predict(x.Row(i))
			if c < 0 || c >= 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkForestTrain(b *testing.B) {
	x, y := labeledBlobs(5, 60, 20, 0.8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Train(x, y, 5, Config{Trees: 20, Seed: 1})
	}
}

func BenchmarkForestPredict(b *testing.B) {
	x, y := labeledBlobs(5, 60, 20, 0.8, 1)
	f := Train(x, y, 5, Config{Trees: 50, Seed: 1})
	row := x.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Predict(row)
	}
}
