package forest

import (
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

func TestPermutationImportanceFindsSignal(t *testing.T) {
	// Permutation importance is blind to *redundant* signals (shuffling
	// one of two correlated informative columns leaves accuracy intact),
	// so the test dataset carries the class in exactly one feature.
	x, y := singleFeatureSignal(120, 6, 61)
	f := Train(x, y, 2, Config{Trees: 30, Seed: 1})
	imp := f.PermutationImportance(x, y, 3, 9)
	if len(imp) != 6 {
		t.Fatalf("importance length %d", len(imp))
	}
	for noise := 1; noise < 6; noise++ {
		if imp[0] <= imp[noise] {
			t.Fatalf("signal feature 0 (%.4f) not above noise %d (%.4f): %v",
				imp[0], noise, imp[noise], imp)
		}
	}
}

// singleFeatureSignal builds a 2-class problem where only feature 0 is
// informative.
func singleFeatureSignal(n, dims int, seed uint64) (*mat.Dense, []int) {
	r := rng.New(seed)
	x := mat.NewDense(n, dims)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		y[i] = c
		row := x.Row(i)
		for d := range row {
			row[d] = r.Normal()
		}
		if c == 1 {
			row[0] += 3
		}
	}
	return x, y
}

func TestPermutationImportanceNonNegative(t *testing.T) {
	x, y := labeledBlobs(2, 30, 5, 1.5, 67)
	f := Train(x, y, 2, Config{Trees: 10, Seed: 2})
	for j, v := range f.PermutationImportance(x, y, 2, 3) {
		if v < 0 {
			t.Fatalf("importance %d negative: %v", j, v)
		}
	}
}

func TestPermutationImportanceDeterministic(t *testing.T) {
	x, y := labeledBlobs(2, 25, 4, 0.8, 71)
	f := Train(x, y, 2, Config{Trees: 10, Seed: 3})
	a := f.PermutationImportance(x, y, 2, 5)
	b := f.PermutationImportance(x, y, 2, 5)
	for j := range a {
		if a[j] != b[j] {
			t.Fatal("same seed should give identical importance")
		}
	}
}

func TestPermutationImportanceDoesNotMutateInput(t *testing.T) {
	x, y := labeledBlobs(2, 20, 4, 0.8, 73)
	before := x.Clone()
	f := Train(x, y, 2, Config{Trees: 5, Seed: 4})
	_ = f.PermutationImportance(x, y, 2, 5)
	for i := 0; i < x.Rows(); i++ {
		for j := 0; j < x.Cols(); j++ {
			if x.At(i, j) != before.At(i, j) {
				t.Fatal("input matrix mutated")
			}
		}
	}
}

func BenchmarkPermutationImportance(b *testing.B) {
	x, y := labeledBlobs(3, 50, 10, 0.8, 1)
	f := Train(x, y, 3, Config{Trees: 20, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.PermutationImportance(x, y, 2, 7)
	}
}
