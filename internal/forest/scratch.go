package forest

import "sync"

// growScratch holds the arenas the histogram tree grower reuses across
// every node of a build: the feature permutation, the per-bin class-count
// histogram, the cumulative left/right counts of the boundary scan, and
// the sample-index arena that siblings partition in place instead of
// allocating fresh slices per node. One scratch belongs to one goroutine
// for the duration of a tree build (trees fan out over the shared
// internal/pipe pool, so this is per-worker state); between builds it is
// recycled through a sync.Pool. Every field is fully overwritten or
// zeroed before use, so recycling cannot leak state into results.
type growScratch struct {
	perm     []int // feature permutation, len = nFeatures
	hist     []int // per-bin class counts, len = MaxBins * classes
	binCount []int // per-bin sample totals, len = MaxBins
	counts   []int // node class counts, len = classes
	left     []int // cumulative class counts left of the candidate boundary
	right    []int // class counts right of the candidate boundary
	idx      []int // root sample-index arena, partitioned in place
	aux      []int // right-half spill buffer of the stable partition
}

var scratchPool = sync.Pool{New: func() any { return new(growScratch) }}

// getScratch returns a scratch with every arena sized for the given build.
func getScratch(nFeatures, classes, n int) *growScratch {
	s := scratchPool.Get().(*growScratch)
	s.perm = ensureLen(s.perm, nFeatures)
	// hist and binCount keep an all-zero invariant between split searches
	// (the boundary scan re-zeroes exactly the entries the fill touched),
	// so recycled arenas large enough are reused as-is and fresh ones
	// start zeroed by make.
	if cap(s.hist) < MaxBins*classes {
		s.hist = make([]int, MaxBins*classes)
	} else {
		s.hist = s.hist[:MaxBins*classes]
	}
	if cap(s.binCount) < MaxBins {
		s.binCount = make([]int, MaxBins)
	} else {
		s.binCount = s.binCount[:MaxBins]
	}
	s.counts = ensureLen(s.counts, classes)
	s.left = ensureLen(s.left, classes)
	s.right = ensureLen(s.right, classes)
	s.idx = ensureLen(s.idx, n)
	s.aux = ensureLen(s.aux, n)
	return s
}

func putScratch(s *growScratch) { scratchPool.Put(s) }

func ensureLen(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}
