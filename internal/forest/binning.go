package forest

import (
	"context"
	"sort"

	"repro/internal/mat"
	"repro/internal/pipe"
)

// MaxBins is the histogram resolution of the binned split search: each
// feature column is discretized into at most 256 bins so a bin code fits
// one byte. Columns with at most MaxBins distinct values keep every value
// in its own bin, which makes the histogram search exact (see FeatureBins).
const MaxBins = 256

// FeatureBins describes the discretization of one feature column.
type FeatureBins struct {
	// Lo and Hi hold the smallest and largest raw value mapped into each
	// bin; bins are ordered, every bin contains at least one training
	// value, and Hi[b] < Lo[b+1]. Split thresholds between bins a < b are
	// the midpoint (Hi[a]+Lo[b])/2.
	Lo, Hi []float64
	// Exact marks a column with at most MaxBins distinct values. There
	// every distinct value owns a bin with Lo == Hi, so candidate split
	// thresholds are exactly the adjacent-value midpoints the sort-based
	// search proposes and the grown tree is bit-identical to it.
	Exact bool
}

// Binning is the per-forest histogram discretization of a feature matrix:
// uint8 bin codes stored column-major (one contiguous slice per feature)
// plus the per-feature bin metadata needed to turn a bin boundary back
// into a raw-value threshold. It is computed once per forest and shared
// read-only by every tree.
type Binning struct {
	codes *mat.BinMatrix
	feats []FeatureBins
}

// BinFeatures discretizes every column of x. Equal inputs produce equal
// binnings; no randomness is involved.
func BinFeatures(x *mat.Dense) *Binning {
	b, _ := BinFeaturesContext(context.Background(), x)
	return b
}

// BinFeaturesContext is BinFeatures with cooperative cancellation: columns
// are binned in parallel on the pool carried by ctx, each column writing a
// disjoint slice of the column-major code matrix.
func BinFeaturesContext(ctx context.Context, x *mat.Dense) (*Binning, error) {
	b := &Binning{
		codes: mat.NewBinMatrix(x.Rows(), x.Cols()),
		feats: make([]FeatureBins, x.Cols()),
	}
	err := pipe.FromContext(ctx).ForEach(ctx, x.Cols(), func(j int) {
		b.feats[j] = binColumn(x, j, b.codes.Col(j))
	})
	if err != nil {
		return nil, err
	}
	return b, nil
}

// Codes returns the column-major bin-code matrix.
func (b *Binning) Codes() *mat.BinMatrix { return b.codes }

// Feature returns the bin metadata of column j.
func (b *Binning) Feature(j int) FeatureBins { return b.feats[j] }

// NumBins returns the bin count of column j.
func (b *Binning) NumBins(j int) int { return len(b.feats[j].Lo) }

// splitThreshold returns the raw-value threshold that routes bins ≤ a left
// and bins ≥ b right. For exact columns this is the same adjacent-value
// midpoint the sort-based search computes, bit for bit.
func (b *Binning) splitThreshold(f, a, bb int) float64 {
	fb := &b.feats[f]
	return (fb.Hi[a] + fb.Lo[bb]) / 2
}

// binColumn discretizes column j of x, writing one code per row into
// codes. Bins are delimited by "cut" values — the smallest raw value of
// each bin after the first. With ≤ MaxBins distinct values every distinct
// value becomes a cut (exact mode); above that, cuts are drawn at equal-
// frequency quantiles of the sorted column, never splitting a run of
// equal values across bins.
func binColumn(x *mat.Dense, j int, codes []uint8) FeatureBins {
	n := x.Rows()
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = x.At(i, j)
	}
	sorted := make([]float64, n)
	copy(sorted, vals)
	sort.Float64s(sorted)

	distinct := 1
	for i := 1; i < n; i++ {
		if sorted[i] > sorted[i-1] {
			distinct++
		}
	}
	var cuts []float64
	if distinct <= MaxBins {
		cuts = make([]float64, 0, distinct-1)
		for i := 1; i < n; i++ {
			if sorted[i] > sorted[i-1] {
				cuts = append(cuts, sorted[i])
			}
		}
	} else {
		cuts = make([]float64, 0, MaxBins-1)
		prev := sorted[0]
		for k := 1; k < MaxBins; k++ {
			v := sorted[k*n/MaxBins]
			if v > prev {
				cuts = append(cuts, v)
				prev = v
			}
		}
	}

	nb := len(cuts) + 1
	fb := FeatureBins{
		Lo:    make([]float64, nb),
		Hi:    make([]float64, nb),
		Exact: distinct <= MaxBins,
	}
	// Per-bin raw-value ranges from one pass over the sorted column. Every
	// cut value is present in the data, so bins advance one at a time and
	// each bin sees at least one value.
	b := 0
	fb.Lo[0] = sorted[0]
	for i := 0; i < n; i++ {
		for b < len(cuts) && sorted[i] >= cuts[b] {
			b++
			fb.Lo[b] = sorted[i]
		}
		fb.Hi[b] = sorted[i]
	}

	// Code every row: the bin of v is the number of cuts ≤ v.
	for i := 0; i < n; i++ {
		v := vals[i]
		codes[i] = uint8(sort.Search(len(cuts), func(k int) bool { return cuts[k] > v }))
	}
	return fb
}
