// Package forest implements the surrogate supervised model of
// Section 5.1.2: CART decision trees with Gini impurity and a random
// forest classifier (bootstrap bagging, sqrt-feature subsampling, 100
// trees by default) trained on the unsupervised cluster labels so the SHAP
// framework has a function to explain.
package forest

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mat"
	"repro/internal/rng"
)

// Node is one node of a CART tree stored in a flat arena. Leaves have
// Feature == -1 and carry a class-probability distribution.
type Node struct {
	// Feature is the split feature index, or -1 for a leaf.
	Feature int
	// Threshold sends samples with x[Feature] <= Threshold left.
	Threshold float64
	// Left and Right are child indices in the tree's node arena.
	Left, Right int
	// Probs is the class distribution at a leaf (nil for internal nodes).
	Probs []float64
	// Samples is the number of training samples that reached the node —
	// the node weight TreeSHAP's path-dependent expectations use.
	Samples int
}

// Tree is a single CART classification tree.
type Tree struct {
	Nodes   []Node
	Classes int
}

// TreeConfig bounds tree growth.
type TreeConfig struct {
	// MaxDepth limits tree depth (0 = unlimited).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 1).
	MinLeaf int
	// Features is the number of features examined per split
	// (0 = all features; forests pass ~sqrt(M)).
	Features int
}

// growContext carries shared state during recursive tree construction.
type growContext struct {
	x       *mat.Dense
	y       []int
	classes int
	cfg     TreeConfig
	r       *rng.Source
	nodes   []Node
}

// BuildTree grows a CART tree on the rows of x indexed by idx, with class
// labels y in [0, classes). A nil idx uses every row.
func BuildTree(x *mat.Dense, y []int, idx []int, classes int, cfg TreeConfig, r *rng.Source) *Tree {
	if len(y) != x.Rows() {
		//lint:allow nopanic paired features and labels derive from one training set
		panic(fmt.Sprintf("forest: %d labels for %d rows", len(y), x.Rows()))
	}
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	if idx == nil {
		idx = make([]int, x.Rows())
		for i := range idx {
			idx[i] = i
		}
	}
	g := &growContext{x: x, y: y, classes: classes, cfg: cfg, r: r}
	g.grow(idx, 0)
	return &Tree{Nodes: g.nodes, Classes: classes}
}

func classCounts(y []int, idx []int, classes int) []int {
	counts := make([]int, classes)
	for _, i := range idx {
		counts[y[i]]++
	}
	return counts
}

func gini(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(total)
		g -= p * p
	}
	return g
}

func pure(counts []int) bool {
	nonzero := 0
	for _, c := range counts {
		if c > 0 {
			nonzero++
		}
	}
	return nonzero <= 1
}

// grow builds the subtree over idx and returns its arena index.
func (g *growContext) grow(idx []int, depth int) int {
	counts := classCounts(g.y, idx, g.classes)
	nodeIdx := len(g.nodes)
	g.nodes = append(g.nodes, Node{Feature: -1, Samples: len(idx)})

	stop := pure(counts) ||
		len(idx) < 2*g.cfg.MinLeaf ||
		(g.cfg.MaxDepth > 0 && depth >= g.cfg.MaxDepth)
	if !stop {
		feature, threshold, ok := g.bestSplit(idx, counts)
		if ok {
			var left, right []int
			for _, i := range idx {
				if g.x.At(i, feature) <= threshold {
					left = append(left, i)
				} else {
					right = append(right, i)
				}
			}
			if len(left) >= g.cfg.MinLeaf && len(right) >= g.cfg.MinLeaf {
				l := g.grow(left, depth+1)
				r := g.grow(right, depth+1)
				g.nodes[nodeIdx].Feature = feature
				g.nodes[nodeIdx].Threshold = threshold
				g.nodes[nodeIdx].Left = l
				g.nodes[nodeIdx].Right = r
				return nodeIdx
			}
		}
	}
	// Leaf.
	probs := make([]float64, g.classes)
	for c, n := range counts {
		probs[c] = float64(n) / float64(len(idx))
	}
	g.nodes[nodeIdx].Probs = probs
	return nodeIdx
}

// bestSplit searches a random feature subset for the Gini-optimal split.
func (g *growContext) bestSplit(idx []int, parentCounts []int) (feature int, threshold float64, ok bool) {
	nFeatures := g.x.Cols()
	candidates := nFeatures
	if g.cfg.Features > 0 && g.cfg.Features < nFeatures {
		candidates = g.cfg.Features
	}
	perm := g.r.Perm(nFeatures)[:candidates]

	total := len(idx)
	parentGini := gini(parentCounts, total)
	bestGain := 1e-12
	ok = false

	vals := make([]float64, len(idx))
	order := make([]int, len(idx))
	leftCounts := make([]int, g.classes)
	rightCounts := make([]int, g.classes)

	for _, f := range perm {
		for k, i := range idx {
			vals[k] = g.x.At(i, f)
			order[k] = k
		}
		sort.Slice(order, func(a, b int) bool { return vals[order[a]] < vals[order[b]] })

		copy(rightCounts, parentCounts)
		for c := range leftCounts {
			leftCounts[c] = 0
		}
		nLeft := 0
		for pos := 0; pos < len(order)-1; pos++ {
			i := idx[order[pos]]
			leftCounts[g.y[i]]++
			rightCounts[g.y[i]]--
			nLeft++
			v := vals[order[pos]]
			next := vals[order[pos+1]]
			//lint:allow floateq sorted neighbours compared for exact duplication, no arithmetic involved
			if v == next {
				continue // cannot split between equal values
			}
			gl := gini(leftCounts, nLeft)
			gr := gini(rightCounts, total-nLeft)
			weighted := (float64(nLeft)*gl + float64(total-nLeft)*gr) / float64(total)
			if gain := parentGini - weighted; gain > bestGain {
				bestGain = gain
				feature = f
				threshold = (v + next) / 2
				ok = true
			}
		}
	}
	return feature, threshold, ok
}

// PredictProbs returns the class-probability vector for a sample.
func (t *Tree) PredictProbs(x []float64) []float64 {
	node := 0
	for t.Nodes[node].Feature >= 0 {
		n := t.Nodes[node]
		if x[n.Feature] <= n.Threshold {
			node = n.Left
		} else {
			node = n.Right
		}
	}
	return t.Nodes[node].Probs
}

// Predict returns the majority class for a sample.
func (t *Tree) Predict(x []float64) int {
	probs := t.PredictProbs(x)
	best, bestP := 0, math.Inf(-1)
	for c, p := range probs {
		if p > bestP {
			bestP = p
			best = c
		}
	}
	return best
}

// Depth returns the maximum depth of the tree (0 for a lone leaf).
func (t *Tree) Depth() int {
	var walk func(node, d int) int
	walk = func(node, d int) int {
		n := t.Nodes[node]
		if n.Feature < 0 {
			return d
		}
		l := walk(n.Left, d+1)
		r := walk(n.Right, d+1)
		if l > r {
			return l
		}
		return r
	}
	return walk(0, 0)
}

// LeafCount returns the number of leaves.
func (t *Tree) LeafCount() int {
	count := 0
	for _, n := range t.Nodes {
		if n.Feature < 0 {
			count++
		}
	}
	return count
}
