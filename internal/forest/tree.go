// Package forest implements the surrogate supervised model of
// Section 5.1.2: CART decision trees with Gini impurity and a random
// forest classifier (bootstrap bagging, sqrt-feature subsampling, 100
// trees by default) trained on the unsupervised cluster labels so the SHAP
// framework has a function to explain.
package forest

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mat"
	"repro/internal/rng"
)

// Node is one node of a CART tree stored in a flat arena. Leaves have
// Feature == -1 and carry a class-probability distribution.
type Node struct {
	// Feature is the split feature index, or -1 for a leaf.
	Feature int
	// Threshold sends samples with x[Feature] <= Threshold left.
	Threshold float64
	// Left and Right are child indices in the tree's node arena.
	Left, Right int
	// Probs is the class distribution at a leaf (nil for internal nodes).
	Probs []float64
	// Samples is the number of training samples that reached the node —
	// the node weight TreeSHAP's path-dependent expectations use.
	Samples int
}

// Tree is a single CART classification tree.
type Tree struct {
	Nodes   []Node
	Classes int
}

// TreeConfig bounds tree growth.
type TreeConfig struct {
	// MaxDepth limits tree depth (0 = unlimited).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 1).
	MinLeaf int
	// Features is the number of features examined per split
	// (0 = all features; forests pass ~sqrt(M)).
	Features int
	// ExactSort selects the legacy sort-based exact split search instead
	// of the histogram-binned one. The two grow bit-identical trees
	// whenever every feature column has at most MaxBins distinct values;
	// the flag exists as the reference implementation for parity tests,
	// not as a production mode.
	ExactSort bool
}

// growContext carries shared state during recursive tree construction on
// the legacy exact-sort path (TreeConfig.ExactSort).
type growContext struct {
	x       *mat.Dense
	y       []int
	classes int
	cfg     TreeConfig
	r       *rng.Source
	nodes   []Node
}

// BuildTree grows a CART tree on the rows of x indexed by idx, with class
// labels y in [0, classes). A nil idx uses every row. The default split
// search is histogram-binned (see Binning); TreeConfig.ExactSort selects
// the sort-based reference search instead.
func BuildTree(x *mat.Dense, y []int, idx []int, classes int, cfg TreeConfig, r *rng.Source) *Tree {
	if len(y) != x.Rows() {
		//lint:allow nopanic paired features and labels derive from one training set
		panic(fmt.Sprintf("forest: %d labels for %d rows", len(y), x.Rows()))
	}
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	if !cfg.ExactSort {
		return buildTreeBinned(x, BinFeatures(x), y, idx, classes, cfg, r)
	}
	if idx == nil {
		idx = make([]int, x.Rows())
		for i := range idx {
			idx[i] = i
		}
	}
	g := &growContext{x: x, y: y, classes: classes, cfg: cfg, r: r}
	g.grow(idx, 0)
	return &Tree{Nodes: g.nodes, Classes: classes}
}

// buildTreeBinned grows a CART tree with histogram-binned split finding.
// The binning is typically shared across a whole forest; idx may be nil
// (every row) and is copied into a scratch arena, never mutated.
func buildTreeBinned(x *mat.Dense, bins *Binning, y []int, idx []int, classes int, cfg TreeConfig, r *rng.Source) *Tree {
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	n := x.Rows()
	if idx != nil {
		n = len(idx)
	}
	s := getScratch(x.Cols(), classes, n)
	defer putScratch(s)
	root := s.idx[:n]
	if idx == nil {
		for i := range root {
			root[i] = i
		}
	} else {
		copy(root, idx)
	}
	g := &binGrow{x: x, bins: bins, y: y, classes: classes, cfg: cfg, r: r, s: s}
	g.grow(root, 0)
	return &Tree{Nodes: g.nodes, Classes: classes}
}

// binGrow carries shared state during histogram-binned tree construction.
type binGrow struct {
	x       *mat.Dense
	bins    *Binning
	y       []int
	classes int
	cfg     TreeConfig
	r       *rng.Source
	nodes   []Node
	s       *growScratch
}

// grow builds the subtree over idx — a slice of the scratch index arena
// that sibling nodes partition in place — and returns its arena index.
// The scratch counts buffer is done being read before either child
// recurses, so one buffer serves every depth.
func (g *binGrow) grow(idx []int, depth int) int {
	counts := g.s.counts[:g.classes]
	for c := range counts {
		counts[c] = 0
	}
	for _, i := range idx {
		counts[g.y[i]]++
	}
	nodeIdx := len(g.nodes)
	g.nodes = append(g.nodes, Node{Feature: -1, Samples: len(idx)})

	stop := pure(counts) ||
		len(idx) < 2*g.cfg.MinLeaf ||
		(g.cfg.MaxDepth > 0 && depth >= g.cfg.MaxDepth)
	if !stop {
		feature, threshold, ok := g.bestSplit(idx, counts)
		if ok {
			// Stable in-place partition: left-bound samples compact to the
			// front of idx, right-bound samples spill to the aux arena and
			// copy back behind them. Order matches the append-based
			// partition of the exact path, so recursion order — and with
			// it RNG consumption — is identical.
			aux := g.s.aux
			nl, na := 0, 0
			for _, i := range idx {
				if g.x.At(i, feature) <= threshold {
					idx[nl] = i
					nl++
				} else {
					aux[na] = i
					na++
				}
			}
			copy(idx[nl:], aux[:na])
			if nl >= g.cfg.MinLeaf && na >= g.cfg.MinLeaf {
				l := g.grow(idx[:nl], depth+1)
				r := g.grow(idx[nl:], depth+1)
				g.nodes[nodeIdx].Feature = feature
				g.nodes[nodeIdx].Threshold = threshold
				g.nodes[nodeIdx].Left = l
				g.nodes[nodeIdx].Right = r
				return nodeIdx
			}
		}
	}
	// Leaf.
	probs := make([]float64, g.classes)
	for c, n := range counts {
		probs[c] = float64(n) / float64(len(idx))
	}
	g.nodes[nodeIdx].Probs = probs
	return nodeIdx
}

// bestSplit finds the Gini-optimal split over a random feature subset by
// accumulating a per-bin class-count histogram (one O(n) pass per feature
// instead of an O(n log n) sort) and scanning bin boundaries cumulatively.
// Candidate boundaries sit between consecutive bins that are non-empty at
// this node — exactly the adjacent-distinct-value positions the exact
// search visits — scanned in the same ascending order with the same
// strict-improvement rule, so exact-mode columns reproduce its choices
// bit for bit.
func (g *binGrow) bestSplit(idx []int, parentCounts []int) (feature int, threshold float64, ok bool) {
	nFeatures := g.x.Cols()
	candidates := nFeatures
	if g.cfg.Features > 0 && g.cfg.Features < nFeatures {
		candidates = g.cfg.Features
	}
	perm := g.s.perm[:nFeatures]
	g.r.PermInto(perm)
	perm = perm[:candidates]

	total := len(idx)
	parentGini := gini(parentCounts, total)
	bestGain := 1e-12
	ok = false

	// Parent sum of squared class counts, shared by every quantile-mode
	// feature scan of this node.
	parentSq := 0
	for _, c := range parentCounts {
		parentSq += c * c
	}

	leftCounts := g.s.left[:g.classes]
	rightCounts := g.s.right[:g.classes]

	// hist and binCount are all-zero on entry (the scratch invariant);
	// each feature's fill is undone bin by bin as the boundary scan
	// consumes it, so per-node cost tracks the bins actually touched
	// instead of the full MaxBins × classes arena.
	hist := g.s.hist
	binCount := g.s.binCount
	classes := g.classes
	y := g.y

	for _, f := range perm {
		col := g.bins.codes.Col(f)
		minBin, maxBin := MaxBins, -1
		for _, i := range idx {
			b := int(col[i])
			binCount[b]++
			hist[b*classes+y[i]]++
			if b < minBin {
				minBin = b
			}
			if b > maxBin {
				maxBin = b
			}
		}

		copy(rightCounts, parentCounts)
		for c := range leftCounts {
			leftCounts[c] = 0
		}
		nLeft := 0
		prev := -1
		if g.bins.feats[f].Exact {
			// Exact-mode scan: evaluate each boundary with the same gini()
			// float sequence as the sort-based search — this is the path the
			// bit-identical parity contract covers.
			for b := minBin; b <= maxBin; b++ {
				if binCount[b] == 0 {
					continue
				}
				if prev >= 0 {
					gl := gini(leftCounts, nLeft)
					gr := gini(rightCounts, total-nLeft)
					weighted := (float64(nLeft)*gl + float64(total-nLeft)*gr) / float64(total)
					if gain := parentGini - weighted; gain > bestGain {
						bestGain = gain
						feature = f
						threshold = g.bins.splitThreshold(f, prev, b)
						ok = true
					}
				}
				row := hist[b*classes : b*classes+classes]
				for c, h := range row {
					leftCounts[c] += h
					rightCounts[c] -= h
					row[c] = 0
				}
				nLeft += binCount[b]
				binCount[b] = 0
				prev = b
			}
			continue
		}
		// Quantile-mode scan: same boundaries, same ascending order and
		// strict-improvement rule, but each side's Gini comes from integer
		// sums of squared class counts maintained incrementally as bins
		// cross the boundary — three divisions per boundary instead of one
		// per class per side. Quantile bins are new in the histogram path,
		// so no bit-level contract binds the arithmetic; the score is
		// algebraically the same weighted Gini.
		ssL, ssR := 0, parentSq
		for b := minBin; b <= maxBin; b++ {
			if binCount[b] == 0 {
				continue
			}
			if prev >= 0 {
				nRight := total - nLeft
				weighted := 1 - (float64(ssL)/float64(nLeft)+float64(ssR)/float64(nRight))/float64(total)
				if gain := parentGini - weighted; gain > bestGain {
					bestGain = gain
					feature = f
					threshold = g.bins.splitThreshold(f, prev, b)
					ok = true
				}
			}
			row := hist[b*classes : b*classes+classes]
			for c, h := range row {
				if h != 0 {
					ssL += h * (h + 2*leftCounts[c])
					ssR += h * (h - 2*rightCounts[c])
					leftCounts[c] += h
					rightCounts[c] -= h
					row[c] = 0
				}
			}
			nLeft += binCount[b]
			binCount[b] = 0
			prev = b
		}
	}
	return feature, threshold, ok
}

func classCounts(y []int, idx []int, classes int) []int {
	counts := make([]int, classes)
	for _, i := range idx {
		counts[y[i]]++
	}
	return counts
}

func gini(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	ft := float64(total)
	for _, c := range counts {
		// Skipping zero counts is bit-identical (g - 0.0 == g exactly)
		// and saves the division on the mostly-pure deep nodes.
		if c == 0 {
			continue
		}
		p := float64(c) / ft
		g -= p * p
	}
	return g
}

func pure(counts []int) bool {
	nonzero := 0
	for _, c := range counts {
		if c > 0 {
			nonzero++
		}
	}
	return nonzero <= 1
}

// grow builds the subtree over idx and returns its arena index.
func (g *growContext) grow(idx []int, depth int) int {
	counts := classCounts(g.y, idx, g.classes)
	nodeIdx := len(g.nodes)
	g.nodes = append(g.nodes, Node{Feature: -1, Samples: len(idx)})

	stop := pure(counts) ||
		len(idx) < 2*g.cfg.MinLeaf ||
		(g.cfg.MaxDepth > 0 && depth >= g.cfg.MaxDepth)
	if !stop {
		feature, threshold, ok := g.bestSplit(idx, counts)
		if ok {
			var left, right []int
			for _, i := range idx {
				if g.x.At(i, feature) <= threshold {
					left = append(left, i)
				} else {
					right = append(right, i)
				}
			}
			if len(left) >= g.cfg.MinLeaf && len(right) >= g.cfg.MinLeaf {
				l := g.grow(left, depth+1)
				r := g.grow(right, depth+1)
				g.nodes[nodeIdx].Feature = feature
				g.nodes[nodeIdx].Threshold = threshold
				g.nodes[nodeIdx].Left = l
				g.nodes[nodeIdx].Right = r
				return nodeIdx
			}
		}
	}
	// Leaf.
	probs := make([]float64, g.classes)
	for c, n := range counts {
		probs[c] = float64(n) / float64(len(idx))
	}
	g.nodes[nodeIdx].Probs = probs
	return nodeIdx
}

// bestSplit searches a random feature subset for the Gini-optimal split.
func (g *growContext) bestSplit(idx []int, parentCounts []int) (feature int, threshold float64, ok bool) {
	nFeatures := g.x.Cols()
	candidates := nFeatures
	if g.cfg.Features > 0 && g.cfg.Features < nFeatures {
		candidates = g.cfg.Features
	}
	perm := g.r.Perm(nFeatures)[:candidates]

	total := len(idx)
	parentGini := gini(parentCounts, total)
	bestGain := 1e-12
	ok = false

	vals := make([]float64, len(idx))
	order := make([]int, len(idx))
	leftCounts := make([]int, g.classes)
	rightCounts := make([]int, g.classes)

	for _, f := range perm {
		for k, i := range idx {
			vals[k] = g.x.At(i, f)
			order[k] = k
		}
		sort.Slice(order, func(a, b int) bool { return vals[order[a]] < vals[order[b]] })

		copy(rightCounts, parentCounts)
		for c := range leftCounts {
			leftCounts[c] = 0
		}
		nLeft := 0
		for pos := 0; pos < len(order)-1; pos++ {
			i := idx[order[pos]]
			leftCounts[g.y[i]]++
			rightCounts[g.y[i]]--
			nLeft++
			v := vals[order[pos]]
			next := vals[order[pos+1]]
			//lint:allow floateq sorted neighbours compared for exact duplication, no arithmetic involved
			if v == next {
				continue // cannot split between equal values
			}
			gl := gini(leftCounts, nLeft)
			gr := gini(rightCounts, total-nLeft)
			weighted := (float64(nLeft)*gl + float64(total-nLeft)*gr) / float64(total)
			if gain := parentGini - weighted; gain > bestGain {
				bestGain = gain
				feature = f
				threshold = (v + next) / 2
				ok = true
			}
		}
	}
	return feature, threshold, ok
}

// PredictProbs returns the class-probability vector for a sample.
func (t *Tree) PredictProbs(x []float64) []float64 {
	node := 0
	for t.Nodes[node].Feature >= 0 {
		n := t.Nodes[node]
		if x[n.Feature] <= n.Threshold {
			node = n.Left
		} else {
			node = n.Right
		}
	}
	return t.Nodes[node].Probs
}

// Predict returns the majority class for a sample.
func (t *Tree) Predict(x []float64) int {
	probs := t.PredictProbs(x)
	best, bestP := 0, math.Inf(-1)
	for c, p := range probs {
		if p > bestP {
			bestP = p
			best = c
		}
	}
	return best
}

// Depth returns the maximum depth of the tree (0 for a lone leaf).
func (t *Tree) Depth() int {
	var walk func(node, d int) int
	walk = func(node, d int) int {
		n := t.Nodes[node]
		if n.Feature < 0 {
			return d
		}
		l := walk(n.Left, d+1)
		r := walk(n.Right, d+1)
		if l > r {
			return l
		}
		return r
	}
	return walk(0, 0)
}

// LeafCount returns the number of leaves.
func (t *Tree) LeafCount() int {
	count := 0
	for _, n := range t.Nodes {
		if n.Feature < 0 {
			count++
		}
	}
	return count
}
