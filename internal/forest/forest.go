package forest

import (
	"context"
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/pipe"
	"repro/internal/rng"
)

// Config parameterizes random forest training.
type Config struct {
	// Trees is the ensemble size; the paper's surrogate uses 100.
	Trees int
	// MaxDepth limits each tree (0 = unlimited).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 1).
	MinLeaf int
	// Features per split; 0 selects round(sqrt(M)).
	Features int
	// Seed drives bootstrap sampling and feature subsampling.
	Seed uint64
	// ExactSort trains with the legacy sort-based split search instead of
	// histogram binning — the reference implementation parity tests
	// compare against (see TreeConfig.ExactSort).
	ExactSort bool
}

func (c Config) withDefaults(nFeatures int) Config {
	if c.Trees <= 0 {
		c.Trees = 100
	}
	if c.MinLeaf < 1 {
		c.MinLeaf = 1
	}
	if c.Features <= 0 {
		c.Features = int(math.Round(math.Sqrt(float64(nFeatures))))
		if c.Features < 1 {
			c.Features = 1
		}
	}
	return c
}

// Forest is a trained random forest classifier.
type Forest struct {
	Trees   []*Tree
	Classes int
	// OOBAccuracy is the out-of-bag accuracy estimated during training
	// (NaN if no sample was ever out of bag).
	OOBAccuracy float64
}

// Train fits a random forest on the rows of x with labels y in
// [0, classes). Identical configs yield identical forests.
func Train(x *mat.Dense, y []int, classes int, cfg Config) *Forest {
	f, _ := TrainContext(context.Background(), x, y, classes, cfg)
	return f
}

// TrainContext is Train with cooperative cancellation: tree training runs
// on the shared worker pool and stops claiming new trees once ctx is
// cancelled, returning ctx.Err() and no forest.
func TrainContext(ctx context.Context, x *mat.Dense, y []int, classes int, cfg Config) (*Forest, error) {
	n := x.Rows()
	if len(y) != n {
		//lint:allow nopanic paired features and labels derive from one training set
		panic(fmt.Sprintf("forest: %d labels for %d rows", len(y), n))
	}
	for i, c := range y {
		if c < 0 || c >= classes {
			//lint:allow nopanic labels are produced by the clustering stage, not external input
			panic(fmt.Sprintf("forest: label %d out of range at row %d", c, i))
		}
	}
	cfg = cfg.withDefaults(x.Cols())
	root := rng.New(cfg.Seed)

	f := &Forest{Classes: classes}
	oobVotes := mat.NewDense(n, classes)
	oobSeen := make([]bool, n)

	// Features are binned once per forest — the histogram split search of
	// every tree shares the read-only codes. Binning consumes no
	// randomness, so the exact-sort reference path stays seed-compatible.
	var binned *Binning
	if !cfg.ExactSort {
		var err error
		binned, err = BinFeaturesContext(ctx, x)
		if err != nil {
			return nil, err
		}
	}

	// Trees are independent given their seed, so they train in parallel on
	// the shared worker pool; seeds are pre-split sequentially so results
	// are identical to the serial order regardless of scheduling.
	treeCfg := TreeConfig{MaxDepth: cfg.MaxDepth, MinLeaf: cfg.MinLeaf, Features: cfg.Features, ExactSort: cfg.ExactSort}
	seeds := make([]*rng.Source, cfg.Trees)
	for t := range seeds {
		seeds[t] = root.Split()
	}
	f.Trees = make([]*Tree, cfg.Trees)
	inBags := make([][]bool, cfg.Trees)

	err := pipe.FromContext(ctx).ForEach(ctx, cfg.Trees, func(t int) {
		r := seeds[t]
		idx := make([]int, n)
		inBag := make([]bool, n)
		for i := range idx {
			s := r.Intn(n)
			idx[i] = s
			inBag[s] = true
		}
		if cfg.ExactSort {
			f.Trees[t] = BuildTree(x, y, idx, classes, treeCfg, r)
		} else {
			f.Trees[t] = buildTreeBinned(x, binned, y, idx, classes, treeCfg, r)
		}
		inBags[t] = inBag
	})
	if err != nil {
		return nil, err
	}

	// Out-of-bag voting, accumulated serially for determinism.
	for t, tree := range f.Trees {
		inBag := inBags[t]
		for i := 0; i < n; i++ {
			if inBag[i] {
				continue
			}
			oobSeen[i] = true
			probs := tree.PredictProbs(x.Row(i))
			row := oobVotes.Row(i)
			for c, p := range probs {
				row[c] += p
			}
		}
	}

	correct, counted := 0, 0
	for i := 0; i < n; i++ {
		if !oobSeen[i] {
			continue
		}
		counted++
		best, bestV := 0, math.Inf(-1)
		for c, v := range oobVotes.Row(i) {
			if v > bestV {
				bestV = v
				best = c
			}
		}
		if best == y[i] {
			correct++
		}
	}
	if counted == 0 {
		f.OOBAccuracy = math.NaN()
	} else {
		f.OOBAccuracy = float64(correct) / float64(counted)
	}
	return f, nil
}

// PredictProbs returns the ensemble-averaged class probabilities.
func (f *Forest) PredictProbs(x []float64) []float64 {
	probs := make([]float64, f.Classes)
	for _, t := range f.Trees {
		for c, p := range t.PredictProbs(x) {
			probs[c] += p
		}
	}
	inv := 1 / float64(len(f.Trees))
	for c := range probs {
		probs[c] *= inv
	}
	return probs
}

// Predict returns the majority class for a sample.
func (f *Forest) Predict(x []float64) int {
	probs := f.PredictProbs(x)
	best, bestP := 0, math.Inf(-1)
	for c, p := range probs {
		if p > bestP {
			bestP = p
			best = c
		}
	}
	return best
}

// PredictAll classifies every row of x.
func (f *Forest) PredictAll(x *mat.Dense) []int {
	out, _ := f.PredictAllContext(context.Background(), x)
	return out
}

// PredictAllContext classifies every row of x, fanning rows out over the
// worker pool carried by ctx (pipe.FromContext) — the batch path the
// outdoor-comparison stage and the online classify handler share. Each
// row writes its own output slot, so the result is deterministic. A
// cancelled ctx stops the scan and returns ctx.Err().
func (f *Forest) PredictAllContext(ctx context.Context, x *mat.Dense) ([]int, error) {
	out := make([]int, x.Rows())
	if err := pipe.FromContext(ctx).ForEach(ctx, x.Rows(), func(i int) {
		out[i] = f.Predict(x.Row(i))
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Accuracy returns the fraction of rows of x whose prediction matches y.
func (f *Forest) Accuracy(x *mat.Dense, y []int) float64 {
	if x.Rows() == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < x.Rows(); i++ {
		if f.Predict(x.Row(i)) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(x.Rows())
}
