// Package dataio provides the file formats of the released dataset: CSV
// loaders and writers for antenna inventories and antenna × service
// traffic matrices (the "processed service consumption data" the paper
// makes public), and probe-stream file replay. The command-line tools are
// thin wrappers over this package so every parser is unit-tested.
package dataio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/mat"
	"repro/internal/probe"
)

// TrafficTable is a parsed antenna × service traffic matrix.
type TrafficTable struct {
	// AntennaIDs holds the first-column identifiers, row-aligned with
	// Traffic.
	AntennaIDs []string
	// Services holds the header names of the traffic columns.
	Services []string
	// Traffic is the non-negative MB matrix.
	Traffic *mat.Dense
}

// WriteTraffic writes a traffic table as CSV with a header row.
func WriteTraffic(w io.Writer, t *TrafficTable) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("antenna_id"); err != nil {
		return err
	}
	for _, name := range t.Services {
		if _, err := fmt.Fprintf(bw, ",%s", quoteCSV(name)); err != nil {
			return err
		}
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	for i, id := range t.AntennaIDs {
		if _, err := bw.WriteString(quoteCSV(id)); err != nil {
			return err
		}
		for _, v := range t.Traffic.Row(i) {
			if _, err := fmt.Fprintf(bw, ",%.4f", v); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxRecordBytes bounds one CSV record. The previous line-based reader
// silently capped rows at bufio.Scanner's 1 MB buffer and surfaced the
// opaque bufio.ErrTooLong; the record reader raises the ceiling and names
// the failing row instead. A var so tests can exercise the limit without
// materializing 64 MiB rows.
var maxRecordBytes = 1 << 26

// ReadTraffic parses a traffic CSV: a header beginning with an id column
// followed by one service column per feature, then one row per antenna.
// Traffic must be non-negative; at least two antennas and one service are
// required. Cells follow RFC 4180: double-quoted cells may contain commas,
// escaped quotes, and newlines — everything WriteTraffic emits reads back.
func ReadTraffic(r io.Reader) (*TrafficTable, error) {
	cr := newCSVReader(r)
	header, err := cr.readRecord()
	if err == io.EOF {
		return nil, fmt.Errorf("dataio: empty traffic CSV")
	}
	if err != nil {
		return nil, err
	}
	if len(header) < 2 {
		return nil, fmt.Errorf("dataio: header needs an id column and at least one service")
	}
	t := &TrafficTable{Services: header[1:]}
	var rows [][]float64
	for {
		fields, err := cr.readRecord()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		row := cr.record
		if len(fields) != len(header) {
			return nil, fmt.Errorf("dataio: row %d has %d fields, want %d", row, len(fields), len(header))
		}
		t.AntennaIDs = append(t.AntennaIDs, fields[0])
		vals := make([]float64, len(fields)-1)
		for j, cell := range fields[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("dataio: row %d column %d: bad value %q", row, j+2, cell)
			}
			if v < 0 {
				return nil, fmt.Errorf("dataio: row %d column %d: negative traffic %v", row, j+2, v)
			}
			vals[j] = v
		}
		rows = append(rows, vals)
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("dataio: need at least two antennas, got %d", len(rows))
	}
	traffic, err := mat.FromRows(rows)
	if err != nil {
		return nil, fmt.Errorf("dataio: assemble traffic matrix: %w", err)
	}
	t.Traffic = traffic
	return t, nil
}

// csvReader reads RFC-4180 records — the symmetric counterpart of
// quoteCSV, including quoted cells spanning lines. Records end at a
// newline (LF or CRLF) outside quotes or at EOF.
type csvReader struct {
	br     *bufio.Reader
	record int // 1-based index of the record last returned
}

func newCSVReader(r io.Reader) *csvReader {
	return &csvReader{br: bufio.NewReader(r)}
}

// readRecord returns the next record's cells. io.EOF signals a clean end
// of input with no pending record.
func (c *csvReader) readRecord() ([]string, error) {
	var (
		fields   []string
		cell     strings.Builder
		inQuotes bool
		started  bool
		size     int
	)
	c.record++
	for {
		b, err := c.br.ReadByte()
		if err == io.EOF {
			if inQuotes {
				return nil, fmt.Errorf("dataio: row %d: unterminated quoted cell at EOF", c.record)
			}
			if !started {
				c.record--
				return nil, io.EOF
			}
			fields = append(fields, cell.String())
			return fields, nil
		}
		if err != nil {
			return nil, fmt.Errorf("dataio: row %d: %w", c.record, err)
		}
		started = true
		size++
		if size > maxRecordBytes {
			return nil, fmt.Errorf("dataio: row %d: row too long (exceeds %d bytes)", c.record, maxRecordBytes)
		}
		switch {
		case b == '"':
			if inQuotes {
				// Peek for an escaped quote.
				if next, err := c.br.ReadByte(); err == nil {
					if next == '"' {
						cell.WriteByte('"')
						continue
					}
					_ = c.br.UnreadByte()
				}
			}
			inQuotes = !inQuotes
		case b == ',' && !inQuotes:
			fields = append(fields, cell.String())
			cell.Reset()
		case b == '\r' && !inQuotes:
			// CRLF ends the record; a lone CR is cell content.
			if next, err := c.br.ReadByte(); err == nil {
				if next == '\n' {
					fields = append(fields, cell.String())
					return fields, nil
				}
				_ = c.br.UnreadByte()
			}
			cell.WriteByte(b)
		case b == '\n' && !inQuotes:
			fields = append(fields, cell.String())
			return fields, nil
		default:
			cell.WriteByte(b)
		}
	}
}

// SplitCSV splits one CSV line honoring RFC-4180 double-quoted cells.
func SplitCSV(line string) []string {
	var out []string
	var cell strings.Builder
	inQuotes := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '"':
			if inQuotes && i+1 < len(line) && line[i+1] == '"' {
				cell.WriteByte('"')
				i++
			} else {
				inQuotes = !inQuotes
			}
		case c == ',' && !inQuotes:
			out = append(out, cell.String())
			cell.Reset()
		default:
			cell.WriteByte(c)
		}
	}
	out = append(out, cell.String())
	return out
}

func quoteCSV(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// ReplayStream reads an entire probe stream and hands every record to fn,
// returning the record count. It stops with an error on the first framing
// violation.
func ReplayStream(r io.Reader, fn func(probe.Record)) (int, error) {
	pr := probe.NewReader(r)
	n := 0
	for {
		rec, err := pr.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("dataio: record %d: %w", n, err)
		}
		fn(rec)
		n++
	}
}

// WriteStream writes records as a probe stream.
func WriteStream(w io.Writer, records []probe.Record) error {
	pw := probe.NewWriter(w)
	for i, rec := range records {
		if err := pw.Write(rec); err != nil {
			return fmt.Errorf("dataio: record %d: %w", i, err)
		}
	}
	return pw.Flush()
}
