// Package dataio provides the file formats of the released dataset: CSV
// loaders and writers for antenna inventories and antenna × service
// traffic matrices (the "processed service consumption data" the paper
// makes public), and probe-stream file replay. The command-line tools are
// thin wrappers over this package so every parser is unit-tested.
package dataio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/mat"
	"repro/internal/probe"
)

// TrafficTable is a parsed antenna × service traffic matrix.
type TrafficTable struct {
	// AntennaIDs holds the first-column identifiers, row-aligned with
	// Traffic.
	AntennaIDs []string
	// Services holds the header names of the traffic columns.
	Services []string
	// Traffic is the non-negative MB matrix.
	Traffic *mat.Dense
}

// WriteTraffic writes a traffic table as CSV with a header row.
func WriteTraffic(w io.Writer, t *TrafficTable) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("antenna_id"); err != nil {
		return err
	}
	for _, name := range t.Services {
		if _, err := fmt.Fprintf(bw, ",%s", quoteCSV(name)); err != nil {
			return err
		}
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	for i, id := range t.AntennaIDs {
		if _, err := bw.WriteString(quoteCSV(id)); err != nil {
			return err
		}
		for _, v := range t.Traffic.Row(i) {
			if _, err := fmt.Fprintf(bw, ",%.4f", v); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTraffic parses a traffic CSV: a header beginning with an id column
// followed by one service column per feature, then one row per antenna.
// Traffic must be non-negative; at least two antennas and one service are
// required.
func ReadTraffic(r io.Reader) (*TrafficTable, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("dataio: empty traffic CSV")
	}
	header := SplitCSV(sc.Text())
	if len(header) < 2 {
		return nil, fmt.Errorf("dataio: header needs an id column and at least one service")
	}
	t := &TrafficTable{Services: header[1:]}
	var rows [][]float64
	line := 1
	for sc.Scan() {
		line++
		fields := SplitCSV(sc.Text())
		if len(fields) != len(header) {
			return nil, fmt.Errorf("dataio: line %d has %d fields, want %d", line, len(fields), len(header))
		}
		t.AntennaIDs = append(t.AntennaIDs, fields[0])
		row := make([]float64, len(fields)-1)
		for j, cell := range fields[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("dataio: line %d column %d: bad value %q", line, j+2, cell)
			}
			if v < 0 {
				return nil, fmt.Errorf("dataio: line %d column %d: negative traffic %v", line, j+2, v)
			}
			row[j] = v
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("dataio: need at least two antennas, got %d", len(rows))
	}
	traffic, err := mat.FromRows(rows)
	if err != nil {
		return nil, fmt.Errorf("dataio: assemble traffic matrix: %w", err)
	}
	t.Traffic = traffic
	return t, nil
}

// SplitCSV splits one CSV line honoring RFC-4180 double-quoted cells.
func SplitCSV(line string) []string {
	var out []string
	var cell strings.Builder
	inQuotes := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '"':
			if inQuotes && i+1 < len(line) && line[i+1] == '"' {
				cell.WriteByte('"')
				i++
			} else {
				inQuotes = !inQuotes
			}
		case c == ',' && !inQuotes:
			out = append(out, cell.String())
			cell.Reset()
		default:
			cell.WriteByte(c)
		}
	}
	out = append(out, cell.String())
	return out
}

func quoteCSV(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// ReplayStream reads an entire probe stream and hands every record to fn,
// returning the record count. It stops with an error on the first framing
// violation.
func ReplayStream(r io.Reader, fn func(probe.Record)) (int, error) {
	pr := probe.NewReader(r)
	n := 0
	for {
		rec, err := pr.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("dataio: record %d: %w", n, err)
		}
		fn(rec)
		n++
	}
}

// WriteStream writes records as a probe stream.
func WriteStream(w io.Writer, records []probe.Record) error {
	pw := probe.NewWriter(w)
	for i, rec := range records {
		if err := pw.Write(rec); err != nil {
			return fmt.Errorf("dataio: record %d: %w", i, err)
		}
	}
	return pw.Flush()
}
