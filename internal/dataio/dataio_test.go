package dataio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/probe"
)

func sampleTable() *TrafficTable {
	return &TrafficTable{
		AntennaIDs: []string{"0", "1", "2"},
		Services:   []string{"Netflix", "Spotify", `Odd "Name", Inc`},
		Traffic: mat.MustFromRows([][]float64{
			{1.5, 0, 3},
			{0, 2.25, 0},
			{10, 20, 30},
		}),
	}
}

func TestTrafficRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraffic(&buf, sampleTable()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraffic(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleTable()
	if len(got.AntennaIDs) != 3 || got.AntennaIDs[2] != "2" {
		t.Fatalf("ids %v", got.AntennaIDs)
	}
	if len(got.Services) != 3 || got.Services[2] != `Odd "Name", Inc` {
		t.Fatalf("quoted service name lost: %q", got.Services[2])
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if got.Traffic.At(i, j) != want.Traffic.At(i, j) {
				t.Fatalf("cell (%d,%d): %v vs %v", i, j, got.Traffic.At(i, j), want.Traffic.At(i, j))
			}
		}
	}
}

// TestTrafficRoundTripQuotedNewlines is the writer/reader symmetry
// regression: quoteCSV legally emits quoted cells containing newlines,
// which the old line-based reader could never re-parse. Names with
// embedded LF, CRLF, commas, and quotes must now survive the round trip.
func TestTrafficRoundTripQuotedNewlines(t *testing.T) {
	table := &TrafficTable{
		AntennaIDs: []string{"site\nA", "plain"},
		Services:   []string{"Video\nStreaming", `Music, "HiFi"`, "cr\r\nlf"},
		Traffic: mat.MustFromRows([][]float64{
			{1, 2, 3},
			{4, 5, 6},
		}),
	}
	var buf bytes.Buffer
	if err := WriteTraffic(&buf, table); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraffic(&buf)
	if err != nil {
		t.Fatalf("re-parse of writer output: %v", err)
	}
	if got.AntennaIDs[0] != "site\nA" {
		t.Fatalf("antenna id with newline lost: %q", got.AntennaIDs[0])
	}
	for j, want := range table.Services {
		if got.Services[j] != want {
			t.Fatalf("service %d: %q, want %q", j, got.Services[j], want)
		}
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if got.Traffic.At(i, j) != table.Traffic.At(i, j) {
				t.Fatalf("cell (%d,%d) lost in round trip", i, j)
			}
		}
	}
}

// TestReadTrafficLongRow is the scanner-buffer regression: rows over the
// old 1 MB bufio.Scanner cap failed with the opaque bufio.ErrTooLong. A
// ~2 MB row must parse now.
func TestReadTrafficLongRow(t *testing.T) {
	long := strings.Repeat("x", 2<<20)
	input := "antenna_id,\"" + long + "\"\n0,1\n1,2\n"
	got, err := ReadTraffic(strings.NewReader(input))
	if err != nil {
		t.Fatalf("2 MB row failed: %v", err)
	}
	if got.Services[0] != long {
		t.Fatalf("long service name truncated to %d bytes", len(got.Services[0]))
	}
}

// TestReadTrafficRowTooLong pins the clear error for rows beyond the
// record ceiling (exercised with a lowered limit).
func TestReadTrafficRowTooLong(t *testing.T) {
	old := maxRecordBytes
	maxRecordBytes = 64
	t.Cleanup(func() { maxRecordBytes = old })
	input := "antenna_id,a\n0," + strings.Repeat("1", 200) + "\n1,2\n"
	_, err := ReadTraffic(strings.NewReader(input))
	if err == nil {
		t.Fatal("oversized row should fail")
	}
	if !strings.Contains(err.Error(), "row too long") || !strings.Contains(err.Error(), "row 2") {
		t.Fatalf("opaque oversized-row error: %v", err)
	}
}

// TestReadTrafficCRLFAndUnterminated covers CRLF record endings and the
// unterminated-quote diagnostic.
func TestReadTrafficCRLFAndUnterminated(t *testing.T) {
	got, err := ReadTraffic(strings.NewReader("antenna_id,a\r\n0,1\r\n1,2\r\n"))
	if err != nil {
		t.Fatalf("CRLF input: %v", err)
	}
	if got.Traffic.At(1, 0) != 2 {
		t.Fatalf("CRLF rows misparsed: %+v", got.Traffic.Row(1))
	}
	if _, err := ReadTraffic(strings.NewReader("antenna_id,\"oops\n0,1\n")); err == nil ||
		!strings.Contains(err.Error(), "unterminated") {
		t.Fatalf("unterminated quote: %v", err)
	}
}

func TestReadTrafficErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"no services":    "antenna_id\n0\n1\n",
		"ragged":         "id,a,b\n0,1,2\n1,3\n",
		"non-numeric":    "id,a\n0,x\n1,2\n",
		"negative":       "id,a\n0,-1\n1,2\n",
		"single antenna": "id,a\n0,1\n",
	}
	for name, input := range cases {
		if _, err := ReadTraffic(strings.NewReader(input)); err == nil {
			t.Fatalf("%s input should fail", name)
		}
	}
}

func TestSplitCSVQuoting(t *testing.T) {
	got := SplitCSV(`a,"b,c","d""e",f`)
	want := []string{"a", "b,c", `d"e`, "f"}
	if len(got) != len(want) {
		t.Fatalf("%v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("field %d: %q vs %q", i, got[i], want[i])
		}
	}
}

func TestSplitCSVEmptyFields(t *testing.T) {
	got := SplitCSV(",a,,")
	if len(got) != 4 || got[0] != "" || got[2] != "" || got[3] != "" {
		t.Fatalf("%v", got)
	}
}

func TestStreamRoundTrip(t *testing.T) {
	records := []probe.Record{
		{Hour: 1, AntennaID: 2, Protocol: probe.TCP, ServerPort: 443, ServerName: "netflix.example", DownBytes: 100, UpBytes: 10},
		{Hour: 2, AntennaID: 3, Protocol: probe.UDP, ServerPort: 443, ServerName: "spotify.example", DownBytes: 7},
	}
	var buf bytes.Buffer
	if err := WriteStream(&buf, records); err != nil {
		t.Fatal(err)
	}
	var got []probe.Record
	n, err := ReplayStream(&buf, func(r probe.Record) { got = append(got, r) })
	if err != nil {
		t.Fatal(err)
	}
	if n != len(records) {
		t.Fatalf("replayed %d records", n)
	}
	for i := range records {
		if got[i] != records[i] {
			t.Fatalf("record %d: %+v vs %+v", i, got[i], records[i])
		}
	}
}

func TestReplayStreamTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteStream(&buf, []probe.Record{{ServerName: "x.example", DownBytes: 5}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-2]
	if _, err := ReplayStream(bytes.NewReader(data), func(probe.Record) {}); err == nil {
		t.Fatal("truncated stream should error")
	}
}

// FuzzReadTraffic feeds arbitrary text to the CSV parser; it must either
// return a well-formed table or an error, never panic.
func FuzzReadTraffic(f *testing.F) {
	f.Add("antenna_id,a,b\n0,1,2\n1,3,4\n")
	f.Add("id,a\n0,-1\n")
	f.Add(`id,"quoted,name"` + "\n0,5\n1,6\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		table, err := ReadTraffic(strings.NewReader(input))
		if err != nil {
			return
		}
		if table.Traffic.Rows() != len(table.AntennaIDs) {
			t.Fatal("row/id mismatch on accepted input")
		}
		if table.Traffic.Cols() != len(table.Services) {
			t.Fatal("col/service mismatch on accepted input")
		}
		for i := 0; i < table.Traffic.Rows(); i++ {
			for _, v := range table.Traffic.Row(i) {
				if v < 0 {
					t.Fatal("accepted negative traffic")
				}
			}
		}
	})
}

// Property: any table of non-negative values round-trips through the CSV
// codec within formatting precision.
func TestTrafficRoundTripProperty(t *testing.T) {
	f := func(cells [6]uint16) bool {
		table := &TrafficTable{
			AntennaIDs: []string{"a", "b"},
			Services:   []string{"s1", "s2", "s3"},
			Traffic: mat.MustFromRows([][]float64{
				{float64(cells[0]) / 16, float64(cells[1]) / 16, float64(cells[2]) / 16},
				{float64(cells[3]) / 16, float64(cells[4]) / 16, float64(cells[5]) / 16},
			}),
		}
		var buf bytes.Buffer
		if err := WriteTraffic(&buf, table); err != nil {
			return false
		}
		got, err := ReadTraffic(&buf)
		if err != nil {
			return false
		}
		for i := 0; i < 2; i++ {
			for j := 0; j < 3; j++ {
				if diff := got.Traffic.At(i, j) - table.Traffic.At(i, j); diff > 1e-4 || diff < -1e-4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
