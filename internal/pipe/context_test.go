package pipe

import (
	"context"
	"testing"
)

func TestFromContextFallsBackToShared(t *testing.T) {
	if got := FromContext(context.Background()); got != shared {
		t.Fatal("bare context should yield the shared pool")
	}
}

func TestWithPoolCarriesPool(t *testing.T) {
	p := NewPool(2)
	ctx := WithPool(context.Background(), p)
	if got := FromContext(ctx); got != p {
		t.Fatal("context did not carry the attached pool")
	}
	// A derived context inherits the pool.
	child, cancel := context.WithCancel(ctx)
	defer cancel()
	if got := FromContext(child); got != p {
		t.Fatal("derived context lost the attached pool")
	}
}

func TestWithPoolNilIsNoop(t *testing.T) {
	ctx := WithPool(context.Background(), nil)
	if got := FromContext(ctx); got != shared {
		t.Fatal("nil pool should leave the shared fallback in place")
	}
}
