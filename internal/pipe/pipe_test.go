package pipe

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestForEachCoversEveryIndex(t *testing.T) {
	p := NewPool(4)
	out := make([]int, 1000)
	if err := p.ForEach(context.Background(), len(out), func(i int) { out[i] = i + 1 }); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("index %d not processed (got %d)", i, v)
		}
	}
}

func TestForEachInlineWhenSaturated(t *testing.T) {
	// Capacity 1 means no helper goroutines: everything runs on the
	// caller's goroutine and nested calls cannot deadlock.
	p := NewPool(1)
	var count int64
	err := p.ForEach(context.Background(), 8, func(i int) {
		p.ForEach(context.Background(), 8, func(j int) {
			atomic.AddInt64(&count, 1)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 64 {
		t.Fatalf("nested ForEach ran %d items, want 64", count)
	}
}

func TestForEachHonorsCancellation(t *testing.T) {
	p := NewPool(2)
	ctx, cancel := context.WithCancel(context.Background())
	var ran int64
	err := p.ForEach(ctx, 100000, func(i int) {
		if atomic.AddInt64(&ran, 1) == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt64(&ran); n >= 100000 {
		t.Fatalf("cancellation did not stop the loop (%d items ran)", n)
	}
}

func TestGraphRunsStagesInDependencyOrder(t *testing.T) {
	g := NewGraph()
	var order []string
	var mu atomic.Int64
	record := func(name string) StageFunc {
		return func(ctx context.Context) error {
			for !mu.CompareAndSwap(0, 1) {
			}
			order = append(order, name)
			mu.Store(0)
			return nil
		}
	}
	g.Add("c", []string{"b"}, record("c"))
	g.Add("a", nil, record("a"))
	g.Add("b", []string{"a"}, record("b"))
	g.Add("d", []string{"a"}, record("d"))
	if err := g.Run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if len(order) != 4 {
		t.Fatalf("ran %d stages: %v", len(order), order)
	}
	if pos["a"] > pos["b"] || pos["b"] > pos["c"] || pos["a"] > pos["d"] {
		t.Fatalf("dependency order violated: %v", order)
	}
}

func TestGraphIndependentStagesOverlap(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs 2 CPUs")
	}
	g := NewGraph()
	gate := make(chan struct{})
	// Two independent stages that each wait for the other to have
	// started: only concurrent execution lets the run finish.
	meet := func(ctx context.Context) error {
		select {
		case gate <- struct{}{}:
		case <-gate:
		case <-time.After(5 * time.Second):
			return errors.New("stages did not overlap")
		}
		return nil
	}
	g.Add("left", nil, meet)
	g.Add("right", nil, meet)
	if err := g.Run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
}

func TestGraphStageErrorStopsDependents(t *testing.T) {
	g := NewGraph()
	boom := errors.New("boom")
	var ranAfter atomic.Bool
	g.Add("bad", nil, func(ctx context.Context) error { return boom })
	g.Add("next", []string{"bad"}, func(ctx context.Context) error {
		ranAfter.Store(true)
		return nil
	})
	err := g.Run(context.Background(), nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != "bad" {
		t.Fatalf("err = %v, want StageError for stage bad", err)
	}
	if ranAfter.Load() {
		t.Fatal("dependent stage ran after its dependency failed")
	}
}

func TestGraphValidation(t *testing.T) {
	g := NewGraph()
	g.Add("a", []string{"ghost"}, func(ctx context.Context) error { return nil })
	if err := g.Run(context.Background(), nil); err == nil || !strings.Contains(err.Error(), "unknown stage") {
		t.Fatalf("err = %v, want unknown-dependency error", err)
	}

	c := NewGraph()
	c.Add("x", []string{"y"}, func(ctx context.Context) error { return nil })
	c.Add("y", []string{"x"}, func(ctx context.Context) error { return nil })
	if err := c.Run(context.Background(), nil); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v, want cycle error", err)
	}
}

func TestGraphCancellation(t *testing.T) {
	g := NewGraph()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var tailRan atomic.Bool
	g.Add("head", nil, func(ctx context.Context) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	})
	g.Add("tail", []string{"head"}, func(ctx context.Context) error {
		tailRan.Store(true)
		return nil
	})
	go func() {
		<-started
		cancel()
	}()
	err := g.Run(ctx, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if tailRan.Load() {
		t.Fatal("tail stage ran after cancellation")
	}
}

// TestGraphStageHookInjectsFailure pins the fault seam: a hook carried by
// the context runs before each stage body; its error fails the stage (as a
// StageError) without the body ever starting, and dependents are skipped.
func TestGraphStageHookInjectsFailure(t *testing.T) {
	g := NewGraph()
	var midRan, tailRan atomic.Bool
	g.Add("head", nil, func(ctx context.Context) error { return nil })
	g.Add("mid", []string{"head"}, func(ctx context.Context) error {
		midRan.Store(true)
		return nil
	})
	g.Add("tail", []string{"mid"}, func(ctx context.Context) error {
		tailRan.Store(true)
		return nil
	})
	boom := errors.New("injected")
	ctx := WithStageHook(context.Background(), func(stage string) error {
		if stage == "mid" {
			return boom
		}
		return nil
	})
	err := g.Run(ctx, nil)
	var se *StageError
	if !errors.As(err, &se) || se.Stage != "mid" || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want StageError{mid, injected}", err)
	}
	if midRan.Load() {
		t.Fatal("hook error must pre-empt the stage body")
	}
	if tailRan.Load() {
		t.Fatal("dependent ran after injected stage failure")
	}
	// A nil hook is a no-op passthrough.
	if WithStageHook(context.Background(), nil) != context.Background() {
		t.Fatal("nil hook should return ctx unchanged")
	}
}

// TestGraphCancellationStorm hammers Run with racing cancellations and
// hook-injected failures: every run must return (no deadlock), never leak
// goroutines, and always surface either the caller's cancellation or a
// StageError — never a silent nil alongside skipped stages.
func TestGraphCancellationStorm(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 50; round++ {
		g := NewGraph()
		var ran atomic.Int32
		g.Add("a", nil, func(ctx context.Context) error { ran.Add(1); return nil })
		g.Add("b", nil, func(ctx context.Context) error { ran.Add(1); return nil })
		g.Add("c", []string{"a", "b"}, func(ctx context.Context) error { ran.Add(1); return nil })
		g.Add("d", []string{"c"}, func(ctx context.Context) error { ran.Add(1); return nil })
		ctx, cancel := context.WithCancel(context.Background())
		hctx := WithStageHook(ctx, func(stage string) error {
			if round%3 == 0 && stage == "c" {
				return errors.New("storm fault")
			}
			return nil
		})
		if round%2 == 0 {
			cancel() // cancel before Run even starts
		} else {
			defer cancel()
		}
		err := g.Run(hctx, nil)
		switch {
		case round%2 == 0:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("round %d: err = %v, want context.Canceled", round, err)
			}
		case round%3 == 0:
			var se *StageError
			if !errors.As(err, &se) || se.Stage != "c" {
				t.Fatalf("round %d: err = %v, want StageError{c}", round, err)
			}
			if ran.Load() != 2 {
				t.Fatalf("round %d: %d stages ran, want 2 (a, b)", round, ran.Load())
			}
		default:
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if ran.Load() != 4 {
				t.Fatalf("round %d: %d stages ran, want 4", round, ran.Load())
			}
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutine leak: %d before, %d after storm", before, n)
	}
}

func TestGraphRecordsTrace(t *testing.T) {
	g := NewGraph()
	g.Add("a", nil, func(ctx context.Context) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	g.Add("b", []string{"a"}, func(ctx context.Context) error { return nil })
	tr := obs.NewTrace()
	if err := g.Run(context.Background(), tr); err != nil {
		t.Fatal(err)
	}
	stages := tr.Stages()
	if len(stages) != 2 {
		t.Fatalf("%d stage traces", len(stages))
	}
	byName := map[string]obs.StageTrace{}
	for _, s := range stages {
		byName[s.Name] = s
	}
	if byName["a"].Wall < time.Millisecond {
		t.Fatalf("stage a wall %v, want >= 1ms", byName["a"].Wall)
	}
	if byName["b"].Waited < byName["a"].Wall {
		t.Fatalf("stage b queued %v, should wait out stage a (%v)", byName["b"].Waited, byName["a"].Wall)
	}
	if tr.Total() < byName["a"].Wall {
		t.Fatalf("trace total %v below stage wall", tr.Total())
	}
	rendered := tr.String()
	for _, want := range []string{"stage", "a", "b", "TOTAL"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("trace table missing %q:\n%s", want, rendered)
		}
	}
}
