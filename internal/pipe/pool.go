// Package pipe is the staged pipeline engine of the analysis stack: a
// deterministic DAG scheduler that runs named stages concurrently once
// their dependencies complete, and a single bounded worker pool shared by
// every data-parallel kernel (pairwise distances, forest training,
// TreeSHAP, temporal medians) in place of the ad-hoc per-call-site
// goroutine fan-outs the packages used to spawn. Context cancellation is
// honored between work items and between stages.
package pipe

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Pool is a bounded worker pool. The zero capacity of the process-shared
// pool is GOMAXPROCS; every ForEach caller additionally contributes its
// own goroutine, so progress never depends on acquiring a pool slot and
// nested or concurrent ForEach calls cannot deadlock.
type Pool struct {
	// sem holds capacity-1 slots for helper goroutines; the calling
	// goroutine always participates without a slot.
	sem chan struct{}
}

// NewPool builds a pool running at most capacity work items at once per
// caller (capacity < 1 is treated as 1, i.e. fully inline).
func NewPool(capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{sem: make(chan struct{}, capacity-1)}
}

var shared = NewPool(runtime.GOMAXPROCS(0))

// Shared returns the process-wide pool used by the analysis substrates.
func Shared() *Pool { return shared }

// ForEach runs fn(i) for every i in [0, n), distributing items across the
// caller's goroutine plus up to capacity-1 pool workers. Items are claimed
// dynamically, but callers that give each index its own output slot get
// deterministic results regardless of scheduling. Cancelling ctx stops
// workers from claiming further items; items already started run to
// completion. Returns ctx.Err() if the context was cancelled.
func (p *Pool) ForEach(ctx context.Context, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	obs.Add("pipe.foreach", 1)
	obs.Add("pipe.items", int64(n))
	var next int64
	done := ctx.Done()
	run := func() {
		for {
			if done != nil {
				select {
				case <-done:
					return
				default:
				}
			}
			i := int(atomic.AddInt64(&next, 1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	// Recruit helpers only while slots are free: a saturated pool keeps
	// the caller running inline instead of blocking on a slot.
	for w := 1; w < n; w++ {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() {
					//lint:allow ctxguard releasing a held slot back to a buffered semaphore can never block; a select here would leak the slot on cancellation
					<-p.sem
					wg.Done()
				}()
				run()
			}()
		default:
			w = n // pool saturated; no point trying further slots
		}
	}
	run()
	wg.Wait()
	return ctx.Err()
}
