package pipe

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// StageFunc is the body of one pipeline stage. The context is cancelled
// as soon as any stage fails or the caller cancels the run.
type StageFunc func(ctx context.Context) error

type stage struct {
	name string
	deps []string
	fn   StageFunc
}

// Graph is a deterministic DAG of named stages. Build it with Add and
// execute it with Run; stages whose dependencies have all completed run
// concurrently.
type Graph struct {
	stages []stage
	index  map[string]int
}

// NewGraph returns an empty stage graph.
func NewGraph() *Graph {
	return &Graph{index: map[string]int{}}
}

// Add registers a stage. Dependencies are stage names that must complete
// before fn runs. Registration order is preserved for deterministic
// validation errors; execution order is governed solely by dependencies.
func (g *Graph) Add(name string, deps []string, fn StageFunc) {
	if _, dup := g.index[name]; dup {
		//lint:allow nopanic duplicate registration is a wiring bug, caught at startup
		panic(fmt.Sprintf("pipe: duplicate stage %q", name))
	}
	g.index[name] = len(g.stages)
	g.stages = append(g.stages, stage{name: name, deps: append([]string(nil), deps...), fn: fn})
}

// validate checks that every dependency exists and the graph is acyclic.
func (g *Graph) validate() error {
	for _, s := range g.stages {
		for _, d := range s.deps {
			if _, ok := g.index[d]; !ok {
				return fmt.Errorf("pipe: stage %q depends on unknown stage %q", s.name, d)
			}
			if d == s.name {
				return fmt.Errorf("pipe: stage %q depends on itself", s.name)
			}
		}
	}
	// Kahn's algorithm over the dependency counts.
	indegree := make([]int, len(g.stages))
	dependents := make([][]int, len(g.stages))
	for i, s := range g.stages {
		indegree[i] = len(s.deps)
		for _, d := range s.deps {
			j := g.index[d]
			dependents[j] = append(dependents[j], i)
		}
	}
	ready := make([]int, 0, len(g.stages))
	for i, deg := range indegree {
		if deg == 0 {
			ready = append(ready, i)
		}
	}
	seen := 0
	for len(ready) > 0 {
		i := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		seen++
		for _, j := range dependents[i] {
			indegree[j]--
			if indegree[j] == 0 {
				ready = append(ready, j)
			}
		}
	}
	if seen != len(g.stages) {
		var cyclic []string
		for i, deg := range indegree {
			if deg > 0 {
				cyclic = append(cyclic, g.stages[i].name)
			}
		}
		sort.Strings(cyclic)
		return fmt.Errorf("pipe: dependency cycle involving stages %v", cyclic)
	}
	return nil
}

// StageError wraps a stage failure with the stage's name.
type StageError struct {
	Stage string
	Err   error
}

func (e *StageError) Error() string { return fmt.Sprintf("stage %q: %v", e.Stage, e.Err) }

// Unwrap exposes the underlying stage error.
func (e *StageError) Unwrap() error { return e.Err }

// Run executes the graph: every stage starts as soon as its dependencies
// complete, on its own goroutine (inner data parallelism goes through the
// shared Pool). The first stage error — or a cancelled ctx — stops new
// stages from starting, cancels the context passed to running stages, and
// is returned after every in-flight stage has exited, so Run never leaks
// goroutines. Per-stage wall time, queueing delay, allocation delta and
// goroutine counts are recorded into tr when it is non-nil. A StageHook
// carried by ctx (see WithStageHook) is consulted before each stage body;
// a hook error fails the stage without running it.
func (g *Graph) Run(ctx context.Context, tr *obs.Trace) error {
	if err := g.validate(); err != nil {
		return err
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	hook := stageHookFrom(ctx)

	n := len(g.stages)
	indegree := make([]int, n)
	dependents := make([][]int, n)
	for i, s := range g.stages {
		indegree[i] = len(s.deps)
		for _, d := range s.deps {
			j := g.index[d]
			dependents[j] = append(dependents[j], i)
		}
	}

	start := time.Now()
	if tr != nil {
		start = tr.Start()
	}
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
		stopped  bool
	)
	var launch func(i int)
	finish := func(i int, err error) {
		mu.Lock()
		if err != nil {
			if firstErr == nil {
				firstErr = &StageError{Stage: g.stages[i].name, Err: err}
			}
			stopped = true
			cancel()
		}
		var ready []int
		if !stopped {
			for _, j := range dependents[i] {
				indegree[j]--
				if indegree[j] == 0 {
					ready = append(ready, j)
				}
			}
		}
		mu.Unlock()
		for _, j := range ready {
			launch(j)
		}
	}
	launch = func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := g.stages[i]
			queued := time.Since(start)
			allocBefore := obs.MemAllocated()
			stageStart := time.Now()
			var err error
			switch {
			case runCtx.Err() != nil:
				err = runCtx.Err()
			case hook != nil:
				if err = hook(s.name); err == nil {
					err = s.fn(runCtx)
				}
			default:
				err = s.fn(runCtx)
			}
			if tr != nil {
				st := obs.StageTrace{
					Name:       s.name,
					Deps:       s.deps,
					Wall:       time.Since(stageStart),
					Waited:     queued,
					Goroutines: runtime.NumGoroutine(),
				}
				if alloc := obs.MemAllocated(); alloc > allocBefore {
					st.AllocBytes = alloc - allocBefore
				}
				if err != nil {
					st.Err = err.Error()
				}
				tr.Record(st)
			}
			obs.Add("pipe.stages", 1)
			finish(i, err)
		}()
	}

	var roots []int
	for i, deg := range indegree {
		if deg == 0 {
			roots = append(roots, i)
		}
	}
	for _, i := range roots {
		launch(i)
	}
	wg.Wait()
	// A cancelled caller context outranks the per-stage errors it induced.
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}
