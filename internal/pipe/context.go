package pipe

import "context"

// poolKey carries a caller-selected Pool through a context.
type poolKey struct{}

// WithPool returns a context carrying p. Substrates that parallelize under
// a context (pairwise distances, forest training, the serving path) pick
// the pool up with FromContext, so one caller-provided pool bounds the
// whole run without threading a *Pool parameter through every layer.
func WithPool(ctx context.Context, p *Pool) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, poolKey{}, p)
}

// FromContext returns the pool carried by ctx, or the process-shared pool
// when the context carries none.
func FromContext(ctx context.Context) *Pool {
	if p, ok := ctx.Value(poolKey{}).(*Pool); ok {
		return p
	}
	return shared
}
