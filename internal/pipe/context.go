package pipe

import "context"

// poolKey carries a caller-selected Pool through a context.
type poolKey struct{}

// WithPool returns a context carrying p. Substrates that parallelize under
// a context (pairwise distances, forest training, the serving path) pick
// the pool up with FromContext, so one caller-provided pool bounds the
// whole run without threading a *Pool parameter through every layer.
func WithPool(ctx context.Context, p *Pool) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, poolKey{}, p)
}

// FromContext returns the pool carried by ctx, or the process-shared pool
// when the context carries none.
func FromContext(ctx context.Context) *Pool {
	if p, ok := ctx.Value(poolKey{}).(*Pool); ok {
		return p
	}
	return shared
}

// stageHookKey carries a caller-selected stage hook through a context.
type stageHookKey struct{}

// StageHook is consulted by Graph.Run immediately before each stage body
// runs. A non-nil return aborts that stage with the returned error (wrapped
// in a StageError), exactly as if the stage itself had failed. Hooks let
// harnesses inject faults or delays at stage boundaries without pipe
// depending on them; pipe stays generic and the hook package stays out of
// the dependency graph.
type StageHook func(stage string) error

// WithStageHook returns a context carrying hook. Passing a nil hook returns
// ctx unchanged.
func WithStageHook(ctx context.Context, hook StageHook) context.Context {
	if hook == nil {
		return ctx
	}
	return context.WithValue(ctx, stageHookKey{}, hook)
}

// stageHookFrom returns the hook carried by ctx, or nil.
func stageHookFrom(ctx context.Context) StageHook {
	if h, ok := ctx.Value(stageHookKey{}).(StageHook); ok {
		return h
	}
	return nil
}
