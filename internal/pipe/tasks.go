package pipe

import (
	"sync"

	"repro/internal/obs"
)

// Tasks tracks long-lived auxiliary goroutines — listeners, per-connection
// handlers, tickers — that fall outside the bounded data-parallel Pool.
// It is the second (and last) sanctioned goroutine spawn point of the
// module: library code never uses a raw go statement, so every goroutine
// is either a pool worker or a tracked task, observable through the
// "pipe.tasks" counter and awaitable on shutdown.
//
// Unlike Pool, Tasks is deliberately unbounded: its goroutines are
// lifecycle-bound (they exit when their connection closes or their context
// is cancelled), not work-bound, so backpressure belongs to the caller
// (e.g. an accept loop), not to the spawn point.
//
// The zero value is ready to use.
type Tasks struct {
	wg sync.WaitGroup
}

// Go runs fn on a tracked goroutine.
func (t *Tasks) Go(fn func()) {
	obs.Add("pipe.tasks", 1)
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		fn()
	}()
}

// Wait blocks until every tracked goroutine has returned.
func (t *Tasks) Wait() { t.wg.Wait() }
