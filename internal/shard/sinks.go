package shard

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/collect"
	"repro/internal/fault"
	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/pipe"
	"repro/internal/probe"
)

// Sinks is the sharded aggregation tier: one collect.Sink per shard, each
// fed by a bounded batch queue drained on its own tracked worker. The
// acked-batch invariant of the single-node server carries over: a batch
// Offer returns true for is folded into its shards' sinks even through a
// shard Kill or Close — drain workers always empty their queue before
// exiting.
type Sinks struct {
	ring   *Ring
	faults *fault.Injector
	depth  int
	queues []*shardQueue
}

// shardQueue is one shard's bounded ingest queue plus its sink. All queue
// state is guarded by mu; the cond wakes the drain worker on enqueue and
// close.
type shardQueue struct {
	id    int
	sink  *collect.Sink
	tasks pipe.Tasks

	mu      sync.Mutex
	cond    *sync.Cond
	pending [][]probe.Record
	// queued counts records acked into this queue but not yet folded into
	// the sink — it reaches zero exactly when every acked record is
	// aggregated.
	queued int
	closed bool
	dead   bool
}

// NewSinks builds one queue+sink per ring shard and starts the drain
// workers. depth ≤ 0 selects 64 batches per shard. The injector's
// fault.ShardFold site throttles or never touches the folds (nil injects
// nothing).
func NewSinks(ring *Ring, depth int, faults *fault.Injector) (*Sinks, error) {
	if ring == nil {
		return nil, fmt.Errorf("shard: sinks need a ring")
	}
	if depth <= 0 {
		depth = 64
	}
	s := &Sinks{ring: ring, faults: faults, depth: depth}
	for i := 0; i < ring.Shards(); i++ {
		q := &shardQueue{id: i, sink: collect.NewSink()}
		q.cond = sync.NewCond(&q.mu)
		s.queues = append(s.queues, q)
		q.tasks.Go(func() { q.drain(faults) })
	}
	return s, nil
}

// drain folds queued batches until the queue closes, then folds whatever
// remains — the worker never exits with acked records unfolded.
func (q *shardQueue) drain(faults *fault.Injector) {
	for {
		q.mu.Lock()
		for len(q.pending) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.pending) == 0 {
			q.mu.Unlock()
			return
		}
		batch := q.pending[0]
		q.pending = q.pending[1:]
		q.mu.Unlock()

		// The slow-consumer regime: injected fold delays throttle this
		// shard alone, building queue pressure that surfaces as Offer
		// rejections upstream. Background context — a kill or shutdown
		// must still fold acked batches, never abandon them.
		_ = faults.Wait(context.Background(), fault.ShardFold)
		q.sink.AddBatch(batch)

		q.mu.Lock()
		q.queued -= len(batch)
		q.mu.Unlock()
		obs.Add("shard.fold.records", int64(len(batch)))
	}
}

// acceptsLocked reports whether the queue can take one more batch; the
// caller holds mu.
func (q *shardQueue) acceptsLocked(depth int) bool {
	return !q.dead && !q.closed && len(q.pending) < depth
}

// enqueueLocked appends one sub-batch, wakes the drain worker, and returns
// the resulting queue depth; the caller holds mu.
func (q *shardQueue) enqueueLocked(sub []probe.Record) int {
	q.pending = append(q.pending, sub)
	q.queued += len(sub)
	q.cond.Signal()
	return len(q.pending)
}

// Partition splits a batch by the ring's current placement, keyed by
// shard id.
func (s *Sinks) Partition(batch []probe.Record) map[int][]probe.Record {
	subs := make(map[int][]probe.Record)
	for _, rec := range batch {
		owner := s.ring.Place(rec.AntennaID)
		subs[owner] = append(subs[owner], rec)
	}
	return subs
}

// Offer enqueues a partitioned batch atomically across its target shards:
// either every sub-batch is queued (true) or none is (false) — a batch is
// acked whole or rejected whole, which is what keeps the acked-batch
// accounting exact under backpressure. A false return means a target queue
// was full, closed, or dead (e.g. the batch was partitioned just before a
// kill); the caller answers 429 and the client's retry re-partitions
// against the updated ring.
func (s *Sinks) Offer(subs map[int][]probe.Record) bool {
	if len(subs) == 0 {
		return true
	}
	ids := make([]int, 0, len(subs))
	for id := range subs {
		if id < 0 || id >= len(s.queues) {
			return false
		}
		ids = append(ids, id)
	}
	// Lock in ascending shard order so concurrent Offers cannot deadlock.
	sort.Ints(ids)
	for _, id := range ids {
		s.queues[id].mu.Lock()
	}
	ok := true
	for _, id := range ids {
		if !s.queues[id].acceptsLocked(s.depth) {
			ok = false
			break
		}
	}
	depths := make([]int, 0, len(ids))
	if ok {
		for _, id := range ids {
			depths = append(depths, s.queues[id].enqueueLocked(subs[id]))
		}
	}
	for i := len(ids) - 1; i >= 0; i-- {
		s.queues[ids[i]].mu.Unlock()
	}
	h := obs.GetHistogram("shard.queue.depth", nil)
	for _, d := range depths {
		h.Observe(float64(d))
	}
	return ok
}

// Kill removes a shard from the ring and drains its queue: every batch
// acked before the kill is folded into the shard's sink before Kill
// returns, so a killed shard never loses acked records (its aggregate
// still counts in TrafficMatrix). New offers targeting it are rejected and
// re-placed by client retries. Killing the last alive shard is refused.
func (s *Sinks) Kill(id int) error {
	if id < 0 || id >= len(s.queues) {
		return fmt.Errorf("shard: no shard %d to kill", id)
	}
	if err := s.ring.Remove(id); err != nil {
		return err
	}
	q := s.queues[id]
	q.mu.Lock()
	q.dead = true
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
	q.tasks.Wait()
	obs.Add("shard.kills", 1)
	return nil
}

// Close drains and stops every shard queue (idempotent per queue).
func (s *Sinks) Close() {
	for _, q := range s.queues {
		q.mu.Lock()
		q.closed = true
		q.cond.Broadcast()
		q.mu.Unlock()
	}
	for _, q := range s.queues {
		q.tasks.Wait()
	}
}

// TrafficMatrix merges every shard's aggregate into one antennas × M
// totals matrix — the cross-shard Totals source the refresher folds.
func (s *Sinks) TrafficMatrix(antennas, numServices int) *mat.Dense {
	total := mat.NewDense(antennas, numServices)
	for _, q := range s.queues {
		part := q.sink.TrafficMatrix(antennas, numServices)
		for i := 0; i < antennas; i++ {
			dst, src := total.Row(i), part.Row(i)
			for j := range src {
				dst[j] += src[j]
			}
		}
	}
	return total
}

// FoldedRecords sums the records folded into every shard sink.
func (s *Sinks) FoldedRecords() int {
	total := 0
	for _, q := range s.queues {
		total += q.sink.Snapshot().Records
	}
	return total
}

// PendingRecords sums records acked into queues but not yet folded. Zero
// means every acked record is aggregated.
func (s *Sinks) PendingRecords() int {
	total := 0
	for _, q := range s.queues {
		q.mu.Lock()
		total += q.queued
		q.mu.Unlock()
	}
	return total
}

// SinkStats is one shard's point-in-time queue and aggregate state.
type SinkStats struct {
	Shard         int  `json:"shard"`
	Dead          bool `json:"dead"`
	QueuedBatches int  `json:"queued_batches"`
	QueuedRecords int  `json:"queued_records"`
	FoldedRecords int  `json:"folded_records"`
}

// Stats snapshots every shard's queue depth and fold progress.
func (s *Sinks) Stats() []SinkStats {
	out := make([]SinkStats, 0, len(s.queues))
	for _, q := range s.queues {
		q.mu.Lock()
		st := SinkStats{
			Shard:         q.id,
			Dead:          q.dead,
			QueuedBatches: len(q.pending),
			QueuedRecords: q.queued,
		}
		q.mu.Unlock()
		st.FoldedRecords = q.sink.Snapshot().Records
		out = append(out, st)
	}
	return out
}
