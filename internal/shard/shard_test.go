package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/fault"
	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/probe"
	"repro/internal/rca"
	"repro/internal/serve"
	"repro/internal/synth"
)

// --- fixtures ---------------------------------------------------------------

// tinySnapshot builds a minimal servable model without the full pipeline:
// enough for ingest-path tests that never classify.
func tinySnapshot(t testing.TB) *serve.ModelSnapshot {
	t.Helper()
	rows := [][]float64{
		{100, 5, 5}, {90, 10, 4}, {110, 2, 8}, {95, 7, 3},
		{5, 100, 5}, {8, 95, 2}, {4, 110, 9}, {6, 90, 7},
	}
	traffic, err := mat.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := rca.NewOutdoorReference(traffic)
	if err != nil {
		t.Fatal(err)
	}
	labels := []int{0, 0, 0, 0, 1, 1, 1, 1}
	f := forest.Train(rca.RSCA(traffic), labels, 2, forest.Config{Trees: 7, Seed: 3})
	return &serve.ModelSnapshot{Ref: ref, Forest: f, K: 2, Services: 3, Revision: 0xf1f2}
}

var (
	goldenOnce sync.Once
	goldenRes  *analysis.Result
	goldenErr  error
)

// goldenResult trains the small parity fixture once per test binary.
func goldenResult(t *testing.T) *analysis.Result {
	t.Helper()
	goldenOnce.Do(func() {
		ds := synth.Generate(synth.Config{Seed: 11, Scale: 0.05, OutdoorCount: 120})
		goldenRes, goldenErr = analysis.RunOnDataset(ds, analysis.Config{
			Seed: 11, Scale: 0.05, ForestTrees: 15,
		})
	})
	if goldenErr != nil {
		t.Fatal(goldenErr)
	}
	return goldenRes
}

func startRouter(t *testing.T, snap *serve.ModelSnapshot, base *analysis.Result, cfg Config) *Router {
	t.Helper()
	rt, err := NewRouter(snap, base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = rt.Shutdown(ctx)
	})
	return rt
}

func probeStream(t testing.TB, recs []probe.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := probe.NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func ingestRecords(n, antennas int) []probe.Record {
	recs := make([]probe.Record, n)
	for i := range recs {
		recs[i] = probe.Record{
			Hour: uint32(i % 24), AntennaID: uint32(i % antennas), Protocol: probe.TCP,
			ServerPort: 443, ServerName: probe.DomainOf(i % 7),
			DownBytes: 4 << 20, UpBytes: 1 << 18,
		}
	}
	return recs
}

func postStream(t *testing.T, url string, stream []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/ingest", "application/octet-stream", bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

// --- ingest durability ------------------------------------------------------

// TestShardedIngestAckedEqualsFolded is the sharded acked-batch invariant:
// after a drained shutdown, every record acked with 202 is folded into
// some shard sink, and the merged matrix carries all of it.
func TestShardedIngestAckedEqualsFolded(t *testing.T) {
	rt := startRouter(t, tinySnapshot(t), nil, Config{Shards: 3, Replicas: 1, RingSeed: 5})
	const batches, perBatch, antennas = 20, 50, 64
	for b := 0; b < batches; b++ {
		recs := ingestRecords(perBatch, antennas)
		for i := range recs {
			recs[i].AntennaID = uint32((b*perBatch + i) % antennas)
		}
		resp := postStream(t, rt.URL(), probeStream(t, recs))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("batch %d: status %d", b, resp.StatusCode)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.AckedRecords != batches*perBatch {
		t.Fatalf("acked %d records, want %d", st.AckedRecords, batches*perBatch)
	}
	if st.FoldedRecords != int(st.AckedRecords) {
		t.Fatalf("folded %d records, acked %d — acked-batch invariant broken", st.FoldedRecords, st.AckedRecords)
	}
	if st.PendingRecords != 0 {
		t.Fatalf("%d records still pending after shutdown", st.PendingRecords)
	}
	// The batches spread across every shard (64 antennas over 3 shards).
	for _, ss := range st.Shards {
		if ss.FoldedRecords == 0 {
			t.Fatalf("shard %d folded nothing; partitioning is not spreading", ss.Shard)
		}
	}
}

// TestOfferAllOrNothing: when one target shard's queue is full, the whole
// batch is rejected — no sub-batch of a non-acked batch may land.
func TestOfferAllOrNothing(t *testing.T) {
	ring, err := NewRing(2, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Park the drain workers on huge injected delays so queues stay full.
	inj := fault.New(1, map[fault.Site]fault.Rule{
		fault.ShardFold: {DelayProb: 1, Delay: time.Hour},
	})
	s, err := NewSinks(ring, 1, inj)
	if err != nil {
		t.Fatal(err)
	}
	// Find one key per shard.
	keyFor := func(shard int) []probe.Record {
		for k := uint32(0); ; k++ {
			if ring.Place(k) == shard {
				return []probe.Record{{AntennaID: k, ServerName: "x", DownBytes: 1}}
			}
		}
	}
	// Fill shard 0's queue (depth 1) plus the in-flight slot its worker
	// sleeps on; keep offering until it rejects.
	landed := 0
	deadline := time.Now().Add(2 * time.Second)
	for s.Offer(map[int][]probe.Record{0: keyFor(0)}) {
		landed++
		if time.Now().After(deadline) {
			t.Fatal("shard 0 queue never filled")
		}
	}
	if landed == 0 {
		t.Fatal("no offer landed on an empty queue")
	}
	before := s.Stats()
	// A batch spanning both shards must be rejected whole: shard 1 has
	// room, but shard 0 does not.
	if s.Offer(map[int][]probe.Record{0: keyFor(0), 1: keyFor(1)}) {
		t.Fatal("offer succeeded with a full target shard")
	}
	after := s.Stats()
	if after[1].QueuedRecords != before[1].QueuedRecords {
		t.Fatalf("shard 1 queue changed (%d → %d) on a rejected batch — partial enqueue",
			before[1].QueuedRecords, after[1].QueuedRecords)
	}
}

// TestKillShardDrainsAckedBatches: Kill folds everything already acked
// into the dying shard's sink before returning, reroutes its keys, and
// keeps the drained aggregate in the merged totals.
func TestKillShardDrainsAckedBatches(t *testing.T) {
	ring, err := NewRing(3, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Slow folds so the kill races a non-empty queue.
	inj := fault.New(2, map[fault.Site]fault.Rule{
		fault.ShardFold: {DelayProb: 1, Delay: 20 * time.Millisecond},
	})
	s, err := NewSinks(ring, 64, inj)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	acked := 0
	for b := 0; b < 12; b++ {
		batch := ingestRecords(25, 80)
		subs := s.Partition(batch)
		if !s.Offer(subs) {
			t.Fatalf("offer %d rejected with empty-ish queues", b)
		}
		acked += len(batch)
	}
	const victim = 1
	if err := s.Kill(victim); err != nil {
		t.Fatal(err)
	}
	// Kill must not return with the victim's acked records unfolded.
	for _, ss := range s.Stats() {
		if ss.Shard == victim {
			if !ss.Dead {
				t.Fatal("victim not marked dead")
			}
			if ss.QueuedRecords != 0 {
				t.Fatalf("victim still holds %d unfolded records after Kill", ss.QueuedRecords)
			}
		}
	}
	// Post-kill traffic never lands on the victim.
	subs := s.Partition(ingestRecords(200, 80))
	if _, hit := subs[victim]; hit {
		t.Fatal("ring still places keys on the killed shard")
	}
	if !s.Offer(subs) {
		t.Fatal("survivors rejected a small batch")
	}
	acked += 200
	// Everything acked — victim's share included — eventually folds.
	deadline := time.Now().Add(5 * time.Second)
	for s.PendingRecords() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d records still pending", s.PendingRecords())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.FoldedRecords(); got != acked {
		t.Fatalf("folded %d, acked %d", got, acked)
	}
	if killErr := s.Kill(victim); killErr == nil {
		t.Fatal("double-kill succeeded")
	}
}

// --- served ↔ offline parity and fan-out ------------------------------------

// TestRouterParityFanoutAndFailover is the golden sharded test: classify
// through the router matches the offline labels; a refresh fans one
// revision out to every live replica and registers it for parity
// resolution; killed replicas fail over without wrong answers.
func TestRouterParityFanoutAndFailover(t *testing.T) {
	res := goldenResult(t)
	snap, err := serve.NewModelSnapshot(res)
	if err != nil {
		t.Fatal(err)
	}
	rt := startRouter(t, snap, res, Config{Shards: 3, Replicas: 3, RingSeed: 11})

	outdoor := res.Dataset.OutdoorTraffic
	classifyAll := func() (uint64, []int) {
		t.Helper()
		req := serve.ClassifyRequest{}
		for i := 0; i < outdoor.Rows(); i++ {
			req.Antennas = append(req.Antennas, serve.AntennaVector{
				ID: uint32(i), Traffic: outdoor.Row(i),
			})
		}
		data, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		httpResp, err := http.Post(rt.URL()+"/v1/classify", "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		defer httpResp.Body.Close()
		if httpResp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(httpResp.Body)
			t.Fatalf("classify status %d: %s", httpResp.StatusCode, body)
		}
		var resp serve.ClassifyResponse
		if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		got := make([]int, len(resp.Results))
		for i, v := range resp.Results {
			got[i] = v.Cluster
		}
		return resp.ModelRevision, got
	}

	assertParity := func(rev uint64, got []int) {
		t.Helper()
		offline, ok := rt.ResultFor(rev)
		if !ok {
			t.Fatalf("served revision %016x not resolvable to an offline result", rev)
		}
		want := offline.OutdoorLabels
		if len(got) != len(want) {
			t.Fatalf("classified %d antennas, offline has %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("antenna %d: served cluster %d, offline %d (revision %016x)", i, got[i], want[i], rev)
			}
		}
	}

	// Base revision parity through the proxy.
	rev, got := classifyAll()
	if rev != snap.Revision {
		t.Fatalf("served revision %016x, want base %016x", rev, snap.Revision)
	}
	assertParity(rev, got)

	// Ingest fresh traffic and refresh: the new revision must be served by
	// every live replica (fan-out), and parity must hold against the
	// retrained offline result per the echoed revision.
	indoor := res.Dataset.Traffic.Rows()
	for b := 0; b < 6; b++ {
		recs := ingestRecords(100, indoor)
		resp := postStream(t, rt.URL(), probeStream(t, recs))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
	}
	// Wait for the queues to fold so the refresh sees the new aggregates.
	deadline := time.Now().Add(5 * time.Second)
	for rt.Sinks().PendingRecords() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("queues never drained")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	out, err := rt.RefreshOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out.Skipped {
		t.Fatal("refresh skipped despite fresh aggregates")
	}
	for i := 0; i < 3; i++ {
		if got := rt.Replica(i).Snapshot().Revision; got != out.Revision {
			t.Fatalf("replica %d serves %016x, refresh published %016x — fan-out broken", i, got, out.Revision)
		}
	}
	rev2, got2 := classifyAll()
	if rev2 != out.Revision {
		t.Fatalf("served revision %016x, want refreshed %016x", rev2, out.Revision)
	}
	assertParity(rev2, got2)

	// Kill a replica (and the refresh primary as a second casualty):
	// proxied classifies fail over and stay correct.
	if err := rt.KillReplica(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if err := rt.KillReplica(ctx, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		rev3, got3 := classifyAll()
		assertParity(rev3, got3)
	}
	if err := rt.KillReplica(ctx, 1); err == nil {
		t.Fatal("killed the last live replica")
	}

	// Kill a shard mid-life: ingest keeps flowing to survivors.
	if err := rt.KillShard(0); err != nil {
		t.Fatal(err)
	}
	resp := postStream(t, rt.URL(), probeStream(t, ingestRecords(50, indoor)))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-shard-kill ingest status %d", resp.StatusCode)
	}
	st := rt.Stats()
	if st.Ring.Alive != 2 {
		t.Fatalf("ring alive %d, want 2", st.Ring.Alive)
	}
}

// TestRouterBackpressure429: full shard queues reject whole batches with
// 429 + Retry-After, and a retried batch eventually lands.
func TestRouterBackpressure429(t *testing.T) {
	inj := fault.New(9, map[fault.Site]fault.Rule{
		fault.ShardFold: {DelayProb: 1, Delay: 50 * time.Millisecond},
	})
	rt := startRouter(t, tinySnapshot(t), nil, Config{
		Shards: 2, Replicas: 1, QueueDepth: 1, RingSeed: 3, Faults: inj,
	})
	stream := probeStream(t, ingestRecords(40, 32))
	saw429 := false
	accepted := 0
	for i := 0; i < 60 && !saw429; i++ {
		resp := postStream(t, rt.URL(), stream)
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			saw429 = true
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if !saw429 {
		t.Fatalf("no backpressure after %d accepted batches with depth-1 queues", accepted)
	}
	// Retry until it lands: clients recover from 429.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := postStream(t, rt.URL(), stream)
		if resp.StatusCode == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("retries never landed")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
