// Package shard is the nationwide-scale tier of the serving stack: a
// consistent-hash ring partitioning antennas across N collect.Sink shards,
// a bounded per-shard ingest queue layer with drain-on-kill semantics, and
// a thin HTTP router fronting M serve replicas that fans revision-tagged
// model snapshots out through the existing SwapSnapshot/Refresher
// machinery — so every replica serves the same registered revision and
// every acked batch survives shard kills and graceful shutdown.
//
// The package deliberately reuses the single-node building blocks instead
// of inventing parallel ones: shards are plain collect.Sinks, replicas are
// plain serve.Servers, fault injection rides the same internal/fault
// sites, and the refresher's Totals/OnSwap seams carry the cross-shard
// aggregation and the snapshot fan-out.
package shard

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/rng"
)

// DefaultVirtualNodes is the per-shard virtual-node count. 128 vnodes keep
// the per-shard share of the hash space within a few percent of ideal for
// the shard counts this system runs (2–16).
const DefaultVirtualNodes = 128

// ringPoint is one virtual node: a position on the 64-bit hash circle
// owned by a shard.
type ringPoint struct {
	hash  uint64
	shard int
}

// Ring is a seeded consistent-hash ring. Each shard contributes
// VirtualNodes points drawn from its own rng stream derived from (seed,
// shard) — streams are independent, so adding shard N+1 never moves the
// points of shards 0..N and removing a shard remaps only the keys it
// owned. Dead shards keep their points (marked not-alive); ownership walks
// forward to the next alive point, which is what makes Remove minimal.
type Ring struct {
	seed   uint64
	vnodes int

	mu     sync.RWMutex
	points []ringPoint // sorted by (hash, shard)
	alive  []bool      // indexed by shard id
	aliveN int
}

// NewRing builds a ring over shards ≥ 1 initial shards. virtualNodes ≤ 0
// selects DefaultVirtualNodes. The same (shards, virtualNodes, seed)
// always yields the same placement — see Digest.
func NewRing(shards, virtualNodes int, seed uint64) (*Ring, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("shard: ring needs at least one shard, got %d", shards)
	}
	if virtualNodes <= 0 {
		virtualNodes = DefaultVirtualNodes
	}
	r := &Ring{seed: seed, vnodes: virtualNodes}
	for s := 0; s < shards; s++ {
		r.appendShardLocked(s)
	}
	r.sortPointsLocked()
	r.noteChange(r.occupancySnapshot())
	return r, nil
}

// appendShardLocked adds shard s's virtual nodes from its private stream.
func (r *Ring) appendShardLocked(s int) {
	src := rng.New(mix64(r.seed) ^ mix64(uint64(s)+1))
	for k := 0; k < r.vnodes; k++ {
		r.points = append(r.points, ringPoint{hash: src.Uint64(), shard: s})
	}
	r.alive = append(r.alive, true)
	r.aliveN++
}

func (r *Ring) sortPointsLocked() {
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
}

// Place maps an antenna id to its owning shard: the first alive virtual
// node at or clockwise of the key's mixed hash. The ring always holds at
// least one alive shard (Remove refuses to kill the last), so Place never
// fails.
func (r *Ring) Place(key uint32) int {
	h := mix64(uint64(key))
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ownerLocked(h)
}

func (r *Ring) ownerLocked(h uint64) int {
	n := len(r.points)
	i := sort.Search(n, func(i int) bool { return r.points[i].hash >= h })
	for step := 0; step < n; step++ {
		p := r.points[(i+step)%n]
		if r.alive[p.shard] {
			return p.shard
		}
	}
	return -1
}

// Add grows the ring by one shard and returns its id. Existing shards'
// points do not move, so only the keys the new shard now owns remap.
func (r *Ring) Add() int {
	r.mu.Lock()
	id := len(r.alive)
	r.appendShardLocked(id)
	r.sortPointsLocked()
	occ := r.occupancyLocked()
	r.mu.Unlock()
	r.noteChange(occ)
	return id
}

// Remove marks a shard dead, remapping only the keys it owned (its points
// pass ownership forward to the next alive point). Removing an unknown,
// already-dead, or the last alive shard is an error.
func (r *Ring) Remove(shard int) error {
	r.mu.Lock()
	if shard < 0 || shard >= len(r.alive) {
		r.mu.Unlock()
		return fmt.Errorf("shard: ring has no shard %d", shard)
	}
	if !r.alive[shard] {
		r.mu.Unlock()
		return fmt.Errorf("shard: shard %d already removed", shard)
	}
	if r.aliveN == 1 {
		r.mu.Unlock()
		return fmt.Errorf("shard: cannot remove the last alive shard %d", shard)
	}
	r.alive[shard] = false
	r.aliveN--
	occ := r.occupancyLocked()
	r.mu.Unlock()
	r.noteChange(occ)
	return nil
}

// noteChange records a membership change and the resulting per-alive-shard
// occupancy shares.
func (r *Ring) noteChange(occ []float64) {
	obs.Add("shard.ring.changes", 1)
	h := obs.GetHistogram("shard.ring.occupancy", nil)
	for _, share := range occ {
		if share > 0 {
			h.Observe(share)
		}
	}
}

// Shards returns the total shard count, dead shards included (shard ids
// are stable; they never compact).
func (r *Ring) Shards() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.alive)
}

// Alive returns the number of alive shards.
func (r *Ring) Alive() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.aliveN
}

// IsAlive reports whether a shard id is currently alive.
func (r *Ring) IsAlive(shard int) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return shard >= 0 && shard < len(r.alive) && r.alive[shard]
}

// Occupancy returns each shard's exact share of the 64-bit hash space
// (dead shards report 0; shares sum to 1 up to float rounding). Computed
// from arc lengths, not sampling.
func (r *Ring) Occupancy() []float64 {
	return r.occupancySnapshot()
}

func (r *Ring) occupancySnapshot() []float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.occupancyLocked()
}

func (r *Ring) occupancyLocked() []float64 {
	occ := make([]float64, len(r.alive))
	n := len(r.points)
	if n == 0 || r.aliveN == 0 {
		return occ
	}
	const hashSpace = 18446744073709551616.0 // 2^64
	for i := 0; i < n; i++ {
		owner := r.aliveOwnerFromLocked(i)
		prev := r.points[(i+n-1)%n].hash
		// uint64 subtraction wraps, so the arc through zero is measured
		// correctly for i == 0.
		arc := r.points[i].hash - prev
		occ[owner] += float64(arc) / hashSpace
	}
	return occ
}

// aliveOwnerFromLocked resolves the alive shard owning the arc that ends
// at point index i: the first alive point at or after i, wrapping.
func (r *Ring) aliveOwnerFromLocked(i int) int {
	n := len(r.points)
	for step := 0; step < n; step++ {
		p := r.points[(i+step)%n]
		if r.alive[p.shard] {
			return p.shard
		}
	}
	return -1
}

// Digest folds the full placement state — every point's position, owner,
// and liveness — into one 64-bit FNV-1a value. Two rings agreeing on the
// digest place every key identically; chaos harnesses print it so
// run-to-run placement reproducibility is checkable.
func (r *Ring) Digest() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var h uint64 = 0xcbf29ce484222325
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 0x100000001b3
		}
	}
	for _, p := range r.points {
		mix(p.hash)
		v := uint64(p.shard) << 1
		if r.alive[p.shard] {
			v |= 1
		}
		mix(v)
	}
	return h
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// mixer used both to spread antenna ids around the circle and to derive
// per-shard rng streams.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
