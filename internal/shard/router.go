package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/pipe"
	"repro/internal/probe"
	"repro/internal/serve"
)

// Config parameterizes the sharded router. The zero value fronts 4 shards
// and 2 replicas on an ephemeral localhost port.
type Config struct {
	// Shards is the number of ingest/aggregation shards (default 4).
	Shards int
	// Replicas is the number of serve replicas behind the router
	// (default 2). Replica 0 is the refresh primary.
	Replicas int
	// VirtualNodes is the ring's per-shard virtual-node count (default
	// DefaultVirtualNodes).
	VirtualNodes int
	// RingSeed seeds the ring's placement streams; the same seed always
	// yields the same antenna → shard map.
	RingSeed uint64
	// QueueDepth bounds each shard's ingest queue in batches; a full
	// target shard rejects the whole batch with 429 (default 64).
	QueueDepth int
	// Addr is the router's listen address (default "127.0.0.1:0").
	Addr string
	// RequestTimeout is the per-request deadline on the router and its
	// replicas (default 15s — proxied classifies pay two hops).
	RequestTimeout time.Duration
	// RetryAfter is the backpressure hint on 429 responses (default 1s).
	RetryAfter time.Duration
	// MaxBodyBytes bounds request bodies (default 64 MiB — the sharded
	// path is sized for bulk ingest).
	MaxBodyBytes int64
	// MaxIngestRecords caps records per ingest batch (default 1<<20).
	MaxIngestRecords int
	// Refresh parameterizes the attached refresh controller. Its Totals
	// and OnSwap seams are owned by the router (merged cross-shard totals,
	// snapshot fan-out); a non-zero Interval starts the tick loop on
	// Start. Leave Interval zero to drive refreshes manually through
	// RefreshOnce.
	Refresh serve.RefreshConfig
	// Pool overrides the worker pool replicas classify on (default: the
	// process-shared pool).
	Pool *pipe.Pool
	// Faults optionally wires deterministic fault injection into the
	// sharded seams: router ingest latency (fault.Ingest), shard drain
	// folds (fault.ShardFold), and the replicas' own sites. nil injects
	// nothing.
	Faults *fault.Injector
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = DefaultVirtualNodes
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxIngestRecords <= 0 {
		c.MaxIngestRecords = 1 << 20
	}
	return c
}

// replica is one serve.Server behind the router plus its routing state.
type replica struct {
	srv   *serve.Server
	url   string
	alive atomic.Bool
}

// Router is the sharded front door: it partitions ingest batches across
// the shard sinks by consistent hash, proxies classify traffic round-robin
// over live replicas with transport-error failover, and distributes every
// refreshed snapshot to all replicas so they serve one revision.
type Router struct {
	cfg      Config
	ring     *Ring
	sinks    *Sinks
	replicas []*replica
	ref      *serve.Refresher

	mux     *http.ServeMux
	httpSrv *http.Server
	ln      net.Listener
	client  *http.Client
	tasks   pipe.Tasks

	startOnce sync.Once
	stopOnce  sync.Once
	draining  atomic.Bool
	rr        atomic.Uint64

	ackedBatches atomic.Int64
	ackedRecords atomic.Int64
	rejected     atomic.Int64
	malformed    atomic.Int64
	proxied      atomic.Int64
	failovers    atomic.Int64
	// lastFanoutMS holds float64 bits of the most recent fan-out lag.
	lastFanoutMS atomic.Uint64
}

// NewRouter builds the sharded layer around a trained snapshot: cfg.Shards
// sink shards on a seeded ring and cfg.Replicas serve replicas all serving
// snap. base is the offline result the snapshot was trained from; when
// non-nil a refresh controller is attached to replica 0 with the router's
// cross-shard totals and fan-out wired into its seams (pass nil to serve a
// static snapshot). Call Start to bind, Shutdown for a drained stop.
func NewRouter(snap *serve.ModelSnapshot, base *analysis.Result, cfg Config) (*Router, error) {
	if snap == nil {
		return nil, errors.New("shard: nil model snapshot")
	}
	cfg = cfg.withDefaults()
	ring, err := NewRing(cfg.Shards, cfg.VirtualNodes, cfg.RingSeed)
	if err != nil {
		return nil, err
	}
	sinks, err := NewSinks(ring, cfg.QueueDepth, cfg.Faults)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:    cfg,
		ring:   ring,
		sinks:  sinks,
		client: &http.Client{},
	}
	for i := 0; i < cfg.Replicas; i++ {
		srv, err := serve.New(snap, nil, serve.Config{
			Pool:           cfg.Pool,
			Faults:         cfg.Faults,
			RequestTimeout: cfg.RequestTimeout,
		})
		if err != nil {
			sinks.Close()
			return nil, fmt.Errorf("shard: replica %d: %w", i, err)
		}
		rep := &replica{srv: srv}
		rep.alive.Store(true)
		rt.replicas = append(rt.replicas, rep)
	}
	if base != nil {
		rcfg := cfg.Refresh
		rcfg.Totals = sinks.TrafficMatrix
		rcfg.OnSwap = rt.fanOut
		ref, err := serve.NewRefresher(rt.replicas[0].srv, base, rcfg)
		if err != nil {
			sinks.Close()
			return nil, err
		}
		rt.ref = ref
	}
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("/v1/ingest", rt.withDeadline(rt.handleIngest))
	rt.mux.HandleFunc("/v1/classify", rt.withDeadline(rt.handleClassify))
	rt.mux.HandleFunc("/v1/forecast", rt.withDeadline(rt.handleForecast))
	rt.mux.HandleFunc("/v1/plan", rt.withDeadline(rt.handlePlan))
	rt.mux.HandleFunc("/v1/model", rt.withDeadline(rt.handleModel))
	rt.mux.HandleFunc("/v1/stats", rt.handleStats)
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/metrics", rt.handleMetrics)
	rt.httpSrv = &http.Server{Handler: rt.mux, ReadHeaderTimeout: 5 * time.Second}
	return rt, nil
}

// fanOut publishes the refresher's newly swapped snapshot to every other
// live replica. The pointer is shared, not copied: ModelSnapshot is
// immutable after construction, so replicas serving the same pointer is
// exactly the protocol — identical revision, identical verdicts. Runs
// synchronously inside RefreshOnce (the OnSwap seam), so when a refresh
// returns, every live replica already serves the new revision.
func (rt *Router) fanOut(snap *serve.ModelSnapshot, res *analysis.Result) {
	start := time.Now()
	for i, rep := range rt.replicas {
		if i == 0 || !rep.alive.Load() {
			continue // replica 0 is the refresh primary: already swapped
		}
		if err := rep.srv.SwapSnapshot(snap); err != nil {
			continue
		}
		obs.Add("shard.fanout.swaps", 1)
	}
	lag := msSince(start)
	obs.GetHistogram("shard.fanout.lag.ms", nil).Observe(lag)
	rt.lastFanoutMS.Store(math.Float64bits(lag))
}

// Start binds the replicas and then the router listener. Returns once
// everything is bound; use Addr for the router address.
func (rt *Router) Start() error {
	var err error
	rt.startOnce.Do(func() {
		for i, rep := range rt.replicas {
			if err = rep.srv.Start(); err != nil {
				err = fmt.Errorf("shard: replica %d: %w", i, err)
				return
			}
			rep.url = "http://" + rep.srv.Addr().String()
		}
		rt.ln, err = net.Listen("tcp", rt.cfg.Addr)
		if err != nil {
			err = fmt.Errorf("shard: listen %s: %w", rt.cfg.Addr, err)
			return
		}
		rt.tasks.Go(func() {
			// ErrServerClosed is the expected Shutdown outcome.
			_ = rt.httpSrv.Serve(rt.ln)
		})
		if rt.ref != nil && rt.cfg.Refresh.Interval > 0 {
			rt.ref.Start()
		}
	})
	return err
}

// Addr returns the router's bound address (nil before Start).
func (rt *Router) Addr() net.Addr {
	if rt.ln == nil {
		return nil
	}
	return rt.ln.Addr()
}

// URL returns the router's base URL (empty before Start).
func (rt *Router) URL() string {
	if rt.ln == nil {
		return ""
	}
	return "http://" + rt.ln.Addr().String()
}

// Ring exposes the placement ring (read-side: occupancy, digest).
func (rt *Router) Ring() *Ring { return rt.ring }

// Refresher returns the attached refresh controller (nil when the router
// was built without a base result).
func (rt *Router) Refresher() *serve.Refresher { return rt.ref }

// ResultFor resolves a served revision to the offline result that
// produced it, through the attached refresher's registry.
func (rt *Router) ResultFor(revision uint64) (*analysis.Result, bool) {
	if rt.ref == nil {
		return nil, false
	}
	return rt.ref.ResultFor(revision)
}

// RefreshOnce drives one fold → retrain → swap → fan-out cycle.
func (rt *Router) RefreshOnce(ctx context.Context) (serve.RefreshOutcome, error) {
	if rt.ref == nil {
		return serve.RefreshOutcome{}, errors.New("shard: router has no refresh controller")
	}
	return rt.ref.RefreshOnce(ctx)
}

// KillShard removes one shard mid-flight: the ring stops placing keys on
// it, its queue drains every acked batch into its sink (still counted in
// the merged totals), and in-flight offers against it turn into 429s whose
// retries re-place against the updated ring.
func (rt *Router) KillShard(id int) error { return rt.sinks.Kill(id) }

// KillReplica shuts one replica down and removes it from routing.
// In-flight proxies to it fail over to the survivors. Killing the last
// live replica is refused; killing replica 0 leaves refresh functional
// (swaps still register and fan out to the survivors).
func (rt *Router) KillReplica(ctx context.Context, i int) error {
	if i < 0 || i >= len(rt.replicas) {
		return fmt.Errorf("shard: no replica %d", i)
	}
	live := 0
	for _, rep := range rt.replicas {
		if rep.alive.Load() {
			live++
		}
	}
	rep := rt.replicas[i]
	if !rep.alive.Load() {
		return fmt.Errorf("shard: replica %d already dead", i)
	}
	if live == 1 {
		return fmt.Errorf("shard: cannot kill the last live replica %d", i)
	}
	rep.alive.Store(false)
	obs.Add("shard.replica.kills", 1)
	return rep.srv.Shutdown(ctx)
}

// Replica exposes a replica's server for invariant checks (snapshot
// revision comparisons); returns nil for out-of-range indices.
func (rt *Router) Replica(i int) *serve.Server {
	if i < 0 || i >= len(rt.replicas) {
		return nil
	}
	return rt.replicas[i].srv
}

// Shutdown stops intake, drains every shard queue (folding all acked
// batches), and shuts the live replicas down. After Shutdown returns,
// FoldedRecords equals the total records ever acked with 202.
func (rt *Router) Shutdown(ctx context.Context) error {
	var err error
	rt.stopOnce.Do(func() {
		rt.draining.Store(true)
		if rt.ln != nil {
			err = rt.httpSrv.Shutdown(ctx)
		}
		if rt.ref != nil {
			rt.ref.Stop()
		}
		rt.sinks.Close()
		for _, rep := range rt.replicas {
			if !rep.alive.Load() {
				continue
			}
			if e := rep.srv.Shutdown(ctx); e != nil && err == nil {
				err = e
			}
		}
		rt.tasks.Wait()
	})
	return err
}

// Sinks exposes the sharded aggregation tier (parity and durability
// checks read folded/pending counts through it).
func (rt *Router) Sinks() *Sinks { return rt.sinks }

// withDeadline wraps a handler with the per-request context deadline.
func (rt *Router) withDeadline(h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.RequestTimeout)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

// handleIngest parses one probe batch, partitions it across the ring, and
// acks 202 only once every sub-batch is enqueued (all-or-nothing). A full,
// closed, or killed target shard rejects the whole batch with 429 so the
// retried batch re-partitions against the updated ring.
func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	startAt := time.Now()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a probe stream")
		return
	}
	body := http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes)
	reader := probe.NewReader(body)
	var batch []probe.Record
	for {
		rec, err := reader.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				writeError(w, http.StatusRequestEntityTooLarge,
					"body exceeds %d bytes", tooLarge.Limit)
				return
			}
			rt.malformed.Add(1)
			obs.Add("shard.ingest.malformed", 1)
			writeError(w, http.StatusBadRequest, "malformed probe stream: %v", err)
			return
		}
		batch = append(batch, rec)
		if len(batch) > rt.cfg.MaxIngestRecords {
			writeError(w, http.StatusRequestEntityTooLarge,
				"batch exceeds %d records", rt.cfg.MaxIngestRecords)
			return
		}
	}
	if len(batch) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	// Injected ingest latency lands before the ack, mirroring the
	// single-node server: a spike can 503 a request but never lose an
	// acked batch.
	if err := rt.cfg.Faults.Wait(r.Context(), fault.Ingest); err != nil {
		writeError(w, http.StatusServiceUnavailable, "deadline exceeded: %v", err)
		return
	}
	if rt.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "router is shutting down")
		return
	}
	subs := rt.sinks.Partition(batch)
	if !rt.sinks.Offer(subs) {
		rt.rejected.Add(1)
		obs.Add("shard.ingest.rejected", 1)
		w.Header().Set("Retry-After", strconv.Itoa(retrySeconds(rt.cfg.RetryAfter)))
		writeError(w, http.StatusTooManyRequests, "a target shard queue is full or gone, retry")
		return
	}
	rt.ackedBatches.Add(1)
	rt.ackedRecords.Add(int64(len(batch)))
	obs.Add("shard.ingest.batches", 1)
	obs.Add("shard.ingest.records", int64(len(batch)))
	obs.GetHistogram("shard.ingest.latency.ms", nil).Observe(msSince(startAt))
	writeJSON(w, http.StatusAccepted, map[string]int{"accepted": len(batch), "shards": len(subs)})
}

// handleClassify proxies the request body to a live replica, rotating the
// starting replica per request and failing over on transport errors. The
// replica's response — status, revision echo, verdicts — passes through
// verbatim, so parity audits see exactly what the replica served.
func (rt *Router) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a classify request")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "request body: %v", err)
		return
	}
	rt.proxy(w, r, "/v1/classify", body)
}

// handleForecast proxies forecast queries to a live replica with the same
// failover semantics as classify; because every replica serves the same
// snapshot pointer, any of them answers with the same revision and the
// same bit-exact forecast values.
func (rt *Router) handleForecast(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a forecast request")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "request body: %v", err)
		return
	}
	rt.proxy(w, r, "/v1/forecast", body)
}

// handlePlan proxies capacity-planning scenarios to a live replica.
func (rt *Router) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a plan request")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "request body: %v", err)
		return
	}
	rt.proxy(w, r, "/v1/plan", body)
}

// handleModel proxies snapshot metadata from a live replica.
func (rt *Router) handleModel(w http.ResponseWriter, r *http.Request) {
	rt.proxy(w, r, "/v1/model", nil)
}

// proxy forwards to live replicas starting at the round-robin cursor,
// advancing past dead replicas and transport failures. Every failover is
// counted; exhausting the replica set answers 503.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, path string, body []byte) {
	n := len(rt.replicas)
	start := int(rt.rr.Add(1)) % n
	var lastErr error
	for off := 0; off < n; off++ {
		rep := rt.replicas[(start+off)%n]
		if !rep.alive.Load() {
			continue
		}
		var reqBody io.Reader
		method := http.MethodGet
		if body != nil {
			reqBody = bytes.NewReader(body)
			method = http.MethodPost
		}
		req, err := http.NewRequestWithContext(r.Context(), method, rep.url+path, reqBody)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "proxy request: %v", err)
			return
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			lastErr = err
			rt.failovers.Add(1)
			obs.Add("shard.router.failovers", 1)
			continue
		}
		rt.proxied.Add(1)
		obs.Add("shard.router.proxied", 1)
		copyResponse(w, resp)
		return
	}
	writeError(w, http.StatusServiceUnavailable, "no live replica: %v", lastErr)
}

// copyResponse relays a replica response to the client verbatim.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// RingStats summarizes placement state for /v1/stats.
type RingStats struct {
	Shards    int       `json:"shards"`
	Alive     int       `json:"alive"`
	Occupancy []float64 `json:"occupancy"`
	Digest    string    `json:"digest"`
}

// ReplicaStats is one replica's routing and serving state.
type ReplicaStats struct {
	Addr     string `json:"addr"`
	Alive    bool   `json:"alive"`
	Revision uint64 `json:"revision"`
}

// RouterStats is the /v1/stats payload: acked-batch accounting, proxy
// traffic, ring placement, per-shard queues, and per-replica revisions.
type RouterStats struct {
	AckedBatches      int64              `json:"acked_batches"`
	AckedRecords      int64              `json:"acked_records"`
	RejectedBatches   int64              `json:"rejected_batches"`
	MalformedStreams  int64              `json:"malformed_streams"`
	PendingRecords    int                `json:"pending_records"`
	FoldedRecords     int                `json:"folded_records"`
	ClassifyProxied   int64              `json:"classify_proxied"`
	ClassifyFailovers int64              `json:"classify_failovers"`
	LastFanoutMS      float64            `json:"last_fanout_ms"`
	Ring              RingStats          `json:"ring"`
	Shards            []SinkStats        `json:"shards"`
	Replicas          []ReplicaStats     `json:"replicas"`
	Refresh           *serve.RefreshInfo `json:"refresh,omitempty"`
}

// Stats snapshots the router's full state.
func (rt *Router) Stats() RouterStats {
	st := RouterStats{
		AckedBatches:      rt.ackedBatches.Load(),
		AckedRecords:      rt.ackedRecords.Load(),
		RejectedBatches:   rt.rejected.Load(),
		MalformedStreams:  rt.malformed.Load(),
		PendingRecords:    rt.sinks.PendingRecords(),
		FoldedRecords:     rt.sinks.FoldedRecords(),
		ClassifyProxied:   rt.proxied.Load(),
		ClassifyFailovers: rt.failovers.Load(),
		LastFanoutMS:      math.Float64frombits(rt.lastFanoutMS.Load()),
		Ring: RingStats{
			Shards:    rt.ring.Shards(),
			Alive:     rt.ring.Alive(),
			Occupancy: rt.ring.Occupancy(),
			Digest:    fmt.Sprintf("%016x", rt.ring.Digest()),
		},
		Shards: rt.sinks.Stats(),
	}
	for _, rep := range rt.replicas {
		rs := ReplicaStats{Alive: rep.alive.Load(), Revision: rep.srv.Snapshot().Revision}
		if rep.srv.Addr() != nil {
			rs.Addr = rep.srv.Addr().String()
		}
		st.Replicas = append(st.Replicas, rs)
	}
	if rt.ref != nil {
		info := rt.ref.Info()
		st.Refresh = &info
	}
	return st
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.Stats())
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write([]byte(obs.MetricsText()))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the connection owns delivery; nothing to do on error
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t).Microseconds()) / 1000
}

func retrySeconds(d time.Duration) int {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
