package shard

import (
	"math"
	"testing"
)

// TestRingDeterministicPlacement: same (shards, vnodes, seed) → identical
// digest and identical placement for every key; a different seed moves the
// ring.
func TestRingDeterministicPlacement(t *testing.T) {
	a, err := NewRing(4, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(4, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("same seed, different digests: %016x vs %016x", a.Digest(), b.Digest())
	}
	for key := uint32(0); key < 10000; key++ {
		if a.Place(key) != b.Place(key) {
			t.Fatalf("key %d placed differently by identical rings", key)
		}
	}
	c, err := NewRing(4, 0, 43)
	if err != nil {
		t.Fatal(err)
	}
	if c.Digest() == a.Digest() {
		t.Fatal("different seeds produced the same ring digest")
	}
}

// TestRingBalance: across shard counts, empirical key share and exact
// arc-length occupancy both stay within tolerance of the ideal 1/n, and
// occupancy sums to 1.
func TestRingBalance(t *testing.T) {
	const keys = 100000
	for _, n := range []int{2, 3, 4, 8, 16} {
		r, err := NewRing(n, 0, 7)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, n)
		for key := uint32(0); key < keys; key++ {
			s := r.Place(key)
			if s < 0 || s >= n {
				t.Fatalf("n=%d: key %d placed on invalid shard %d", n, key, s)
			}
			counts[s]++
		}
		occ := r.Occupancy()
		sum := 0.0
		ideal := 1.0 / float64(n)
		for s := 0; s < n; s++ {
			sum += occ[s]
			frac := float64(counts[s]) / keys
			// 128 vnodes/shard keeps shares within ±45% of ideal even at
			// n=16; the bound is loose enough to be seed-stable and tight
			// enough to catch a broken hash or walk.
			if frac < 0.55*ideal || frac > 1.45*ideal {
				t.Errorf("n=%d shard %d: key share %.4f outside [0.55, 1.45]×ideal %.4f", n, s, frac, ideal)
			}
			if math.Abs(occ[s]-frac) > 0.02 {
				t.Errorf("n=%d shard %d: occupancy %.4f disagrees with empirical share %.4f", n, s, occ[s], frac)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("n=%d: occupancy sums to %.12f, want 1", n, sum)
		}
	}
}

// TestRingMinimalRemapOnRemove: removing a shard remaps only the keys it
// owned — every other key keeps its shard — and the moved fraction tracks
// the removed shard's occupancy.
func TestRingMinimalRemapOnRemove(t *testing.T) {
	const keys = 50000
	r, err := NewRing(5, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]int, keys)
	for key := 0; key < keys; key++ {
		before[key] = r.Place(uint32(key))
	}
	const victim = 2
	removedShare := r.Occupancy()[victim]
	if err := r.Remove(victim); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for key := 0; key < keys; key++ {
		after := r.Place(uint32(key))
		if before[key] != victim {
			if after != before[key] {
				t.Fatalf("key %d moved from surviving shard %d to %d", key, before[key], after)
			}
			continue
		}
		if after == victim {
			t.Fatalf("key %d still on removed shard", key)
		}
		moved++
	}
	frac := float64(moved) / keys
	if math.Abs(frac-removedShare) > 0.02 {
		t.Errorf("moved fraction %.4f, removed shard owned %.4f", frac, removedShare)
	}
}

// TestRingMinimalRemapOnAdd: growing the ring moves keys only onto the new
// shard, and roughly its fair share of them.
func TestRingMinimalRemapOnAdd(t *testing.T) {
	const keys = 50000
	r, err := NewRing(4, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]int, keys)
	for key := 0; key < keys; key++ {
		before[key] = r.Place(uint32(key))
	}
	id := r.Add()
	if id != 4 {
		t.Fatalf("Add returned id %d, want 4", id)
	}
	moved := 0
	for key := 0; key < keys; key++ {
		after := r.Place(uint32(key))
		if after != before[key] {
			if after != id {
				t.Fatalf("key %d moved to shard %d, not the new shard %d", key, after, id)
			}
			moved++
		}
	}
	frac := float64(moved) / keys
	ideal := 1.0 / 5
	if frac < 0.5*ideal || frac > 1.5*ideal {
		t.Errorf("new shard captured %.4f of keys, want within [0.5, 1.5]×%.4f", frac, ideal)
	}
}

// TestRingRemoveGuards: invalid removals error and the last alive shard is
// protected, so Place can never face an empty ring.
func TestRingRemoveGuards(t *testing.T) {
	r, err := NewRing(2, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Remove(5); err == nil {
		t.Fatal("removing an unknown shard succeeded")
	}
	if err := r.Remove(0); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove(0); err == nil {
		t.Fatal("double-remove succeeded")
	}
	if err := r.Remove(1); err == nil {
		t.Fatal("removed the last alive shard")
	}
	if got := r.Place(12345); got != 1 {
		t.Fatalf("all keys should land on the survivor, got shard %d", got)
	}
	if r.Alive() != 1 || r.Shards() != 2 {
		t.Fatalf("Alive=%d Shards=%d, want 1 and 2", r.Alive(), r.Shards())
	}
	if r.IsAlive(0) || !r.IsAlive(1) {
		t.Fatal("liveness flags wrong after removal")
	}
	if _, err := NewRing(0, 8, 1); err == nil {
		t.Fatal("NewRing accepted zero shards")
	}
}

// TestRingDigestTracksLiveness: the digest changes when membership does —
// two runs can only agree if they killed the same shards.
func TestRingDigestTracksLiveness(t *testing.T) {
	r, err := NewRing(3, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	d0 := r.Digest()
	if err := r.Remove(1); err != nil {
		t.Fatal(err)
	}
	if r.Digest() == d0 {
		t.Fatal("digest unchanged after removing a shard")
	}
}
