package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"testing"
	"time"

	"repro/internal/forecast"
	"repro/internal/serve"
)

// TestRouterForecastPlanProxy: /v1/forecast and /v1/plan proxy through the
// router with the same failover semantics as classify, and — because every
// replica shares the snapshot pointer — any replica's answer is bit-equal
// to the offline model set under the echoed revision.
func TestRouterForecastPlanProxy(t *testing.T) {
	res := goldenResult(t)
	snap, err := serve.NewModelSnapshot(res)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Forecasts == nil {
		t.Fatal("golden snapshot carries no forecast set")
	}
	rt := startRouter(t, snap, res, Config{Shards: 2, Replicas: 3, RingSeed: 11})

	forecastCluster := func(cluster, horizon int) serve.ForecastResponse {
		t.Helper()
		body, err := json.Marshal(serve.ForecastRequest{Cluster: &cluster, Horizon: horizon})
		if err != nil {
			t.Fatal(err)
		}
		httpResp, err := http.Post(rt.URL()+"/v1/forecast", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer httpResp.Body.Close()
		if httpResp.StatusCode != http.StatusOK {
			out, _ := io.ReadAll(httpResp.Body)
			t.Fatalf("forecast status %d: %s", httpResp.StatusCode, out)
		}
		var resp serve.ForecastResponse
		if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	assertParity := func(resp serve.ForecastResponse, horizon int) {
		t.Helper()
		if resp.ModelRevision != snap.Revision {
			t.Fatalf("served revision %016x, want %016x", resp.ModelRevision, snap.Revision)
		}
		want := snap.Forecasts.Cluster(resp.Cluster).Model.Forecast(horizon)
		if len(resp.Forecast) != len(want) {
			t.Fatalf("forecast length %d, want %d", len(resp.Forecast), len(want))
		}
		for i := range want {
			if math.Float64bits(resp.Forecast[i]) != math.Float64bits(want[i]) {
				t.Fatalf("hour %d: served %v, offline %v", i, resp.Forecast[i], want[i])
			}
		}
	}

	assertParity(forecastCluster(0, 36), 36)

	// Kill two replicas (including the refresh primary): proxied forecasts
	// fail over to the survivor and stay bit-identical.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := rt.KillReplica(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if err := rt.KillReplica(ctx, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		assertParity(forecastCluster(i%snap.Forecasts.K(), 36), 36)
	}

	// Plan round-trip through the proxy matches the offline scoring.
	planReq := serve.PlanRequest{
		Horizon: 24,
		Actions: []forecast.Action{{Op: forecast.OpAddAntennas, Cluster: 0, Count: 3}},
	}
	body, err := json.Marshal(planReq)
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post(rt.URL()+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		out, _ := io.ReadAll(httpResp.Body)
		t.Fatalf("plan status %d: %s", httpResp.StatusCode, out)
	}
	var planResp serve.PlanResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&planResp); err != nil {
		t.Fatal(err)
	}
	want, err := snap.Forecasts.Plan(planReq.Actions, planReq.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	if planResp.ModelRevision != snap.Revision || planResp.Plan == nil {
		t.Fatalf("plan response %+v", planResp)
	}
	if math.Float64bits(planResp.Plan.TotalPlannedMB) != math.Float64bits(want.TotalPlannedMB) {
		t.Fatalf("proxied plan total %v, offline %v", planResp.Plan.TotalPlannedMB, want.TotalPlannedMB)
	}

	// Non-POST is rejected at the router, not proxied.
	getResp, err := http.Get(rt.URL() + "/v1/forecast")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET forecast: %d, want 405", getResp.StatusCode)
	}
}
