// Package synth generates the synthetic nationwide measurement dataset that
// stands in for the operator data of Section 3: per-antenna, per-service
// traffic for 4,762 indoor antennas at 1,000+ sites across 11 indoor
// environment types, plus ~22,000 neighbouring outdoor antennas, over the
// 2022-11-21 → 2023-01-24 recording period.
//
// The generator composes, for every site, a ground-truth archetype drawn
// from the environment's archetype mixture (envmodel), a heavy-tailed
// service mix perturbed with Dirichlet noise, a lognormal volume, a weekly
// activity template with strike-day handling (temporal), and a venue event
// schedule. Hourly series are derived lazily so the full N × M × 1560
// tensor is never materialized.
//
// Ground-truth archetype labels are retained on each antenna for
// validation, but the analysis pipeline never reads them.
package synth

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/envmodel"
	"repro/internal/geo"
	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/services"
	"repro/internal/temporal"
)

// numShapes is the count of distinct service temporal shapes.
const numShapes = int(services.ShapePostEvent) + 1

// Antenna is one generated cell (indoor or outdoor).
type Antenna struct {
	// ID is the dense index within its population (indoor or outdoor).
	ID int
	// Name is the base-station name carrying the environment keyword, as
	// exploited by the Section 5.2.1 classification.
	Name string
	// Env is the ground-truth indoor environment (indoor antennas only).
	Env envmodel.EnvType
	// Outdoor marks macro antennas of the outdoor comparison population.
	Outdoor bool
	// City is the metropolitan area of the site.
	City string
	// Paris reports whether the site is in the Paris region.
	Paris bool
	// Site is the site ordinal the antenna belongs to.
	Site int
	// Location is the antenna position.
	Location geo.Point
	// Archetype is the ground-truth profile (indoor only; -1 outdoors).
	// The analysis pipeline must not read it.
	Archetype int
	// Volume is the expected total traffic over the period in MB.
	Volume float64

	template *temporal.Template
	events   []temporal.Event
	// shapeTraffic[s] is the total traffic of services with shape s.
	shapeTraffic [numShapes]float64

	// gridOnce/gridCache lazily hold the antenna's hour-resolved weight
	// grid (see weightGrid). Built at most once per antenna; the grid
	// depends only on the template, the event schedule and the calendar,
	// all of which are frozen at generation time.
	gridOnce  sync.Once
	gridCache *weightGrid
}

// Events returns the venue's scheduled events (empty for most antennas).
func (a *Antenna) Events() []temporal.Event { return a.events }

// Dataset is a generated nationwide measurement campaign.
type Dataset struct {
	Cal *temporal.Calendar
	// Indoor antennas in ID order; Traffic row i corresponds to Indoor[i].
	Indoor []*Antenna
	// Outdoor antennas in ID order, aligned with OutdoorTraffic rows.
	Outdoor []*Antenna
	// Traffic is the N × M total downlink+uplink MB matrix of Section 4.1.
	Traffic *mat.Dense
	// OutdoorTraffic is the corresponding matrix for outdoor antennas.
	OutdoorTraffic *mat.Dense
	// Sites is the number of generated indoor sites.
	Sites int
}

// Config parameterizes dataset generation.
type Config struct {
	// Seed drives all randomness; equal seeds give identical datasets.
	Seed uint64
	// Scale multiplies the paper's antenna counts (1.0 = full scale:
	// 4,762 indoor antennas; 0.05 for quick tests). Must be > 0.
	Scale float64
	// OutdoorCount overrides the outdoor antenna population; when 0 it
	// defaults to round(22000 × Scale).
	OutdoorCount int
	// MixConcentration controls Dirichlet noise on antenna service mixes;
	// higher is less noisy. When 0 it defaults to 300.
	MixConcentration float64
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.OutdoorCount == 0 {
		c.OutdoorCount = int(math.Round(22000 * c.Scale))
	}
	if c.MixConcentration == 0 {
		c.MixConcentration = 300
	}
	return c
}

// antennasPerSite returns the typical antenna count of a site of the given
// environment, reflecting that stadiums and airports concentrate many
// antennas while shops have one or two.
func antennasPerSite(env envmodel.EnvType, r *rng.Source) int {
	var lo, hi int
	switch env {
	case envmodel.Metro:
		lo, hi = 2, 7
	case envmodel.Train:
		lo, hi = 2, 6
	case envmodel.Airport:
		lo, hi = 6, 16
	case envmodel.Workspace:
		lo, hi = 1, 5
	case envmodel.Commercial:
		lo, hi = 1, 4
	case envmodel.Stadium:
		lo, hi = 6, 18
	case envmodel.Expo:
		lo, hi = 4, 12
	case envmodel.Hotel:
		lo, hi = 1, 3
	case envmodel.Hospital:
		lo, hi = 1, 4
	case envmodel.Tunnel:
		lo, hi = 2, 6
	case envmodel.PublicBuilding:
		lo, hi = 1, 4
	default:
		lo, hi = 1, 4
	}
	return lo + r.Intn(hi-lo+1)
}

// globalPopularity returns the service popularity mass p (sums to 1),
// combining the catalog base weights with a Zipf tilt so a few services
// dominate traffic as in the measured network.
func globalPopularity() []float64 {
	p := make([]float64, services.M)
	var sum float64
	for i, s := range services.All() {
		p[i] = s.BaseWeight
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// regionalMetroCities are the non-capital cities with metro systems named
// by the paper (cluster 7).
var regionalMetroCities = []string{"Lille", "Lyon", "Rennes", "Toulouse"}

func pickCity(env envmodel.EnvType, paris bool, r *rng.Source) (name string, lat, lon float64) {
	if paris {
		c := envmodel.Cities[0]
		return c.Name, c.Lat, c.Lon
	}
	if env == envmodel.Metro {
		name = regionalMetroCities[r.Intn(len(regionalMetroCities))]
		for _, c := range envmodel.Cities {
			if c.Name == name {
				return c.Name, c.Lat, c.Lon
			}
		}
	}
	c := envmodel.Cities[1+r.Intn(len(envmodel.Cities)-1)]
	return c.Name, c.Lat, c.Lon
}

// jitter returns a point within roughly radiusMeters of (lat, lon).
func jitter(lat, lon, radiusMeters float64, r *rng.Source) geo.Point {
	dLat := (r.Float64()*2 - 1) * radiusMeters / 111_320.0
	cos := math.Cos(lat * math.Pi / 180)
	if cos < 0.1 {
		cos = 0.1
	}
	dLon := (r.Float64()*2 - 1) * radiusMeters / (111_320.0 * cos)
	return geo.Point{Lat: lat + dLat, Lon: lon + dLon}
}

// scheduleEvents builds the event calendar of a venue site. Stadium events
// are evening surges on scattered days; expo events span consecutive
// daytime days.
func scheduleEvents(env envmodel.EnvType, cal *temporal.Calendar, r *rng.Source) []temporal.Event {
	var events []temporal.Event
	switch env {
	case envmodel.Stadium:
		// Roughly one event per 6-10 days.
		day := 2 + r.Intn(6)
		for day < cal.Days() {
			start := 18 + r.Intn(2)
			events = append(events, temporal.Event{
				FirstDay: day, LastDay: day,
				StartHour: start, EndHour: start + 4,
				Intensity: 20 + 20*r.Float64(),
				Label:     "match",
			})
			day += 6 + r.Intn(5)
		}
	case envmodel.Expo:
		// One or two multi-day fairs over the period.
		n := 1 + r.Intn(2)
		day := 3 + r.Intn(12)
		for i := 0; i < n && day < cal.Days()-4; i++ {
			span := 2 + r.Intn(3)
			events = append(events, temporal.Event{
				FirstDay: day, LastDay: day + span - 1,
				StartHour: 9, EndHour: 19,
				Intensity: 10 + 10*r.Float64(),
				Label:     "fair",
			})
			day += span + 14 + r.Intn(10)
		}
	}
	return events
}

// Generate builds a synthetic dataset from the configuration.
func Generate(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	root := rng.New(cfg.Seed)
	cal := temporal.NewCalendar()
	arch := envmodel.Archetypes()
	pop := globalPopularity()

	ds := &Dataset{Cal: cal}

	// --- Indoor antennas, site by site. ---
	siteRng := root.Split()
	mixRng := root.Split()
	volRng := root.Split()
	siteOrdinal := 0
	for _, env := range envmodel.AllEnvTypes() {
		remaining := int(math.Round(float64(env.AntennaCount()) * cfg.Scale))
		if remaining < 1 {
			remaining = 1
		}
		siteInEnv := 0
		for remaining > 0 {
			count := antennasPerSite(env, siteRng)
			if count > remaining {
				count = remaining
			}
			remaining -= count
			siteInEnv++
			siteOrdinal++

			paris := siteRng.Float64() < envmodel.ParisFraction(env)
			city, cLat, cLon := pickCity(env, paris, siteRng)
			siteLoc := jitter(cLat, cLon, 12_000, siteRng)
			events := scheduleEvents(env, cal, siteRng)

			// Site-level archetype: antennas of a site share context.
			mix := envmodel.ArchetypeMix(env, paris)
			weights := make([]float64, len(mix))
			for i, m := range mix {
				weights[i] = m.Weight
			}
			archID := mix[siteRng.Choice(weights)].Archetype
			a := arch[archID]

			for k := 0; k < count; k++ {
				ant := &Antenna{
					ID:        len(ds.Indoor),
					Name:      envmodel.NameFor(env, city, siteInEnv, k),
					Env:       env,
					City:      city,
					Paris:     paris,
					Site:      siteOrdinal - 1,
					Location:  jitter(siteLoc.Lat, siteLoc.Lon, 150, siteRng),
					Archetype: archID,
					template:  temporal.ByName(a.Template),
					events:    events,
				}
				ant.Volume = volRng.LogNormal(a.VolumeMu, a.VolumeSigma)
				ds.Indoor = append(ds.Indoor, ant)
			}
		}
	}
	ds.Sites = siteOrdinal

	// Special fixed events of Section 6: the cross-Atlantic NBA game at a
	// Paris arena on the evening of Jan 19 (cluster 8), and the 4-day
	// Sirha fair at a Lyon expo center Jan 19-24 (cluster 5).
	attachSignatureEvents(ds, cal)

	// Indoor traffic matrix.
	ds.Traffic = mat.NewDense(len(ds.Indoor), services.M)
	base := make([]float64, services.M)
	alpha := make([]float64, services.M)
	for _, ant := range ds.Indoor {
		a := arch[ant.Archetype]
		var sum float64
		for j := range base {
			base[j] = pop[j] * a.Multipliers[j]
			sum += base[j]
		}
		for j := range alpha {
			alpha[j] = base[j] / sum * cfg.MixConcentration
		}
		row := ds.Traffic.Row(ant.ID)
		mixRng.Dirichlet(alpha, row)
		for j := range row {
			row[j] *= ant.Volume
		}
		ant.fillShapeTraffic(row)
	}

	// --- Outdoor antennas: general-purpose macro cells near the sites. ---
	// Their composition follows the general-population usage profile that
	// cluster 1 captures indoors (Section 5.3 finds ~70% of outdoor
	// antennas classified into the general-use cluster), softened towards
	// the global mean.
	outMult := make([]float64, services.M)
	for j := range outMult {
		outMult[j] = 1 + 0.65*(arch[1].Multipliers[j]-1)
	}
	outRng := root.Split()
	ds.Outdoor = make([]*Antenna, 0, cfg.OutdoorCount)
	ds.OutdoorTraffic = mat.NewDense(max(cfg.OutdoorCount, 1), services.M)
	for i := 0; i < cfg.OutdoorCount; i++ {
		// Anchor near a random indoor site so the 1 km neighbourhood
		// queries of Section 5.3 find real neighbours.
		anchor := ds.Indoor[outRng.Intn(len(ds.Indoor))]
		ant := &Antenna{
			ID:        i,
			Name:      fmt.Sprintf("%s_MACRO_O%05d", upper(anchor.City), i),
			Outdoor:   true,
			City:      anchor.City,
			Paris:     anchor.Paris,
			Site:      -1,
			Location:  jitter(anchor.Location.Lat, anchor.Location.Lon, 900, outRng),
			Archetype: -1,
			template:  temporal.ByName("diurnal"),
		}
		ant.Volume = outRng.LogNormal(9.0, 0.9)
		// Outdoor mixes hover around the global popularity with mild
		// lognormal dispersion: general-purpose traffic, per Section 5.3.
		// Heterogeneous blend: most macro cells track the general-use
		// profile, but cells near specialized venues absorb a fraction of
		// the local indoor context, scattering a minority of outdoor
		// antennas into other clusters as in Fig. 9.
		blend := 0.3 + 0.7*outRng.Float64()
		var anchorMult []float64
		if anchor.Archetype >= 0 {
			anchorMult = arch[anchor.Archetype].Multipliers
		}
		contextPull := 0.55 * outRng.Float64()
		row := ds.OutdoorTraffic.Row(i)
		var sum float64
		for j := range row {
			m := 1 + blend*(outMult[j]-1)/0.65
			if anchorMult != nil {
				m *= 1 + contextPull*(anchorMult[j]-1)
			}
			if m < 0.05 {
				m = 0.05
			}
			row[j] = pop[j] * m * outRng.LogNormal(0, 0.25)
			sum += row[j]
		}
		for j := range row {
			row[j] = row[j] / sum * ant.Volume
		}
		ant.fillShapeTraffic(row)
		ds.Outdoor = append(ds.Outdoor, ant)
	}

	return ds
}

func upper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}

// attachSignatureEvents wires the two landmark events the paper calls out.
func attachSignatureEvents(ds *Dataset, cal *temporal.Calendar) {
	jan19 := cal.StrikeDay()
	var nbaDone, sirhaDone bool
	for _, ant := range ds.Indoor {
		if !nbaDone && ant.Env == envmodel.Stadium && ant.Paris && ant.Archetype == 8 {
			markSite(ds, ant.Site, temporal.Event{
				FirstDay: jan19, LastDay: jan19,
				StartHour: 19, EndHour: 23,
				Intensity: 45, Label: "nba-paris",
			})
			nbaDone = true
		}
		if !sirhaDone && ant.Env == envmodel.Expo && ant.City == "Lyon" && ant.Archetype == 5 {
			markSite(ds, ant.Site, temporal.Event{
				FirstDay: jan19, LastDay: min(jan19+5, cal.Days()-1),
				StartHour: 9, EndHour: 19,
				Intensity: 18, Label: "sirha-lyon",
			})
			sirhaDone = true
		}
		if nbaDone && sirhaDone {
			break
		}
	}
}

func markSite(ds *Dataset, site int, ev temporal.Event) {
	for _, ant := range ds.Indoor {
		if ant.Site == site {
			ant.events = append(ant.events, ev)
		}
	}
}

func (a *Antenna) fillShapeTraffic(row []float64) {
	for s := range a.shapeTraffic {
		a.shapeTraffic[s] = 0
	}
	for j, v := range row {
		a.shapeTraffic[services.Get(j).Shape] += v
	}
}

// shapeWeight returns the relative activity of services with temporal
// shape s at (day, hourOfDay): the venue envelope (template + events) times
// the service-shape modulation. The post-event shape samples the venue
// surge two hours late, reproducing the Waze pattern of Section 6.
//
// This scalar form is the reference the cached weightGrid must reproduce
// bit-for-bit; the hourly-series hot paths below read the grid instead.
func (a *Antenna) shapeWeight(cal *temporal.Calendar, day, hourOfDay int, s services.TemporalShape) float64 {
	w := a.template.Weight(cal, day, hourOfDay)
	surgeHour := hourOfDay
	surgeDay := day
	if s == services.ShapePostEvent {
		surgeHour -= 2
		if surgeHour < 0 {
			surgeHour += 24
			surgeDay--
		}
	}
	for _, ev := range a.events {
		if ev.Active(surgeDay, surgeHour) {
			w += ev.Intensity
		}
	}
	return w * temporal.ShapeModifier(s, hourOfDay, cal.IsWeekend(day))
}

// shapeWeightSums returns, per temporal shape, the sum of shapeWeight over
// every hour of the calendar — the normalization constant that makes
// hourly series integrate to the antenna's total traffic. Reference
// implementation; the hot paths use the grid's identically-ordered sums.
func (a *Antenna) shapeWeightSums(cal *temporal.Calendar) [numShapes]float64 {
	var sums [numShapes]float64
	for day := 0; day < cal.Days(); day++ {
		for h := 0; h < 24; h++ {
			for s := 0; s < numShapes; s++ {
				sums[s] += a.shapeWeight(cal, day, h, services.TemporalShape(s))
			}
		}
	}
	return sums
}

// weightGrid caches the hour-resolved factors of shapeWeight so the hourly
// series derivations stop re-walking the template and event schedule per
// (hour, shape) evaluation. shapeWeight factors as
//
//	envelope(day, h | surge shift) × ShapeModifier(s, hourOfDay, weekend)
//
// and only the post-event shape shifts the envelope's event sampling, so
// two envelope rows (normal and surge-shifted) plus the 9×24×2 modifier
// table reconstruct every shapeWeight value with the exact operations of
// the scalar form — same template lookup, same event accumulation order,
// same final multiply — keeping the series bit-identical.
type weightGrid struct {
	// normal[t] is template weight + active event intensities at absolute
	// hour t; post[t] samples the events two hours earlier (the Waze
	// surge shift) while keeping the template weight at t.
	normal, post []float64
	// mod[s][h][w] tabulates temporal.ShapeModifier(s, h, weekend w).
	mod [numShapes][24][2]float64
	// sums holds shapeWeightSums, accumulated in the reference day→h→s
	// order from grid values.
	sums [numShapes]float64
}

// envelopeAt returns the venue envelope — template weight at (day,
// hourOfDay) plus the intensities of events active at (evDay, evHour) —
// accumulated in schedule order, exactly as shapeWeight does.
func (a *Antenna) envelopeAt(cal *temporal.Calendar, day, hourOfDay, evDay, evHour int) float64 {
	w := a.template.Weight(cal, day, hourOfDay)
	for _, ev := range a.events {
		if ev.Active(evDay, evHour) {
			w += ev.Intensity
		}
	}
	return w
}

// grid returns the antenna's weight grid, building it on first use. Safe
// for concurrent callers; the pipeline's temporal fan-out hits the same
// antenna from several workers.
func (a *Antenna) grid(cal *temporal.Calendar) *weightGrid {
	a.gridOnce.Do(func() {
		hours := cal.Hours()
		g := &weightGrid{
			normal: make([]float64, hours),
			post:   make([]float64, hours),
		}
		for s := 0; s < numShapes; s++ {
			for h := 0; h < 24; h++ {
				g.mod[s][h][0] = temporal.ShapeModifier(services.TemporalShape(s), h, false)
				g.mod[s][h][1] = temporal.ShapeModifier(services.TemporalShape(s), h, true)
			}
		}
		for day := 0; day < cal.Days(); day++ {
			for h := 0; h < 24; h++ {
				t := day*24 + h
				g.normal[t] = a.envelopeAt(cal, day, h, day, h)
				surgeDay, surgeHour := day, h-2
				if surgeHour < 0 {
					surgeHour += 24
					surgeDay--
				}
				g.post[t] = a.envelopeAt(cal, day, h, surgeDay, surgeHour)
			}
		}
		// Accumulate the normalization sums in the reference order
		// (day → hour → shape) so they match shapeWeightSums bit-for-bit.
		for day := 0; day < cal.Days(); day++ {
			we := 0
			if cal.IsWeekend(day) {
				we = 1
			}
			for h := 0; h < 24; h++ {
				t := day*24 + h
				for s := 0; s < numShapes; s++ {
					g.sums[s] += g.at(t, h, we, services.TemporalShape(s))
				}
			}
		}
		a.gridCache = g
	})
	return a.gridCache
}

// at reconstructs shapeWeight from the grid: envelope × modifier.
func (g *weightGrid) at(t, hourOfDay, weekend int, s services.TemporalShape) float64 {
	base := g.normal[t]
	if s == services.ShapePostEvent {
		base = g.post[t]
	}
	return base * g.mod[s][hourOfDay][weekend]
}

// HourlyTotals returns the antenna's total traffic per absolute hour of the
// calendar. The series sums to the antenna's total traffic in the dataset
// matrix (up to floating-point rounding).
func (d *Dataset) HourlyTotals(a *Antenna) []float64 {
	g := a.grid(d.Cal)
	out := make([]float64, d.Cal.Hours())
	for day := 0; day < d.Cal.Days(); day++ {
		we := 0
		if d.Cal.IsWeekend(day) {
			we = 1
		}
		for h := 0; h < 24; h++ {
			t := day*24 + h
			var v float64
			for s := 0; s < numShapes; s++ {
				if g.sums[s] == 0 {
					continue
				}
				v += a.shapeTraffic[s] * g.at(t, h, we, services.TemporalShape(s)) / g.sums[s]
			}
			out[t] = v
		}
	}
	return out
}

// HourlyTotalsRow returns the antenna's total traffic per absolute hour
// of the calendar derived from an explicit per-service traffic row rather
// than the generation-time totals. For the antenna's own generated row it
// is bit-identical to HourlyTotals (the shape totals are accumulated in
// the same service order fillShapeTraffic uses); with a refreshed row it
// yields the hourly series implied by the live traffic matrix, which is
// what keeps warm-refreshed forecasts fresh.
func (d *Dataset) HourlyTotalsRow(a *Antenna, row []float64) []float64 {
	var shapeTraffic [numShapes]float64
	for j, v := range row {
		shapeTraffic[services.Get(j).Shape] += v
	}
	g := a.grid(d.Cal)
	out := make([]float64, d.Cal.Hours())
	for day := 0; day < d.Cal.Days(); day++ {
		we := 0
		if d.Cal.IsWeekend(day) {
			we = 1
		}
		for h := 0; h < 24; h++ {
			t := day*24 + h
			var v float64
			for s := 0; s < numShapes; s++ {
				if g.sums[s] == 0 {
					continue
				}
				v += shapeTraffic[s] * g.at(t, h, we, services.TemporalShape(s)) / g.sums[s]
			}
			out[t] = v
		}
	}
	return out
}

// HourlyService returns the hourly series of one service at the antenna.
// The series sums to the corresponding T matrix cell.
func (d *Dataset) HourlyService(a *Antenna, serviceID int) []float64 {
	var total float64
	if a.Outdoor {
		total = d.OutdoorTraffic.At(a.ID, serviceID)
	} else {
		total = d.Traffic.At(a.ID, serviceID)
	}
	shape := services.Get(serviceID).Shape
	g := a.grid(d.Cal)
	out := make([]float64, d.Cal.Hours())
	if g.sums[shape] == 0 {
		return out
	}
	for day := 0; day < d.Cal.Days(); day++ {
		we := 0
		if d.Cal.IsWeekend(day) {
			we = 1
		}
		for h := 0; h < 24; h++ {
			t := day*24 + h
			out[t] = total * g.at(t, h, we, shape) / g.sums[shape]
		}
	}
	return out
}

// IndoorLocations returns the coordinates of every indoor antenna in ID
// order, for spatial indexing.
func (d *Dataset) IndoorLocations() []geo.Point {
	pts := make([]geo.Point, len(d.Indoor))
	for i, a := range d.Indoor {
		pts[i] = a.Location
	}
	return pts
}

// OutdoorLocations returns the coordinates of every outdoor antenna.
func (d *Dataset) OutdoorLocations() []geo.Point {
	pts := make([]geo.Point, len(d.Outdoor))
	for i, a := range d.Outdoor {
		pts[i] = a.Location
	}
	return pts
}
