package synth

import (
	"math"
	"testing"

	"repro/internal/envmodel"
	"repro/internal/geo"
	"repro/internal/services"
)

// testConfig is a small but structurally complete dataset for unit tests.
func testConfig() Config {
	return Config{Seed: 1, Scale: 0.05, OutdoorCount: 200}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(testConfig())
	b := Generate(testConfig())
	if len(a.Indoor) != len(b.Indoor) {
		t.Fatal("antenna counts differ between identical seeds")
	}
	for i := range a.Indoor {
		if a.Indoor[i].Name != b.Indoor[i].Name || a.Indoor[i].Archetype != b.Indoor[i].Archetype {
			t.Fatalf("antenna %d differs between identical seeds", i)
		}
	}
	for i := 0; i < a.Traffic.Rows(); i++ {
		for j := 0; j < a.Traffic.Cols(); j++ {
			if a.Traffic.At(i, j) != b.Traffic.At(i, j) {
				t.Fatalf("traffic (%d,%d) differs between identical seeds", i, j)
			}
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	a := Generate(Config{Seed: 1, Scale: 0.05, OutdoorCount: 10})
	b := Generate(Config{Seed: 2, Scale: 0.05, OutdoorCount: 10})
	if a.Traffic.At(0, 0) == b.Traffic.At(0, 0) {
		t.Fatal("different seeds should differ")
	}
}

func TestFullScaleCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation in -short mode")
	}
	ds := Generate(Config{Seed: 7, Scale: 1, OutdoorCount: 100})
	// Table 1 rounding: every env contributes round(count), so the total
	// matches the paper's N exactly at Scale=1.
	if len(ds.Indoor) != envmodel.TotalIndoorAntennas {
		t.Fatalf("indoor antennas = %d, want %d", len(ds.Indoor), envmodel.TotalIndoorAntennas)
	}
	if ds.Sites < 1000 {
		t.Fatalf("sites = %d, paper has >1000", ds.Sites)
	}
	counts := map[envmodel.EnvType]int{}
	for _, a := range ds.Indoor {
		counts[a.Env]++
	}
	for _, e := range envmodel.AllEnvTypes() {
		if counts[e] != e.AntennaCount() {
			t.Fatalf("%v count %d, want %d", e, counts[e], e.AntennaCount())
		}
	}
}

func TestTrafficMatrixShapeAndPositivity(t *testing.T) {
	ds := Generate(testConfig())
	if ds.Traffic.Rows() != len(ds.Indoor) || ds.Traffic.Cols() != services.M {
		t.Fatal("traffic matrix shape")
	}
	for i := 0; i < ds.Traffic.Rows(); i++ {
		var rowSum float64
		for j := 0; j < ds.Traffic.Cols(); j++ {
			v := ds.Traffic.At(i, j)
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("traffic (%d,%d) = %v", i, j, v)
			}
			rowSum += v
		}
		if rowSum <= 0 {
			t.Fatalf("antenna %d has zero traffic", i)
		}
		// Row total equals the antenna volume (mix sums to 1).
		if math.Abs(rowSum-ds.Indoor[i].Volume) > 1e-6*ds.Indoor[i].Volume {
			t.Fatalf("antenna %d row sum %v != volume %v", i, rowSum, ds.Indoor[i].Volume)
		}
	}
}

func TestNamesClassifyBack(t *testing.T) {
	ds := Generate(testConfig())
	for _, a := range ds.Indoor {
		env, ok := envmodel.ClassifyName(a.Name)
		if !ok || env != a.Env {
			t.Fatalf("antenna name %q does not classify to %v", a.Name, a.Env)
		}
	}
}

func TestArchetypesRespectEnvMix(t *testing.T) {
	ds := Generate(Config{Seed: 3, Scale: 0.4, OutdoorCount: 10})
	for _, a := range ds.Indoor {
		allowed := map[int]bool{}
		for _, m := range envmodel.ArchetypeMix(a.Env, a.Paris) {
			allowed[m.Archetype] = true
		}
		if !allowed[a.Archetype] {
			t.Fatalf("antenna %s (env %v paris %v) has archetype %d outside its mix",
				a.Name, a.Env, a.Paris, a.Archetype)
		}
	}
}

func TestRegionalMetroCities(t *testing.T) {
	ds := Generate(Config{Seed: 5, Scale: 0.3, OutdoorCount: 10})
	valid := map[string]bool{"Lille": true, "Lyon": true, "Rennes": true, "Toulouse": true}
	for _, a := range ds.Indoor {
		if a.Env == envmodel.Metro && !a.Paris && !valid[a.City] {
			t.Fatalf("non-Paris metro in %s; the paper lists Lille, Lyon, Rennes, Toulouse", a.City)
		}
	}
}

func TestSiteSharing(t *testing.T) {
	ds := Generate(testConfig())
	// All antennas of a site must share env, city and archetype.
	type siteInfo struct {
		env  envmodel.EnvType
		city string
		arch int
	}
	sites := map[int]siteInfo{}
	for _, a := range ds.Indoor {
		if info, ok := sites[a.Site]; ok {
			if info.env != a.Env || info.city != a.City || info.arch != a.Archetype {
				t.Fatalf("site %d has inconsistent antennas", a.Site)
			}
		} else {
			sites[a.Site] = siteInfo{a.Env, a.City, a.Archetype}
		}
	}
	if len(sites) != ds.Sites {
		t.Fatalf("Sites=%d but %d distinct site IDs", ds.Sites, len(sites))
	}
}

func TestHourlyTotalsIntegrateToVolume(t *testing.T) {
	ds := Generate(testConfig())
	for _, a := range ds.Indoor[:10] {
		series := ds.HourlyTotals(a)
		if len(series) != ds.Cal.Hours() {
			t.Fatal("series length")
		}
		var sum float64
		for _, v := range series {
			if v < 0 {
				t.Fatal("negative hourly traffic")
			}
			sum += v
		}
		if math.Abs(sum-a.Volume) > 1e-6*a.Volume {
			t.Fatalf("hourly totals sum %v != volume %v", sum, a.Volume)
		}
	}
}

func TestHourlyTotalsRowMatchesGeneratedRow(t *testing.T) {
	// For the generation-time traffic row, HourlyTotalsRow must be
	// bit-identical to HourlyTotals: same shape-total accumulation order,
	// same grid loop. This is the parity contract the warm-refresh
	// forecast path relies on at drift 0.
	ds := Generate(testConfig())
	for _, a := range ds.Indoor[:10] {
		want := ds.HourlyTotals(a)
		got := ds.HourlyTotalsRow(a, ds.Traffic.Row(a.ID))
		for h := range want {
			if math.Float64bits(got[h]) != math.Float64bits(want[h]) {
				t.Fatalf("antenna %q hour %d: row-derived %v != generated %v", a.Name, h, got[h], want[h])
			}
		}
	}
}

func TestHourlyTotalsRowTracksChangedRow(t *testing.T) {
	// A scaled row must scale the series: the derivation reads the row,
	// not the frozen generation-time totals.
	ds := Generate(testConfig())
	a := ds.Indoor[0]
	row := ds.Traffic.Row(a.ID)
	scaled := make([]float64, len(row))
	for j, v := range row {
		scaled[j] = 2 * v
	}
	base := ds.HourlyTotalsRow(a, row)
	bumped := ds.HourlyTotalsRow(a, scaled)
	for h := range base {
		if math.Abs(bumped[h]-2*base[h]) > 1e-9*math.Max(base[h], 1e-9) {
			t.Fatalf("hour %d: doubled row gave %v, want %v", h, bumped[h], 2*base[h])
		}
	}
}

func TestHourlyServiceIntegratesToCell(t *testing.T) {
	ds := Generate(testConfig())
	a := ds.Indoor[0]
	for _, j := range []int{0, services.MustID("Netflix"), services.MustID("Microsoft Teams")} {
		series := ds.HourlyService(a, j)
		var sum float64
		for _, v := range series {
			sum += v
		}
		cell := ds.Traffic.At(a.ID, j)
		if math.Abs(sum-cell) > 1e-6*math.Max(cell, 1e-12) {
			t.Fatalf("service %d series sum %v != cell %v", j, sum, cell)
		}
	}
}

func TestHourlyServiceSumsToTotals(t *testing.T) {
	// Summing per-service series over all services equals the totals
	// series: the decomposition is exact.
	ds := Generate(Config{Seed: 11, Scale: 0.02, OutdoorCount: 5})
	a := ds.Indoor[0]
	totals := ds.HourlyTotals(a)
	acc := make([]float64, len(totals))
	for j := 0; j < services.M; j++ {
		for h, v := range ds.HourlyService(a, j) {
			acc[h] += v
		}
	}
	for h := range totals {
		if math.Abs(acc[h]-totals[h]) > 1e-6*math.Max(totals[h], 1e-9) {
			t.Fatalf("hour %d: sum of services %v != total %v", h, acc[h], totals[h])
		}
	}
}

func TestCommuteAntennasPeakAtCommuteHours(t *testing.T) {
	ds := Generate(Config{Seed: 13, Scale: 0.1, OutdoorCount: 5})
	for _, a := range ds.Indoor {
		if a.Archetype != 0 {
			continue
		}
		series := ds.HourlyTotals(a)
		// Tuesday of the second week: day 8.
		day := 8
		morning := series[day*24+8]
		night := series[day*24+3]
		if morning <= night*3 {
			t.Fatalf("commute antenna %s morning %v vs night %v", a.Name, morning, night)
		}
		return
	}
	t.Skip("no archetype-0 antenna at this scale/seed")
}

func TestStrikeDayTrough(t *testing.T) {
	ds := Generate(Config{Seed: 17, Scale: 0.1, OutdoorCount: 5})
	sd := ds.Cal.StrikeDay()
	for _, a := range ds.Indoor {
		if a.Archetype != 0 && a.Archetype != 4 {
			continue
		}
		series := ds.HourlyTotals(a)
		strike := series[sd*24+8]
		ref := series[(sd-7)*24+8]
		if strike >= ref*0.5 {
			t.Fatalf("strike-day traffic %v not suppressed vs %v", strike, ref)
		}
		return
	}
	t.Skip("no Paris commuter antenna at this scale/seed")
}

func TestStadiumEventBursts(t *testing.T) {
	ds := Generate(Config{Seed: 19, Scale: 0.2, OutdoorCount: 5})
	for _, a := range ds.Indoor {
		if a.Env != envmodel.Stadium || len(a.Events()) == 0 {
			continue
		}
		ev := a.Events()[0]
		series := ds.HourlyTotals(a)
		during := series[ev.FirstDay*24+ev.StartHour]
		// Compare against the same hour the day before (no event).
		quietDay := ev.FirstDay - 1
		if quietDay < 0 {
			quietDay = ev.LastDay + 1
		}
		quiet := series[quietDay*24+ev.StartHour]
		if during <= quiet*3 {
			t.Fatalf("event hour %v not bursting vs quiet %v", during, quiet)
		}
		return
	}
	t.Skip("no stadium with events at this scale/seed")
}

func TestSignatureEventsAttached(t *testing.T) {
	ds := Generate(Config{Seed: 23, Scale: 0.5, OutdoorCount: 5})
	var nba, sirha bool
	for _, a := range ds.Indoor {
		for _, ev := range a.Events() {
			switch ev.Label {
			case "nba-paris":
				nba = true
				if ev.FirstDay != ds.Cal.StrikeDay() {
					t.Fatal("NBA event must be on Jan 19")
				}
			case "sirha-lyon":
				sirha = true
				if ev.LastDay-ev.FirstDay < 3 {
					t.Fatal("Sirha should span multiple days")
				}
			}
		}
	}
	if !nba || !sirha {
		t.Skipf("signature events not both present at this scale (nba=%v sirha=%v)", nba, sirha)
	}
}

func TestOutdoorPopulation(t *testing.T) {
	ds := Generate(testConfig())
	if len(ds.Outdoor) != 200 {
		t.Fatalf("outdoor count %d", len(ds.Outdoor))
	}
	for _, a := range ds.Outdoor {
		if !a.Outdoor || a.Archetype != -1 {
			t.Fatal("outdoor antenna flags")
		}
	}
	// Outdoor antennas are near indoor ones: each should have an indoor
	// neighbour within ~2 km.
	idx := geo.NewIndex(ds.IndoorLocations(), 1000)
	for _, a := range ds.Outdoor[:50] {
		if len(idx.Within(a.Location, 2500)) == 0 {
			t.Fatalf("outdoor antenna %s has no indoor neighbour", a.Name)
		}
	}
}

func TestOutdoorMixTracksGeneralUseProfile(t *testing.T) {
	ds := Generate(Config{Seed: 29, Scale: 0.05, OutdoorCount: 500})
	pop := globalPopularity()
	arch := envmodel.Archetypes()
	// The average outdoor mix share tracks the global popularity tilted
	// towards the general-use (cluster 1) profile, per Section 5.3.
	want := make([]float64, services.M)
	var wantSum float64
	for j := range want {
		want[j] = pop[j] * (1 + 0.65*(arch[1].Multipliers[j]-1))
		wantSum += want[j]
	}
	for j := range want {
		want[j] /= wantSum
	}
	meanShare := make([]float64, services.M)
	for i := 0; i < ds.OutdoorTraffic.Rows(); i++ {
		row := ds.OutdoorTraffic.Row(i)
		var sum float64
		for _, v := range row {
			sum += v
		}
		for j, v := range row {
			meanShare[j] += v / sum
		}
	}
	for j := range meanShare {
		meanShare[j] /= float64(ds.OutdoorTraffic.Rows())
		if math.Abs(meanShare[j]-want[j]) > 0.25*want[j]+0.002 {
			t.Fatalf("outdoor mean share of service %d = %v, want %v", j, meanShare[j], want[j])
		}
	}
}

func TestGlobalPopularityNormalized(t *testing.T) {
	pop := globalPopularity()
	var sum float64
	for _, p := range pop {
		if p <= 0 {
			t.Fatal("non-positive popularity")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("popularity sums to %v", sum)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 1 || c.OutdoorCount != 22000 || c.MixConcentration != 300 {
		t.Fatalf("defaults = %+v", c)
	}
}

func BenchmarkGenerateScale01(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Generate(Config{Seed: 1, Scale: 0.1, OutdoorCount: 100})
	}
}

func BenchmarkHourlyTotals(b *testing.B) {
	ds := Generate(testConfig())
	a := ds.Indoor[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ds.HourlyTotals(a)
	}
}

// referenceHourlyTotals is the pre-grid scalar derivation of HourlyTotals,
// kept as the bit-identity reference for the cached weight grid.
func referenceHourlyTotals(d *Dataset, a *Antenna) []float64 {
	sums := a.shapeWeightSums(d.Cal)
	out := make([]float64, d.Cal.Hours())
	for day := 0; day < d.Cal.Days(); day++ {
		for h := 0; h < 24; h++ {
			var v float64
			for s := 0; s < numShapes; s++ {
				if sums[s] == 0 {
					continue
				}
				v += a.shapeTraffic[s] * a.shapeWeight(d.Cal, day, h, services.TemporalShape(s)) / sums[s]
			}
			out[day*24+h] = v
		}
	}
	return out
}

// referenceHourlyService mirrors the pre-grid HourlyService.
func referenceHourlyService(d *Dataset, a *Antenna, serviceID int) []float64 {
	var total float64
	if a.Outdoor {
		total = d.OutdoorTraffic.At(a.ID, serviceID)
	} else {
		total = d.Traffic.At(a.ID, serviceID)
	}
	shape := services.Get(serviceID).Shape
	sums := a.shapeWeightSums(d.Cal)
	out := make([]float64, d.Cal.Hours())
	if sums[shape] == 0 {
		return out
	}
	for day := 0; day < d.Cal.Days(); day++ {
		for h := 0; h < 24; h++ {
			out[day*24+h] = total * a.shapeWeight(d.Cal, day, h, shape) / sums[shape]
		}
	}
	return out
}

// The weight grid must reproduce the scalar shapeWeight derivations
// bit-for-bit, event venues (post-event surge shift) included.
func TestWeightGridMatchesScalarReference(t *testing.T) {
	ds := Generate(Config{Seed: 17, Scale: 0.05, OutdoorCount: 20})
	checked, eventful := 0, 0
	ants := append(append([]*Antenna{}, ds.Indoor...), ds.Outdoor[:5]...)
	for _, a := range ants {
		if len(a.events) > 0 {
			eventful++
		} else if checked > 30 && eventful > 0 {
			continue
		}
		checked++
		got := ds.HourlyTotals(a)
		want := referenceHourlyTotals(ds, a)
		for h := range want {
			if got[h] != want[h] {
				t.Fatalf("antenna %q hour %d: grid total %v != reference %v", a.Name, h, got[h], want[h])
			}
		}
		for _, j := range []int{0, 7, services.M - 1} {
			gs := ds.HourlyService(a, j)
			ws := referenceHourlyService(ds, a, j)
			for h := range ws {
				if gs[h] != ws[h] {
					t.Fatalf("antenna %q service %d hour %d: grid %v != reference %v", a.Name, j, h, gs[h], ws[h])
				}
			}
		}
	}
	if eventful == 0 {
		t.Fatal("no event-driven antennas exercised; parity test lost its surge-shift coverage")
	}
}
