// Package services defines the catalog of M = 73 mobile services tracked in
// the reproduction, mirroring Section 3 of the paper: "mobile applications
// used throughout daily life related to activities such as social
// networking, messaging, audio and video streaming, transportation,
// professional activities, and well-being."
//
// Every service the paper names in its analysis (Spotify, Deezer, Mappy,
// Waze, Snapchat, Microsoft Teams, Netflix, Google Play Store, ...) appears
// here with the category and temporal affinity the paper attributes to it;
// the remainder of the catalog is filled with representative services of the
// same categories so that M matches the paper exactly.
package services

import "fmt"

// Category groups services by the user activity they serve.
type Category int

const (
	Music Category = iota
	Navigation
	Transport // transit schedules and transportation websites
	SocialMedia
	Messaging
	VideoStreaming
	Business
	Email
	Shopping
	Sports
	News
	Gaming
	WebPortal
	Wellbeing
	CloudStorage
	DigitalDistribution
	Entertainment
	numCategories
)

var categoryNames = [...]string{
	Music:               "music",
	Navigation:          "navigation",
	Transport:           "transport",
	SocialMedia:         "social",
	Messaging:           "messaging",
	VideoStreaming:      "video-streaming",
	Business:            "business",
	Email:               "email",
	Shopping:            "shopping",
	Sports:              "sports",
	News:                "news",
	Gaming:              "gaming",
	WebPortal:           "web-portal",
	Wellbeing:           "wellbeing",
	CloudStorage:        "cloud-storage",
	DigitalDistribution: "digital-distribution",
	Entertainment:       "entertainment",
}

// String returns the lowercase category label.
func (c Category) String() string {
	if c < 0 || int(c) >= len(categoryNames) {
		return fmt.Sprintf("category(%d)", int(c))
	}
	return categoryNames[c]
}

// NumCategories is the number of distinct service categories.
const NumCategories = int(numCategories)

// TemporalShape selects the within-day demand template a service gravitates
// to, used by the synthetic generator and validated in the Fig. 11
// reproduction.
type TemporalShape int

const (
	// ShapeFlat follows the carrying antenna's own activity profile with no
	// extra service-specific modulation.
	ShapeFlat TemporalShape = iota
	// ShapeCommute peaks at 7:30-9:30 and 17:30-19:30 on weekdays (Spotify,
	// transit apps in the paper's orange group).
	ShapeCommute
	// ShapeWorkHours peaks 9:00-17:30 weekdays with a lunch dip recovery
	// (Microsoft Teams, mail in cluster 3).
	ShapeWorkHours
	// ShapeEvening peaks 19:00-23:00 (Netflix and other streaming).
	ShapeEvening
	// ShapeNight carries unusual night mass (hotel/hospital streaming).
	ShapeNight
	// ShapePostEvent lags the venue peak by about two hours (Waze guiding
	// event attendants home, per Section 6).
	ShapePostEvent
)

// Service is one monitored mobile application.
type Service struct {
	// ID is the dense feature index of the service, 0..M-1.
	ID int
	// Name is the display name used in figures and reports.
	Name string
	// Category is the activity family of the service.
	Category Category
	// Shape is the temporal affinity used for Fig. 11 style analysis.
	Shape TemporalShape
	// BaseWeight scales the global popularity of the service relative to
	// its Zipf rank; streaming >> messaging in bytes, per Section 4.1.
	BaseWeight float64
}

// catalog lists the full M=73 service set. BaseWeight reflects that "some
// applications intrinsically produce a larger volume of traffic than
// others, e.g., streaming services generate demands that can be orders of
// magnitude larger compared to those induced by texting applications".
var catalog = []Service{
	// Music (paper: Spotify, Soundcloud, Deezer, Apple Music).
	{Name: "Spotify", Category: Music, Shape: ShapeCommute, BaseWeight: 8},
	{Name: "SoundCloud", Category: Music, Shape: ShapeCommute, BaseWeight: 3},
	{Name: "Deezer", Category: Music, Shape: ShapeCommute, BaseWeight: 4},
	{Name: "Apple Music", Category: Music, Shape: ShapeCommute, BaseWeight: 4},
	{Name: "Radio Streaming", Category: Music, Shape: ShapeCommute, BaseWeight: 2},

	// Navigation and transport (paper: Mappy, Google Maps, Waze,
	// transportation websites).
	{Name: "Google Maps", Category: Navigation, Shape: ShapeCommute, BaseWeight: 3},
	{Name: "Mappy", Category: Navigation, Shape: ShapeCommute, BaseWeight: 1},
	{Name: "Waze", Category: Navigation, Shape: ShapePostEvent, BaseWeight: 2},
	{Name: "Transportation Websites", Category: Transport, Shape: ShapeCommute, BaseWeight: 1.5},
	{Name: "SNCF Connect", Category: Transport, Shape: ShapeCommute, BaseWeight: 1.5},
	{Name: "RATP", Category: Transport, Shape: ShapeCommute, BaseWeight: 1.2},
	{Name: "Ride Hailing", Category: Transport, Shape: ShapePostEvent, BaseWeight: 1},

	// Social media (paper: Snapchat, Twitter, Giphy).
	{Name: "Facebook", Category: SocialMedia, Shape: ShapeFlat, BaseWeight: 9},
	{Name: "Instagram", Category: SocialMedia, Shape: ShapeFlat, BaseWeight: 10},
	{Name: "Snapchat", Category: SocialMedia, Shape: ShapeFlat, BaseWeight: 7},
	{Name: "Twitter", Category: SocialMedia, Shape: ShapeFlat, BaseWeight: 5},
	{Name: "TikTok", Category: SocialMedia, Shape: ShapeEvening, BaseWeight: 10},
	{Name: "Giphy", Category: SocialMedia, Shape: ShapeFlat, BaseWeight: 1},
	{Name: "Pinterest", Category: SocialMedia, Shape: ShapeEvening, BaseWeight: 2},
	{Name: "Reddit", Category: SocialMedia, Shape: ShapeEvening, BaseWeight: 2},

	// Messaging (paper: WhatsApp, messaging activities).
	{Name: "WhatsApp", Category: Messaging, Shape: ShapeFlat, BaseWeight: 3},
	{Name: "Messenger", Category: Messaging, Shape: ShapeFlat, BaseWeight: 2},
	{Name: "Telegram", Category: Messaging, Shape: ShapeFlat, BaseWeight: 1.5},
	{Name: "Signal", Category: Messaging, Shape: ShapeFlat, BaseWeight: 0.8},
	{Name: "iMessage", Category: Messaging, Shape: ShapeFlat, BaseWeight: 1},

	// Video streaming (paper: Netflix, Disney+, Amazon Prime Video, Canal+).
	{Name: "Netflix", Category: VideoStreaming, Shape: ShapeEvening, BaseWeight: 14},
	{Name: "YouTube", Category: VideoStreaming, Shape: ShapeFlat, BaseWeight: 15},
	{Name: "Disney+", Category: VideoStreaming, Shape: ShapeEvening, BaseWeight: 7},
	{Name: "Amazon Prime Video", Category: VideoStreaming, Shape: ShapeEvening, BaseWeight: 7},
	{Name: "Canal+", Category: VideoStreaming, Shape: ShapeEvening, BaseWeight: 4},
	{Name: "Twitch", Category: VideoStreaming, Shape: ShapeEvening, BaseWeight: 5},
	{Name: "MyTF1", Category: VideoStreaming, Shape: ShapeEvening, BaseWeight: 3},
	{Name: "France TV", Category: VideoStreaming, Shape: ShapeEvening, BaseWeight: 3},

	// Business / professional (paper: Microsoft Teams, LinkedIn).
	{Name: "Microsoft Teams", Category: Business, Shape: ShapeWorkHours, BaseWeight: 4},
	{Name: "LinkedIn", Category: Business, Shape: ShapeWorkHours, BaseWeight: 2},
	{Name: "Zoom", Category: Business, Shape: ShapeWorkHours, BaseWeight: 3},
	{Name: "Slack", Category: Business, Shape: ShapeWorkHours, BaseWeight: 1.5},
	{Name: "Office 365", Category: Business, Shape: ShapeWorkHours, BaseWeight: 2.5},
	{Name: "VPN / Remote Access", Category: Business, Shape: ShapeWorkHours, BaseWeight: 2},
	{Name: "Salesforce", Category: Business, Shape: ShapeWorkHours, BaseWeight: 1},

	// Email (paper: "emailing services").
	{Name: "Gmail", Category: Email, Shape: ShapeWorkHours, BaseWeight: 1.5},
	{Name: "Outlook", Category: Email, Shape: ShapeWorkHours, BaseWeight: 1.5},
	{Name: "Orange Mail", Category: Email, Shape: ShapeFlat, BaseWeight: 0.8},
	{Name: "Yahoo Mail", Category: Email, Shape: ShapeFlat, BaseWeight: 0.5},

	// Shopping (paper: shopping websites, Google Play Store retail use).
	{Name: "Amazon Shopping", Category: Shopping, Shape: ShapeFlat, BaseWeight: 2},
	{Name: "Shopping Websites", Category: Shopping, Shape: ShapeFlat, BaseWeight: 1.5},
	{Name: "Vinted", Category: Shopping, Shape: ShapeEvening, BaseWeight: 1.5},
	{Name: "Leboncoin", Category: Shopping, Shape: ShapeFlat, BaseWeight: 1.5},
	{Name: "AliExpress", Category: Shopping, Shape: ShapeEvening, BaseWeight: 1},

	// Sports (paper: sports websites).
	{Name: "Sports Websites", Category: Sports, Shape: ShapeFlat, BaseWeight: 1.5},
	{Name: "L'Equipe", Category: Sports, Shape: ShapeFlat, BaseWeight: 1.2},
	{Name: "Live Score Apps", Category: Sports, Shape: ShapeFlat, BaseWeight: 0.8},
	{Name: "Sports Betting", Category: Sports, Shape: ShapeFlat, BaseWeight: 1},

	// News and portals (paper: Yahoo, entertainment websites).
	{Name: "Yahoo", Category: WebPortal, Shape: ShapeFlat, BaseWeight: 1},
	{Name: "Google Search", Category: WebPortal, Shape: ShapeFlat, BaseWeight: 3},
	{Name: "Le Monde", Category: News, Shape: ShapeCommute, BaseWeight: 1},
	{Name: "Le Figaro", Category: News, Shape: ShapeCommute, BaseWeight: 0.8},
	{Name: "BFM TV", Category: News, Shape: ShapeFlat, BaseWeight: 1.5},

	// Gaming.
	{Name: "Mobile Gaming", Category: Gaming, Shape: ShapeEvening, BaseWeight: 3},
	{Name: "Fortnite", Category: Gaming, Shape: ShapeEvening, BaseWeight: 2},
	{Name: "Candy Crush", Category: Gaming, Shape: ShapeCommute, BaseWeight: 1},

	// Entertainment websites (paper: entertainment websites under-used in
	// cluster 4).
	{Name: "Entertainment Websites", Category: Entertainment, Shape: ShapeFlat, BaseWeight: 1.2},
	{Name: "Ticketing", Category: Entertainment, Shape: ShapeFlat, BaseWeight: 0.6},
	{Name: "Dating Apps", Category: Entertainment, Shape: ShapeEvening, BaseWeight: 1},

	// Wellbeing (paper: well-being activities).
	{Name: "Fitness Tracking", Category: Wellbeing, Shape: ShapeCommute, BaseWeight: 0.6},
	{Name: "Meditation Apps", Category: Wellbeing, Shape: ShapeNight, BaseWeight: 0.4},
	{Name: "Health Portal", Category: Wellbeing, Shape: ShapeWorkHours, BaseWeight: 0.5},

	// Cloud and distribution (paper: Google Play Store defining cluster 2).
	{Name: "Google Play Store", Category: DigitalDistribution, Shape: ShapeFlat, BaseWeight: 3},
	{Name: "Apple App Store", Category: DigitalDistribution, Shape: ShapeFlat, BaseWeight: 2.5},
	{Name: "OS Updates", Category: DigitalDistribution, Shape: ShapeNight, BaseWeight: 2},
	{Name: "iCloud", Category: CloudStorage, Shape: ShapeNight, BaseWeight: 1.5},
	{Name: "Google Drive", Category: CloudStorage, Shape: ShapeWorkHours, BaseWeight: 1.5},
	{Name: "Dropbox", Category: CloudStorage, Shape: ShapeWorkHours, BaseWeight: 0.8},
}

// M is the number of mobile services, matching the paper's feature count.
const M = 73

func init() {
	if len(catalog) != M {
		//lint:allow nopanic init-time validation of the compiled-in service catalog
		panic(fmt.Sprintf("services: catalog has %d entries, want %d", len(catalog), M))
	}
	seen := make(map[string]bool, M)
	for i := range catalog {
		catalog[i].ID = i
		if seen[catalog[i].Name] {
			//lint:allow nopanic init-time validation of the compiled-in service catalog
			panic("services: duplicate service name " + catalog[i].Name)
		}
		seen[catalog[i].Name] = true
		if catalog[i].BaseWeight <= 0 {
			//lint:allow nopanic init-time validation of the compiled-in service catalog
			panic("services: non-positive base weight for " + catalog[i].Name)
		}
	}
}

// All returns the full catalog in feature order. The returned slice is
// shared; callers must not modify it.
func All() []Service { return catalog }

// Get returns the service with the given feature index.
func Get(id int) Service { return catalog[id] }

// Names returns the service names in feature order.
func Names() []string {
	names := make([]string, M)
	for i, s := range catalog {
		names[i] = s.Name
	}
	return names
}

// ByName returns the service with the given name.
func ByName(name string) (Service, bool) {
	for _, s := range catalog {
		if s.Name == name {
			return s, true
		}
	}
	return Service{}, false
}

// IDsByCategory returns the feature indices of every service in the given
// category, in feature order.
func IDsByCategory(c Category) []int {
	var out []int
	for _, s := range catalog {
		if s.Category == c {
			out = append(out, s.ID)
		}
	}
	return out
}

// MustID returns the feature index of the named service and panics when the
// name is unknown — reserved for static references to paper-named services.
func MustID(name string) int {
	s, ok := ByName(name)
	if !ok {
		//lint:allow nopanic Must variant for static references to paper-named services
		panic("services: unknown service " + name)
	}
	return s.ID
}
