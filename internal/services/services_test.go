package services

import (
	"testing"
)

func TestCatalogSize(t *testing.T) {
	if len(All()) != M {
		t.Fatalf("catalog size %d, want %d", len(All()), M)
	}
	if M != 73 {
		t.Fatalf("M = %d, the paper uses 73 services", M)
	}
}

func TestIDsAreDense(t *testing.T) {
	for i, s := range All() {
		if s.ID != i {
			t.Fatalf("service %q has ID %d at index %d", s.Name, s.ID, i)
		}
	}
}

func TestNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, n := range Names() {
		if seen[n] {
			t.Fatalf("duplicate service name %q", n)
		}
		seen[n] = true
	}
}

func TestPaperNamedServicesPresent(t *testing.T) {
	// Every service the paper's Figures 5 and 11 discuss must exist.
	named := []string{
		"Spotify", "SoundCloud", "Deezer", "Apple Music",
		"Mappy", "Google Maps", "Waze", "Transportation Websites",
		"Snapchat", "Twitter", "Giphy", "WhatsApp",
		"Netflix", "Disney+", "Amazon Prime Video", "Canal+",
		"Microsoft Teams", "LinkedIn", "Google Play Store",
		"Yahoo", "Sports Websites", "Shopping Websites",
		"Entertainment Websites",
	}
	for _, n := range named {
		if _, ok := ByName(n); !ok {
			t.Fatalf("paper-named service %q missing from catalog", n)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, ok := ByName("Nonexistent App"); ok {
		t.Fatal("ByName should fail for unknown names")
	}
}

func TestMustIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustID("Nonexistent App")
}

func TestGetRoundTrip(t *testing.T) {
	for _, s := range All() {
		if Get(s.ID).Name != s.Name {
			t.Fatalf("Get(%d) mismatch", s.ID)
		}
	}
}

func TestIDsByCategoryPartition(t *testing.T) {
	total := 0
	seen := make(map[int]bool)
	for c := Category(0); int(c) < NumCategories; c++ {
		for _, id := range IDsByCategory(c) {
			if Get(id).Category != c {
				t.Fatalf("service %d category mismatch", id)
			}
			if seen[id] {
				t.Fatalf("service %d in two categories", id)
			}
			seen[id] = true
			total++
		}
	}
	if total != M {
		t.Fatalf("categories cover %d of %d services", total, M)
	}
}

func TestCategoryString(t *testing.T) {
	if Music.String() != "music" || Business.String() != "business" {
		t.Fatal("category labels")
	}
	if Category(99).String() != "category(99)" {
		t.Fatal("out-of-range category label")
	}
}

func TestTemporalShapesAssigned(t *testing.T) {
	// The generator relies on at least one service per key shape.
	shapes := map[TemporalShape]int{}
	for _, s := range All() {
		shapes[s.Shape]++
	}
	for _, want := range []TemporalShape{ShapeFlat, ShapeCommute, ShapeWorkHours, ShapeEvening, ShapeNight, ShapePostEvent} {
		if shapes[want] == 0 {
			t.Fatalf("no service uses shape %d", want)
		}
	}
}

func TestBaseWeightsPositive(t *testing.T) {
	for _, s := range All() {
		if s.BaseWeight <= 0 {
			t.Fatalf("service %q has non-positive weight", s.Name)
		}
	}
}

func TestStreamingOutweighsMessaging(t *testing.T) {
	// Section 4.1: streaming demands are much larger than texting demands.
	var streaming, messaging float64
	for _, id := range IDsByCategory(VideoStreaming) {
		streaming += Get(id).BaseWeight
	}
	for _, id := range IDsByCategory(Messaging) {
		messaging += Get(id).BaseWeight
	}
	if streaming < 3*messaging {
		t.Fatalf("streaming weight %v should dominate messaging %v", streaming, messaging)
	}
}
