package shap

import (
	"math"

	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/rng"
)

// KernelConfig parameterizes the model-agnostic KernelSHAP approximation.
type KernelConfig struct {
	// Samples is the number of random coalitions drawn when exhaustive
	// enumeration (2^M coalitions) is too large. When 2^M <= Samples the
	// solver enumerates every coalition exactly.
	Samples int
	// Seed drives coalition sampling.
	Seed uint64
}

// KernelSHAP approximates Shapley values of an arbitrary model function by
// fitting the weighted linear explanation model of Section 5.1.1 (Eq. 3)
// over coalitions. Missing features are marginalized over the background
// rows (the "replace with a peer feature random value" device the paper
// describes). model must return f for a full feature vector.
func KernelSHAP(model func([]float64) float64, x []float64, background *mat.Dense, cfg KernelConfig) Explanation {
	m := len(x)
	if cfg.Samples <= 0 {
		cfg.Samples = 2048
	}
	r := rng.New(cfg.Seed)

	// Value of a coalition: average model output with coalition features
	// from x and the rest from each background row.
	work := make([]float64, m)
	coalitionValue := func(mask []bool) float64 {
		var sum float64
		for b := 0; b < background.Rows(); b++ {
			bg := background.Row(b)
			for j := 0; j < m; j++ {
				if mask[j] {
					work[j] = x[j]
				} else {
					work[j] = bg[j]
				}
			}
			sum += model(work)
		}
		return sum / float64(background.Rows())
	}

	full := make([]bool, m)
	empty := make([]bool, m)
	for j := range full {
		full[j] = true
	}
	fx := coalitionValue(full)
	base := coalitionValue(empty)

	// Assemble coalition design matrix. Enumerate exhaustively when
	// feasible, otherwise sample sizes from the Shapley kernel
	// distribution and fill coalitions uniformly within a size.
	type row struct {
		mask   []bool
		weight float64
	}
	var rows []row
	exhaustive := m <= 20 && (1<<uint(m)) <= cfg.Samples+2
	if exhaustive {
		for bits := 1; bits < (1<<uint(m))-1; bits++ {
			mask := make([]bool, m)
			size := 0
			for j := 0; j < m; j++ {
				if bits&(1<<uint(j)) != 0 {
					mask[j] = true
					size++
				}
			}
			rows = append(rows, row{mask, kernelWeight(m, size)})
		}
	} else {
		sizeWeights := make([]float64, m-1) // sizes 1..m-1
		for s := 1; s < m; s++ {
			sizeWeights[s-1] = 1 / (float64(s) * float64(m-s))
		}
		for i := 0; i < cfg.Samples; i++ {
			size := 1 + r.Choice(sizeWeights)
			mask := make([]bool, m)
			for _, j := range r.Perm(m)[:size] {
				mask[j] = true
			}
			// Sampling already follows the kernel across sizes; within
			// the solver each draw carries unit weight.
			rows = append(rows, row{mask, 1})
		}
	}

	// Regression with the efficiency constraint eliminated, the standard
	// device: phi_m = (fx - base) - Σ other phi, so the design columns
	// are z_j - z_m for j < m and the target is v(S) - base - z_m(fx-base).
	y := make([]float64, len(rows))
	w := make([]float64, len(rows))
	d2 := mat.NewDense(len(rows), m-1)
	for i, rw := range rows {
		v := coalitionValue(rw.mask)
		zm := 0.0
		if rw.mask[m-1] {
			zm = 1
		}
		for j := 0; j < m-1; j++ {
			zj := 0.0
			if rw.mask[j] {
				zj = 1
			}
			d2.Set(i, j, zj-zm)
		}
		y[i] = v - base - zm*(fx-base)
		w[i] = rw.weight
	}
	phiHead, err := mat.WeightedLeastSquares(d2, y, w)
	phi := make([]float64, m)
	if err == nil {
		var sum float64
		for j := 0; j < m-1; j++ {
			phi[j] = phiHead[j]
			sum += phiHead[j]
		}
		phi[m-1] = (fx - base) - sum
	} else {
		// Degenerate design (e.g. constant model): spread uniformly.
		for j := range phi {
			phi[j] = (fx - base) / float64(m)
		}
	}
	return Explanation{Base: base, Phi: phi}
}

// kernelWeight is the Shapley kernel π(S) = (M-1) / (C(M,|S|)·|S|·(M-|S|)).
func kernelWeight(m, size int) float64 {
	return float64(m-1) / (binom(m, size) * float64(size) * float64(m-size))
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	res := 1.0
	for i := 0; i < k; i++ {
		res = res * float64(n-i) / float64(i+1)
	}
	return res
}

// KernelSHAPForest is a convenience wrapper explaining a forest's class
// probability with KernelSHAP.
func KernelSHAPForest(f *forest.Forest, x []float64, class int, background *mat.Dense, cfg KernelConfig) Explanation {
	return KernelSHAP(func(v []float64) float64 {
		return f.PredictProbs(v)[class]
	}, x, background, cfg)
}

// BruteForceMarginalSHAP computes exact Shapley values under the
// *marginal* (interventional) expectation that KernelSHAP targets:
// coalition value = mean over background rows of f(x_S, b_~S). It verifies
// KernelSHAP on small feature counts.
func BruteForceMarginalSHAP(model func([]float64) float64, x []float64, background *mat.Dense) Explanation {
	m := len(x)
	if m > 16 {
		//lint:allow nopanic guard against exponential blowup in a verification-only helper
		panic("shap: marginal brute force limited to 16 features")
	}
	work := make([]float64, m)
	value := func(mask int) float64 {
		var sum float64
		for b := 0; b < background.Rows(); b++ {
			bg := background.Row(b)
			for j := 0; j < m; j++ {
				if mask&(1<<uint(j)) != 0 {
					work[j] = x[j]
				} else {
					work[j] = bg[j]
				}
			}
			sum += model(work)
		}
		return sum / float64(background.Rows())
	}
	total := 1 << uint(m)
	values := make([]float64, total)
	for mask := 0; mask < total; mask++ {
		values[mask] = value(mask)
	}
	fact := make([]float64, m+1)
	fact[0] = 1
	for i := 1; i <= m; i++ {
		fact[i] = fact[i-1] * float64(i)
	}
	phi := make([]float64, m)
	for i := 0; i < m; i++ {
		bit := 1 << uint(i)
		for mask := 0; mask < total; mask++ {
			if mask&bit != 0 {
				continue
			}
			s := popcount(mask)
			weight := fact[s] * fact[m-s-1] / fact[m]
			phi[i] += weight * (values[mask|bit] - values[mask])
		}
	}
	if math.IsNaN(phi[0]) {
		//lint:allow nopanic numerical invariant of a verification-only helper
		panic("shap: NaN in brute-force marginal Shapley")
	}
	return Explanation{Base: values[0], Phi: phi}
}
