package shap

import (
	"math"

	"repro/internal/forest"
)

// pathExpectation returns E[f(x) | x_S] for a tree under the
// path-dependent convention: features in S follow x, other splits weight
// both children by their training-sample fractions. This is exactly the
// conditional expectation TreeSHAP attributes against.
func pathExpectation(t *forest.Tree, x []float64, inS func(int) bool, class int) float64 {
	var walk func(node int) float64
	walk = func(node int) float64 {
		n := t.Nodes[node]
		if n.Feature < 0 {
			return n.Probs[class]
		}
		if inS(n.Feature) {
			if x[n.Feature] <= n.Threshold {
				return walk(n.Left)
			}
			return walk(n.Right)
		}
		wl := float64(t.Nodes[n.Left].Samples)
		wr := float64(t.Nodes[n.Right].Samples)
		return (wl*walk(n.Left) + wr*walk(n.Right)) / (wl + wr)
	}
	return walk(0)
}

// BruteForceTreeSHAP computes exact Shapley values of a tree by
// enumerating all 2^nFeatures coalitions (Eq. 4 of the paper). It is
// exponential and exists to verify TreeSHAP; keep nFeatures small.
func BruteForceTreeSHAP(t *forest.Tree, x []float64, class int, nFeatures int) Explanation {
	if nFeatures > 20 {
		//lint:allow nopanic guard against exponential blowup in a verification-only helper
		panic("shap: brute force limited to 20 features")
	}
	phi := make([]float64, nFeatures)
	// Precompute factorials.
	fact := make([]float64, nFeatures+1)
	fact[0] = 1
	for i := 1; i <= nFeatures; i++ {
		fact[i] = fact[i-1] * float64(i)
	}
	total := 1 << nFeatures
	// Cache coalition values.
	values := make([]float64, total)
	for mask := 0; mask < total; mask++ {
		m := mask
		values[mask] = pathExpectation(t, x, func(f int) bool { return m&(1<<f) != 0 }, class)
	}
	for i := 0; i < nFeatures; i++ {
		bit := 1 << i
		for mask := 0; mask < total; mask++ {
			if mask&bit != 0 {
				continue
			}
			s := popcount(mask)
			weight := fact[s] * fact[nFeatures-s-1] / fact[nFeatures]
			phi[i] += weight * (values[mask|bit] - values[mask])
		}
	}
	return Explanation{Base: values[0], Phi: phi}
}

// BruteForceForestSHAP averages BruteForceTreeSHAP over the ensemble.
func BruteForceForestSHAP(f *forest.Forest, x []float64, class int, nFeatures int) Explanation {
	phi := make([]float64, nFeatures)
	var base float64
	for _, t := range f.Trees {
		e := BruteForceTreeSHAP(t, x, class, nFeatures)
		base += e.Base
		for i, p := range e.Phi {
			phi[i] += p
		}
	}
	inv := 1 / float64(len(f.Trees))
	for i := range phi {
		phi[i] *= inv
	}
	return Explanation{Base: base * inv, Phi: phi}
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// MaxAbsDiff returns the largest absolute difference between two Shapley
// vectors — the verification metric of the ablation bench.
func MaxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}
