package shap

import (
	"context"

	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/pipe"
	"repro/internal/stats"
)

// FeatureImportance summarizes one feature's role in a class's SHAP
// beeswarm (Fig. 5): the mean |phi| ranking metric, and the correlation
// between feature values and Shapley values, whose sign separates
// over-utilization (positive: high RSCA pushes towards the cluster) from
// under-utilization (negative).
type FeatureImportance struct {
	// Feature is the feature (service) index.
	Feature int
	// MeanAbs is the mean absolute Shapley value — the beeswarm ranking
	// key ("applications with high coefficient values influence cluster
	// inference more").
	MeanAbs float64
	// ValueCorrelation is the Pearson correlation between the feature's
	// values and its Shapley values across samples. Positive means high
	// feature values push the prediction towards the class.
	ValueCorrelation float64
	// MeanValueWhenPositive is the mean feature value among samples whose
	// Shapley value is positive; it directly answers "does membership
	// require over- or under-utilizing this service?".
	MeanValueWhenPositive float64
}

// ClassSummary is the full beeswarm summary of one class (cluster).
type ClassSummary struct {
	Class int
	// Importances is sorted by descending MeanAbs.
	Importances []FeatureImportance
	// Points holds the raw beeswarm scatter (feature → samples' (value,
	// phi) pairs) for the features kept by topK.
	Points map[int][]BeeswarmPoint
}

// BeeswarmPoint is one sample's (feature value, Shapley value) pair.
type BeeswarmPoint struct {
	Value float64
	Phi   float64
}

// Summarize computes per-class SHAP summaries for the given samples using
// TreeSHAP over the surrogate forest. sampleIdx selects the explained rows
// (nil = all rows); topK bounds the per-class feature list (0 = all, the
// paper shows 25).
func Summarize(f *forest.Forest, x *mat.Dense, sampleIdx []int, topK int) []ClassSummary {
	if sampleIdx == nil {
		sampleIdx = make([]int, x.Rows())
		for i := range sampleIdx {
			sampleIdx[i] = i
		}
	}
	m := x.Cols()
	nSamples := len(sampleIdx)

	// phiPerClass[c] is an nSamples × m matrix of Shapley values.
	phiPerClass := make([]*mat.Dense, f.Classes)
	for c := range phiPerClass {
		phiPerClass[c] = mat.NewDense(max(nSamples, 1), m)
	}
	for si, rowIdx := range sampleIdx {
		row := x.Row(rowIdx)
		for c := 0; c < f.Classes; c++ {
			e := ForestSHAP(f, row, c, m)
			copy(phiPerClass[c].Row(si), e.Phi)
		}
	}
	return summarizeFromPhi(x, sampleIdx, phiPerClass, topK)
}

func summarizeFromPhi(x *mat.Dense, sampleIdx []int, phiPerClass []*mat.Dense, topK int) []ClassSummary {
	m := x.Cols()
	nSamples := len(sampleIdx)
	out := make([]ClassSummary, len(phiPerClass))
	vals := make([]float64, nSamples)
	phis := make([]float64, nSamples)
	for c := range phiPerClass {
		imps := make([]FeatureImportance, m)
		for j := 0; j < m; j++ {
			var absSum, posValSum float64
			posCount := 0
			for si, rowIdx := range sampleIdx {
				v := x.At(rowIdx, j)
				p := phiPerClass[c].At(si, j)
				vals[si] = v
				phis[si] = p
				absSum += abs(p)
				if p > 0 {
					posValSum += v
					posCount++
				}
			}
			imp := FeatureImportance{
				Feature:          j,
				MeanAbs:          absSum / float64(max(nSamples, 1)),
				ValueCorrelation: stats.PearsonCorrelation(vals, phis),
			}
			if posCount > 0 {
				imp.MeanValueWhenPositive = posValSum / float64(posCount)
			}
			imps[j] = imp
		}
		// Sort by descending mean |phi| (stable by feature id).
		order := make([]float64, m)
		for j, im := range imps {
			order[j] = im.MeanAbs
		}
		rank := stats.RankDescending(order)
		sorted := make([]FeatureImportance, m)
		for i, j := range rank {
			sorted[i] = imps[j]
		}
		if topK > 0 && topK < len(sorted) {
			sorted = sorted[:topK]
		}
		points := make(map[int][]BeeswarmPoint, len(sorted))
		for _, im := range sorted {
			pts := make([]BeeswarmPoint, nSamples)
			for si, rowIdx := range sampleIdx {
				pts[si] = BeeswarmPoint{
					Value: x.At(rowIdx, im.Feature),
					Phi:   phiPerClass[c].At(si, im.Feature),
				}
			}
			points[im.Feature] = pts
		}
		out[c] = ClassSummary{Class: c, Importances: sorted, Points: points}
	}
	return out
}

// SummarizeClass computes the beeswarm summary of a single class over the
// given samples, explaining only that class's probability — the shape of
// the paper's per-cluster Fig. 5 panels. It is far cheaper than Summarize
// when only some classes matter.
func SummarizeClass(f *forest.Forest, x *mat.Dense, class int, sampleIdx []int, topK int) ClassSummary {
	if sampleIdx == nil {
		sampleIdx = make([]int, x.Rows())
		for i := range sampleIdx {
			sampleIdx[i] = i
		}
	}
	m := x.Cols()
	phi := mat.NewDense(max(len(sampleIdx), 1), m)
	// Each sample's explanation is independent and writes its own row, so
	// the shared-pool computation is deterministic.
	pipe.Shared().ForEach(context.Background(), len(sampleIdx), func(si int) {
		e := ForestSHAP(f, x.Row(sampleIdx[si]), class, m)
		copy(phi.Row(si), e.Phi)
	})
	phiPerClass := make([]*mat.Dense, class+1)
	phiPerClass[class] = phi
	for c := range phiPerClass {
		if phiPerClass[c] == nil {
			phiPerClass[c] = mat.NewDense(max(len(sampleIdx), 1), m)
		}
	}
	sums := summarizeFromPhi(x, sampleIdx, phiPerClass, topK)
	return sums[class]
}

// OverUtilized reports whether the class summary indicates the feature
// characterizes the class through over-utilization (high values push
// towards membership) rather than under-utilization.
func (s ClassSummary) OverUtilized(feature int) (over bool, found bool) {
	for _, im := range s.Importances {
		if im.Feature == feature {
			return im.ValueCorrelation > 0, true
		}
	}
	return false, false
}

// Rank returns the importance rank (0 = most important) of a feature in
// the class summary, or -1 when it is not among the kept features.
func (s ClassSummary) Rank(feature int) int {
	for i, im := range s.Importances {
		if im.Feature == feature {
			return i
		}
	}
	return -1
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
