// Package shap implements the explainable-ML layer of Section 5.1: Shapley
// additive explanations for the surrogate random forest. It provides the
// fast path-dependent TreeSHAP algorithm (Lundberg et al.), the
// model-agnostic KernelSHAP approximation, an exponential-time brute-force
// Shapley evaluator used to verify both, and the per-cluster beeswarm
// summaries behind Fig. 5.
package shap

import (
	"fmt"

	"repro/internal/forest"
)

// Explanation is the additive decomposition of one prediction:
// f(x) ≈ Base + Σ Phi[i] (exact for TreeSHAP's path-dependent expectation).
type Explanation struct {
	// Base is the expected model output over the training distribution.
	Base float64
	// Phi holds one Shapley value per feature.
	Phi []float64
}

// Sum returns Base plus all feature contributions.
func (e Explanation) Sum() float64 {
	s := e.Base
	for _, p := range e.Phi {
		s += p
	}
	return s
}

// pathElement is one entry of the TreeSHAP unique path.
type pathElement struct {
	feature      int
	zeroFraction float64
	oneFraction  float64
	pweight      float64
}

// TreeSHAP computes path-dependent SHAP values of a single CART tree for
// the probability of the given class at x. The result satisfies local
// accuracy: Base + ΣPhi equals the tree's predicted class probability.
func TreeSHAP(t *forest.Tree, x []float64, class int, nFeatures int) Explanation {
	if class < 0 || class >= t.Classes {
		//lint:allow nopanic class index comes from the trained forest, not external input
		panic(fmt.Sprintf("shap: class %d out of range", class))
	}
	phi := make([]float64, nFeatures)
	// Arena for nested unique paths: depth d stores its copy at offset
	// d*(d+1)/2, mirroring the reference implementation's layout.
	maxDepth := t.Depth() + 2
	arena := make([]pathElement, (maxDepth+1)*(maxDepth+2)/2)
	ts := &treeShap{tree: t, x: x, class: class, phi: phi, arena: arena}
	ts.recurse(0, 0, 0, 1, 1, -1)
	return Explanation{Base: expectedValue(t, class), Phi: phi}
}

// expectedValue returns the sample-weighted mean leaf value — the
// path-dependent E[f(x)].
func expectedValue(t *forest.Tree, class int) float64 {
	rootSamples := float64(t.Nodes[0].Samples)
	var sum float64
	for _, n := range t.Nodes {
		if n.Feature < 0 {
			sum += float64(n.Samples) / rootSamples * n.Probs[class]
		}
	}
	return sum
}

type treeShap struct {
	tree  *forest.Tree
	x     []float64
	class int
	phi   []float64
	arena []pathElement
}

// extendPath appends a new (zeroFraction, oneFraction, feature) element to
// the unique path and updates the permutation weights.
func extendPath(path []pathElement, uniqueDepth int, zeroFraction, oneFraction float64, feature int) {
	path[uniqueDepth] = pathElement{
		feature:      feature,
		zeroFraction: zeroFraction,
		oneFraction:  oneFraction,
	}
	if uniqueDepth == 0 {
		path[0].pweight = 1
	} else {
		path[uniqueDepth].pweight = 0
	}
	for i := uniqueDepth - 1; i >= 0; i-- {
		path[i+1].pweight += oneFraction * path[i].pweight * float64(i+1) / float64(uniqueDepth+1)
		path[i].pweight = zeroFraction * path[i].pweight * float64(uniqueDepth-i) / float64(uniqueDepth+1)
	}
}

// unwindPath removes the element at pathIndex from the unique path,
// restoring the permutation weights to their pre-extension state.
func unwindPath(path []pathElement, uniqueDepth, pathIndex int) {
	oneFraction := path[pathIndex].oneFraction
	zeroFraction := path[pathIndex].zeroFraction
	nextOnePortion := path[uniqueDepth].pweight

	for i := uniqueDepth - 1; i >= 0; i-- {
		if oneFraction != 0 {
			tmp := path[i].pweight
			path[i].pweight = nextOnePortion * float64(uniqueDepth+1) / (float64(i+1) * oneFraction)
			nextOnePortion = tmp - path[i].pweight*zeroFraction*float64(uniqueDepth-i)/float64(uniqueDepth+1)
		} else {
			path[i].pweight = path[i].pweight * float64(uniqueDepth+1) / (zeroFraction * float64(uniqueDepth-i))
		}
	}
	for i := pathIndex; i < uniqueDepth; i++ {
		path[i].feature = path[i+1].feature
		path[i].zeroFraction = path[i+1].zeroFraction
		path[i].oneFraction = path[i+1].oneFraction
	}
}

// unwoundPathSum returns the total permutation weight if the element at
// pathIndex were unwound, without mutating the path.
func unwoundPathSum(path []pathElement, uniqueDepth, pathIndex int) float64 {
	oneFraction := path[pathIndex].oneFraction
	zeroFraction := path[pathIndex].zeroFraction
	nextOnePortion := path[uniqueDepth].pweight
	var total float64
	for i := uniqueDepth - 1; i >= 0; i-- {
		if oneFraction != 0 {
			tmp := nextOnePortion * float64(uniqueDepth+1) / (float64(i+1) * oneFraction)
			total += tmp
			nextOnePortion = path[i].pweight - tmp*zeroFraction*float64(uniqueDepth-i)/float64(uniqueDepth+1)
		} else {
			total += path[i].pweight / zeroFraction * float64(uniqueDepth+1) / float64(uniqueDepth-i)
		}
	}
	return total
}

// recurse walks the tree keeping the unique path of features split on so
// far. arenaOffset indexes the parent's path copy; each level copies it
// forward so unwinding in one branch cannot corrupt the other.
func (s *treeShap) recurse(nodeIdx, arenaOffset, uniqueDepth int, parentZero, parentOne float64, parentFeature int) {
	// Copy the parent path into this level's arena segment and extend it.
	childOffset := arenaOffset + uniqueDepth + 1
	path := s.arena[childOffset : childOffset+uniqueDepth+2]
	copy(path, s.arena[arenaOffset:arenaOffset+uniqueDepth+1])
	extendPath(path, uniqueDepth, parentZero, parentOne, parentFeature)

	node := s.tree.Nodes[nodeIdx]
	if node.Feature < 0 {
		// Leaf: attribute to every feature on the unique path.
		value := node.Probs[s.class]
		for i := 1; i <= uniqueDepth; i++ {
			w := unwoundPathSum(path, uniqueDepth, i)
			el := path[i]
			s.phi[el.feature] += w * (el.oneFraction - el.zeroFraction) * value
		}
		return
	}

	var hot, cold int
	if s.x[node.Feature] <= node.Threshold {
		hot, cold = node.Left, node.Right
	} else {
		hot, cold = node.Right, node.Left
	}
	w := float64(node.Samples)
	hotZero := float64(s.tree.Nodes[hot].Samples) / w
	coldZero := float64(s.tree.Nodes[cold].Samples) / w
	incomingZero, incomingOne := 1.0, 1.0

	// If this feature already appears on the path, unwind the previous
	// occurrence and inherit its fractions.
	pathIndex := 0
	for ; pathIndex <= uniqueDepth; pathIndex++ {
		if path[pathIndex].feature == node.Feature {
			break
		}
	}
	depth := uniqueDepth
	if pathIndex != uniqueDepth+1 {
		incomingZero = path[pathIndex].zeroFraction
		incomingOne = path[pathIndex].oneFraction
		unwindPath(path, depth, pathIndex)
		depth--
	}

	s.recurse(hot, childOffset, depth+1, hotZero*incomingZero, incomingOne, node.Feature)
	s.recurse(cold, childOffset, depth+1, coldZero*incomingZero, 0, node.Feature)
}

// ForestSHAP averages TreeSHAP over every tree of the forest — valid
// because the forest's class probability is the mean of tree outputs and
// Shapley values are linear in the model.
func ForestSHAP(f *forest.Forest, x []float64, class int, nFeatures int) Explanation {
	phi := make([]float64, nFeatures)
	var base float64
	for _, t := range f.Trees {
		e := TreeSHAP(t, x, class, nFeatures)
		base += e.Base
		for i, p := range e.Phi {
			phi[i] += p
		}
	}
	inv := 1 / float64(len(f.Trees))
	for i := range phi {
		phi[i] *= inv
	}
	return Explanation{Base: base * inv, Phi: phi}
}
