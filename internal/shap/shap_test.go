package shap

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/rng"
)

// trainToy builds a small forest on a separable 2-class problem.
func trainToy(nFeatures, trees int, seed uint64) (*forest.Forest, *mat.Dense, []int) {
	r := rng.New(seed)
	n := 120
	x := mat.NewDense(n, nFeatures)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		y[i] = c
		row := x.Row(i)
		for j := range row {
			row[j] = r.Normal()
		}
		// Class signal on features 0 and 1.
		if c == 1 {
			row[0] += 2.5
			row[1] -= 2
		}
	}
	f := forest.Train(x, y, 2, forest.Config{Trees: trees, Seed: seed, MaxDepth: 5})
	return f, x, y
}

func TestTreeSHAPLocalAccuracy(t *testing.T) {
	f, x, _ := trainToy(5, 10, 1)
	for _, tree := range f.Trees {
		for i := 0; i < 20; i++ {
			row := x.Row(i)
			for class := 0; class < 2; class++ {
				e := TreeSHAP(tree, row, class, x.Cols())
				pred := tree.PredictProbs(row)[class]
				if math.Abs(e.Sum()-pred) > 1e-9 {
					t.Fatalf("local accuracy violated: base+Σphi=%v, f(x)=%v", e.Sum(), pred)
				}
			}
		}
	}
}

func TestTreeSHAPMatchesBruteForce(t *testing.T) {
	f, x, _ := trainToy(6, 8, 3)
	for _, tree := range f.Trees[:4] {
		for i := 0; i < 10; i++ {
			row := x.Row(i)
			fast := TreeSHAP(tree, row, 1, x.Cols())
			slow := BruteForceTreeSHAP(tree, row, 1, x.Cols())
			if math.Abs(fast.Base-slow.Base) > 1e-9 {
				t.Fatalf("base mismatch: %v vs %v", fast.Base, slow.Base)
			}
			if d := MaxAbsDiff(fast.Phi, slow.Phi); d > 1e-9 {
				t.Fatalf("TreeSHAP deviates from brute force by %v\nfast=%v\nslow=%v", d, fast.Phi, slow.Phi)
			}
		}
	}
}

func TestTreeSHAPRepeatedFeatureSplits(t *testing.T) {
	// Deep tree on few features forces repeated splits on the same
	// feature along one path — the trickiest TreeSHAP code path.
	r := rng.New(7)
	n := 200
	x := mat.NewDense(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		v := r.Float64() * 10
		x.Set(i, 0, v)
		x.Set(i, 1, r.Float64())
		// Stripes: class flips along feature 0.
		y[i] = int(v) % 2
	}
	tree := forest.BuildTree(x, y, nil, 2, forest.TreeConfig{}, rng.New(8))
	for i := 0; i < 30; i++ {
		row := x.Row(i)
		fast := TreeSHAP(tree, row, 1, 2)
		slow := BruteForceTreeSHAP(tree, row, 1, 2)
		if d := MaxAbsDiff(fast.Phi, slow.Phi); d > 1e-9 {
			t.Fatalf("repeated-split TreeSHAP off by %v", d)
		}
		pred := tree.PredictProbs(row)[1]
		if math.Abs(fast.Sum()-pred) > 1e-9 {
			t.Fatalf("local accuracy with repeated splits: %v vs %v", fast.Sum(), pred)
		}
	}
}

func TestForestSHAPLocalAccuracy(t *testing.T) {
	f, x, _ := trainToy(5, 25, 11)
	for i := 0; i < 15; i++ {
		row := x.Row(i)
		for class := 0; class < 2; class++ {
			e := ForestSHAP(f, row, class, x.Cols())
			pred := f.PredictProbs(row)[class]
			if math.Abs(e.Sum()-pred) > 1e-9 {
				t.Fatalf("forest local accuracy: %v vs %v", e.Sum(), pred)
			}
		}
	}
}

func TestForestSHAPSignalFeaturesDominate(t *testing.T) {
	f, x, y := trainToy(8, 30, 13)
	meanAbs := make([]float64, 8)
	for i := 0; i < 60; i++ {
		e := ForestSHAP(f, x.Row(i), 1, 8)
		for j, p := range e.Phi {
			meanAbs[j] += math.Abs(p)
		}
	}
	_ = y
	// Features 0 and 1 carry the class signal; every noise feature must
	// matter less.
	for j := 2; j < 8; j++ {
		if meanAbs[j] >= meanAbs[0] || meanAbs[j] >= meanAbs[1] {
			t.Fatalf("noise feature %d importance %v rivals signal (%v, %v)",
				j, meanAbs[j], meanAbs[0], meanAbs[1])
		}
	}
}

func TestSHAPClassesSumToZeroAcrossProbabilities(t *testing.T) {
	// Probabilities sum to 1, so per-feature Shapley values summed over
	// classes must vanish.
	f, x, _ := trainToy(5, 12, 17)
	for i := 0; i < 10; i++ {
		row := x.Row(i)
		e0 := ForestSHAP(f, row, 0, 5)
		e1 := ForestSHAP(f, row, 1, 5)
		for j := 0; j < 5; j++ {
			if math.Abs(e0.Phi[j]+e1.Phi[j]) > 1e-9 {
				t.Fatalf("class Shapley values don't cancel at feature %d", j)
			}
		}
		if math.Abs(e0.Base+e1.Base-1) > 1e-9 {
			t.Fatal("bases should sum to 1")
		}
	}
}

func TestKernelSHAPMatchesMarginalBruteForce(t *testing.T) {
	f, x, _ := trainToy(5, 6, 19)
	background := mat.NewDense(8, 5)
	for i := 0; i < 8; i++ {
		copy(background.Row(i), x.Row(i*3))
	}
	model := func(v []float64) float64 { return f.PredictProbs(v)[1] }
	for i := 0; i < 5; i++ {
		row := x.Row(40 + i)
		// Exhaustive kernel (2^5 coalitions fit under the sample budget)
		// must match exact marginal Shapley.
		kern := KernelSHAP(model, row, background, KernelConfig{Samples: 64, Seed: 1})
		exact := BruteForceMarginalSHAP(model, row, background)
		if math.Abs(kern.Base-exact.Base) > 1e-6 {
			t.Fatalf("kernel base %v vs %v", kern.Base, exact.Base)
		}
		if d := MaxAbsDiff(kern.Phi, exact.Phi); d > 1e-6 {
			t.Fatalf("KernelSHAP off exact marginal Shapley by %v", d)
		}
	}
}

func TestKernelSHAPEfficiency(t *testing.T) {
	// Base + Σphi must equal f(x) marginalized (efficiency), including in
	// sampling mode.
	f, x, _ := trainToy(7, 6, 23)
	background := mat.NewDense(5, 7)
	for i := 0; i < 5; i++ {
		copy(background.Row(i), x.Row(i*2))
	}
	model := func(v []float64) float64 { return f.PredictProbs(v)[0] }
	row := x.Row(50)
	e := KernelSHAP(model, row, background, KernelConfig{Samples: 40, Seed: 9})
	if math.Abs(e.Sum()-model(row)) > 1e-9 {
		t.Fatalf("efficiency violated: %v vs %v", e.Sum(), model(row))
	}
}

func TestKernelSHAPLinearModelExact(t *testing.T) {
	// For a linear model with an all-zeros background, phi_j = w_j x_j.
	weights := []float64{2, -1, 0.5, 0}
	model := func(v []float64) float64 {
		var s float64
		for j, w := range weights {
			s += w * v[j]
		}
		return s
	}
	background := mat.NewDense(1, 4) // zeros
	x := []float64{1, 2, -3, 4}
	e := KernelSHAP(model, x, background, KernelConfig{Samples: 64, Seed: 2})
	want := []float64{2, -2, -1.5, 0}
	for j := range want {
		if math.Abs(e.Phi[j]-want[j]) > 1e-6 {
			t.Fatalf("linear model phi = %v, want %v", e.Phi, want)
		}
	}
}

func TestBruteForcePanicsOnLargeM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f, x, _ := trainToy(5, 1, 1)
	BruteForceTreeSHAP(f.Trees[0], x.Row(0), 0, 25)
}

func TestSummarize(t *testing.T) {
	f, x, y := trainToy(6, 20, 29)
	// Explain only class-1 samples for class 1, like the per-cluster
	// beeswarms of Fig. 5.
	var idx []int
	for i, c := range y {
		if c == 1 {
			idx = append(idx, i)
		}
	}
	sums := Summarize(f, x, idx, 3)
	if len(sums) != 2 {
		t.Fatalf("%d summaries", len(sums))
	}
	s1 := sums[1]
	if len(s1.Importances) != 3 {
		t.Fatalf("topK not applied: %d", len(s1.Importances))
	}
	// Importances sorted descending.
	for i := 1; i < len(s1.Importances); i++ {
		if s1.Importances[i].MeanAbs > s1.Importances[i-1].MeanAbs {
			t.Fatal("importances not sorted")
		}
	}
	// Signal features 0 and 1 should occupy the top two slots.
	top2 := map[int]bool{s1.Importances[0].Feature: true, s1.Importances[1].Feature: true}
	if !top2[0] || !top2[1] {
		t.Fatalf("signal features not on top: %+v", s1.Importances[:2])
	}
	// Class 1 has feature 0 shifted +2.5: high values → membership, so
	// the value correlation should be positive (over-utilization).
	over, found := s1.OverUtilized(0)
	if !found || !over {
		t.Fatal("feature 0 should read as over-utilized for class 1")
	}
	// Feature 1 shifted -2: under-utilization.
	over, found = s1.OverUtilized(1)
	if !found || over {
		t.Fatal("feature 1 should read as under-utilized for class 1")
	}
	// Beeswarm points present for kept features.
	if len(s1.Points[s1.Importances[0].Feature]) != len(idx) {
		t.Fatal("beeswarm points missing")
	}
	if s1.Rank(s1.Importances[0].Feature) != 0 {
		t.Fatal("Rank of top feature should be 0")
	}
	if s1.Rank(99) != -1 {
		t.Fatal("Rank of absent feature should be -1")
	}
}

// Property: TreeSHAP satisfies local accuracy on random trees and inputs.
func TestTreeSHAPLocalAccuracyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 40
		x := mat.NewDense(n, 4)
		y := make([]int, n)
		for i := 0; i < n; i++ {
			y[i] = r.Intn(3)
			for j := 0; j < 4; j++ {
				x.Set(i, j, r.Normal())
			}
		}
		tree := forest.BuildTree(x, y, nil, 3, forest.TreeConfig{}, rng.New(seed+1))
		for i := 0; i < 5; i++ {
			row := x.Row(r.Intn(n))
			class := r.Intn(3)
			e := TreeSHAP(tree, row, class, 4)
			if math.Abs(e.Sum()-tree.PredictProbs(row)[class]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: TreeSHAP equals brute force on random small trees.
func TestTreeSHAPBruteForceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 30
		x := mat.NewDense(n, 3)
		y := make([]int, n)
		for i := 0; i < n; i++ {
			y[i] = r.Intn(2)
			for j := 0; j < 3; j++ {
				x.Set(i, j, r.Normal())
			}
		}
		tree := forest.BuildTree(x, y, nil, 2, forest.TreeConfig{MaxDepth: 6}, rng.New(seed+1))
		row := x.Row(r.Intn(n))
		fast := TreeSHAP(tree, row, 1, 3)
		slow := BruteForceTreeSHAP(tree, row, 1, 3)
		return MaxAbsDiff(fast.Phi, slow.Phi) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTreeSHAP(b *testing.B) {
	f, x, _ := trainToy(20, 1, 1)
	tree := f.Trees[0]
	row := x.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = TreeSHAP(tree, row, 1, 20)
	}
}

func BenchmarkForestSHAP100Trees(b *testing.B) {
	f, x, _ := trainToy(20, 100, 1)
	row := x.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ForestSHAP(f, row, 1, 20)
	}
}

func BenchmarkKernelSHAP(b *testing.B) {
	f, x, _ := trainToy(10, 10, 1)
	background := mat.NewDense(5, 10)
	for i := 0; i < 5; i++ {
		copy(background.Row(i), x.Row(i))
	}
	row := x.Row(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = KernelSHAPForest(f, row, 1, background, KernelConfig{Samples: 200, Seed: 1})
	}
}
