// Package envmodel captures the indoor-environment side of the study: the
// eleven environment categories of Table 1 with their antenna counts, the
// antenna-name classification used in Section 5.2.1 ("inspecting the names
// of the antennas, applying simple string manipulation to extract
// keywords"), and the ground-truth service-preference archetypes that the
// synthetic network is generated from.
//
// The archetypes encode the *generative* structure the paper infers from
// the data: commuters at metro and train stations over-use music and
// navigation, corporate offices over-use business tools, stadium crowds
// over-use content sharing and sports media, and so on. The analysis
// pipeline never sees archetype labels — it must re-discover them from the
// traffic alone, exactly as the paper's unsupervised approach does.
package envmodel

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/services"
)

// EnvType is one of the eleven indoor environment categories of Table 1.
type EnvType int

const (
	Metro EnvType = iota
	Train
	Airport
	Workspace
	Commercial
	Stadium
	Expo
	Hotel
	Hospital
	Tunnel
	PublicBuilding
	numEnvTypes
)

// NumEnvTypes is the number of indoor environment categories.
const NumEnvTypes = int(numEnvTypes)

var envNames = [...]string{
	Metro:          "Metro",
	Train:          "Trains",
	Airport:        "Airports",
	Workspace:      "Workspaces",
	Commercial:     "Commercial Centers",
	Stadium:        "Stadiums",
	Expo:           "Expo Centers",
	Hotel:          "Hotels",
	Hospital:       "Hospitals",
	Tunnel:         "Tunnels",
	PublicBuilding: "Public Buildings",
}

// String returns the Table 1 display name of the environment.
func (e EnvType) String() string {
	if e < 0 || int(e) >= len(envNames) {
		return fmt.Sprintf("env(%d)", int(e))
	}
	return envNames[e]
}

// AntennaCount returns N_env, the number of indoor antennas per environment
// in Table 1 of the paper. The total is the paper's N = 4,762.
func (e EnvType) AntennaCount() int { return table1Counts[e] }

var table1Counts = [...]int{
	Metro:          1794,
	Train:          434,
	Airport:        187,
	Workspace:      774,
	Commercial:     469,
	Stadium:        451,
	Expo:           230,
	Hotel:          28,
	Hospital:       53,
	Tunnel:         220,
	PublicBuilding: 122,
}

// TotalIndoorAntennas is the Table 1 grand total (the paper's N).
const TotalIndoorAntennas = 4762

// AllEnvTypes returns the eleven environment categories in Table 1 order.
func AllEnvTypes() []EnvType {
	out := make([]EnvType, NumEnvTypes)
	for i := range out {
		out[i] = EnvType(i)
	}
	return out
}

// nameKeywords maps the keywords that appear inside base-station names to
// environment types, reproducing the string-manipulation classification of
// Section 5.2.1.
var nameKeywords = []struct {
	keyword string
	env     EnvType
}{
	{"METRO", Metro},
	{"RER", Metro},
	{"SUBWAY", Metro},
	{"GARE", Train},
	{"STATION", Train},
	{"AEROPORT", Airport},
	{"AIRPORT", Airport},
	{"ORLY", Airport},
	{"CDG", Airport},
	{"BUREAU", Workspace},
	{"OFFICE", Workspace},
	{"SIEGE", Workspace},
	{"USINE", Workspace},
	{"CENTRE-CCIAL", Commercial},
	{"MALL", Commercial},
	{"MAGASIN", Commercial},
	{"BOUTIQUE", Commercial},
	{"STADE", Stadium},
	{"STADIUM", Stadium},
	{"ARENA", Stadium},
	{"EXPO", Expo},
	{"PARC-EXPO", Expo},
	{"CONGRES", Expo},
	{"HOTEL", Hotel},
	{"HOPITAL", Hospital},
	{"HOSPITAL", Hospital},
	{"CHU", Hospital},
	{"TUNNEL", Tunnel},
	{"UNIVERSITE", PublicBuilding},
	{"MUSEE", PublicBuilding},
	{"MAIRIE", PublicBuilding},
}

// ClassifyName extracts the environment type from a base-station name by
// keyword matching, as the paper does. It returns false when no keyword is
// recognized.
func ClassifyName(name string) (EnvType, bool) {
	upper := strings.ToUpper(name)
	for _, kw := range nameKeywords {
		if strings.Contains(upper, kw.keyword) {
			return kw.env, true
		}
	}
	return 0, false
}

// NameFor builds a base-station name embedding the environment keyword, the
// site label and antenna ordinal — the inverse of ClassifyName, used by the
// generator so the classification path is exercised end to end.
func NameFor(env EnvType, city string, site, antenna int) string {
	var kw string
	switch env {
	case Metro:
		kw = "METRO"
	case Train:
		kw = "GARE"
	case Airport:
		kw = "AEROPORT"
	case Workspace:
		kw = "BUREAU"
	case Commercial:
		kw = "CENTRE-CCIAL"
	case Stadium:
		kw = "STADE"
	case Expo:
		kw = "EXPO"
	case Hotel:
		kw = "HOTEL"
	case Hospital:
		kw = "HOPITAL"
	case Tunnel:
		kw = "TUNNEL"
	case PublicBuilding:
		kw = "UNIVERSITE"
	default:
		kw = "SITE"
	}
	return fmt.Sprintf("%s_%s_S%03d_A%02d", strings.ToUpper(city), kw, site, antenna)
}

// Group is the dendrogram branch color of Figure 3.
type Group int

const (
	GroupOrange Group = iota // clusters 0, 4, 7 — metro & train commuters
	GroupGreen               // clusters 5, 6, 8 — event venues & low-usage
	GroupRed                 // clusters 1, 2, 3 — general, commercial, work
)

// String returns the paper's color label for the group.
func (g Group) String() string {
	switch g {
	case GroupOrange:
		return "orange"
	case GroupGreen:
		return "green"
	case GroupRed:
		return "red"
	}
	return fmt.Sprintf("group(%d)", int(g))
}

// NumArchetypes is the number of ground-truth profiles, equal to the
// paper's optimal cluster count k = 9.
const NumArchetypes = 9

// Archetype is a ground-truth mobile-service utilization profile. The
// Multipliers vector scales the global service popularity when composing an
// antenna's service mix: > 1 means the archetype over-uses the service,
// < 1 under-uses it.
type Archetype struct {
	// ID matches the paper's cluster numbering (0-8).
	ID int
	// Group is the dendrogram branch the cluster belongs to.
	Group Group
	// Label is a human-readable description.
	Label string
	// Multipliers has one entry per service (len = services.M).
	Multipliers []float64
	// Template names the temporal activity profile of antennas with this
	// archetype (resolved by the temporal package).
	Template string
	// VolumeMu/VolumeSigma parameterize the lognormal total-volume draw of
	// an antenna carrying this archetype.
	VolumeMu, VolumeSigma float64
}

// mult is a keyed multiplier adjustment during archetype construction.
type mult struct {
	name string
	v    float64
}

func buildMultipliers(categoryDefaults map[services.Category]float64, overrides []mult) []float64 {
	m := make([]float64, services.M)
	for i, s := range services.All() {
		v := 1.0
		if d, ok := categoryDefaults[s.Category]; ok {
			v = d
		}
		m[i] = v
	}
	for _, o := range overrides {
		m[services.MustID(o.name)] = o.v
	}
	return m
}

// Archetypes returns the nine ground-truth profiles indexed by cluster ID.
// The construction follows the paper's Section 5.1.2 findings cluster by
// cluster.
func Archetypes() []Archetype {
	arch := make([]Archetype, NumArchetypes)

	// --- Orange group: commuters at metro and train stations. ---

	// Cluster 0: Paris metro/trains. Over music, navigation/transport and
	// entertainment (Yahoo, entertainment/shopping/sports websites).
	arch[0] = Archetype{
		ID: 0, Group: GroupOrange, Label: "paris-commute-entertainment",
		Template: "commute", VolumeMu: 8.3, VolumeSigma: 0.8,
		Multipliers: buildMultipliers(map[services.Category]float64{
			services.Music:          4.0,
			services.Navigation:     3.5,
			services.Transport:      3.5,
			services.News:           1.8,
			services.Entertainment:  2.2,
			services.WebPortal:      2.0,
			services.Sports:         1.6,
			services.Shopping:       1.5,
			services.Gaming:         1.5,
			services.Messaging:      1.4,
			services.VideoStreaming: 0.5,
			services.Business:       0.45,
			services.Wellbeing:      1.3,
		}, []mult{
			{"Waze", 0.5}, // drivers, not metro riders
		}),
	}

	// Cluster 4: Paris metro/trains without the entertainment tail.
	arch[4] = Archetype{
		ID: 4, Group: GroupOrange, Label: "paris-commute-focused",
		Template: "commute", VolumeMu: 8.1, VolumeSigma: 0.8,
		Multipliers: buildMultipliers(map[services.Category]float64{
			services.Music:          4.2,
			services.Navigation:     3.8,
			services.Transport:      3.8,
			services.News:           1.5,
			services.Entertainment:  0.35,
			services.WebPortal:      0.4,
			services.Shopping:       0.5,
			services.Sports:         0.6,
			services.Gaming:         1.5,
			services.Messaging:      1.4,
			services.VideoStreaming: 0.5,
			services.Business:       0.45,
		}, []mult{
			{"Waze", 0.5},
			{"Twitter", 0.55}, // paper: Twitter usage comparatively mitigated in cluster 4
		}),
	}

	// Cluster 7: non-capital metros (Lille, Lyon, Rennes, Toulouse). Music
	// strong but the complex-navigation apps of Paris fall into
	// under-utilization.
	arch[7] = Archetype{
		ID: 7, Group: GroupOrange, Label: "regional-metro-commute",
		Template: "commute-regional", VolumeMu: 7.6, VolumeSigma: 0.8,
		Multipliers: buildMultipliers(map[services.Category]float64{
			services.Music:          4.2,
			services.Navigation:     0.45,
			services.Transport:      0.4,
			services.News:           1.6,
			services.Entertainment:  1.2,
			services.Gaming:         1.5,
			services.Messaging:      1.4,
			services.VideoStreaming: 0.7,
			services.Business:       0.7,
		}, []mult{
			{"Mappy", 0.25},
			{"Transportation Websites", 0.25},
			{"Twitter", 1.1},
		}),
	}

	// --- Green group: event venues and low-intensity antennas. ---

	// Cluster 5: equal-usage antennas (stadium off days, expo centers,
	// industrial facilities). Section 5.2.2: "service usage is equally
	// distributed at those antennas, yielding a similar small numerator
	// for all services in (1), compared to a larger denominator" — the
	// mix flattens towards uniform, so popular services read as strongly
	// under-utilized and rare ones as over-utilized. That anti-popularity
	// signature is what binds cluster 5 to the stadium clusters (which
	// also depress the popular streaming services) in the green branch.
	flattened := make([]float64, services.M)
	var meanW float64
	for _, s := range services.All() {
		meanW += s.BaseWeight
	}
	meanW /= float64(services.M)
	for i, s := range services.All() {
		m := math.Pow(meanW/s.BaseWeight, 0.55)
		if m < 0.3 {
			m = 0.3
		}
		if m > 3 {
			m = 3
		}
		flattened[i] = m
	}
	// A mild residue of the event-crowd signature (sports sites, content
	// sharing) keeps cluster 5 adjacent to the stadium clusters rather
	// than to the leisure-suppressing workspace cluster.
	quiet := make([]float64, services.M)
	copy(quiet, flattened)
	for _, id := range services.IDsByCategory(services.Sports) {
		quiet[id] *= 1.6
	}
	quiet[services.MustID("Snapchat")] *= 1.5
	quiet[services.MustID("Twitter")] *= 1.5
	for _, id := range services.IDsByCategory(services.Business) {
		quiet[id] *= 0.7
	}
	for _, id := range services.IDsByCategory(services.Email) {
		quiet[id] *= 0.75
	}
	arch[5] = Archetype{
		ID: 5, Group: GroupGreen, Label: "low-intensity-balanced",
		Template: "event-quiet", VolumeMu: 6.4, VolumeSigma: 0.7,
		Multipliers: quiet,
	}

	// Cluster 6: stadiums outside Paris. Content sharing and sports surge;
	// most other services under-used; streaming strongly under-used.
	arch[6] = Archetype{
		ID: 6, Group: GroupGreen, Label: "regional-stadium-events",
		Template: "event", VolumeMu: 7.4, VolumeSigma: 0.9,
		Multipliers: buildMultipliers(map[services.Category]float64{
			services.Sports:         3.6,
			services.Music:          0.5,
			services.WebPortal:      0.55,
			services.Navigation:     0.9,
			services.Transport:      0.5,
			services.Messaging:      0.45,
			services.VideoStreaming: 0.3,
			services.Business:       0.35,
			services.Shopping:       0.5,
			services.Email:          0.5,
			services.Gaming:         0.5,
		}, []mult{
			{"Snapchat", 3.2},
			{"Twitter", 3.4},
			{"Giphy", 0.25},    // absent in cluster 6, present in 8
			{"WhatsApp", 0.35}, // idem
			{"Canal+", 0.2},    // idem
			{"Waze", 2.0},      // post-event departures
		}),
	}

	// Cluster 8: Paris stadiums/arenas — like 6 but with a broader service
	// diversity (Giphy, WhatsApp, Canal+ also over-used).
	arch[8] = Archetype{
		ID: 8, Group: GroupGreen, Label: "paris-stadium-events",
		Template: "event", VolumeMu: 7.8, VolumeSigma: 0.9,
		Multipliers: buildMultipliers(map[services.Category]float64{
			services.Sports:         3.4,
			services.Music:          0.55,
			services.WebPortal:      0.6,
			services.Transport:      0.7,
			services.Messaging:      1.8,
			services.VideoStreaming: 0.35,
			services.Business:       0.4,
			services.Email:          0.6,
			services.Gaming:         0.6,
		}, []mult{
			{"Snapchat", 3.0},
			{"Twitter", 3.2},
			{"Giphy", 3.6},
			{"WhatsApp", 3.0},
			{"Canal+", 3.0},
			{"Waze", 1.8},
		}),
	}

	// --- Red group: general use, commercial/hospitality, workplaces. ---

	// Cluster 1: general-use (airports, tunnels, mixed commercial).
	// Streaming, vehicular navigation and mail mildly over-used; music and
	// transit navigation under-used.
	arch[1] = Archetype{
		ID: 1, Group: GroupRed, Label: "general-use",
		Template: "diurnal", VolumeMu: 7.9, VolumeSigma: 0.9,
		Multipliers: buildMultipliers(map[services.Category]float64{
			services.Music:          0.45,
			services.Navigation:     0.7,
			services.Transport:      0.45,
			services.VideoStreaming: 1.7,
			services.Email:          1.5,
			services.WebPortal:      1.25,
			services.CloudStorage:   1.25,
			services.Business:       1.3,
			services.Messaging:      1.3,
		}, []mult{
			{"Netflix", 2.0},
			{"Disney+", 1.9},
			{"Amazon Prime Video", 1.9},
			{"Waze", 2.6}, // tunnels and drivers
			{"Mappy", 0.35},
			{"Transportation Websites", 0.35},
		}),
	}

	// Cluster 2: commercial centers, hotels, hospitals, public buildings.
	// Digital distribution (Play Store at MNO retail shops) and shopping
	// sites over-used; more night traffic.
	arch[2] = Archetype{
		ID: 2, Group: GroupRed, Label: "commercial-hospitality",
		Template: "retail-night", VolumeMu: 7.7, VolumeSigma: 0.9,
		Multipliers: buildMultipliers(map[services.Category]float64{
			services.Music:               0.5,
			services.Navigation:          0.6,
			services.Transport:           0.5,
			services.DigitalDistribution: 3.0,
			services.Shopping:            2.6,
			services.Email:               1.25,
			services.WebPortal:           1.2,
			services.CloudStorage:        1.2,
			services.Messaging:           1.2,
			services.VideoStreaming:      1.3,
			services.Business:            0.8,
		}, []mult{
			{"Google Play Store", 3.6},
			{"Shopping Websites", 3.0},
			{"Netflix", 1.6}, // hotel guests at night
			{"Waze", 0.7},
		}),
	}

	// Cluster 3: workspaces and corporate expo events. Business tools,
	// LinkedIn and mail surge; leisure services under-used.
	arch[3] = Archetype{
		ID: 3, Group: GroupRed, Label: "workspace",
		Template: "office", VolumeMu: 7.8, VolumeSigma: 0.8,
		Multipliers: buildMultipliers(map[services.Category]float64{
			services.Business:       2.3,
			services.Email:          2.1,
			services.CloudStorage:   1.9,
			services.WebPortal:      1.25,
			services.Music:          0.55,
			services.Navigation:     0.55,
			services.Transport:      0.5,
			services.SocialMedia:    0.7,
			services.VideoStreaming: 0.65,
			services.Gaming:         0.55,
			services.Shopping:       0.6,
		}, []mult{
			{"Microsoft Teams", 3.2},
			{"LinkedIn", 2.6},
			{"Netflix", 0.45}, // lunch-break only
		}),
	}

	// Event-venue crowds also spread their usage more evenly than the
	// general population (many concurrent light users), so the stadium
	// archetypes carry a partial anti-popularity tilt. This shared axis
	// with cluster 5 is what forms the green dendrogram branch.
	for _, id := range []int{6, 8} {
		for j := range arch[id].Multipliers {
			arch[id].Multipliers[j] *= math.Pow(flattened[j], 0.5)
		}
	}

	for i, a := range arch {
		if a.Multipliers == nil || a.ID != i {
			//lint:allow nopanic init-time consistency check of the compiled-in archetype table
			panic(fmt.Sprintf("envmodel: archetype %d misconfigured", i))
		}
	}
	return arch
}

// MixEntry is one option in an environment's archetype mixture.
type MixEntry struct {
	Archetype int
	Weight    float64
}

// ArchetypeMix returns the archetype mixture for an environment type,
// conditioned on whether the site is in the Paris region. The proportions
// implement the cluster-composition findings of Section 5.2.2 (Figs. 7-8).
func ArchetypeMix(env EnvType, paris bool) []MixEntry {
	switch env {
	case Metro:
		if paris {
			return []MixEntry{{0, 0.52}, {4, 0.45}, {1, 0.03}}
		}
		return []MixEntry{{7, 0.96}, {1, 0.04}}
	case Train:
		if paris {
			return []MixEntry{{0, 0.58}, {4, 0.38}, {1, 0.04}}
		}
		// Regional train stations still host metropolitan commuters and
		// fall into the Paris-style clusters; cluster 7 is exclusively
		// the regional metros ("consists solely of the Lille, Lyon,
		// Rennes, and Toulouse metro antennas").
		return []MixEntry{{0, 0.52}, {4, 0.36}, {1, 0.12}}
	case Airport:
		return []MixEntry{{1, 0.92}, {2, 0.05}, {5, 0.03}}
	case Workspace:
		if paris {
			return []MixEntry{{3, 0.76}, {1, 0.14}, {5, 0.06}, {2, 0.04}}
		}
		return []MixEntry{{3, 0.62}, {1, 0.14}, {5, 0.12}, {2, 0.12}}
	case Commercial:
		if paris {
			return []MixEntry{{2, 0.38}, {1, 0.52}, {5, 0.06}, {3, 0.04}}
		}
		return []MixEntry{{2, 0.62}, {1, 0.29}, {5, 0.05}, {3, 0.04}}
	case Stadium:
		if paris {
			return []MixEntry{{8, 0.62}, {6, 0.10}, {5, 0.24}, {1, 0.04}}
		}
		return []MixEntry{{6, 0.68}, {8, 0.06}, {5, 0.22}, {1, 0.04}}
	case Expo:
		return []MixEntry{{3, 0.52}, {5, 0.34}, {1, 0.10}, {8, 0.04}}
	case Hotel:
		return []MixEntry{{2, 0.68}, {1, 0.28}, {5, 0.04}}
	case Hospital:
		return []MixEntry{{2, 0.88}, {1, 0.12}}
	case Tunnel:
		return []MixEntry{{1, 0.94}, {2, 0.04}, {5, 0.02}}
	case PublicBuilding:
		return []MixEntry{{2, 0.58}, {1, 0.32}, {3, 0.06}, {5, 0.04}}
	}
	//lint:allow nopanic exhaustive-switch guard over an internal enum
	panic(fmt.Sprintf("envmodel: unknown environment %d", int(env)))
}

// ParisFraction returns the fraction of an environment's sites located in
// the Paris region, following the per-cluster geography reported in
// Section 5.2.2 (e.g. clusters 0 and 4 are >92% Parisian, cluster 2 is 92%
// outside Paris).
func ParisFraction(env EnvType) float64 {
	switch env {
	case Metro:
		return 0.74
	case Train:
		return 0.42
	case Airport:
		return 0.45
	case Workspace:
		return 0.66
	case Commercial:
		return 0.10
	case Stadium:
		return 0.38
	case Expo:
		return 0.55
	case Hotel:
		return 0.30
	case Hospital:
		return 0.25
	case Tunnel:
		return 0.40
	case PublicBuilding:
		return 0.22
	}
	return 0.3
}

// GroupOf returns the dendrogram group of a paper cluster ID.
func GroupOf(cluster int) Group {
	switch cluster {
	case 0, 4, 7:
		return GroupOrange
	case 5, 6, 8:
		return GroupGreen
	case 1, 2, 3:
		return GroupRed
	}
	//lint:allow nopanic exhaustive-switch guard over an internal enum
	panic(fmt.Sprintf("envmodel: unknown cluster %d", cluster))
}

// Cities lists the metropolitan areas used when placing sites; Paris first.
var Cities = []struct {
	Name     string
	Lat, Lon float64
	Paris    bool
}{
	{"Paris", 48.8566, 2.3522, true},
	{"Lille", 50.6292, 3.0573, false},
	{"Lyon", 45.7640, 4.8357, false},
	{"Rennes", 48.1173, -1.6778, false},
	{"Toulouse", 43.6047, 1.4442, false},
	{"Marseille", 43.2965, 5.3698, false},
	{"Bordeaux", 44.8378, -0.5792, false},
	{"Nantes", 47.2184, -1.5536, false},
	{"Strasbourg", 48.5734, 7.7521, false},
	{"Nice", 43.7102, 7.2620, false},
}
