package envmodel

import (
	"math"
	"testing"

	"repro/internal/services"
)

func TestTable1CountsSumToN(t *testing.T) {
	total := 0
	for _, e := range AllEnvTypes() {
		c := e.AntennaCount()
		if c <= 0 {
			t.Fatalf("%v has non-positive count", e)
		}
		total += c
	}
	if total != TotalIndoorAntennas {
		t.Fatalf("Table 1 total %d, want %d", total, TotalIndoorAntennas)
	}
}

func TestTable1IndividualCounts(t *testing.T) {
	// Exact values from Table 1 of the paper.
	want := map[EnvType]int{
		Metro: 1794, Train: 434, Airport: 187, Workspace: 774,
		Commercial: 469, Stadium: 451, Expo: 230, Hotel: 28,
		Hospital: 53, Tunnel: 220, PublicBuilding: 122,
	}
	for e, n := range want {
		if e.AntennaCount() != n {
			t.Fatalf("%v count %d, want %d", e, e.AntennaCount(), n)
		}
	}
}

func TestEnvStrings(t *testing.T) {
	if Metro.String() != "Metro" || PublicBuilding.String() != "Public Buildings" {
		t.Fatal("env names")
	}
	if EnvType(99).String() != "env(99)" {
		t.Fatal("out-of-range env name")
	}
}

func TestClassifyNameRoundTrip(t *testing.T) {
	for _, e := range AllEnvTypes() {
		name := NameFor(e, "Paris", 12, 3)
		got, ok := ClassifyName(name)
		if !ok {
			t.Fatalf("generated name %q not classified", name)
		}
		if got != e {
			t.Fatalf("name %q classified as %v, want %v", name, got, e)
		}
	}
}

func TestClassifyNameUnknown(t *testing.T) {
	if _, ok := ClassifyName("XYZ_UNKNOWN_S001_A01"); ok {
		t.Fatal("unknown keyword should not classify")
	}
}

func TestClassifyNameCaseInsensitive(t *testing.T) {
	env, ok := ClassifyName("paris_metro_chatelet")
	if !ok || env != Metro {
		t.Fatal("classification should be case-insensitive")
	}
}

func TestArchetypesComplete(t *testing.T) {
	arch := Archetypes()
	if len(arch) != NumArchetypes {
		t.Fatalf("%d archetypes, want %d", len(arch), NumArchetypes)
	}
	for i, a := range arch {
		if a.ID != i {
			t.Fatalf("archetype %d has ID %d", i, a.ID)
		}
		if len(a.Multipliers) != services.M {
			t.Fatalf("archetype %d has %d multipliers", i, len(a.Multipliers))
		}
		for j, m := range a.Multipliers {
			if m <= 0 || math.IsNaN(m) {
				t.Fatalf("archetype %d service %d multiplier %v", i, j, m)
			}
		}
		if a.Template == "" {
			t.Fatalf("archetype %d missing template", i)
		}
		if a.VolumeMu <= 0 || a.VolumeSigma <= 0 {
			t.Fatalf("archetype %d volume params", i)
		}
	}
}

func TestArchetypeGroupsMatchPaper(t *testing.T) {
	arch := Archetypes()
	for _, id := range []int{0, 4, 7} {
		if arch[id].Group != GroupOrange {
			t.Fatalf("cluster %d should be orange", id)
		}
	}
	for _, id := range []int{5, 6, 8} {
		if arch[id].Group != GroupGreen {
			t.Fatalf("cluster %d should be green", id)
		}
	}
	for _, id := range []int{1, 2, 3} {
		if arch[id].Group != GroupRed {
			t.Fatalf("cluster %d should be red", id)
		}
	}
}

func TestGroupOfMatchesArchetypes(t *testing.T) {
	for _, a := range Archetypes() {
		if GroupOf(a.ID) != a.Group {
			t.Fatalf("GroupOf(%d) mismatch", a.ID)
		}
	}
}

func TestGroupString(t *testing.T) {
	if GroupOrange.String() != "orange" || GroupGreen.String() != "green" || GroupRed.String() != "red" {
		t.Fatal("group labels")
	}
}

func TestArchetypeSignatures(t *testing.T) {
	arch := Archetypes()
	spotify := services.MustID("Spotify")
	teams := services.MustID("Microsoft Teams")
	snapchat := services.MustID("Snapchat")
	playStore := services.MustID("Google Play Store")
	mappy := services.MustID("Mappy")

	// Orange over-uses music; red cluster 3 over-uses business tools.
	if arch[0].Multipliers[spotify] <= 2 || arch[4].Multipliers[spotify] <= 2 || arch[7].Multipliers[spotify] <= 2 {
		t.Fatal("orange group should strongly over-use Spotify")
	}
	if arch[3].Multipliers[teams] <= 3 {
		t.Fatal("cluster 3 should strongly over-use Teams")
	}
	if arch[3].Multipliers[spotify] >= 1 {
		t.Fatal("cluster 3 should under-use music")
	}
	// Stadium clusters over-use Snapchat.
	if arch[6].Multipliers[snapchat] <= 2 || arch[8].Multipliers[snapchat] <= 2 {
		t.Fatal("stadium clusters should over-use Snapchat")
	}
	// Cluster 2 over-uses Play Store.
	if arch[2].Multipliers[playStore] <= 2 {
		t.Fatal("cluster 2 should over-use Play Store")
	}
	// Cluster 7 under-uses Mappy while clusters 0/4 over-use navigation.
	if arch[7].Multipliers[mappy] >= 0.5 {
		t.Fatal("cluster 7 should under-use Mappy")
	}
	if arch[0].Multipliers[mappy] <= 1.5 {
		t.Fatal("cluster 0 should over-use Mappy")
	}
}

func TestCluster5AntiPopularity(t *testing.T) {
	// Section 5.2.2: cluster 5 spreads usage equally, so in RSCA terms it
	// under-uses popular services and over-uses rare ones. The archetype
	// must therefore carry multipliers below 1 for heavy services and
	// above 1 for light ones.
	arch := Archetypes()
	m5 := arch[5].Multipliers
	youtube := services.MustID("YouTube") // heaviest service
	netflix := services.MustID("Netflix")
	meditation := services.MustID("Meditation Apps") // lightest tier
	if m5[youtube] >= 1 || m5[netflix] >= 1 {
		t.Fatalf("cluster 5 should under-use popular services: youtube=%v netflix=%v",
			m5[youtube], m5[netflix])
	}
	if m5[meditation] <= 1 {
		t.Fatalf("cluster 5 should over-use rare services: meditation=%v", m5[meditation])
	}
}

func TestStadiumClustersShareFlattenedTilt(t *testing.T) {
	// The stadium archetypes carry a partial anti-popularity tilt that
	// binds them to cluster 5 in the green dendrogram branch: their
	// multiplier for the heaviest service must sit below the raw
	// category default (1.0 for social-adjacent streaming... use YouTube,
	// whose VideoStreaming default is 0.3/0.35 — instead compare a
	// flat-default service).
	arch := Archetypes()
	giphyID := services.MustID("Giphy") // light service, over in 8
	youtubeID := services.MustID("YouTube")
	for _, id := range []int{6, 8} {
		m := arch[id].Multipliers
		// After the tilt, the ratio m[light]/m[heavy] must exceed the
		// un-tilted category ratio, showing the anti-popularity axis.
		if m[youtubeID] >= 0.35 {
			t.Fatalf("cluster %d YouTube multiplier %v not tilted down", id, m[youtubeID])
		}
	}
	if arch[8].Multipliers[giphyID] < 2 {
		t.Fatalf("cluster 8 Giphy multiplier %v should stay strongly over", arch[8].Multipliers[giphyID])
	}
}

func TestRegionalTrainsAvoidCluster7(t *testing.T) {
	// The paper: cluster 7 consists solely of regional metros, so train
	// stations must never feed it.
	for _, paris := range []bool{true, false} {
		for _, m := range ArchetypeMix(Train, paris) {
			if m.Archetype == 7 {
				t.Fatalf("train mix (paris=%v) feeds cluster 7", paris)
			}
		}
	}
}

func TestArchetypeMixNormalized(t *testing.T) {
	for _, e := range AllEnvTypes() {
		for _, paris := range []bool{true, false} {
			mix := ArchetypeMix(e, paris)
			if len(mix) == 0 {
				t.Fatalf("%v has empty mix", e)
			}
			var sum float64
			for _, m := range mix {
				if m.Archetype < 0 || m.Archetype >= NumArchetypes {
					t.Fatalf("%v mix references archetype %d", e, m.Archetype)
				}
				if m.Weight <= 0 {
					t.Fatalf("%v mix has non-positive weight", e)
				}
				sum += m.Weight
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%v (paris=%v) mix sums to %v", e, paris, sum)
			}
		}
	}
}

func TestMixFollowsPaperFindings(t *testing.T) {
	// Paris metros must land in clusters 0/4; regional metros in 7.
	parisMetro := ArchetypeMix(Metro, true)
	for _, m := range parisMetro {
		if m.Archetype == 7 {
			t.Fatal("Paris metro should not feed cluster 7")
		}
	}
	regMetro := ArchetypeMix(Metro, false)
	if regMetro[0].Archetype != 7 || regMetro[0].Weight < 0.9 {
		t.Fatal("regional metro should be dominated by cluster 7")
	}
	// Workspaces are dominated by cluster 3.
	for _, paris := range []bool{true, false} {
		mix := ArchetypeMix(Workspace, paris)
		if mix[0].Archetype != 3 || mix[0].Weight < 0.5 {
			t.Fatal("workspaces should be dominated by cluster 3")
		}
	}
	// Tunnels and airports almost all in cluster 1.
	if m := ArchetypeMix(Tunnel, false); m[0].Archetype != 1 || m[0].Weight < 0.9 {
		t.Fatal("tunnels should be dominated by cluster 1")
	}
	if m := ArchetypeMix(Airport, true); m[0].Archetype != 1 || m[0].Weight < 0.9 {
		t.Fatal("airports should be dominated by cluster 1")
	}
	// Hospitals almost all in cluster 2.
	if m := ArchetypeMix(Hospital, false); m[0].Archetype != 2 || m[0].Weight < 0.8 {
		t.Fatal("hospitals should be dominated by cluster 2")
	}
}

func TestParisFractionBounds(t *testing.T) {
	for _, e := range AllEnvTypes() {
		f := ParisFraction(e)
		if f < 0 || f > 1 {
			t.Fatalf("%v Paris fraction %v", e, f)
		}
	}
	if ParisFraction(Metro) < 0.5 {
		t.Fatal("most metro antennas are Parisian in the paper")
	}
	if ParisFraction(Commercial) > 0.3 {
		t.Fatal("commercial antennas are mostly outside Paris (cluster 2 is 92% non-Paris)")
	}
}

func TestCitiesHaveParisFirst(t *testing.T) {
	if len(Cities) == 0 || Cities[0].Name != "Paris" || !Cities[0].Paris {
		t.Fatal("Paris must be the first city")
	}
	for _, c := range Cities[1:] {
		if c.Paris {
			t.Fatalf("%s incorrectly marked as Paris", c.Name)
		}
	}
}
