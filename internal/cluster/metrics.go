package cluster

import (
	"math"

	"repro/internal/mat"
)

// PairwiseDistances computes the condensed Euclidean (not squared)
// distance matrix over the rows of x, for reuse across Silhouette and Dunn
// evaluations at multiple k.
func PairwiseDistances(x *mat.Dense) *mat.Condensed {
	return mat.PairwiseSqDist(x).Sqrt()
}

// PairwiseDistancesFromSq derives the condensed Euclidean distance matrix
// from an already-computed squared-distance matrix without touching the
// input — the staged pipeline computes the O(N²·M) squared distances once
// and shares them between Ward (which consumes squared distances) and the
// selection metrics (which want Euclidean ones).
func PairwiseDistancesFromSq(d2 *mat.Condensed) *mat.Condensed {
	return d2.Clone().Sqrt()
}

// numLabels returns the number of clusters (max label + 1) and the size of
// each.
func numLabels(labels []int) (int, []int) {
	k := 0
	for _, l := range labels {
		if l+1 > k {
			k = l + 1
		}
	}
	sizes := make([]int, k)
	for _, l := range labels {
		sizes[l]++
	}
	return k, sizes
}

// Silhouette returns the mean silhouette coefficient of the labeling over
// the precomputed distance matrix (Rousseeuw 1987): for each point,
// (b-a)/max(a,b), with a the mean intra-cluster distance and b the lowest
// mean distance to another cluster. Singleton clusters contribute 0, and a
// labeling with fewer than 2 clusters scores 0.
func Silhouette(d *mat.Condensed, labels []int) float64 {
	n := d.N()
	if len(labels) != n {
		// Labels always come from cutting a linkage built over the same
		// distance matrix; a mismatch is a wiring bug, not bad input.
		//lint:allow nopanic labels and distances derive from the same matrix
		panic("cluster: Silhouette label length mismatch")
	}
	k, sizes := numLabels(labels)
	if k < 2 {
		return 0
	}
	var total float64
	sums := make([]float64, k)
	for i := 0; i < n; i++ {
		for c := range sums {
			sums[c] = 0
		}
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			sums[labels[j]] += d.At(i, j)
		}
		own := labels[i]
		if sizes[own] <= 1 {
			continue // silhouette of a singleton is defined as 0
		}
		a := sums[own] / float64(sizes[own]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == own || sizes[c] == 0 {
				continue
			}
			if m := sums[c] / float64(sizes[c]); m < b {
				b = m
			}
		}
		if max := math.Max(a, b); max > 0 {
			total += (b - a) / max
		}
	}
	return total / float64(n)
}

// DunnIndex returns the ratio of the minimum inter-cluster distance
// (single linkage) to the maximum intra-cluster diameter (complete
// diameter), over the precomputed distance matrix. Larger is better. A
// labeling with fewer than 2 clusters, or with a zero maximum diameter,
// scores 0.
func DunnIndex(d *mat.Condensed, labels []int) float64 {
	n := d.N()
	if len(labels) != n {
		//lint:allow nopanic labels and distances derive from the same matrix
		panic("cluster: DunnIndex label length mismatch")
	}
	k, _ := numLabels(labels)
	if k < 2 {
		return 0
	}
	minInter := math.Inf(1)
	maxDiam := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dist := d.At(i, j)
			if labels[i] == labels[j] {
				if dist > maxDiam {
					maxDiam = dist
				}
			} else if dist < minInter {
				minInter = dist
			}
		}
	}
	if maxDiam == 0 || math.IsInf(minInter, 1) {
		return 0
	}
	return minInter / maxDiam
}

// DaviesBouldin returns the Davies-Bouldin index of the labeling over the
// feature matrix: the mean over clusters of the worst (σi+σj)/d(ci,cj)
// ratio. Smaller is better. Fewer than 2 clusters scores +Inf.
func DaviesBouldin(x *mat.Dense, labels []int) float64 {
	k, sizes := numLabels(labels)
	if k < 2 {
		return math.Inf(1)
	}
	cols := x.Cols()
	centroids := mat.NewDense(k, cols)
	for i := 0; i < x.Rows(); i++ {
		c := centroids.Row(labels[i])
		for j, v := range x.Row(i) {
			c[j] += v
		}
	}
	for c := 0; c < k; c++ {
		if sizes[c] == 0 {
			continue
		}
		row := centroids.Row(c)
		for j := range row {
			row[j] /= float64(sizes[c])
		}
	}
	scatter := make([]float64, k)
	for i := 0; i < x.Rows(); i++ {
		scatter[labels[i]] += mat.Dist(x.Row(i), centroids.Row(labels[i]))
	}
	for c := 0; c < k; c++ {
		if sizes[c] > 0 {
			scatter[c] /= float64(sizes[c])
		}
	}
	var sum float64
	for i := 0; i < k; i++ {
		worst := 0.0
		for j := 0; j < k; j++ {
			if i == j || sizes[i] == 0 || sizes[j] == 0 {
				continue
			}
			dc := mat.Dist(centroids.Row(i), centroids.Row(j))
			if dc == 0 {
				return math.Inf(1)
			}
			if r := (scatter[i] + scatter[j]) / dc; r > worst {
				worst = r
			}
		}
		sum += worst
	}
	return sum / float64(k)
}

// SelectionPoint is one (k, score) sample of the Fig. 2 model-selection
// sweep.
type SelectionPoint struct {
	K          int
	Silhouette float64
	Dunn       float64
}

// SweepK evaluates Silhouette and Dunn for every k in [kMin, kMax] by
// cutting the linkage, reusing one distance matrix. It reproduces the data
// behind Fig. 2.
func SweepK(l *Linkage, d *mat.Condensed, kMin, kMax int) []SelectionPoint {
	if kMin < 2 {
		kMin = 2
	}
	if kMax > l.N {
		kMax = l.N
	}
	var out []SelectionPoint
	for k := kMin; k <= kMax; k++ {
		labels := l.CutK(k)
		out = append(out, SelectionPoint{
			K:          k,
			Silhouette: Silhouette(d, labels),
			Dunn:       DunnIndex(d, labels),
		})
	}
	return out
}

// Knees returns the k values implementing the Section 4.2.1 stopping
// criterion: "a high value of the Silhouette score or the Dunn index,
// followed by an abrupt drop". A knee is a local maximum of the Silhouette
// score (not lower than its left neighbour, strictly above its right one);
// candidates are ranked by the size of the subsequent drop, largest first,
// and at most maxKnees are returned.
func Knees(points []SelectionPoint, maxKnees int) []int {
	type knee struct {
		k    int
		drop float64
	}
	var ks []knee
	for i := 0; i+1 < len(points); i++ {
		if i > 0 && points[i].Silhouette < points[i-1].Silhouette {
			continue // not a local maximum
		}
		drop := (points[i].Silhouette - points[i+1].Silhouette) +
			(points[i].Dunn - points[i+1].Dunn)
		if drop > 0 {
			ks = append(ks, knee{points[i].K, drop})
		}
	}
	// Selection sort by descending drop; deterministic for equal drops.
	for i := 0; i < len(ks); i++ {
		best := i
		for j := i + 1; j < len(ks); j++ {
			if ks[j].drop > ks[best].drop {
				best = j
			}
		}
		ks[i], ks[best] = ks[best], ks[i]
	}
	if len(ks) > maxKnees {
		ks = ks[:maxKnees]
	}
	out := make([]int, len(ks))
	for i, kn := range ks {
		out[i] = kn.k
	}
	return out
}
