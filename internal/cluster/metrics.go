package cluster

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// PairwiseDistances computes the condensed Euclidean (not squared)
// distance matrix over the rows of x, for reuse across Silhouette and Dunn
// evaluations at multiple k.
func PairwiseDistances(x *mat.Dense) *mat.Condensed {
	return mat.PairwiseSqDist(x).Sqrt()
}

// PairwiseDistancesFromSq derives the condensed Euclidean distance matrix
// from an already-computed squared-distance matrix without touching the
// input — the staged pipeline computes the O(N²·M) squared distances once
// and shares them between Ward (which consumes squared distances) and the
// selection metrics (which want Euclidean ones).
func PairwiseDistancesFromSq(d2 *mat.Condensed) *mat.Condensed {
	return d2.Clone().Sqrt()
}

// numLabels returns the number of clusters (max label + 1) and the size of
// each.
func numLabels(labels []int) (int, []int) {
	k := 0
	for _, l := range labels {
		if l+1 > k {
			k = l + 1
		}
	}
	sizes := make([]int, k)
	for _, l := range labels {
		sizes[l]++
	}
	return k, sizes
}

// Silhouette returns the mean silhouette coefficient of the labeling over
// the precomputed distance matrix (Rousseeuw 1987): for each point,
// (b-a)/max(a,b), with a the mean intra-cluster distance and b the lowest
// mean distance to another cluster. Singleton clusters contribute 0, and a
// labeling with fewer than 2 clusters scores 0. A label/matrix length
// mismatch — labels cut from a linkage over a different population — is
// reported as an error.
func Silhouette(d *mat.Condensed, labels []int) (float64, error) {
	n := d.N()
	if len(labels) != n {
		return 0, fmt.Errorf("cluster: Silhouette over %d labels for a %d-point distance matrix", len(labels), n)
	}
	k, sizes := numLabels(labels)
	if k < 2 {
		return 0, nil
	}
	var total float64
	sums := make([]float64, k)
	for i := 0; i < n; i++ {
		for c := range sums {
			sums[c] = 0
		}
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			sums[labels[j]] += d.At(i, j)
		}
		own := labels[i]
		if sizes[own] <= 1 {
			continue // silhouette of a singleton is defined as 0
		}
		a := sums[own] / float64(sizes[own]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == own || sizes[c] == 0 {
				continue
			}
			if m := sums[c] / float64(sizes[c]); m < b {
				b = m
			}
		}
		if max := math.Max(a, b); max > 0 {
			total += (b - a) / max
		}
	}
	return total / float64(n), nil
}

// MustSilhouette is Silhouette for callers whose labels provably derive
// from the same matrix (a cut of a linkage built over d): it panics on the
// impossible mismatch instead of returning an error.
func MustSilhouette(d *mat.Condensed, labels []int) float64 {
	v, err := Silhouette(d, labels)
	if err != nil {
		//lint:allow nopanic Must variant for labels derived from the same matrix
		panic(err)
	}
	return v
}

// DunnIndex returns the ratio of the minimum inter-cluster distance
// (single linkage) to the maximum intra-cluster diameter (complete
// diameter), over the precomputed distance matrix. Larger is better. A
// labeling with fewer than 2 clusters, or with a zero maximum diameter,
// scores 0. A label/matrix length mismatch is reported as an error.
func DunnIndex(d *mat.Condensed, labels []int) (float64, error) {
	n := d.N()
	if len(labels) != n {
		return 0, fmt.Errorf("cluster: DunnIndex over %d labels for a %d-point distance matrix", len(labels), n)
	}
	k, _ := numLabels(labels)
	if k < 2 {
		return 0, nil
	}
	minInter := math.Inf(1)
	maxDiam := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dist := d.At(i, j)
			if labels[i] == labels[j] {
				if dist > maxDiam {
					maxDiam = dist
				}
			} else if dist < minInter {
				minInter = dist
			}
		}
	}
	if maxDiam == 0 || math.IsInf(minInter, 1) {
		return 0, nil
	}
	return minInter / maxDiam, nil
}

// MustDunnIndex is DunnIndex for labels that provably match the matrix;
// it panics on the impossible mismatch instead of returning an error.
func MustDunnIndex(d *mat.Condensed, labels []int) float64 {
	v, err := DunnIndex(d, labels)
	if err != nil {
		//lint:allow nopanic Must variant for labels derived from the same matrix
		panic(err)
	}
	return v
}

// DaviesBouldin returns the Davies-Bouldin index of the labeling over the
// feature matrix: the mean over clusters of the worst (σi+σj)/d(ci,cj)
// ratio. Smaller is better. Fewer than 2 clusters scores +Inf.
func DaviesBouldin(x *mat.Dense, labels []int) float64 {
	k, sizes := numLabels(labels)
	if k < 2 {
		return math.Inf(1)
	}
	cols := x.Cols()
	centroids := mat.NewDense(k, cols)
	for i := 0; i < x.Rows(); i++ {
		c := centroids.Row(labels[i])
		for j, v := range x.Row(i) {
			c[j] += v
		}
	}
	for c := 0; c < k; c++ {
		if sizes[c] == 0 {
			continue
		}
		row := centroids.Row(c)
		for j := range row {
			row[j] /= float64(sizes[c])
		}
	}
	scatter := make([]float64, k)
	for i := 0; i < x.Rows(); i++ {
		scatter[labels[i]] += mat.Dist(x.Row(i), centroids.Row(labels[i]))
	}
	for c := 0; c < k; c++ {
		if sizes[c] > 0 {
			scatter[c] /= float64(sizes[c])
		}
	}
	var sum float64
	for i := 0; i < k; i++ {
		worst := 0.0
		for j := 0; j < k; j++ {
			if i == j || sizes[i] == 0 || sizes[j] == 0 {
				continue
			}
			dc := mat.Dist(centroids.Row(i), centroids.Row(j))
			if dc == 0 {
				return math.Inf(1)
			}
			if r := (scatter[i] + scatter[j]) / dc; r > worst {
				worst = r
			}
		}
		sum += worst
	}
	return sum / float64(k)
}

// SelectionPoint is one (k, score) sample of the Fig. 2 model-selection
// sweep.
type SelectionPoint struct {
	K          int
	Silhouette float64
	Dunn       float64
}

// SweepK evaluates Silhouette and Dunn for every k in [kMin, kMax],
// reusing one distance matrix. It reproduces the data behind Fig. 2.
//
// The sweep walks k downward from kMax, refining one dendrogram cut
// incrementally (each k−1 partition is the k partition with one more
// merge applied, see incrementalCut) and scoring each candidate with a
// single fused pass over the condensed matrix that accumulates the
// silhouette neighbour sums and the Dunn extrema together. Both values
// are bit-identical to cutting from scratch and calling Silhouette and
// DunnIndex per k — the per-cluster accumulation order and the reduction
// order are preserved exactly (TestSweepKMatchesFromScratch pins this
// across the full k range). A linkage/matrix dimension mismatch is
// reported as an error.
func SweepK(l *Linkage, d *mat.Condensed, kMin, kMax int) ([]SelectionPoint, error) {
	if kMin < 2 {
		kMin = 2
	}
	if kMax > l.N {
		kMax = l.N
	}
	if kMax < kMin {
		return nil, nil
	}
	if d.N() != l.N {
		return nil, fmt.Errorf("cluster: SweepK over a %d-leaf linkage and a %d-point distance matrix", l.N, d.N())
	}
	cut, err := newIncrementalCut(l, kMax)
	if err != nil {
		return nil, err
	}
	scorer := newPartitionScorer(d, kMax)
	out := make([]SelectionPoint, kMax-kMin+1)
	for k := kMax; ; k-- {
		sil, dunn := scorer.score(cut.Labels, cut.K)
		out[k-kMin] = SelectionPoint{K: k, Silhouette: sil, Dunn: dunn}
		if k == kMin {
			break
		}
		cut.Refine()
	}
	return out, nil
}

// partitionScorer owns the scratch arenas of the fused per-candidate
// scoring pass. One walk over the condensed upper triangle feeds both
// metrics: row i's contiguous segment d(i, i+1..n−1) updates the
// silhouette per-cluster distance sums of both endpoints and the Dunn
// min-inter/max-diameter extrema. Per accumulator cell the additions land
// in ascending-j order — the exact order the standalone Silhouette walk
// uses — so the fused results are bit-identical, not just close.
type partitionScorer struct {
	d     *mat.Condensed
	sums  []float64 // n × kMax row-major per-point per-cluster distance sums
	sizes []int
}

func newPartitionScorer(d *mat.Condensed, kMax int) *partitionScorer {
	return &partitionScorer{
		d:     d,
		sums:  make([]float64, d.N()*kMax),
		sizes: make([]int, kMax),
	}
}

// score computes (Silhouette, Dunn) of a dense labeling in [0, k).
func (p *partitionScorer) score(labels []int, k int) (sil, dunn float64) {
	n := p.d.N()
	if k < 2 {
		return 0, 0
	}
	sizes := p.sizes[:k]
	for c := range sizes {
		sizes[c] = 0
	}
	for _, l := range labels {
		sizes[l]++
	}
	sums := p.sums[:n*k]
	for i := range sums {
		sums[i] = 0
	}
	minInter := math.Inf(1)
	maxDiam := 0.0
	for i := 0; i < n; i++ {
		li := labels[i]
		si := sums[i*k : (i+1)*k]
		row := p.d.UpperRow(i)
		for jj, dist := range row {
			j := i + 1 + jj
			lj := labels[j]
			si[lj] += dist
			sums[j*k+li] += dist
			if li == lj {
				if dist > maxDiam {
					maxDiam = dist
				}
			} else if dist < minInter {
				minInter = dist
			}
		}
	}
	var total float64
	for i := 0; i < n; i++ {
		own := labels[i]
		if sizes[own] <= 1 {
			continue // silhouette of a singleton is defined as 0
		}
		si := sums[i*k : (i+1)*k]
		a := si[own] / float64(sizes[own]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == own || sizes[c] == 0 {
				continue
			}
			if m := si[c] / float64(sizes[c]); m < b {
				b = m
			}
		}
		if max := math.Max(a, b); max > 0 {
			total += (b - a) / max
		}
	}
	sil = total / float64(n)
	if maxDiam != 0 && !math.IsInf(minInter, 1) {
		dunn = minInter / maxDiam
	}
	return sil, dunn
}

// Knees returns the k values implementing the Section 4.2.1 stopping
// criterion: "a high value of the Silhouette score or the Dunn index,
// followed by an abrupt drop". A knee is a local maximum of the Silhouette
// score (not lower than its left neighbour, strictly above its right one);
// candidates are ranked by the size of the subsequent drop, largest first,
// and at most maxKnees are returned.
func Knees(points []SelectionPoint, maxKnees int) []int {
	type knee struct {
		k    int
		drop float64
	}
	var ks []knee
	for i := 0; i+1 < len(points); i++ {
		if i > 0 && points[i].Silhouette < points[i-1].Silhouette {
			continue // not a local maximum
		}
		drop := (points[i].Silhouette - points[i+1].Silhouette) +
			(points[i].Dunn - points[i+1].Dunn)
		if drop > 0 {
			ks = append(ks, knee{points[i].K, drop})
		}
	}
	// Selection sort by descending drop; deterministic for equal drops.
	for i := 0; i < len(ks); i++ {
		best := i
		for j := i + 1; j < len(ks); j++ {
			if ks[j].drop > ks[best].drop {
				best = j
			}
		}
		ks[i], ks[best] = ks[best], ks[i]
	}
	if len(ks) > maxKnees {
		ks = ks[:maxKnees]
	}
	out := make([]int, len(ks))
	for i, kn := range ks {
		out[i] = kn.k
	}
	return out
}
