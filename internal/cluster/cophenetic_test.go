package cluster

import (
	"math"
	"testing"

	"repro/internal/mat"
)

func TestCopheneticDistancesSimple(t *testing.T) {
	// Three collinear points: 0 at x=0, 1 at x=1, 2 at x=10.
	x := mat.MustFromRows([][]float64{{0}, {1}, {10}})
	l := Ward(x)
	coph := l.CopheneticDistances()
	// Points 0 and 1 merge first at height 1.
	if math.Abs(coph.At(0, 1)-1) > 1e-9 {
		t.Fatalf("coph(0,1) = %v", coph.At(0, 1))
	}
	// Point 2 joins at the root height, shared by both cross pairs.
	if coph.At(0, 2) != coph.At(1, 2) {
		t.Fatal("pairs joining at the same merge must share the height")
	}
	if coph.At(0, 2) <= coph.At(0, 1) {
		t.Fatal("later merges must carry larger heights")
	}
}

func TestCopheneticUltrametric(t *testing.T) {
	// Cophenetic distances are ultrametric: d(a,c) <= max(d(a,b), d(b,c)).
	x, _ := blobs(3, 8, 3, 4, 91)
	l := Ward(x)
	coph := l.CopheneticDistances()
	n := x.Rows()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for c := b + 1; c < n; c++ {
				ab, bc, ac := coph.At(a, b), coph.At(b, c), coph.At(a, c)
				if ac > math.Max(ab, bc)+1e-9 ||
					ab > math.Max(ac, bc)+1e-9 ||
					bc > math.Max(ab, ac)+1e-9 {
					t.Fatalf("ultrametric violated at (%d,%d,%d): %v %v %v", a, b, c, ab, bc, ac)
				}
			}
		}
	}
}

func TestCopheneticCorrelationHighOnBlobs(t *testing.T) {
	x, _ := blobs(3, 15, 4, 6, 93)
	l := Ward(x)
	d := PairwiseDistances(x)
	cc := CopheneticCorrelation(l, d)
	if cc < 0.8 {
		t.Fatalf("cophenetic correlation %v on clean blobs", cc)
	}
	if cc > 1+1e-9 {
		t.Fatalf("correlation above 1: %v", cc)
	}
}

func TestCopheneticCorrelationTiny(t *testing.T) {
	x := mat.MustFromRows([][]float64{{0}, {1}})
	l := Ward(x)
	if CopheneticCorrelation(l, PairwiseDistances(x)) != 1 {
		t.Fatal("n<3 should return 1")
	}
}

func BenchmarkCophenetic300(b *testing.B) {
	x, _ := blobs(5, 60, 8, 4, 1)
	l := Ward(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.CopheneticDistances()
	}
}
