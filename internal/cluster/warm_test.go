package cluster

import (
	"reflect"
	"testing"

	"repro/internal/mat"
)

func denseFromRows(t *testing.T, rows [][]float64) *mat.Dense {
	t.Helper()
	m, err := mat.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCentroidsMeansAndEmptyClusters(t *testing.T) {
	x := denseFromRows(t, [][]float64{
		{0, 0}, {2, 4}, // cluster 0 → mean (1, 2)
		{10, 10},       // cluster 2 → itself
	})
	c := Centroids(x, []int{0, 0, 2}, 3)
	if got := c.Row(0); !reflect.DeepEqual(got, []float64{1, 2}) {
		t.Fatalf("centroid 0 = %v", got)
	}
	if got := c.Row(1); !reflect.DeepEqual(got, []float64{0, 0}) {
		t.Fatalf("empty centroid 1 = %v", got)
	}
	if got := c.Row(2); !reflect.DeepEqual(got, []float64{10, 10}) {
		t.Fatalf("centroid 2 = %v", got)
	}
}

func TestWarmAssignKeepsCleanRowsBitExact(t *testing.T) {
	x := denseFromRows(t, [][]float64{{0, 0}, {1, 1}, {9, 9}})
	cents := denseFromRows(t, [][]float64{{0, 0}, {10, 10}})
	prev := []int{0, 0, 1}
	wa := WarmAssign(x, cents, prev, nil)
	if !reflect.DeepEqual(wa.Labels, prev) {
		t.Fatalf("labels %v, want %v", wa.Labels, prev)
	}
	if wa.Drift != 0 || wa.Reassigned != 0 || wa.Added != 0 {
		t.Fatalf("clean assignment reported movement: %+v", wa)
	}
}

func TestWarmAssignMovesDirtyAndNewRows(t *testing.T) {
	x := denseFromRows(t, [][]float64{
		{0, 0},   // clean, stays 1 (previous label wins even if "wrong")
		{9, 9},   // dirty → centroid 1
		{0.5, 0}, // new row (no previous label) → centroid 0
	})
	cents := denseFromRows(t, [][]float64{{0, 0}, {10, 10}})
	prev := []int{1, 0}
	wa := WarmAssign(x, cents, prev, []int{1, 1, -5, 99}) // dups/out-of-range ignored
	if want := []int{1, 1, 0}; !reflect.DeepEqual(wa.Labels, want) {
		t.Fatalf("labels %v, want %v", wa.Labels, want)
	}
	if wa.Reassigned != 1 || wa.Added != 1 {
		t.Fatalf("moved counts %+v", wa)
	}
	if want := 2.0 / 3.0; wa.Drift != want {
		t.Fatalf("drift %v, want %v", wa.Drift, want)
	}
}

func TestWarmAssignTieBreaksToLowestCluster(t *testing.T) {
	x := denseFromRows(t, [][]float64{{5, 0}})
	cents := denseFromRows(t, [][]float64{{0, 0}, {10, 0}})
	wa := WarmAssign(x, cents, nil, nil)
	if wa.Labels[0] != 0 {
		t.Fatalf("equidistant row assigned to %d, want lowest index 0", wa.Labels[0])
	}
	if wa.Added != 1 || wa.Drift != 1 {
		t.Fatalf("new-row accounting %+v", wa)
	}
}
