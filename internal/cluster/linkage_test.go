package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/rng"
)

func TestMethodString(t *testing.T) {
	if MethodWard.String() != "ward" || MethodComplete.String() != "complete" ||
		MethodAverage.String() != "average" || MethodSingle.String() != "single" {
		t.Fatal("method names")
	}
	if Method(9).String() != "method(9)" {
		t.Fatal("unknown method name")
	}
}

func TestAllMethodsRecoverBlobs(t *testing.T) {
	x, truth := blobs(3, 20, 4, 6, 51)
	for _, m := range []Method{MethodWard, MethodComplete, MethodAverage, MethodSingle} {
		l := Agglomerative(x, m)
		labels := l.CutK(3)
		if a := agreement(labels, truth); a < 0.95 {
			t.Fatalf("%v linkage agreement %.2f", m, a)
		}
		if !l.HeightsMonotone() {
			t.Fatalf("%v linkage heights not monotone", m)
		}
	}
}

func TestSingleLinkageChains(t *testing.T) {
	// A chain of close points plus one distant blob: single linkage keeps
	// the chain together where complete linkage splits it.
	var rows [][]float64
	for i := 0; i < 12; i++ {
		rows = append(rows, []float64{float64(i) * 1.0, 0})
	}
	for i := 0; i < 6; i++ {
		rows = append(rows, []float64{100 + float64(i%3)*0.1, 50 + float64(i/3)*0.1})
	}
	x := mat.MustFromRows(rows)
	single := Agglomerative(x, MethodSingle).CutK(2)
	// All chain points share one label under single linkage.
	for i := 1; i < 12; i++ {
		if single[i] != single[0] {
			t.Fatalf("single linkage split the chain: %v", single[:12])
		}
	}
	if single[12] == single[0] {
		t.Fatal("single linkage merged chain and blob")
	}
}

func TestCompleteVsSingleOnChain(t *testing.T) {
	// On an elongated chain cut into 2, complete linkage must produce a
	// balanced split while single linkage cannot split it at all until
	// forced; verify they differ.
	var rows [][]float64
	for i := 0; i < 16; i++ {
		rows = append(rows, []float64{float64(i), 0})
	}
	x := mat.MustFromRows(rows)
	complete := Agglomerative(x, MethodComplete).CutK(2)
	changes := 0
	for i := 1; i < len(complete); i++ {
		if complete[i] != complete[i-1] {
			changes++
		}
	}
	if changes != 1 {
		t.Fatalf("complete linkage should cut the chain once, got %d transitions", changes)
	}
	// The split should be near the middle (balanced diameters).
	counts := map[int]int{}
	for _, l := range complete {
		counts[l]++
	}
	for _, c := range counts {
		if c < 6 {
			t.Fatalf("complete linkage split unbalanced: %v", counts)
		}
	}
}

func TestAverageMatchesBruteForceProperty(t *testing.T) {
	// NN-chain average linkage must equal an exhaustive UPGMA on small
	// random inputs.
	f := func(seed uint64) bool {
		n := 8
		r := rng.New(seed)
		x := mat.NewDense(n, 2)
		for i := 0; i < n; i++ {
			for j := 0; j < 2; j++ {
				x.Set(i, j, r.Normal())
			}
		}
		got := Agglomerative(x, MethodAverage)
		want := bruteForceAverageHeights(x)
		if len(got.Merges) != len(want) {
			return false
		}
		for i := range want {
			if math.Abs(got.Merges[i].Height-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// bruteForceAverageHeights: exhaustive UPGMA scanning the full matrix.
func bruteForceAverageHeights(x *mat.Dense) []float64 {
	n := x.Rows()
	d := PairwiseDistances(x)
	active := make([]bool, n)
	size := make([]int, n)
	for i := range active {
		active[i] = true
		size[i] = 1
	}
	var heights []float64
	for step := 0; step < n-1; step++ {
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if v := d.At(i, j); v < best {
					best = v
					bi, bj = i, j
				}
			}
		}
		heights = append(heights, best)
		for k := 0; k < n; k++ {
			if k == bi || k == bj || !active[k] {
				continue
			}
			ni, nj := float64(size[bi]), float64(size[bj])
			d.Set(bi, k, (ni*d.At(bi, k)+nj*d.At(bj, k))/(ni+nj))
		}
		size[bi] += size[bj]
		active[bj] = false
	}
	return heights
}

func TestAgglomerativeSinglePoint(t *testing.T) {
	x := mat.MustFromRows([][]float64{{1, 2}})
	for _, m := range []Method{MethodComplete, MethodAverage, MethodSingle} {
		l := Agglomerative(x, m)
		if l.N != 1 || len(l.Merges) != 0 {
			t.Fatalf("%v single point", m)
		}
	}
}

func BenchmarkAverageLinkage300(b *testing.B) {
	x, _ := blobs(5, 60, 10, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Agglomerative(x, MethodAverage)
	}
}
