package cluster

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/rng"
)

// KMeansResult holds a flat k-means clustering.
type KMeansResult struct {
	// Labels assigns each row of the input to a cluster in [0, K).
	Labels []int
	// Centroids is the K × cols centroid matrix.
	Centroids *mat.Dense
	// Inertia is the total within-cluster sum of squared distances.
	Inertia float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// KMeans clusters the rows of x into k groups with Lloyd's algorithm and
// k-means++ seeding. It serves as the flat-clustering baseline in the Ward
// ablation bench. maxIter bounds the Lloyd iterations; convergence stops
// earlier when assignments stabilize. A k outside [1, rows] — typically a
// caller-supplied configuration value — is reported as an error.
func KMeans(x *mat.Dense, k int, seed uint64, maxIter int) (*KMeansResult, error) {
	n := x.Rows()
	if k < 1 || k > n {
		return nil, fmt.Errorf("cluster: KMeans k=%d outside [1,%d]", k, n)
	}
	r := rng.New(seed)
	cols := x.Cols()

	// k-means++ seeding.
	centroids := mat.NewDense(k, cols)
	first := r.Intn(n)
	copy(centroids.Row(0), x.Row(first))
	minSq := make([]float64, n)
	for i := range minSq {
		minSq[i] = mat.SqDist(x.Row(i), centroids.Row(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, v := range minSq {
			total += v
		}
		var pick int
		if total <= 0 {
			pick = r.Intn(n)
		} else {
			u := r.Float64() * total
			acc := 0.0
			for i, v := range minSq {
				acc += v
				if u < acc {
					pick = i
					break
				}
			}
		}
		copy(centroids.Row(c), x.Row(pick))
		for i := range minSq {
			if d := mat.SqDist(x.Row(i), centroids.Row(c)); d < minSq[i] {
				minSq[i] = d
			}
		}
	}

	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	counts := make([]int, k)
	var iter int
	for iter = 0; iter < maxIter; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				if d := mat.SqDist(x.Row(i), centroids.Row(c)); d < bestD {
					bestD = d
					best = c
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		// Recompute centroids.
		for c := 0; c < k; c++ {
			counts[c] = 0
			row := centroids.Row(c)
			for j := range row {
				row[j] = 0
			}
		}
		for i := 0; i < n; i++ {
			counts[labels[i]]++
			c := centroids.Row(labels[i])
			for j, v := range x.Row(i) {
				c[j] += v
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster on a random point.
				copy(centroids.Row(c), x.Row(r.Intn(n)))
				continue
			}
			row := centroids.Row(c)
			for j := range row {
				row[j] /= float64(counts[c])
			}
		}
	}

	var inertia float64
	for i := 0; i < n; i++ {
		inertia += mat.SqDist(x.Row(i), centroids.Row(labels[i]))
	}
	return &KMeansResult{Labels: labels, Centroids: centroids, Inertia: inertia, Iterations: iter}, nil
}
