package cluster

import (
	"repro/internal/mat"
	"repro/internal/stats"
)

// CopheneticDistances returns the condensed matrix of cophenetic
// distances of a linkage: for each pair of observations, the height of the
// dendrogram merge that first joins them. It is the classic input for
// assessing how faithfully a hierarchy preserves the original metric.
func (l *Linkage) CopheneticDistances() *mat.Condensed {
	coph := mat.NewCondensed(l.N)
	// components[node] lists the leaves currently under each live root.
	components := make(map[int][]int, l.N)
	for i := 0; i < l.N; i++ {
		components[i] = []int{i}
	}
	for s, m := range l.Merges {
		a := components[m.A]
		b := components[m.B]
		for _, x := range a {
			for _, y := range b {
				coph.Set(x, y, m.Height)
			}
		}
		merged := append(a, b...)
		delete(components, m.A)
		delete(components, m.B)
		components[l.N+s] = merged
	}
	return coph
}

// CopheneticCorrelation returns the Pearson correlation between the
// original pairwise distances and the cophenetic distances of the linkage
// — 1 means the dendrogram perfectly preserves the metric structure.
func CopheneticCorrelation(l *Linkage, dists *mat.Condensed) float64 {
	if l.N < 3 {
		return 1
	}
	coph := l.CopheneticDistances()
	n := l.N
	size := n * (n - 1) / 2
	a := make([]float64, 0, size)
	b := make([]float64, 0, size)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a = append(a, dists.At(i, j))
			b = append(b, coph.At(i, j))
		}
	}
	return stats.PearsonCorrelation(a, b)
}
