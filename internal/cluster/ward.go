// Package cluster implements the unsupervised-learning layer of the paper:
// agglomerative hierarchical clustering with Ward's minimum-variance
// criterion (Section 4.2.1), dendrogram construction and cutting, the
// Silhouette score and Dunn index used to pick the number of clusters
// (Fig. 2), the Davies-Bouldin index as an additional diagnostic, and a
// k-means baseline for the ablation benches.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mat"
)

// Merge is one agglomeration step of the dendrogram. A and B are node ids:
// leaves are 0..N-1; the merge at Merges[s] creates internal node N+s.
type Merge struct {
	A, B int
	// Height is the Ward merge distance (monotone non-decreasing along
	// any root path).
	Height float64
	// Size is the number of leaves under the created node.
	Size int
}

// Linkage is the full merge hierarchy returned by Ward.
type Linkage struct {
	// N is the number of clustered observations.
	N int
	// Merges holds the N-1 agglomeration steps sorted by ascending
	// height, scipy-style.
	Merges []Merge
}

// Ward runs agglomerative clustering with Ward's criterion over the rows
// of x, using the O(N²) nearest-neighbor-chain algorithm with the
// Lance-Williams update. It panics on an empty matrix.
func Ward(x *mat.Dense) *Linkage {
	n := x.Rows()
	if n == 1 {
		return &Linkage{N: 1}
	}
	d2 := mat.PairwiseSqDist(x)
	return WardFromSqDistances(d2)
}

// WardFromSqDistances runs Ward clustering from a precomputed condensed
// matrix of squared Euclidean distances. The input is consumed (mutated).
func WardFromSqDistances(d2 *mat.Condensed) *Linkage {
	n := d2.N()
	active := make([]bool, n)
	size := make([]int, n)
	node := make([]int, n) // current dendrogram node id held by each slot
	for i := range active {
		active[i] = true
		size[i] = 1
		node[i] = i
	}

	type rawMerge struct {
		a, b   int // node ids
		height float64
		size   int
	}
	raw := make([]rawMerge, 0, n-1)

	chain := make([]int, 0, n)
	remaining := n
	nextSlotScan := 0

	for remaining > 1 {
		if len(chain) == 0 {
			// Seed the chain with any active slot.
			for !active[nextSlotScan] {
				nextSlotScan++
			}
			chain = append(chain, nextSlotScan)
		}
		x := chain[len(chain)-1]
		// Nearest active neighbor of x, preferring the previous chain
		// element on ties so reciprocity is reached.
		var prev = -1
		if len(chain) >= 2 {
			prev = chain[len(chain)-2]
		}
		best := -1
		bestD := math.Inf(1)
		if prev >= 0 {
			bestD = d2.At(x, prev)
			best = prev
		}
		for y := 0; y < n; y++ {
			if y == x || !active[y] {
				continue
			}
			if dv := d2.At(x, y); dv < bestD {
				bestD = dv
				best = y
			}
		}
		if best == prev && prev >= 0 {
			// Reciprocal nearest neighbors: merge x and prev.
			chain = chain[:len(chain)-2]
			mergeInto(d2, active, size, x, prev, bestD)
			raw = append(raw, rawMerge{
				a: node[prev], b: node[x],
				height: math.Sqrt(bestD),
				size:   size[prev],
			})
			node[prev] = n + len(raw) - 1 // provisional id, relabeled below
			remaining--
		} else {
			chain = append(chain, best)
		}
	}

	// NN-chain emits merges out of height order; sort ascending and
	// relabel internal node ids so Merges[s] creates node N+s, keeping
	// the tree topology intact. Children always have strictly smaller or
	// equal heights, so a stable sort preserves dependencies.
	order := make([]int, len(raw))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return raw[order[i]].height < raw[order[j]].height
	})
	relabel := make(map[int]int, len(raw))
	merges := make([]Merge, len(raw))
	for newIdx, oldIdx := range order {
		m := raw[oldIdx]
		a, b := m.a, m.b
		if a >= n {
			if v, ok := relabel[a]; ok {
				a = v
			}
		}
		if b >= n {
			if v, ok := relabel[b]; ok {
				b = v
			}
		}
		if a > b {
			a, b = b, a
		}
		merges[newIdx] = Merge{A: a, B: b, Height: m.height, Size: m.size}
		relabel[n+oldIdx] = n + newIdx
	}
	return &Linkage{N: n, Merges: merges}
}

// mergeInto merges slot src into slot dst (Ward/Lance-Williams), updating
// distances of dst to every other active slot and deactivating src.
func mergeInto(d2 *mat.Condensed, active []bool, size []int, src, dst int, dij float64) {
	ni := float64(size[dst])
	nj := float64(size[src])
	for k := 0; k < len(active); k++ {
		if k == src || k == dst || !active[k] {
			continue
		}
		nk := float64(size[k])
		dik := d2.At(dst, k)
		djk := d2.At(src, k)
		newD := ((ni+nk)*dik + (nj+nk)*djk - nk*dij) / (ni + nj + nk)
		d2.Set(dst, k, newD)
	}
	size[dst] += size[src]
	active[src] = false
}

// Cut cuts the dendrogram into k flat clusters, returning a label in
// [0, k) for every leaf. Labels are assigned in order of first appearance
// (leaf 0 always gets label 0). A k outside [1, N] — e.g. straight from a
// CLI flag or a config file — is reported as an error; use CutK when k is
// already validated.
func (l *Linkage) Cut(k int) ([]int, error) {
	labels, _, err := l.cutState(k)
	return labels, err
}

// cutState is Cut plus the root bookkeeping the incremental refinement
// needs: rootOf[label] is the dendrogram node id rooting that cluster.
func (l *Linkage) cutState(k int) (labels, rootOf []int, err error) {
	if k < 1 || k > l.N {
		return nil, nil, fmt.Errorf("cluster: cut at k=%d outside [1,%d]", k, l.N)
	}
	parent := make([]int, l.N+len(l.Merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(a int) int {
		for parent[a] != a {
			parent[a] = parent[parent[a]]
			a = parent[a]
		}
		return a
	}
	// Apply the N-k lowest merges; the k-1 highest remain cut.
	for s := 0; s < l.N-k; s++ {
		m := l.Merges[s]
		node := l.N + s
		parent[find(m.A)] = node
		parent[find(m.B)] = node
	}
	labels = make([]int, l.N)
	rootOf = make([]int, 0, k)
	next := 0
	seen := make(map[int]int)
	for i := 0; i < l.N; i++ {
		root := find(i)
		id, ok := seen[root]
		if !ok {
			id = next
			next++
			seen[root] = id
			rootOf = append(rootOf, root)
		}
		labels[i] = id
	}
	if next != k {
		// The union-find cut applies exactly N-k merges, so any other
		// cluster count means the dendrogram itself is corrupt.
		//lint:allow nopanic dendrogram structural invariant, not reachable from input
		panic(fmt.Sprintf("cluster: cut produced %d clusters, want %d", next, k))
	}
	return labels, rootOf, nil
}

// incrementalCut refines one dendrogram cut across descending k without
// re-running the union-find per candidate: cutting at k applies the N−k
// lowest merges, so the partition at k−1 is the partition at k with
// exactly one more merge applied. Each Refine step joins the two label
// classes under that merge in O(N), against O(N α(N) + merge replay) for
// a from-scratch Cut. The partition at every k is identical to Cut's (the
// flat partition of a dendrogram cut is unique); only the label numbering
// may differ from first-appearance order after the first step, which the
// label-permutation-invariant selection metrics never observe.
type incrementalCut struct {
	l *Linkage
	// K is the current cluster count; Labels holds a dense labeling in
	// [0, K) of the current partition.
	K      int
	Labels []int
	// labelOf maps a root dendrogram node id to its cluster label;
	// rootOf is the inverse, indexed by label.
	labelOf []int
	rootOf  []int
}

// newIncrementalCut starts the refinement at k clusters (labels match
// Cut(k) exactly at this starting point).
func newIncrementalCut(l *Linkage, k int) (*incrementalCut, error) {
	labels, rootOf, err := l.cutState(k)
	if err != nil {
		return nil, err
	}
	c := &incrementalCut{
		l: l, K: k, Labels: labels,
		labelOf: make([]int, l.N+len(l.Merges)),
		rootOf:  rootOf,
	}
	for label, root := range rootOf {
		c.labelOf[root] = label
	}
	return c, nil
}

// Refine applies the next merge, going from K to K−1 clusters. The freed
// label slot is backfilled with the highest label so Labels stay dense.
// Calling Refine at K == 1 is a structural bug.
func (c *incrementalCut) Refine() {
	s := c.l.N - c.K // the first merge Cut(K) did not apply
	m := c.l.Merges[s]
	node := c.l.N + s
	la, lb := c.labelOf[m.A], c.labelOf[m.B]
	keep, freed := la, lb
	if keep > freed {
		keep, freed = freed, keep
	}
	last := c.K - 1
	for i, lab := range c.Labels {
		if lab == freed {
			c.Labels[i] = keep
		} else if lab == last && freed != last {
			c.Labels[i] = freed
		}
	}
	c.labelOf[node] = keep
	c.rootOf[keep] = node
	if freed != last {
		lastRoot := c.rootOf[last]
		c.labelOf[lastRoot] = freed
		c.rootOf[freed] = lastRoot
	}
	c.rootOf = c.rootOf[:last]
	c.K--
}

// CutK is Cut for callers whose k is already validated (the pipeline
// checks its configured K against the antenna count before clustering):
// it panics instead of returning an error, keeping label derivations
// chainable.
func (l *Linkage) CutK(k int) []int {
	labels, err := l.Cut(k)
	if err != nil {
		//lint:allow nopanic validated-k variant, callers check k at the boundary
		panic(err)
	}
	return labels
}

// Threshold returns a dendrogram height that separates exactly k clusters:
// any horizontal cut between the (N-k)-th and (N-k+1)-th merge heights.
// This is the quantity visualized by the dashed lines of Fig. 3.
func (l *Linkage) Threshold(k int) float64 {
	if k <= 1 {
		return math.Inf(1)
	}
	if k > l.N {
		return 0
	}
	hi := l.Merges[l.N-k].Height // first merge NOT applied
	var lo float64
	if l.N-k-1 >= 0 {
		lo = l.Merges[l.N-k-1].Height
	}
	return (lo + hi) / 2
}

// HeightsMonotone reports whether merge heights are non-decreasing — a
// structural invariant of a valid sorted linkage.
func (l *Linkage) HeightsMonotone() bool {
	for i := 1; i < len(l.Merges); i++ {
		if l.Merges[i].Height < l.Merges[i-1].Height-1e-12 {
			return false
		}
	}
	return true
}

// Leaves returns the leaf ids under the given dendrogram node.
func (l *Linkage) Leaves(nodeID int) []int {
	if nodeID < l.N {
		return []int{nodeID}
	}
	m := l.Merges[nodeID-l.N]
	return append(l.Leaves(m.A), l.Leaves(m.B)...)
}
