package cluster

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// Method selects the agglomerative linkage criterion. All four criteria
// are reducible, so the nearest-neighbor-chain algorithm yields exact
// results for each.
type Method int

const (
	// MethodWard minimizes total within-cluster variance (the paper's
	// choice, Section 4.2.1).
	MethodWard Method = iota
	// MethodComplete merges by maximum pairwise distance.
	MethodComplete
	// MethodAverage merges by mean pairwise distance (UPGMA).
	MethodAverage
	// MethodSingle merges by minimum pairwise distance.
	MethodSingle
)

// String returns the linkage name.
func (m Method) String() string {
	switch m {
	case MethodWard:
		return "ward"
	case MethodComplete:
		return "complete"
	case MethodAverage:
		return "average"
	case MethodSingle:
		return "single"
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// Agglomerative runs hierarchical clustering over the rows of x with the
// given linkage. MethodWard delegates to the Ward implementation; the
// others run the same NN-chain over plain Euclidean distances with their
// Lance-Williams update.
func Agglomerative(x *mat.Dense, method Method) *Linkage {
	if method == MethodWard {
		return Ward(x)
	}
	n := x.Rows()
	if n == 1 {
		return &Linkage{N: 1}
	}
	d := PairwiseDistances(x)
	return agglomerateFromDistances(d, method)
}

// agglomerateFromDistances runs the NN-chain over a condensed Euclidean
// distance matrix, consuming it.
func agglomerateFromDistances(d *mat.Condensed, method Method) *Linkage {
	n := d.N()
	active := make([]bool, n)
	size := make([]int, n)
	node := make([]int, n)
	for i := range active {
		active[i] = true
		size[i] = 1
		node[i] = i
	}
	type rawMerge struct {
		a, b   int
		height float64
		size   int
	}
	raw := make([]rawMerge, 0, n-1)
	chain := make([]int, 0, n)
	remaining := n
	nextSlotScan := 0

	update := func(dst, src, k int, dij float64) float64 {
		dik := d.At(dst, k)
		djk := d.At(src, k)
		switch method {
		case MethodComplete:
			return math.Max(dik, djk)
		case MethodAverage:
			ni, nj := float64(size[dst]), float64(size[src])
			return (ni*dik + nj*djk) / (ni + nj)
		case MethodSingle:
			return math.Min(dik, djk)
		}
		// Method is an enum validated by Agglomerative's entry point;
		// reaching here means a new Method constant missed a case.
		//lint:allow nopanic exhaustive-switch guard over an internal enum
		panic("cluster: unsupported method in update")
	}

	for remaining > 1 {
		if len(chain) == 0 {
			for !active[nextSlotScan] {
				nextSlotScan++
			}
			chain = append(chain, nextSlotScan)
		}
		x := chain[len(chain)-1]
		prev := -1
		if len(chain) >= 2 {
			prev = chain[len(chain)-2]
		}
		best := -1
		bestD := math.Inf(1)
		if prev >= 0 {
			bestD = d.At(x, prev)
			best = prev
		}
		for y := 0; y < n; y++ {
			if y == x || !active[y] {
				continue
			}
			if dv := d.At(x, y); dv < bestD {
				bestD = dv
				best = y
			}
		}
		if best == prev && prev >= 0 {
			chain = chain[:len(chain)-2]
			for k := 0; k < n; k++ {
				if k == x || k == prev || !active[k] {
					continue
				}
				d.Set(prev, k, update(prev, x, k, bestD))
			}
			size[prev] += size[x]
			active[x] = false
			raw = append(raw, rawMerge{a: node[prev], b: node[x], height: bestD, size: size[prev]})
			node[prev] = n + len(raw) - 1
			remaining--
		} else {
			chain = append(chain, best)
		}
	}

	// Sort ascending by height and relabel, as in Ward.
	order := make([]int, len(raw))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && raw[order[j]].height < raw[order[j-1]].height; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	relabel := make(map[int]int, len(raw))
	merges := make([]Merge, len(raw))
	for newIdx, oldIdx := range order {
		m := raw[oldIdx]
		a, b := m.a, m.b
		if a >= n {
			if v, ok := relabel[a]; ok {
				a = v
			}
		}
		if b >= n {
			if v, ok := relabel[b]; ok {
				b = v
			}
		}
		if a > b {
			a, b = b, a
		}
		merges[newIdx] = Merge{A: a, B: b, Height: m.height, Size: m.size}
		relabel[n+oldIdx] = n + newIdx
	}
	return &Linkage{N: n, Merges: merges}
}
