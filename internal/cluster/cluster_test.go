package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/rng"
)

// blobs generates k well-separated Gaussian blobs of the given size.
func blobs(k, perCluster, dims int, sep float64, seed uint64) (*mat.Dense, []int) {
	r := rng.New(seed)
	n := k * perCluster
	x := mat.NewDense(n, dims)
	truth := make([]int, n)
	for c := 0; c < k; c++ {
		center := make([]float64, dims)
		for d := range center {
			center[d] = float64(c) * sep * float64((d%2)*2-1)
		}
		center[c%dims] += sep * float64(c+1)
		for i := 0; i < perCluster; i++ {
			idx := c*perCluster + i
			truth[idx] = c
			row := x.Row(idx)
			for d := range row {
				row[d] = center[d] + r.Normal()*0.3
			}
		}
	}
	return x, truth
}

// agreement measures label agreement up to permutation via majority map.
func agreement(got, want []int) float64 {
	// For each got-cluster find its majority want-cluster.
	type key struct{ g, w int }
	counts := map[key]int{}
	for i := range got {
		counts[key{got[i], want[i]}]++
	}
	major := map[int]int{}
	best := map[int]int{}
	for k, c := range counts {
		if c > best[k.g] {
			best[k.g] = c
			major[k.g] = k.w
		}
	}
	ok := 0
	for i := range got {
		if major[got[i]] == want[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(got))
}

func TestWardRecoversBlobs(t *testing.T) {
	x, truth := blobs(4, 25, 5, 4, 42)
	l := Ward(x)
	labels := l.CutK(4)
	if agreement(labels, truth) < 0.99 {
		t.Fatalf("Ward recovered only %.2f of blob structure", agreement(labels, truth))
	}
}

func TestWardSingle(t *testing.T) {
	x := mat.MustFromRows([][]float64{{1, 2}})
	l := Ward(x)
	if l.N != 1 || len(l.Merges) != 0 {
		t.Fatal("single point linkage")
	}
	labels := l.CutK(1)
	if labels[0] != 0 {
		t.Fatal("single point label")
	}
}

func TestWardTwoPoints(t *testing.T) {
	x := mat.MustFromRows([][]float64{{0, 0}, {3, 4}})
	l := Ward(x)
	if len(l.Merges) != 1 {
		t.Fatalf("%d merges", len(l.Merges))
	}
	if math.Abs(l.Merges[0].Height-5) > 1e-9 {
		t.Fatalf("two-point merge height %v, want 5", l.Merges[0].Height)
	}
	if l.Merges[0].Size != 2 {
		t.Fatal("merge size")
	}
}

func TestLinkageInvariants(t *testing.T) {
	x, _ := blobs(3, 15, 4, 3, 7)
	l := Ward(x)
	if len(l.Merges) != l.N-1 {
		t.Fatalf("%d merges for N=%d", len(l.Merges), l.N)
	}
	if !l.HeightsMonotone() {
		t.Fatal("Ward heights must be monotone after sorting")
	}
	// The last merge must cover all leaves.
	if l.Merges[len(l.Merges)-1].Size != l.N {
		t.Fatalf("root size %d", l.Merges[len(l.Merges)-1].Size)
	}
	// Every node id must be referenced at most once as a child.
	seen := map[int]bool{}
	for _, m := range l.Merges {
		if seen[m.A] || seen[m.B] {
			t.Fatal("node used as child twice")
		}
		seen[m.A], seen[m.B] = true, true
	}
	// Leaves of the root enumerate every observation exactly once.
	root := l.N + len(l.Merges) - 1
	leaves := l.Leaves(root)
	if len(leaves) != l.N {
		t.Fatalf("root has %d leaves", len(leaves))
	}
	mark := make([]bool, l.N)
	for _, lf := range leaves {
		if mark[lf] {
			t.Fatal("duplicate leaf")
		}
		mark[lf] = true
	}
}

func TestCutKProperties(t *testing.T) {
	x, _ := blobs(3, 10, 3, 3, 11)
	l := Ward(x)
	for k := 1; k <= 6; k++ {
		labels := l.CutK(k)
		distinct := map[int]bool{}
		for _, lab := range labels {
			distinct[lab] = true
		}
		if len(distinct) != k {
			t.Fatalf("CutK(%d) produced %d clusters", k, len(distinct))
		}
	}
	if l.CutK(l.N)[0] != 0 {
		t.Fatal("full cut labels")
	}
}

func TestCutKNested(t *testing.T) {
	// Cuts must be hierarchical: clusters at k+1 refine clusters at k.
	x, _ := blobs(4, 12, 4, 3, 13)
	l := Ward(x)
	for k := 2; k < 8; k++ {
		coarse := l.CutK(k)
		fine := l.CutK(k + 1)
		parent := map[int]int{}
		for i := range fine {
			if p, ok := parent[fine[i]]; ok {
				if p != coarse[i] {
					t.Fatalf("cut at k=%d does not refine k=%d", k+1, k)
				}
			} else {
				parent[fine[i]] = coarse[i]
			}
		}
	}
}

func TestCutRejectsOutOfRangeK(t *testing.T) {
	l := Ward(mat.MustFromRows([][]float64{{0}, {1}}))
	for _, k := range []int{0, 3} {
		if _, err := l.Cut(k); err == nil {
			t.Fatalf("Cut(%d) should report an error", k)
		}
	}
}

func TestCutKPanicsOnOutOfRangeK(t *testing.T) {
	l := Ward(mat.MustFromRows([][]float64{{0}, {1}}))
	defer func() {
		if recover() == nil {
			t.Fatal("CutK(0) should panic")
		}
	}()
	l.CutK(0)
}

func TestThresholdSeparatesK(t *testing.T) {
	x, _ := blobs(3, 10, 3, 4, 17)
	l := Ward(x)
	for k := 2; k <= 5; k++ {
		th := l.Threshold(k)
		// Count clusters when cutting at height th: number of merges with
		// height > th, plus 1.
		above := 0
		for _, m := range l.Merges {
			if m.Height > th {
				above++
			}
		}
		if above+1 != k {
			t.Fatalf("threshold for k=%d separates %d clusters", k, above+1)
		}
	}
	if !math.IsInf(l.Threshold(1), 1) {
		t.Fatal("k=1 threshold should be +Inf")
	}
}

func TestSilhouetteSeparatedVsRandom(t *testing.T) {
	x, truth := blobs(3, 20, 4, 5, 19)
	d := PairwiseDistances(x)
	good := MustSilhouette(d, truth)
	if good < 0.7 {
		t.Fatalf("well-separated blobs silhouette %v", good)
	}
	// Random labels should be much worse.
	r := rng.New(3)
	bad := make([]int, len(truth))
	for i := range bad {
		bad[i] = r.Intn(3)
	}
	if s := MustSilhouette(d, bad); s > good/2 {
		t.Fatalf("random labels silhouette %v vs %v", s, good)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	x := mat.MustFromRows([][]float64{{0}, {1}, {2}})
	d := PairwiseDistances(x)
	if MustSilhouette(d, []int{0, 0, 0}) != 0 {
		t.Fatal("single cluster silhouette should be 0")
	}
}

func TestDunnIndexBehavior(t *testing.T) {
	x, truth := blobs(3, 15, 4, 6, 23)
	d := PairwiseDistances(x)
	good := MustDunnIndex(d, truth)
	if good <= 0 {
		t.Fatalf("Dunn of separated blobs = %v", good)
	}
	// Merging two true clusters into one label must reduce Dunn.
	merged := make([]int, len(truth))
	for i, v := range truth {
		if v == 2 {
			v = 1
		}
		merged[i] = v
	}
	if worse := MustDunnIndex(d, merged); worse >= good {
		t.Fatalf("merged labeling Dunn %v should be below %v", worse, good)
	}
	if MustDunnIndex(d, make([]int, x.Rows())) != 0 {
		t.Fatal("single cluster Dunn should be 0")
	}
}

func TestDaviesBouldin(t *testing.T) {
	x, truth := blobs(3, 15, 4, 6, 29)
	good := DaviesBouldin(x, truth)
	if math.IsInf(good, 1) || good <= 0 {
		t.Fatalf("DB = %v", good)
	}
	r := rng.New(31)
	bad := make([]int, len(truth))
	for i := range bad {
		bad[i] = r.Intn(3)
	}
	if DaviesBouldin(x, bad) <= good {
		t.Fatal("random labels should have worse (higher) Davies-Bouldin")
	}
	if !math.IsInf(DaviesBouldin(x, make([]int, x.Rows())), 1) {
		t.Fatal("single cluster DB should be +Inf")
	}
}

func TestSweepKAndKnees(t *testing.T) {
	x, _ := blobs(4, 15, 4, 6, 37)
	l := Ward(x)
	d := PairwiseDistances(x)
	points, err := SweepK(l, d, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 7 {
		t.Fatalf("%d sweep points", len(points))
	}
	// Silhouette should peak at the true k=4.
	bestK, bestS := 0, -2.0
	for _, p := range points {
		if p.Silhouette > bestS {
			bestS = p.Silhouette
			bestK = p.K
		}
	}
	if bestK != 4 {
		t.Fatalf("silhouette peaks at k=%d, want 4", bestK)
	}
	knees := Knees(points, 2)
	if len(knees) == 0 || knees[0] != 4 {
		t.Fatalf("knees = %v, want leading 4", knees)
	}
}

func TestKMeansRecoversBlobs(t *testing.T) {
	x, truth := blobs(4, 25, 5, 5, 41)
	res, err := KMeans(x, 4, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if agreement(res.Labels, truth) < 0.95 {
		t.Fatalf("k-means agreement %.2f", agreement(res.Labels, truth))
	}
	if res.Inertia <= 0 {
		t.Fatal("inertia should be positive for noisy blobs")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	x, _ := blobs(3, 10, 3, 3, 43)
	a, err := KMeans(x, 3, 9, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(x, 3, 9, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed should give same labels")
		}
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	x := mat.MustFromRows([][]float64{{0, 0}, {5, 5}, {9, 0}})
	res, err := KMeans(x, 3, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[int]bool{}
	for _, l := range res.Labels {
		distinct[l] = true
	}
	if len(distinct) != 3 {
		t.Fatalf("k=n should give singletons, got %v", res.Labels)
	}
	if res.Inertia > 1e-9 {
		t.Fatalf("k=n inertia %v", res.Inertia)
	}
}

func TestKMeansRejectsOutOfRangeK(t *testing.T) {
	x := mat.MustFromRows([][]float64{{0}, {1}})
	if _, err := KMeans(x, 5, 1, 10); err == nil {
		t.Fatal("k > n should report an error")
	}
	if _, err := KMeans(x, 0, 1, 10); err == nil {
		t.Fatal("k < 1 should report an error")
	}
}

// Property: Ward cut labels are always a valid partition for random data.
func TestWardPartitionProperty(t *testing.T) {
	f := func(seed uint64, rawN, rawK uint8) bool {
		n := int(rawN%20) + 4
		k := int(rawK)%n + 1
		r := rng.New(seed)
		x := mat.NewDense(n, 3)
		for i := 0; i < n; i++ {
			for j := 0; j < 3; j++ {
				x.Set(i, j, r.Normal())
			}
		}
		l := Ward(x)
		labels := l.CutK(k)
		if len(labels) != n {
			return false
		}
		distinct := map[int]bool{}
		for _, lab := range labels {
			if lab < 0 || lab >= k {
				return false
			}
			distinct[lab] = true
		}
		return len(distinct) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Ward agrees with a brute-force minimum-variance agglomeration
// on tiny inputs (exhaustive Lance-Williams without NN-chain).
func TestWardMatchesBruteForceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n := 8
		r := rng.New(seed)
		x := mat.NewDense(n, 2)
		for i := 0; i < n; i++ {
			for j := 0; j < 2; j++ {
				x.Set(i, j, r.Normal())
			}
		}
		want := bruteForceWardHeights(x)
		got := Ward(x)
		if len(got.Merges) != len(want) {
			return false
		}
		for i := range want {
			if math.Abs(got.Merges[i].Height-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// bruteForceWardHeights re-implements Ward by scanning the full distance
// matrix for the global minimum at each step (O(N³), reference only) and
// returns the sorted merge heights.
func bruteForceWardHeights(x *mat.Dense) []float64 {
	n := x.Rows()
	d2 := mat.PairwiseSqDist(x)
	active := make([]bool, n)
	size := make([]int, n)
	for i := range active {
		active[i] = true
		size[i] = 1
	}
	var heights []float64
	for step := 0; step < n-1; step++ {
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if d := d2.At(i, j); d < best {
					best = d
					bi, bj = i, j
				}
			}
		}
		heights = append(heights, math.Sqrt(best))
		mergeInto(d2, active, size, bj, bi, best)
	}
	// Global-minimum merges are already ascending for reducible linkages.
	return heights
}

func BenchmarkWard500x73(b *testing.B) {
	r := rng.New(1)
	x := mat.NewDense(500, 73)
	for i := 0; i < x.Rows(); i++ {
		for j := 0; j < x.Cols(); j++ {
			x.Set(i, j, r.Normal())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Ward(x)
	}
}

func BenchmarkSilhouette500(b *testing.B) {
	x, truth := blobs(5, 100, 10, 4, 3)
	d := PairwiseDistances(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MustSilhouette(d, truth)
	}
}

// The incremental sweep must reproduce the from-scratch reference —
// CutK per k plus the standalone Silhouette/Dunn walks — bit-for-bit
// across the entire k range, k = N included.
func TestSweepKMatchesFromScratch(t *testing.T) {
	x, _ := blobs(4, 11, 5, 7, 41) // 44 points, uneven structure
	l := Ward(x)
	d := PairwiseDistances(x)
	points, err := SweepK(l, d, 2, l.N)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != l.N-1 {
		t.Fatalf("%d sweep points, want %d", len(points), l.N-1)
	}
	for i, p := range points {
		wantK := 2 + i
		if p.K != wantK {
			t.Fatalf("point %d has K=%d, want %d (ascending order)", i, p.K, wantK)
		}
		labels := l.CutK(p.K)
		if sil := MustSilhouette(d, labels); p.Silhouette != sil {
			t.Errorf("k=%d: incremental silhouette %v != from-scratch %v", p.K, p.Silhouette, sil)
		}
		if dunn := MustDunnIndex(d, labels); p.Dunn != dunn {
			t.Errorf("k=%d: incremental Dunn %v != from-scratch %v", p.K, p.Dunn, dunn)
		}
	}
}

// The incremental cut must produce the same partition as Cut at every k
// (same co-membership, label numbering aside).
func TestIncrementalCutPartitionParity(t *testing.T) {
	x, _ := blobs(3, 10, 4, 5, 43)
	l := Ward(x)
	cut, err := newIncrementalCut(l, l.N)
	if err != nil {
		t.Fatal(err)
	}
	for k := l.N; k >= 1; k-- {
		want := l.CutK(k)
		if cut.K != k {
			t.Fatalf("incremental cut at K=%d, want %d", cut.K, k)
		}
		// Compare partitions via canonical first-appearance relabeling.
		canon := func(labels []int) []int {
			m := map[int]int{}
			out := make([]int, len(labels))
			for i, l := range labels {
				id, ok := m[l]
				if !ok {
					id = len(m)
					m[l] = id
				}
				out[i] = id
			}
			return out
		}
		got, ref := canon(cut.Labels), canon(want)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("k=%d: partition mismatch at leaf %d: %v vs %v", k, i, got, ref)
			}
		}
		if k > 1 {
			cut.Refine()
		}
	}
}

// The metrics report mismatched label lengths as errors (nopanic
// contract); the Must variants panic on the same wiring bug.
func TestMetricsLengthMismatchError(t *testing.T) {
	x, truth := blobs(2, 5, 3, 3, 47)
	d := PairwiseDistances(x)
	short := truth[:len(truth)-1]
	if _, err := Silhouette(d, short); err == nil {
		t.Fatal("Silhouette accepted mismatched labels")
	}
	if _, err := DunnIndex(d, short); err == nil {
		t.Fatal("DunnIndex accepted mismatched labels")
	}
	for name, fn := range map[string]func(){
		"MustSilhouette": func() { MustSilhouette(d, short) },
		"MustDunnIndex":  func() { MustDunnIndex(d, short) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic on mismatch", name)
				}
			}()
			fn()
		}()
	}
	l := Ward(x)
	if _, err := SweepK(l, mat.NewCondensed(l.N+1), 2, 5); err == nil {
		t.Fatal("SweepK accepted a mismatched distance matrix")
	}
}
