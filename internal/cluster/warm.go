package cluster

import (
	"repro/internal/mat"
)

// Warm-start clustering: instead of re-running the O(N²) Ward linkage on
// every model refresh, new or changed antennas are assigned to the nearest
// centroid of the existing partition, and a drift statistic measures how
// far the warm assignment diverged from the previous labels. Callers
// escalate to a full re-linkage only when drift exceeds a threshold (see
// analysis.WarmRefreshContext).

// Centroids returns the k × M matrix of per-cluster mean feature vectors
// for the labeled rows of x (rows beyond len(labels) are ignored). Member
// rows accumulate in index order, so the result is deterministic. Empty
// clusters yield a zero centroid.
func Centroids(x *mat.Dense, labels []int, k int) *mat.Dense {
	cents := mat.NewDense(k, x.Cols())
	counts := make([]int, k)
	for i, l := range labels {
		dst := cents.Row(l)
		for j, v := range x.Row(i) {
			dst[j] += v
		}
		counts[l]++
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		row := cents.Row(c)
		inv := 1 / float64(counts[c])
		for j := range row {
			row[j] *= inv
		}
	}
	return cents
}

// WarmAssignment is the outcome of one warm labeling pass.
type WarmAssignment struct {
	// Labels holds one cluster id per row of x: previous labels for clean
	// rows, nearest-centroid assignments for dirty or new rows.
	Labels []int
	// Reassigned counts dirty rows whose nearest centroid differs from
	// their previous cluster; Added counts rows with no previous label.
	Reassigned int
	Added      int
	// Drift is (Reassigned + Added) / rows — the fraction of the
	// population whose membership the warm pass changed.
	Drift float64
}

// WarmAssign labels the rows of x against an existing partition: rows
// listed in dirty (and any rows beyond len(prev), which have no previous
// label) are assigned to the nearest centroid by squared Euclidean
// distance (lowest cluster id wins ties); all other rows keep their
// previous label. Out-of-range or duplicate dirty indices are ignored.
// With no dirty rows and no new rows the labels are a bit-exact copy of
// prev — the drift-0 identity the warm/cold parity contract relies on.
func WarmAssign(x *mat.Dense, centroids *mat.Dense, prev []int, dirty []int) WarmAssignment {
	n := x.Rows()
	wa := WarmAssignment{Labels: make([]int, n)}
	copy(wa.Labels, prev)

	seen := make(map[int]bool, len(dirty))
	assign := func(i int) {
		c := nearestRow(centroids, x.Row(i))
		if i >= len(prev) {
			wa.Added++
		} else if c != prev[i] {
			wa.Reassigned++
		}
		wa.Labels[i] = c
	}
	for _, i := range dirty {
		if i < 0 || i >= n || seen[i] {
			continue
		}
		seen[i] = true
		assign(i)
	}
	for i := len(prev); i < n; i++ {
		if !seen[i] {
			assign(i)
		}
	}
	if n > 0 {
		wa.Drift = float64(wa.Reassigned+wa.Added) / float64(n)
	}
	return wa
}

// nearestRow returns the index of the centroid row closest to v by squared
// Euclidean distance; the lowest index wins ties.
func nearestRow(centroids *mat.Dense, v []float64) int {
	best, bestD := 0, -1.0
	for c := 0; c < centroids.Rows(); c++ {
		var d float64
		for j, cv := range centroids.Row(c) {
			diff := v[j] - cv
			d += diff * diff
		}
		if bestD < 0 || d < bestD {
			bestD = d
			best = c
		}
	}
	return best
}
