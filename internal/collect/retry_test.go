package collect

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/probe"
)

func sampleRecords(n int) []probe.Record {
	recs := make([]probe.Record, n)
	for i := range recs {
		recs[i] = probe.Record{
			Hour: uint32(i % 24), AntennaID: 1, Protocol: probe.TCP,
			ServerPort: 443, ServerName: "netflix.example",
			DownBytes: 1 << 20, UpBytes: 1 << 16,
		}
	}
	return recs
}

// TestExportRetrySurvivesLateCollector reserves a port, starts the export
// against it while nothing is listening, then brings a collector up: the
// retry budget must absorb the refused dials.
func TestExportRetrySurvivesLateCollector(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // free the port; dials now get refused

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	wg.Add(1)
	var exportErr error
	go func() {
		defer wg.Done()
		exportErr = Export(ctx, addr, sampleRecords(10),
			WithDialRetry(8, 20*time.Millisecond), WithRetrySeed(1))
	}()

	// Let at least one dial fail before the collector appears.
	time.Sleep(50 * time.Millisecond)
	c, err := Listen(addr)
	if err != nil {
		t.Fatalf("re-listen on %s: %v", addr, err)
	}
	srvCtx, stop := context.WithCancel(context.Background())
	var srv sync.WaitGroup
	srv.Add(1)
	go func() {
		defer srv.Done()
		_ = c.Serve(srvCtx)
	}()

	wg.Wait()
	if exportErr != nil {
		t.Fatalf("export with retry budget failed: %v", exportErr)
	}
	// Wait for the collector to fold the stream.
	deadline := time.Now().Add(5 * time.Second)
	for c.Snapshot().Records < 10 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	srv.Wait()
	if got := c.Snapshot().Records; got != 10 {
		t.Fatalf("collector aggregated %d records, want 10", got)
	}
}

// TestExportRetryBudgetExhausted verifies a dead endpoint still fails after
// the budget, and that the error reports the attempt count.
func TestExportRetryBudgetExhausted(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	start := time.Now()
	err = Export(context.Background(), addr, sampleRecords(1),
		WithDialRetry(2, 10*time.Millisecond), WithRetrySeed(7))
	if err == nil {
		t.Fatal("export to dead endpoint should fail")
	}
	// 2 retries at ≥10ms and ≥20ms backoff: at least ~30ms elapsed.
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("retries returned too fast (%v): backoff not applied", elapsed)
	}
}

// TestBackoffDelayLargeBudgetNoOverflow is the regression test for the
// exponential-backoff overflow: base << attempt wraps int64 negative once
// attempt is large (attempt ≥ 63, and much earlier for millisecond bases),
// which turned the sleep into a zero-length busy retry. The clamped
// computation must stay at the cap for every attempt in a large budget.
func TestBackoffDelayLargeBudgetNoOverflow(t *testing.T) {
	base := 20 * time.Millisecond
	maxD := 8 * base
	prev := time.Duration(0)
	for attempt := 0; attempt < 500; attempt++ {
		d := backoffDelay(base, maxD, attempt)
		if d <= 0 {
			t.Fatalf("attempt %d: non-positive delay %v (overflow)", attempt, d)
		}
		if d > maxD {
			t.Fatalf("attempt %d: delay %v exceeds maxD %v", attempt, d, maxD)
		}
		if d < prev {
			t.Fatalf("attempt %d: delay %v shrank from %v", attempt, d, prev)
		}
		prev = d
	}
	if got := backoffDelay(base, maxD, 3); got != maxD {
		t.Fatalf("attempt 3 delay %v, want maxD %v (8·base)", got, maxD)
	}
	if got := backoffDelay(base, maxD, 1); got != 2*base {
		t.Fatalf("attempt 1 delay %v, want %v", got, 2*base)
	}
	// A zero maxDelay (WithDialRetry with base 0 keeps the default base and
	// no explicit cap) must still be capped at 8·base, not uncapped.
	if got := backoffDelay(base, 0, 400); got != maxD {
		t.Fatalf("uncapped config: attempt 400 delay %v, want default cap %v", got, maxD)
	}
}

// TestExportSurvivesInjectedDialRefusals drives the exporter through the
// fault layer's dialer: with a 60% refusal rate and a healthy retry
// budget, the export must land every record on a live collector.
func TestExportSurvivesInjectedDialRefusals(t *testing.T) {
	c, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srvCtx, stop := context.WithCancel(context.Background())
	var srv sync.WaitGroup
	srv.Add(1)
	go func() {
		defer srv.Done()
		_ = c.Serve(srvCtx)
	}()

	inj := fault.New(11, map[fault.Site]fault.Rule{fault.Dial: {ErrProb: 0.6}})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := Export(ctx, c.Addr().String(), sampleRecords(10),
		WithDialRetry(16, time.Millisecond), WithRetrySeed(2),
		WithDialContext(inj.Dialer(nil))); err != nil {
		t.Fatalf("export through faulty dialer: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Snapshot().Records < 10 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	srv.Wait()
	if got := c.Snapshot().Records; got != 10 {
		t.Fatalf("collector aggregated %d records, want 10", got)
	}
}

// TestExportRetryHonorsCancel checks a canceled context aborts the backoff
// sleep promptly instead of burning the remaining budget.
func TestExportRetryHonorsCancel(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- Export(ctx, addr, sampleRecords(1), WithDialRetry(10, time.Second))
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("canceled export should fail")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("export did not honor cancellation during backoff")
	}
}
