package collect

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/probe"
)

func sampleRecords(n int) []probe.Record {
	recs := make([]probe.Record, n)
	for i := range recs {
		recs[i] = probe.Record{
			Hour: uint32(i % 24), AntennaID: 1, Protocol: probe.TCP,
			ServerPort: 443, ServerName: "netflix.example",
			DownBytes: 1 << 20, UpBytes: 1 << 16,
		}
	}
	return recs
}

// TestExportRetrySurvivesLateCollector reserves a port, starts the export
// against it while nothing is listening, then brings a collector up: the
// retry budget must absorb the refused dials.
func TestExportRetrySurvivesLateCollector(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // free the port; dials now get refused

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	wg.Add(1)
	var exportErr error
	go func() {
		defer wg.Done()
		exportErr = Export(ctx, addr, sampleRecords(10),
			WithDialRetry(8, 20*time.Millisecond), WithRetrySeed(1))
	}()

	// Let at least one dial fail before the collector appears.
	time.Sleep(50 * time.Millisecond)
	c, err := Listen(addr)
	if err != nil {
		t.Fatalf("re-listen on %s: %v", addr, err)
	}
	srvCtx, stop := context.WithCancel(context.Background())
	var srv sync.WaitGroup
	srv.Add(1)
	go func() {
		defer srv.Done()
		_ = c.Serve(srvCtx)
	}()

	wg.Wait()
	if exportErr != nil {
		t.Fatalf("export with retry budget failed: %v", exportErr)
	}
	// Wait for the collector to fold the stream.
	deadline := time.Now().Add(5 * time.Second)
	for c.Snapshot().Records < 10 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	srv.Wait()
	if got := c.Snapshot().Records; got != 10 {
		t.Fatalf("collector aggregated %d records, want 10", got)
	}
}

// TestExportRetryBudgetExhausted verifies a dead endpoint still fails after
// the budget, and that the error reports the attempt count.
func TestExportRetryBudgetExhausted(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	start := time.Now()
	err = Export(context.Background(), addr, sampleRecords(1),
		WithDialRetry(2, 10*time.Millisecond), WithRetrySeed(7))
	if err == nil {
		t.Fatal("export to dead endpoint should fail")
	}
	// 2 retries at ≥10ms and ≥20ms backoff: at least ~30ms elapsed.
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("retries returned too fast (%v): backoff not applied", elapsed)
	}
}

// TestExportRetryHonorsCancel checks a canceled context aborts the backoff
// sleep promptly instead of burning the remaining budget.
func TestExportRetryHonorsCancel(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- Export(ctx, addr, sampleRecords(1), WithDialRetry(10, time.Second))
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("canceled export should fail")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("export did not honor cancellation during backoff")
	}
}
