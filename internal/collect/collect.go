// Package collect implements the network-facing half of the measurement
// substrate: a TCP collection service that accepts probe record streams
// (the Section 3 "passive measurement probes" feeding a central platform)
// and folds them into the per-hour, per-antenna, per-service aggregates the
// analysis consumes, plus the matching exporter client.
//
// The collector accepts many concurrent probe connections, applies the
// wire-format validation of the probe package, classifies and aggregates
// records under a single lock-guarded aggregator (the Sink, shared with the
// HTTP serving path in internal/serve), counts malformed streams without
// letting them poison the aggregate, and shuts down gracefully: closing the
// listener, draining in-flight connections, and honoring context
// cancellation. The exporter client retries transient dial failures with
// jittered exponential backoff under an explicit retry budget.
package collect

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/mat"
	"repro/internal/pipe"
	"repro/internal/probe"
	"repro/internal/rng"
)

// Stats is a point-in-time snapshot of collector activity.
type Stats struct {
	// Connections is the number of probe connections accepted.
	Connections int
	// Records is the number of well-formed records aggregated.
	Records int
	// MalformedStreams counts connections dropped due to framing errors.
	MalformedStreams int
	// UnclassifiedMB is traffic whose server name no classifier rule
	// matched.
	UnclassifiedMB float64
}

// Collector is a TCP server aggregating probe record streams into a Sink.
type Collector struct {
	ln        net.Listener
	sink      *Sink
	readLimit time.Duration
	shutdown  chan struct{}

	// handlers tracks per-connection goroutines so shutdown can drain
	// them; all spawning goes through pipe.Tasks per the module's
	// pool-only-goroutines contract.
	handlers pipe.Tasks
}

// settings is the package's unified option state: one functional-option
// surface configures both entry points. Each entry point reads only the
// fields that concern it — a dial option passed to ListenContext is simply
// inert, and vice versa — so callers can keep one shared option slice.
type settings struct {
	// Collector side.
	readLimit time.Duration
	sink      *Sink
	// Exporter side.
	export exportConfig
}

func defaultSettings() settings {
	return settings{
		readLimit: 30 * time.Second,
		export:    exportConfig{base: 50 * time.Millisecond},
	}
}

// Option customizes ListenContext and Export. The collector options are
// WithReadTimeout and WithSink; the exporter options are WithDialRetry,
// WithRetrySeed and WithDialContext. Options that do not apply to an entry
// point are ignored by it.
type Option func(*settings)

// ExportOption customizes Export.
//
// Deprecated: the option surfaces are unified; every option constructor now
// returns an Option usable with both ListenContext and Export. ExportOption
// remains as an alias so existing call sites compile unchanged.
type ExportOption = Option

// WithReadTimeout bounds how long a connection may stay silent before it
// is dropped (default 30s; tests use shorter values).
func WithReadTimeout(d time.Duration) Option {
	return func(s *settings) { s.readLimit = d }
}

// WithSink folds records into an existing sink instead of a fresh one,
// letting one aggregate receive both TCP and HTTP producers.
func WithSink(sk *Sink) Option {
	return func(s *settings) {
		if sk != nil {
			s.sink = sk
		}
	}
}

// ListenContext starts a collector on addr ("host:port"; use "127.0.0.1:0"
// for an ephemeral port), honoring ctx cancellation while the listener is
// being bound. The caller must invoke Serve to accept connections.
func ListenContext(ctx context.Context, addr string, opts ...Option) (*Collector, error) {
	st := defaultSettings()
	for _, o := range opts {
		o(&st)
	}
	// ListenConfig only consults ctx during name resolution, so a local
	// bind under an already-dead context would still succeed without this.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("collect: listen %s: %w", addr, err)
	}
	var lc net.ListenConfig
	ln, err := lc.Listen(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collect: listen %s: %w", addr, err)
	}
	c := &Collector{
		ln:        ln,
		sink:      st.sink,
		readLimit: st.readLimit,
		shutdown:  make(chan struct{}),
	}
	if c.sink == nil {
		c.sink = NewSink()
	}
	return c, nil
}

// Listen starts a collector on addr.
//
// Deprecated: use ListenContext, which is context-first like the rest of
// the module's entry points. Listen is ListenContext with
// context.Background().
func Listen(addr string, opts ...Option) (*Collector, error) {
	return ListenContext(context.Background(), addr, opts...)
}

// Addr returns the listener address (useful with ephemeral ports).
func (c *Collector) Addr() net.Addr { return c.ln.Addr() }

// Sink returns the aggregation core records are folded into.
func (c *Collector) Sink() *Sink { return c.sink }

// Serve accepts probe connections until the context is canceled or the
// listener fails. It always returns a non-nil error: ctx.Err() after a
// clean shutdown, or the listener error otherwise.
func (c *Collector) Serve(ctx context.Context) error {
	done := make(chan struct{})
	var watch pipe.Tasks
	defer watch.Wait()
	defer close(done)
	watch.Go(func() {
		select {
		case <-ctx.Done():
			close(c.shutdown)
			c.ln.Close()
		case <-done:
		}
	})

	for {
		conn, err := c.ln.Accept()
		if err != nil {
			// Drain in-flight connections before returning.
			c.handlers.Wait()
			select {
			case <-c.shutdown:
				return ctx.Err()
			default:
			}
			return fmt.Errorf("collect: accept: %w", err)
		}
		c.sink.NoteConnection()
		c.handlers.Go(func() { c.handle(conn) })
	}
}

// handle drains one probe stream. Records are aggregated as they arrive so
// a long-lived probe feed contributes continuously.
func (c *Collector) handle(conn net.Conn) {
	defer conn.Close()

	reader := probe.NewReader(conn)
	for {
		if c.readLimit > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(c.readLimit)); err != nil {
				return
			}
		}
		rec, err := reader.Read()
		if err == io.EOF {
			return
		}
		if err != nil {
			c.sink.NoteMalformed()
			return
		}
		c.sink.Add(rec)
	}
}

// Snapshot returns current collector statistics.
func (c *Collector) Snapshot() Stats { return c.sink.Snapshot() }

// TotalMB returns the aggregated MB for (antenna, service).
func (c *Collector) TotalMB(antenna uint32, service int) float64 {
	return c.sink.TotalMB(antenna, service)
}

// HourlyMB returns the aggregated MB for (antenna, service, hour).
func (c *Collector) HourlyMB(antenna uint32, service int, hour uint32) float64 {
	return c.sink.HourlyMB(antenna, service, hour)
}

// Close stops the listener immediately. In-flight handlers finish on their
// own; use Serve with a canceled context for a drained shutdown.
func (c *Collector) Close() error { return c.ln.Close() }

// TrafficMatrix materializes the aggregated totals as an antennas × M
// traffic matrix for antenna ids [0, antennas) — the T matrix of
// Section 4.1 as collected over the wire.
func (c *Collector) TrafficMatrix(antennas, numServices int) *mat.Dense {
	return c.sink.TrafficMatrix(antennas, numServices)
}

// ErrNoRecords reports an Export call with nothing to send.
var ErrNoRecords = errors.New("collect: no records to export")

// exportConfig carries the exporter's retry policy.
type exportConfig struct {
	attempts int
	base     time.Duration
	maxDelay time.Duration
	seed     uint64
	seedSet  bool
	dial     func(ctx context.Context, addr string) (net.Conn, error)
}

// WithDialRetry retries transient dial failures up to budget additional
// attempts, sleeping base·2ⁱ plus up to 50% deterministic jitter between
// attempts (capped at 8·base). A refused connection during a collector
// restart no longer fails the whole export.
func WithDialRetry(budget int, base time.Duration) Option {
	return func(s *settings) {
		if budget > 0 {
			s.export.attempts = budget
		}
		if base > 0 {
			s.export.base = base
			s.export.maxDelay = 8 * base
		}
	}
}

// WithRetrySeed selects the jitter stream (the default derives it from the
// target address, so distinct exporters desynchronize their retries).
func WithRetrySeed(seed uint64) Option {
	return func(s *settings) {
		s.export.seed = seed
		s.export.seedSet = true
	}
}

// WithDialContext replaces the exporter's dialer. This is the seam the
// fault-injection harness (internal/fault) wraps to exercise refused
// dials, mid-stream resets, and slow reads; proxies and test transports
// fit the same slot.
func WithDialContext(dial func(ctx context.Context, addr string) (net.Conn, error)) Option {
	return func(s *settings) {
		if dial != nil {
			s.export.dial = dial
		}
	}
}

// backoffDelay computes the un-jittered delay before retry number attempt:
// base·2^attempt capped at maxDelay. The doubling stops at the cap instead
// of shifting by the raw attempt count, so a large retry budget cannot
// overflow time.Duration into a negative (i.e. zero-length) sleep.
func backoffDelay(base, maxDelay time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if maxDelay <= 0 {
		maxDelay = 8 * base
	}
	delay := base
	for i := 0; i < attempt && delay < maxDelay; i++ {
		delay <<= 1
	}
	if delay > maxDelay {
		delay = maxDelay
	}
	return delay
}

// dialRetry dials addr, retrying per cfg with jittered exponential backoff.
// Backoff sleeps honor context cancellation.
func dialRetry(ctx context.Context, addr string, cfg exportConfig) (net.Conn, error) {
	dial := cfg.dial
	if dial == nil {
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	jitter := rng.New(cfg.seed)
	var lastErr error
	for attempt := 0; ; attempt++ {
		conn, err := dial(ctx, addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if attempt >= cfg.attempts || ctx.Err() != nil {
			break
		}
		delay := backoffDelay(cfg.base, cfg.maxDelay, attempt)
		// Up to 50% jitter, drawn from a deterministic per-exporter stream.
		delay += time.Duration(jitter.Float64() * 0.5 * float64(delay))
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, fmt.Errorf("collect: dial %s: %w", addr, ctx.Err())
		case <-timer.C:
		}
	}
	return nil, fmt.Errorf("collect: dial %s after %d attempts: %w", addr, cfg.attempts+1, lastErr)
}

// seedFromAddr hashes the target address into a jitter seed (FNV-1a).
func seedFromAddr(addr string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= 0x100000001b3
	}
	return h
}

// Export dials a collector and streams the given records over one
// connection, honoring context cancellation between writes. By default the
// dial is attempted once; pass WithDialRetry to survive transient refusals.
func Export(ctx context.Context, addr string, records []probe.Record, opts ...Option) error {
	if len(records) == 0 {
		return ErrNoRecords
	}
	st := defaultSettings()
	for _, o := range opts {
		o(&st)
	}
	cfg := st.export
	if !cfg.seedSet {
		cfg.seed = seedFromAddr(addr)
	}
	conn, err := dialRetry(ctx, addr, cfg)
	if err != nil {
		return err
	}
	defer conn.Close()

	w := probe.NewWriter(conn)
	for i, rec := range records {
		if i%256 == 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
		}
		if err := w.Write(rec); err != nil {
			return fmt.Errorf("collect: write record %d: %w", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("collect: flush: %w", err)
	}
	return nil
}
