// Package collect implements the network-facing half of the measurement
// substrate: a TCP collection service that accepts probe record streams
// (the Section 3 "passive measurement probes" feeding a central platform)
// and folds them into the per-hour, per-antenna, per-service aggregates the
// analysis consumes, plus the matching exporter client.
//
// The collector accepts many concurrent probe connections, applies the
// wire-format validation of the probe package, classifies and aggregates
// records under a single lock-guarded aggregator, counts malformed streams
// without letting them poison the aggregate, and shuts down gracefully:
// closing the listener, draining in-flight connections, and honoring
// context cancellation.
package collect

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/mat"
	"repro/internal/pipe"
	"repro/internal/probe"
)

// Stats is a point-in-time snapshot of collector activity.
type Stats struct {
	// Connections is the number of probe connections accepted.
	Connections int
	// Records is the number of well-formed records aggregated.
	Records int
	// MalformedStreams counts connections dropped due to framing errors.
	MalformedStreams int
	// UnclassifiedMB is traffic whose server name no classifier rule
	// matched.
	UnclassifiedMB float64
}

// Collector is a TCP server aggregating probe record streams.
type Collector struct {
	ln         net.Listener
	classifier *probe.Classifier

	mu        sync.Mutex
	agg       *probe.Aggregator
	stats     Stats
	shutdown  bool
	readLimit time.Duration

	// handlers tracks per-connection goroutines so shutdown can drain
	// them; all spawning goes through pipe.Tasks per the module's
	// pool-only-goroutines contract.
	handlers pipe.Tasks
}

// Option customizes a Collector.
type Option func(*Collector)

// WithReadTimeout bounds how long a connection may stay silent before it
// is dropped (default 30s; tests use shorter values).
func WithReadTimeout(d time.Duration) Option {
	return func(c *Collector) { c.readLimit = d }
}

// Listen starts a collector on addr ("host:port"; use "127.0.0.1:0" for an
// ephemeral port). The caller must invoke Serve to accept connections.
func Listen(addr string, opts ...Option) (*Collector, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collect: listen %s: %w", addr, err)
	}
	c := &Collector{
		ln:         ln,
		classifier: probe.NewClassifier(),
		agg:        probe.NewAggregator(probe.NewClassifier()),
		readLimit:  30 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Addr returns the listener address (useful with ephemeral ports).
func (c *Collector) Addr() net.Addr { return c.ln.Addr() }

// Serve accepts probe connections until the context is canceled or the
// listener fails. It always returns a non-nil error: ctx.Err() after a
// clean shutdown, or the listener error otherwise.
func (c *Collector) Serve(ctx context.Context) error {
	done := make(chan struct{})
	var watch pipe.Tasks
	defer watch.Wait()
	defer close(done)
	watch.Go(func() {
		select {
		case <-ctx.Done():
			c.mu.Lock()
			c.shutdown = true
			c.mu.Unlock()
			c.ln.Close()
		case <-done:
		}
	})

	for {
		conn, err := c.ln.Accept()
		if err != nil {
			// Drain in-flight connections before returning.
			c.handlers.Wait()
			c.mu.Lock()
			wasShutdown := c.shutdown
			c.mu.Unlock()
			if wasShutdown {
				return ctx.Err()
			}
			return fmt.Errorf("collect: accept: %w", err)
		}
		c.mu.Lock()
		c.stats.Connections++
		c.mu.Unlock()
		c.handlers.Go(func() { c.handle(conn) })
	}
}

// handle drains one probe stream. Records are aggregated as they arrive so
// a long-lived probe feed contributes continuously.
func (c *Collector) handle(conn net.Conn) {
	defer conn.Close()

	reader := probe.NewReader(conn)
	for {
		if c.readLimit > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(c.readLimit)); err != nil {
				return
			}
		}
		rec, err := reader.Read()
		if err == io.EOF {
			return
		}
		if err != nil {
			c.mu.Lock()
			c.stats.MalformedStreams++
			c.stats.UnclassifiedMB = c.agg.UnclassifiedMB
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		c.agg.Add(rec)
		c.stats.Records++
		c.stats.UnclassifiedMB = c.agg.UnclassifiedMB
		c.mu.Unlock()
	}
}

// Snapshot returns current collector statistics.
func (c *Collector) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// TotalMB returns the aggregated MB for (antenna, service).
func (c *Collector) TotalMB(antenna uint32, service int) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.agg.TotalMB(antenna, service)
}

// HourlyMB returns the aggregated MB for (antenna, service, hour).
func (c *Collector) HourlyMB(antenna uint32, service int, hour uint32) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.agg.HourlyMB(antenna, service, hour)
}

// Close stops the listener immediately. In-flight handlers finish on their
// own; use Serve with a canceled context for a drained shutdown.
func (c *Collector) Close() error { return c.ln.Close() }

// TrafficMatrix materializes the aggregated totals as an antennas × M
// traffic matrix for antenna ids [0, antennas) — the T matrix of
// Section 4.1 as collected over the wire. Records for antennas outside
// the range are ignored.
func (c *Collector) TrafficMatrix(antennas, numServices int) *mat.Dense {
	t := mat.NewDense(antennas, numServices)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.agg.ForEachTotal(func(antenna uint32, service int, mb float64) {
		if int(antenna) < antennas && service < numServices {
			t.Set(int(antenna), service, mb)
		}
	})
	return t
}

// ErrNoRecords reports an Export call with nothing to send.
var ErrNoRecords = errors.New("collect: no records to export")

// Export dials a collector and streams the given records over one
// connection, honoring context cancellation between writes.
func Export(ctx context.Context, addr string, records []probe.Record) error {
	if len(records) == 0 {
		return ErrNoRecords
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("collect: dial %s: %w", addr, err)
	}
	defer conn.Close()

	w := probe.NewWriter(conn)
	for i, rec := range records {
		if i%256 == 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
		}
		if err := w.Write(rec); err != nil {
			return fmt.Errorf("collect: write record %d: %w", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("collect: flush: %w", err)
	}
	return nil
}
