package collect

import (
	"context"
	"testing"
	"time"
)

// TestListenContextCanceled verifies the context-first entry point refuses
// to bind once its context is gone.
func TestListenContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ListenContext(ctx, "127.0.0.1:0"); err == nil {
		t.Fatal("ListenContext bound a listener under a canceled context")
	}
}

// TestUnifiedOptionSlice exercises the single-option-surface contract: one
// option slice mixing collector and exporter options is accepted by both
// entry points, with each reading only the fields that concern it.
func TestUnifiedOptionSlice(t *testing.T) {
	shared := NewSink()
	opts := []Option{
		WithReadTimeout(time.Second),
		WithSink(shared),
		WithDialRetry(2, 10*time.Millisecond),
		WithRetrySeed(7),
	}

	c, err := ListenContext(context.Background(), "127.0.0.1:0", opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Sink() != shared {
		t.Fatal("collector ignored WithSink from the shared option slice")
	}
	if c.readLimit != time.Second {
		t.Fatalf("collector read limit = %v, want 1s", c.readLimit)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- c.Serve(ctx) }()
	if err := Export(context.Background(), c.Addr().String(), sampleRecords(3), opts...); err != nil {
		t.Fatalf("Export with the shared option slice: %v", err)
	}
	waitForRecords(t, c, 3)
	cancel()
	<-errCh
}

// TestExportSeedDefaultsFromAddr pins the compatibility contract of the
// unification: without WithRetrySeed the jitter seed still derives from the
// target address, and an explicit zero seed is honored rather than being
// mistaken for "unset".
func TestExportSeedDefaultsFromAddr(t *testing.T) {
	st := defaultSettings()
	if st.export.seedSet {
		t.Fatal("seedSet should start false")
	}
	WithRetrySeed(0)(&st)
	if !st.export.seedSet || st.export.seed != 0 {
		t.Fatal("WithRetrySeed(0) should mark the seed as explicitly set")
	}
}

// TestDeprecatedShims keeps the pre-unification spellings compiling and
// working: Listen without a context, and ExportOption as an Option alias.
func TestDeprecatedShims(t *testing.T) {
	var _ ExportOption = WithDialRetry(1, time.Millisecond)

	c, err := Listen("127.0.0.1:0", WithReadTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Addr() == nil {
		t.Fatal("deprecated Listen returned no bound address")
	}
}
