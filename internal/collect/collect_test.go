package collect

import (
	"context"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/probe"
	"repro/internal/rng"
	"repro/internal/services"
)

// startCollector launches a collector on an ephemeral port and returns it
// with its Serve error channel and cancel function.
func startCollector(t *testing.T) (*Collector, chan error, context.CancelFunc) {
	t.Helper()
	c, err := ListenContext(context.Background(), "127.0.0.1:0", WithReadTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- c.Serve(ctx) }()
	return c, errCh, cancel
}

func waitForRecords(t *testing.T, c *Collector, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.Snapshot().Records >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d records (have %d)", want, c.Snapshot().Records)
}

func mkRecords(antenna uint32, hour uint32, mb map[int]float64, seed uint64) []probe.Record {
	perService := make([]float64, services.M)
	for j, v := range mb {
		perService[j] = v
	}
	return probe.GenerateSessions(hour, antenna, perService, rng.New(seed))
}

func TestSingleProbeRoundTrip(t *testing.T) {
	c, errCh, cancel := startCollector(t)
	recs := mkRecords(7, 3, map[int]float64{0: 5.0, 10: 1.25}, 1)
	if err := Export(context.Background(), c.Addr().String(), recs); err != nil {
		t.Fatal(err)
	}
	waitForRecords(t, c, len(recs))

	if got := c.TotalMB(7, 0); math.Abs(got-5.0) > 1e-4 {
		t.Fatalf("service 0 total %v, want 5.0", got)
	}
	if got := c.HourlyMB(7, 10, 3); math.Abs(got-1.25) > 1e-4 {
		t.Fatalf("service 10 hour 3 = %v, want 1.25", got)
	}
	st := c.Snapshot()
	if st.Connections != 1 || st.MalformedStreams != 0 {
		t.Fatalf("stats %+v", st)
	}

	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("Serve returned %v", err)
	}
}

func TestManyConcurrentProbes(t *testing.T) {
	c, errCh, cancel := startCollector(t)
	defer func() {
		cancel()
		<-errCh
	}()

	const probes = 16
	var wg sync.WaitGroup
	total := 0
	var mu sync.Mutex
	for p := 0; p < probes; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			recs := mkRecords(uint32(p), uint32(p%24), map[int]float64{3: 2.0}, uint64(p+1))
			mu.Lock()
			total += len(recs)
			mu.Unlock()
			if err := Export(context.Background(), c.Addr().String(), recs); err != nil {
				t.Errorf("probe %d: %v", p, err)
			}
		}(p)
	}
	wg.Wait()
	waitForRecords(t, c, total)

	// Every antenna contributed exactly 2 MB of service 3.
	for p := 0; p < probes; p++ {
		if got := c.TotalMB(uint32(p), 3); math.Abs(got-2.0) > 1e-4 {
			t.Fatalf("antenna %d total %v", p, got)
		}
	}
	if st := c.Snapshot(); st.Connections != probes {
		t.Fatalf("connections %d, want %d", st.Connections, probes)
	}
}

func TestMalformedStreamIsolated(t *testing.T) {
	c, errCh, cancel := startCollector(t)
	defer func() {
		cancel()
		<-errCh
	}()

	// A garbage connection must be counted and must not poison later
	// aggregation.
	conn, err := net.Dial("tcp", c.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && c.Snapshot().MalformedStreams == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if st := c.Snapshot(); st.MalformedStreams != 1 {
		t.Fatalf("malformed streams %d, want 1", st.MalformedStreams)
	}

	recs := mkRecords(1, 0, map[int]float64{0: 1.0}, 3)
	if err := Export(context.Background(), c.Addr().String(), recs); err != nil {
		t.Fatal(err)
	}
	waitForRecords(t, c, len(recs))
	if got := c.TotalMB(1, 0); math.Abs(got-1.0) > 1e-4 {
		t.Fatalf("post-garbage aggregation broken: %v", got)
	}
}

func TestUnclassifiedTrafficCounted(t *testing.T) {
	c, errCh, cancel := startCollector(t)
	defer func() {
		cancel()
		<-errCh
	}()
	rec := probe.Record{
		Hour: 0, AntennaID: 9, Protocol: probe.TCP, ServerPort: 443,
		ServerName: "unknown.invalid", DownBytes: 3_000_000,
	}
	if err := Export(context.Background(), c.Addr().String(), []probe.Record{rec}); err != nil {
		t.Fatal(err)
	}
	waitForRecords(t, c, 1)
	if st := c.Snapshot(); math.Abs(st.UnclassifiedMB-3.0) > 1e-6 {
		t.Fatalf("unclassified %v, want 3.0", st.UnclassifiedMB)
	}
}

func TestExportEmpty(t *testing.T) {
	if err := Export(context.Background(), "127.0.0.1:1", nil); err != ErrNoRecords {
		t.Fatalf("want ErrNoRecords, got %v", err)
	}
}

func TestExportDialFailure(t *testing.T) {
	// Dial a port nothing listens on.
	recs := mkRecords(0, 0, map[int]float64{0: 1}, 1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if err := Export(context.Background(), addr, recs); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestExportContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	recs := mkRecords(0, 0, map[int]float64{0: 1}, 1)
	err := Export(ctx, "127.0.0.1:1", recs)
	if err == nil {
		t.Fatal("expected error with canceled context")
	}
}

func TestGracefulShutdownWaitsForInFlight(t *testing.T) {
	c, errCh, cancel := startCollector(t)

	// Open a connection, send half a stream, then finish after shutdown
	// has begun: the collector must still aggregate everything.
	conn, err := net.Dial("tcp", c.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	w := probe.NewWriter(conn)
	recs := mkRecords(5, 1, map[int]float64{0: 4.0}, 7)
	half := len(recs) / 2
	for _, r := range recs[:half] {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	waitForRecords(t, c, half)

	cancel() // listener closes; our open connection must keep draining

	for _, r := range recs[half:] {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	if err := <-errCh; err != context.Canceled {
		t.Fatalf("Serve returned %v", err)
	}
	if got := c.TotalMB(5, 0); math.Abs(got-4.0) > 1e-4 {
		t.Fatalf("in-flight records lost: %v of 4.0 MB", got)
	}
	// New connections must be refused after shutdown.
	if _, err := net.DialTimeout("tcp", c.Addr().String(), 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

func TestReadTimeoutDropsSilentConn(t *testing.T) {
	c, err := ListenContext(context.Background(), "127.0.0.1:0", WithReadTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- c.Serve(ctx) }()
	defer func() {
		cancel()
		<-errCh
	}()

	conn, err := net.Dial("tcp", c.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Stay silent; the collector should drop us as malformed/timed out.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if c.Snapshot().MalformedStreams >= 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("silent connection was not dropped")
}

func BenchmarkExportAggregate(b *testing.B) {
	c, err := Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- c.Serve(ctx) }()
	defer func() {
		cancel()
		<-errCh
	}()
	recs := mkRecords(1, 0, map[int]float64{0: 50, 5: 20, 30: 10}, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Export(context.Background(), c.Addr().String(), recs); err != nil {
			b.Fatal(err)
		}
	}
}
