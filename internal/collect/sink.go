package collect

import (
	"sync"

	"repro/internal/mat"
	"repro/internal/probe"
)

// Sink is the transport-independent aggregation core shared by the TCP
// Collector and the HTTP serving path (internal/serve): a lock-guarded
// probe.Aggregator plus the running Stats. Producers on any transport fold
// classified records into one Sink; consumers snapshot totals or
// materialize the traffic matrix.
type Sink struct {
	// mu guards agg and stats. Methods never call out under the lock, so
	// the critical sections stay O(records folded).
	mu    sync.Mutex
	agg   *probe.Aggregator
	stats Stats
}

// NewSink returns an empty sink classifying with the full service catalog.
func NewSink() *Sink {
	return &Sink{agg: probe.NewAggregator(probe.NewClassifier())}
}

// Add classifies and folds one record.
func (s *Sink) Add(rec probe.Record) {
	s.mu.Lock()
	s.addLocked(rec)
	s.mu.Unlock()
}

// AddBatch folds a batch of records under one lock acquisition — the
// ingest path's unit of work.
func (s *Sink) AddBatch(recs []probe.Record) {
	s.mu.Lock()
	for _, rec := range recs {
		s.addLocked(rec)
	}
	s.mu.Unlock()
}

func (s *Sink) addLocked(rec probe.Record) {
	s.agg.Add(rec)
	s.stats.Records++
	s.stats.UnclassifiedMB = s.agg.UnclassifiedMB
}

// NoteConnection counts one accepted producer connection (or HTTP ingest
// request).
func (s *Sink) NoteConnection() {
	s.mu.Lock()
	s.stats.Connections++
	s.mu.Unlock()
}

// NoteMalformed counts one producer stream dropped for framing errors.
func (s *Sink) NoteMalformed() {
	s.mu.Lock()
	s.stats.MalformedStreams++
	s.stats.UnclassifiedMB = s.agg.UnclassifiedMB
	s.mu.Unlock()
}

// Snapshot returns current sink statistics.
func (s *Sink) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// TotalMB returns the aggregated MB for (antenna, service).
func (s *Sink) TotalMB(antenna uint32, service int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.agg.TotalMB(antenna, service)
}

// HourlyMB returns the aggregated MB for (antenna, service, hour).
func (s *Sink) HourlyMB(antenna uint32, service int, hour uint32) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.agg.HourlyMB(antenna, service, hour)
}

// AntennaTotalMB returns the total classified MB of one antenna.
func (s *Sink) AntennaTotalMB(antenna uint32) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.agg.AntennaTotalMB(antenna)
}

// TrafficMatrix materializes the aggregated totals as an antennas × M
// traffic matrix for antenna ids [0, antennas) — the T matrix of
// Section 4.1 as collected over the wire. Records for antennas outside the
// range are ignored.
func (s *Sink) TrafficMatrix(antennas, numServices int) *mat.Dense {
	t := mat.NewDense(antennas, numServices)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.agg.ForEachTotal(func(antenna uint32, service int, mb float64) {
		if int(antenna) < antennas && service < numServices {
			t.Set(int(antenna), service, mb)
		}
	})
	return t
}
