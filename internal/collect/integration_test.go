package collect

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/probe"
	"repro/internal/rng"
	"repro/internal/services"
	"repro/internal/synth"
)

// TestMeasurementToAnalysisPipeline drives the entire stack the way the
// operator's platform does: a synthetic deployment's traffic is rendered
// into per-session probe records, exported over TCP by concurrent probes,
// aggregated by the collector, materialized as the T matrix, and fed to
// the analysis pipeline — which must still discover the cluster structure.
func TestMeasurementToAnalysisPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end integration in -short mode")
	}
	// Small deployment; session generation is the expensive part.
	ds := synth.Generate(synth.Config{Seed: 77, Scale: 0.04, OutdoorCount: 100})
	n := len(ds.Indoor)

	c, err := Listen("127.0.0.1:0", WithReadTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- c.Serve(ctx) }()

	// Each "probe" covers a slice of antennas and exports its sessions
	// over its own TCP connection, concurrently. To bound test cost, the
	// two-month totals are shipped as one synthetic hour per antenna.
	const probes = 4
	var wg sync.WaitGroup
	var sent struct {
		sync.Mutex
		n int
	}
	for p := 0; p < probes; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			r := rng.New(uint64(1000 + p))
			var records []probe.Record
			for id := p; id < n; id += probes {
				records = append(records,
					probe.GenerateSessions(0, uint32(id), ds.Traffic.Row(id), r)...)
			}
			sent.Lock()
			sent.n += len(records)
			sent.Unlock()
			if err := Export(context.Background(), c.Addr().String(), records); err != nil {
				t.Errorf("probe %d: %v", p, err)
			}
		}(p)
	}
	wg.Wait()
	waitForRecords(t, c, sent.n)
	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("Serve: %v", err)
	}

	// The matrix collected over the wire must match the generated one
	// (session byte-splitting rounds at the single-byte level).
	collected := c.TrafficMatrix(n, services.M)
	for i := 0; i < n; i++ {
		for j := 0; j < services.M; j++ {
			want := ds.Traffic.At(i, j)
			got := collected.At(i, j)
			if math.Abs(got-want) > 1e-4*math.Max(want, 1) {
				t.Fatalf("cell (%d,%d): collected %v, generated %v", i, j, got, want)
			}
		}
	}

	// Swap the collected matrix into the dataset and run the analysis:
	// the clusters must still be discovered from wire-collected data.
	ds.Traffic = collected
	res, err := analysis.RunOnDataset(ds, analysis.Config{
		Seed:        77,
		Scale:       0.04,
		ForestTrees: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := res.Purity(); p < 0.8 {
		t.Fatalf("pipeline purity on wire-collected data: %.3f", p)
	}
	if res.SurrogateAccuracy < 0.9 {
		t.Fatalf("surrogate accuracy on wire-collected data: %.3f", res.SurrogateAccuracy)
	}
}
