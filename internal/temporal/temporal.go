// Package temporal models the time dimension of the study: the measurement
// calendar (2022-11-21 through 2023-01-24, as in Section 3), weekly
// hour-of-day activity templates for each kind of indoor environment, the
// 2023-01-19 national strike day, and the per-service temporal shapes
// behind the Figure 11 analysis.
package temporal

import (
	"fmt"
	"time"

	"repro/internal/services"
)

// Calendar describes the paper's recording period at hourly resolution.
// Day 0 is Monday 2022-11-21; the last day is Tuesday 2023-01-24.
type Calendar struct {
	start time.Time
	days  int
}

// NewCalendar returns the paper's two-month measurement calendar.
func NewCalendar() *Calendar {
	return &Calendar{
		start: time.Date(2022, 11, 21, 0, 0, 0, 0, time.UTC),
		days:  65,
	}
}

// Days returns the number of days covered (65).
func (c *Calendar) Days() int { return c.days }

// Hours returns the number of hourly bins covered (65 × 24).
func (c *Calendar) Hours() int { return c.days * 24 }

// DayOfHour returns the day index of an absolute hour index.
func (c *Calendar) DayOfHour(h int) int { return h / 24 }

// HourOfDay returns the hour-of-day (0-23) of an absolute hour index.
func (c *Calendar) HourOfDay(h int) int { return h % 24 }

// Weekday returns the weekday of a day index, with 0 = Monday.
func (c *Calendar) Weekday(day int) int { return day % 7 }

// IsWeekend reports whether the day index is a Saturday or Sunday.
func (c *Calendar) IsWeekend(day int) bool {
	w := c.Weekday(day)
	return w == 5 || w == 6
}

// Date returns the civil date of a day index.
func (c *Calendar) Date(day int) time.Time {
	return c.start.AddDate(0, 0, day)
}

// DateString formats a day index as YYYY-MM-DD.
func (c *Calendar) DateString(day int) string {
	return c.Date(day).Format("2006-01-02")
}

// DayIndex returns the day index of a civil date, or -1 when outside the
// recording period.
func (c *Calendar) DayIndex(year int, month time.Month, day int) int {
	d := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	idx := int(d.Sub(c.start).Hours() / 24)
	if idx < 0 || idx >= c.days {
		return -1
	}
	return idx
}

// StrikeDay returns the day index of the 2023-01-19 national general
// strike, which Section 6 identifies as a near-zero-traffic day for the
// commuter clusters.
func (c *Calendar) StrikeDay() int { return c.DayIndex(2023, time.January, 19) }

// AnalysisWindow returns the [first, last] day indices of the temporal
// figures (2023-01-04 through 2023-01-24, Figs. 10-11).
func (c *Calendar) AnalysisWindow() (first, last int) {
	return c.DayIndex(2023, time.January, 4), c.DayIndex(2023, time.January, 24)
}

// Template is a weekly activity envelope: 168 non-negative hourly weights,
// hour 0 = Monday 00:00. Values are relative intensities, not absolute
// traffic.
type Template struct {
	Name string
	// Week holds the hour-of-week weights.
	Week [168]float64
	// StrikeFactor scales weekday activity on the national strike day;
	// ~0.1 for Parisian commuter templates, closer to 1 for environments
	// the strike barely touched.
	StrikeFactor float64
	// EventDriven marks venues whose traffic exists mostly during
	// scheduled events (stadiums, expo centers).
	EventDriven bool
	// Baseline is the off-event floor for event-driven templates.
	Baseline float64
}

// hourRange sets [from, to) hours of a day to v.
type hourRange struct {
	from, to int
	v        float64
}

func buildWeek(weekday, weekend []hourRange, weekdayBase, weekendBase float64) [168]float64 {
	var w [168]float64
	for d := 0; d < 7; d++ {
		base := weekdayBase
		ranges := weekday
		if d == 5 || d == 6 {
			base = weekendBase
			ranges = weekend
		}
		for h := 0; h < 24; h++ {
			w[d*24+h] = base
		}
		for _, r := range ranges {
			for h := r.from; h < r.to; h++ {
				w[d*24+h] = r.v
			}
		}
	}
	return w
}

// templates is the registry of activity envelopes keyed by the archetype
// template names used in envmodel.
var templates = map[string]*Template{}

func register(t *Template) {
	if _, dup := templates[t.Name]; dup {
		//lint:allow nopanic init-time registration of compiled-in templates
		panic("temporal: duplicate template " + t.Name)
	}
	templates[t.Name] = t
}

func init() {
	// Metro/train commute: sharp 7:30-9:30 and 17:30-19:30 weekday peaks
	// (Section 6), light weekends, deep strike impact in Paris.
	register(&Template{
		Name: "commute",
		Week: buildWeek(
			[]hourRange{
				{6, 7, 0.45}, {7, 10, 1.0}, {10, 16, 0.35},
				{16, 17, 0.5}, {17, 20, 0.95}, {20, 23, 0.25},
			},
			[]hourRange{{9, 21, 0.3}},
			0.06, 0.05,
		),
		StrikeFactor: 0.12,
	})

	// Regional metro: same rhythm, milder strike impact (the paper notes
	// the strike hit cluster 7 less severely).
	regional := &Template{
		Name:         "commute-regional",
		StrikeFactor: 0.55,
	}
	regional.Week = templates["commute"].Week
	register(regional)

	// Office: 9:00-17:30 weekdays with a lunch plateau, idle weekends and
	// evenings (cluster 3's unique signature).
	register(&Template{
		Name: "office",
		Week: buildWeek(
			[]hourRange{
				{8, 9, 0.55}, {9, 12, 1.0}, {12, 13, 0.75},
				{13, 18, 0.95}, {18, 20, 0.25},
			},
			[]hourRange{{10, 17, 0.07}},
			0.05, 0.04,
		),
		StrikeFactor: 0.6,
	})

	// General-use diurnal: even 10:00-20:00 activity on every day of the
	// week (clusters 1), with a Saturday shopping/driving bump.
	diurnal := &Template{
		Name: "diurnal",
		Week: buildWeek(
			[]hourRange{{8, 10, 0.55}, {10, 20, 1.0}, {20, 23, 0.45}},
			[]hourRange{{9, 21, 1.0}, {21, 23, 0.4}},
			0.12, 0.12,
		),
		StrikeFactor: 0.85,
	}
	// Saturday bump (weekend day index 5).
	for h := 9; h < 21; h++ {
		diurnal.Week[5*24+h] *= 1.15
	}
	register(diurnal)

	// Retail with night floor: like diurnal but a Sunday dip and elevated
	// night activity from hotels and hospitals (cluster 2).
	retail := &Template{
		Name: "retail-night",
		Week: buildWeek(
			[]hourRange{{9, 20, 1.0}, {20, 24, 0.5}},
			[]hourRange{{9, 20, 0.95}, {20, 24, 0.5}},
			0.3, 0.3,
		),
		StrikeFactor: 0.85,
	}
	for h := 0; h < 24; h++ {
		retail.Week[6*24+h] *= 0.7 // Sunday dip: smaller stores closed
	}
	register(retail)

	// Event venues: negligible baseline, traffic only when events run.
	register(&Template{
		Name:         "event",
		Week:         buildWeek(nil, nil, 1.0, 1.0),
		StrikeFactor: 1.0,
		EventDriven:  true,
		Baseline:     0.05,
	})

	// Low-intensity venues (cluster 5): flat moderate floor with milder
	// event response.
	register(&Template{
		Name:         "event-quiet",
		Week:         buildWeek(nil, nil, 1.0, 1.0),
		StrikeFactor: 1.0,
		EventDriven:  true,
		Baseline:     0.2,
	})
}

// ByName returns the named template. It panics on unknown names, which
// would indicate an archetype/template wiring bug.
func ByName(name string) *Template {
	t, ok := templates[name]
	if !ok {
		//lint:allow nopanic template names are compiled into the archetype table
		panic(fmt.Sprintf("temporal: unknown template %q", name))
	}
	return t
}

// TemplateNames returns the registered template names (unordered).
func TemplateNames() []string {
	out := make([]string, 0, len(templates))
	for n := range templates {
		out = append(out, n)
	}
	return out
}

// Weight returns the template's relative activity at the given calendar
// position, folding in weekday/weekend structure and the strike day.
// Event-driven templates return their baseline here; event surges are
// applied by the generator via the Event schedule.
func (t *Template) Weight(cal *Calendar, day, hourOfDay int) float64 {
	w := t.Week[cal.Weekday(day)*24+hourOfDay]
	if t.EventDriven {
		w *= t.Baseline
	}
	if day == cal.StrikeDay() && !cal.IsWeekend(day) {
		w *= t.StrikeFactor
	}
	return w
}

// Event is a scheduled gathering at a venue: an inclusive day span with an
// hour span per day and an intensity multiplier relative to the venue's
// nominal volume.
type Event struct {
	FirstDay, LastDay  int
	StartHour, EndHour int // [StartHour, EndHour) each day
	Intensity          float64
	Label              string
}

// Active reports whether the event is in progress at (day, hourOfDay).
func (e Event) Active(day, hourOfDay int) bool {
	return day >= e.FirstDay && day <= e.LastDay &&
		hourOfDay >= e.StartHour && hourOfDay < e.EndHour
}

// ShapeModifier returns the multiplicative factor a service's intrinsic
// temporal shape applies at the given hour, implementing the per-service
// patterns of Fig. 11 (Teams peaks in office hours, Netflix in the
// evening, Waze a couple of hours after event peaks, ...).
func ShapeModifier(shape services.TemporalShape, hourOfDay int, weekend bool) float64 {
	switch shape {
	case services.ShapeCommute:
		if weekend {
			return 0.7
		}
		switch {
		case hourOfDay >= 7 && hourOfDay < 10:
			return 1.9
		case hourOfDay >= 17 && hourOfDay < 20:
			return 1.7
		default:
			return 0.7
		}
	case services.ShapeWorkHours:
		if weekend {
			return 0.35
		}
		switch {
		case hourOfDay >= 9 && hourOfDay < 12:
			return 1.8
		case hourOfDay == 12:
			return 1.3
		case hourOfDay >= 13 && hourOfDay < 18:
			return 1.7
		default:
			return 0.4
		}
	case services.ShapeEvening:
		switch {
		case hourOfDay >= 19 && hourOfDay < 23:
			return 1.9
		case hourOfDay >= 12 && hourOfDay < 14:
			return 1.2 // lunch-break streaming
		default:
			return 0.6
		}
	case services.ShapeNight:
		if hourOfDay >= 22 || hourOfDay < 6 {
			return 2.2
		}
		return 0.7
	case services.ShapePostEvent:
		// The generator shifts venue peaks; outside venues this behaves
		// like a late-evening bias (driving home).
		switch {
		case hourOfDay >= 16 && hourOfDay < 21:
			return 1.5
		case hourOfDay >= 21 && hourOfDay < 24:
			return 1.2
		default:
			return 0.7
		}
	default: // ShapeFlat
		return 1.0
	}
}
