package temporal

import (
	"testing"
	"time"

	"repro/internal/services"
)

func TestCalendarSpan(t *testing.T) {
	c := NewCalendar()
	if c.Days() != 65 {
		t.Fatalf("Days = %d, want 65 (2022-11-21..2023-01-24)", c.Days())
	}
	if c.Hours() != 65*24 {
		t.Fatalf("Hours = %d", c.Hours())
	}
	if c.DateString(0) != "2022-11-21" {
		t.Fatalf("day 0 = %s", c.DateString(0))
	}
	if c.DateString(c.Days()-1) != "2023-01-24" {
		t.Fatalf("last day = %s", c.DateString(c.Days()-1))
	}
}

func TestCalendarWeekdays(t *testing.T) {
	c := NewCalendar()
	// 2022-11-21 was a Monday.
	if c.Weekday(0) != 0 {
		t.Fatal("day 0 should be Monday")
	}
	if !c.IsWeekend(5) || !c.IsWeekend(6) {
		t.Fatal("days 5/6 should be the first weekend")
	}
	if c.IsWeekend(7) {
		t.Fatal("day 7 should be Monday again")
	}
	// Cross-check against time.Time.
	for day := 0; day < c.Days(); day++ {
		wd := c.Date(day).Weekday()
		wantWeekend := wd == time.Saturday || wd == time.Sunday
		if c.IsWeekend(day) != wantWeekend {
			t.Fatalf("weekend mismatch at day %d (%s)", day, c.DateString(day))
		}
	}
}

func TestCalendarHourMath(t *testing.T) {
	c := NewCalendar()
	h := 3*24 + 15
	if c.DayOfHour(h) != 3 || c.HourOfDay(h) != 15 {
		t.Fatal("hour decomposition")
	}
}

func TestStrikeDay(t *testing.T) {
	c := NewCalendar()
	sd := c.StrikeDay()
	if sd < 0 || c.DateString(sd) != "2023-01-19" {
		t.Fatalf("strike day = %d (%s)", sd, c.DateString(sd))
	}
	if c.IsWeekend(sd) {
		t.Fatal("2023-01-19 was a Thursday")
	}
}

func TestAnalysisWindow(t *testing.T) {
	c := NewCalendar()
	first, last := c.AnalysisWindow()
	if c.DateString(first) != "2023-01-04" || c.DateString(last) != "2023-01-24" {
		t.Fatalf("window = %s..%s", c.DateString(first), c.DateString(last))
	}
	if last-first+1 != 21 {
		t.Fatalf("window spans %d days, want 21", last-first+1)
	}
}

func TestDayIndexOutOfRange(t *testing.T) {
	c := NewCalendar()
	if c.DayIndex(2022, time.November, 20) != -1 {
		t.Fatal("day before the period should be -1")
	}
	if c.DayIndex(2023, time.January, 25) != -1 {
		t.Fatal("day after the period should be -1")
	}
	if c.DayIndex(2022, time.December, 25) < 0 {
		t.Fatal("Christmas should be inside the period")
	}
}

func TestTemplatesRegistered(t *testing.T) {
	for _, name := range []string{"commute", "commute-regional", "office", "diurnal", "retail-night", "event", "event-quiet"} {
		tpl := ByName(name)
		if tpl.Name != name {
			t.Fatalf("template %q name mismatch", name)
		}
		for i, v := range tpl.Week {
			if v < 0 {
				t.Fatalf("template %q has negative weight at hour %d", name, i)
			}
		}
	}
}

func TestByNameUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ByName("nonexistent")
}

func TestCommutePeaks(t *testing.T) {
	c := NewCalendar()
	tpl := ByName("commute")
	// Weekday morning peak dominates midday and night (day 1 = Tuesday).
	morning := tpl.Weight(c, 1, 8)
	midday := tpl.Weight(c, 1, 13)
	night := tpl.Weight(c, 1, 3)
	evening := tpl.Weight(c, 1, 18)
	if morning <= midday || evening <= midday || midday <= night {
		t.Fatalf("commute profile wrong: morning=%v midday=%v evening=%v night=%v",
			morning, midday, evening, night)
	}
	// Weekends are much weaker than weekday peaks.
	weekend := tpl.Weight(c, 5, 8)
	if weekend >= morning/2 {
		t.Fatalf("weekend %v should be well below weekday peak %v", weekend, morning)
	}
}

func TestStrikeImpact(t *testing.T) {
	c := NewCalendar()
	sd := c.StrikeDay()
	commute := ByName("commute")
	regional := ByName("commute-regional")
	// Same weekday one week earlier for comparison.
	ref := sd - 7
	strikeRatioParis := commute.Weight(c, sd, 8) / commute.Weight(c, ref, 8)
	strikeRatioRegional := regional.Weight(c, sd, 8) / regional.Weight(c, ref, 8)
	if strikeRatioParis > 0.2 {
		t.Fatalf("Paris commute strike ratio %v, want deep cut", strikeRatioParis)
	}
	if strikeRatioRegional <= strikeRatioParis {
		t.Fatal("the strike should hit regional metros less severely")
	}
}

func TestOfficeQuietOutsideHours(t *testing.T) {
	c := NewCalendar()
	tpl := ByName("office")
	work := tpl.Weight(c, 1, 10)
	evening := tpl.Weight(c, 1, 21)
	weekend := tpl.Weight(c, 5, 11)
	if work <= 4*evening {
		t.Fatalf("office evening should be quiet: work=%v evening=%v", work, evening)
	}
	if work <= 4*weekend {
		t.Fatalf("office weekend should be quiet: work=%v weekend=%v", work, weekend)
	}
}

func TestRetailSundayDipAndNightFloor(t *testing.T) {
	c := NewCalendar()
	tpl := ByName("retail-night")
	saturday := tpl.Weight(c, 5, 12)
	sunday := tpl.Weight(c, 6, 12)
	if sunday >= saturday {
		t.Fatal("retail Sunday should dip below Saturday")
	}
	commuteNight := ByName("commute").Weight(c, 1, 2)
	retailNight := tpl.Weight(c, 1, 2)
	if retailNight <= commuteNight {
		t.Fatal("retail-night should keep a higher night floor than commute")
	}
}

func TestEventTemplatesBaseline(t *testing.T) {
	c := NewCalendar()
	event := ByName("event")
	quiet := ByName("event-quiet")
	if !event.EventDriven || !quiet.EventDriven {
		t.Fatal("event templates must be event-driven")
	}
	if event.Weight(c, 1, 15) >= quiet.Weight(c, 1, 15) {
		t.Fatal("bursty venues should have a lower off-event floor than cluster-5 venues")
	}
}

func TestEventActive(t *testing.T) {
	e := Event{FirstDay: 10, LastDay: 12, StartHour: 18, EndHour: 23, Intensity: 5}
	if !e.Active(11, 20) {
		t.Fatal("event should be active mid-span")
	}
	if e.Active(11, 23) || e.Active(9, 20) || e.Active(13, 20) || e.Active(11, 17) {
		t.Fatal("event active outside bounds")
	}
}

func TestShapeModifiers(t *testing.T) {
	// Teams (work hours): weekday 10h >> weekday 22h, and >> weekend.
	if ShapeModifier(services.ShapeWorkHours, 10, false) <= ShapeModifier(services.ShapeWorkHours, 22, false) {
		t.Fatal("work-hours shape should peak in office hours")
	}
	if ShapeModifier(services.ShapeWorkHours, 10, false) <= ShapeModifier(services.ShapeWorkHours, 10, true) {
		t.Fatal("work-hours shape should be weekday-skewed")
	}
	// Netflix (evening): 21h >> 10h.
	if ShapeModifier(services.ShapeEvening, 21, false) <= ShapeModifier(services.ShapeEvening, 10, false) {
		t.Fatal("evening shape should peak at night")
	}
	// Spotify (commute): 8h >> 13h on weekdays.
	if ShapeModifier(services.ShapeCommute, 8, false) <= ShapeModifier(services.ShapeCommute, 13, false) {
		t.Fatal("commute shape should peak at 8am")
	}
	// Night shape: 2h >> 14h.
	if ShapeModifier(services.ShapeNight, 2, false) <= ShapeModifier(services.ShapeNight, 14, false) {
		t.Fatal("night shape should peak overnight")
	}
	// Flat shape is 1 everywhere.
	for h := 0; h < 24; h++ {
		if ShapeModifier(services.ShapeFlat, h, false) != 1 {
			t.Fatal("flat shape must be 1")
		}
	}
	// All shapes stay positive.
	for shape := services.ShapeFlat; shape <= services.ShapePostEvent; shape++ {
		for h := 0; h < 24; h++ {
			for _, we := range []bool{false, true} {
				if ShapeModifier(shape, h, we) <= 0 {
					t.Fatalf("shape %d hour %d non-positive", shape, h)
				}
			}
		}
	}
}

func TestTemplateNamesComplete(t *testing.T) {
	names := TemplateNames()
	if len(names) < 7 {
		t.Fatalf("only %d templates registered", len(names))
	}
}
