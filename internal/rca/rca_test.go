package rca

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func TestRCAUniformMatrixIsOne(t *testing.T) {
	// When every antenna has the same service mix, no antenna is
	// advantaged: RCA = 1 everywhere.
	m := mat.MustFromRows([][]float64{
		{10, 20, 30},
		{1, 2, 3},
		{100, 200, 300},
	})
	r := RCA(m)
	for i := 0; i < r.Rows(); i++ {
		for j := 0; j < r.Cols(); j++ {
			if math.Abs(r.At(i, j)-1) > 1e-12 {
				t.Fatalf("RCA(%d,%d) = %v, want 1", i, j, r.At(i, j))
			}
		}
	}
}

func TestRCADetectsOverUtilization(t *testing.T) {
	// Antenna 0 spends all its traffic on service 0 while the network is
	// split evenly: service 0 is over-utilized there.
	m := mat.MustFromRows([][]float64{
		{10, 0},
		{5, 15},
	})
	r := RCA(m)
	if r.At(0, 0) <= 1 {
		t.Fatalf("over-utilized cell RCA = %v, want > 1", r.At(0, 0))
	}
	if r.At(0, 1) != 0 {
		t.Fatalf("unused service RCA = %v, want 0", r.At(0, 1))
	}
	if r.At(1, 1) <= 1 {
		t.Fatalf("antenna 1 over-uses service 1: RCA = %v", r.At(1, 1))
	}
}

func TestRCAHandlesZeroTotals(t *testing.T) {
	m := mat.MustFromRows([][]float64{
		{0, 0},
		{1, 0},
	})
	r := RCA(m)
	// Antenna 0 has no traffic; service 1 has no traffic network-wide.
	if r.At(0, 0) != 0 || r.At(0, 1) != 0 || r.At(1, 1) != 0 {
		t.Fatal("zero totals must yield RCA 0")
	}
	zero := mat.NewDense(2, 2)
	rz := RCA(zero)
	if rz.Sum() != 0 {
		t.Fatal("all-zero matrix must yield all-zero RCA")
	}
}

func TestRSCAMapping(t *testing.T) {
	rcaM := mat.MustFromRows([][]float64{{0, 1, 3}})
	s := RSCAFromRCA(rcaM)
	if s.At(0, 0) != -1 {
		t.Fatalf("RCA 0 → RSCA %v, want -1", s.At(0, 0))
	}
	if s.At(0, 1) != 0 {
		t.Fatalf("RCA 1 → RSCA %v, want 0", s.At(0, 1))
	}
	if math.Abs(s.At(0, 2)-0.5) > 1e-12 {
		t.Fatalf("RCA 3 → RSCA %v, want 0.5", s.At(0, 2))
	}
}

func TestRSCABoundsOnRandomTraffic(t *testing.T) {
	m := mat.NewDense(40, 20)
	seed := uint64(12345)
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			seed = seed*6364136223846793005 + 1442695040888963407
			m.Set(i, j, float64(seed>>40))
		}
	}
	if err := Validate(RSCA(m)); err != nil {
		t.Fatal(err)
	}
}

func TestRSCASymmetryProperty(t *testing.T) {
	// The defining property of RSCA: RCA = x and RCA = 1/x map to ±s.
	f := func(raw uint16) bool {
		x := float64(raw)/1000 + 0.001
		a := (x - 1) / (x + 1)
		b := (1/x - 1) / (1/x + 1)
		return math.Abs(a+b) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRSCAUnderOverBalance(t *testing.T) {
	// Build a matrix with one heavily skewed antenna: its RSCA must show
	// both over-utilization (>0) and under-utilization (<0), bounded.
	m := mat.MustFromRows([][]float64{
		{100, 1, 1},
		{10, 10, 10},
		{10, 10, 10},
	})
	s := RSCA(m)
	if s.At(0, 0) <= 0 {
		t.Fatal("skewed antenna should over-use service 0")
	}
	if s.At(0, 1) >= 0 {
		t.Fatal("skewed antenna should under-use service 1")
	}
	if err := Validate(s); err != nil {
		t.Fatal(err)
	}
}

func TestOutdoorReference(t *testing.T) {
	indoor := mat.MustFromRows([][]float64{
		{30, 10},
		{30, 30},
	})
	ref, err := NewOutdoorReference(indoor)
	if err != nil {
		t.Fatal(err)
	}
	// Indoor shares: service 0 = 60/100, service 1 = 40/100.
	if math.Abs(ref.ServiceShare[0]-0.6) > 1e-12 || math.Abs(ref.ServiceShare[1]-0.4) > 1e-12 {
		t.Fatalf("shares = %v", ref.ServiceShare)
	}

	outdoor := mat.MustFromRows([][]float64{
		{60, 40}, // exactly the indoor composition → RCA 1
		{0, 100}, // all service 1 → RCA 0 / 2.5
	})
	r, err := ref.RCAOutdoor(outdoor)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.At(0, 0)-1) > 1e-12 || math.Abs(r.At(0, 1)-1) > 1e-12 {
		t.Fatalf("indoor-like outdoor antenna RCA = %v,%v", r.At(0, 0), r.At(0, 1))
	}
	if r.At(1, 0) != 0 || math.Abs(r.At(1, 1)-2.5) > 1e-12 {
		t.Fatalf("skewed outdoor antenna RCA = %v,%v", r.At(1, 0), r.At(1, 1))
	}

	s, err := ref.RSCAOutdoor(outdoor)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(s); err != nil {
		t.Fatal(err)
	}
}

func TestOutdoorReferenceErrors(t *testing.T) {
	if _, err := NewOutdoorReference(mat.NewDense(2, 2)); err == nil {
		t.Fatal("zero indoor matrix should error")
	}
	ref, err := NewOutdoorReference(mat.MustFromRows([][]float64{{1, 1}}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.RCAOutdoor(mat.NewDense(1, 3)); err == nil {
		t.Fatal("service-count mismatch should error")
	}
}

func TestNormalizeByGlobalMax(t *testing.T) {
	m := mat.MustFromRows([][]float64{{1, 2}, {4, 0}})
	n := NormalizeByGlobalMax(m)
	if n.At(1, 0) != 1 || n.At(0, 0) != 0.25 {
		t.Fatalf("normalized = %v %v", n.At(1, 0), n.At(0, 0))
	}
	if m.At(1, 0) != 4 {
		t.Fatal("input must not be mutated")
	}
	z := NormalizeByGlobalMax(mat.NewDense(2, 2))
	if z.Sum() != 0 {
		t.Fatal("all-zero matrix unchanged")
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	bad := mat.MustFromRows([][]float64{{0, 1.5}})
	if err := Validate(bad); err == nil {
		t.Fatal("out-of-range value should fail validation")
	}
	nan := mat.MustFromRows([][]float64{{math.NaN()}})
	if err := Validate(nan); err == nil {
		t.Fatal("NaN should fail validation")
	}
}

// Property: for any non-negative traffic matrix, RSCA is within [-1, 1]
// (the paper's Section 4.1 claim motivating the transform).
func TestRSCABoundedProperty(t *testing.T) {
	f := func(cells [12]uint8) bool {
		m := mat.NewDense(3, 4)
		for i := 0; i < 3; i++ {
			for j := 0; j < 4; j++ {
				m.Set(i, j, float64(cells[i*4+j]))
			}
		}
		return Validate(RSCA(m)) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: RCA is scale-invariant — multiplying all traffic by a constant
// leaves the index unchanged.
func TestRCAScaleInvarianceProperty(t *testing.T) {
	f := func(cells [6]uint8, scaleRaw uint8) bool {
		scale := float64(scaleRaw%100) + 1
		a := mat.NewDense(2, 3)
		b := mat.NewDense(2, 3)
		for i := 0; i < 2; i++ {
			for j := 0; j < 3; j++ {
				v := float64(cells[i*3+j]) + 1
				a.Set(i, j, v)
				b.Set(i, j, v*scale)
			}
		}
		ra, rb := RCA(a), RCA(b)
		for i := 0; i < 2; i++ {
			for j := 0; j < 3; j++ {
				if math.Abs(ra.At(i, j)-rb.At(i, j)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRSCA500x73(b *testing.B) {
	m := mat.NewDense(500, 73)
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			m.Set(i, j, float64((i*73+j)%991)+1)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RSCA(m)
	}
}
