package rca

import (
	"fmt"

	"repro/internal/mat"
)

// Accumulator maintains an antennas × services traffic matrix as the sum of
// a frozen base campaign and a live overlay of folded hourly aggregates,
// tracking which antenna rows changed between materializations. It is the
// RSCA fold-in substrate of the warm refresh path: the serve-side refresh
// controller folds collector totals into the overlay and hands the
// materialized matrix (plus the dirty-row set) to the warm pipeline.
//
// Determinism: Materialize is a pure function of (base, overlay) — rows
// with an all-zero overlay are copied bit-for-bit from the base, never run
// through a float addition, so a refresh with no new aggregates reproduces
// the base matrix exactly and the warm pipeline stays bit-identical to the
// cold run that produced it. The Accumulator is not safe for concurrent
// use; callers serialize access (the refresh controller runs one fold →
// materialize → retrain cycle at a time).
type Accumulator struct {
	base    *mat.Dense
	overlay *mat.Dense
	// applied snapshots the overlay at the last Materialize, so dirty-row
	// detection spans exactly the aggregates folded since then.
	applied *mat.Dense
}

// NewAccumulator wraps a base traffic matrix. The base is referenced, not
// copied — it must not be mutated while the accumulator is live.
func NewAccumulator(base *mat.Dense) (*Accumulator, error) {
	if base == nil || base.Rows() == 0 || base.Cols() == 0 {
		return nil, fmt.Errorf("rca: accumulator needs a non-empty base matrix")
	}
	return &Accumulator{
		base:    base,
		overlay: mat.NewDense(base.Rows(), base.Cols()),
		applied: mat.NewDense(base.Rows(), base.Cols()),
	}, nil
}

// Rows and Cols report the accumulator's fixed shape.
func (a *Accumulator) Rows() int { return a.base.Rows() }
func (a *Accumulator) Cols() int { return a.base.Cols() }

// Fold adds one hourly aggregate (mb of traffic for one antenna × service
// cell) into the live overlay. Aggregates for the same cell accumulate;
// callers needing bit-reproducible overlays must fold in a deterministic
// order.
func (a *Accumulator) Fold(antenna, service int, mb float64) error {
	if antenna < 0 || antenna >= a.base.Rows() || service < 0 || service >= a.base.Cols() {
		return fmt.Errorf("rca: fold (%d,%d) outside %dx%d accumulator",
			antenna, service, a.base.Rows(), a.base.Cols())
	}
	a.overlay.Row(antenna)[service] += mb
	return nil
}

// SetTotals replaces the overlay with absolute per-cell totals (e.g. a
// collector sink's materialized traffic matrix, which already sums every
// aggregate seen since startup). The matrix is copied.
func (a *Accumulator) SetTotals(t *mat.Dense) error {
	if t.Rows() != a.base.Rows() || t.Cols() != a.base.Cols() {
		return fmt.Errorf("rca: totals are %dx%d, accumulator is %dx%d",
			t.Rows(), t.Cols(), a.base.Rows(), a.base.Cols())
	}
	for i := 0; i < t.Rows(); i++ {
		copy(a.overlay.Row(i), t.Row(i))
	}
	return nil
}

// Materialize returns the current base+overlay traffic matrix and the
// sorted indices of rows whose overlay changed since the previous
// Materialize (all-new rows on the first call with a non-zero overlay).
// The returned matrix is freshly allocated and owned by the caller.
func (a *Accumulator) Materialize() (*mat.Dense, []int) {
	out := mat.NewDense(a.base.Rows(), a.base.Cols())
	var dirty []int
	for i := 0; i < a.base.Rows(); i++ {
		baseRow, overRow, appliedRow := a.base.Row(i), a.overlay.Row(i), a.applied.Row(i)
		dst := out.Row(i)
		copy(dst, baseRow)
		zero := true
		changed := false
		for j, v := range overRow {
			if v != 0 {
				zero = false
			}
			// Dirty tracking is bit-exact by design: a row is dirty iff its
			// overlay changed since the last Materialize, and warm-refresh
			// parity (drift 0 ≡ cold) depends on no-op folds staying clean.
			//lint:allow floateq bit-exact overlay change detection
			if v != appliedRow[j] {
				changed = true
			}
		}
		if !zero {
			for j, v := range overRow {
				dst[j] = baseRow[j] + v
			}
		}
		if changed {
			dirty = append(dirty, i)
		}
		copy(appliedRow, overRow)
	}
	return out, dirty
}
