package rca

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/mat"
)

func accBase(t *testing.T) *mat.Dense {
	t.Helper()
	m, err := mat.FromRows([][]float64{
		{1, 2, 3},
		{4, 0, 6},
		{0.5, 0.25, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAccumulatorRejectsBadInput(t *testing.T) {
	if _, err := NewAccumulator(nil); err == nil {
		t.Fatal("nil base must error")
	}
	a, err := NewAccumulator(accBase(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Fold(3, 0, 1); err == nil {
		t.Fatal("out-of-range antenna must error")
	}
	if err := a.Fold(0, -1, 1); err == nil {
		t.Fatal("out-of-range service must error")
	}
	if err := a.SetTotals(mat.NewDense(2, 3)); err == nil {
		t.Fatal("shape mismatch must error")
	}
}

// TestAccumulatorCleanMaterializeIsBitExact is the fold-in side of the
// warm/cold parity contract: with no folded aggregates the materialized
// matrix reproduces the base bit-for-bit and reports no dirty rows.
func TestAccumulatorCleanMaterializeIsBitExact(t *testing.T) {
	base := accBase(t)
	a, err := NewAccumulator(base)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		got, dirty := a.Materialize()
		if len(dirty) != 0 {
			t.Fatalf("round %d: clean accumulator reported dirty rows %v", round, dirty)
		}
		for i := 0; i < base.Rows(); i++ {
			for j, v := range base.Row(i) {
				if math.Float64bits(got.Row(i)[j]) != math.Float64bits(v) {
					t.Fatalf("round %d: bit mismatch at (%d,%d)", round, i, j)
				}
			}
		}
	}
}

func TestAccumulatorFoldTracksDirtyRows(t *testing.T) {
	a, err := NewAccumulator(accBase(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Fold(1, 2, 10); err != nil {
		t.Fatal(err)
	}
	if err := a.Fold(1, 2, 5); err != nil {
		t.Fatal(err)
	}
	got, dirty := a.Materialize()
	if !reflect.DeepEqual(dirty, []int{1}) {
		t.Fatalf("dirty = %v, want [1]", dirty)
	}
	if got.Row(1)[2] != 21 { // base 6 + 10 + 5
		t.Fatalf("folded cell = %v, want 21", got.Row(1)[2])
	}
	if got.Row(0)[0] != 1 {
		t.Fatalf("untouched cell changed: %v", got.Row(0)[0])
	}

	// A second materialize with nothing new folded sees no dirt but keeps
	// the overlay applied.
	again, dirty := a.Materialize()
	if len(dirty) != 0 {
		t.Fatalf("second materialize dirty = %v", dirty)
	}
	if again.Row(1)[2] != 21 {
		t.Fatalf("overlay lost: %v", again.Row(1)[2])
	}

	// New dirt on a different row only flags that row.
	if err := a.Fold(2, 0, 1); err != nil {
		t.Fatal(err)
	}
	_, dirty = a.Materialize()
	if !reflect.DeepEqual(dirty, []int{2}) {
		t.Fatalf("dirty = %v, want [2]", dirty)
	}
}

func TestAccumulatorSetTotalsReplacesOverlay(t *testing.T) {
	a, err := NewAccumulator(accBase(t))
	if err != nil {
		t.Fatal(err)
	}
	totals := mat.NewDense(3, 3)
	totals.Row(0)[1] = 7
	if err := a.SetTotals(totals); err != nil {
		t.Fatal(err)
	}
	got, dirty := a.Materialize()
	if !reflect.DeepEqual(dirty, []int{0}) {
		t.Fatalf("dirty = %v, want [0]", dirty)
	}
	if got.Row(0)[1] != 9 { // base 2 + 7
		t.Fatalf("cell = %v, want 9", got.Row(0)[1])
	}
	// Re-applying the same totals is clean; zeroing them dirties the row
	// back toward the base.
	if err := a.SetTotals(totals); err != nil {
		t.Fatal(err)
	}
	if _, dirty := a.Materialize(); len(dirty) != 0 {
		t.Fatalf("identical totals reported dirty rows %v", dirty)
	}
	if err := a.SetTotals(mat.NewDense(3, 3)); err != nil {
		t.Fatal(err)
	}
	got, dirty = a.Materialize()
	if !reflect.DeepEqual(dirty, []int{0}) {
		t.Fatalf("dirty = %v, want [0]", dirty)
	}
	if got.Row(0)[1] != 2 {
		t.Fatalf("cell = %v, want base 2", got.Row(0)[1])
	}
}
