// Package rca implements the feature transformation at the heart of the
// paper's Section 4.1: the Revealed Comparative Advantage (RCA, Eq. 1) and
// its symmetric variant (RSCA, Eq. 2), which quantify per-service over- and
// under-utilization at each antenna independent of raw volume, plus the
// outdoor-versus-indoor variant of Eq. 5 used in Section 5.3.
package rca

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// RCA computes the revealed comparative advantage of every (antenna,
// service) cell of the traffic matrix T (Eq. 1):
//
//	RCA[i][j] = (T[i][j] / T[i]) / (T[j] / T_tot)
//
// where T[i] is antenna i's total, T[j] is service j's network-wide total
// and T_tot the grand total. Cells whose antenna or service total is zero
// yield RCA 0 (no utilization signal).
func RCA(t *mat.Dense) *mat.Dense {
	rowSums := t.RowSums()
	colSums := t.ColSums()
	total := t.Sum()
	out := mat.NewDense(t.Rows(), t.Cols())
	if total == 0 {
		return out
	}
	for i := 0; i < t.Rows(); i++ {
		if rowSums[i] == 0 {
			continue
		}
		src := t.Row(i)
		dst := out.Row(i)
		for j := range src {
			if colSums[j] == 0 {
				continue
			}
			dst[j] = (src[j] / rowSums[i]) / (colSums[j] / total)
		}
	}
	return out
}

// RSCAFromRCA maps RCA values into the symmetric [-1, 1] index (Eq. 2):
//
//	RSCA = (RCA - 1) / (RCA + 1)
//
// Values below 0 indicate under-utilization, above 0 over-utilization. The
// degenerate RCA = 0 maps to -1 (maximal under-utilization).
func RSCAFromRCA(rcaM *mat.Dense) *mat.Dense {
	out := mat.NewDense(rcaM.Rows(), rcaM.Cols())
	for i := 0; i < rcaM.Rows(); i++ {
		src := rcaM.Row(i)
		dst := out.Row(i)
		for j, v := range src {
			dst[j] = (v - 1) / (v + 1)
		}
	}
	return out
}

// RSCA computes the revealed symmetric comparative advantage directly from
// the traffic matrix — the clustering feature space of Section 4.2.
func RSCA(t *mat.Dense) *mat.Dense { return RSCAFromRCA(RCA(t)) }

// OutdoorReference captures the indoor-side denominators of Eq. 5: the
// share of each service in the total indoor traffic.
type OutdoorReference struct {
	// ServiceShare[j] = T_in[j] / T_tot_in.
	ServiceShare []float64
}

// NewOutdoorReference derives the Eq. 5 reference from the indoor traffic
// matrix. It returns an error if the matrix carries no traffic.
func NewOutdoorReference(indoor *mat.Dense) (*OutdoorReference, error) {
	total := indoor.Sum()
	if total <= 0 {
		return nil, fmt.Errorf("rca: indoor matrix has no traffic")
	}
	colSums := indoor.ColSums()
	share := make([]float64, len(colSums))
	for j, s := range colSums {
		share[j] = s / total
	}
	return &OutdoorReference{ServiceShare: share}, nil
}

// RCAOutdoor computes Eq. 5 for an outdoor traffic matrix: each outdoor
// antenna's service shares are normalized by the *indoor* service shares,
// measuring whether outdoor demand composition diverges from the indoor
// profile population.
func (ref *OutdoorReference) RCAOutdoor(outdoor *mat.Dense) (*mat.Dense, error) {
	if outdoor.Cols() != len(ref.ServiceShare) {
		return nil, fmt.Errorf("rca: outdoor matrix has %d services, reference %d",
			outdoor.Cols(), len(ref.ServiceShare))
	}
	rowSums := outdoor.RowSums()
	out := mat.NewDense(outdoor.Rows(), outdoor.Cols())
	for i := 0; i < outdoor.Rows(); i++ {
		if rowSums[i] == 0 {
			continue
		}
		src := outdoor.Row(i)
		dst := out.Row(i)
		for j := range src {
			if ref.ServiceShare[j] == 0 {
				continue
			}
			dst[j] = (src[j] / rowSums[i]) / ref.ServiceShare[j]
		}
	}
	return out, nil
}

// RSCAOutdoor composes Eq. 5 with Eq. 2, producing the outdoor feature
// matrix that Section 5.3 feeds to the surrogate classifier.
func (ref *OutdoorReference) RSCAOutdoor(outdoor *mat.Dense) (*mat.Dense, error) {
	r, err := ref.RCAOutdoor(outdoor)
	if err != nil {
		return nil, err
	}
	return RSCAFromRCA(r), nil
}

// NormalizeByGlobalMax scales the traffic matrix by its single largest
// cell — the naive normalization whose spike-like histogram motivates RCA
// in Fig. 1. An all-zero matrix is returned unchanged.
func NormalizeByGlobalMax(t *mat.Dense) *mat.Dense {
	out := t.Clone()
	var maxV float64
	for i := 0; i < t.Rows(); i++ {
		for _, v := range t.Row(i) {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		return out
	}
	out.Scale(1 / maxV)
	return out
}

// Validate checks the structural invariants of an RSCA matrix: every value
// in [-1, 1] and no NaN. It returns the first violation found.
func Validate(rsca *mat.Dense) error {
	for i := 0; i < rsca.Rows(); i++ {
		for j, v := range rsca.Row(i) {
			if math.IsNaN(v) || v < -1 || v > 1 {
				return fmt.Errorf("rca: invalid RSCA value %v at (%d,%d)", v, i, j)
			}
		}
	}
	return nil
}
