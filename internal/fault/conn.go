package fault

import (
	"context"
	"net"
	"time"
)

// DialFunc dials one address. It matches the seam collect.WithDialContext
// exposes on the exporter, so an Injector slots in without the collect
// package importing fault.
type DialFunc func(ctx context.Context, addr string) (net.Conn, error)

// NetDial is the default un-faulted dialer (a plain net.Dialer).
func NetDial(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// Dialer wraps next with the Dial site: a dial attempt can be refused
// outright (one Dial decision per attempt), and connections that do come
// up carry ConnRead/ConnWrite faults.
func (in *Injector) Dialer(next DialFunc) DialFunc {
	if next == nil {
		next = NetDial
	}
	return func(ctx context.Context, addr string) (net.Conn, error) {
		if err := in.Err(Dial); err != nil {
			return nil, err
		}
		c, err := next(ctx, addr)
		if err != nil {
			return nil, err
		}
		return in.Conn(c), nil
	}
}

// Conn wraps an established connection with the ConnRead/ConnWrite sites:
// slow reads and writes (delay decisions) and mid-stream resets (error
// decisions, which also close the underlying connection so the peer
// observes the reset rather than a silent stall).
func (in *Injector) Conn(c net.Conn) net.Conn {
	return &faultConn{Conn: c, in: in}
}

type faultConn struct {
	net.Conn
	in *Injector
}

func (c *faultConn) Read(p []byte) (int, error) {
	if err := c.apply(ConnRead); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	if err := c.apply(ConnWrite); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

// apply consumes one decision at site: errors reset the connection, delays
// stall the caller for the configured duration.
func (c *faultConn) apply(site Site) error {
	d := c.in.next(site)
	if d.err {
		_ = c.Conn.Close()
		return &net.OpError{Op: "fault", Net: "tcp", Err: ErrInjected}
	}
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	return nil
}
