// Package fault is the deterministic fault-injection layer of the
// measurement and serving stack. It exists so the regimes a production
// deployment actually lives in — refused dials during collector restarts,
// mid-stream connection resets, slow consumers, ingest-queue pressure,
// latency spikes inside handlers, failing pipeline stages — can be
// exercised in tests and chaos soaks, reproducibly, from a single printed
// seed.
//
// The package is zero-dependency in the module sense (only internal/rng
// for the seeded generator and internal/obs for counters) and injects
// nothing by itself: callers wire an Injector into the seams the system
// already exposes — collect.WithDialContext on the exporter dial path,
// serve.Config.Faults on the ingest/classify/fold path, and
// pipe.WithStageHook on stage execution.
//
// # Determinism contract
//
// Every injection site draws its decisions from a private rng stream
// derived from (seed, site name). The n-th decision at a given site is
// therefore a pure function of the seed: it does not depend on wall-clock
// time, goroutine scheduling, or how often other sites were consulted.
// What concurrency does decide is *which* request consumes the n-th
// decision — the schedule of faults is reproducible, the assignment of
// faults to racing requests is not (and cannot be, short of serializing
// the system under test). Digest exposes the decision stream directly so
// harnesses can assert run-to-run reproducibility of a seed without
// standing up any server.
package fault

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
)

// Site names one injection point. Sites are independent: each draws from
// its own seeded stream and is configured by its own Rule.
type Site string

// The injection sites wired through the stack.
const (
	// Dial covers exporter dial attempts (collect.Export).
	Dial Site = "dial"
	// ConnRead covers reads on an established connection: slow reads and
	// mid-stream resets.
	ConnRead Site = "conn.read"
	// ConnWrite covers writes on an established connection: slow writes
	// and mid-stream resets.
	ConnWrite Site = "conn.write"
	// Ingest covers the serve ingest handler before a batch is acked.
	Ingest Site = "serve.ingest"
	// Fold covers the serve drain workers folding queued batches (slow
	// consumers → queue pressure → 429s).
	Fold Site = "serve.fold"
	// Classify covers the serve classify handler (latency spikes racing
	// the request deadline).
	Classify Site = "serve.classify"
	// Stage covers pipeline stage execution (pipe.WithStageHook).
	Stage Site = "pipe.stage"
	// ShardFold covers the sharded drain workers folding queued batches
	// into per-shard sinks (internal/shard) — the slow-shard regime that
	// builds router-level backpressure.
	ShardFold Site = "shard.fold"
)

// ErrInjected is the sentinel every injected error wraps; use errors.Is to
// tell injected faults from organic ones in assertions.
var ErrInjected = errors.New("fault: injected error")

// Rule configures one site. The zero Rule injects nothing.
type Rule struct {
	// ErrProb is the probability of injecting an error on one decision.
	ErrProb float64
	// DelayProb is the probability of injecting a delay on one decision.
	DelayProb float64
	// Delay is the injected delay duration (fixed, so a seeded schedule
	// keeps the same shape run-to-run; vary it across schedules, not
	// within one).
	Delay time.Duration
}

// siteState is one site's rule, private decision stream, and counters.
type siteState struct {
	rule   Rule
	src    *rng.Source
	calls  int64
	errs   int64
	delays int64
}

// Injector draws deterministic fault decisions for named sites. It is safe
// for concurrent use; decisions at distinct sites never contend.
type Injector struct {
	seed uint64

	mu    sync.Mutex
	sites map[Site]*siteState
}

// New builds an injector for the given per-site rules. Sites without a
// rule never inject. The same (seed, rules) always yields the same
// per-site decision streams.
func New(seed uint64, rules map[Site]Rule) *Injector {
	in := &Injector{seed: seed, sites: make(map[Site]*siteState, len(rules))}
	for site, rule := range rules {
		in.sites[site] = &siteState{rule: rule, src: rng.New(seed ^ siteHash(site))}
	}
	return in
}

// Seed returns the schedule seed, for printing in reproduce instructions.
func (in *Injector) Seed() uint64 { return in.seed }

// siteHash mixes the site name into a per-site seed offset (FNV-1a).
func siteHash(site Site) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 0x100000001b3
	}
	return h
}

// decision is one draw at a site: at most one of err/delay fires per
// decision, err taking precedence.
type decision struct {
	err   bool
	delay time.Duration
}

// next draws the site's next decision. Each call consumes exactly two
// uniform variates so the stream position is a pure function of the call
// count regardless of the rule's probabilities.
func (in *Injector) next(site Site) decision {
	in.mu.Lock()
	st, ok := in.sites[site]
	if !ok {
		in.mu.Unlock()
		return decision{}
	}
	st.calls++
	u1, u2 := st.src.Float64(), st.src.Float64()
	var d decision
	switch {
	case st.rule.ErrProb > 0 && u1 < st.rule.ErrProb:
		d.err = true
		st.errs++
	case st.rule.DelayProb > 0 && u2 < st.rule.DelayProb:
		d.delay = st.rule.Delay
		st.delays++
	}
	in.mu.Unlock()
	if d.err {
		//lint:allow metricreg name composed from the closed Site enum; every fault.<site>.errs pair is a Dynamic entry in the obs catalog
		obs.Add("fault."+string(site)+".errs", 1)
	}
	if d.delay > 0 {
		//lint:allow metricreg name composed from the closed Site enum; every fault.<site>.delays pair is a Dynamic entry in the obs catalog
		obs.Add("fault."+string(site)+".delays", 1)
	}
	return d
}

// Err draws the site's next decision and returns an injected error (or
// nil). Delay-only decisions are dropped; use Wait on sites that inject
// latency.
func (in *Injector) Err(site Site) error {
	if in == nil {
		return nil
	}
	if d := in.next(site); d.err {
		return fmt.Errorf("fault: injected %s error: %w", site, ErrInjected)
	}
	return nil
}

// Wait draws the site's next decision and sleeps through an injected
// delay, honoring ctx. It returns ctx.Err() when the context expires
// mid-delay and nil otherwise. Error decisions are ignored here — sites
// that inject errors go through Err.
func (in *Injector) Wait(ctx context.Context, site Site) error {
	if in == nil {
		return nil
	}
	d := in.next(site)
	if d.delay <= 0 {
		return nil
	}
	timer := time.NewTimer(d.delay)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// Counts is one site's injection tally.
type Counts struct {
	Calls  int64
	Errs   int64
	Delays int64
}

// Stats snapshots every configured site's tally, keyed by site.
func (in *Injector) Stats() map[Site]Counts {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Site]Counts, len(in.sites))
	for site, st := range in.sites {
		out[site] = Counts{Calls: st.calls, Errs: st.errs, Delays: st.delays}
	}
	return out
}

// StatsString renders the tally one "site calls errs delays" per line,
// sorted by site, for chaos-run reports.
func (in *Injector) StatsString() string {
	snap := in.Stats()
	sites := make([]string, 0, len(snap))
	for s := range snap {
		sites = append(sites, string(s))
	}
	sort.Strings(sites)
	var b []byte
	for _, s := range sites {
		c := snap[Site(s)]
		b = append(b, fmt.Sprintf("fault %-14s calls=%-6d errs=%-5d delays=%d\n", s, c.Calls, c.Errs, c.Delays)...)
	}
	return string(b)
}

// StageHook adapts the injector to pipe.WithStageHook: each stage start
// consumes one Stage decision and an injected error fails the stage.
func (in *Injector) StageHook() func(stage string) error {
	return func(stage string) error {
		if err := in.Err(Stage); err != nil {
			return fmt.Errorf("stage %s: %w", stage, err)
		}
		return nil
	}
}

// Digest folds the first n decisions of every ruled site into one 64-bit
// FNV-1a value — a pure function of (seed, rules, n). Two runs agreeing on
// the digest will inject the same fault schedule; chaos harnesses print it
// so seed reproducibility is checkable without a live server.
func Digest(seed uint64, rules map[Site]Rule, n int) uint64 {
	sites := make([]string, 0, len(rules))
	for s := range rules {
		sites = append(sites, string(s))
	}
	sort.Strings(sites)
	in := New(seed, rules)
	var h uint64 = 0xcbf29ce484222325
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 0x100000001b3
		}
	}
	for _, s := range sites {
		mix(siteHash(Site(s)))
		for i := 0; i < n; i++ {
			d := in.next(Site(s))
			var v uint64
			if d.err {
				v = 1
			}
			mix(v | uint64(d.delay)<<1)
		}
	}
	return h
}
