package fault

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

func testRules() map[Site]Rule {
	return map[Site]Rule{
		Dial:     {ErrProb: 0.5},
		ConnRead: {ErrProb: 0.2, DelayProb: 0.3, Delay: time.Millisecond},
		Fold:     {DelayProb: 1, Delay: time.Millisecond},
	}
}

// TestDecisionStreamIsSeedDeterministic is the reproducibility contract:
// the n-th decision at a site is a pure function of (seed, site), however
// the sites are interleaved.
func TestDecisionStreamIsSeedDeterministic(t *testing.T) {
	a := New(42, testRules())
	b := New(42, testRules())

	// Interleave site draws differently between the two injectors; the
	// per-site sequences must still agree.
	var seqA, seqB []decision
	for i := 0; i < 64; i++ {
		seqA = append(seqA, a.next(Dial))
		a.next(Fold) // extra draws at other sites must not shift Dial's stream
	}
	for i := 0; i < 64; i++ {
		b.next(ConnRead)
		seqB = append(seqB, b.next(Dial))
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("decision %d differs across interleavings: %+v vs %+v", i, seqA[i], seqB[i])
		}
	}

	if New(42, testRules()).next(Dial) == New(43, testRules()).next(Dial) {
		// Not impossible, but with ErrProb 0.5 a matching first decision on
		// different seeds is fine; check the digest instead for full streams.
		t.Log("first decisions collided; digest check below is authoritative")
	}
	if Digest(42, testRules(), 256) != Digest(42, testRules(), 256) {
		t.Fatal("same seed produced different digests")
	}
	if Digest(42, testRules(), 256) == Digest(43, testRules(), 256) {
		t.Fatal("different seeds produced identical digests")
	}
}

// TestErrRatesAndCounters checks rules actually fire at roughly their
// configured rates and the tallies add up.
func TestErrRatesAndCounters(t *testing.T) {
	in := New(7, map[Site]Rule{Dial: {ErrProb: 0.5}})
	errs := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if err := in.Err(Dial); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error does not wrap ErrInjected: %v", err)
			}
			errs++
		}
	}
	if errs < n/3 || errs > 2*n/3 {
		t.Fatalf("ErrProb 0.5 fired %d/%d times", errs, n)
	}
	st := in.Stats()[Dial]
	if st.Calls != n || st.Errs != int64(errs) {
		t.Fatalf("stats %+v, want calls=%d errs=%d", st, n, errs)
	}
	// Unruled sites never inject and never count.
	if err := in.Err(Classify); err != nil {
		t.Fatalf("unruled site injected: %v", err)
	}
	if _, ok := in.Stats()[Classify]; ok {
		t.Fatal("unruled site appeared in stats")
	}
	// A nil injector is inert, so call sites need no nil checks.
	var nilIn *Injector
	if err := nilIn.Err(Dial); err != nil {
		t.Fatal("nil injector injected an error")
	}
	if err := nilIn.Wait(context.Background(), Fold); err != nil {
		t.Fatal("nil injector injected a delay error")
	}
}

// TestWaitHonorsContext checks an injected delay is cut short by context
// cancellation and reports ctx.Err().
func TestWaitHonorsContext(t *testing.T) {
	in := New(1, map[Site]Rule{Fold: {DelayProb: 1, Delay: 10 * time.Second}})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := in.Wait(ctx, Fold)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait returned %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Wait slept through the cancelled context")
	}
}

// TestConnResetAndDial exercises the conn wrapper end to end over a real
// loopback pair: with ErrProb 1 on writes, the first write must fail with
// an injected reset and the underlying conn must be closed.
func TestConnResetAndDial(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()

	in := New(3, map[Site]Rule{ConnWrite: {ErrProb: 1}})
	dial := in.Dialer(nil)
	conn, err := dial(context.Background(), ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write returned %v, want injected reset", err)
	}
	// The underlying connection was closed, so the peer sees EOF/reset.
	peer := <-accepted
	defer peer.Close()
	peer.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := peer.Read(buf); err == nil {
		t.Fatal("peer read succeeded after injected reset")
	}

	// A dial-refusing injector fails before any connection is made.
	refuse := New(5, map[Site]Rule{Dial: {ErrProb: 1}})
	if _, err := refuse.Dialer(nil)(context.Background(), ln.Addr().String()); !errors.Is(err, ErrInjected) {
		t.Fatalf("refused dial returned %v", err)
	}

	// StageHook surfaces the stage name and the sentinel.
	sh := New(9, map[Site]Rule{Stage: {ErrProb: 1}}).StageHook()
	if err := sh("distances"); !errors.Is(err, ErrInjected) {
		t.Fatalf("stage hook returned %v", err)
	}
}
