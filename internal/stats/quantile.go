package stats

import (
	"math"
	"sort"
)

// medianBins is the fixed resolution of the counting pass. 256 bins keep
// the scratch cache-resident; exactness never depends on the bin count
// because the target order statistics are selected from the original
// values, the bins only narrow where to look.
const medianBins = 256

// MedianScratch is a reusable arena for exact fixed-bin median selection.
// The temporal-profile hot path calls Median once per hour column; reusing
// the scratch keeps those calls allocation-free.
//
// Unlike a histogram sketch, the result is not an estimate: the counting
// pass locates the bin(s) holding the middle order statistics and the
// exact values are then selected from the original data, so Median returns
// stats.Median bit-for-bit on every input (the parity fixtures in
// quantile_test.go pin odd/even counts, ties and all-zero columns).
type MedianScratch struct {
	counts [medianBins]int
	inBin  []float64
}

// NewMedianScratch returns an empty scratch arena.
func NewMedianScratch() *MedianScratch {
	return &MedianScratch{inBin: make([]float64, 0, 64)}
}

// BinnedMedian returns the median of xs via fixed-bin counting selection,
// without modifying the input. It equals Median(xs) exactly.
func BinnedMedian(xs []float64) float64 {
	var m MedianScratch
	return m.Median(xs)
}

// Median returns the median of xs — bit-identical to stats.Median — using
// a counting pass over fixed-width bins plus exact in-bin selection
// instead of a full sort. The input is not modified. Inputs containing
// NaN fall back to the sort path (NaN has no consistent bin ordering).
func (m *MedianScratch) Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return xs[0]
	}
	mn, mx := xs[0], xs[0]
	for _, x := range xs {
		if math.IsNaN(x) {
			return Quantile(xs, 0.5)
		}
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	// The two middle order statistics the interpolated median combines:
	// identical ranks for odd n.
	loRank := (n - 1) / 2
	hiRank := n / 2
	//lint:allow floateq constant-column fast path; any mn < mx proceeds to binning
	if mn == mx {
		return combineMedian(mn, mn, loRank, hiRank)
	}

	scale := float64(medianBins) / (mx - mn)
	for i := range m.counts {
		m.counts[i] = 0
	}
	for _, x := range xs {
		m.counts[medianBin(x, mn, scale)]++
	}
	// Locate the bin holding loRank. Binning is monotone in the value, so
	// every value in an earlier bin sorts before every value in a later
	// one and in-bin selection yields true order statistics.
	cum, bl := 0, 0
	for ; bl < medianBins; bl++ {
		if cum+m.counts[bl] > loRank {
			break
		}
		cum += m.counts[bl]
	}
	m.inBin = m.inBin[:0]
	nextMin := math.Inf(1)
	for _, x := range xs {
		b := medianBin(x, mn, scale)
		if b == bl {
			m.inBin = append(m.inBin, x)
		} else if b > bl && x < nextMin {
			nextMin = x
		}
	}
	sort.Float64s(m.inBin)
	vlo := m.inBin[loRank-cum]
	vhi := vlo
	if hiRank != loRank {
		if hiRank-cum < len(m.inBin) {
			vhi = m.inBin[hiRank-cum]
		} else {
			vhi = nextMin
		}
	}
	return combineMedian(vlo, vhi, loRank, hiRank)
}

// medianBin maps a value to its counting bin.
func medianBin(x, mn, scale float64) int {
	b := int((x - mn) * scale)
	if b >= medianBins {
		b = medianBins - 1
	}
	if b < 0 {
		b = 0
	}
	return b
}

// combineMedian merges the two middle order statistics with the exact
// arithmetic of QuantileSorted at q=0.5 (frac is exactly ½ for even n).
func combineMedian(vlo, vhi float64, loRank, hiRank int) float64 {
	if loRank == hiRank {
		return vlo
	}
	return vlo*0.5 + vhi*0.5
}
