// Package stats provides the descriptive statistics used throughout the
// reproduction: location/dispersion measures, quantiles, histograms,
// rankings, normalization helpers, and contingency tables for the
// cluster-to-environment association analysis.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs without modifying it, or 0 for an empty
// slice.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-th linear-interpolation quantile of xs (q in
// [0,1]) without modifying the input. It returns 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is Quantile for an already ascending-sorted slice; it
// avoids the copy and sort. It returns 0 for an empty slice.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMax returns the index of the maximum of xs, or -1 for an empty slice.
// Ties resolve to the first maximal index.
func ArgMax(xs []float64) int {
	idx := -1
	best := math.Inf(-1)
	for i, x := range xs {
		if x > best {
			best = x
			idx = i
		}
	}
	return idx
}

// Normalize returns xs scaled so the maximum absolute value is 1. An
// all-zero input is returned as a copy unchanged.
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	var maxAbs float64
	for _, x := range xs {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		copy(out, xs)
		return out
	}
	for i, x := range xs {
		out[i] = x / maxAbs
	}
	return out
}

// Skewness returns the sample skewness (third standardized moment) of xs,
// or 0 when it is undefined. The paper's Fig. 1 argument — RCA is
// right-skewed while RSCA is balanced — is validated with this measure.
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return 0
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}

// Histogram is a fixed-width binned frequency count over [Lo, Hi]. Values
// outside the range are clamped to the first/last bin so the total mass is
// preserved.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int
}

// NewHistogram builds a histogram of xs with the given number of bins over
// [lo, hi]. Bin counts and ranges are caller-chosen presentation
// parameters, so invalid ones are reported as errors rather than panics.
func NewHistogram(xs []float64, bins int, lo, hi float64) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram with non-positive bin count %d", bins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: histogram with empty range [%g,%g]", lo, hi)
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		b := int((x - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		h.Counts[b]++
		h.N++
	}
	return h, nil
}

// Density returns the per-bin fraction of total mass; an empty histogram
// returns all zeros.
func (h *Histogram) Density() []float64 {
	d := make([]float64, len(h.Counts))
	if h.N == 0 {
		return d
	}
	for i, c := range h.Counts {
		d[i] = float64(c) / float64(h.N)
	}
	return d
}

// BinCenters returns the midpoint of each bin.
func (h *Histogram) BinCenters() []float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	cs := make([]float64, len(h.Counts))
	for i := range cs {
		cs[i] = h.Lo + width*(float64(i)+0.5)
	}
	return cs
}

// ModeBin returns the index of the most populated bin (first on ties).
func (h *Histogram) ModeBin() int {
	best, idx := -1, 0
	for i, c := range h.Counts {
		if c > best {
			best = c
			idx = i
		}
	}
	return idx
}

// RankDescending returns the indices of xs sorted by decreasing value
// (stable: ties keep the original order).
func RankDescending(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	return idx
}

// Contingency is a labeled cross-tabulation of two categorical variables;
// in the paper it holds cluster × environment antenna counts (the source of
// Figs. 6, 7 and 8).
type Contingency struct {
	RowLabels []string
	ColLabels []string
	Counts    [][]int // [row][col]
}

// NewContingency creates an all-zero nRows × nCols table.
func NewContingency(rowLabels, colLabels []string) *Contingency {
	c := &Contingency{RowLabels: rowLabels, ColLabels: colLabels}
	c.Counts = make([][]int, len(rowLabels))
	for i := range c.Counts {
		c.Counts[i] = make([]int, len(colLabels))
	}
	return c
}

// Add increments cell (row, col).
func (c *Contingency) Add(row, col int) { c.Counts[row][col]++ }

// Total returns the grand total of the table.
func (c *Contingency) Total() int {
	var t int
	for _, row := range c.Counts {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// RowShares returns each row normalized to fractions summing to 1 (rows
// with zero mass stay all-zero). For the paper this is "types of indoor
// environments per cluster" (Fig. 7).
func (c *Contingency) RowShares() [][]float64 {
	out := make([][]float64, len(c.Counts))
	for i, row := range c.Counts {
		out[i] = make([]float64, len(row))
		var sum int
		for _, v := range row {
			sum += v
		}
		if sum == 0 {
			continue
		}
		for j, v := range row {
			out[i][j] = float64(v) / float64(sum)
		}
	}
	return out
}

// ColShares returns each column normalized to fractions summing to 1. For
// the paper this is "cluster distribution per environment type" (Fig. 8).
func (c *Contingency) ColShares() [][]float64 {
	out := make([][]float64, len(c.Counts))
	colSums := make([]int, len(c.ColLabels))
	for _, row := range c.Counts {
		for j, v := range row {
			colSums[j] += v
		}
	}
	for i, row := range c.Counts {
		out[i] = make([]float64, len(row))
		for j, v := range row {
			if colSums[j] > 0 {
				out[i][j] = float64(v) / float64(colSums[j])
			}
		}
	}
	return out
}

// CramersV returns Cramér's V association strength in [0,1] between the two
// categorical variables of the table — the quantitative form of the paper's
// claim that clusters and indoor environments are strongly associated.
func (c *Contingency) CramersV() float64 {
	n := c.Total()
	if n == 0 {
		return 0
	}
	rows, cols := len(c.RowLabels), len(c.ColLabels)
	rowSums := make([]float64, rows)
	colSums := make([]float64, cols)
	for i, row := range c.Counts {
		for j, v := range row {
			rowSums[i] += float64(v)
			colSums[j] += float64(v)
		}
	}
	var chi2 float64
	for i := range c.Counts {
		for j := range c.Counts[i] {
			expected := rowSums[i] * colSums[j] / float64(n)
			if expected == 0 {
				continue
			}
			d := float64(c.Counts[i][j]) - expected
			chi2 += d * d / expected
		}
	}
	k := float64(min(rows, cols) - 1)
	if k <= 0 {
		return 0
	}
	return math.Sqrt(chi2 / (float64(n) * k))
}

// PearsonCorrelation returns the linear correlation of xs and ys, or 0 when
// undefined. It panics if the lengths differ.
func PearsonCorrelation(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		// Both series are always projections of one sample set (SHAP
		// values vs feature values, cophenetic vs observed distances).
		//lint:allow nopanic paired series derive from one sample set
		panic("stats: correlation length mismatch")
	}
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
