package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanSum(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if Sum(xs) != 10 {
		t.Fatalf("Sum = %v", Sum(xs))
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean of empty should be 0")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostEqual(Variance(xs), 4, 1e-12) {
		t.Fatalf("Variance = %v", Variance(xs))
	}
	if !almostEqual(StdDev(xs), 2, 1e-12) {
		t.Fatalf("StdDev = %v", StdDev(xs))
	}
	if Variance([]float64{5}) != 0 {
		t.Fatal("single-element variance should be 0")
	}
}

func TestMedianQuantile(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("extreme quantiles")
	}
	if !almostEqual(Quantile(xs, 0.25), 2, 1e-12) {
		t.Fatalf("q25 = %v", Quantile(xs, 0.25))
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestMinMaxArgMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 || ArgMax(xs) != 2 {
		t.Fatal("min/max/argmax")
	}
	if ArgMax(nil) != -1 {
		t.Fatal("ArgMax of empty should be -1")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max sentinels")
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{-2, 1, 4})
	if !almostEqual(out[2], 1, 1e-12) || !almostEqual(out[0], -0.5, 1e-12) {
		t.Fatalf("Normalize = %v", out)
	}
	zero := Normalize([]float64{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatal("all-zero input should stay zero")
	}
}

func TestSkewness(t *testing.T) {
	symmetric := []float64{-2, -1, 0, 1, 2}
	if !almostEqual(Skewness(symmetric), 0, 1e-12) {
		t.Fatalf("symmetric skew = %v", Skewness(symmetric))
	}
	rightSkewed := []float64{1, 1, 1, 1, 2, 2, 3, 20}
	if Skewness(rightSkewed) <= 0.5 {
		t.Fatalf("right-skewed sample should be strongly positive: %v",
			Skewness(rightSkewed))
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.9, 1.5, -3}
	h, err := NewHistogram(xs, 4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != 5 {
		t.Fatalf("N = %d", h.N)
	}
	// 0.1 and 0.2 fall in bin 0, -3 clamps to bin 0, 1.5 clamps to bin 3.
	if h.Counts[0] != 3 || h.Counts[3] != 2 {
		t.Fatalf("clamping wrong: %v", h.Counts)
	}
	d := h.Density()
	var sum float64
	for _, v := range d {
		sum += v
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Fatalf("density sum = %v", sum)
	}
	centers := h.BinCenters()
	if !almostEqual(centers[0], 0.125, 1e-12) {
		t.Fatalf("bin center = %v", centers[0])
	}
	if h.ModeBin() != 0 {
		t.Fatalf("mode bin = %d", h.ModeBin())
	}
}

func TestHistogramRejectsBadParams(t *testing.T) {
	if _, err := NewHistogram(nil, 0, 0, 1); err == nil {
		t.Fatal("non-positive bin count should be rejected")
	}
	if _, err := NewHistogram(nil, 4, 1, 1); err == nil {
		t.Fatal("empty range should be rejected")
	}
}

func TestRankDescending(t *testing.T) {
	xs := []float64{1, 5, 3, 5}
	r := RankDescending(xs)
	if r[0] != 1 || r[1] != 3 || r[2] != 2 || r[3] != 0 {
		t.Fatalf("ranks = %v (ties must be stable)", r)
	}
}

func TestContingencyShares(t *testing.T) {
	c := NewContingency([]string{"c0", "c1"}, []string{"metro", "office"})
	for i := 0; i < 3; i++ {
		c.Add(0, 0)
	}
	c.Add(0, 1)
	c.Add(1, 1)
	if c.Total() != 5 {
		t.Fatalf("total = %d", c.Total())
	}
	rows := c.RowShares()
	if !almostEqual(rows[0][0], 0.75, 1e-12) || !almostEqual(rows[1][1], 1, 1e-12) {
		t.Fatalf("row shares = %v", rows)
	}
	cols := c.ColShares()
	if !almostEqual(cols[0][0], 1, 1e-12) || !almostEqual(cols[0][1], 0.5, 1e-12) {
		t.Fatalf("col shares = %v", cols)
	}
}

func TestContingencyEmptyRow(t *testing.T) {
	c := NewContingency([]string{"a", "b"}, []string{"x"})
	c.Add(0, 0)
	rows := c.RowShares()
	if rows[1][0] != 0 {
		t.Fatal("empty row should stay zero")
	}
}

func TestCramersV(t *testing.T) {
	// Perfect association.
	perfect := NewContingency([]string{"a", "b"}, []string{"x", "y"})
	for i := 0; i < 10; i++ {
		perfect.Add(0, 0)
		perfect.Add(1, 1)
	}
	if !almostEqual(perfect.CramersV(), 1, 1e-9) {
		t.Fatalf("perfect association V = %v", perfect.CramersV())
	}
	// Independence.
	indep := NewContingency([]string{"a", "b"}, []string{"x", "y"})
	for i := 0; i < 10; i++ {
		indep.Add(0, 0)
		indep.Add(0, 1)
		indep.Add(1, 0)
		indep.Add(1, 1)
	}
	if indep.CramersV() > 1e-9 {
		t.Fatalf("independent V = %v", indep.CramersV())
	}
	empty := NewContingency([]string{"a"}, []string{"x"})
	if empty.CramersV() != 0 {
		t.Fatal("empty table V should be 0")
	}
}

func TestPearsonCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if !almostEqual(PearsonCorrelation(xs, ys), 1, 1e-12) {
		t.Fatal("perfect positive correlation")
	}
	neg := []float64{8, 6, 4, 2}
	if !almostEqual(PearsonCorrelation(xs, neg), -1, 1e-12) {
		t.Fatal("perfect negative correlation")
	}
	if PearsonCorrelation([]float64{1, 1}, []float64{2, 3}) != 0 {
		t.Fatal("constant input should yield 0")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev || v < Min(xs)-1e-9 || v > Max(xs)+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram mass equals input length regardless of range.
func TestHistogramMassProperty(t *testing.T) {
	f := func(raw []int8) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		h, err := NewHistogram(xs, 8, -10, 10)
		if err != nil {
			return false
		}
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Cramér's V stays in [0,1].
func TestCramersVBoundedProperty(t *testing.T) {
	f := func(cells [9]uint8) bool {
		c := NewContingency([]string{"a", "b", "c"}, []string{"x", "y", "z"})
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				c.Counts[i][j] = int(cells[i*3+j])
			}
		}
		v := c.CramersV()
		return v >= -1e-12 && v <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
