package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// The fixed-bin selector must reproduce the sort-based median exactly on
// every regime the temporal columns hit: odd and even counts, heavy ties,
// all-zero hours, single elements, adversarial spreads.
func TestBinnedMedianMatchesSortMedian(t *testing.T) {
	fixtures := [][]float64{
		{},
		{3.5},
		{2, 1},
		{1, 2, 3},
		{4, 1, 3, 2},
		{5, 5, 5, 5, 5},
		{0, 0, 0, 0},                      // all-zero hour
		{0, 0, 0, 1e-12},                  // near-degenerate spread
		{1, 1, 1, 2, 2, 2},                // tied halves
		{7, 7, 7, 7, 7, 7, 9},             // ties around the middle
		{-3, -1, -2, -7, 0, 4},            // negatives
		{1e300, -1e300, 0, 1e-300, 2e300}, // extreme spread
		{math.Inf(1), 1, 2, 3},
		{math.Inf(-1), math.Inf(1), 0, 1},
		{math.NaN(), 1, 2}, // falls back to the sort path
	}
	scratch := NewMedianScratch()
	for i, xs := range fixtures {
		want := Median(xs)
		got := scratch.Median(xs)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Errorf("fixture %d %v: binned %v != sorted %v", i, xs, got, want)
		}
		if free := BinnedMedian(xs); free != got && !(math.IsNaN(free) && math.IsNaN(got)) {
			t.Errorf("fixture %d: BinnedMedian %v != scratch %v", i, free, got)
		}
	}
}

// Randomized cross-check over column sizes the temporal stage actually
// uses (1..64 antennas per cluster), including duplicated values so many
// columns collapse into few bins.
func TestBinnedMedianRandomizedParity(t *testing.T) {
	src := rng.New(99)
	scratch := NewMedianScratch()
	for trial := 0; trial < 2000; trial++ {
		n := 1 + int(src.Uint64()%64)
		xs := make([]float64, n)
		for i := range xs {
			switch src.Uint64() % 4 {
			case 0:
				xs[i] = 0 // zeros are common in event-venue columns
			case 1:
				xs[i] = float64(src.Uint64()%8) * 0.25 // heavy ties
			default:
				xs[i] = src.Float64() * 1e4
			}
		}
		want := Median(xs)
		if got := scratch.Median(xs); got != want {
			t.Fatalf("trial %d n=%d: binned %v != sorted %v (%v)", trial, n, got, want, xs)
		}
	}
}

// The scratch path must not mutate its input.
func TestBinnedMedianDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	orig := append([]float64(nil), xs...)
	_ = NewMedianScratch().Median(xs)
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatalf("input mutated at %d: %v", i, xs)
		}
	}
}

func BenchmarkMedianSort40(b *testing.B) {
	xs := make([]float64, 40)
	src := rng.New(7)
	for i := range xs {
		xs[i] = src.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Median(xs)
	}
}

func BenchmarkMedianBinned40(b *testing.B) {
	xs := make([]float64, 40)
	src := rng.New(7)
	for i := range xs {
		xs[i] = src.Float64()
	}
	scratch := NewMedianScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = scratch.Median(xs)
	}
}
