package mat

import "testing"

func TestBinMatrixColumnMajorLayout(t *testing.T) {
	m := NewBinMatrix(3, 2)
	m.Set(0, 0, 1)
	m.Set(1, 0, 2)
	m.Set(2, 0, 3)
	m.Set(0, 1, 4)
	m.Set(2, 1, 6)
	for i := 0; i < 3; i++ {
		if got := m.Col(0)[i]; got != uint8(i+1) {
			t.Fatalf("Col(0)[%d] = %d, want %d", i, got, i+1)
		}
	}
	if m.At(0, 1) != 4 || m.At(1, 1) != 0 || m.At(2, 1) != 6 {
		t.Fatalf("column 1 = %v", m.Col(1))
	}
	// Col must be a view, not a copy.
	m.Col(1)[1] = 5
	if m.At(1, 1) != 5 {
		t.Fatal("Col(1) is not a view into the matrix")
	}
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
}

func TestBinMatrixPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBinMatrix(0, 4)
}
