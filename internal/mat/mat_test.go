package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatal("dims")
	}
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 {
		t.Fatal("At/Set")
	}
	row := m.Row(1)
	row[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row should be a view")
	}
	col := m.Col(0)
	if col[0] != 1 || col[1] != 7 {
		t.Fatalf("Col = %v", col)
	}
	col[0] = 99
	if m.At(0, 0) == 99 {
		t.Fatal("Col should be a copy")
	}
}

func TestFromRowsAndClone(t *testing.T) {
	m := MustFromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not alias")
	}
}

func TestFromRowsRejectsBadInput(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows should be rejected")
	}
	if _, err := FromRows(nil); err == nil {
		t.Fatal("empty input should be rejected")
	}
	if _, err := FromRows([][]float64{{}}); err == nil {
		t.Fatal("zero-width rows should be rejected")
	}
}

func TestMustFromRowsPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustFromRows([][]float64{{1, 2}, {3}})
}

func TestSumsAndScale(t *testing.T) {
	m := MustFromRows([][]float64{{1, 2}, {3, 4}})
	rs := m.RowSums()
	cs := m.ColSums()
	if rs[0] != 3 || rs[1] != 7 {
		t.Fatalf("RowSums = %v", rs)
	}
	if cs[0] != 4 || cs[1] != 6 {
		t.Fatalf("ColSums = %v", cs)
	}
	if m.Sum() != 10 {
		t.Fatalf("Sum = %v", m.Sum())
	}
	m.Scale(2)
	if m.At(1, 1) != 8 {
		t.Fatal("Scale")
	}
}

func TestMeanRows(t *testing.T) {
	m := MustFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	all := m.MeanRows(nil)
	if all[0] != 3 || all[1] != 4 {
		t.Fatalf("MeanRows(nil) = %v", all)
	}
	sub := m.MeanRows([]int{0, 2})
	if sub[0] != 3 || sub[1] != 4 {
		t.Fatalf("MeanRows subset = %v", sub)
	}
	empty := m.MeanRows([]int{})
	if empty[0] != 0 || empty[1] != 0 {
		t.Fatal("empty selection should be zeros")
	}
}

func TestDistances(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if SqDist(a, b) != 25 || Dist(a, b) != 5 {
		t.Fatal("distance")
	}
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("dot")
	}
}

func TestCondensedSymmetry(t *testing.T) {
	c := NewCondensed(4)
	c.Set(1, 3, 7)
	if c.At(3, 1) != 7 {
		t.Fatal("condensed must be symmetric")
	}
	c.Set(0, 1, 2)
	c.Set(2, 3, 4)
	if c.At(0, 1) != 2 || c.At(2, 3) != 4 || c.At(1, 3) != 7 {
		t.Fatal("condensed storage collision")
	}
}

func TestCondensedAllPairsDistinct(t *testing.T) {
	n := 9
	c := NewCondensed(n)
	val := 1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c.Set(i, j, val)
			val++
		}
	}
	val = 1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if c.At(i, j) != val {
				t.Fatalf("cell (%d,%d) = %v want %v", i, j, c.At(i, j), val)
			}
			val++
		}
	}
}

func TestCondensedDiagonalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCondensed(3).At(1, 1)
}

func TestPairwiseSqDist(t *testing.T) {
	m := MustFromRows([][]float64{{0, 0}, {3, 4}, {0, 1}})
	c := PairwiseSqDist(m)
	if c.At(0, 1) != 25 || c.At(0, 2) != 1 || c.At(1, 2) != 18 {
		t.Fatal("pairwise distances wrong")
	}
}

func TestSolveLinear(t *testing.T) {
	a := MustFromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := SolveLinear(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("x = %v", x)
		}
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Leading zero pivot forces a row swap.
	a := MustFromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveLinear(a, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-5) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveLinearShapeErrors(t *testing.T) {
	rect := NewDense(2, 3)
	if _, err := SolveLinear(rect, []float64{1, 2}); err == nil {
		t.Fatal("expected non-square error")
	}
	sq := NewDense(2, 2)
	if _, err := SolveLinear(sq, []float64{1}); err == nil {
		t.Fatal("expected rhs length error")
	}
}

func TestWeightedLeastSquaresExactFit(t *testing.T) {
	// y = 2*x0 + 3*x1, recoverable exactly.
	x := MustFromRows([][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}})
	y := []float64{2, 3, 5, 7}
	w := []float64{1, 1, 1, 1}
	beta, err := WeightedLeastSquares(x, y, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-2) > 1e-4 || math.Abs(beta[1]-3) > 1e-4 {
		t.Fatalf("beta = %v", beta)
	}
}

func TestWeightedLeastSquaresWeighting(t *testing.T) {
	// Two contradictory points; the heavier one dominates.
	x := MustFromRows([][]float64{{1}, {1}})
	y := []float64{0, 10}
	beta, err := WeightedLeastSquares(x, y, []float64{1, 99})
	if err != nil {
		t.Fatal(err)
	}
	if beta[0] < 9.5 {
		t.Fatalf("heavy point should dominate, beta = %v", beta)
	}
}

func TestWeightedLeastSquaresNegativeWeight(t *testing.T) {
	x := MustFromRows([][]float64{{1}})
	if _, err := WeightedLeastSquares(x, []float64{1}, []float64{-1}); err == nil {
		t.Fatal("expected negative-weight error")
	}
}

// Property: SolveLinear solutions actually satisfy A·x = b for random
// well-conditioned (diagonally dominant) systems.
func TestSolveLinearResidualProperty(t *testing.T) {
	f := func(cells [9]int8, rhs [3]int8) bool {
		a := NewDense(3, 3)
		for i := 0; i < 3; i++ {
			var rowAbs float64
			for j := 0; j < 3; j++ {
				v := float64(cells[i*3+j])
				a.Set(i, j, v)
				if i != j {
					rowAbs += math.Abs(v)
				}
			}
			a.Set(i, i, rowAbs+1+math.Abs(a.At(i, i))) // force dominance
		}
		b := []float64{float64(rhs[0]), float64(rhs[1]), float64(rhs[2])}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := 0; i < 3; i++ {
			var got float64
			for j := 0; j < 3; j++ {
				got += a.At(i, j) * x[j]
			}
			if math.Abs(got-b[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: condensed indexing agrees with a full symmetric matrix.
func TestCondensedMatchesFullProperty(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed%6) + 2
		c := NewCondensed(n)
		full := NewDense(n, n)
		v := 1.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				c.Set(i, j, v)
				full.Set(i, j, v)
				full.Set(j, i, v)
				v++
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if c.At(i, j) != full.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPairwiseSqDist200x73(b *testing.B) {
	m := NewDense(200, 73)
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			m.Set(i, j, float64((i*31+j*17)%97)/97)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PairwiseSqDist(m)
	}
}

func BenchmarkSolveLinear32(b *testing.B) {
	n := 32
	a := NewDense(n, n)
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		rhs[i] = float64(i)
		for j := 0; j < n; j++ {
			a.Set(i, j, float64((i*7+j*13)%23))
		}
		a.Set(i, i, 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveLinear(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
