// Package mat provides the dense matrix and small linear-algebra routines
// used by the clustering, random-forest and SHAP implementations: row-major
// dense matrices, Euclidean distance kernels, a condensed pairwise-distance
// representation, and a pivoted Gaussian solver for the KernelSHAP weighted
// least-squares fit.
package mat

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/pipe"
)

// Dense is a row-major dense matrix of float64 values.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense allocates a zeroed rows × cols matrix. It panics on non-positive
// dimensions.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		// Dimensions always come from the shapes of existing data, never
		// from external input, so a bad value is a programming error.
		//lint:allow nopanic dimensions are compiled-in shape invariants, not input
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a Dense matrix copying the given row slices, which must
// all share the same non-zero length. Empty or ragged input — the shapes
// unvalidated external data arrives in — is reported as an error.
func FromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("mat: FromRows with empty input")
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return nil, fmt.Errorf("mat: ragged row %d: %d != %d", i, len(r), m.cols)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// MustFromRows is FromRows for compiled-in literal matrices (tests,
// fixtures): it panics on invalid input instead of returning an error.
func MustFromRows(rows [][]float64) *Dense {
	m, err := FromRows(rows)
	if err != nil {
		//lint:allow nopanic Must variant for compiled-in literals
		panic(err)
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns row i as a mutable slice view into the matrix.
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Scale multiplies every element by f in place.
func (m *Dense) Scale(f float64) {
	for i := range m.data {
		m.data[i] *= f
	}
}

// RowSums returns the sum of each row.
func (m *Dense) RowSums() []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		for _, v := range m.Row(i) {
			s += v
		}
		out[i] = s
	}
	return out
}

// ColSums returns the sum of each column.
func (m *Dense) ColSums() []float64 {
	out := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// Sum returns the sum of all elements.
func (m *Dense) Sum() float64 {
	var s float64
	for _, v := range m.data {
		s += v
	}
	return s
}

// MeanRows returns the column-wise mean over the given row indices (all
// rows when idx is nil). An empty idx selection returns zeros.
func (m *Dense) MeanRows(idx []int) []float64 {
	out := make([]float64, m.cols)
	if idx == nil {
		idx = make([]int, m.rows)
		for i := range idx {
			idx[i] = i
		}
	}
	if len(idx) == 0 {
		return out
	}
	for _, i := range idx {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	inv := 1 / float64(len(idx))
	for j := range out {
		out[j] *= inv
	}
	return out
}

// SqDist returns the squared Euclidean distance between two equal-length
// vectors. It panics on a length mismatch.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		// Hot kernel on the N² distance path: an error return would cost
		// a branch per call pair, and mismatched rows of one matrix are
		// impossible by construction.
		//lint:allow nopanic hot-path invariant, rows of one matrix share a length
		panic("mat: SqDist length mismatch")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between two vectors.
func Dist(a, b []float64) float64 { return math.Sqrt(SqDist(a, b)) }

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		//lint:allow nopanic hot-path invariant, rows of one matrix share a length
		panic("mat: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Condensed stores the strictly-upper-triangular part of a symmetric n × n
// pairwise matrix in a flat slice, halving memory for the Ward clustering
// distance cache at full paper scale (N = 4,762).
type Condensed struct {
	n    int
	data []float64
}

// NewCondensed allocates a condensed n × n symmetric matrix with zero
// diagonal. It panics when n < 2.
func NewCondensed(n int) *Condensed {
	if n < 2 {
		// Callers (pipeline, clustering) validate the antenna count
		// before any Condensed matrix exists.
		//lint:allow nopanic dimension validated at the pipeline boundary
		panic("mat: Condensed needs n >= 2")
	}
	return &Condensed{n: n, data: make([]float64, n*(n-1)/2)}
}

// N returns the logical dimension.
func (c *Condensed) N() int { return c.n }

func (c *Condensed) index(i, j int) int {
	if i == j {
		//lint:allow nopanic index invariant of the condensed representation
		panic("mat: Condensed diagonal access")
	}
	if i > j {
		i, j = j, i
	}
	// Row-wise upper triangle offset.
	return i*(2*c.n-i-1)/2 + (j - i - 1)
}

// At returns element (i, j); the diagonal is implicitly zero and must not
// be addressed.
func (c *Condensed) At(i, j int) float64 { return c.data[c.index(i, j)] }

// Set assigns element (i, j) (and, implicitly, (j, i)).
func (c *Condensed) Set(i, j int, v float64) { c.data[c.index(i, j)] = v }

// UpperRow returns the stored segment d(i, i+1), …, d(i, n-1) as a slice
// view into the condensed storage — the contiguous upper-triangle row the
// selection metrics walk without paying the branchy index arithmetic of
// At. Callers must not mutate the view. i must be in [0, n-1]; the last
// row is empty.
func (c *Condensed) UpperRow(i int) []float64 {
	start := i * (2*c.n - i - 1) / 2
	return c.data[start : start+c.n-i-1]
}

// Clone returns a deep copy of the condensed matrix.
func (c *Condensed) Clone() *Condensed {
	out := &Condensed{n: c.n, data: make([]float64, len(c.data))}
	copy(out.data, c.data)
	return out
}

// Sqrt replaces every stored distance with its square root in place and
// returns the receiver — the condensed squared-distance → Euclidean
// conversion the clustering metrics consume.
func (c *Condensed) Sqrt() *Condensed {
	for i, v := range c.data {
		c.data[i] = math.Sqrt(v)
	}
	return c
}

// PairwiseSqDist computes the condensed matrix of squared Euclidean
// distances between all row pairs of m. Rows are processed in parallel on
// the shared worker pool; each row writes a disjoint slice of the
// condensed storage, so the result is deterministic.
func PairwiseSqDist(m *Dense) *Condensed {
	c, _ := PairwiseSqDistContext(context.Background(), m)
	return c
}

// PairwiseSqDistContext is PairwiseSqDist with cooperative cancellation:
// the row loop stops early and returns ctx.Err() when ctx is cancelled.
func PairwiseSqDistContext(ctx context.Context, m *Dense) (*Condensed, error) {
	c := NewCondensed(m.rows)
	if m.rows < 128 {
		for i := 0; i < m.rows; i++ {
			ri := m.Row(i)
			for j := i + 1; j < m.rows; j++ {
				c.Set(i, j, SqDist(ri, m.Row(j)))
			}
		}
		return c, ctx.Err()
	}
	err := pipe.FromContext(ctx).ForEach(ctx, m.rows, func(i int) {
		ri := m.Row(i)
		for j := i + 1; j < m.rows; j++ {
			c.Set(i, j, SqDist(ri, m.Row(j)))
		}
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// ErrSingular reports a numerically singular system in SolveLinear.
var ErrSingular = errors.New("mat: singular system")

// SolveLinear solves A·x = b for square A via Gaussian elimination with
// partial pivoting, overwriting neither input. It returns ErrSingular when
// a pivot falls below a small tolerance.
func SolveLinear(a *Dense, b []float64) ([]float64, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("mat: SolveLinear needs a square matrix, got %dx%d", a.rows, a.cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("mat: SolveLinear rhs length %d != %d", len(b), n)
	}
	aug := a.Clone()
	rhs := make([]float64, n)
	copy(rhs, b)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(aug.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(aug.At(r, col)); v > best {
				best = v
				pivot = r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			pr, cr := aug.Row(pivot), aug.Row(col)
			for k := range pr {
				pr[k], cr[k] = cr[k], pr[k]
			}
			rhs[pivot], rhs[col] = rhs[col], rhs[pivot]
		}
		inv := 1 / aug.At(col, col)
		for r := col + 1; r < n; r++ {
			factor := aug.At(r, col) * inv
			if factor == 0 {
				continue
			}
			rr, cr := aug.Row(r), aug.Row(col)
			for k := col; k < n; k++ {
				rr[k] -= factor * cr[k]
			}
			rhs[r] -= factor * rhs[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := rhs[i]
		row := aug.Row(i)
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// WeightedLeastSquares solves min ||W^(1/2)(X·beta - y)||² via the normal
// equations (XᵀWX)·beta = XᵀWy. X is n × p, y and w have length n. A tiny
// ridge term stabilizes near-singular designs, which arise in KernelSHAP
// when sampled coalitions repeat.
func WeightedLeastSquares(x *Dense, y, w []float64) ([]float64, error) {
	n, p := x.rows, x.cols
	if len(y) != n || len(w) != n {
		return nil, fmt.Errorf("mat: WLS dimension mismatch n=%d len(y)=%d len(w)=%d", n, len(y), len(w))
	}
	xtwx := NewDense(p, p)
	xtwy := make([]float64, p)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		wi := w[i]
		if wi < 0 {
			return nil, fmt.Errorf("mat: WLS negative weight at %d", i)
		}
		for a := 0; a < p; a++ {
			va := wi * row[a]
			xtwy[a] += va * y[i]
			ra := xtwx.Row(a)
			for b := a; b < p; b++ {
				ra[b] += va * row[b]
			}
		}
	}
	// Mirror the upper triangle and add ridge.
	for a := 0; a < p; a++ {
		xtwx.Set(a, a, xtwx.At(a, a)+1e-9)
		for b := a + 1; b < p; b++ {
			xtwx.Set(b, a, xtwx.At(a, b))
		}
	}
	return SolveLinear(xtwx, xtwy)
}
