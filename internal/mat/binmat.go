package mat

import "fmt"

// BinMatrix is a column-major matrix of uint8 bin codes — the discretized
// companion of a row-major Dense feature matrix. Histogram-based split
// finding in the random forest walks one feature (column) at a time over
// many rows, so codes are stored column-major: Col returns a contiguous
// slice and the per-node histogram fill is a linear scan instead of a
// strided gather. At ≤256 bins a code is one byte, an 8× density win over
// the float64 values it replaces.
type BinMatrix struct {
	rows, cols int
	data       []uint8
}

// NewBinMatrix allocates a zeroed rows × cols bin-code matrix. Like
// NewDense it panics on non-positive dimensions.
func NewBinMatrix(rows, cols int) *BinMatrix {
	if rows <= 0 || cols <= 0 {
		//lint:allow nopanic dimensions are compiled-in shape invariants, not input
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	return &BinMatrix{rows: rows, cols: cols, data: make([]uint8, rows*cols)}
}

// Rows returns the number of rows.
func (m *BinMatrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *BinMatrix) Cols() int { return m.cols }

// At returns the bin code of element (i, j).
func (m *BinMatrix) At(i, j int) uint8 { return m.data[j*m.rows+i] }

// Set assigns the bin code of element (i, j).
func (m *BinMatrix) Set(i, j int, v uint8) { m.data[j*m.rows+i] = v }

// Col returns column j as a mutable slice view into the matrix —
// contiguous storage, so callers index it by row directly.
func (m *BinMatrix) Col(j int) []uint8 { return m.data[j*m.rows : (j+1)*m.rows] }
