package forecast

import (
	"fmt"
	"math"
)

// ClusterSeries is the training input for one cluster's forecasters: the
// cluster-median hourly series plus the sampled per-antenna series it was
// derived from. Members counts every antenna in the cluster, including
// those the sampler skipped.
type ClusterSeries struct {
	Cluster  int
	Members  int
	Series   []float64
	Antennas []AntennaSeries
}

// AntennaSeries is one sampled antenna's hourly totals series.
type AntennaSeries struct {
	Antenna int
	Series  []float64
}

// ClusterModel is a fitted busy-hour forecaster for one cluster.
type ClusterModel struct {
	Cluster int
	// Members is the cluster population; Sampled is how many antennas
	// contributed series to the median (and got per-antenna models).
	Members, Sampled int
	Model            *Model
	// BusyHour is the hour-of-week index (0 = Monday 00:00) at which the
	// next full season's forecast peaks; PeakMB is the predicted median
	// per-antenna load at that hour.
	BusyHour int
	PeakMB   float64
}

// AntennaModel is a fitted busy-hour forecaster for one sampled antenna.
type AntennaModel struct {
	Antenna  int
	Cluster  int
	Model    *Model
	BusyHour int
	PeakMB   float64
}

// Set bundles the per-cluster and per-antenna forecasters trained from one
// model revision's hourly series. A Set is immutable after FitSet returns;
// Forecast reads are safe for concurrent callers.
type Set struct {
	// Season is the shared seasonal period; Hours is the training series
	// length in hours.
	Season, Hours int
	Clusters      []ClusterModel
	Antennas      []AntennaModel
}

// FitSet trains one Holt-Winters forecaster per cluster (on the median
// series) and one per sampled antenna. Cluster inputs must be sorted by
// cluster ID and series must share a common length of at least two
// seasons.
func FitSet(clusters []ClusterSeries, cfg Config) (*Set, error) {
	cfg = cfg.withDefaults()
	if len(clusters) == 0 {
		return nil, fmt.Errorf("forecast: FitSet needs at least one cluster series")
	}
	set := &Set{Season: cfg.Season, Hours: len(clusters[0].Series)}
	for i, cs := range clusters {
		if cs.Cluster != i {
			return nil, fmt.Errorf("forecast: cluster series out of order: got %d at index %d", cs.Cluster, i)
		}
		if len(cs.Series) != set.Hours {
			return nil, fmt.Errorf("forecast: cluster %d series length %d != %d", cs.Cluster, len(cs.Series), set.Hours)
		}
		m, err := Fit(cs.Series, cfg)
		if err != nil {
			return nil, fmt.Errorf("forecast: cluster %d: %w", cs.Cluster, err)
		}
		busy, peak := busyHour(m)
		set.Clusters = append(set.Clusters, ClusterModel{
			Cluster: cs.Cluster,
			Members: cs.Members,
			Sampled: len(cs.Antennas),
			Model:   m, BusyHour: busy, PeakMB: peak,
		})
		for _, as := range cs.Antennas {
			if len(as.Series) != set.Hours {
				return nil, fmt.Errorf("forecast: antenna %d series length %d != %d", as.Antenna, len(as.Series), set.Hours)
			}
			am, err := Fit(as.Series, cfg)
			if err != nil {
				return nil, fmt.Errorf("forecast: antenna %d: %w", as.Antenna, err)
			}
			abusy, apeak := busyHour(am)
			set.Antennas = append(set.Antennas, AntennaModel{
				Antenna: as.Antenna, Cluster: cs.Cluster,
				Model: am, BusyHour: abusy, PeakMB: apeak,
			})
		}
	}
	return set, nil
}

// busyHour forecasts one full season ahead and returns the hour-of-week
// index of the peak plus its predicted value.
func busyHour(m *Model) (int, float64) {
	pred := m.Forecast(m.Season)
	idx := argmax(pred)
	return (m.fitted + idx) % m.Season, pred[idx]
}

// K returns the number of cluster models.
func (s *Set) K() int {
	if s == nil {
		return 0
	}
	return len(s.Clusters)
}

// Cluster returns the model for one cluster, or nil if out of range.
func (s *Set) Cluster(c int) *ClusterModel {
	if s == nil || c < 0 || c >= len(s.Clusters) {
		return nil
	}
	return &s.Clusters[c]
}

// Antenna returns the model for one sampled antenna, or nil if the
// antenna was not sampled.
func (s *Set) Antenna(id int) *AntennaModel {
	if s == nil {
		return nil
	}
	for i := range s.Antennas {
		if s.Antennas[i].Antenna == id {
			return &s.Antennas[i]
		}
	}
	return nil
}

// Digest returns an FNV-1a fingerprint over the full fitted state of every
// model in the set — smoothing factors, level, trend, seasonal components
// and sample counts — so any retrain that changes a forecast changes the
// digest. A nil set digests to zero.
func (s *Set) Digest() uint64 {
	if s == nil {
		return 0
	}
	const offset, prime = uint64(0xcbf29ce484222325), uint64(0x100000001b3)
	h := offset
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	mixModel := func(m *Model) {
		mix(math.Float64bits(m.Alpha))
		mix(math.Float64bits(m.Beta))
		mix(math.Float64bits(m.Gamma))
		mix(uint64(m.Season))
		mix(math.Float64bits(m.level))
		mix(math.Float64bits(m.trend))
		for _, v := range m.seasonal {
			mix(math.Float64bits(v))
		}
		mix(uint64(m.fitted))
	}
	mix(uint64(s.Season))
	mix(uint64(s.Hours))
	mix(uint64(len(s.Clusters)))
	for i := range s.Clusters {
		cm := &s.Clusters[i]
		mix(uint64(cm.Cluster))
		mix(uint64(cm.Members))
		mix(uint64(cm.Sampled))
		mixModel(cm.Model)
	}
	mix(uint64(len(s.Antennas)))
	for i := range s.Antennas {
		am := &s.Antennas[i]
		mix(uint64(am.Antenna))
		mix(uint64(am.Cluster))
		mixModel(am.Model)
	}
	return h
}
