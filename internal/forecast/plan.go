package forecast

import "fmt"

// Plan ops. An action edits the what-if scenario before scoring: antennas
// join or leave a cluster, move between clusters, or a cluster's event
// calendar shifts in time.
const (
	OpAddAntennas    = "add_antennas"
	OpRemoveAntennas = "remove_antennas"
	OpReassign       = "reassign"
	OpShiftEvents    = "shift_events"
)

// Action is one edit in a capacity-planning scenario.
type Action struct {
	// Op is one of add_antennas, remove_antennas, reassign, shift_events.
	Op string `json:"op"`
	// Cluster the action applies to.
	Cluster int `json:"cluster"`
	// ToCluster is the reassign destination.
	ToCluster int `json:"to_cluster,omitempty"`
	// Count is how many antennas add/remove/reassign move (default 1).
	Count int `json:"count,omitempty"`
	// Hours shifts the cluster's demand pattern forward in time
	// (shift_events only; negative shifts backward).
	Hours int `json:"hours,omitempty"`
}

// ClusterPlan scores one cluster under the scenario.
type ClusterPlan struct {
	Cluster int `json:"cluster"`
	// AntennasBefore/After are the cluster populations before and after
	// the scenario's add/remove/reassign edits.
	AntennasBefore int `json:"antennas_before"`
	AntennasAfter  int `json:"antennas_after"`
	// BusyHour is the hour-of-week index at which the planned aggregate
	// load peaks within the horizon.
	BusyHour int `json:"busy_hour"`
	// BaselineMB and PlannedMB are the peak aggregate loads (median
	// per-antenna forecast × population) without and with the scenario;
	// DeltaMB is their difference.
	BaselineMB float64 `json:"baseline_mb"`
	PlannedMB  float64 `json:"planned_mb"`
	DeltaMB    float64 `json:"delta_mb"`
}

// PlanResult is a scored capacity-planning scenario.
type PlanResult struct {
	Horizon         int           `json:"horizon"`
	Clusters        []ClusterPlan `json:"clusters"`
	TotalBaselineMB float64       `json:"total_baseline_mb"`
	TotalPlannedMB  float64       `json:"total_planned_mb"`
}

// Plan scores a what-if scenario over the next horizon hours. Aggregate
// cluster load at hour t is modeled as population × median-antenna
// forecast; add/remove/reassign edit the population, shift_events rotates
// the cluster's forecast within the horizon window. The baseline column
// scores the unedited populations on the same forecasts.
func (s *Set) Plan(actions []Action, horizon int) (*PlanResult, error) {
	if s == nil || len(s.Clusters) == 0 {
		return nil, fmt.Errorf("forecast: no fitted models to plan against")
	}
	if horizon < 1 {
		return nil, fmt.Errorf("forecast: horizon must be at least 1, got %d", horizon)
	}
	members := make([]int, len(s.Clusters))
	shifts := make([]int, len(s.Clusters))
	for i := range s.Clusters {
		members[i] = s.Clusters[i].Members
	}
	for i, a := range actions {
		if a.Cluster < 0 || a.Cluster >= len(s.Clusters) {
			return nil, fmt.Errorf("forecast: action %d: cluster %d out of range [0, %d)", i, a.Cluster, len(s.Clusters))
		}
		count := a.Count
		if count == 0 {
			count = 1
		}
		if count < 0 {
			return nil, fmt.Errorf("forecast: action %d: negative count %d", i, a.Count)
		}
		switch a.Op {
		case OpAddAntennas:
			members[a.Cluster] += count
		case OpRemoveAntennas:
			if members[a.Cluster] < count {
				return nil, fmt.Errorf("forecast: action %d: cluster %d has %d antennas, cannot remove %d",
					i, a.Cluster, members[a.Cluster], count)
			}
			members[a.Cluster] -= count
		case OpReassign:
			if a.ToCluster < 0 || a.ToCluster >= len(s.Clusters) {
				return nil, fmt.Errorf("forecast: action %d: to_cluster %d out of range [0, %d)", i, a.ToCluster, len(s.Clusters))
			}
			if a.ToCluster == a.Cluster {
				return nil, fmt.Errorf("forecast: action %d: reassign to the same cluster %d", i, a.Cluster)
			}
			if members[a.Cluster] < count {
				return nil, fmt.Errorf("forecast: action %d: cluster %d has %d antennas, cannot reassign %d",
					i, a.Cluster, members[a.Cluster], count)
			}
			members[a.Cluster] -= count
			members[a.ToCluster] += count
		case OpShiftEvents:
			shifts[a.Cluster] += a.Hours
		default:
			return nil, fmt.Errorf("forecast: action %d: unknown op %q", i, a.Op)
		}
	}

	res := &PlanResult{Horizon: horizon}
	for c := range s.Clusters {
		cm := &s.Clusters[c]
		pred := cm.Model.Forecast(horizon)
		// Baseline peak on the unedited population.
		bi := argmax(pred)
		baseline := float64(cm.Members) * pred[bi]
		// Planned: shift the demand pattern, then scale by the edited
		// population.
		planned := pred
		if r := ((shifts[c] % horizon) + horizon) % horizon; r != 0 {
			planned = make([]float64, horizon)
			for t := 0; t < horizon; t++ {
				// A +H shift delays demand: hour t shows what the
				// unshifted forecast predicted H hours earlier.
				planned[t] = pred[(t-r+horizon)%horizon]
			}
		}
		pi := argmax(planned)
		peak := float64(members[c]) * planned[pi]
		res.Clusters = append(res.Clusters, ClusterPlan{
			Cluster:        c,
			AntennasBefore: cm.Members,
			AntennasAfter:  members[c],
			BusyHour:       (cm.Model.fitted + pi) % cm.Model.Season,
			BaselineMB:     baseline,
			PlannedMB:      peak,
			DeltaMB:        peak - baseline,
		})
		res.TotalBaselineMB += baseline
		res.TotalPlannedMB += peak
	}
	return res, nil
}
