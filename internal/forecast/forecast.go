// Package forecast implements the proactive-management extension the paper
// motivates in Sections 6-7: the identified clusters "exhibit distinctive
// overall and per-application utilization temporal patterns", which "paves
// the way for the proactive management of ICN traffic by mobile network
// operators". Given a cluster's hourly demand history, the package fits a
// triple-exponential-smoothing (Holt-Winters) model with hour-of-week
// seasonality and produces multi-hour-ahead forecasts plus evaluation
// metrics, so capacity can be provisioned before the commute peak or the
// office morning rather than after.
package forecast

import (
	"errors"
	"fmt"
	"math"
)

// SeasonLength is the canonical hour-of-week period of cellular demand.
const SeasonLength = 168

// Model is a fitted additive Holt-Winters model.
type Model struct {
	// Alpha, Beta, Gamma are the level, trend and seasonal smoothing
	// factors in (0, 1).
	Alpha, Beta, Gamma float64
	// Season is the seasonality period in samples.
	Season int

	level    float64
	trend    float64
	seasonal []float64
	fitted   int
}

// Config parameterizes model fitting.
type Config struct {
	// Alpha, Beta, Gamma override the smoothing factors; zero values
	// select defaults (0.35, 0.05, 0.25) that work well for diurnal
	// traffic.
	Alpha, Beta, Gamma float64
	// Season overrides the seasonal period (default SeasonLength).
	Season int
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 0.35
	}
	if c.Beta == 0 {
		c.Beta = 0.05
	}
	if c.Gamma == 0 {
		c.Gamma = 0.25
	}
	if c.Season == 0 {
		c.Season = SeasonLength
	}
	return c
}

// ErrTooShort reports a series shorter than two seasonal periods.
var ErrTooShort = errors.New("forecast: series shorter than two seasons")

// Fit trains an additive Holt-Winters model on the series, which must
// cover at least two full seasonal periods.
func Fit(series []float64, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	s := cfg.Season
	if len(series) < 2*s {
		return nil, fmt.Errorf("%w: %d samples, need %d", ErrTooShort, len(series), 2*s)
	}
	if cfg.Alpha <= 0 || cfg.Alpha >= 1 || cfg.Beta <= 0 || cfg.Beta >= 1 || cfg.Gamma <= 0 || cfg.Gamma >= 1 {
		return nil, fmt.Errorf("forecast: smoothing factors must lie in (0,1)")
	}
	for i, v := range series {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("forecast: non-finite sample %v at index %d", v, i)
		}
	}

	m := &Model{Alpha: cfg.Alpha, Beta: cfg.Beta, Gamma: cfg.Gamma, Season: s}

	// Initialization: level = mean of first season; trend = average
	// cross-season slope; seasonal = first-season deviations.
	var first, second float64
	for i := 0; i < s; i++ {
		first += series[i]
		second += series[s+i]
	}
	first /= float64(s)
	second /= float64(s)
	m.level = first
	m.trend = (second - first) / float64(s)
	m.seasonal = make([]float64, s)
	for i := 0; i < s; i++ {
		m.seasonal[i] = series[i] - first
	}

	for t := s; t < len(series); t++ {
		m.update(series[t], t)
	}
	m.fitted = len(series)
	return m, nil
}

// update performs one additive Holt-Winters recursion step.
func (m *Model) update(y float64, t int) {
	i := t % m.Season
	prevLevel := m.level
	m.level = m.Alpha*(y-m.seasonal[i]) + (1-m.Alpha)*(m.level+m.trend)
	m.trend = m.Beta*(m.level-prevLevel) + (1-m.Beta)*m.trend
	m.seasonal[i] = m.Gamma*(y-m.level) + (1-m.Gamma)*m.seasonal[i]
}

// Observe extends the model with one new observation, enabling rolling
// forecasts.
func (m *Model) Observe(y float64) {
	m.update(y, m.fitted)
	m.fitted++
}

// Forecast returns h-step-ahead predictions from the end of the observed
// series. Negative predictions are clamped to zero (traffic cannot be
// negative).
func (m *Model) Forecast(h int) []float64 {
	out := make([]float64, h)
	for k := 1; k <= h; k++ {
		i := (m.fitted + k - 1) % m.Season
		v := m.level + float64(k)*m.trend + m.seasonal[i]
		if v < 0 {
			v = 0
		}
		out[k-1] = v
	}
	return out
}

// Evaluation summarizes forecast accuracy over a held-out horizon.
type Evaluation struct {
	// MAE is the mean absolute error.
	MAE float64
	// SMAPE is the symmetric mean absolute percentage error in [0, 2].
	SMAPE float64
	// PeakHourHit reports whether the forecast placed the held-out
	// window's daily peak at the right hour-of-day on most days.
	PeakHourHit bool
}

// Backtest fits on series[:len-holdout], forecasts the holdout, and
// scores it. holdout must be a positive multiple of 24 and leave at least
// two seasons for training.
func Backtest(series []float64, holdout int, cfg Config) (Evaluation, error) {
	if holdout <= 0 || holdout%24 != 0 {
		return Evaluation{}, fmt.Errorf("forecast: holdout must be a positive multiple of 24, got %d", holdout)
	}
	train := series[:len(series)-holdout]
	m, err := Fit(train, cfg)
	if err != nil {
		return Evaluation{}, err
	}
	pred := m.Forecast(holdout)
	actual := series[len(series)-holdout:]

	var mae, smape float64
	for i := range actual {
		diff := math.Abs(pred[i] - actual[i])
		mae += diff
		if denom := (math.Abs(pred[i]) + math.Abs(actual[i])) / 2; denom > 0 {
			smape += diff / denom
		}
	}
	n := float64(len(actual))
	ev := Evaluation{MAE: mae / n, SMAPE: smape / n}

	days := holdout / 24
	hits := 0
	for d := 0; d < days; d++ {
		if argmax(pred[d*24:(d+1)*24]) == argmax(actual[d*24:(d+1)*24]) {
			hits++
		}
	}
	ev.PeakHourHit = hits*2 >= days
	return ev, nil
}

func argmax(xs []float64) int {
	best, bestV := 0, math.Inf(-1)
	for i, x := range xs {
		if x > bestV {
			bestV = x
			best = i
		}
	}
	return best
}

// FitLog fits the model on log1p-transformed values — the right space for
// traffic volumes, whose variation is multiplicative. Forecasts from the
// returned model must be read through ForecastLog.
func FitLog(series []float64, cfg Config) (*Model, error) {
	logged := make([]float64, len(series))
	for i, v := range series {
		if v < 0 {
			return nil, fmt.Errorf("forecast: negative traffic %v at %d", v, i)
		}
		logged[i] = math.Log1p(v)
	}
	return Fit(logged, cfg)
}

// ForecastLog returns h-step-ahead predictions of a FitLog model,
// back-transformed to the original scale.
func ForecastLog(m *Model, h int) []float64 {
	out := m.Forecast(h)
	for i, v := range out {
		out[i] = math.Expm1(v)
		if out[i] < 0 {
			out[i] = 0
		}
	}
	return out
}

// BacktestLog evaluates a log-space fit against the raw-scale holdout.
func BacktestLog(series []float64, holdout int, cfg Config) (Evaluation, error) {
	if holdout <= 0 || holdout%24 != 0 {
		return Evaluation{}, fmt.Errorf("forecast: holdout must be a positive multiple of 24, got %d", holdout)
	}
	train := series[:len(series)-holdout]
	m, err := FitLog(train, cfg)
	if err != nil {
		return Evaluation{}, err
	}
	pred := ForecastLog(m, holdout)
	actual := series[len(series)-holdout:]
	return score(pred, actual), nil
}

// score computes the shared evaluation metrics of a forecast.
func score(pred, actual []float64) Evaluation {
	var mae, smape float64
	for i := range actual {
		diff := math.Abs(pred[i] - actual[i])
		mae += diff
		if denom := (math.Abs(pred[i]) + math.Abs(actual[i])) / 2; denom > 0 {
			smape += diff / denom
		}
	}
	n := float64(len(actual))
	ev := Evaluation{MAE: mae / n, SMAPE: smape / n}
	days := len(actual) / 24
	hits := 0
	for d := 0; d < days; d++ {
		if argmax(pred[d*24:(d+1)*24]) == argmax(actual[d*24:(d+1)*24]) {
			hits++
		}
	}
	ev.PeakHourHit = days > 0 && hits*2 >= days
	return ev
}

// SeasonalNaive returns the baseline forecast that repeats the last
// observed season — the standard yardstick a model must beat.
func SeasonalNaive(series []float64, h, season int) []float64 {
	out := make([]float64, h)
	if len(series) < season {
		return out
	}
	last := series[len(series)-season:]
	for k := 0; k < h; k++ {
		out[k] = last[k%season]
	}
	return out
}

// BacktestNaive scores the seasonal-naive baseline on the same split as
// Backtest.
func BacktestNaive(series []float64, holdout, season int) (Evaluation, error) {
	if holdout <= 0 || holdout%24 != 0 || len(series) <= holdout+season {
		return Evaluation{}, fmt.Errorf("forecast: invalid naive backtest split")
	}
	train := series[:len(series)-holdout]
	pred := SeasonalNaive(train, holdout, season)
	actual := series[len(series)-holdout:]
	var mae, smape float64
	for i := range actual {
		diff := math.Abs(pred[i] - actual[i])
		mae += diff
		if denom := (math.Abs(pred[i]) + math.Abs(actual[i])) / 2; denom > 0 {
			smape += diff / denom
		}
	}
	n := float64(len(actual))
	days := holdout / 24
	hits := 0
	for d := 0; d < days; d++ {
		if argmax(pred[d*24:(d+1)*24]) == argmax(actual[d*24:(d+1)*24]) {
			hits++
		}
	}
	return Evaluation{MAE: mae / n, SMAPE: smape / n, PeakHourHit: hits*2 >= days}, nil
}
