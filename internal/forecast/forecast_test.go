package forecast

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// synthetic builds a weekly-seasonal series with optional trend and noise.
func synthetic(weeks int, trendPerHour, noise float64, seed uint64) []float64 {
	r := rng.New(seed)
	out := make([]float64, weeks*SeasonLength)
	for t := range out {
		hod := t % 24
		dow := (t / 24) % 7
		// Diurnal hump peaking at ~13:30 so the daily peak hour is
		// well-defined (a flat plateau would make argmax noise-driven).
		base := 10.0
		if hod >= 7 && hod < 21 {
			base = 10 + 90*math.Sin(math.Pi*float64(hod-7)/13)
		}
		if dow >= 5 {
			base *= 0.4
		}
		out[t] = base + trendPerHour*float64(t) + noise*r.Normal()
		if out[t] < 0 {
			out[t] = 0
		}
	}
	return out
}

func TestFitTooShort(t *testing.T) {
	if _, err := Fit(make([]float64, SeasonLength), Config{}); err == nil {
		t.Fatal("expected ErrTooShort")
	}
}

func TestFitBadFactors(t *testing.T) {
	series := synthetic(3, 0, 0, 1)
	for _, cfg := range []Config{{Alpha: 1.5}, {Beta: -0.1}, {Gamma: 2}} {
		if _, err := Fit(series, cfg); err == nil {
			t.Fatalf("expected factor validation error for %+v", cfg)
		}
	}
}

func TestForecastTracksSeasonality(t *testing.T) {
	series := synthetic(4, 0, 2, 3)
	m, err := Fit(series, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Forecast(SeasonLength)
	// Weekday day-hours must be forecast far above night hours.
	day := pred[10] // hour 10, Monday
	night := pred[3]
	if day < 3*night {
		t.Fatalf("forecast lost the diurnal shape: day=%v night=%v", day, night)
	}
	// Weekend suppression: Saturday noon ≈ 40% of Monday noon.
	satNoon := pred[5*24+12]
	monNoon := pred[12]
	if satNoon > 0.7*monNoon {
		t.Fatalf("forecast lost the weekend dip: sat=%v mon=%v", satNoon, monNoon)
	}
}

func TestForecastNonNegative(t *testing.T) {
	series := synthetic(3, -0.05, 1, 5) // decaying series
	m, err := Fit(series, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range m.Forecast(500) {
		if v < 0 {
			t.Fatal("forecast must be clamped at zero")
		}
	}
}

func TestTrendCaptured(t *testing.T) {
	up := synthetic(4, 0.02, 0, 7)
	m, err := Fit(up, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Forecast(2 * SeasonLength)
	// The same hour one week apart must grow under a positive trend.
	if pred[SeasonLength+12] <= pred[12] {
		t.Fatalf("trend lost: %v then %v", pred[12], pred[SeasonLength+12])
	}
}

func TestObserveRolling(t *testing.T) {
	series := synthetic(4, 0, 1, 9)
	m, err := Fit(series[:3*SeasonLength], Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range series[3*SeasonLength:] {
		m.Observe(y)
	}
	// After observing the fourth week, the 1-step forecast should be
	// close to the series' repeating value at that position.
	next := m.Forecast(1)[0]
	want := series[len(series)-SeasonLength] // same hour last week
	if math.Abs(next-want) > 25 {
		t.Fatalf("rolling forecast %v far from seasonal value %v", next, want)
	}
}

func TestBacktestBeatsNaiveUnderTrend(t *testing.T) {
	// With a trend, Holt-Winters must beat the seasonal-naive baseline.
	series := synthetic(6, 0.03, 3, 11)
	hw, err := Backtest(series, 48, Config{})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := BacktestNaive(series, 48, SeasonLength)
	if err != nil {
		t.Fatal(err)
	}
	if hw.MAE >= naive.MAE {
		t.Fatalf("Holt-Winters MAE %v should beat naive %v under trend", hw.MAE, naive.MAE)
	}
	if !hw.PeakHourHit {
		t.Fatal("forecast should place the daily peak correctly")
	}
}

func TestBacktestAccuracy(t *testing.T) {
	series := synthetic(6, 0, 2, 13)
	ev, err := Backtest(series, 72, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ev.SMAPE > 0.25 {
		t.Fatalf("SMAPE %v too high on clean seasonal data", ev.SMAPE)
	}
}

func TestBacktestValidation(t *testing.T) {
	series := synthetic(4, 0, 0, 1)
	if _, err := Backtest(series, 30, Config{}); err == nil {
		t.Fatal("holdout not multiple of 24 should fail")
	}
	if _, err := Backtest(series, 0, Config{}); err == nil {
		t.Fatal("zero holdout should fail")
	}
	if _, err := BacktestNaive(series[:190], 24, SeasonLength); err == nil {
		t.Fatal("naive backtest with too-short series should fail")
	}
}

func TestFitLogRejectsNegatives(t *testing.T) {
	series := synthetic(3, 0, 0, 1)
	series[10] = -5
	if _, err := FitLog(series, Config{}); err == nil {
		t.Fatal("negative traffic should fail FitLog")
	}
}

func TestForecastLogNonNegativeAndTracking(t *testing.T) {
	series := synthetic(4, 0, 2, 21)
	m, err := FitLog(series, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pred := ForecastLog(m, SeasonLength)
	for _, v := range pred {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("bad log-space forecast %v", v)
		}
	}
	// Shape preserved through the transform: day >> night.
	if pred[13] < 2*pred[3] {
		t.Fatalf("log-space forecast lost the shape: day=%v night=%v", pred[13], pred[3])
	}
}

func TestBacktestLogHandlesMultiplicativeNoise(t *testing.T) {
	// Multiplicative jitter: log-space fitting should do no worse than
	// twice the linear-space error, typically much better.
	r := rng.New(31)
	series := synthetic(6, 0, 0, 33)
	for i := range series {
		series[i] *= math.Exp(0.15 * r.Normal())
	}
	logEv, err := BacktestLog(series, 48, Config{Alpha: 0.15, Beta: 0.02, Gamma: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	linEv, err := Backtest(series, 48, Config{Alpha: 0.15, Beta: 0.02, Gamma: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if logEv.SMAPE > 2*linEv.SMAPE {
		t.Fatalf("log-space SMAPE %v vs linear %v", logEv.SMAPE, linEv.SMAPE)
	}
	if logEv.SMAPE > 0.5 {
		t.Fatalf("log-space SMAPE %v too large", logEv.SMAPE)
	}
}

func TestBacktestLogValidation(t *testing.T) {
	series := synthetic(4, 0, 0, 1)
	if _, err := BacktestLog(series, 30, Config{}); err == nil {
		t.Fatal("holdout not multiple of 24 should fail")
	}
}

func TestSeasonalNaiveShortSeries(t *testing.T) {
	out := SeasonalNaive([]float64{1, 2}, 5, 168)
	for _, v := range out {
		if v != 0 {
			t.Fatal("short-series naive should be zeros")
		}
	}
}

// Property: forecasts of a non-negative series are always finite and
// non-negative for any smoothing factors in range.
func TestForecastFiniteProperty(t *testing.T) {
	f := func(seed uint64, a, b, g uint8) bool {
		cfg := Config{
			Alpha:  0.05 + float64(a%90)/100,
			Beta:   0.05 + float64(b%90)/100,
			Gamma:  0.05 + float64(g%90)/100,
			Season: 24,
		}
		r := rng.New(seed)
		series := make([]float64, 24*5)
		for i := range series {
			series[i] = 50 + 30*math.Sin(float64(i%24)/24*2*math.Pi) + 5*r.Normal()
		}
		m, err := Fit(series, cfg)
		if err != nil {
			return false
		}
		for _, v := range m.Forecast(48) {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFit6Weeks(b *testing.B) {
	series := synthetic(6, 0.01, 2, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(series, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForecastWeek(b *testing.B) {
	m, err := Fit(synthetic(6, 0.01, 2, 1), Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Forecast(SeasonLength)
	}
}
